// CSAX workflow: not just *detecting* anomalous expression samples but
// *characterizing* them — which gene sets (pathways) are dysregulated?
// This is the system the paper's scalable FRaC variants were built to feed
// ("we then used FRaC as a component of CSAX, a method for identifying and
// interpreting anomalies in individual gene expression samples").
#include <iostream>

#include "csax/csax.hpp"
#include "expt/tables.hpp"
#include "ml/metrics.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace frac;

  // Cohort with two disease modules among eight; the disease program in
  // anomalies loads on modules 0 and 1.
  ExpressionModelConfig generator;
  generator.features = 200;
  generator.modules = 8;
  generator.genes_per_module = 10;
  generator.noise_sd = 0.4;
  generator.anomaly_mix = 2.0;
  generator.disease_modules = 2;
  generator.seed = 51;
  const ExpressionModel model(generator);

  Rng rng(52);
  Replicate rep;
  rep.train = model.sample(60, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(10, Label::kNormal, rng),
                            model.sample(10, Label::kAnomaly, rng));

  // Gene sets: one per generator module (with 20% annotation dropout, like
  // real pathway databases) plus six decoys.
  GeneSetCollection sets = make_module_gene_sets(model, 0.2, 6, rng);
  std::cout << "characterize_anomaly — " << generator.features << " genes, "
            << sets.size() << " gene sets (8 modules + 6 decoys), "
            << "disease program on module0/module1\n\n";

  CsaxConfig config;
  config.bootstraps = 8;
  config.top_sets = 2;
  ThreadPool pool;
  const CsaxModel csax = CsaxModel::train(rep.train, std::move(sets), config, pool);
  const std::vector<CsaxScore> scores = csax.score(rep.test, pool);

  std::vector<double> anomaly_scores;
  for (const CsaxScore& s : scores) anomaly_scores.push_back(s.anomaly_score);
  std::cout << "CSAX anomaly-score AUC: " << auc(anomaly_scores, rep.test.labels()) << "\n\n";

  TextTable table({"sample", "label", "CSAX score", "top set", "2nd set"});
  for (std::size_t r = 0; r < scores.size(); ++r) {
    const auto top = scores[r].top_sets(2);
    table.add_row({std::to_string(r),
                   rep.test.label(r) == Label::kAnomaly ? "anomaly" : "normal",
                   format("%.3f", scores[r].anomaly_score),
                   csax.gene_sets()[top[0]].name + format(" (%.2f)",
                                                          scores[r].set_enrichment[top[0]]),
                   csax.gene_sets()[top[1]].name + format(" (%.2f)",
                                                          scores[r].set_enrichment[top[1]])});
  }
  table.print(std::cout);
  std::cout << "\nAnomalous samples should be characterized by module0/module1 — the\n"
               "planted disease sets — while decoys stay uninformative.\n";
  return 0;
}
