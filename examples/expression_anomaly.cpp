// Expression-cohort workflow: run full FRaC and the scalable variants the
// paper recommends on a realistic (scaled) expression dataset, then use the
// per-feature NS contributions for interpretation — the property the paper
// highlights as the reason to prefer random filter ensembles over JL.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "expt/registry.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace frac;

  // The biomarkers-analog cohort from the experiment registry (ER+ vs ER-
  // breast tumors in the paper): 74 normals, 53 anomalies.
  const CohortSpec& spec = cohort_by_name("biomarkers");
  const auto replicates = make_cohort_replicates(spec, 1);
  const Replicate& rep = replicates.front();
  const FracConfig config = paper_frac_config(spec);
  ThreadPool pool;

  std::cout << "expression_anomaly — cohort '" << spec.name << "' ("
            << rep.train.feature_count() << " genes, " << rep.train.sample_count()
            << " training normals)\n\n";

  // Full FRaC.
  const ScoredRun full = run_frac(rep, config, pool);
  std::cout << "full FRaC:              AUC=" << auc(full.test_scores, rep.test.labels())
            << "  time=" << full.resources.cpu_seconds << "s"
            << "  mem=" << static_cast<double>(full.resources.peak_bytes) / (1024 * 1024)
            << "MB\n";

  // Random filter ensemble — the paper's recommendation for interpretability.
  Rng rng(spec.seed + 1);
  const ScoredRun ensemble = run_random_filter_ensemble(rep, config, 0.05, 10, rng, pool);
  std::cout << "random filter ensemble: AUC=" << auc(ensemble.test_scores, rep.test.labels())
            << "  time=" << ensemble.resources.cpu_seconds << "s"
            << "  mem=" << static_cast<double>(ensemble.resources.peak_bytes) / (1024 * 1024)
            << "MB\n";

  // JL preprojection — fastest, least interpretable.
  JlPipelineConfig jl;
  jl.output_dim = 64;
  const ScoredRun projected = run_jl_frac(rep, config, jl, pool);
  std::cout << "JL preprojection (k=64): AUC=" << auc(projected.test_scores, rep.test.labels())
            << "  time=" << projected.resources.cpu_seconds << "s"
            << "  mem=" << static_cast<double>(projected.resources.peak_bytes) / (1024 * 1024)
            << "MB\n\n";

  // Interpretation: which genes drive anomaly calls? Average the per-gene
  // NS contribution over the anomalous test samples and rank.
  const FracModel model = FracModel::train(rep.train, config, pool);
  const Matrix per_gene = model.per_feature_scores(rep.test, pool);
  std::vector<double> anomaly_mean(per_gene.cols(), 0.0);
  std::size_t anomalies = 0;
  for (std::size_t r = 0; r < rep.test.sample_count(); ++r) {
    if (rep.test.label(r) != Label::kAnomaly) continue;
    ++anomalies;
    for (std::size_t g = 0; g < per_gene.cols(); ++g) {
      if (!is_missing(per_gene(r, g))) anomaly_mean[g] += per_gene(r, g);
    }
  }
  for (double& v : anomaly_mean) v /= static_cast<double>(anomalies);

  std::vector<std::size_t> order(anomaly_mean.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return anomaly_mean[a] > anomaly_mean[b]; });

  std::cout << "top 10 genes by mean NS contribution over anomalous samples\n"
               "(the generator plants the disease signal in the first "
            << spec.expression.disease_modules * spec.expression.genes_per_module
            << " gene indices — these should dominate):\n";
  std::size_t planted_hits = 0;
  const std::size_t planted =
      spec.expression.disease_modules * spec.expression.genes_per_module;
  for (std::size_t i = 0; i < 10; ++i) {
    const std::size_t g = order[i];
    const bool is_planted = g < planted;
    planted_hits += is_planted;
    std::cout << "  " << rep.train.schema()[g].name << "  mean NS=" << anomaly_mean[g]
              << (is_planted ? "  [planted disease gene]" : "") << "\n";
  }
  std::cout << planted_hits << "/10 of the top genes are planted disease genes.\n";
  return 0;
}
