// SNP-cohort workflow with the schizophrenia-style ancestry confound:
// train on population-A normals, test against population-B "patients", and
// show (a) that entropy-filtered FRaC separates them near-perfectly, and
// (b) that the most predictive SNP models sit on ancestry-divergent SNPs —
// the diagnosis the paper reaches for its AUC≈1.0 result.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "data/snp_generator.hpp"
#include "frac/filtering.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace frac;

  SnpModelConfig generator;
  generator.features = 3000;
  generator.block_size = 20;
  generator.ld_strength = 0.7;
  // Ancestry-informative-marker structure (see DESIGN.md): divergence
  // concentrated in high-heterozygosity SNPs of a large reference
  // population — the regime in which the paper's entropy filter scores ≈1.
  generator.fst = 0.5;
  generator.fst_het_exponent = 100.0;
  generator.reference_drift_scale = 0.1;
  generator.populations = 2;
  generator.seed = 21;
  const SnpModel model(generator);

  Rng rng(22);
  Replicate rep;
  rep.train = model.sample(/*population=*/0, 270, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(0, 10, Label::kNormal, rng),
                            model.sample(1, 54, Label::kAnomaly, rng));

  std::cout << "snp_ancestry — " << generator.features << " ternary SNPs; training normals\n"
            << "from population A, test 'patients' from population B (Fst=" << generator.fst
            << ")\n\n";

  FracConfig config;
  config.predictor.classifier = ClassifierKind::kDecisionTree;
  config.predictor.regressor = RegressorKind::kRegressionTree;
  config.predictor.tree.max_depth = 6;
  ThreadPool pool;

  // Entropy filtering at 5%, the paper's Table V winner.
  Rng method_rng(23);
  const std::vector<std::size_t> kept =
      select_filtered_features(rep.train, FilterMethod::kEntropy, 0.05, method_rng);
  const Dataset train_kept = rep.train.select_features(kept);
  const Dataset test_kept = rep.test.select_features(kept);
  const FracModel frac_model = FracModel::train(train_kept, config, pool);
  const std::vector<double> scores = frac_model.score(test_kept, pool);
  std::cout << "entropy-filtered FRaC (5% of SNPs): AUC = "
            << auc(scores, rep.test.labels()) << "\n\n";

  // Which SNP models matter? Rank kept SNPs by mean NS contribution over the
  // population-B samples, then compare against each SNP's true
  // allele-frequency divergence between the populations.
  const Matrix per_snp = frac_model.per_feature_scores(test_kept, pool);
  std::vector<double> anomaly_mean(per_snp.cols(), 0.0);
  std::size_t anomalies = 0;
  for (std::size_t r = 0; r < rep.test.sample_count(); ++r) {
    if (rep.test.label(r) != Label::kAnomaly) continue;
    ++anomalies;
    for (std::size_t j = 0; j < per_snp.cols(); ++j) {
      if (!is_missing(per_snp(r, j))) anomaly_mean[j] += per_snp(r, j);
    }
  }
  for (double& v : anomaly_mean) v /= static_cast<double>(anomalies);

  std::vector<std::size_t> order(anomaly_mean.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return anomaly_mean[a] > anomaly_mean[b]; });

  // Median |Δ allele frequency| over all SNPs, as the ancestry baseline.
  std::vector<double> all_divergences;
  for (std::size_t j = 0; j < generator.features; ++j) {
    all_divergences.push_back(
        std::abs(model.allele_frequency(0, j) - model.allele_frequency(1, j)));
  }
  std::nth_element(all_divergences.begin(),
                   all_divergences.begin() + static_cast<std::ptrdiff_t>(all_divergences.size() / 2),
                   all_divergences.end());
  const double median_divergence = all_divergences[all_divergences.size() / 2];

  std::cout << "top 10 SNP models by mean NS over population-B samples\n"
            << "(|Δp| = allele-frequency divergence between populations; cohort median |Δp| = "
            << median_divergence << "):\n";
  std::size_t above_median = 0;
  for (std::size_t i = 0; i < 10 && i < order.size(); ++i) {
    const std::size_t snp = kept[order[i]];
    const double divergence =
        std::abs(model.allele_frequency(0, snp) - model.allele_frequency(1, snp));
    above_median += divergence > median_divergence;
    std::cout << "  snp" << snp << "  mean NS=" << anomaly_mean[order[i]]
              << "  |Δp|=" << divergence << "\n";
  }
  std::cout << above_median
            << "/10 of the top SNPs are more ancestry-divergent than the median —\n"
               "the signal is ancestry, not disease (the paper's conclusion).\n";
  return 0;
}
