// Quickstart: the five-minute tour of the public API.
//   1. Generate (or load) a labeled cohort.
//   2. Split it the paper's way: train on 2/3 of the normals.
//   3. Train FRaC and score the test set with normalized surprisal.
//   4. Evaluate with AUC and show the Fig. 2 preprocessing pipeline.
#include <iostream>

#include "data/expression_generator.hpp"
#include "data/split.hpp"
#include "frac/frac.hpp"
#include "jl/pipeline.hpp"
#include "ml/metrics.hpp"

int main() {
  using namespace frac;

  // 1. A small synthetic expression cohort: 100 genes in 6 co-regulation
  // modules; anomalies activate a disease program on the first 4 modules'
  // genes. The remaining genes are noise.
  ExpressionModelConfig generator;
  generator.features = 100;
  generator.modules = 6;
  generator.genes_per_module = 8;
  generator.noise_sd = 0.5;
  generator.anomaly_mix = 2.0;
  generator.disease_modules = 4;
  generator.seed = 42;
  const ExpressionModel model(generator);
  Rng rng(7);
  const Dataset cohort = model.sample_cohort(/*normals=*/60, /*anomalies=*/20, rng);
  std::cout << "cohort: " << cohort.sample_count() << " samples x " << cohort.feature_count()
            << " features (" << cohort.anomaly_count() << " anomalies)\n";

  // 2. Replicate split: train = 2/3 of normals, test = the rest + anomalies.
  const Replicate rep = make_replicate(cohort, 2.0 / 3.0, rng);
  std::cout << "train: " << rep.train.sample_count() << " normals; test: "
            << rep.test.sample_count() << " samples\n";

  // 3. Train FRaC (linear SVR per feature, Gaussian error models, 5-fold CV)
  // and score the test set. Higher NS = more anomalous.
  ThreadPool pool;
  const FracConfig config;  // paper defaults
  const FracModel frac_model = FracModel::train(rep.train, config, pool);
  const std::vector<double> scores = frac_model.score(rep.test, pool);

  // 4. Evaluate.
  const double roc_auc = auc(scores, rep.test.labels());
  std::cout << "FRaC AUC: " << roc_auc << "\n";
  std::cout << "models trained: " << frac_model.report().models_trained
            << ", retained: " << frac_model.report().models_retained << "\n";

  // Rank the most anomalous test samples.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });
  std::cout << "\ntop 5 most anomalous test samples:\n";
  for (std::size_t i = 0; i < 5 && i < order.size(); ++i) {
    const std::size_t s = order[i];
    std::cout << "  sample " << s << "  NS=" << scores[s] << "  ("
              << (rep.test.label(s) == Label::kAnomaly ? "true anomaly" : "normal") << ")\n";
  }

  // Bonus: the Fig. 2 preprocessing pipeline (1-hot + concat + JL) on a
  // mixed-type schema.
  Schema mixed;
  for (int i = 0; i < 4; ++i) mixed.add({"r" + std::to_string(i), FeatureKind::kReal, 0});
  mixed.add({"c3", FeatureKind::kCategorical, 3});
  mixed.add({"c4", FeatureKind::kCategorical, 4});
  JlPipelineConfig jl;
  jl.output_dim = 4;
  const JlPipeline pipeline(mixed, jl);
  std::cout << "\nFig. 2 pipeline: " << mixed.size() << " mixed features -> "
            << pipeline.input_width() << " one-hot columns -> " << pipeline.output_dim()
            << " projected dims\n";
  return 0;
}
