// Side-by-side shootout of every detector in the library — full FRaC, all
// five scalable variants, and the LOF / one-class-SVM baselines — on one
// expression replicate, with AUC, CPU time, and model memory.
#include <iostream>

#include "data/expression_generator.hpp"
#include "expt/tables.hpp"
#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/baseline/lof.hpp"
#include "ml/baseline/ocsvm.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace frac;

  ExpressionModelConfig generator;
  generator.features = 300;
  generator.modules = 8;
  generator.genes_per_module = 10;
  generator.noise_sd = 0.6;
  generator.anomaly_mix = 1.5;
  generator.disease_modules = 4;
  generator.seed = 31;
  const ExpressionModel model(generator);
  Rng rng(32);
  Replicate rep;
  rep.train = model.sample(60, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(20, Label::kNormal, rng),
                            model.sample(20, Label::kAnomaly, rng));

  std::cout << "method_shootout — " << generator.features << " genes, "
            << rep.train.sample_count() << " training normals, "
            << rep.test.sample_count() << " test samples\n\n";

  ThreadPool pool;
  const FracConfig config;
  TextTable table({"method", "AUC", "time", "model mem"});

  const auto add = [&](const std::string& name, const ScoredRun& run) {
    table.add_row({name, format("%.3f", auc(run.test_scores, rep.test.labels())),
                   fmt_time(run.resources.cpu_seconds),
                   fmt_bytes(static_cast<double>(run.resources.peak_bytes))});
  };

  add("FRaC (full)", run_frac(rep, config, pool));
  Rng r1(1);
  add("FRaC random filter p=.05 x10", run_random_filter_ensemble(rep, config, 0.05, 10, r1, pool));
  Rng r2(2);
  add("FRaC entropy filter p=.05",
      run_full_filtered_frac(rep, config, FilterMethod::kEntropy, 0.05, r2, pool));
  Rng r3(3);
  add("FRaC diverse p=1/2", run_diverse_frac(rep, config, 0.5, 1, r3, pool));
  Rng r4(4);
  add("FRaC diverse ensemble p=1/20 x10", run_diverse_ensemble(rep, config, 0.05, 10, r4, pool));
  JlPipelineConfig jl;
  jl.output_dim = 64;
  add("FRaC JL k=64", run_jl_frac(rep, config, jl, pool));

  // Baselines (trained on the raw feature matrix).
  {
    const CpuStopwatch cpu;
    Lof lof;
    lof.fit(rep.train.values(), {.k = 10});
    ScoredRun run;
    for (std::size_t i = 0; i < rep.test.sample_count(); ++i) {
      run.test_scores.push_back(lof.score(rep.test.values().row(i)));
    }
    run.resources.cpu_seconds = cpu.seconds();
    run.resources.peak_bytes = rep.train.bytes();  // LOF memorizes the training set
    add("LOF k=10", run);
  }
  {
    const CpuStopwatch cpu;
    OneClassSvm ocsvm;
    ocsvm.fit(rep.train.values(), {});
    ScoredRun run;
    for (std::size_t i = 0; i < rep.test.sample_count(); ++i) {
      run.test_scores.push_back(ocsvm.score(rep.test.values().row(i)));
    }
    run.resources.cpu_seconds = cpu.seconds();
    run.resources.peak_bytes = rep.train.feature_count() * sizeof(double);
    add("one-class SVM", run);
  }

  table.print(std::cout);
  std::cout << "\nThe FRaC family should lead the baselines on this irrelevant-variable-\n"
               "heavy cohort, with the variants close to full FRaC at a fraction of cost.\n";
  return 0;
}
