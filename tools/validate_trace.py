#!/usr/bin/env python3
"""Validate a FRAC_TRACE file against docs/trace_schema.json.

Stdlib-only (no jsonschema dependency): implements the subset of JSON Schema
the checked-in schema actually uses — type, required, properties, enum,
items, minimum. Complete-span ("ph": "X") events must carry "dur"; instant
events ("ph": "i") must carry "s": "t". Exits 0 when valid, 1 with a message
on the first violation.

Usage: tools/validate_trace.py TRACE.json [SCHEMA.json]
"""

import json
import os
import sys

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
}


def validate(value, schema, path):
    expected = schema.get("type")
    if expected is not None:
        py = TYPES[expected]
        ok = isinstance(value, py)
        if expected in ("integer", "number") and isinstance(value, bool):
            ok = False
        if not ok:
            fail(f"{path}: expected {expected}, got {type(value).__name__}")
    if "enum" in schema and value not in schema["enum"]:
        fail(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and value < schema["minimum"]:
        fail(f"{path}: {value} < minimum {schema['minimum']}")
    for key in schema.get("required", []):
        if key not in value:
            fail(f"{path}: missing required key {key!r}")
    for key, sub in schema.get("properties", {}).items():
        if key in value:
            validate(value[key], sub, f"{path}.{key}")
    if "items" in schema and isinstance(value, list):
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]")


def fail(message):
    print(f"trace validation FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    default_schema = os.path.join(
        os.path.dirname(os.path.abspath(argv[0])), "..", "docs", "trace_schema.json")
    schema_path = argv[2] if len(argv) == 3 else default_schema
    with open(argv[1]) as f:
        trace = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    validate(trace, schema, "$")

    events = trace["traceEvents"]
    names = {}
    for i, event in enumerate(events):
        if event["ph"] == "X" and "dur" not in event:
            fail(f"$.traceEvents[{i}]: complete span missing 'dur'")
        if event["ph"] == "i" and event.get("s") != "t":
            fail(f"$.traceEvents[{i}]: instant event missing '\"s\": \"t\"'")
        names[event["name"]] = names.get(event["name"], 0) + 1
    summary = ", ".join(f"{n}={c}" for n, c in sorted(names.items()))
    print(f"trace OK: {len(events)} events ({summary})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
