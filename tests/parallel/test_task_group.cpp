// Regression tests for the batch-scoped runtime: batch isolation (completion
// and error delivery), nested-parallelism deadlock freedom, and bit-identical
// ensemble scores across thread counts.
#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "data/expression_generator.hpp"
#include "frac/ensemble.hpp"
#include "parallel/parallel_for.hpp"

namespace frac {
namespace {

TEST(TaskGroup, RunsTasksAndWaits) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    group.run([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroup, ReusableAcrossBatches) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) group.run([&counter] { ++counter; });
    group.wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(TaskGroup, DestructorDrainsWithoutWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  {
    TaskGroup group(pool);
    for (int i = 0; i < 50; ++i) group.run([&counter] { ++counter; });
    // no wait(): destructor must drain (and swallow any error)
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(TaskGroup, ReusableAfterException) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
  std::atomic<int> counter{0};
  group.run([&counter] { ++counter; });
  group.wait();  // must not rethrow the already-delivered error
  EXPECT_EQ(counter.load(), 1);
}

// Two batches on one shared pool, issued from two caller threads: each must
// complete independently, and the failing batch's exception must be delivered
// to its own caller only.
TEST(TaskGroup, ConcurrentBatchesIsolateCompletionAndErrors) {
  ThreadPool pool(2);
  std::atomic<int> ok_count{0};
  std::atomic<bool> ok_threw{false};
  std::atomic<bool> bad_threw{false};

  std::thread ok_caller([&] {
    TaskGroup group(pool);
    try {
      for (int i = 0; i < 200; ++i) group.run([&ok_count] { ++ok_count; });
      group.wait();
    } catch (...) {
      ok_threw = true;
    }
  });
  std::thread bad_caller([&] {
    TaskGroup group(pool);
    try {
      for (int i = 0; i < 200; ++i) {
        group.run([] { throw std::runtime_error("bad batch"); });
      }
      group.wait();
    } catch (const std::runtime_error&) {
      bad_threw = true;
    }
  });
  ok_caller.join();
  bad_caller.join();

  EXPECT_EQ(ok_count.load(), 200);
  EXPECT_FALSE(ok_threw.load()) << "clean batch saw a stranger's exception";
  EXPECT_TRUE(bad_threw.load()) << "failing batch's caller never saw its error";
}

// A parallel_for issued from inside a pool task must complete even when every
// worker is busy: the waiting task helps drain its own batch.
TEST(ParallelForNested, CompletesInsidePoolTask) {
  ThreadPool pool(2);  // fewer workers than outer tasks: no spare thread
  std::atomic<int> inner_total{0};
  parallel_for(pool, 0, 8, [&](std::size_t) {
    parallel_for(pool, 0, 16, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ParallelForNested, ThreeLevelsDeep) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  parallel_for(pool, 0, 4, [&](std::size_t) {
    parallel_for(pool, 0, 4, [&](std::size_t) {
      parallel_for(pool, 0, 4, [&](std::size_t) {
        leaves.fetch_add(1, std::memory_order_relaxed);
      });
    });
  });
  EXPECT_EQ(leaves.load(), 4 * 4 * 4);
}

// An exception in an inner batch is delivered to the inner caller (the outer
// task), not to the outer batch's waiter.
TEST(ParallelForNested, InnerExceptionStaysWithInnerCaller) {
  ThreadPool pool(2);
  std::atomic<int> caught_inner{0};
  parallel_for(pool, 0, 4, [&](std::size_t) {
    try {
      parallel_for(pool, 0, 4, [](std::size_t i) {
        if (i % 2 == 0) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
      caught_inner.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // Every outer task caught its own inner failure; none escaped to us.
  EXPECT_EQ(caught_inner.load(), 4);
}

TEST(ParallelForNested, UncaughtInnerErrorPropagatesThroughOuter) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 4,
                            [&](std::size_t) {
                              parallel_for(pool, 0, 4, [](std::size_t) {
                                throw std::runtime_error("leaf");
                              });
                            }),
               std::runtime_error);
}

Replicate make_replicate(std::uint64_t seed) {
  ExpressionModelConfig c;
  c.features = 40;
  c.modules = 4;
  c.genes_per_module = 8;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 3;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(24, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(6, Label::kNormal, rng),
                            model.sample(6, Label::kAnomaly, rng));
  return rep;
}

// RNG streams are pre-split per member, so ensemble scores must be
// bit-identical no matter how many threads execute the members (the
// FRAC_THREADS=1 vs default guarantee).
TEST(EnsembleDeterminism, ScoresBitIdenticalAcrossThreadCounts) {
  const Replicate rep = make_replicate(11);
  const FracConfig config;
  ThreadPool serial(1);
  ThreadPool wide(4);

  Rng rng_serial(42);
  Rng rng_wide(42);
  const ScoredRun a = run_random_filter_ensemble(rep, config, 0.3, 5, rng_serial, serial);
  const ScoredRun b = run_random_filter_ensemble(rep, config, 0.3, 5, rng_wide, wide);
  ASSERT_EQ(a.test_scores.size(), b.test_scores.size());
  for (std::size_t i = 0; i < a.test_scores.size(); ++i) {
    EXPECT_EQ(a.test_scores[i], b.test_scores[i]) << "score " << i << " differs";
  }
  // The callers' RNGs must also end in the same state.
  EXPECT_EQ(rng_serial(), rng_wide());
  // Modeled resources are analytic, independent of scheduling.
  EXPECT_EQ(a.resources.peak_bytes, b.resources.peak_bytes);
  EXPECT_EQ(a.resources.models_trained, b.resources.models_trained);
}

TEST(EnsembleDeterminism, DiverseScoresBitIdenticalAcrossThreadCounts) {
  const Replicate rep = make_replicate(13);
  const FracConfig config;
  ThreadPool serial(1);
  ThreadPool wide(4);

  Rng rng_serial(7);
  Rng rng_wide(7);
  const ScoredRun a = run_diverse_ensemble(rep, config, 0.25, 4, rng_serial, serial);
  const ScoredRun b = run_diverse_ensemble(rep, config, 0.25, 4, rng_wide, wide);
  ASSERT_EQ(a.test_scores.size(), b.test_scores.size());
  for (std::size_t i = 0; i < a.test_scores.size(); ++i) {
    EXPECT_EQ(a.test_scores[i], b.test_scores[i]) << "score " << i << " differs";
  }
  EXPECT_EQ(a.resources.peak_bytes, b.resources.peak_bytes);
}

}  // namespace
}  // namespace frac
