#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

namespace frac {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(2);
  for (int i = 0; i < 10; ++i) {
    pool.submit([] { throw std::runtime_error("task failed"); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // Pool must remain usable after an exception.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ZeroThreadsDefaultsToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    // no wait(): destructor must drain
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace frac
