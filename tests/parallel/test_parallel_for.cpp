#include "parallel/parallel_for.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace frac {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  parallel_for(pool, 0, 1000, [&](std::size_t i) { ++visits[i]; });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { called = true; });
  parallel_for(pool, 7, 3, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, SingleElementRange) {
  ThreadPool pool(2);
  std::size_t seen = 99;
  parallel_for(pool, 42, 43, [&](std::size_t i) { seen = i; });
  EXPECT_EQ(seen, 42u);
}

TEST(ParallelFor, ResultsMatchSerialSum) {
  ThreadPool pool(4);
  std::vector<double> out(500);
  parallel_for(pool, 0, 500, [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
  const double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * 499.0 * 500.0 / 2.0);
}

TEST(ParallelFor, ExceptionInBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(pool, 0, 100,
                            [](std::size_t i) {
                              if (i == 50) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

TEST(ParallelForChunks, ChunksCoverRangeWithoutOverlap) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(777);
  parallel_for_chunks(pool, 0, 777, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) ++visits[i];
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelForChunks, NonZeroBegin) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  parallel_for_chunks(pool, 100, 200, [&](std::size_t lo, std::size_t hi) {
    EXPECT_GE(lo, 100u);
    EXPECT_LE(hi, 200u);
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, GlobalPoolOverloadWorks) {
  std::atomic<int> count{0};
  parallel_for(0, 64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

}  // namespace
}  // namespace frac
