#include "util/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace frac {
namespace {

TEST(Metrics, CounterAccumulatesAndResets) {
  Counter& c = metrics_counter("test.counter_basic");
  c.reset();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, CounterIsThreadSafe) {
  Counter& c = metrics_counter("test.counter_concurrent");
  c.reset();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
}

TEST(Metrics, GaugeSetAndSetMax) {
  Gauge& g = metrics_gauge("test.gauge_basic");
  g.set(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(1.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Metrics, HistogramCountsSumAndBuckets) {
  Histogram& h = metrics_histogram("test.hist_basic");
  h.reset();
  h.observe(0.5);
  h.observe(0.5);
  h.observe(2.0);
  h.observe(-1.0);  // negative: clamped into the zero bucket, still counted
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.0);
  std::uint64_t bucketed = 0;
  for (std::size_t k = 0; k < Histogram::kBuckets; ++k) bucketed += h.bucket(k);
  EXPECT_EQ(bucketed, 4u);
  // Edges are fixed powers of two, increasing.
  EXPECT_LT(Histogram::bucket_edge(10), Histogram::bucket_edge(11));
}

TEST(Metrics, LookupReturnsSameInstance) {
  Counter& a = metrics_counter("test.same_instance");
  Counter& b = metrics_counter("test.same_instance");
  EXPECT_EQ(&a, &b);
}

TEST(Metrics, DumpHasFixedStructureAndCoreOrder) {
  const std::string dump = metrics_dump_json();
  // One JSON object with the three sections.
  EXPECT_EQ(dump.front(), '{');
  const std::size_t counters_at = dump.find("\"counters\"");
  const std::size_t gauges_at = dump.find("\"gauges\"");
  const std::size_t histograms_at = dump.find("\"histograms\"");
  ASSERT_NE(counters_at, std::string::npos);
  ASSERT_NE(gauges_at, std::string::npos);
  ASSERT_NE(histograms_at, std::string::npos);
  EXPECT_LT(counters_at, gauges_at);
  EXPECT_LT(gauges_at, histograms_at);
  // Core metrics are pre-registered in a fixed order, so their dump order is
  // stable no matter which instrumentation site ran first.
  const std::size_t units_at = dump.find("\"frac.units_trained\"");
  const std::size_t cells_at = dump.find("\"grid.cells_run\"");
  const std::size_t log_at = dump.find("\"log.messages\"");
  ASSERT_NE(units_at, std::string::npos);
  ASSERT_NE(cells_at, std::string::npos);
  ASSERT_NE(log_at, std::string::npos);
  EXPECT_LT(units_at, cells_at);
  EXPECT_LT(cells_at, log_at);
}

TEST(Metrics, DumpIsDeterministicWhenIdle) {
  const std::string a = metrics_dump_json();
  const std::string b = metrics_dump_json();
  EXPECT_EQ(a, b);
}

TEST(Metrics, DynamicMetricAppearsInDump) {
  metrics_counter("test.dynamic_in_dump").add(5);
  const std::string dump = metrics_dump_json();
  EXPECT_NE(dump.find("\"test.dynamic_in_dump\": 5"), std::string::npos);
}

}  // namespace
}  // namespace frac
