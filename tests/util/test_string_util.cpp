#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a:b::c", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyStringYieldsOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n z"), "z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseDouble, ParsesValid) {
  EXPECT_DOUBLE_EQ(parse_double("1.5", "test"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 ", "test"), -2000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_double("", "ctx"), std::invalid_argument);
}

TEST(ParseSize, ParsesValidAndRejectsNegative) {
  EXPECT_EQ(parse_size("42", "ctx"), 42u);
  EXPECT_THROW(parse_size("-1", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_size("3.5", "ctx"), std::invalid_argument);
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.234), "1.23");
}

}  // namespace
}  // namespace frac
