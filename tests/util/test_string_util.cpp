#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Split, BasicAndEmptyFields) {
  const auto parts = split("a:b::c", ':');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyStringYieldsOneField) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n z"), "z");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseDouble, ParsesValid) {
  EXPECT_DOUBLE_EQ(parse_double("1.5", "test"), 1.5);
  EXPECT_DOUBLE_EQ(parse_double(" -2e3 ", "test"), -2000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_THROW(parse_double("abc", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_double("1.5x", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_double("", "ctx"), std::invalid_argument);
}

TEST(ParseSize, ParsesValidAndRejectsNegative) {
  EXPECT_EQ(parse_size("42", "ctx"), 42u);
  EXPECT_THROW(parse_size("-1", "ctx"), std::invalid_argument);
  EXPECT_THROW(parse_size("3.5", "ctx"), std::invalid_argument);
}

TEST(StartsWith, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.234), "1.23");
}

TEST(FormatG17, ByteIdenticalToPrintfG17) {
  // The serving protocol's number printer: must match %.17g in the C locale
  // bit for bit (to_chars general/17 is specified to), while staying immune
  // to setlocale. Round-trip identity is what the serve contract rests on.
  for (const double value : {0.0, -0.0, 1.0, -1.5, 0.1 + 0.2, 1e-300, -2.5e17,
                             1.7976931348623157e308, 5e-324, 123456789.0, 3.14}) {
    EXPECT_EQ(format_g17(value), format("%.17g", value)) << value;
  }
}

}  // namespace
}  // namespace frac
