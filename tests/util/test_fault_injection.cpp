#include "util/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

namespace frac {
namespace {

TEST(FaultInjection, DisarmedByDefaultAndAfterClear) {
  clear_fault_plan();
  EXPECT_EQ(fault_plan_spec(), "");
  for (std::size_t key = 0; key < 100; ++key) {
    EXPECT_FALSE(fault_fires(FaultSite::kPredictorTrain, key));
    EXPECT_NO_THROW(maybe_inject(FaultSite::kPredictorTrain, key));
  }
}

TEST(FaultInjection, CertainProbabilityAlwaysFires) {
  const ScopedFaultPlan plan("predictor_train:1:9");
  for (std::size_t key = 0; key < 50; ++key) {
    EXPECT_TRUE(fault_fires(FaultSite::kPredictorTrain, key));
    EXPECT_THROW(maybe_inject(FaultSite::kPredictorTrain, key), InjectedFault);
  }
  // Unarmed sites stay quiet under a plan that arms another site.
  EXPECT_FALSE(fault_fires(FaultSite::kDatasetLoad, 0));
  EXPECT_NO_THROW(maybe_inject(FaultSite::kDatasetLoad, 0));
}

TEST(FaultInjection, ZeroProbabilityNeverFires) {
  const ScopedFaultPlan plan("predictor_train:0:9");
  for (std::size_t key = 0; key < 50; ++key) {
    EXPECT_FALSE(fault_fires(FaultSite::kPredictorTrain, key));
  }
}

TEST(FaultInjection, FiringIsDeterministicInSiteSeedAndKey) {
  std::vector<bool> first;
  {
    const ScopedFaultPlan plan("error_model_fit:0.3:17");
    for (std::size_t key = 0; key < 200; ++key) {
      first.push_back(fault_fires(FaultSite::kErrorModelFit, key));
    }
  }
  const ScopedFaultPlan plan("error_model_fit:0.3:17");
  for (std::size_t key = 0; key < 200; ++key) {
    EXPECT_EQ(fault_fires(FaultSite::kErrorModelFit, key), first[key]) << "key " << key;
  }
}

TEST(FaultInjection, EmpiricalRateTracksProbability) {
  const ScopedFaultPlan plan("predictor_train:0.25:5");
  std::size_t fired = 0;
  const std::size_t trials = 20000;
  for (std::size_t key = 0; key < trials; ++key) {
    fired += fault_fires(FaultSite::kPredictorTrain, key);
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(FaultInjection, SeedChangesWhichKeysFire) {
  std::vector<bool> seed_a, seed_b;
  {
    const ScopedFaultPlan plan("predictor_train:0.5:1");
    for (std::size_t key = 0; key < 200; ++key) {
      seed_a.push_back(fault_fires(FaultSite::kPredictorTrain, key));
    }
  }
  {
    const ScopedFaultPlan plan("predictor_train:0.5:2");
    for (std::size_t key = 0; key < 200; ++key) {
      seed_b.push_back(fault_fires(FaultSite::kPredictorTrain, key));
    }
  }
  EXPECT_NE(seed_a, seed_b);
}

TEST(FaultInjection, SitesAreIndependentStreams) {
  const ScopedFaultPlan plan("predictor_train:0.5:3,error_model_fit:0.5:3");
  std::vector<bool> train, fit;
  for (std::size_t key = 0; key < 200; ++key) {
    train.push_back(fault_fires(FaultSite::kPredictorTrain, key));
    fit.push_back(fault_fires(FaultSite::kErrorModelFit, key));
  }
  EXPECT_NE(train, fit);
}

TEST(FaultInjection, MultiSitePlanArmsEachListedSite) {
  const ScopedFaultPlan plan("serialize_write:1,dataset_load:1:4");
  EXPECT_THROW(maybe_inject(FaultSite::kSerializeWrite, 1), InjectedFault);
  EXPECT_THROW(maybe_inject(FaultSite::kDatasetLoad, 1), InjectedFault);
  EXPECT_NO_THROW(maybe_inject(FaultSite::kPredictorTrain, 1));
}

TEST(FaultInjection, InjectedFaultCarriesSiteAndNamedMessage) {
  const ScopedFaultPlan plan("serialize_write:1");
  try {
    maybe_inject(FaultSite::kSerializeWrite, 42);
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    EXPECT_EQ(e.site(), FaultSite::kSerializeWrite);
    EXPECT_NE(std::string(e.what()).find("serialize_write"), std::string::npos);
  }
}

TEST(FaultInjection, ScopedPlanRestoresPreviousPlan) {
  const ScopedFaultPlan outer("predictor_train:1:1");
  {
    const ScopedFaultPlan inner("dataset_load:1:2");
    EXPECT_EQ(fault_plan_spec(), "dataset_load:1:2");
    EXPECT_FALSE(fault_fires(FaultSite::kPredictorTrain, 0));
  }
  EXPECT_EQ(fault_plan_spec(), "predictor_train:1:1");
  EXPECT_TRUE(fault_fires(FaultSite::kPredictorTrain, 0));
}

TEST(FaultInjection, RejectsMalformedSpecs) {
  EXPECT_THROW(set_fault_plan("bogus_site:0.5"), std::invalid_argument);
  EXPECT_THROW(set_fault_plan("predictor_train"), std::invalid_argument);
  EXPECT_THROW(set_fault_plan("predictor_train:1.5"), std::invalid_argument);
  EXPECT_THROW(set_fault_plan("predictor_train:-0.1"), std::invalid_argument);
  EXPECT_THROW(set_fault_plan("predictor_train:nope"), std::invalid_argument);
  EXPECT_THROW(set_fault_plan("predictor_train:0.5:1:extra"), std::invalid_argument);
  // A failed install must not leave a half-armed plan behind.
  clear_fault_plan();
  EXPECT_FALSE(fault_fires(FaultSite::kPredictorTrain, 0));
}

TEST(FaultInjection, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
    const auto site = static_cast<FaultSite>(i);
    EXPECT_EQ(fault_site_from_name(fault_site_name(site)), site);
  }
  EXPECT_THROW(fault_site_from_name("unknown"), std::invalid_argument);
}

TEST(FaultInjection, FaultKeyIsStableAcrossCalls) {
  EXPECT_EQ(fault_key("some/path.csv"), fault_key("some/path.csv"));
  EXPECT_NE(fault_key("a"), fault_key("b"));
  // Pin the FNV-1a constant so firing decisions survive refactors.
  EXPECT_EQ(fault_key(""), 0xcbf29ce484222325ULL);
}

TEST(FaultInjection, FiringIsThreadCountInvariant) {
  const ScopedFaultPlan plan("predictor_train:0.4:11");
  std::vector<bool> serial(64);
  for (std::size_t key = 0; key < serial.size(); ++key) {
    serial[key] = fault_fires(FaultSite::kPredictorTrain, key);
  }
  std::vector<int> threaded(serial.size(), -1);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (std::size_t key = t; key < threaded.size(); key += 4) {
        threaded[key] = fault_fires(FaultSite::kPredictorTrain, key) ? 1 : 0;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (std::size_t key = 0; key < serial.size(); ++key) {
    EXPECT_EQ(threaded[key], serial[key] ? 1 : 0) << "key " << key;
  }
}

}  // namespace
}  // namespace frac
