#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace frac {
namespace {

TEST(CsvParse, SimpleFields) {
  const auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  const auto cells = parse_csv_line(",x,,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[1], "x");
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(cells[3], "");
}

TEST(CsvParse, QuotedDelimiter) {
  const auto cells = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "c");
}

TEST(CsvParse, DoubledQuotes) {
  const auto cells = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(CsvParse, CarriageReturnStripped) {
  const auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(CsvParse, AlternateDelimiter) {
  const auto cells = parse_csv_line("a\tb", '\t');
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a");
}

TEST(CsvRead, SkipsBlankLines) {
  std::istringstream in("a,b\n\nc,d\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST(CsvEscape, PlainCellUnchanged) { EXPECT_EQ(csv_escape("plain"), "plain"); }

TEST(CsvEscape, DelimiterGetsQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteGetsDoubled) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

TEST(CsvRoundTrip, WriteThenReadIsIdentity) {
  CsvTable table;
  table.rows = {{"name", "value"}, {"with,comma", "1.5"}, {"with\"quote", ""}};
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  // Note: the all-empty trailing row survives because "with\"quote" row has
  // a non-empty first cell; blank-line skipping only drops fully empty lines.
  ASSERT_EQ(back.row_count(), 3u);
  EXPECT_EQ(back.rows[1][0], "with,comma");
  EXPECT_EQ(back.rows[2][0], "with\"quote");
}

}  // namespace
}  // namespace frac
