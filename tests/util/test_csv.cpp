#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/errors.hpp"

namespace frac {
namespace {

TEST(CsvParse, SimpleFields) {
  const auto cells = parse_csv_line("a,b,c");
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_EQ(cells[0], "a");
  EXPECT_EQ(cells[1], "b");
  EXPECT_EQ(cells[2], "c");
}

TEST(CsvParse, EmptyFieldsPreserved) {
  const auto cells = parse_csv_line(",x,,");
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], "");
  EXPECT_EQ(cells[1], "x");
  EXPECT_EQ(cells[2], "");
  EXPECT_EQ(cells[3], "");
}

TEST(CsvParse, QuotedDelimiter) {
  const auto cells = parse_csv_line("\"a,b\",c");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a,b");
  EXPECT_EQ(cells[1], "c");
}

TEST(CsvParse, DoubledQuotes) {
  const auto cells = parse_csv_line("\"say \"\"hi\"\"\",x");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "say \"hi\"");
}

TEST(CsvParse, CarriageReturnStripped) {
  const auto cells = parse_csv_line("a,b\r");
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[1], "b");
}

TEST(CsvParse, AlternateDelimiter) {
  const auto cells = parse_csv_line("a\tb", '\t');
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0], "a");
}

TEST(CsvRead, SkipsBlankLines) {
  std::istringstream in("a,b\n\nc,d\n");
  const CsvTable table = read_csv(in);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(CsvRead, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), std::runtime_error);
}

TEST(CsvEscape, PlainCellUnchanged) { EXPECT_EQ(csv_escape("plain"), "plain"); }

TEST(CsvEscape, DelimiterGetsQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteGetsDoubled) { EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\""); }

// Regression: a quoted cell containing a newline used to be silently split
// into two rows because read_csv parsed each getline() result independently.
TEST(CsvRead, QuotedEmbeddedNewlineStaysOneRow) {
  std::istringstream in("id,note\n1,\"line one\nline two\"\n2,plain\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.row_count(), 3u);
  ASSERT_EQ(table.rows[1].size(), 2u);
  EXPECT_EQ(table.rows[1][0], "1");
  EXPECT_EQ(table.rows[1][1], "line one\nline two");
  EXPECT_EQ(table.rows[2][0], "2");
}

TEST(CsvRead, QuotedCellSpanningSeveralLines) {
  std::istringstream in("\"a\n\nb\",x\n");
  const CsvTable table = read_csv(in);
  ASSERT_EQ(table.row_count(), 1u);
  ASSERT_EQ(table.rows[0].size(), 2u);
  EXPECT_EQ(table.rows[0][0], "a\n\nb");
  EXPECT_EQ(table.rows[0][1], "x");
}

TEST(CsvRead, UnterminatedQuoteThrowsParseErrorWithRow) {
  std::istringstream in("a,b\nc,\"open\n");
  try {
    read_csv(in);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("row 2"), std::string::npos) << e.what();
  }
}

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv_line("\"open,b"), ParseError);
}

TEST(CsvEscape, NewlineGetsQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(csv_escape("a\rb"), "\"a\rb\"");
}

TEST(CsvRoundTrip, EmbeddedNewlinesSurvive) {
  CsvTable table;
  table.rows = {{"note", "x"}, {"first\nsecond", "y"}, {"tail\n", "\nhead"}};
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  ASSERT_EQ(back.row_count(), table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    EXPECT_EQ(back.rows[r], table.rows[r]) << "row " << r;
  }
}

// Property-style round trip over adversarial cell contents: every cell that
// csv_escape can represent must come back bit-identical.
TEST(CsvRoundTrip, AdversarialCellsAreIdentity) {
  const std::vector<std::string> nasty = {
      "",          "plain",      "a,b",       "\"",         "\"\"",
      "a\nb",      "\n",         "a\"b\"c",   " lead",      "trail ",
      "\"a,b\"\n", "mix,\"of\nall\"", "comma,then\nnewline"};
  CsvTable table;
  for (std::size_t i = 0; i < nasty.size(); ++i) {
    table.rows.push_back({nasty[i], nasty[(i * 7 + 3) % nasty.size()], "k"});
  }
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  ASSERT_EQ(back.row_count(), table.row_count());
  for (std::size_t r = 0; r < table.row_count(); ++r) {
    EXPECT_EQ(back.rows[r], table.rows[r]) << "row " << r;
  }
}

TEST(CsvRoundTrip, WriteThenReadIsIdentity) {
  CsvTable table;
  table.rows = {{"name", "value"}, {"with,comma", "1.5"}, {"with\"quote", ""}};
  std::ostringstream out;
  write_csv(out, table);
  std::istringstream in(out.str());
  const CsvTable back = read_csv(in);
  // Note: the all-empty trailing row survives because "with\"quote" row has
  // a non-empty first cell; blank-line skipping only drops fully empty lines.
  ASSERT_EQ(back.row_count(), 3u);
  EXPECT_EQ(back.rows[1][0], "with,comma");
  EXPECT_EQ(back.rows[2][0], "with\"quote");
}

}  // namespace
}  // namespace frac
