#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace frac {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentOfParentConsumption) {
  // split(salt) must give the same child stream regardless of what the
  // sibling children did.
  Rng parent1(7), parent2(7);
  Rng child1a = parent1.split(0);
  Rng child1b = parent1.split(1);
  Rng child2a = parent2.split(0);
  (void)child1a;
  Rng child2b = parent2.split(1);
  EXPECT_EQ(child1b(), child2b());
  EXPECT_EQ(child2a(), child1a());
}

TEST(Rng, SplitWithDistinctSaltsDiffer) {
  Rng parent(7);
  Rng a = parent.split(0);
  Rng parent2(7);
  Rng b = parent2.split(1);
  EXPECT_NE(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(4);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(5);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (const int c : counts) EXPECT_NEAR(c, n / 7, 500);
}

TEST(Rng, UniformIndexOfOneIsZero) {
  Rng rng(6);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(8);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(9);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(10);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GammaMeanEqualsShape) {
  Rng rng(11);
  for (const double shape : {0.5, 1.0, 2.0, 7.5}) {
    double acc = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) acc += rng.gamma(shape);
    EXPECT_NEAR(acc / n, shape, 0.1 * shape + 0.02) << "shape=" << shape;
  }
}

TEST(Rng, BetaMeanAndSupport) {
  Rng rng(12);
  const double a = 2.0, b = 5.0;
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.beta(a, b);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    acc += x;
  }
  EXPECT_NEAR(acc / n, a / (a + b), 0.01);
}

TEST(Rng, BinomialMean) {
  Rng rng(13);
  double acc = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) acc += rng.binomial(2, 0.4);
  EXPECT_NEAR(acc / n, 0.8, 0.02);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(14);
  const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(15);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(v, shuffled);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(16);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t s : sample) EXPECT_LT(s, 50u);
}

TEST(Rng, SampleWithoutReplacementFullRangeIsPermutation) {
  Rng rng(17);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementIsUnbiased) {
  Rng rng(18);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (const std::size_t i : rng.sample_without_replacement(10, 3)) ++counts[i];
  }
  for (const int c : counts) EXPECT_NEAR(c, trials * 3 / 10, 300);
}

TEST(Splitmix64, KnownSequenceIsStable) {
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64_next(state);
  const std::uint64_t second = splitmix64_next(state);
  EXPECT_NE(first, second);
  std::uint64_t state2 = 0;
  EXPECT_EQ(splitmix64_next(state2), first);
}

}  // namespace
}  // namespace frac
