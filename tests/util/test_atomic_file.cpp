#include "util/atomic_file.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace frac {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Leftover .tmp files would betray a non-atomic (or leaky) writer.
std::size_t tmp_files_next_to(const std::string& path) {
  std::size_t count = 0;
  const std::filesystem::path dir = std::filesystem::path(path).parent_path();
  const std::string stem = std::filesystem::path(path).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(stem + ".tmp", 0) == 0) ++count;
  }
  return count;
}

TEST(AtomicFile, WritesContentAndLeavesNoTempFile) {
  const std::string path = temp_path("atomic_ok.txt");
  atomic_write_file(path, [](std::ostream& out) { out << "hello\nworld\n"; });
  EXPECT_EQ(slurp(path), "hello\nworld\n");
  EXPECT_EQ(tmp_files_next_to(path), 0u);
}

TEST(AtomicFile, ThrowingWriterLeavesNoTarget) {
  const std::string path = temp_path("atomic_throw.txt");
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& out) {
                                   out << "partial";
                                   throw IoError("writer failed midway");
                                 }),
               IoError);
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_EQ(tmp_files_next_to(path), 0u);
}

TEST(AtomicFile, ThrowingWriterPreservesPreviousContent) {
  const std::string path = temp_path("atomic_keep.txt");
  atomic_write_file(path, [](std::ostream& out) { out << "original"; });
  EXPECT_THROW(atomic_write_file(path,
                                 [](std::ostream& out) {
                                   out << "replacement";
                                   throw IoError("writer failed midway");
                                 }),
               IoError);
  // The crash-safety contract: the old file is intact, not truncated.
  EXPECT_EQ(slurp(path), "original");
  EXPECT_EQ(tmp_files_next_to(path), 0u);
}

TEST(AtomicFile, OverwritesExistingFileCompletely) {
  const std::string path = temp_path("atomic_overwrite.txt");
  atomic_write_file(path, [](std::ostream& out) { out << "a much longer first version"; });
  atomic_write_file(path, [](std::ostream& out) { out << "short"; });
  EXPECT_EQ(slurp(path), "short");
}

TEST(AtomicFile, UnwritableDirectoryIsAnIoError) {
  EXPECT_THROW(
      atomic_write_file(testing::TempDir() + "/no_such_dir/x.txt", [](std::ostream&) {}),
      IoError);
}

}  // namespace
}  // namespace frac
