#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace frac {
namespace {

TEST(Serialize, ScalarRoundTrip) {
  std::ostringstream out;
  write_tagged(out, "d", 1.0 / 3.0);
  write_tagged(out, "u", std::uint64_t{42});
  write_tagged(out, "s", std::string("hello"));
  std::istringstream in(out.str());
  EXPECT_DOUBLE_EQ(read_tagged_double(in, "d"), 1.0 / 3.0);
  EXPECT_EQ(read_tagged_uint(in, "u"), 42u);
  EXPECT_EQ(read_tagged_string(in, "s"), "hello");
}

TEST(Serialize, DoubleRoundTripIsExact) {
  std::ostringstream out;
  const double tricky = 0.1 + 0.2;  // 0.30000000000000004
  write_tagged(out, "x", tricky);
  std::istringstream in(out.str());
  EXPECT_EQ(read_tagged_double(in, "x"), tricky);  // bit-exact
}

TEST(Serialize, VectorRoundTrip) {
  std::ostringstream out;
  write_tagged(out, "v", std::vector<double>{1.5, -2.25, 0.0});
  write_tagged(out, "i", std::vector<std::uint64_t>{7, 0, 99});
  write_tagged(out, "e", std::vector<double>{});
  std::istringstream in(out.str());
  EXPECT_EQ(read_tagged_doubles(in, "v"), (std::vector<double>{1.5, -2.25, 0.0}));
  EXPECT_EQ(read_tagged_uints(in, "i"), (std::vector<std::uint64_t>{7, 0, 99}));
  EXPECT_TRUE(read_tagged_doubles(in, "e").empty());
}

TEST(Serialize, TagMismatchThrows) {
  std::ostringstream out;
  write_tagged(out, "alpha", 1.0);
  std::istringstream in(out.str());
  EXPECT_THROW(read_tagged_double(in, "beta"), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  std::istringstream in("");
  EXPECT_THROW(read_tagged_double(in, "x"), std::runtime_error);
}

TEST(Serialize, VectorLengthMismatchThrows) {
  std::istringstream in("v 3 1.0 2.0\n");
  EXPECT_THROW(read_tagged_doubles(in, "v"), std::runtime_error);
}

TEST(Serialize, StringsWithSpecialCharactersRoundTrip) {
  std::ostringstream out;
  write_tagged(out, "s1", std::string("two words"));
  write_tagged(out, "s2", std::string("tabs\tand\nnewlines"));
  write_tagged(out, "s3", std::string("100%"));
  std::istringstream in(out.str());
  EXPECT_EQ(read_tagged_string(in, "s1"), "two words");
  EXPECT_EQ(read_tagged_string(in, "s2"), "tabs\tand\nnewlines");
  EXPECT_EQ(read_tagged_string(in, "s3"), "100%");
}

}  // namespace
}  // namespace frac
