#include "util/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <tuple>

#include "data/expression_generator.hpp"
#include "data/split.hpp"
#include "frac/frac.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::size_t count_occurrences(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

/// Temp path helper; removes the file on destruction.
struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) : path(testing::TempDir() + name) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

Replicate tiny_replicate(std::uint64_t seed = 5) {
  ExpressionModelConfig c;
  c.features = 12;
  c.modules = 3;
  c.genes_per_module = 4;
  c.disease_modules = 2;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(16, Label::kNormal, rng);
  rep.test = model.sample(6, Label::kNormal, rng);
  return rep;
}

TEST(Trace, DisarmedSpansAreNoOps) {
  ASSERT_FALSE(trace_armed());  // tests run without FRAC_TRACE
  EXPECT_EQ(trace_path(), "");
  {
    const TraceSpan span("never.recorded");
    const TraceSpan with_args("never.recorded", std::string("{\"x\": 1}"));
    trace_instant("never.recorded", "dropped");
  }
  flush_trace();  // no path: must be a no-op, not a crash
}

TEST(Trace, ScopedTraceWritesChromeTracingJson) {
  const TempFile file("trace_basic.json");
  {
    const ScopedTrace scoped(file.path);
    ASSERT_TRUE(trace_armed());
    { const TraceSpan span("test.outer", std::string("{\"k\": 3}")); }
    trace_instant("test.marker", "hello \"quoted\" world");
  }
  EXPECT_FALSE(trace_armed());
  const std::string json = read_file(file.path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"k\": 3}"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("hello \\\"quoted\\\" world"), std::string::npos);
}

TEST(Trace, FlushIsCumulativeAndIdempotent) {
  const TempFile file("trace_cumulative.json");
  const ScopedTrace scoped(file.path);
  { const TraceSpan span("test.first"); }
  flush_trace();
  { const TraceSpan span("test.second"); }
  flush_trace();
  const std::string after_second = read_file(file.path);
  EXPECT_EQ(count_occurrences(after_second, "\"name\": \"test.first\""), 1u);
  EXPECT_EQ(count_occurrences(after_second, "\"name\": \"test.second\""), 1u);
  flush_trace();  // nothing new: rewrite must not duplicate or drop events
  EXPECT_EQ(read_file(file.path), after_second);
}

/// The determinism contract: spans are per logical work item, so their
/// counts per name must not depend on the thread count.
TEST(Trace, SpanCountsDeterministicAcrossThreadCounts) {
  const Replicate rep = tiny_replicate();
  FracConfig config;
  config.seed = 11;

  const auto span_counts = [&](std::size_t threads, const std::string& path) {
    const ScopedTrace scoped(path);
    ThreadPool pool(threads);
    const FracModel model = FracModel::train(rep.train, config, pool);
    (void)model.score(rep.test, pool);
    flush_trace();
    const std::string json = read_file(path);
    return std::tuple{count_occurrences(json, "\"name\": \"frac.train\""),
                      count_occurrences(json, "\"name\": \"frac.unit_train\""),
                      count_occurrences(json, "\"name\": \"frac.cv_fold\""),
                      count_occurrences(json, "\"name\": \"frac.predictor_train\""),
                      count_occurrences(json, "\"name\": \"frac.score\"")};
  };

  const TempFile serial("trace_threads1.json");
  const TempFile parallel("trace_threads4.json");
  const auto counts1 = span_counts(1, serial.path);
  const auto counts4 = span_counts(4, parallel.path);
  EXPECT_EQ(counts1, counts4);
  EXPECT_EQ(std::get<0>(counts1), 1u);                       // one frac.train
  EXPECT_EQ(std::get<1>(counts1), rep.train.feature_count());  // one span per unit
  EXPECT_GT(std::get<2>(counts1), 0u);
}

}  // namespace
}  // namespace frac
