#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace frac {
namespace {

/// Restores the log level on scope exit so tests don't leak thresholds.
struct LevelGuard {
  LogLevel saved = log_level();
  ~LevelGuard() { set_log_level(saved); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(Logging, FirstUseReadsEnvDefault) {
  const LevelGuard guard;
  detail::reset_log_level_for_test();
  // Tests run without FRAC_LOG, so first use must install the warn default.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

// Regression: log_level() first-use init used a relaxed load + store pair, so
// a set_log_level() landing between them was silently overwritten with the
// env default. The CAS fix makes set_log_level() win in every interleaving;
// stress the window to make the old behavior fail reliably.
TEST(Logging, SetLevelSurvivesConcurrentFirstUse) {
  const LevelGuard guard;
  for (int i = 0; i < 500; ++i) {
    detail::reset_log_level_for_test();
    std::thread reader([] { (void)log_level(); });
    set_log_level(LogLevel::kDebug);
    reader.join();
    ASSERT_EQ(log_level(), LogLevel::kDebug) << "iteration " << i;
  }
}

TEST(Logging, BelowThresholdDropsMessageAndMetric) {
  const LevelGuard guard;
  set_log_level(LogLevel::kError);
  Counter& messages = metrics_counter("log.messages");
  const std::uint64_t before = messages.value();
  FRAC_WARN << "should be dropped";
  EXPECT_EQ(messages.value(), before);
  FRAC_ERROR << "counted (expected in test output)";
  EXPECT_EQ(messages.value(), before + 1);
}

TEST(Logging, ArmedTraceReceivesLogLineAsInstant) {
  const LevelGuard guard;
  set_log_level(LogLevel::kWarn);
  const std::string path = testing::TempDir() + "log_trace.json";
  std::remove(path.c_str());
  {
    const ScopedTrace scoped(path);
    FRAC_WARN << "trace-routed line (expected in test output)";
  }
  const std::string json = read_file(path);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("trace-routed line"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"WARN\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace frac
