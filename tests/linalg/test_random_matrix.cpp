#include "linalg/random_matrix.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace frac {
namespace {

double entry_variance(const Matrix& m) {
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const double v : m.row(r)) {
      sum += v;
      sum_sq += v * v;
    }
  }
  const double n = static_cast<double>(m.size());
  const double mu = sum / n;
  return sum_sq / n - mu * mu;
}

class RandomMatrixVariance : public ::testing::TestWithParam<RandomMatrixKind> {};

TEST_P(RandomMatrixVariance, UnitVarianceEntries) {
  Rng rng(21);
  const Matrix m = make_random_matrix(200, 200, GetParam(), rng);
  EXPECT_NEAR(entry_variance(m), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, RandomMatrixVariance,
                         ::testing::Values(RandomMatrixKind::kGaussian,
                                           RandomMatrixKind::kUniform,
                                           RandomMatrixKind::kAchlioptas));

TEST(RandomMatrix, AchlioptasSparsityIsTwoThirds) {
  Rng rng(22);
  const Matrix m = make_random_matrix(300, 300, RandomMatrixKind::kAchlioptas, rng);
  std::size_t zeros = 0;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const double v : m.row(r)) zeros += (v == 0.0);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / static_cast<double>(m.size()), 2.0 / 3.0, 0.01);
}

TEST(RandomMatrix, UniformEntriesBounded) {
  Rng rng(23);
  const Matrix m = make_random_matrix(50, 50, RandomMatrixKind::kUniform, rng);
  const double bound = std::sqrt(3.0) + 1e-12;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (const double v : m.row(r)) {
      EXPECT_LE(std::abs(v), bound);
    }
  }
}

TEST(SparseSignMatrix, MatchesDenseEquivalentSemantics) {
  Rng rng(24);
  const SparseSignMatrix sparse = make_sparse_sign_matrix(40, 60, rng);
  EXPECT_EQ(sparse.rows, 40u);
  EXPECT_EQ(sparse.cols, 60u);
  // Values are ±sqrt(3) only.
  const float sqrt3 = static_cast<float>(std::sqrt(3.0));
  std::size_t nonzeros = 0;
  for (const auto& row : sparse.row_entries) {
    for (const auto& [c, v] : row) {
      EXPECT_LT(c, 60u);
      EXPECT_TRUE(v == sqrt3 || v == -sqrt3);
      ++nonzeros;
    }
  }
  EXPECT_NEAR(static_cast<double>(nonzeros) / (40.0 * 60.0), 1.0 / 3.0, 0.05);
}

TEST(SparseSignMatrix, MultiplyMatchesManualComputation) {
  SparseSignMatrix m;
  m.rows = 2;
  m.cols = 3;
  m.row_entries = {{{0, 1.0f}, {2, -1.0f}}, {{1, 2.0f}}};
  const std::vector<double> x{3, 5, 7};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3 - 7);
  EXPECT_DOUBLE_EQ(y[1], 10);
}

TEST(CountSketch, ExactlyOneEntryPerColumn) {
  Rng rng(31);
  const SparseSignMatrix m = make_count_sketch_matrix(16, 100, rng);
  std::vector<int> per_column(100, 0);
  for (const auto& row : m.row_entries) {
    for (const auto& [c, v] : row) {
      ++per_column[c];
      EXPECT_TRUE(v == 1.0f || v == -1.0f);
    }
  }
  for (const int count : per_column) EXPECT_EQ(count, 1);
}

TEST(CountSketch, PreservesExpectedSquaredNorm) {
  Rng rng(32);
  const std::size_t d = 500, k = 64, trials = 60;
  std::vector<double> x(d);
  for (double& v : x) v = rng.normal();
  const double norm2 = 0.0 + [&] {
    double acc = 0;
    for (const double v : x) acc += v * v;
    return acc;
  }();
  double mean_ratio = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    const SparseSignMatrix m = make_count_sketch_matrix(k, d, rng);
    std::vector<double> y(k);
    m.multiply(x, y);
    double y2 = 0;
    for (const double v : y) y2 += v * v;
    mean_ratio += y2 / norm2 / static_cast<double>(trials);
  }
  EXPECT_NEAR(mean_ratio, 1.0, 0.1);
}

TEST(CountSketch, OneHotIndicatorMapsToSingleCoordinate) {
  // The discrete-data property: a 1-hot vector keeps all its mass on one
  // output coordinate instead of smearing over every dimension.
  Rng rng(33);
  const SparseSignMatrix m = make_count_sketch_matrix(8, 30, rng);
  std::vector<double> one_hot(30, 0.0);
  one_hot[17] = 1.0;
  std::vector<double> y(8);
  m.multiply(one_hot, y);
  std::size_t nonzeros = 0;
  for (const double v : y) nonzeros += (v != 0.0);
  EXPECT_EQ(nonzeros, 1u);
}

TEST(SparseSignMatrix, BytesAccountsEntries) {
  Rng rng(25);
  const SparseSignMatrix m = make_sparse_sign_matrix(10, 30, rng);
  EXPECT_GT(m.bytes(), sizeof(SparseSignMatrix));
}

}  // namespace
}  // namespace frac
