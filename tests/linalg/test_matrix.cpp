#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Matrix, ZeroInitialized) {
  const Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m(r, c), 0.0);
  }
}

TEST(Matrix, FillConstructor) {
  const Matrix m(2, 2, 7.5);
  EXPECT_EQ(m(1, 1), 7.5);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  auto row = m.row(1);
  row[0] = 1.0;
  row[2] = 3.0;
  EXPECT_EQ(m(1, 0), 1.0);
  EXPECT_EQ(m(1, 2), 3.0);
  EXPECT_EQ(m(0, 0), 0.0);
}

TEST(Matrix, ColGathersStrided) {
  Matrix m(3, 2);
  m(0, 1) = 10;
  m(1, 1) = 11;
  m(2, 1) = 12;
  const auto col = m.col(1);
  EXPECT_EQ(col, (std::vector<double>{10, 11, 12}));
}

TEST(Matrix, ColViewReadsStridedWithoutCopy) {
  Matrix m(3, 2);
  m(0, 1) = 10;
  m(1, 1) = 11;
  m(2, 1) = 12;
  const auto view = m.col_view(1);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[0], 10);
  EXPECT_EQ(view[1], 11);
  EXPECT_EQ(view[2], 12);
}

TEST(Matrix, CopyColFillsCallerBuffer) {
  Matrix m(3, 2);
  m(0, 0) = 1;
  m(1, 0) = 2;
  m(2, 0) = 3;
  std::vector<double> buf(3);
  m.copy_col(0, buf);
  EXPECT_EQ(buf, (std::vector<double>{1, 2, 3}));
}

TEST(MatrixView, WholeMatrixIsIdentityView) {
  Matrix m(2, 3);
  m(1, 2) = 9;
  const MatrixView v(m);
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.cols(), 3u);
  EXPECT_EQ(v(1, 2), 9);
  EXPECT_EQ(v.row(1).data(), m.row(1).data());  // same storage, no copy
}

TEST(MatrixView, RowSubsetRemapsIndices) {
  Matrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) m(r, 0) = static_cast<double>(r);
  const std::vector<std::size_t> rows{3, 1};
  const MatrixView v(m, rows);
  EXPECT_EQ(v.rows(), 2u);
  EXPECT_EQ(v.row_index(0), 3u);
  EXPECT_EQ(v(0, 0), 3.0);
  EXPECT_EQ(v(1, 0), 1.0);
  EXPECT_EQ(v.row(1).data(), m.row(1).data());
}

TEST(Matrix, BytesReflectsSize) {
  const Matrix m(4, 5);
  EXPECT_EQ(m.bytes(), 4u * 5u * sizeof(double));
}

TEST(Matmul, KnownProduct) {
  Matrix a(2, 3);
  Matrix b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
  double v = 1;
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) a(r, c) = v++;
  v = 7;
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 2; ++c) b(r, c) = v++;
  const Matrix c = matmul(a, b);
  EXPECT_EQ(c(0, 0), 58);
  EXPECT_EQ(c(0, 1), 64);
  EXPECT_EQ(c(1, 0), 139);
  EXPECT_EQ(c(1, 1), 154);
}

TEST(Matmul, IdentityIsNeutral) {
  Matrix a(3, 3);
  a(0, 1) = 2.5;
  a(2, 0) = -1.0;
  Matrix eye(3, 3);
  for (std::size_t i = 0; i < 3; ++i) eye(i, i) = 1.0;
  EXPECT_EQ(matmul(a, eye), a);
  EXPECT_EQ(matmul(eye, a), a);
}

TEST(Transpose, RoundTrip) {
  Matrix a(2, 3);
  a(0, 2) = 5;
  a(1, 0) = 3;
  const Matrix t = transpose(a);
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_EQ(t(2, 0), 5);
  EXPECT_EQ(t(0, 1), 3);
  EXPECT_EQ(transpose(t), a);
}

}  // namespace
}  // namespace frac
