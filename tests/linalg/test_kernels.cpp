#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace frac {
namespace {

TEST(Kernels, DotProduct) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 4 - 10 + 18);
}

TEST(Kernels, DotEmptyIsZero) {
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(dot(empty, empty), 0.0);
}

TEST(Kernels, Axpy) {
  const std::vector<double> x{1, 2};
  std::vector<double> y{10, 20};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12);
  EXPECT_DOUBLE_EQ(y[1], 24);
}

TEST(Kernels, Scale) {
  std::vector<double> x{1, -2, 3};
  scale(-2.0, x);
  EXPECT_DOUBLE_EQ(x[0], -2);
  EXPECT_DOUBLE_EQ(x[1], 4);
  EXPECT_DOUBLE_EQ(x[2], -6);
}

TEST(Kernels, Norms) {
  const std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(squared_norm(x), 25);
  EXPECT_DOUBLE_EQ(norm(x), 5);
}

TEST(Kernels, SquaredDistance) {
  const std::vector<double> x{0, 0};
  const std::vector<double> y{3, 4};
  EXPECT_DOUBLE_EQ(squared_distance(x, y), 25);
  EXPECT_DOUBLE_EQ(squared_distance(x, x), 0);
}

TEST(Kernels, Gemv) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const std::vector<double> x{1, 0, -1};
  std::vector<double> y(2);
  gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], -2);
  EXPECT_DOUBLE_EQ(y[1], -2);
}

TEST(Kernels, MeanVarianceStddev) {
  const std::vector<double> x{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(x), 5.0);
  EXPECT_NEAR(sample_variance(x), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(sample_stddev(x), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Kernels, DegenerateStats) {
  const std::vector<double> empty;
  const std::vector<double> one{5.0};
  EXPECT_DOUBLE_EQ(mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(sample_variance(one), 0.0);
}

TEST(Kernels, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Kernels, MedianDoesNotMutateInput) {
  std::vector<double> x{3, 1, 2};
  (void)median(x);
  EXPECT_EQ(x, (std::vector<double>{3, 1, 2}));
}

TEST(NormalQuantile, KnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.841344746), 1.0, 1e-5);
  EXPECT_NEAR(normal_quantile(0.001), -3.090232, 1e-4);
}

TEST(NormalQuantile, Symmetry) {
  for (const double p : {0.01, 0.2, 0.37, 0.49}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9) << p;
  }
}

TEST(NormalQuantile, MonotoneIncreasing) {
  double prev = normal_quantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = normal_quantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(NormalQuantile, InvertsEmpiricalCdf) {
  // Check against a Monte-Carlo CDF from the library's own normal sampler.
  Rng rng(99);
  const int n = 200000;
  std::vector<double> draws(n);
  for (double& d : draws) d = rng.normal();
  std::sort(draws.begin(), draws.end());
  for (const double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double empirical = draws[static_cast<std::size_t>(p * n)];
    EXPECT_NEAR(normal_quantile(p), empirical, 0.02) << p;
  }
}

}  // namespace
}  // namespace frac
