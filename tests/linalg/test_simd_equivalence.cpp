// Dispatch-level equivalence: every kernel must be *bit-identical* between
// the scalar reference and the AVX2 path (the determinism contract in
// DESIGN.md §9 and linalg/kernels_impl.hpp). Bitwise equality — not
// EXPECT_NEAR — is the point: NS scores built on these kernels must not
// change when the binary lands on a machine with different SIMD support.
#include "linalg/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

using simd::KernelTable;
using simd::Level;

// Exercises multiples of the 16-element block, the partial-block tail, and
// off-by-one sizes around both vector width (4) and block width (16).
const std::size_t kLengths[] = {0, 1, 3, 7, 8, 15, 16, 17, 31, 33, 100, 1024, 1027};

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  // Mix magnitudes so accumulation order actually matters in the low bits.
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.normal() * (i % 7 == 0 ? 1e6 : 1.0);
  return out;
}

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

class SimdEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    scalar_ = simd::kernel_table(Level::kScalar);
    ASSERT_NE(scalar_, nullptr);
    avx2_ = simd::kernel_table(Level::kAvx2);
    if (avx2_ == nullptr || !simd::cpu_supports(Level::kAvx2)) {
      GTEST_SKIP() << "AVX2 unavailable; nothing to compare against the scalar path";
    }
  }

  const KernelTable* scalar_ = nullptr;
  const KernelTable* avx2_ = nullptr;
};

TEST_F(SimdEquivalence, DotBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 11 + n);
    const auto y = random_values(n, 23 + n);
    EXPECT_TRUE(bits_equal(scalar_->dot(x.data(), y.data(), n),
                           avx2_->dot(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_F(SimdEquivalence, DotBitIdenticalUnaligned) {
  // Misaligned loads must not change the result: offset both operands off
  // the allocator's 16/32-byte alignment.
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n + 1, 31 + n);
    const auto y = random_values(n + 1, 37 + n);
    EXPECT_TRUE(bits_equal(scalar_->dot(x.data() + 1, y.data() + 1, n),
                           avx2_->dot(x.data() + 1, y.data() + 1, n)))
        << "n=" << n;
  }
}

TEST_F(SimdEquivalence, SquaredNormAndDistanceBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 41 + n);
    const auto y = random_values(n, 43 + n);
    EXPECT_TRUE(bits_equal(scalar_->squared_norm(x.data(), n),
                           avx2_->squared_norm(x.data(), n)))
        << "n=" << n;
    EXPECT_TRUE(bits_equal(scalar_->squared_distance(x.data(), y.data(), n),
                           avx2_->squared_distance(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_F(SimdEquivalence, AxpyAndScaleBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 53 + n);
    auto y_scalar = random_values(n, 59 + n);
    auto y_avx2 = y_scalar;
    scalar_->axpy(-1.75, x.data(), y_scalar.data(), n);
    avx2_->axpy(-1.75, x.data(), y_avx2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_avx2[i])) << "axpy n=" << n << " i=" << i;
    }
    scalar_->scale(0.3, y_scalar.data(), n);
    avx2_->scale(0.3, y_avx2.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_avx2[i])) << "scale n=" << n << " i=" << i;
    }
  }
}

TEST_F(SimdEquivalence, GemvBitIdentical) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{33},
                              std::size_t{1024}}) {
    const std::size_t m = 5;
    const auto a = random_values(m * n, 61 + n);
    const auto x = random_values(n, 67 + n);
    std::vector<double> y_scalar(m), y_avx2(m);
    scalar_->gemv(a.data(), m, n, x.data(), y_scalar.data());
    avx2_->gemv(a.data(), m, n, x.data(), y_avx2.data());
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_avx2[i])) << "n=" << n << " row=" << i;
    }
  }
}

TEST_F(SimdEquivalence, MatmulBitIdentical) {
  // Sizes spanning less-than-one-block through multiple KC/NC blocks.
  const std::size_t shapes[][3] = {{1, 1, 1}, {3, 5, 2}, {17, 65, 9}, {8, 130, 520}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_values(m * k, 71 + m);
    const auto b = random_values(k * n, 73 + n);
    std::vector<double> c_scalar(m * n, 0.0), c_avx2(m * n, 0.0);
    scalar_->matmul(a.data(), b.data(), c_scalar.data(), m, k, n);
    avx2_->matmul(a.data(), b.data(), c_avx2.data(), m, k, n);
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_TRUE(bits_equal(c_scalar[i], c_avx2[i]))
          << m << "x" << k << "x" << n << " elem=" << i;
    }
  }
}

TEST(SimdMatmul, BlockedMatchesNaiveReference) {
  // The cache-blocked kernel reorders only the (kk, jj) loop *blocks*; each
  // C element still accumulates its k terms in ascending order, so it must
  // equal a naive i-k-j triple loop exactly, not just approximately.
  const std::size_t m = 9, k = 200, n = 37;
  const auto a = random_values(m * k, 101);
  const auto b = random_values(k * n, 103);
  Matrix ma(m, k), mb(k, n);
  std::copy(a.begin(), a.end(), ma.data());
  std::copy(b.begin(), b.end(), mb.data());
  const Matrix mc = matmul(ma, mb);
  std::vector<double> ref(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        ref[i * n + j] = std::fma(a[i * k + p], b[p * n + j], ref[i * n + j]);
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_TRUE(bits_equal(mc(i, j), ref[i * n + j])) << i << "," << j;
    }
  }
}

TEST(SimdDispatch, ForceLevelReroutesSpanKernels) {
  // The span API in kernels.hpp must follow force_level, and results must be
  // bit-identical either way (this passes trivially on non-AVX2 machines,
  // where force_level(kAvx2) is a no-op).
  const auto x = random_values(1027, 107);
  const auto y = random_values(1027, 109);
  const Level original = simd::active_level();
  simd::force_level(Level::kScalar);
  EXPECT_EQ(simd::active_level(), Level::kScalar);
  const double d_scalar = dot(x, y);
  simd::force_level(Level::kAvx2);
  const double d_native = dot(x, y);
  simd::force_level(original);
  EXPECT_TRUE(bits_equal(d_scalar, d_native));
}

TEST(SimdDispatch, LevelNamesAndSupport) {
  EXPECT_TRUE(simd::cpu_supports(Level::kScalar));
  EXPECT_STREQ(simd::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(Level::kAvx2), "avx2");
  EXPECT_NE(simd::kernel_table(Level::kScalar), nullptr);
}

TEST(GaussianKernelSum, MatchesDirectLoopValues) {
  // Shared single-implementation kernel: just sanity-check the math; the
  // blocked order is its own reference on every level.
  const auto pts = random_values(100, 113);
  const double inv_h = 0.8;
  const double x0 = 0.25;
  double ref = 0.0;
  for (const double p : pts) {
    const double z = (x0 - p) * inv_h;
    ref += std::exp(-0.5 * z * z);
  }
  EXPECT_NEAR(gaussian_kernel_sum(pts, x0, inv_h), ref, 1e-12 * (1.0 + std::abs(ref)));
}

}  // namespace
}  // namespace frac
