// Dispatch-level equivalence: every kernel must be *bit-identical* between
// the scalar reference and each vector path (AVX2, AVX-512 — the determinism
// contract in DESIGN.md §9 and linalg/kernels_impl.hpp). Bitwise equality —
// not EXPECT_NEAR — is the point: NS scores built on these kernels must not
// change when the binary lands on a machine with different SIMD support.
// Levels the CPU or build lacks skip cleanly.
#include "linalg/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

using simd::KernelTable;
using simd::Level;

// Exercises multiples of the 16-element block, the partial-block tail, and
// off-by-one sizes around both vector width (4/8) and block width (16).
const std::size_t kLengths[] = {0, 1, 3, 7, 8, 15, 16, 17, 31, 33, 100, 1024, 1027};

std::vector<double> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  // Mix magnitudes so accumulation order actually matters in the low bits.
  for (std::size_t i = 0; i < n; ++i) out[i] = rng.normal() * (i % 7 == 0 ? 1e6 : 1.0);
  return out;
}

std::vector<float> random_values_f32(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(rng.normal() * (i % 7 == 0 ? 1e3 : 1.0));
  }
  return out;
}

::testing::AssertionResult bits_equal(double a, double b) {
  if (std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint64_t>(a) << " vs "
         << std::bit_cast<std::uint64_t>(b) << ")";
}

::testing::AssertionResult bits_equal_f32(float a, float b) {
  if (std::bit_cast<std::uint32_t>(a) == std::bit_cast<std::uint32_t>(b)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bits " << std::bit_cast<std::uint32_t>(a) << " vs "
         << std::bit_cast<std::uint32_t>(b) << ")";
}

/// Compares one vector dispatch level (the parameter) against the scalar
/// reference; skips when the CPU or build lacks the level.
class SimdEquivalence : public ::testing::TestWithParam<Level> {
 protected:
  void SetUp() override {
    scalar_ = simd::kernel_table(Level::kScalar);
    ASSERT_NE(scalar_, nullptr);
    vec_ = simd::kernel_table(GetParam());
    if (vec_ == nullptr || !simd::cpu_supports(GetParam())) {
      GTEST_SKIP() << simd::level_name(GetParam())
                   << " unavailable; nothing to compare against the scalar path";
    }
  }

  const KernelTable* scalar_ = nullptr;
  const KernelTable* vec_ = nullptr;
};

INSTANTIATE_TEST_SUITE_P(Levels, SimdEquivalence,
                         ::testing::Values(Level::kAvx2, Level::kAvx512),
                         [](const ::testing::TestParamInfo<Level>& info) {
                           return std::string(simd::level_name(info.param));
                         });

TEST_P(SimdEquivalence, DotBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 11 + n);
    const auto y = random_values(n, 23 + n);
    EXPECT_TRUE(bits_equal(scalar_->dot(x.data(), y.data(), n),
                           vec_->dot(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_P(SimdEquivalence, DotBitIdenticalUnaligned) {
  // Misaligned loads must not change the result: offset both operands off
  // the allocator's 16/32/64-byte alignment.
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n + 1, 31 + n);
    const auto y = random_values(n + 1, 37 + n);
    EXPECT_TRUE(bits_equal(scalar_->dot(x.data() + 1, y.data() + 1, n),
                           vec_->dot(x.data() + 1, y.data() + 1, n)))
        << "n=" << n;
  }
}

TEST_P(SimdEquivalence, SquaredNormAndDistanceBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 41 + n);
    const auto y = random_values(n, 43 + n);
    EXPECT_TRUE(bits_equal(scalar_->squared_norm(x.data(), n),
                           vec_->squared_norm(x.data(), n)))
        << "n=" << n;
    EXPECT_TRUE(bits_equal(scalar_->squared_distance(x.data(), y.data(), n),
                           vec_->squared_distance(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_P(SimdEquivalence, AxpyAndScaleBitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values(n, 53 + n);
    auto y_scalar = random_values(n, 59 + n);
    auto y_vec = y_scalar;
    scalar_->axpy(-1.75, x.data(), y_scalar.data(), n);
    vec_->axpy(-1.75, x.data(), y_vec.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_vec[i])) << "axpy n=" << n << " i=" << i;
    }
    scalar_->scale(0.3, y_scalar.data(), n);
    vec_->scale(0.3, y_vec.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_vec[i])) << "scale n=" << n << " i=" << i;
    }
  }
}

TEST_P(SimdEquivalence, GemvBitIdentical) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{33},
                              std::size_t{1024}}) {
    const std::size_t m = 5;
    const auto a = random_values(m * n, 61 + n);
    const auto x = random_values(n, 67 + n);
    std::vector<double> y_scalar(m), y_vec(m);
    scalar_->gemv(a.data(), m, n, x.data(), y_scalar.data());
    vec_->gemv(a.data(), m, n, x.data(), y_vec.data());
    for (std::size_t i = 0; i < m; ++i) {
      ASSERT_TRUE(bits_equal(y_scalar[i], y_vec[i])) << "n=" << n << " row=" << i;
    }
  }
}

TEST_P(SimdEquivalence, MatmulBitIdentical) {
  // Sizes spanning less-than-one-block through multiple KC/NC blocks.
  const std::size_t shapes[][3] = {{1, 1, 1}, {3, 5, 2}, {17, 65, 9}, {8, 130, 520}};
  for (const auto& s : shapes) {
    const std::size_t m = s[0], k = s[1], n = s[2];
    const auto a = random_values(m * k, 71 + m);
    const auto b = random_values(k * n, 73 + n);
    std::vector<double> c_scalar(m * n, 0.0), c_vec(m * n, 0.0);
    scalar_->matmul(a.data(), b.data(), c_scalar.data(), m, k, n);
    vec_->matmul(a.data(), b.data(), c_vec.data(), m, k, n);
    for (std::size_t i = 0; i < m * n; ++i) {
      ASSERT_TRUE(bits_equal(c_scalar[i], c_vec[i]))
          << m << "x" << k << "x" << n << " elem=" << i;
    }
  }
}

TEST_P(SimdEquivalence, GemmNtBitIdentical) {
  // The fused serve-path kernel: rows × units independent full dots.
  const std::size_t shapes[][3] = {{1, 1, 1}, {3, 7, 2}, {17, 100, 9}, {33, 1027, 5}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], width = s[1], units = s[2];
    const auto x = random_values(rows * width, 79 + width);
    const auto w = random_values(units * width, 83 + width);
    std::vector<double> p_scalar(rows * units), p_vec(rows * units);
    scalar_->gemm_nt(x.data(), w.data(), p_scalar.data(), rows, width, units);
    vec_->gemm_nt(x.data(), w.data(), p_vec.data(), rows, width, units);
    for (std::size_t i = 0; i < rows * units; ++i) {
      ASSERT_TRUE(bits_equal(p_scalar[i], p_vec[i]))
          << rows << "x" << width << "x" << units << " elem=" << i;
    }
  }
}

TEST_P(SimdEquivalence, DotF32BitIdentical) {
  for (const std::size_t n : kLengths) {
    const auto x = random_values_f32(n, 89 + n);
    const auto y = random_values_f32(n, 97 + n);
    EXPECT_TRUE(bits_equal_f32(scalar_->dot_f32(x.data(), y.data(), n),
                               vec_->dot_f32(x.data(), y.data(), n)))
        << "n=" << n;
  }
}

TEST_P(SimdEquivalence, GemmNtF32BitIdentical) {
  const std::size_t shapes[][3] = {{1, 1, 1}, {3, 7, 2}, {17, 100, 9}, {33, 1027, 5}};
  for (const auto& s : shapes) {
    const std::size_t rows = s[0], width = s[1], units = s[2];
    const auto x = random_values_f32(rows * width, 101 + width);
    const auto w = random_values_f32(units * width, 103 + width);
    std::vector<float> p_scalar(rows * units), p_vec(rows * units);
    scalar_->gemm_nt_f32(x.data(), w.data(), p_scalar.data(), rows, width, units);
    vec_->gemm_nt_f32(x.data(), w.data(), p_vec.data(), rows, width, units);
    for (std::size_t i = 0; i < rows * units; ++i) {
      ASSERT_TRUE(bits_equal_f32(p_scalar[i], p_vec[i]))
          << rows << "x" << width << "x" << units << " elem=" << i;
    }
  }
}

TEST(SimdMatmul, BlockedMatchesNaiveReference) {
  // The cache-blocked kernel reorders only the (kk, jj) loop *blocks*; each
  // C element still accumulates its k terms in ascending order, so it must
  // equal a naive i-k-j triple loop exactly, not just approximately.
  const std::size_t m = 9, k = 200, n = 37;
  const auto a = random_values(m * k, 101);
  const auto b = random_values(k * n, 103);
  Matrix ma(m, k), mb(k, n);
  std::copy(a.begin(), a.end(), ma.data());
  std::copy(b.begin(), b.end(), mb.data());
  const Matrix mc = matmul(ma, mb);
  std::vector<double> ref(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      for (std::size_t j = 0; j < n; ++j) {
        ref[i * n + j] = std::fma(a[i * k + p], b[p * n + j], ref[i * n + j]);
      }
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_TRUE(bits_equal(mc(i, j), ref[i * n + j])) << i << "," << j;
    }
  }
}

TEST(SimdGemmNt, MatchesPerRowDotReference) {
  // gemm_nt's contract is "each output element is one dot() in the canonical
  // order": blocking must be invisible, so P[r][u] == dot(X_r, W_u) exactly.
  const std::size_t rows = 37, width = 211, units = 23;
  const auto x = random_values(rows * width, 107);
  const auto w = random_values(units * width, 109);
  std::vector<double> p(rows * units);
  gemm_nt(x.data(), w.data(), p.data(), rows, width, units);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t u = 0; u < units; ++u) {
      const double ref = dot(std::span(x).subspan(r * width, width),
                             std::span(w).subspan(u * width, width));
      ASSERT_TRUE(bits_equal(p[r * units + u], ref)) << "r=" << r << " u=" << u;
    }
  }
}

TEST(SimdDotF32, MatchesScalarFmaReference) {
  // The f32 contract mirrors the f64 one: 16 float accumulators, fmaf per
  // element, the same binary reduction tree.
  for (const std::size_t n : kLengths) {
    const auto x = random_values_f32(n, 113 + n);
    const auto y = random_values_f32(n, 127 + n);
    float acc[16] = {};
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
      for (std::size_t j = 0; j < 16; ++j) acc[j] = std::fmaf(x[i + j], y[i + j], acc[j]);
    }
    for (std::size_t j = 0; i + j < n; ++j) acc[j] = std::fmaf(x[i + j], y[i + j], acc[j]);
    float a0 = acc[0] + acc[8], a1 = acc[1] + acc[9], a2 = acc[2] + acc[10],
          a3 = acc[3] + acc[11], a4 = acc[4] + acc[12], a5 = acc[5] + acc[13],
          a6 = acc[6] + acc[14], a7 = acc[7] + acc[15];
    a0 += a4;
    a1 += a5;
    a2 += a6;
    a3 += a7;
    a0 += a2;
    a1 += a3;
    const float ref = a0 + a1;
    EXPECT_TRUE(bits_equal_f32(dot_f32(x, y), ref)) << "n=" << n;
  }
}

TEST(SimdDispatch, ForceLevelReroutesSpanKernels) {
  // The span API in kernels.hpp must follow force_level, and results must be
  // bit-identical either way (this passes trivially on non-AVX2 machines,
  // where force_level(kAvx2) is a no-op).
  const auto x = random_values(1027, 107);
  const auto y = random_values(1027, 109);
  const Level original = simd::active_level();
  simd::force_level(Level::kScalar);
  EXPECT_EQ(simd::active_level(), Level::kScalar);
  const double d_scalar = dot(x, y);
  simd::force_level(Level::kAvx2);
  const double d_avx2 = dot(x, y);
  simd::force_level(Level::kAvx512);
  const double d_avx512 = dot(x, y);
  simd::force_level(original);
  EXPECT_TRUE(bits_equal(d_scalar, d_avx2));
  EXPECT_TRUE(bits_equal(d_scalar, d_avx512));
}

TEST(SimdDispatch, LevelNamesAndSupport) {
  EXPECT_TRUE(simd::cpu_supports(Level::kScalar));
  EXPECT_STREQ(simd::level_name(Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(Level::kAvx2), "avx2");
  EXPECT_STREQ(simd::level_name(Level::kAvx512), "avx512");
  EXPECT_NE(simd::kernel_table(Level::kScalar), nullptr);
}

TEST(GaussianKernelSum, MatchesDirectLoopValues) {
  // Shared single-implementation kernel: just sanity-check the math; the
  // blocked order is its own reference on every level.
  const auto pts = random_values(100, 113);
  const double inv_h = 0.8;
  const double x0 = 0.25;
  double ref = 0.0;
  for (const double p : pts) {
    const double z = (x0 - p) * inv_h;
    ref += std::exp(-0.5 * z * z);
  }
  EXPECT_NEAR(gaussian_kernel_sum(pts, x0, inv_h), ref, 1e-12 * (1.0 + std::abs(ref)));
}

}  // namespace
}  // namespace frac
