// Failure-injection tests: degenerate inputs a downstream user will
// eventually feed the library must degrade gracefully, never crash or
// emit non-finite scores. The second half drives the deterministic fault
// injector (util/fault_injection.hpp) through the same public entry points
// to prove the per-unit/per-member isolation and the atomic-write contract.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "data/expression_generator.hpp"
#include "data/io.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/frac.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate base_replicate() {
  ExpressionModelConfig c;
  c.features = 30;
  c.modules = 3;
  c.genes_per_module = 6;
  c.disease_modules = 2;
  c.anomaly_mix = 2.0;
  c.seed = 88;
  const ExpressionModel model(c);
  Rng rng(188);
  Replicate rep;
  rep.train = model.sample(24, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(6, Label::kNormal, rng),
                            model.sample(6, Label::kAnomaly, rng));
  return rep;
}

void expect_finite(const std::vector<double>& scores) {
  for (const double s : scores) EXPECT_TRUE(std::isfinite(s));
}

TEST(Robustness, ConstantFeatureColumn) {
  Replicate rep = base_replicate();
  for (std::size_t r = 0; r < rep.train.sample_count(); ++r) {
    rep.train.mutable_values()(r, 0) = 7.0;
  }
  const ScoredRun run = run_frac(rep, {}, pool());
  expect_finite(run.test_scores);
}

TEST(Robustness, AllMissingColumnInTraining) {
  Replicate rep = base_replicate();
  for (std::size_t r = 0; r < rep.train.sample_count(); ++r) {
    rep.train.mutable_values()(r, 3) = kMissing;
  }
  // The unit for feature 3 is skipped (entropy undefined), other units use
  // the column as a (fully imputed) input; everything stays finite.
  const ScoredRun run = run_frac(rep, {}, pool());
  expect_finite(run.test_scores);
}

TEST(Robustness, HeavilyMissingTestData) {
  Replicate rep = base_replicate();
  Rng rng(2);
  for (std::size_t r = 0; r < rep.test.sample_count(); ++r) {
    for (std::size_t f = 0; f < rep.test.feature_count(); ++f) {
      if (rng.bernoulli(0.4)) rep.test.mutable_values()(r, f) = kMissing;
    }
  }
  const FracModel model = FracModel::train(rep.train, {}, pool());
  expect_finite(model.score(rep.test, pool()));
}

TEST(Robustness, SingleTestSample) {
  Replicate rep = base_replicate();
  rep.test = rep.test.select_samples({0});
  const ScoredRun run = run_frac(rep, {}, pool());
  EXPECT_EQ(run.test_scores.size(), 1u);
  expect_finite(run.test_scores);
}

TEST(Robustness, TinyTrainingSet) {
  Replicate rep = base_replicate();
  rep.train = rep.train.select_samples({0, 1, 2, 3});
  const ScoredRun run = run_frac(rep, {}, pool());
  expect_finite(run.test_scores);
}

TEST(Robustness, ExtremeOutlierValuesInTest) {
  Replicate rep = base_replicate();
  rep.test.mutable_values()(0, 0) = 1e9;
  rep.test.mutable_values()(1, 5) = -1e9;
  const ScoredRun run = run_frac(rep, {}, pool());
  expect_finite(run.test_scores);
  // And the 1e9 sample should be extremely anomalous.
  double max_score = run.test_scores[0];
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < run.test_scores.size(); ++i) {
    if (run.test_scores[i] > max_score) {
      max_score = run.test_scores[i];
      argmax = i;
    }
  }
  EXPECT_TRUE(argmax == 0 || argmax == 1);
}

TEST(Robustness, VariantsSurviveConstantAndMissingColumns) {
  Replicate rep = base_replicate();
  for (std::size_t r = 0; r < rep.train.sample_count(); ++r) {
    rep.train.mutable_values()(r, 0) = 7.0;       // constant
    rep.train.mutable_values()(r, 1) = kMissing;  // all missing
  }
  Rng rng(3);
  expect_finite(
      run_full_filtered_frac(rep, {}, FilterMethod::kEntropy, 0.5, rng, pool()).test_scores);
  Rng rng2(4);
  expect_finite(run_random_filter_ensemble(rep, {}, 0.3, 3, rng2, pool()).test_scores);
  JlPipelineConfig jl;
  jl.output_dim = 8;
  expect_finite(run_jl_frac(rep, {}, jl, pool()).test_scores);
}

TEST(Robustness, DuplicatedTrainingRows) {
  Replicate rep = base_replicate();
  std::vector<std::size_t> rows(rep.train.sample_count(), 0);  // every row = row 0
  rep.train = rep.train.select_samples(rows);
  const ScoredRun run = run_frac(rep, {}, pool());
  expect_finite(run.test_scores);
}

TEST(Robustness, TwoFeatureDataset) {
  // The smallest dataset FRaC is defined on: 2 features, each predicted
  // from the other.
  Rng rng(5);
  Matrix train_values(12, 2);
  for (std::size_t r = 0; r < 12; ++r) {
    train_values(r, 0) = rng.normal();
    train_values(r, 1) = train_values(r, 0) + 0.1 * rng.normal();
  }
  const Dataset train(Schema::all_real(2), train_values,
                      std::vector<Label>(12, Label::kNormal));
  const FracModel model = FracModel::train(train, {}, pool());
  EXPECT_EQ(model.unit_count(), 2u);
  Matrix test_values(1, 2);
  test_values(0, 0) = 3.0;
  test_values(0, 1) = -3.0;  // violates the learned relationship
  const Dataset test(Schema::all_real(2), test_values, {Label::kAnomaly});
  expect_finite(model.score(test, pool()));
}

TEST(Robustness, InjectedPredictorFaultsDemoteExactlyThePredictedUnits) {
  const Replicate rep = base_replicate();
  const ScopedFaultPlan plan("predictor_train:0.25:42");
  // Firing is a pure function of (site, seed, unit index), so the test can
  // predict the demotions before training.
  std::size_t predicted = 0;
  for (std::size_t u = 0; u < rep.train.feature_count(); ++u) {
    predicted += fault_fires(FaultSite::kPredictorTrain, u);
  }
  ASSERT_GT(predicted, 0u);
  ASSERT_LT(predicted, rep.train.feature_count());

  const FracModel model = FracModel::train(rep.train, {}, pool());
  EXPECT_EQ(model.unit_failures().size(), predicted);
  EXPECT_EQ(model.report().failures[FailureCategory::kInjected], predicted);
  EXPECT_EQ(model.report().failures.total(), predicted);
  for (const UnitFailure& failure : model.unit_failures()) {
    EXPECT_EQ(failure.category, FailureCategory::kInjected);
    EXPECT_TRUE(fault_fires(FaultSite::kPredictorTrain, failure.unit));
  }
  expect_finite(model.score(rep.test, pool()));
}

TEST(Robustness, InjectedErrorModelFaultsAreIsolatedToo) {
  const Replicate rep = base_replicate();
  const ScopedFaultPlan plan("error_model_fit:0.2:6");
  std::size_t predicted = 0;
  for (std::size_t u = 0; u < rep.train.feature_count(); ++u) {
    predicted += fault_fires(FaultSite::kErrorModelFit, u);
  }
  ASSERT_GT(predicted, 0u);
  const FracModel model = FracModel::train(rep.train, {}, pool());
  EXPECT_EQ(model.report().failures[FailureCategory::kInjected], predicted);
  expect_finite(model.score(rep.test, pool()));
}

TEST(Robustness, VariantsSurviveModerateInjectedFaults) {
  const Replicate rep = base_replicate();
  const ScopedFaultPlan plan("predictor_train:0.2:11,error_model_fit:0.1:12");
  Rng rng(6);
  const ScoredRun ens = run_random_filter_ensemble(rep, {}, 0.4, 3, rng, pool());
  expect_finite(ens.test_scores);
  EXPECT_GT(ens.resources.failures.total(), 0u);
  Rng rng2(7);
  const ScoredRun div = run_diverse_ensemble(rep, {}, 0.5, 3, rng2, pool());
  expect_finite(div.test_scores);
  EXPECT_GT(div.resources.failures.total(), 0u);
  JlPipelineConfig jl;
  jl.output_dim = 8;
  const ScoredRun jl_run = run_jl_frac(rep, {}, jl, pool());
  expect_finite(jl_run.test_scores);
}

TEST(Robustness, AllUnitsFailingIsALoudNumericErrorNotAZeroModel) {
  const Replicate rep = base_replicate();
  const ScopedFaultPlan plan("predictor_train:1:3");
  EXPECT_THROW(FracModel::train(rep.train, {}, pool()), NumericError);
}

TEST(Robustness, EnsembleAbortsOnlyWhenEveryMemberFails) {
  const Replicate rep = base_replicate();
  const ScopedFaultPlan plan("predictor_train:1:1");
  Rng rng(9);
  EXPECT_THROW(run_diverse_ensemble(rep, {}, 0.5, 3, rng, pool()), NumericError);
}

TEST(Robustness, InjectedWriteFaultLeavesNoPartialFile) {
  const Replicate rep = base_replicate();
  const FracModel model = FracModel::train(rep.train, {}, pool());
  const std::string path = testing::TempDir() + "/fault_model.frac";
  std::remove(path.c_str());
  {
    const ScopedFaultPlan plan("serialize_write:1");
    EXPECT_THROW(model.save_file(path), InjectedFault);
  }
  // Atomic write: the fault fired before the rename, so the target must not
  // exist — a resumed pipeline can never read a torn model file.
  EXPECT_FALSE(std::ifstream(path).good());
  model.save_file(path);  // plan restored: the same call now succeeds
  EXPECT_EQ(FracModel::load_file(path).unit_count(), model.unit_count());
}

TEST(Robustness, InjectedDatasetLoadFaultSurfaces) {
  const std::string path = testing::TempDir() + "/fault_data.csv";
  save_dataset_csv(path, base_replicate().train);
  const ScopedFaultPlan plan("dataset_load:1");
  EXPECT_THROW(load_dataset_csv(path), InjectedFault);
}

}  // namespace
}  // namespace frac
