// Property-style tests over the variant family: invariants that must hold
// for every variant and across parameter sweeps (parameterized gtest).
#include <gtest/gtest.h>

#include <cmath>

#include "data/expression_generator.hpp"
#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate shared_replicate() {
  ExpressionModelConfig c;
  c.features = 48;
  c.modules = 4;
  c.genes_per_module = 8;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 3;
  c.seed = 77;
  const ExpressionModel model(c);
  Rng rng(177);
  Replicate rep;
  rep.train = model.sample(36, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(10, Label::kNormal, rng),
                            model.sample(10, Label::kAnomaly, rng));
  return rep;
}

using VariantFn = ScoredRun (*)(const Replicate&, const FracConfig&, Rng&);

ScoredRun variant_full(const Replicate& rep, const FracConfig& config, Rng&) {
  return run_frac(rep, config, pool());
}
ScoredRun variant_full_filter(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.3, rng, pool());
}
ScoredRun variant_entropy_filter(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_full_filtered_frac(rep, config, FilterMethod::kEntropy, 0.3, rng, pool());
}
ScoredRun variant_partial_filter(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_partial_filtered_frac(rep, config, FilterMethod::kRandom, 0.3, rng, pool());
}
ScoredRun variant_diverse(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_diverse_frac(rep, config, 0.5, 1, rng, pool());
}
ScoredRun variant_filter_ensemble(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_random_filter_ensemble(rep, config, 0.2, 4, rng, pool());
}
ScoredRun variant_diverse_ensemble(const Replicate& rep, const FracConfig& config, Rng& rng) {
  return run_diverse_ensemble(rep, config, 0.25, 4, rng, pool());
}
ScoredRun variant_jl(const Replicate& rep, const FracConfig& config, Rng&) {
  JlPipelineConfig jl;
  jl.output_dim = 24;
  return run_jl_frac(rep, config, jl, pool());
}

struct NamedVariant {
  const char* name;
  VariantFn fn;
};

class EveryVariant : public ::testing::TestWithParam<NamedVariant> {};

TEST_P(EveryVariant, ProducesFiniteScoresForEveryTestSample) {
  const Replicate rep = shared_replicate();
  Rng rng(1);
  const ScoredRun run = GetParam().fn(rep, {}, rng);
  ASSERT_EQ(run.test_scores.size(), rep.test.sample_count());
  for (const double s : run.test_scores) EXPECT_TRUE(std::isfinite(s));
}

TEST_P(EveryVariant, IsDeterministicGivenRngState) {
  const Replicate rep = shared_replicate();
  Rng rng1(2), rng2(2);
  const ScoredRun a = GetParam().fn(rep, {}, rng1);
  const ScoredRun b = GetParam().fn(rep, {}, rng2);
  EXPECT_EQ(a.test_scores, b.test_scores);
}

TEST_P(EveryVariant, ReportsPositiveResources) {
  const Replicate rep = shared_replicate();
  Rng rng(3);
  const ScoredRun run = GetParam().fn(rep, {}, rng);
  EXPECT_GT(run.resources.cpu_seconds, 0.0);
  EXPECT_GT(run.resources.peak_bytes, 0u);
  EXPECT_GT(run.resources.models_retained, 0u);
  EXPECT_GE(run.resources.models_trained, run.resources.models_retained);
}

TEST_P(EveryVariant, BeatsChanceOnPlantedSignal) {
  const Replicate rep = shared_replicate();
  Rng rng(4);
  const ScoredRun run = GetParam().fn(rep, {}, rng);
  EXPECT_GT(auc(run.test_scores, rep.test.labels()), 0.6) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EveryVariant,
    ::testing::Values(NamedVariant{"full", variant_full},
                      NamedVariant{"full_filter", variant_full_filter},
                      NamedVariant{"entropy_filter", variant_entropy_filter},
                      NamedVariant{"partial_filter", variant_partial_filter},
                      NamedVariant{"diverse", variant_diverse},
                      NamedVariant{"filter_ensemble", variant_filter_ensemble},
                      NamedVariant{"diverse_ensemble", variant_diverse_ensemble},
                      NamedVariant{"jl", variant_jl}),
    [](const ::testing::TestParamInfo<NamedVariant>& info) { return info.param.name; });

class FilterFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FilterFractionSweep, MemoryScalesRoughlyQuadratically) {
  const Replicate rep = shared_replicate();
  const double p = GetParam();
  Rng rng(5);
  const ScoredRun full = run_frac(rep, {}, pool());
  const ScoredRun filtered =
      run_full_filtered_frac(rep, {}, FilterMethod::kRandom, p, rng, pool());
  const double model_full = static_cast<double>(full.resources.peak_bytes - rep.train.bytes());
  const double data_kept = static_cast<double>(rep.train.bytes()) * p;
  const double model_filtered =
      static_cast<double>(filtered.resources.peak_bytes) - data_kept;
  const double ratio = model_filtered / model_full;
  EXPECT_LT(ratio, p * p * 3.0) << "p=" << p;
  EXPECT_GT(ratio, p * p / 3.0) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Fractions, FilterFractionSweep, ::testing::Values(0.25, 0.5, 0.75));

class DiverseProbabilitySweep : public ::testing::TestWithParam<double> {};

TEST_P(DiverseProbabilitySweep, RetainedModelMemoryScalesLinearlyInP) {
  const Replicate rep = shared_replicate();
  const double p = GetParam();
  Rng rng(6);
  const ScoredRun full = run_frac(rep, {}, pool());
  const ScoredRun diverse = run_diverse_frac(rep, {}, p, 1, rng, pool());
  const double model_full = static_cast<double>(full.resources.peak_bytes - rep.train.bytes());
  const double model_div =
      static_cast<double>(diverse.resources.peak_bytes - rep.train.bytes());
  EXPECT_NEAR(model_div / model_full, p, 0.2) << "p=" << p;
}

INSTANTIATE_TEST_SUITE_P(Probabilities, DiverseProbabilitySweep,
                         ::testing::Values(0.25, 0.5, 0.75));

}  // namespace
}  // namespace frac
