// End-to-end tests running the whole stack — registry cohort → replicates →
// FRaC and variants → AUC — on down-scaled cohorts, asserting the *shape*
// relationships the paper's tables report.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "data/io.hpp"
#include "expt/registry.hpp"
#include "expt/runner.hpp"
#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

class ScaledDown : public ::testing::Test {
 protected:
  void SetUp() override { setenv("FRAC_BENCH_SCALE", "0.15", 1); }
  void TearDown() override { unsetenv("FRAC_BENCH_SCALE"); }
};

TEST_F(ScaledDown, ExpressionCohortFullFracBeatsChance) {
  const CohortSpec& spec = cohort_by_name("biomarkers");
  const auto reps = make_cohort_replicates(spec, 2);
  const FracConfig config = paper_frac_config(spec);
  const PerReplicate results = evaluate_method(
      reps, [&](const Replicate& rep, Rng&) { return run_frac(rep, config, pool()); }, 1,
      pool());
  EXPECT_GT(aggregate(results).auc.mean, 0.6);
}

TEST_F(ScaledDown, AutismCohortIsChanceLevel) {
  const CohortSpec& spec = cohort_by_name("autism");
  const auto reps = make_cohort_replicates(spec, 2);
  const FracConfig config = paper_frac_config(spec);
  const PerReplicate results = evaluate_method(
      reps, [&](const Replicate& rep, Rng&) { return run_frac(rep, config, pool()); }, 1,
      pool());
  EXPECT_NEAR(aggregate(results).auc.mean, 0.5, 0.15);
}

TEST_F(ScaledDown, SchizophreniaEntropyFilteringFindsAncestry) {
  // This cohort's ancestry-informative-marker band thins out faster than
  // the rest of the grid under scaling; 40% keeps the design faithful
  // while staying fast (the bench runs it at full scale).
  setenv("FRAC_BENCH_SCALE", "0.4", 1);
  const CohortSpec& spec = cohort_by_name("schizophrenia");
  const Replicate rep = make_confounded_replicate(spec);
  const FracConfig config = paper_frac_config(spec);
  Rng rng(2);
  const ScoredRun run =
      run_full_filtered_frac(rep, config, FilterMethod::kEntropy, 0.05, rng, pool());
  EXPECT_GE(auc(run.test_scores, rep.test.labels()), 0.85);
}

TEST_F(ScaledDown, FilterEnsembleTracksFullOnExpression) {
  const CohortSpec& spec = cohort_by_name("hematopoiesis");
  const auto reps = make_cohort_replicates(spec, 2);
  const FracConfig config = paper_frac_config(spec);
  const PerReplicate full = evaluate_method(
      reps, [&](const Replicate& rep, Rng&) { return run_frac(rep, config, pool()); }, 1,
      pool());
  const PerReplicate ens = evaluate_method(
      reps,
      [&](const Replicate& rep, Rng& rng) {
        return run_random_filter_ensemble(rep, config, 0.1, 5, rng, pool());
      },
      2, pool());
  const FractionStats fractions = fraction_of(ens, full);
  EXPECT_GT(fractions.auc_fraction.mean, 0.75);
  EXPECT_LT(fractions.time_fraction, 1.0);
  EXPECT_LT(fractions.mem_fraction, 0.25);
}

TEST_F(ScaledDown, ResourceOrderingAcrossVariants) {
  // JL ≲ filter-ensemble ≪ diverse in memory, per Tables III/IV.
  const CohortSpec& spec = cohort_by_name("bild");
  const auto reps = make_cohort_replicates(spec, 1);
  const FracConfig config = paper_frac_config(spec);
  Rng rng(3);

  const ScoredRun full = run_frac(reps[0], config, pool());
  const ScoredRun ens = run_random_filter_ensemble(reps[0], config, 0.05, 5, rng, pool());
  JlPipelineConfig jl;
  jl.output_dim = std::max<std::size_t>(8, reps[0].train.feature_count() / 12);
  const ScoredRun projected = run_jl_frac(reps[0], config, jl, pool());
  const ScoredRun diverse = run_diverse_frac(reps[0], config, 0.5, 1, rng, pool());

  EXPECT_LT(ens.resources.peak_bytes, diverse.resources.peak_bytes);
  EXPECT_LT(projected.resources.peak_bytes, diverse.resources.peak_bytes);
  EXPECT_LT(diverse.resources.peak_bytes, 2 * full.resources.peak_bytes);
  // And every variant is cheaper than full in model memory.
  EXPECT_LT(ens.resources.peak_bytes, full.resources.peak_bytes);
  EXPECT_LT(projected.resources.peak_bytes, full.resources.peak_bytes);
}

TEST(EndToEnd, DatasetCsvRoundTripFeedsFrac) {
  // The public-API path a downstream user would take: write a cohort to CSV,
  // load it back, split, train, score.
  setenv("FRAC_BENCH_SCALE", "0.1", 1);
  const Dataset cohort = make_cohort(cohort_by_name("breast.basal"));
  unsetenv("FRAC_BENCH_SCALE");
  const std::string path = testing::TempDir() + "/cohort_e2e.csv";
  save_dataset_csv(path, cohort);
  const Dataset loaded = load_dataset_csv(path);
  Rng rng(4);
  const Replicate rep = make_replicate(loaded, 2.0 / 3.0, rng);
  const ScoredRun run = run_frac(rep, {}, pool());
  EXPECT_EQ(run.test_scores.size(), rep.test.sample_count());
  for (const double s : run.test_scores) EXPECT_TRUE(std::isfinite(s));
  // At 10% feature scale the planted signal is marginal; this asserts the
  // pipeline works end-to-end, not detection quality (covered elsewhere).
  EXPECT_GT(auc(run.test_scores, rep.test.labels()), 0.3);
}

}  // namespace
}  // namespace frac
