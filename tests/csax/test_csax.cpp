#include "csax/csax.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

struct Fixture {
  ExpressionModel model;
  Replicate rep;
  GeneSetCollection sets;
};

Fixture make_fixture(std::uint64_t seed = 1, std::size_t decoys = 4) {
  ExpressionModelConfig c;
  c.features = 50;
  c.modules = 4;
  c.genes_per_module = 6;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.5;
  c.disease_modules = 2;
  c.seed = seed;
  ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(36, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(10, Label::kNormal, rng),
                            model.sample(10, Label::kAnomaly, rng));
  GeneSetCollection sets = make_module_gene_sets(model, 0.0, decoys, rng);
  return {std::move(model), std::move(rep), std::move(sets)};
}

CsaxConfig fast_config() {
  CsaxConfig config;
  config.bootstraps = 4;
  config.top_sets = 2;
  return config;
}

TEST(Csax, TrainValidatesInputs) {
  const Fixture fx = make_fixture();
  CsaxConfig config = fast_config();
  config.bootstraps = 0;
  EXPECT_THROW(CsaxModel::train(fx.rep.train, fx.sets, config, pool()), std::invalid_argument);
  config = fast_config();
  config.member_keep_fraction = 0.0;
  EXPECT_THROW(CsaxModel::train(fx.rep.train, fx.sets, config, pool()), std::invalid_argument);
  // Sets referencing genes beyond the schema are rejected.
  GeneSetCollection bad({{"oob", {999}}});
  EXPECT_THROW(CsaxModel::train(fx.rep.train, bad, fast_config(), pool()),
               std::invalid_argument);
}

TEST(Csax, AnomalyScoresSeparateClasses) {
  const Fixture fx = make_fixture();
  const CsaxModel model = CsaxModel::train(fx.rep.train, fx.sets, fast_config(), pool());
  const std::vector<CsaxScore> scores = model.score(fx.rep.test, pool());
  ASSERT_EQ(scores.size(), fx.rep.test.sample_count());
  std::vector<double> anomaly_scores;
  for (const CsaxScore& s : scores) anomaly_scores.push_back(s.anomaly_score);
  EXPECT_GT(auc(anomaly_scores, fx.rep.test.labels()), 0.75);
}

TEST(Csax, DiseaseModuleSetsDominateAnomalyCharacterizations) {
  const Fixture fx = make_fixture();
  const CsaxModel model = CsaxModel::train(fx.rep.train, fx.sets, fast_config(), pool());
  const std::vector<CsaxScore> scores = model.score(fx.rep.test, pool());
  // Disease modules are sets 0 and 1 (modules 0-1 of 4). Count how often a
  // disease set tops an anomalous sample's characterization.
  std::size_t hits = 0, anomalies = 0;
  for (std::size_t r = 0; r < scores.size(); ++r) {
    if (fx.rep.test.label(r) != Label::kAnomaly) continue;
    ++anomalies;
    const auto top = scores[r].top_sets(1);
    ASSERT_EQ(top.size(), 1u);
    hits += (top[0] <= 1);
  }
  EXPECT_GT(hits * 2, anomalies);  // majority of anomalies point at disease sets
}

TEST(Csax, EnrichmentVectorHasCollectionOrder) {
  const Fixture fx = make_fixture();
  const CsaxModel model = CsaxModel::train(fx.rep.train, fx.sets, fast_config(), pool());
  const std::vector<CsaxScore> scores = model.score(fx.rep.test, pool());
  for (const CsaxScore& s : scores) {
    ASSERT_EQ(s.set_enrichment.size(), fx.sets.size());
    for (const double e : s.set_enrichment) {
      EXPECT_GE(e, 0.0);
      EXPECT_LE(e, 1.0);
    }
  }
}

TEST(Csax, FilteredMembersStillCharacterize) {
  // The scalability tie-in: CSAX over full-filtered FRaC members.
  const Fixture fx = make_fixture();
  CsaxConfig config = fast_config();
  config.member_keep_fraction = 0.5;
  const CsaxModel model = CsaxModel::train(fx.rep.train, fx.sets, config, pool());
  const std::vector<CsaxScore> scores = model.score(fx.rep.test, pool());
  std::vector<double> anomaly_scores;
  for (const CsaxScore& s : scores) anomaly_scores.push_back(s.anomaly_score);
  EXPECT_GT(auc(anomaly_scores, fx.rep.test.labels()), 0.65);
}

TEST(Csax, FilteredMembersUseFewerResources) {
  const Fixture fx = make_fixture();
  CsaxConfig full_config = fast_config();
  CsaxConfig filtered_config = fast_config();
  filtered_config.member_keep_fraction = 0.3;
  const CsaxModel full = CsaxModel::train(fx.rep.train, fx.sets, full_config, pool());
  const CsaxModel filtered = CsaxModel::train(fx.rep.train, fx.sets, filtered_config, pool());
  EXPECT_LT(filtered.report().peak_bytes, full.report().peak_bytes);
  EXPECT_LT(filtered.report().models_retained, full.report().models_retained);
}

TEST(Csax, TopSetsAreSortedDescending) {
  CsaxScore score;
  score.set_enrichment = {0.2, 0.9, 0.5, 0.7};
  EXPECT_EQ(score.top_sets(2), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(score.top_sets(10).size(), 4u);
}

TEST(Csax, ScoreBeforeTrainThrows) {
  const Fixture fx = make_fixture();
  const CsaxModel model;  // never trained
  EXPECT_THROW(model.score(fx.rep.test, pool()), std::logic_error);
}

TEST(Csax, DeterministicGivenSeed) {
  const Fixture fx = make_fixture();
  const CsaxModel a = CsaxModel::train(fx.rep.train, fx.sets, fast_config(), pool());
  const CsaxModel b = CsaxModel::train(fx.rep.train, fx.sets, fast_config(), pool());
  const auto sa = a.score(fx.rep.test, pool());
  const auto sb = b.score(fx.rep.test, pool());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_DOUBLE_EQ(sa[i].anomaly_score, sb[i].anomaly_score);
  }
}

}  // namespace
}  // namespace frac
