#include "csax/gene_sets.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace frac {
namespace {

GeneSetCollection make_collection(std::vector<GeneSet> sets) {
  return GeneSetCollection(std::move(sets));
}

TEST(GeneSets, ValidateAcceptsWellFormed) {
  const GeneSetCollection sets = make_collection({{"a", {0, 2, 5}}, {"b", {1}}});
  EXPECT_NO_THROW(sets.validate(6));
}

TEST(GeneSets, ValidateRejectsProblems) {
  EXPECT_THROW(make_collection({{"empty", {}}}).validate(5), std::invalid_argument);
  EXPECT_THROW(make_collection({{"unsorted", {3, 1}}}).validate(5), std::invalid_argument);
  EXPECT_THROW(make_collection({{"dup", {1, 1}}}).validate(5), std::invalid_argument);
  EXPECT_THROW(make_collection({{"oob", {7}}}).validate(5), std::invalid_argument);
}

TEST(GeneSets, GmtRoundTrip) {
  const GeneSetCollection sets = make_collection({{"pathwayA", {0, 3, 9}}, {"pathwayB", {2, 4}}});
  std::ostringstream out;
  write_gene_sets_gmt(out, sets);
  std::istringstream in(out.str());
  const GeneSetCollection back = read_gene_sets_gmt(in);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "pathwayA");
  EXPECT_EQ(back[0].genes, (std::vector<std::size_t>{0, 3, 9}));
  EXPECT_EQ(back[1].genes, (std::vector<std::size_t>{2, 4}));
}

TEST(GeneSets, GmtParsingSortsAndDedupes) {
  std::istringstream in("s\tdesc\t5\t1\t5\t3\n");
  const GeneSetCollection sets = read_gene_sets_gmt(in);
  EXPECT_EQ(sets[0].genes, (std::vector<std::size_t>{1, 3, 5}));
}

TEST(GeneSets, GmtRejectsMalformedLines) {
  std::istringstream too_few("justname\tdesc\n");
  EXPECT_THROW(read_gene_sets_gmt(too_few), std::invalid_argument);
  std::istringstream bad_gene("s\tdesc\tabc\n");
  EXPECT_THROW(read_gene_sets_gmt(bad_gene), std::invalid_argument);
}

ExpressionModel small_model() {
  ExpressionModelConfig c;
  c.features = 60;
  c.modules = 4;
  c.genes_per_module = 6;
  c.seed = 3;
  return ExpressionModel(c);
}

TEST(ModuleGeneSets, OneSetPerModulePlusDecoys) {
  const ExpressionModel model = small_model();
  Rng rng(1);
  const GeneSetCollection sets = make_module_gene_sets(model, 0.0, 3, rng);
  ASSERT_EQ(sets.size(), 4u + 3u);
  EXPECT_NO_THROW(sets.validate(60));
  // With no dropout, module sets are exactly the generator's modules.
  EXPECT_EQ(sets[0].genes, (std::vector<std::size_t>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(sets[1].genes, (std::vector<std::size_t>{6, 7, 8, 9, 10, 11}));
}

TEST(ModuleGeneSets, DecoysAvoidRelevantGenes) {
  const ExpressionModel model = small_model();
  Rng rng(2);
  const GeneSetCollection sets = make_module_gene_sets(model, 0.0, 5, rng);
  for (std::size_t s = 4; s < sets.size(); ++s) {
    for (const std::size_t g : sets[s].genes) {
      EXPECT_GE(g, 24u);  // 4 modules * 6 genes = 24 relevant genes
    }
  }
}

TEST(ModuleGeneSets, DropoutPerturbsAnnotations) {
  const ExpressionModel model = small_model();
  Rng rng(3);
  const GeneSetCollection clean = make_module_gene_sets(model, 0.0, 0, rng);
  Rng rng2(3);
  const GeneSetCollection noisy = make_module_gene_sets(model, 0.5, 0, rng2);
  bool any_difference = false;
  for (std::size_t s = 0; s < clean.size(); ++s) {
    if (!(clean[s].genes == noisy[s].genes)) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
  EXPECT_NO_THROW(noisy.validate(60));
}

TEST(ModuleGeneSets, BadArgsThrow) {
  const ExpressionModel model = small_model();
  Rng rng(4);
  EXPECT_THROW(make_module_gene_sets(model, 1.0, 0, rng), std::invalid_argument);
  ExpressionModelConfig all_relevant;
  all_relevant.features = 24;
  all_relevant.modules = 4;
  all_relevant.genes_per_module = 6;
  const ExpressionModel packed(all_relevant);
  EXPECT_THROW(make_module_gene_sets(packed, 0.0, 1, rng), std::invalid_argument);
}

}  // namespace
}  // namespace frac
