#include "csax/gsea.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Gsea, TopConcentratedSetScoresNearOne) {
  // Scores descending by index; set = the top 3 genes.
  const std::vector<double> scores{10, 9, 8, 1, 1, 1, 1, 1, 1, 1};
  const GeneSet set{"top", {0, 1, 2}};
  EXPECT_GT(enrichment_score(scores, set), 0.9);
}

TEST(Gsea, BottomConcentratedSetScoresNearZero) {
  const std::vector<double> scores{10, 9, 8, 7, 6, 5, 4, 3, 2, 1};
  const GeneSet set{"bottom", {7, 8, 9}};
  EXPECT_LT(enrichment_score(scores, set), 0.35);
}

TEST(Gsea, UniformSpreadScoresIntermediate) {
  std::vector<double> scores(12);
  for (std::size_t i = 0; i < 12; ++i) scores[i] = 12.0 - static_cast<double>(i);
  const GeneSet spread{"spread", {0, 4, 8}};
  const double es = enrichment_score(scores, spread);
  EXPECT_GT(es, 0.2);
  EXPECT_LT(es, 0.8);
}

TEST(Gsea, RankOnlyWeightIgnoresMagnitudes) {
  // weight = 0: only order matters.
  const std::vector<double> a{100, 99, 1, 0.5, 0.4, 0.3};
  const std::vector<double> b{6, 5, 4, 3, 2, 1};
  const GeneSet set{"s", {0, 1}};
  GseaConfig config;
  config.weight = 0.0;
  EXPECT_DOUBLE_EQ(enrichment_score(a, set, config), enrichment_score(b, set, config));
}

TEST(Gsea, NanScoresTreatedAsZeroEvidence) {
  const std::vector<double> scores{5, std::nan(""), 4, 1, std::nan(""), 0.5};
  const GeneSet set{"s", {0, 2}};
  EXPECT_NO_THROW(enrichment_score(scores, set));
  EXPECT_GT(enrichment_score(scores, set), 0.5);
}

TEST(Gsea, AllZeroScoresStayDefined) {
  const std::vector<double> scores(8, 0.0);
  const GeneSet set{"s", {0, 1}};
  const double es = enrichment_score(scores, set);
  EXPECT_TRUE(std::isfinite(es));
  EXPECT_GE(es, 0.0);
  EXPECT_LE(es, 1.0);
}

TEST(Gsea, CollectionMatchesIndividualScores) {
  const std::vector<double> scores{5, 4, 3, 2, 1, 0};
  const GeneSetCollection sets({{"a", {0, 1}}, {"b", {4, 5}}});
  const std::vector<double> batch = enrichment_scores(scores, sets);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0], enrichment_score(scores, sets[0]));
  EXPECT_DOUBLE_EQ(batch[1], enrichment_score(scores, sets[1]));
}

TEST(Gsea, OutOfRangeGeneThrows) {
  const std::vector<double> scores{1, 2};
  const GeneSet set{"oob", {5}};
  EXPECT_THROW(enrichment_score(scores, set), std::invalid_argument);
}

TEST(Gsea, EmptyScoresThrow) {
  const GeneSet set{"s", {0}};
  EXPECT_THROW(enrichment_score({}, set), std::invalid_argument);
}

TEST(Gsea, PermutationPValueSmallForRealEnrichment) {
  // 40 genes; the set holds the 4 highest-scoring ones.
  std::vector<double> scores(40);
  for (std::size_t i = 0; i < 40; ++i) scores[i] = 40.0 - static_cast<double>(i);
  const GeneSet set{"top", {0, 1, 2, 3}};
  Rng rng(1);
  const double p = enrichment_p_value(scores, set, 200, rng);
  EXPECT_LT(p, 0.05);
}

TEST(Gsea, PermutationPValueLargeForRandomSet) {
  Rng data_rng(2);
  std::vector<double> scores(40);
  for (double& s : scores) s = data_rng.uniform();
  const GeneSet set{"random", {3, 11, 22, 35}};
  Rng rng(3);
  const double p = enrichment_p_value(scores, set, 200, rng);
  EXPECT_GT(p, 0.05);
}

}  // namespace
}  // namespace frac
