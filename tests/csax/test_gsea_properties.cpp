// Property-style GSEA tests: invariances and orderings that must hold for
// any scores/sets, swept with parameterized gtest.
#include <gtest/gtest.h>

#include <algorithm>

#include "csax/gsea.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

class GseaWeights : public ::testing::TestWithParam<double> {};

TEST_P(GseaWeights, ScoresStayInUnitInterval) {
  Rng rng(1);
  std::vector<double> scores(60);
  for (double& s : scores) s = rng.normal();
  GseaConfig config;
  config.weight = GetParam();
  for (int trial = 0; trial < 10; ++trial) {
    GeneSet set{"s", rng.sample_without_replacement(60, 8)};
    std::sort(set.genes.begin(), set.genes.end());
    const double es = enrichment_score(scores, set, config);
    EXPECT_GE(es, 0.0);
    EXPECT_LE(es, 1.0 + 1e-12);
  }
}

TEST_P(GseaWeights, TopSetBeatsBottomSet) {
  std::vector<double> scores(40);
  for (std::size_t i = 0; i < 40; ++i) scores[i] = 40.0 - static_cast<double>(i);
  const GeneSet top{"top", {0, 1, 2, 3}};
  const GeneSet bottom{"bottom", {36, 37, 38, 39}};
  GseaConfig config;
  config.weight = GetParam();
  EXPECT_GT(enrichment_score(scores, top, config), enrichment_score(scores, bottom, config));
}

TEST_P(GseaWeights, InvariantToUniformScoreShiftInRankOnlyMode) {
  // With weight 0 the statistic is purely rank-based, so any monotone
  // transform of the scores leaves it unchanged.
  if (GetParam() != 0.0) GTEST_SKIP();
  Rng rng(2);
  std::vector<double> scores(30), shifted(30);
  for (std::size_t i = 0; i < 30; ++i) {
    scores[i] = rng.normal();
    shifted[i] = 3.0 * scores[i] + 100.0;
  }
  GeneSet set{"s", {2, 9, 17, 25}};
  GseaConfig config;
  config.weight = 0.0;
  EXPECT_DOUBLE_EQ(enrichment_score(scores, set, config),
                   enrichment_score(shifted, set, config));
}

INSTANTIATE_TEST_SUITE_P(Weights, GseaWeights, ::testing::Values(0.0, 0.5, 1.0, 2.0));

TEST(GseaProperties, FullUniverseSetScoresOne) {
  // A set containing every gene walks straight up to 1.
  std::vector<double> scores{3, 1, 2};
  GeneSet all{"all", {0, 1, 2}};
  EXPECT_DOUBLE_EQ(enrichment_score(scores, all), 1.0);
}

TEST(GseaProperties, SupersetNeverScoresLowerAtTop) {
  // Adding the current top gene to a set cannot decrease its enrichment.
  std::vector<double> scores(20);
  for (std::size_t i = 0; i < 20; ++i) scores[i] = 20.0 - static_cast<double>(i);
  const GeneSet base{"base", {5, 9}};
  const GeneSet with_top{"with_top", {0, 5, 9}};
  EXPECT_GE(enrichment_score(scores, with_top), enrichment_score(scores, base) - 1e-12);
}

TEST(GseaProperties, PermutationPValueIsDeterministicGivenSeed) {
  Rng data_rng(3);
  std::vector<double> scores(50);
  for (double& s : scores) s = data_rng.uniform();
  const GeneSet set{"s", {1, 7, 30}};
  Rng a(4), b(4);
  EXPECT_DOUBLE_EQ(enrichment_p_value(scores, set, 100, a),
                   enrichment_p_value(scores, set, 100, b));
}

TEST(GseaProperties, PValueBoundsAreValid) {
  Rng data_rng(5);
  std::vector<double> scores(30);
  for (double& s : scores) s = data_rng.uniform();
  const GeneSet set{"s", {0, 10, 20}};
  Rng rng(6);
  const double p = enrichment_p_value(scores, set, 50, rng);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

}  // namespace
}  // namespace frac
