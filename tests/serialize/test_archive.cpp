// Container-level tests for the versioned binary model archive: field
// round-trips, section integrity (CRC, truncation, over/under-reads), and
// the error contract (ParseError naming the archive source and section).
#include "serialize/archive.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/errors.hpp"

namespace frac {
namespace {

std::span<const std::byte> as_bytes(const std::string& image) {
  return std::as_bytes(std::span<const char>(image));
}

TEST(Archive, FieldRoundTrip) {
  ArchiveWriter writer;
  writer.begin_section("fields");
  writer.write_u8(7);
  writer.write_u32(123456789);
  writer.write_u64(0x0123456789abcdefULL);
  writer.write_f64(-2.5e-300);
  writer.write_string("hello archive");
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", /*borrowed=*/false);
  EXPECT_EQ(reader.format_version(), kArchiveFormatVersion);
  reader.open_section("fields");
  EXPECT_EQ(reader.read_u8(), 7);
  EXPECT_EQ(reader.read_u32(), 123456789u);
  EXPECT_EQ(reader.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.read_f64(), -2.5e-300);
  EXPECT_EQ(reader.read_string(), "hello archive");
  reader.expect_section_end();
}

TEST(Archive, ArrayRoundTrip) {
  const std::vector<double> doubles{1.0, -0.0, 3.25, 1e308, -7.5};
  const std::vector<std::uint32_t> u32s{0, 1, 4294967295u};
  const std::vector<std::uint64_t> u64s{42};

  ArchiveWriter writer;
  writer.begin_section("arrays");
  writer.write_f64_array(doubles);
  writer.write_u32_array(u32s);
  writer.write_u64_array(u64s);
  writer.write_f64_array({});  // empty arrays are legal
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", false);
  reader.open_section("arrays");
  EXPECT_EQ(reader.read_f64_vector(), doubles);
  EXPECT_EQ(reader.read_u32_vector(), u32s);
  EXPECT_EQ(reader.read_u64_vector(), u64s);
  EXPECT_TRUE(reader.read_f64_vector().empty());
  reader.expect_section_end();
}

TEST(Archive, MultipleSectionsOpenInAnyOrder) {
  ArchiveWriter writer;
  writer.begin_section("a");
  writer.write_u32(1);
  writer.end_section();
  writer.begin_section("b");
  writer.write_u32(2);
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", false);
  EXPECT_TRUE(reader.has_section("a"));
  EXPECT_TRUE(reader.has_section("b"));
  EXPECT_FALSE(reader.has_section("c"));
  EXPECT_EQ(reader.section_names(), (std::vector<std::string>{"a", "b"}));
  reader.open_section("b");
  EXPECT_EQ(reader.read_u32(), 2u);
  reader.open_section("a");
  EXPECT_EQ(reader.read_u32(), 1u);
}

TEST(Archive, LooksLikeArchiveSniffsTheMagic) {
  ArchiveWriter writer;
  writer.begin_section("s");
  writer.write_u8(0);
  writer.end_section();
  EXPECT_TRUE(ArchiveReader::looks_like_archive(writer.bytes()));
  EXPECT_FALSE(ArchiveReader::looks_like_archive("frac-model v1\n"));
  EXPECT_FALSE(ArchiveReader::looks_like_archive(""));
  EXPECT_FALSE(ArchiveReader::looks_like_archive("\x89"));
}

TEST(Archive, ZeroCopySpanAliasesTheBufferWhenBorrowed) {
  const std::vector<double> values{3.0, 1.0, 4.0, 1.0, 5.0};
  ArchiveWriter writer;
  writer.begin_section("w");
  writer.write_f64_array(values);
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", /*borrowed=*/true);
  EXPECT_TRUE(reader.borrowed());
  reader.open_section("w");
  const std::span<const double> view = reader.read_f64_span();
  ASSERT_EQ(view.size(), values.size());
  const char* base = image.data();
  const char* ptr = reinterpret_cast<const char*>(view.data());
  EXPECT_GE(ptr, base);
  EXPECT_LE(ptr + view.size() * sizeof(double), base + image.size());
  // 8-aligned within the file, as the SIMD kernels expect.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % alignof(double),
            static_cast<std::uintptr_t>(0));
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(view[i], values[i]);
}

TEST(Archive, F32ArrayRoundTrip) {
  const std::vector<float> floats{1.0f, -0.0f, 3.25f, 1e38f, -7.5f};

  ArchiveWriter writer;
  writer.begin_section("f32s");
  writer.write_f32_array(floats);
  writer.write_f32_array({});  // empty arrays are legal
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", false);
  reader.open_section("f32s");
  EXPECT_EQ(reader.read_f32_vector(), floats);
  EXPECT_TRUE(reader.read_f32_vector().empty());
  reader.expect_section_end();
}

TEST(Archive, ZeroCopyF32SpanAliasesTheBufferWhenBorrowed) {
  const std::vector<float> values{3.0f, 1.0f, 4.0f, 1.0f, 5.0f, 9.0f, 2.0f};
  ArchiveWriter writer;
  writer.begin_section("fused_f32");
  writer.write_f32_array(values);
  writer.end_section();

  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "test", /*borrowed=*/true);
  reader.open_section("fused_f32");
  const std::span<const float> view = reader.read_f32_span();
  ASSERT_EQ(view.size(), values.size());
  const char* base = image.data();
  const char* ptr = reinterpret_cast<const char*>(view.data());
  EXPECT_GE(ptr, base);
  EXPECT_LE(ptr + view.size() * sizeof(float), base + image.size());
  // The writer pads to 8 bytes, over-satisfying float's alignment.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ptr) % alignof(double),
            static_cast<std::uintptr_t>(0));
  for (std::size_t i = 0; i < values.size(); ++i) EXPECT_EQ(view[i], values[i]);
}

TEST(Archive, FormatVersionDefaultsToV2AndCanStampV3) {
  ArchiveWriter writer;
  writer.begin_section("s");
  writer.write_u8(1);
  writer.end_section();
  {
    // No f32 section, no set_format_version: v2 readers stay compatible.
    ArchiveReader reader(as_bytes(writer.bytes()), "test", false);
    EXPECT_EQ(reader.format_version(), kArchiveFormatVersion);
  }
  writer.set_format_version(kArchiveFormatVersionMax);
  {
    ArchiveReader reader(as_bytes(writer.bytes()), "test", false);
    EXPECT_EQ(reader.format_version(), kArchiveFormatVersionMax);
    reader.open_section("s");
    EXPECT_EQ(reader.read_u8(), 1);
  }
  EXPECT_THROW(writer.set_format_version(kArchiveFormatVersion - 1),
               std::logic_error);
  EXPECT_THROW(writer.set_format_version(kArchiveFormatVersionMax + 1),
               std::logic_error);
}

TEST(Archive, RejectsVersionsOutsideTheSupportedRange) {
  ArchiveWriter writer;
  writer.begin_section("s");
  writer.write_u8(1);
  writer.end_section();
  const std::string image = writer.bytes();

  for (const std::uint32_t bad :
       {kArchiveFormatVersion - 1, kArchiveFormatVersionMax + 1, 999u}) {
    std::string patched = image;
    std::memcpy(patched.data() + 8, &bad, sizeof bad);  // version field
    try {
      ArchiveReader reader(as_bytes(patched), "future.fracmdl", false);
      FAIL() << "accepted format version " << bad;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported format version"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(Archive, CorruptedF32PayloadFailsNamingTheSection) {
  ArchiveWriter writer;
  writer.begin_section("fused_f32");
  writer.write_f32_array(std::vector<float>{1.0f, 2.0f, 3.0f});
  writer.end_section();
  writer.set_format_version(kArchiveFormatVersionMax);
  std::string image = writer.bytes();
  image.back() ^= 0x01;  // flip one payload bit

  ArchiveReader reader(as_bytes(image), "corrupt.fracmdl", false);
  try {
    reader.open_section("fused_f32");
    FAIL() << "corrupted f32 section opened without error";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("fused_f32"), std::string::npos) << e.what();
  }
}

TEST(Archive, CorruptedPayloadFailsNamingTheSection) {
  ArchiveWriter writer;
  writer.begin_section("weights");
  writer.write_f64_array(std::vector<double>{1.0, 2.0, 3.0});
  writer.end_section();
  std::string image = writer.bytes();
  image.back() ^= 0x01;  // flip one payload bit

  ArchiveReader reader(as_bytes(image), "corrupt.fracmdl", false);
  try {
    reader.open_section("weights");
    FAIL() << "corrupted section opened without error";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("weights"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("corrupt.fracmdl"), std::string::npos) << e.what();
  }
}

TEST(Archive, TruncatedImageFails) {
  ArchiveWriter writer;
  writer.begin_section("payload");
  writer.write_f64_array(std::vector<double>(64, 1.5));
  writer.end_section();
  const std::string image = writer.bytes();

  // Truncating anywhere must fail cleanly (header, table, or payload).
  for (const std::size_t keep : {std::size_t{4}, std::size_t{12}, image.size() / 2}) {
    const std::string cut = image.substr(0, keep);
    EXPECT_THROW(
        {
          ArchiveReader reader(as_bytes(cut), "t", false);
          reader.open_section("payload");
        },
        ParseError)
        << "kept " << keep << " bytes";
  }
}

TEST(Archive, NotAnArchiveFails) {
  const std::string junk = "definitely not a model archive";
  EXPECT_THROW(ArchiveReader(as_bytes(junk), "junk", false), ParseError);
}

TEST(Archive, MissingSectionFailsByName) {
  ArchiveWriter writer;
  writer.begin_section("present");
  writer.write_u8(1);
  writer.end_section();
  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "t", false);
  try {
    reader.open_section("absent");
    FAIL() << "missing section opened";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("absent"), std::string::npos) << e.what();
  }
}

TEST(Archive, ReadPastSectionEndFails) {
  ArchiveWriter writer;
  writer.begin_section("small");
  writer.write_u32(5);
  writer.end_section();
  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "t", false);
  reader.open_section("small");
  EXPECT_EQ(reader.read_u32(), 5u);
  EXPECT_THROW(reader.read_u64(), ParseError);
}

TEST(Archive, UnconsumedBytesFailExpectSectionEnd) {
  ArchiveWriter writer;
  writer.begin_section("extra");
  writer.write_u32(1);
  writer.write_u32(2);
  writer.end_section();
  const std::string image = writer.bytes();
  ArchiveReader reader(as_bytes(image), "t", false);
  reader.open_section("extra");
  EXPECT_EQ(reader.read_u32(), 1u);
  EXPECT_GT(reader.section_remaining(), 0u);
  EXPECT_THROW(reader.expect_section_end(), ParseError);
}

TEST(Archive, WriterMisuseIsALogicError) {
  ArchiveWriter writer;
  EXPECT_THROW(writer.write_u8(1), std::logic_error);  // no open section
  writer.begin_section("s");
  EXPECT_THROW(writer.begin_section("t"), std::logic_error);  // nested
  writer.end_section();
  EXPECT_THROW(writer.begin_section("s"), std::logic_error);  // duplicate name
}

TEST(Archive, Crc32MatchesKnownVector) {
  // Standard zlib check value: crc32("123456789") == 0xCBF43926.
  const std::string data = "123456789";
  EXPECT_EQ(crc32(as_bytes(data)), 0xCBF43926u);
}

}  // namespace
}  // namespace frac
