// Binary round-trip property tests: every serializable model type must
// reproduce bit-identical behavior after serialize() -> deserialize(), and
// a FracModel saved as text then converted to binary must score identically.
// Also pins the frac.hpp fix: unit-failure records (and the per-category
// tallies) survive the binary format, where the legacy text format lost them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "frac/error_model.hpp"
#include "frac/frac.hpp"
#include "ml/svm/linear_svc.hpp"
#include "ml/svm/linear_svr.hpp"
#include "ml/tree/decision_tree.hpp"
#include "serialize/archive.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

/// serialize() into a one-section archive, reparse, deserialize().
template <typename T>
T round_trip(const T& original) {
  ArchiveWriter writer;
  writer.begin_section("model");
  original.serialize(writer);
  writer.end_section();
  const std::string image = writer.bytes();
  static std::vector<std::string> keep_alive;  // outlive returned models
  keep_alive.push_back(image);
  ArchiveReader reader(std::as_bytes(std::span<const char>(keep_alive.back())), "round-trip",
                       /*borrowed=*/false);
  reader.open_section("model");
  T restored = T::deserialize(reader);
  reader.expect_section_end();
  return restored;
}

TEST(ModelRoundTrip, GaussianErrorModel) {
  Rng rng(11);
  std::vector<double> residuals(64);
  for (double& r : residuals) r = 0.3 * rng.normal() - 0.1;
  GaussianErrorModel original;
  original.fit(residuals);
  const GaussianErrorModel restored = round_trip(original);
  EXPECT_EQ(restored.mean(), original.mean());
  EXPECT_EQ(restored.sd(), original.sd());
  for (const double r : {-2.0, -0.1, 0.0, 0.5, 3.0}) {
    EXPECT_EQ(restored.surprisal(r), original.surprisal(r));
  }
}

TEST(ModelRoundTrip, KdeErrorModel) {
  Rng rng(12);
  std::vector<double> residuals(48);
  for (double& r : residuals) r = rng.normal();
  KdeErrorModel original;
  original.fit(residuals);
  const KdeErrorModel restored = round_trip(original);
  EXPECT_EQ(restored.bandwidth(), original.bandwidth());
  for (const double r : {-5.0, -1.0, 0.0, 0.7, 4.0}) {
    EXPECT_EQ(restored.surprisal(r), original.surprisal(r));
  }
}

TEST(ModelRoundTrip, ConfusionErrorModel) {
  Rng rng(13);
  const std::uint32_t arity = 3;
  std::vector<std::uint32_t> truth(60), predicted(60);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = static_cast<std::uint32_t>(rng.uniform_index(arity));
    predicted[i] = static_cast<std::uint32_t>(rng.uniform_index(arity));
  }
  ConfusionErrorModel original;
  original.fit(truth, predicted, arity);
  const ConfusionErrorModel restored = round_trip(original);
  EXPECT_EQ(restored.arity(), original.arity());
  for (std::uint32_t t = 0; t < arity; ++t) {
    for (std::uint32_t p = 0; p < arity; ++p) {
      EXPECT_EQ(restored.surprisal(t, p), original.surprisal(t, p));
      EXPECT_EQ(restored.count(t, p), original.count(t, p));
    }
  }
}

TEST(ModelRoundTrip, DecisionTree) {
  Rng rng(14);
  Matrix x(90, 4);
  std::vector<double> y(90);
  for (std::size_t i = 0; i < 90; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    for (std::size_t j = 1; j < 4; ++j) x(i, j) = rng.normal();
    y[i] = (i % 3 == 2) ? 1.0 : 0.0;
  }
  const std::vector<std::uint32_t> arities{3, 0, 0, 0};
  DecisionTree original;
  original.fit(x, y, arities, TreeTask::kClassification, 2, {});
  const DecisionTree restored = round_trip(original);
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.depth(), original.depth());
  EXPECT_EQ(restored.task(), original.task());
  EXPECT_EQ(restored.used_features(), original.used_features());
  for (std::size_t i = 0; i < 90; ++i) {
    EXPECT_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

TEST(ModelRoundTrip, LinearSvr) {
  Rng rng(15);
  Matrix x(50, 6);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = x(i, 1) - 2.0 * x(i, 4) + 0.05 * rng.normal();
  }
  LinearSvr original;
  original.fit(x, y, {});
  const LinearSvr restored = round_trip(original);
  EXPECT_TRUE(std::ranges::equal(restored.weights(), original.weights()));
  EXPECT_EQ(restored.bias(), original.bias());
  EXPECT_EQ(restored.support_vector_count(), original.support_vector_count());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

TEST(ModelRoundTrip, BinaryLinearSvc) {
  Rng rng(16);
  Matrix x(60, 5);
  std::vector<int> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = (x(i, 0) + x(i, 2) > 0.0) ? 1 : -1;
  }
  BinaryLinearSvc original;
  original.fit(x, y, {});
  const BinaryLinearSvc restored = round_trip(original);
  EXPECT_TRUE(std::ranges::equal(restored.weights(), original.weights()));
  EXPECT_EQ(restored.support_vector_count(), original.support_vector_count());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(restored.decision(x.row(i)), original.decision(x.row(i)));
    EXPECT_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

TEST(ModelRoundTrip, OneVsRestSvc) {
  Rng rng(17);
  const std::uint32_t arity = 3;
  Matrix x(75, 4);
  std::vector<double> codes(75);
  for (std::size_t i = 0; i < 75; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    codes[i] = static_cast<double>(i % arity);
  }
  OneVsRestSvc original;
  original.fit(x, codes, arity, {});
  const OneVsRestSvc restored = round_trip(original);
  EXPECT_EQ(restored.arity(), original.arity());
  EXPECT_EQ(restored.support_vector_count(), original.support_vector_count());
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

Dataset make_expression_train(std::size_t samples, std::uint64_t seed) {
  ExpressionModelConfig c;
  c.features = 24;
  c.modules = 3;
  c.genes_per_module = 5;
  c.disease_modules = 2;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  return ExpressionModel(c).sample(samples, Label::kNormal, rng);
}

TEST(ModelRoundTrip, FracModelBinaryScoresBitIdentical) {
  const Dataset train = make_expression_train(30, 21);
  const Dataset test = make_expression_train(8, 22);
  const FracModel original = FracModel::train(train, {}, pool());

  ArchiveWriter writer;
  original.serialize(writer);
  const std::string image = writer.bytes();
  ArchiveReader reader(std::as_bytes(std::span<const char>(image)), "mem", false);
  const FracModel restored = FracModel::deserialize(reader);

  EXPECT_EQ(restored.feature_count(), original.feature_count());
  EXPECT_EQ(restored.unit_count(), original.unit_count());
  const auto a = original.score(test, pool());
  const auto b = restored.score(test, pool());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  // Entropies and the resource report also persist in the binary format.
  for (std::size_t u = 0; u < original.unit_count(); ++u) {
    EXPECT_EQ(restored.unit_entropy(u), original.unit_entropy(u));
  }
  EXPECT_EQ(restored.report().models_trained, original.report().models_trained);
}

TEST(ModelRoundTrip, TextAndBinaryFormatsScoreBitIdentically) {
  // The `frac convert` contract: text model -> binary model -> identical NS.
  const Dataset train = make_expression_train(25, 31);
  const Dataset test = make_expression_train(6, 32);
  const FracModel original = FracModel::train(train, {}, pool());

  std::stringstream text;
  original.save(text);  // legacy tagged-text
  const FracModel from_text = FracModel::load(text);

  ArchiveWriter writer;
  from_text.serialize(writer);  // the conversion step
  const std::string image = writer.bytes();
  ArchiveReader reader(std::as_bytes(std::span<const char>(image)), "mem", false);
  const FracModel from_binary = FracModel::deserialize(reader);

  const auto direct = original.score(test, pool());
  const auto text_scores = from_text.score(test, pool());
  const auto binary_scores = from_binary.score(test, pool());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(text_scores[i], direct[i]);
    EXPECT_EQ(binary_scores[i], direct[i]);
  }
}

TEST(ModelRoundTrip, SnpTreeModelThroughFileApi) {
  SnpModelConfig c;
  c.features = 18;
  c.block_size = 6;
  c.seed = 41;
  const SnpModel model(c);
  Rng rng(141);
  const Dataset train = model.sample(0, 35, Label::kNormal, rng);
  const Dataset test = model.sample(1, 8, Label::kAnomaly, rng);
  FracConfig config;
  config.predictor.classifier = ClassifierKind::kDecisionTree;
  const FracModel original = FracModel::train(train, config, pool());

  const std::string path = ::testing::TempDir() + "snp_model.fracmdl";
  original.save_file(path, ModelFormat::kBinary);
  const FracModel restored = FracModel::load_file(path);
  std::remove(path.c_str());

  const auto a = original.score(test, pool());
  const auto b = restored.score(test, pool());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(ModelRoundTrip, UnitFailureRecordsSurviveTheBinaryFormat) {
  // Train under an injected fault plan so some units fail, then check the
  // failure records AND the per-category tallies reload (the text format
  // dropped them: frac.hpp documented load() leaving them empty).
  const Dataset train = make_expression_train(20, 51);
  ScopedFaultPlan plan("predictor_train:0.5:7");
  const FracModel original = FracModel::train(train, {}, pool());
  ASSERT_FALSE(original.unit_failures().empty()) << "fault plan injected no failures";

  ArchiveWriter writer;
  original.serialize(writer);
  const std::string image = writer.bytes();
  ArchiveReader reader(std::as_bytes(std::span<const char>(image)), "mem", false);
  const FracModel restored = FracModel::deserialize(reader);

  ASSERT_EQ(restored.unit_failures().size(), original.unit_failures().size());
  for (std::size_t i = 0; i < original.unit_failures().size(); ++i) {
    const UnitFailure& a = original.unit_failures()[i];
    const UnitFailure& b = restored.unit_failures()[i];
    EXPECT_EQ(b.unit, a.unit);
    EXPECT_EQ(b.target, a.target);
    EXPECT_EQ(b.category, a.category);
    EXPECT_EQ(b.detail, a.detail);
  }
  for (std::size_t c = 0; c < kFailureCategoryCount; ++c) {
    const auto category = static_cast<FailureCategory>(c);
    EXPECT_EQ(restored.report().failures[category], original.report().failures[category]);
  }
}

TEST(ModelRoundTrip, SniffingDispatchesTextVsBinaryThroughOneLoad) {
  const Dataset train = make_expression_train(20, 61);
  const FracModel original = FracModel::train(train, {}, pool());

  std::stringstream text;
  original.save(text);
  const FracModel via_text = FracModel::load(text);

  ArchiveWriter writer;
  original.serialize(writer);
  std::stringstream binary(writer.bytes());
  const FracModel via_binary = FracModel::load(binary);

  EXPECT_EQ(via_text.unit_count(), original.unit_count());
  EXPECT_EQ(via_binary.unit_count(), original.unit_count());
}

}  // namespace
}  // namespace frac
