// Backward compatibility: models written by the legacy tagged-text format
// (frac.version 1, pre-archive) must keep loading through the unified
// FracModel::load_file API forever. The fixture under fixtures/ is a
// checked-in file written by the v1 writer (tiny 7-feature model trained on
// fixtures/legacy_v1.train.csv, seed 5) — regenerate only if the text codec
// itself changes, which it must not.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>

#include "data/io.hpp"
#include "frac/frac.hpp"
#include "serialize/archive.hpp"
#include "util/errors.hpp"

#ifndef FRAC_TEST_FIXTURE_DIR
#error "FRAC_TEST_FIXTURE_DIR must be defined by the build"
#endif

namespace frac {
namespace {

const std::string kFixtureDir = FRAC_TEST_FIXTURE_DIR;

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

TEST(Backcompat, LegacyTextModelLoads) {
  const FracModel model = FracModel::load_file(kFixtureDir + "/legacy_v1.frac");
  EXPECT_EQ(model.feature_count(), 7u);
  EXPECT_EQ(model.unit_count(), 7u);
  EXPECT_EQ(model.schema()[0].name, "g0");
  EXPECT_EQ(model.schema()[6].name, "snp");
  EXPECT_EQ(model.schema()[6].arity, 3u);
  // The v1 format predates failure persistence: records restore empty.
  EXPECT_TRUE(model.unit_failures().empty());
}

TEST(Backcompat, LegacyModelScoresItsTrainingData) {
  const FracModel model = FracModel::load_file(kFixtureDir + "/legacy_v1.frac");
  const Dataset train = load_dataset_csv(kFixtureDir + "/legacy_v1.train.csv");
  const auto scores = model.score(train, pool());
  ASSERT_EQ(scores.size(), train.sample_count());
  for (const double ns : scores) EXPECT_TRUE(std::isfinite(ns));
}

TEST(Backcompat, LegacyModelConvertsToBinaryWithIdenticalScores) {
  // The `frac convert` migration path, end to end in-process.
  const FracModel from_text = FracModel::load_file(kFixtureDir + "/legacy_v1.frac");
  const std::string binary_path = ::testing::TempDir() + "backcompat_converted.fracmdl";
  from_text.save_file(binary_path, ModelFormat::kBinary);
  const FracModel from_binary = FracModel::load_file(binary_path);
  std::remove(binary_path.c_str());

  const Dataset train = load_dataset_csv(kFixtureDir + "/legacy_v1.train.csv");
  const auto a = from_text.score(train, pool());
  const auto b = from_binary.score(train, pool());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(Backcompat, GarbledTextModelStillFailsLikeBefore) {
  // Legacy text errors keep their historical type (std::runtime_error), so
  // pre-archive callers' catch sites still work.
  std::istringstream garbled("frac.version 99\n");
  EXPECT_THROW(FracModel::load(garbled), std::runtime_error);
}

}  // namespace
}  // namespace frac
