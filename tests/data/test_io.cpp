#include "data/io.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/errors.hpp"

namespace frac {
namespace {

constexpr const char* kGood =
    "expr:real,snp:cat:3,label\n"
    "1.25,0,normal\n"
    "?,2,anomaly\n"
    "-3.5,?,normal\n";

TEST(DatasetIo, ParsesHeaderTypesAndLabels) {
  std::istringstream in(kGood);
  const Dataset d = read_dataset_csv(in);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_TRUE(d.schema().is_real(0));
  EXPECT_TRUE(d.schema().is_categorical(1));
  EXPECT_EQ(d.schema()[1].arity, 3u);
  EXPECT_EQ(d.sample_count(), 3u);
  EXPECT_EQ(d.label(1), Label::kAnomaly);
}

TEST(DatasetIo, ParsesMissingCells) {
  std::istringstream in(kGood);
  const Dataset d = read_dataset_csv(in);
  EXPECT_TRUE(is_missing(d.value(1, 0)));
  EXPECT_TRUE(is_missing(d.value(2, 1)));
  EXPECT_DOUBLE_EQ(d.value(0, 0), 1.25);
}

TEST(DatasetIo, RoundTripPreservesEverything) {
  std::istringstream in(kGood);
  const Dataset d = read_dataset_csv(in);
  std::ostringstream out;
  write_dataset_csv(out, d);
  std::istringstream in2(out.str());
  const Dataset d2 = read_dataset_csv(in2);
  EXPECT_EQ(d2.schema(), d.schema());
  EXPECT_EQ(d2.labels(), d.labels());
  for (std::size_t r = 0; r < d.sample_count(); ++r) {
    for (std::size_t c = 0; c < d.feature_count(); ++c) {
      if (is_missing(d.value(r, c))) EXPECT_TRUE(is_missing(d2.value(r, c)));
      else EXPECT_DOUBLE_EQ(d2.value(r, c), d.value(r, c));
    }
  }
}

TEST(DatasetIo, RejectsMissingLabelColumn) {
  std::istringstream in("a:real,b:real\n1,2\n");
  EXPECT_THROW(read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsBadHeaderCell) {
  std::istringstream in("a:complex,label\n1,normal\n");
  EXPECT_THROW(read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsBadLabelValue) {
  std::istringstream in("a:real,label\n1,weird\n");
  EXPECT_THROW(read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsRaggedRow) {
  std::istringstream in("a:real,b:real,label\n1,normal\n");
  EXPECT_THROW(read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsOutOfRangeCategoricalCode) {
  std::istringstream in("s:cat:2,label\n5,normal\n");
  EXPECT_THROW(read_dataset_csv(in), std::invalid_argument);
}

TEST(DatasetIo, RejectsNonFiniteRealCellWithLocation) {
  // NaN would masquerade as the missing sentinel; Inf poisons every sum.
  for (const char* bad : {"nan", "inf", "-inf", "NAN", "Infinity"}) {
    std::istringstream in(std::string("a:real,b:real,label\n1.5,") + bad + ",normal\n");
    try {
      read_dataset_csv(in);
      FAIL() << "accepted non-finite cell '" << bad << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("row 1 col 1"), std::string::npos) << e.what();
    }
  }
}

TEST(DatasetIo, RejectsNonIntegerCategoricalCodeWithLocation) {
  for (const char* bad : {"1.5", "-1", "2"}) {
    std::istringstream in(std::string("s:cat:2,label\n") + bad + ",normal\n");
    try {
      read_dataset_csv(in);
      FAIL() << "accepted categorical code '" << bad << "'";
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("row 1 col 0"), std::string::npos) << e.what();
      EXPECT_NE(std::string(e.what()).find("[0, 2)"), std::string::npos) << e.what();
    }
  }
}

TEST(DatasetIo, LoadOfMissingFileIsAnIoError) {
  EXPECT_THROW(load_dataset_csv(testing::TempDir() + "/no_such_dataset.csv"), IoError);
}

TEST(DatasetIo, EmptyFileThrows) {
  std::istringstream in("");
  EXPECT_THROW(read_dataset_csv(in), std::runtime_error);
}

TEST(DatasetIo, FileRoundTripThroughDisk) {
  std::istringstream in(kGood);
  const Dataset d = read_dataset_csv(in);
  const std::string path = testing::TempDir() + "/frac_io_test.csv";
  save_dataset_csv(path, d);
  const Dataset d2 = load_dataset_csv(path);
  EXPECT_EQ(d2.sample_count(), d.sample_count());
  EXPECT_EQ(d2.schema(), d.schema());
}

}  // namespace
}  // namespace frac
