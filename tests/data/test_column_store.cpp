#include "data/column_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "data/expression_generator.hpp"
#include "data/io.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

/// Mixed-type dataset with missing cells in both a real and a categorical
/// column.
Dataset mixed_dataset() {
  const std::string csv =
      "expr:real,snp:cat:3,other:real,label\n"
      "1.25,0,4.5,normal\n"
      "?,2,-0.75,anomaly\n"
      "-3.5,?,0.125,normal\n"
      "2.0,1,?,normal\n";
  std::istringstream in(csv);
  return read_dataset_csv(in);
}

Dataset expression_dataset(std::size_t samples = 30, std::uint64_t seed = 5) {
  ExpressionModelConfig c;
  c.features = 12;
  c.modules = 3;
  c.genes_per_module = 4;
  c.disease_modules = 2;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 1);
  return model.sample(samples, Label::kNormal, rng);
}

void expect_same_data(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.schema(), b.schema());
  ASSERT_EQ(a.labels(), b.labels());
  ASSERT_EQ(a.sample_count(), b.sample_count());
  for (std::size_t r = 0; r < a.sample_count(); ++r) {
    for (std::size_t c = 0; c < a.feature_count(); ++c) {
      if (is_missing(a.value(r, c))) {
        EXPECT_TRUE(is_missing(b.value(r, c))) << "row " << r << " col " << c;
      } else {
        // Bitwise: the container must not perturb values.
        EXPECT_EQ(a.value(r, c), b.value(r, c)) << "row " << r << " col " << c;
      }
    }
  }
}

TEST(ColumnStore, FileRoundTripPreservesEverything) {
  const Dataset data = mixed_dataset();
  const std::string path = ::testing::TempDir() + "roundtrip.fraccol";
  write_column_store(path, data);
  const ColumnStore store = ColumnStore::open(path);
  EXPECT_EQ(store.sample_count(), data.sample_count());
  EXPECT_EQ(store.feature_count(), data.feature_count());
  EXPECT_EQ(store.schema(), data.schema());
  EXPECT_EQ(store.labels(), data.labels());
  expect_same_data(data, store.to_dataset());
  std::remove(path.c_str());
}

TEST(ColumnStore, ColumnsAreColumnMajorViews) {
  const Dataset data = expression_dataset();
  const ColumnStore store = ColumnStore::from_dataset(data);
  for (std::size_t c = 0; c < data.feature_count(); ++c) {
    const std::span<const double> col = store.column(c);
    ASSERT_EQ(col.size(), data.sample_count());
    for (std::size_t r = 0; r < data.sample_count(); ++r) {
      EXPECT_EQ(col[r], data.value(r, c));
    }
  }
}

TEST(ColumnStore, InMemoryAndFileContentCrcAgree) {
  const Dataset data = expression_dataset();
  const std::string path = ::testing::TempDir() + "crc.fraccol";
  write_column_store(path, data);
  const ColumnStore from_file = ColumnStore::open(path);
  const ColumnStore from_memory = ColumnStore::from_dataset(data);
  // The CRC identifies content, not provenance: shards fed the CSV and shards
  // fed the converted container must agree they saw the same data.
  EXPECT_EQ(from_file.content_crc(), from_memory.content_crc());
  std::remove(path.c_str());
}

TEST(ColumnStore, StreamingConvertMatchesCsvReader) {
  const Dataset data = mixed_dataset();
  const std::string csv_path = ::testing::TempDir() + "convert_in.csv";
  const std::string out_path = ::testing::TempDir() + "convert_out.fraccol";
  save_dataset_csv(csv_path, data);

  const ColumnStoreConvertStats stats = convert_csv_to_column_store(csv_path, out_path);
  EXPECT_EQ(stats.samples, data.sample_count());
  EXPECT_EQ(stats.features, data.feature_count());
  EXPECT_EQ(stats.column_bytes, data.sample_count() * data.feature_count() * sizeof(double));

  expect_same_data(load_dataset_csv(csv_path), ColumnStore::open(out_path).to_dataset());
  std::remove(csv_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ColumnStore, ConvertTransientPeakStaysUnderBound) {
  // The out-of-core satellite: converting must not transiently double the
  // column payload. Use enough data that the fixed slack term doesn't
  // dominate the comparison.
  const Dataset data = expression_dataset(/*samples=*/400, /*seed=*/9);
  const std::string csv_path = ::testing::TempDir() + "bound_in.csv";
  const std::string out_path = ::testing::TempDir() + "bound_out.fraccol";
  save_dataset_csv(csv_path, data);

  const ColumnStoreConvertStats stats = convert_csv_to_column_store(csv_path, out_path);
  EXPECT_LE(stats.transient_peak_bytes,
            column_store_transient_bound(stats.samples, stats.column_bytes));
  EXPECT_LT(stats.transient_peak_bytes, 2 * stats.column_bytes);
  std::remove(csv_path.c_str());
  std::remove(out_path.c_str());
}

TEST(ColumnStore, CorruptionNamesFileAndSection) {
  const Dataset data = expression_dataset();
  const std::string path = ::testing::TempDir() + "corrupt.fraccol";
  write_column_store(path, data);
  {
    // Flip a byte in the last payload (the final column's section).
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size - 5);
    f.put('\x5a');
  }
  try {
    ColumnStore::open(path);
    FAIL() << "corrupt column store opened";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(path), std::string::npos) << what;
    EXPECT_NE(what.find("col."), std::string::npos) << what;
    EXPECT_NE(what.find("CRC32 mismatch"), std::string::npos) << what;
  }
  std::remove(path.c_str());
}

TEST(ColumnStore, TruncationFailsAtOpenNotMidTraining) {
  const Dataset data = expression_dataset();
  const std::string path = ::testing::TempDir() + "truncated.fraccol";
  write_column_store(path, data);
  {
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() / 2);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_THROW(ColumnStore::open(path), ParseError);
  std::remove(path.c_str());
}

TEST(ColumnStore, LoadDatasetAnySniffsBothFormats) {
  const Dataset data = mixed_dataset();
  const std::string csv_path = ::testing::TempDir() + "any.csv";
  const std::string col_path = ::testing::TempDir() + "any.fraccol";
  save_dataset_csv(csv_path, data);
  write_column_store(col_path, data);
  EXPECT_TRUE(looks_like_archive_file(col_path));
  EXPECT_FALSE(looks_like_archive_file(csv_path));
  expect_same_data(load_dataset_any(csv_path), load_dataset_any(col_path));
  std::remove(csv_path.c_str());
  std::remove(col_path.c_str());
}

TEST(ColumnStore, OpenMissingFileIsIoError) {
  EXPECT_THROW(ColumnStore::open(::testing::TempDir() + "does_not_exist.fraccol"), IoError);
}

}  // namespace
}  // namespace frac
