#include "data/split.hpp"

#include <gtest/gtest.h>

#include <set>

namespace frac {
namespace {

Dataset cohort(std::size_t normals, std::size_t anomalies) {
  Matrix values(normals + anomalies, 2);
  std::vector<Label> labels;
  for (std::size_t i = 0; i < normals + anomalies; ++i) {
    values(i, 0) = static_cast<double>(i);  // row id, to trace samples
    labels.push_back(i < normals ? Label::kNormal : Label::kAnomaly);
  }
  return Dataset(Schema::all_real(2), values, labels);
}

TEST(Split, TrainIsAllNormalTwoThirds) {
  const Dataset d = cohort(30, 10);
  Rng rng(1);
  const Replicate rep = make_replicate(d, 2.0 / 3.0, rng);
  EXPECT_EQ(rep.train.sample_count(), 20u);
  EXPECT_EQ(rep.train.anomaly_count(), 0u);
  EXPECT_EQ(rep.test.sample_count(), 10u + 10u);
  EXPECT_EQ(rep.test.anomaly_count(), 10u);
}

TEST(Split, TrainAndTestNormalsPartitionTheNormals) {
  const Dataset d = cohort(30, 5);
  Rng rng(2);
  const Replicate rep = make_replicate(d, 2.0 / 3.0, rng);
  std::set<double> seen;
  for (std::size_t i = 0; i < rep.train.sample_count(); ++i) {
    seen.insert(rep.train.value(i, 0));
  }
  for (std::size_t i = 0; i < rep.test.sample_count(); ++i) {
    // No overlap between train and test.
    EXPECT_EQ(seen.count(rep.test.value(i, 0)), 0u);
    seen.insert(rep.test.value(i, 0));
  }
  EXPECT_EQ(seen.size(), 35u);  // every sample appears exactly once
}

TEST(Split, AllAnomaliesGoToTest) {
  const Dataset d = cohort(12, 7);
  Rng rng(3);
  const Replicate rep = make_replicate(d, 2.0 / 3.0, rng);
  EXPECT_EQ(rep.test.anomaly_count(), 7u);
}

TEST(Split, BadFractionThrows) {
  const Dataset d = cohort(10, 2);
  Rng rng(4);
  EXPECT_THROW(make_replicate(d, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(make_replicate(d, 1.0, rng), std::invalid_argument);
}

TEST(Split, TooFewNormalsThrows) {
  const Dataset d = cohort(1, 5);
  Rng rng(5);
  EXPECT_THROW(make_replicate(d, 0.5, rng), std::invalid_argument);
}

TEST(Split, ReplicatesDiffer) {
  const Dataset d = cohort(30, 5);
  Rng rng(6);
  const auto reps = make_replicates(d, 5, 2.0 / 3.0, rng);
  ASSERT_EQ(reps.size(), 5u);
  // At least two replicates should pick different training sets.
  bool any_different = false;
  for (std::size_t r = 1; r < reps.size(); ++r) {
    for (std::size_t i = 0; i < reps[0].train.sample_count(); ++i) {
      if (reps[0].train.value(i, 0) != reps[r].train.value(i, 0)) {
        any_different = true;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Split, ReplicatesAreDeterministicPerSeed) {
  const Dataset d = cohort(20, 4);
  Rng rng1(7), rng2(7);
  const auto a = make_replicates(d, 3, 2.0 / 3.0, rng1);
  const auto b = make_replicates(d, 3, 2.0 / 3.0, rng2);
  for (std::size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(a[r].train.sample_count(), b[r].train.sample_count());
    for (std::size_t i = 0; i < a[r].train.sample_count(); ++i) {
      EXPECT_EQ(a[r].train.value(i, 0), b[r].train.value(i, 0));
    }
  }
}

TEST(Split, FixedReplicateHonorsIndices) {
  const Dataset d = cohort(6, 2);
  const Replicate rep = make_fixed_replicate(d, {0, 1, 2}, {3, 6, 7});
  EXPECT_EQ(rep.train.sample_count(), 3u);
  EXPECT_EQ(rep.test.sample_count(), 3u);
  EXPECT_EQ(rep.test.anomaly_count(), 2u);
}

TEST(Split, FixedReplicateRejectsAnomalousTraining) {
  const Dataset d = cohort(3, 2);
  EXPECT_THROW(make_fixed_replicate(d, {0, 4}, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace frac
