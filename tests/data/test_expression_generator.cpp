#include "data/expression_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/kernels.hpp"

namespace frac {
namespace {

ExpressionModelConfig small_config() {
  ExpressionModelConfig c;
  c.features = 60;
  c.modules = 4;
  c.genes_per_module = 6;
  c.noise_sd = 0.5;
  c.anomaly_mix = 0.8;
  c.disease_modules = 2;
  c.seed = 5;
  return c;
}

/// Pearson correlation between two columns of a matrix.
double column_correlation(const Matrix& m, std::size_t a, std::size_t b) {
  const auto ca = m.col(a);
  const auto cb = m.col(b);
  const double ma = mean(ca), mb = mean(cb);
  double num = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < ca.size(); ++i) {
    num += (ca[i] - ma) * (cb[i] - mb);
    va += (ca[i] - ma) * (ca[i] - ma);
    vb += (cb[i] - mb) * (cb[i] - mb);
  }
  return num / std::sqrt(va * vb);
}

TEST(ExpressionModel, ConfigValidation) {
  ExpressionModelConfig c = small_config();
  c.modules = 100;  // 100*6 > 60
  EXPECT_THROW(ExpressionModel{c}, std::invalid_argument);
  c = small_config();
  c.disease_modules = 10;
  EXPECT_THROW(ExpressionModel{c}, std::invalid_argument);
  c = small_config();
  c.anomaly_mix = -0.5;  // amplitudes may exceed 1, but not go negative
  EXPECT_THROW(ExpressionModel{c}, std::invalid_argument);
  c = small_config();
  c.loading_min = -0.1;
  EXPECT_THROW(ExpressionModel{c}, std::invalid_argument);
}

TEST(ExpressionModel, ShapesAndLabels) {
  const ExpressionModel model(small_config());
  Rng rng(1);
  const Dataset normals = model.sample(20, Label::kNormal, rng);
  EXPECT_EQ(normals.sample_count(), 20u);
  EXPECT_EQ(normals.feature_count(), 60u);
  EXPECT_EQ(normals.anomaly_count(), 0u);
  const Dataset anomalies = model.sample(5, Label::kAnomaly, rng);
  EXPECT_EQ(anomalies.anomaly_count(), 5u);
}

TEST(ExpressionModel, ModuleAssignmentLayout) {
  const ExpressionModel model(small_config());
  EXPECT_EQ(model.module_of(0), 0u);
  EXPECT_EQ(model.module_of(6), 1u);
  EXPECT_EQ(model.module_of(23), 3u);
  EXPECT_EQ(model.module_of(24), std::numeric_limits<std::size_t>::max());
}

TEST(ExpressionModel, ModuleGenesAreCorrelatedInNormals) {
  const ExpressionModel model(small_config());
  Rng rng(2);
  const Dataset d = model.sample(400, Label::kNormal, rng);
  // Genes 0 and 1 share module 0; |corr| should be substantial.
  EXPECT_GT(std::abs(column_correlation(d.values(), 0, 1)), 0.3);
  // Gene 0 vs an irrelevant gene: near zero.
  EXPECT_LT(std::abs(column_correlation(d.values(), 0, 40)), 0.15);
}

TEST(ExpressionModel, DiseaseProgramMarksDiseaseModuleGenesOnly) {
  const ExpressionModel model(small_config());
  // Disease modules are the first 2 of 4: genes 0..11 carry the program.
  for (std::size_t g = 0; g < 12; ++g) EXPECT_TRUE(model.dysregulated(g)) << g;
  for (std::size_t g = 12; g < 60; ++g) EXPECT_FALSE(model.dysregulated(g)) << g;
}

TEST(ExpressionModel, DiseaseProgramInflatesSignatureVarianceOnly) {
  ExpressionModelConfig c = small_config();
  c.anomaly_mix = 1.5;
  const ExpressionModel model(c);
  Rng rng(4);
  const Dataset normal = model.sample(3000, Label::kNormal, rng);
  const Dataset anomalous = model.sample(3000, Label::kAnomaly, rng);
  // Signature gene: variance grows by (a * signature)^2 > 0.
  const double vn0 = sample_variance(normal.values().col(0));
  const double va0 = sample_variance(anomalous.values().col(0));
  EXPECT_GT(va0, vn0 * 1.2);
  // Healthy-module and irrelevant genes: unchanged.
  const double vn20 = sample_variance(normal.values().col(20));
  const double va20 = sample_variance(anomalous.values().col(20));
  EXPECT_NEAR(va20, vn20, 0.15 * vn20);
  const double vn50 = sample_variance(normal.values().col(50));
  const double va50 = sample_variance(anomalous.values().col(50));
  EXPECT_NEAR(va50, vn50, 0.15 * vn50);
}

TEST(ExpressionModel, DiseaseProgramIsSharedWithinASample) {
  // The program is a per-sample latent: signature genes gain *correlated*
  // residuals in anomalies beyond their module correlation. Compare two
  // signature genes from different disease modules (uncorrelated normally).
  ExpressionModelConfig c = small_config();
  c.anomaly_mix = 2.0;
  const ExpressionModel model(c);
  Rng rng(5);
  const Dataset normal = model.sample(1500, Label::kNormal, rng);
  const Dataset anomalous = model.sample(1500, Label::kAnomaly, rng);
  // Genes 0 (module 0) and 7 (module 1) share no module latent.
  const double c_normal = std::abs(column_correlation(normal.values(), 0, 7));
  const double c_anom = std::abs(column_correlation(anomalous.values(), 0, 7));
  EXPECT_LT(c_normal, 0.1);
  EXPECT_GT(c_anom, 0.25);
}

TEST(ExpressionModel, ZeroAmplitudeAnomaliesMatchNormalDistribution) {
  ExpressionModelConfig c = small_config();
  c.anomaly_mix = 0.0;
  const ExpressionModel model(c);
  Rng rng(6);
  const Dataset normal = model.sample(2500, Label::kNormal, rng);
  const Dataset anomalous = model.sample(2500, Label::kAnomaly, rng);
  for (const std::size_t g : {0u, 5u, 30u}) {
    const double vn = sample_variance(normal.values().col(g));
    const double va = sample_variance(anomalous.values().col(g));
    EXPECT_NEAR(va, vn, 0.15 * vn) << "gene " << g;
  }
}

TEST(ExpressionModel, SampleCohortShufflesBothLabels) {
  const ExpressionModel model(small_config());
  Rng rng(5);
  const Dataset cohort = model.sample_cohort(30, 10, rng);
  EXPECT_EQ(cohort.sample_count(), 40u);
  EXPECT_EQ(cohort.normal_count(), 30u);
  EXPECT_EQ(cohort.anomaly_count(), 10u);
  // Shuffled: the anomalies should not all sit at the tail.
  bool anomaly_before_last_ten = false;
  for (std::size_t i = 0; i < 30; ++i) {
    if (cohort.label(i) == Label::kAnomaly) anomaly_before_last_ten = true;
  }
  EXPECT_TRUE(anomaly_before_last_ten);
}

TEST(ExpressionModel, DeterministicGivenSeeds) {
  const ExpressionModel model(small_config());
  Rng rng1(9), rng2(9);
  const Dataset a = model.sample(5, Label::kNormal, rng1);
  const Dataset b = model.sample(5, Label::kNormal, rng2);
  EXPECT_EQ(a.values(), b.values());
}

TEST(ExpressionModel, EntropyInformativeGivesRelevantGenesHigherVariance) {
  ExpressionModelConfig c = small_config();
  c.entropy_informative = true;
  const ExpressionModel model(c);
  Rng rng(6);
  const Dataset d = model.sample(2000, Label::kNormal, rng);
  const double relevant_var = sample_variance(d.values().col(0));
  const double irrelevant_var = sample_variance(d.values().col(50));
  EXPECT_GT(relevant_var, irrelevant_var * 1.3);
}

}  // namespace
}  // namespace frac
