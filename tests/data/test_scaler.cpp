#include "data/scaler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"

namespace frac {
namespace {

TEST(Scaler, StandardizesColumns) {
  Matrix m(4, 2);
  const double col0[] = {1, 2, 3, 4};
  const double col1[] = {10, 10, 10, 10};
  for (std::size_t r = 0; r < 4; ++r) {
    m(r, 0) = col0[r];
    m(r, 1) = col1[r];
  }
  StandardScaler scaler;
  scaler.fit(m);
  scaler.transform(m);
  double sum0 = 0, sq0 = 0;
  for (std::size_t r = 0; r < 4; ++r) {
    sum0 += m(r, 0);
    sq0 += m(r, 0) * m(r, 0);
  }
  EXPECT_NEAR(sum0, 0.0, 1e-12);
  EXPECT_NEAR(sq0 / 4.0, 1.0, 1e-12);  // population variance 1
}

TEST(Scaler, ConstantColumnPassesThroughCentered) {
  Matrix m(3, 1, 5.0);
  StandardScaler scaler;
  scaler.fit(m);
  scaler.transform(m);
  // scale falls back to 1, so values become 0 (centered), not inf.
  for (std::size_t r = 0; r < 3; ++r) EXPECT_DOUBLE_EQ(m(r, 0), 0.0);
}

TEST(Scaler, MissingValuesIgnoredInFitAndTransform) {
  Matrix m(3, 1);
  m(0, 0) = 1.0;
  m(1, 0) = kMissing;
  m(2, 0) = 3.0;
  StandardScaler scaler;
  scaler.fit(m);
  EXPECT_DOUBLE_EQ(scaler.means()[0], 2.0);
  scaler.transform(m);
  EXPECT_TRUE(is_missing(m(1, 0)));
  EXPECT_LT(m(0, 0), 0.0);
  EXPECT_GT(m(2, 0), 0.0);
}

TEST(Scaler, TransformAppliesTrainStatsToNewData) {
  Matrix train(2, 1);
  train(0, 0) = 0.0;
  train(1, 0) = 10.0;  // mean 5, population sd 5
  StandardScaler scaler;
  scaler.fit(train);
  Matrix test(1, 1);
  test(0, 0) = 15.0;
  scaler.transform(test);
  EXPECT_NEAR(test(0, 0), 2.0, 1e-12);
}

TEST(Scaler, ResetColumnIsIdentity) {
  Matrix m(2, 2);
  m(0, 0) = 4;
  m(1, 0) = 8;
  m(0, 1) = 1;
  m(1, 1) = 2;  // categorical codes, say
  StandardScaler scaler;
  scaler.fit(m);
  scaler.reset_column(1);
  scaler.transform(m);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
  EXPECT_NE(m(0, 0), 4.0);
}

TEST(Scaler, TransformRow) {
  Matrix train(2, 1);
  train(0, 0) = -1.0;
  train(1, 0) = 1.0;
  StandardScaler scaler;
  scaler.fit(train);
  std::vector<double> row{2.0};
  scaler.transform_row(row);
  EXPECT_NEAR(row[0], 2.0, 1e-12);  // mean 0, sd 1
}

}  // namespace
}  // namespace frac
