#include "data/dataset.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

Dataset small_mixed() {
  Schema schema;
  schema.add({"r0", FeatureKind::kReal, 0});
  schema.add({"c0", FeatureKind::kCategorical, 3});
  Matrix values(4, 2);
  values(0, 0) = 1.5;
  values(0, 1) = 0;
  values(1, 0) = -2.0;
  values(1, 1) = 2;
  values(2, 0) = kMissing;
  values(2, 1) = 1;
  values(3, 0) = 0.0;
  values(3, 1) = 1;
  return Dataset(schema, values,
                 {Label::kNormal, Label::kAnomaly, Label::kNormal, Label::kAnomaly});
}

TEST(Dataset, CountsAndIndices) {
  const Dataset d = small_mixed();
  EXPECT_EQ(d.sample_count(), 4u);
  EXPECT_EQ(d.feature_count(), 2u);
  EXPECT_EQ(d.normal_count(), 2u);
  EXPECT_EQ(d.anomaly_count(), 2u);
  EXPECT_EQ(d.normal_indices(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(d.anomaly_indices(), (std::vector<std::size_t>{1, 3}));
}

TEST(Dataset, ShapeMismatchThrows) {
  const Schema schema = Schema::all_real(2);
  EXPECT_THROW(Dataset(schema, Matrix(3, 2), {Label::kNormal}), std::invalid_argument);
  EXPECT_THROW(Dataset(schema, Matrix(1, 3), {Label::kNormal}), std::invalid_argument);
}

TEST(Dataset, SelectSamplesKeepsOrderAndLabels) {
  const Dataset d = small_mixed();
  const Dataset sub = d.select_samples({3, 0});
  ASSERT_EQ(sub.sample_count(), 2u);
  EXPECT_EQ(sub.value(0, 0), 0.0);
  EXPECT_EQ(sub.label(0), Label::kAnomaly);
  EXPECT_EQ(sub.value(1, 0), 1.5);
  EXPECT_EQ(sub.label(1), Label::kNormal);
}

TEST(Dataset, SelectSamplesOutOfRangeThrows) {
  EXPECT_THROW(small_mixed().select_samples({9}), std::out_of_range);
}

TEST(Dataset, SelectFeaturesSubsetsSchema) {
  const Dataset d = small_mixed();
  const Dataset sub = d.select_features({1});
  ASSERT_EQ(sub.feature_count(), 1u);
  EXPECT_TRUE(sub.schema().is_categorical(0));
  EXPECT_EQ(sub.value(1, 0), 2.0);
  EXPECT_EQ(sub.labels(), d.labels());
}

TEST(Dataset, SelectFeaturesOutOfRangeThrows) {
  EXPECT_THROW(small_mixed().select_features({5}), std::out_of_range);
}

TEST(Dataset, ValidateAcceptsMissingAndCodes) {
  EXPECT_NO_THROW(small_mixed().validate());
}

TEST(Dataset, ValidateRejectsBadCategoricalCode) {
  Dataset d = small_mixed();
  d.mutable_values()(0, 1) = 3.0;  // arity is 3, codes are 0..2
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.mutable_values()(0, 1) = 1.5;  // non-integral
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.mutable_values()(0, 1) = -1.0;
  EXPECT_THROW(d.validate(), std::invalid_argument);
}

TEST(Dataset, MissingSentinelDetection) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_FALSE(is_missing(0.0));
  EXPECT_FALSE(is_missing(-1e308));
}

TEST(ConcatSamples, StacksRowsAndLabels) {
  const Dataset d = small_mixed();
  const Dataset cat = concat_samples(d, d.select_samples({1}));
  EXPECT_EQ(cat.sample_count(), 5u);
  EXPECT_EQ(cat.label(4), Label::kAnomaly);
  EXPECT_EQ(cat.value(4, 1), 2.0);
}

TEST(ConcatSamples, SchemaMismatchThrows) {
  const Dataset d = small_mixed();
  const Dataset other(Schema::all_real(2), Matrix(1, 2), {Label::kNormal});
  EXPECT_THROW(concat_samples(d, other), std::invalid_argument);
}

}  // namespace
}  // namespace frac
