#include "data/onehot.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

Schema fig2_schema() {
  // Paper Fig. 2: four reals, a ternary, and a 4-ary categorical.
  Schema s;
  for (int i = 0; i < 4; ++i) s.add({"r" + std::to_string(i), FeatureKind::kReal, 0});
  s.add({"c3", FeatureKind::kCategorical, 3});
  s.add({"c4", FeatureKind::kCategorical, 4});
  return s;
}

TEST(OneHot, Fig2WidthIsEleven) {
  const OneHotEncoder enc(fig2_schema());
  EXPECT_EQ(enc.output_width(), 11u);
}

TEST(OneHot, Fig2ExampleRow) {
  // Data row from Fig. 2: (3.4, 0, -2, 0.6, 1, 2)
  const OneHotEncoder enc(fig2_schema());
  const std::vector<double> in{3.4, 0, -2, 0.6, 1, 2};
  std::vector<double> out(11);
  enc.encode_row(in, out);
  const std::vector<double> expected{3.4, 0, -2, 0.6, /*c3=1*/ 0, 1, 0, /*c4=2*/ 0, 0, 1, 0};
  EXPECT_EQ(out, expected);
}

TEST(OneHot, MissingCategoricalBecomesAllZeros) {
  const OneHotEncoder enc(fig2_schema());
  std::vector<double> in{1, 1, 1, 1, kMissing, 0};
  std::vector<double> out(11);
  enc.encode_row(in, out);
  EXPECT_EQ(out[4], 0.0);
  EXPECT_EQ(out[5], 0.0);
  EXPECT_EQ(out[6], 0.0);
  EXPECT_EQ(out[7], 1.0);  // c4 = 0
}

TEST(OneHot, MissingRealPassesThroughAsNaN) {
  const OneHotEncoder enc(fig2_schema());
  std::vector<double> in{kMissing, 1, 1, 1, 0, 0};
  std::vector<double> out(11);
  enc.encode_row(in, out);
  EXPECT_TRUE(is_missing(out[0]));
}

TEST(OneHot, ColumnProvenanceMapsBack) {
  const OneHotEncoder enc(fig2_schema());
  const auto& cols = enc.columns();
  ASSERT_EQ(cols.size(), 11u);
  EXPECT_EQ(cols[0].source_feature, 0u);
  EXPECT_FALSE(cols[0].is_indicator);
  EXPECT_EQ(cols[4].source_feature, 4u);
  EXPECT_TRUE(cols[4].is_indicator);
  EXPECT_EQ(cols[4].category, 0u);
  EXPECT_EQ(cols[10].source_feature, 5u);
  EXPECT_EQ(cols[10].category, 3u);
}

TEST(OneHot, EncodeWholeDataset) {
  Schema s;
  s.add({"c", FeatureKind::kCategorical, 2});
  Matrix values(3, 1);
  values(0, 0) = 0;
  values(1, 0) = 1;
  values(2, 0) = 0;
  const Dataset d(s, values, std::vector<Label>(3, Label::kNormal));
  const OneHotEncoder enc(s);
  const Matrix out = enc.encode(d);
  EXPECT_EQ(out.rows(), 3u);
  EXPECT_EQ(out.cols(), 2u);
  EXPECT_EQ(out(0, 0), 1.0);
  EXPECT_EQ(out(1, 1), 1.0);
  EXPECT_EQ(out(2, 0), 1.0);
}

TEST(OneHot, AllRealSchemaIsIdentity) {
  const Schema s = Schema::all_real(3);
  const OneHotEncoder enc(s);
  EXPECT_EQ(enc.output_width(), 3u);
  const std::vector<double> in{1.0, -2.0, 0.5};
  std::vector<double> out(3);
  enc.encode_row(in, out);
  EXPECT_EQ(out, in);
}

}  // namespace
}  // namespace frac
