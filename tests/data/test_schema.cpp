#include "data/schema.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Schema, AllRealFactory) {
  const Schema s = Schema::all_real(3, "g");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].name, "g0");
  EXPECT_TRUE(s.is_real(2));
  EXPECT_FALSE(s.is_categorical(0));
}

TEST(Schema, AllCategoricalFactory) {
  const Schema s = Schema::all_categorical(2, 3, "snp");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.is_categorical(1));
  EXPECT_EQ(s[1].arity, 3u);
  EXPECT_EQ(s[1].name, "snp1");
}

TEST(Schema, CategoricalArityBelowTwoThrows) {
  EXPECT_THROW(Schema::all_categorical(2, 1), std::invalid_argument);
}

TEST(Schema, SelectReordersAndSubsets) {
  Schema s = Schema::all_real(4);
  const Schema sub = s.select({3, 1});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub[0].name, "x3");
  EXPECT_EQ(sub[1].name, "x1");
}

TEST(Schema, OneHotWidthMixed) {
  Schema s;
  s.add({"a", FeatureKind::kReal, 0});
  s.add({"b", FeatureKind::kCategorical, 3});
  s.add({"c", FeatureKind::kCategorical, 4});
  s.add({"d", FeatureKind::kReal, 0});
  // Paper Fig. 2: 4 reals + 3-ary + 4-ary = 11 one-hot columns... here 2+3+4.
  EXPECT_EQ(s.one_hot_width(), 2u + 3u + 4u);
}

TEST(Schema, EqualityIsStructural) {
  EXPECT_EQ(Schema::all_real(2), Schema::all_real(2));
  EXPECT_FALSE(Schema::all_real(2) == Schema::all_real(3));
}

}  // namespace
}  // namespace frac
