#include "data/snp_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels.hpp"

namespace frac {
namespace {

SnpModelConfig small_config() {
  SnpModelConfig c;
  c.features = 80;
  c.block_size = 10;
  c.ld_strength = 0.7;
  c.fst = 0.1;
  c.populations = 2;
  c.seed = 11;
  return c;
}

TEST(SnpModel, ConfigValidation) {
  SnpModelConfig c = small_config();
  c.fst = 0.0;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
  c = small_config();
  c.ld_strength = 1.5;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
  c = small_config();
  c.freq_min = 0.0;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
  c = small_config();
  c.disease_snps = 1000;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
}

TEST(SnpModel, GenotypesAreTernaryCodes) {
  const SnpModel model(small_config());
  Rng rng(1);
  const Dataset d = model.sample(0, 50, Label::kNormal, rng);
  EXPECT_EQ(d.feature_count(), 80u);
  EXPECT_NO_THROW(d.validate());
  for (std::size_t r = 0; r < d.sample_count(); ++r) {
    for (std::size_t c = 0; c < d.feature_count(); ++c) {
      const double v = d.value(r, c);
      EXPECT_TRUE(v == 0.0 || v == 1.0 || v == 2.0);
    }
  }
}

TEST(SnpModel, GenotypeFrequenciesTrackAlleleFrequencies) {
  const SnpModel model(small_config());
  Rng rng(2);
  const Dataset d = model.sample(0, 2000, Label::kNormal, rng);
  for (const std::size_t snp : {0u, 17u, 55u}) {
    const double p = model.allele_frequency(0, snp);
    const double mean_genotype = mean(d.values().col(snp));
    EXPECT_NEAR(mean_genotype, 2.0 * p, 0.12) << "snp " << snp;
  }
}

TEST(SnpModel, LdBlocksAreCorrelated) {
  const SnpModel model(small_config());
  Rng rng(3);
  const Dataset d = model.sample(0, 1000, Label::kNormal, rng);
  // SNPs 0 and 1 share a block; SNPs 0 and 45 do not.
  const auto corr = [&](std::size_t a, std::size_t b) {
    const auto ca = d.values().col(a);
    const auto cb = d.values().col(b);
    const double ma = mean(ca), mb = mean(cb);
    double num = 0, va = 0, vb = 0;
    for (std::size_t i = 0; i < ca.size(); ++i) {
      num += (ca[i] - ma) * (cb[i] - mb);
      va += (ca[i] - ma) * (ca[i] - ma);
      vb += (cb[i] - mb) * (cb[i] - mb);
    }
    return std::abs(num / std::sqrt(va * vb));
  };
  EXPECT_GT(corr(0, 1), 0.2);
  EXPECT_LT(corr(0, 45), 0.12);
}

TEST(SnpModel, PopulationsDivergeInAlleleFrequency) {
  SnpModelConfig c = small_config();
  c.fst = 0.2;
  const SnpModel model(c);
  double total_divergence = 0.0;
  for (std::size_t j = 0; j < c.features; ++j) {
    total_divergence += std::abs(model.allele_frequency(0, j) - model.allele_frequency(1, j));
  }
  EXPECT_GT(total_divergence / static_cast<double>(c.features), 0.05);
}

TEST(SnpModel, DiseaseShiftMovesCausalSnpsOnlyInAnomalies) {
  SnpModelConfig c = small_config();
  c.ld_strength = 0.0;  // isolate the marginal effect
  c.disease_snps = 4;
  c.disease_shift = 0.4;
  const SnpModel model(c);
  Rng rng(4);
  const Dataset normal = model.sample(0, 3000, Label::kNormal, rng);
  const Dataset anomalous = model.sample(0, 3000, Label::kAnomaly, rng);
  const double shift_causal =
      mean(anomalous.values().col(0)) - mean(normal.values().col(0));
  const double shift_neutral =
      mean(anomalous.values().col(50)) - mean(normal.values().col(50));
  EXPECT_GT(shift_causal, 0.4);  // ≈ 2 * 0.4 minus clamping
  EXPECT_NEAR(shift_neutral, 0.0, 0.08);
}

TEST(SnpModel, HetCoupledFstConcentratesDivergenceInHighHetSnps) {
  SnpModelConfig c = small_config();
  c.features = 400;
  c.fst = 0.5;
  c.fst_het_exponent = 100.0;
  c.reference_drift_scale = 0.1;
  const SnpModel model(c);
  // Partition SNPs by reference-population heterozygosity; the divergent
  // ones should be concentrated in the top-het group.
  std::vector<std::pair<double, double>> het_and_divergence;
  for (std::size_t j = 0; j < c.features; ++j) {
    const double p0 = model.allele_frequency(0, j);
    const double het = 4.0 * p0 * (1.0 - p0);
    const double divergence = std::abs(p0 - model.allele_frequency(1, j));
    het_and_divergence.emplace_back(het, divergence);
  }
  std::sort(het_and_divergence.rbegin(), het_and_divergence.rend());
  double top_div = 0.0, rest_div = 0.0;
  const std::size_t top = c.features / 20;  // top 5% by heterozygosity
  for (std::size_t j = 0; j < het_and_divergence.size(); ++j) {
    (j < top ? top_div : rest_div) += het_and_divergence[j].second;
  }
  top_div /= static_cast<double>(top);
  rest_div /= static_cast<double>(c.features - top);
  EXPECT_GT(top_div, 5.0 * rest_div);
}

TEST(SnpModel, ReferenceDriftScaleKeepsPopulationZeroNearAncestral) {
  // With a small reference drift, population 0's frequencies sit much
  // closer to population-pair midpoints than population 1's do.
  SnpModelConfig c = small_config();
  c.features = 300;
  c.fst = 0.4;
  c.reference_drift_scale = 0.05;
  const SnpModel with_ref(c);
  c.reference_drift_scale = 1.0;
  c.seed = small_config().seed;  // same genome draw order
  const SnpModel symmetric(c);
  // Aggregate |p0 − p1| is similar, but the asymmetric model's population-0
  // spread around 0.5 stays close to the ancestral Uniform(0.1, 0.9) spread.
  double var_ref = 0.0, var_sym = 0.0;
  for (std::size_t j = 0; j < c.features; ++j) {
    const double a = with_ref.allele_frequency(0, j) - 0.5;
    const double b = symmetric.allele_frequency(0, j) - 0.5;
    var_ref += a * a;
    var_sym += b * b;
  }
  EXPECT_LT(var_ref, var_sym);
}

TEST(SnpModel, HetExponentValidation) {
  SnpModelConfig c = small_config();
  c.fst_het_exponent = -1.0;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
  c = small_config();
  c.reference_drift_scale = 0.0;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
  c.reference_drift_scale = 1.5;
  EXPECT_THROW(SnpModel{c}, std::invalid_argument);
}

TEST(SnpModel, InvalidPopulationThrows) {
  const SnpModel model(small_config());
  Rng rng(5);
  EXPECT_THROW(model.sample(7, 3, Label::kNormal, rng), std::out_of_range);
  EXPECT_THROW(model.allele_frequency(7, 0), std::out_of_range);
}

TEST(SnpModel, SharedStructureAcrossSampleCalls) {
  // Two cohorts drawn from the same model share allele frequencies, so the
  // population means should agree closely.
  const SnpModel model(small_config());
  Rng rng1(6), rng2(7);
  const Dataset a = model.sample(0, 1500, Label::kNormal, rng1);
  const Dataset b = model.sample(0, 1500, Label::kNormal, rng2);
  for (const std::size_t snp : {3u, 33u, 73u}) {
    EXPECT_NEAR(mean(a.values().col(snp)), mean(b.values().col(snp)), 0.15);
  }
}

TEST(SnpModel, CommonVariantsOnly) {
  const SnpModel model(small_config());
  for (std::size_t pop = 0; pop < 2; ++pop) {
    for (std::size_t j = 0; j < 80; ++j) {
      const double p = model.allele_frequency(pop, j);
      EXPECT_GE(p, 0.02);
      EXPECT_LE(p, 0.98);
    }
  }
}

}  // namespace
}  // namespace frac
