#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <set>

namespace frac {
namespace {

TEST(KFold, PartitionsAllIndices) {
  Rng rng(1);
  const auto folds = kfold_indices(23, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (const std::size_t i : fold) {
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
      EXPECT_LT(i, 23u);
    }
  }
  EXPECT_EQ(seen.size(), 23u);
}

TEST(KFold, BalancedSizes) {
  Rng rng(2);
  const auto folds = kfold_indices(22, 5, rng);
  std::size_t min_size = 1000, max_size = 0;
  for (const auto& fold : folds) {
    min_size = std::min(min_size, fold.size());
    max_size = std::max(max_size, fold.size());
  }
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(KFold, ClampsFoldsToN) {
  Rng rng(3);
  const auto folds = kfold_indices(3, 10, rng);
  EXPECT_EQ(folds.size(), 3u);
  for (const auto& fold : folds) EXPECT_EQ(fold.size(), 1u);
}

TEST(KFold, InvalidArgsThrow) {
  Rng rng(4);
  EXPECT_THROW(kfold_indices(10, 1, rng), std::invalid_argument);
  EXPECT_THROW(kfold_indices(1, 2, rng), std::invalid_argument);
}

TEST(KFold, DeterministicPerSeed) {
  Rng a(5), b(5);
  EXPECT_EQ(kfold_indices(17, 4, a), kfold_indices(17, 4, b));
}

TEST(KFold, DifferentSeedsUsuallyDiffer) {
  Rng a(6), b(7);
  EXPECT_NE(kfold_indices(17, 4, a), kfold_indices(17, 4, b));
}

TEST(StratifiedKFold, PartitionsAllIndices) {
  Rng rng(8);
  std::vector<double> codes(30);
  for (std::size_t i = 0; i < 30; ++i) codes[i] = static_cast<double>(i % 3);
  const auto folds = stratified_kfold_indices(codes, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (const std::size_t i : fold) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), 30u);
}

TEST(StratifiedKFold, EveryFoldGetsEveryAbundantClass) {
  Rng rng(9);
  std::vector<double> codes(40);
  for (std::size_t i = 0; i < 40; ++i) codes[i] = static_cast<double>(i % 2);
  const auto folds = stratified_kfold_indices(codes, 4, rng);
  for (const auto& fold : folds) {
    std::size_t zeros = 0, ones = 0;
    for (const std::size_t i : fold) (codes[i] == 0.0 ? zeros : ones) += 1;
    EXPECT_EQ(zeros, 5u);
    EXPECT_EQ(ones, 5u);
  }
}

TEST(StratifiedKFold, RareClassSpreadsAcrossFolds) {
  // 3 samples of a rare class in 5 folds: they must land in 3 distinct
  // folds (so 3 of 5 training complements still contain the class twice).
  Rng rng(10);
  std::vector<double> codes(33, 0.0);
  codes[5] = codes[15] = codes[25] = 1.0;
  const auto folds = stratified_kfold_indices(codes, 5, rng);
  std::size_t folds_with_rare = 0;
  for (const auto& fold : folds) {
    for (const std::size_t i : fold) {
      if (codes[i] == 1.0) {
        ++folds_with_rare;
        break;
      }
    }
  }
  EXPECT_EQ(folds_with_rare, 3u);
}

TEST(StratifiedKFold, Validation) {
  Rng rng(11);
  const std::vector<double> one{0.0};
  EXPECT_THROW(stratified_kfold_indices(one, 2, rng), std::invalid_argument);
  const std::vector<double> two{0.0, 1.0};
  EXPECT_THROW(stratified_kfold_indices(two, 1, rng), std::invalid_argument);
}

TEST(StratifiedKFold, NoEmptyFolds) {
  Rng rng(12);
  std::vector<double> codes(7, 0.0);
  const auto folds = stratified_kfold_indices(codes, 5, rng);
  for (const auto& fold : folds) EXPECT_FALSE(fold.empty());
}

TEST(FoldComplement, CoversTheRest) {
  const std::vector<std::size_t> fold{1, 3};
  const auto rest = fold_complement(5, fold);
  EXPECT_EQ(rest, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(FoldComplement, OutOfRangeThrows) {
  EXPECT_THROW(fold_complement(3, {5}), std::out_of_range);
}

TEST(FoldComplement, EmptyFoldGivesEverything) {
  const auto rest = fold_complement(3, {});
  EXPECT_EQ(rest, (std::vector<std::size_t>{0, 1, 2}));
}

}  // namespace
}  // namespace frac
