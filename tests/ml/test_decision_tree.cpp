#include "ml/tree/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

const std::vector<std::uint32_t> kTwoReal{0, 0};

TEST(DecisionTree, RegressionLearnsStepFunction) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i) / 100.0;
    y[i] = x(i, 0) < 0.5 ? -1.0 : 1.0;
  }
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0};
  tree.fit(x, y, arities, TreeTask::kRegression, 0, {});
  const std::vector<double> lo{0.2}, hi{0.8};
  EXPECT_NEAR(tree.predict(lo), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(hi), 1.0, 1e-9);
}

TEST(DecisionTree, ClassificationXorNeedsDepthTwo) {
  // XOR of two binary features: requires two levels of splits.
  Matrix x(200, 2);
  std::vector<double> y(200);
  Rng rng(1);
  const std::vector<std::uint32_t> arities{2, 2};
  for (std::size_t i = 0; i < 200; ++i) {
    const int a = static_cast<int>(rng.bernoulli(0.5));
    const int b = static_cast<int>(rng.bernoulli(0.5));
    x(i, 0) = a;
    x(i, 1) = b;
    y[i] = a ^ b;
  }
  DecisionTree tree;
  tree.fit(x, y, arities, TreeTask::kClassification, 2, {});
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      const std::vector<double> row{static_cast<double>(a), static_cast<double>(b)};
      EXPECT_EQ(tree.predict(row), static_cast<double>(a ^ b)) << a << "," << b;
    }
  }
  EXPECT_GE(tree.depth(), 2u);
}

TEST(DecisionTree, CategoricalSplitIsOneVsRest) {
  // Feature with 3 categories; class is 1 iff category == 2.
  Matrix x(90, 1);
  std::vector<double> y(90);
  for (std::size_t i = 0; i < 90; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    y[i] = (i % 3 == 2) ? 1.0 : 0.0;
  }
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{3};
  tree.fit(x, y, arities, TreeTask::kClassification, 2, {});
  EXPECT_EQ(tree.predict(std::vector<double>{2.0}), 1.0);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0}), 0.0);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0}), 0.0);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Matrix x(10, 1);
  std::vector<double> y(10, 1.0);  // all the same class
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0};
  tree.fit(x, y, arities, TreeTask::kClassification, 2, {});
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0u);
}

TEST(DecisionTree, MaxDepthIsRespected) {
  Rng rng(2);
  Matrix x(300, 1);
  std::vector<double> y(300);
  for (std::size_t i = 0; i < 300; ++i) {
    x(i, 0) = rng.uniform();
    y[i] = rng.uniform();  // pure noise: tree would grow without bound
  }
  DecisionTreeConfig config;
  config.max_depth = 3;
  config.min_impurity_decrease = 0.0;
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0};
  tree.fit(x, y, arities, TreeTask::kRegression, 0, config);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  Matrix x(10, 1);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i);
  }
  DecisionTreeConfig config;
  config.min_samples_leaf = 5;
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0};
  tree.fit(x, y, arities, TreeTask::kRegression, 0, config);
  // Only the 5/5 split is admissible: exactly one internal node.
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, MissingValuesRoutedNotCrashed) {
  Matrix x(40, 2);
  std::vector<double> y(40);
  Rng rng(3);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = i < 20 ? 0.0 : 1.0;
    x(i, 1) = rng.normal();
    y[i] = x(i, 0);
    if (i % 7 == 0) x(i, 1) = kMissing;
  }
  DecisionTree tree;
  tree.fit(x, y, kTwoReal, TreeTask::kRegression, 0, {});
  const std::vector<double> with_missing{kMissing, 0.5};
  EXPECT_TRUE(std::isfinite(tree.predict(with_missing)));
}

TEST(DecisionTree, GiniAndEntropyBothLearn) {
  Matrix x(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 30 ? 0.0 : 1.0;
  }
  const std::vector<std::uint32_t> arities{0};
  for (const SplitCriterion crit : {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    DecisionTreeConfig config;
    config.criterion = crit;
    DecisionTree tree;
    tree.fit(x, y, arities, TreeTask::kClassification, 2, config);
    EXPECT_EQ(tree.predict(std::vector<double>{10.0}), 0.0);
    EXPECT_EQ(tree.predict(std::vector<double>{50.0}), 1.0);
  }
}

TEST(DecisionTree, UsedFeaturesReportsSplitsOnly) {
  Matrix x(100, 3);
  std::vector<double> y(100);
  Rng rng(4);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = static_cast<double>(i % 2);
    x(i, 2) = rng.normal();
    y[i] = x(i, 1);  // only feature 1 is informative
  }
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0, 0, 0};
  tree.fit(x, y, arities, TreeTask::kClassification, 2, {});
  const auto used = tree.used_features();
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], 1u);
}

TEST(DecisionTree, MaxFeaturesSubsamplesCandidates) {
  Rng rng(5);
  Matrix x(80, 10);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = x(i, 0) > 0 ? 1.0 : 0.0;
  }
  DecisionTreeConfig config;
  config.max_features = 2;
  DecisionTree tree;
  const std::vector<std::uint32_t> arities(10, 0);
  tree.fit(x, y, arities, TreeTask::kClassification, 2, config);
  EXPECT_GE(tree.node_count(), 1u);  // must not crash; may or may not find feature 0
}

TEST(DecisionTree, ValidationErrors) {
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{0};
  Matrix x(4, 1);
  std::vector<double> y{0, 1, 0, 1};
  EXPECT_THROW(tree.fit(Matrix(0, 1), {}, arities, TreeTask::kRegression, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(x, std::vector<double>{1.0}, arities, TreeTask::kRegression, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(x, y, std::vector<std::uint32_t>{0, 0}, TreeTask::kRegression, 0, {}),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(x, y, arities, TreeTask::kClassification, 1, {}), std::invalid_argument);
  const std::vector<double> bad_codes{0, 1, 2, 5};
  EXPECT_THROW(tree.fit(x, bad_codes, arities, TreeTask::kClassification, 2, {}),
               std::invalid_argument);
}

TEST(DecisionTree, BytesGrowsWithNodes) {
  Matrix x(100, 1);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = static_cast<double>(i % 2);
  }
  DecisionTree small_tree, big_tree;
  const std::vector<std::uint32_t> arities{0};
  DecisionTreeConfig small_config;
  small_config.max_depth = 1;
  small_tree.fit(x, y, arities, TreeTask::kClassification, 2, small_config);
  DecisionTreeConfig big_config;
  big_config.max_depth = 10;
  big_config.min_impurity_decrease = 0.0;
  big_config.min_samples_leaf = 1;
  big_config.min_samples_split = 2;
  big_tree.fit(x, y, arities, TreeTask::kClassification, 2, big_config);
  EXPECT_GT(big_tree.node_count(), small_tree.node_count());
  EXPECT_GT(big_tree.bytes(), small_tree.bytes());
}

TEST(DecisionTree, RegressionOnCategoricalInputs) {
  // Ternary SNP-style input predicting a real target.
  Matrix x(120, 1);
  std::vector<double> y(120);
  for (std::size_t i = 0; i < 120; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    y[i] = 10.0 * x(i, 0);
  }
  DecisionTree tree;
  const std::vector<std::uint32_t> arities{3};
  tree.fit(x, y, arities, TreeTask::kRegression, 0, {});
  EXPECT_NEAR(tree.predict(std::vector<double>{0.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{1.0}), 10.0, 1e-9);
  EXPECT_NEAR(tree.predict(std::vector<double>{2.0}), 20.0, 1e-9);
}

}  // namespace
}  // namespace frac
