// Warm-started dual coordinate descent (LinearSvr / BinaryLinearSvc /
// OneVsRestSvc): an empty warm span must leave the solver bit-identical to
// the pre-warm-start code path, and seeding from a converged fit's duals()
// must land on (essentially) the same solution.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/svm/linear_svc.hpp"
#include "ml/svm/linear_svr.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

void make_regression(std::size_t n, Matrix& x, std::vector<double>& y, std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
    y[i] = 1.5 * x(i, 0) - 0.5 * x(i, 1) + 0.25 + 0.02 * rng.normal();
  }
}

void make_classification(std::size_t n, Matrix& x, std::vector<int>& y, std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(n, 3);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < 3; ++j) x(i, j) = rng.normal();
    y[i] = x(i, 0) + 0.5 * x(i, 2) > 0.0 ? 1 : -1;
  }
}

TEST(WarmStart, EmptyWarmSpanIsBitIdenticalToColdSvr) {
  Matrix x;
  std::vector<double> y;
  make_regression(80, x, y, 21);
  LinearSvrConfig config;

  LinearSvr cold, warm_empty;
  cold.fit(x, y, config);
  warm_empty.fit(x, y, config, std::span<const double>{});
  ASSERT_EQ(cold.weights().size(), warm_empty.weights().size());
  for (std::size_t j = 0; j < cold.weights().size(); ++j) {
    EXPECT_EQ(cold.weights()[j], warm_empty.weights()[j]) << "weight " << j;
  }
  EXPECT_EQ(cold.bias(), warm_empty.bias());
}

TEST(WarmStart, SvrSeededFromConvergedDualsStaysConverged) {
  Matrix x;
  std::vector<double> y;
  make_regression(80, x, y, 22);
  LinearSvrConfig config;
  config.max_passes = 200;
  config.tol = 1e-6;

  LinearSvr cold;
  cold.fit(x, y, config);
  ASSERT_EQ(cold.duals().size(), x.rows());

  // Refit the same problem from the converged duals with a tiny pass budget:
  // the seed already solves the problem, so even 2 passes must land within
  // optimization noise of the converged weights.
  LinearSvrConfig cheap = config;
  cheap.max_passes = 2;
  LinearSvr warm;
  warm.fit(x, y, cheap, cold.duals());
  for (std::size_t j = 0; j < cold.weights().size(); ++j) {
    EXPECT_NEAR(warm.weights()[j], cold.weights()[j], 1e-2) << "weight " << j;
  }
  EXPECT_NEAR(warm.bias(), cold.bias(), 1e-2);

  // A cold fit with the same tiny budget is NOT there yet on this problem —
  // the warm seed is doing real work.
  LinearSvr cold_cheap;
  cold_cheap.fit(x, y, cheap);
  double warm_err = 0.0, cold_err = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    warm_err += std::abs(warm.predict(x.row(i)) - y[i]);
    cold_err += std::abs(cold_cheap.predict(x.row(i)) - y[i]);
  }
  EXPECT_LE(warm_err, cold_err);
}

TEST(WarmStart, SvrClipsOutOfRangeAndTruncatesOversizedSeeds) {
  Matrix x;
  std::vector<double> y;
  make_regression(40, x, y, 23);
  LinearSvrConfig config;

  // Garbage seeds (out of [-C, C], too many entries) must be absorbed, not
  // crash or poison the fit: the descent loop still converges.
  std::vector<double> garbage(x.rows() + 16, 1e9);
  LinearSvr svr;
  svr.fit(x, y, config, garbage);
  double max_err = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    max_err = std::max(max_err, std::abs(svr.predict(x.row(i)) - y[i]));
  }
  EXPECT_LT(max_err, 1.0);
}

TEST(WarmStart, EmptyWarmSpanIsBitIdenticalToColdSvc) {
  Matrix x;
  std::vector<int> y;
  make_classification(80, x, y, 24);
  LinearSvcConfig config;

  BinaryLinearSvc cold, warm_empty;
  cold.fit(x, y, config);
  warm_empty.fit(x, y, config, std::span<const double>{});
  ASSERT_EQ(cold.weights().size(), warm_empty.weights().size());
  for (std::size_t j = 0; j < cold.weights().size(); ++j) {
    EXPECT_EQ(cold.weights()[j], warm_empty.weights()[j]) << "weight " << j;
  }
  EXPECT_EQ(cold.bias(), warm_empty.bias());
}

TEST(WarmStart, SvcSeededFromConvergedDualsKeepsItsPredictions) {
  Matrix x;
  std::vector<int> y;
  make_classification(100, x, y, 25);
  LinearSvcConfig config;
  config.max_passes = 200;

  BinaryLinearSvc cold;
  cold.fit(x, y, config);
  ASSERT_EQ(cold.duals().size(), x.rows());

  LinearSvcConfig cheap = config;
  cheap.max_passes = 2;
  BinaryLinearSvc warm;
  warm.fit(x, y, cheap, cold.duals());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(warm.predict(x.row(i)), cold.predict(x.row(i))) << "row " << i;
  }
}

TEST(WarmStart, OneVsRestRoundTripsClassMajorDuals) {
  Rng rng(26);
  Matrix x(90, 2);
  std::vector<double> codes(90);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const std::size_t cls = i % 3;
    x(i, 0) = rng.normal() * 0.3 + static_cast<double>(cls);
    x(i, 1) = rng.normal() * 0.3 - static_cast<double>(cls);
    codes[i] = static_cast<double>(cls);
  }
  LinearSvcConfig config;

  OneVsRestSvc cold;
  cold.fit(x, codes, 3, config);
  ASSERT_EQ(cold.duals().size(), 3 * x.rows()) << "class-major concatenation";

  // duals() feeds straight back through fit(warm): near-total prediction
  // agreement (a borderline row may flip — the cheap refit reshuffles ties).
  OneVsRestSvc warm;
  LinearSvcConfig cheap = config;
  cheap.max_passes = 2;
  warm.fit(x, codes, 3, cheap, cold.duals());
  std::size_t agree = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    agree += warm.predict(x.row(i)) == cold.predict(x.row(i));
  }
  EXPECT_GE(agree, x.rows() - x.rows() / 20) << "warm seed changed the learned classifier";

  // Empty warm stays bit-identical to cold for the multi-class wrapper too.
  OneVsRestSvc cold_again;
  cold_again.fit(x, codes, 3, config, std::span<const double>{});
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (std::size_t i = 0; i < x.rows(); ++i) {
      ASSERT_EQ(cold_again.binary(k).decision(x.row(i)), cold.binary(k).decision(x.row(i)))
          << "class " << k << " row " << i;
    }
  }
}

}  // namespace
}  // namespace frac
