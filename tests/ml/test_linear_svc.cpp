#include "ml/svm/linear_svc.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace frac {
namespace {

/// Linearly separable blobs at ±(2, 2).
void make_blobs(std::size_t n, Matrix& x, std::vector<int>& y, std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = i % 2 == 0 ? 1 : -1;
    x(i, 0) = 2.0 * label + 0.3 * rng.normal();
    x(i, 1) = 2.0 * label + 0.3 * rng.normal();
    y[i] = label;
  }
}

TEST(BinaryLinearSvc, SeparatesBlobs) {
  Matrix x;
  std::vector<int> y;
  make_blobs(100, x, y, 1);
  BinaryLinearSvc svc;
  svc.fit(x, y, {});
  int correct = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) correct += (svc.predict(x.row(i)) == y[i]);
  EXPECT_EQ(correct, 100);
}

TEST(BinaryLinearSvc, DecisionSignMatchesPredict) {
  Matrix x;
  std::vector<int> y;
  make_blobs(40, x, y, 2);
  BinaryLinearSvc svc;
  svc.fit(x, y, {});
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double d = svc.decision(x.row(i));
    EXPECT_EQ(svc.predict(x.row(i)), d < 0 ? -1 : 1);
  }
}

TEST(BinaryLinearSvc, RejectsBadLabels) {
  Matrix x(2, 1);
  const std::vector<int> y{1, 0};
  BinaryLinearSvc svc;
  EXPECT_THROW(svc.fit(x, y, {}), std::invalid_argument);
}

TEST(BinaryLinearSvc, RejectsEmptyOrMismatched) {
  BinaryLinearSvc svc;
  EXPECT_THROW(svc.fit(Matrix(0, 1), {}, {}), std::invalid_argument);
  Matrix x(2, 1);
  const std::vector<int> y{1};
  EXPECT_THROW(svc.fit(x, y, {}), std::invalid_argument);
}

TEST(BinaryLinearSvc, SupportVectorsOnMarginOnly) {
  // Well-separated blobs: most points satisfy the margin, few SVs.
  Matrix x;
  std::vector<int> y;
  make_blobs(200, x, y, 3);
  BinaryLinearSvc svc;
  svc.fit(x, y, {});
  EXPECT_LT(svc.support_vector_count(), 100u);
  EXPECT_GT(svc.support_vector_count(), 0u);
}

TEST(OneVsRestSvc, SeparatesThreeClassesOnIndicators) {
  // Target = which of three 1-hot groups is active; trivially separable.
  Rng rng(4);
  Matrix x(90, 3);
  std::vector<double> codes(90);
  for (std::size_t i = 0; i < 90; ++i) {
    const std::size_t k = i % 3;
    x(i, k) = 1.0 + 0.05 * rng.normal();
    codes[i] = static_cast<double>(k);
  }
  OneVsRestSvc ovr;
  ovr.fit(x, codes, 3, {});
  int correct = 0;
  for (std::size_t i = 0; i < 90; ++i) {
    correct += (ovr.predict(x.row(i)) == static_cast<std::uint32_t>(codes[i]));
  }
  EXPECT_GT(correct, 85);
}

TEST(OneVsRestSvc, ArityValidation) {
  Matrix x(2, 1);
  const std::vector<double> codes{0, 1};
  OneVsRestSvc ovr;
  EXPECT_THROW(ovr.fit(x, codes, 1, {}), std::invalid_argument);
}

TEST(OneVsRestSvc, SupportVectorCountAggregates) {
  Rng rng(5);
  Matrix x(30, 2);
  std::vector<double> codes(30);
  for (std::size_t i = 0; i < 30; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    codes[i] = static_cast<double>(i % 3);
  }
  OneVsRestSvc ovr;
  ovr.fit(x, codes, 3, {});
  EXPECT_EQ(ovr.arity(), 3u);
  EXPECT_GT(ovr.support_vector_count(), 0u);
}

}  // namespace
}  // namespace frac
