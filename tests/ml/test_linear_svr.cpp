#include "ml/svm/linear_svr.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include <cmath>

#include "util/rng.hpp"

namespace frac {
namespace {

/// y = 2x0 - 3x1 + 1 with tiny noise.
void make_linear_problem(std::size_t n, Matrix& x, std::vector<double>& y, double noise_sd,
                         std::uint64_t seed) {
  Rng rng(seed);
  x = Matrix(n, 2);
  y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = 2.0 * x(i, 0) - 3.0 * x(i, 1) + 1.0 + noise_sd * rng.normal();
  }
}

TEST(LinearSvr, RecoversLinearFunction) {
  Matrix x;
  std::vector<double> y;
  make_linear_problem(200, x, y, 0.01, 1);
  LinearSvrConfig config;
  config.c = 10.0;
  config.epsilon = 0.01;
  config.max_passes = 500;
  config.tol = 1e-5;
  LinearSvr svr;
  svr.fit(x, y, config);
  EXPECT_NEAR(svr.weights()[0], 2.0, 0.1);
  EXPECT_NEAR(svr.weights()[1], -3.0, 0.1);
  EXPECT_NEAR(svr.bias(), 1.0, 0.1);
}

TEST(LinearSvr, PredictionErrorIsSmallOnTrainDistribution) {
  Matrix x;
  std::vector<double> y;
  make_linear_problem(300, x, y, 0.05, 2);
  LinearSvrConfig config;
  config.c = 10.0;
  config.epsilon = 0.05;
  LinearSvr svr;
  svr.fit(x, y, config);
  double max_err = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    max_err = std::max(max_err, std::abs(svr.predict(x.row(i)) - y[i]));
  }
  EXPECT_LT(max_err, 0.5);
}

TEST(LinearSvr, EpsilonTubeAbsorbsConstantTarget) {
  // Targets inside the ε-tube around 0 need no support vectors at all.
  Matrix x(20, 3);
  Rng rng(3);
  for (std::size_t i = 0; i < 20; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
  }
  std::vector<double> y(20, 0.05);
  LinearSvrConfig config;
  config.epsilon = 0.2;
  LinearSvr svr;
  svr.fit(x, y, config);
  EXPECT_EQ(svr.support_vector_count(), 0u);
  EXPECT_DOUBLE_EQ(svr.predict(x.row(0)), 0.0);
}

TEST(LinearSvr, RegularizationBoundsWeights) {
  // One sample, huge target: |β| ≤ C caps ‖w‖.
  Matrix x(1, 1);
  x(0, 0) = 1.0;
  const std::vector<double> y{1000.0};
  LinearSvrConfig config;
  config.c = 0.5;
  config.epsilon = 0.0;
  LinearSvr svr;
  svr.fit(x, y, config);
  // w = β·x with β clipped to C, plus the bias share.
  EXPECT_LE(std::abs(svr.weights()[0]), 0.5 + 1e-9);
}

TEST(LinearSvr, DeterministicGivenSeed) {
  Matrix x;
  std::vector<double> y;
  make_linear_problem(50, x, y, 0.1, 4);
  LinearSvrConfig config;
  LinearSvr a, b;
  a.fit(x, y, config);
  b.fit(x, y, config);
  EXPECT_TRUE(std::ranges::equal(a.weights(), b.weights()));
  EXPECT_EQ(a.bias(), b.bias());
}

TEST(LinearSvr, HighDimensionalFewSamples) {
  // The FRaC regime: d >> n must not crash or blow up.
  Rng rng(5);
  Matrix x(10, 200);
  std::vector<double> y(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = x(i, 0) + 0.1 * rng.normal();
  }
  LinearSvr svr;
  svr.fit(x, y, {});
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::isfinite(svr.predict(x.row(i))));
  }
}

TEST(LinearSvr, InvalidArgumentsThrow) {
  Matrix x(2, 1);
  const std::vector<double> y{1.0, 2.0};
  LinearSvr svr;
  LinearSvrConfig bad;
  bad.c = 0.0;
  EXPECT_THROW(svr.fit(x, y, bad), std::invalid_argument);
  bad = {};
  bad.epsilon = -1.0;
  EXPECT_THROW(svr.fit(x, y, bad), std::invalid_argument);
  const std::vector<double> wrong_size{1.0};
  EXPECT_THROW(svr.fit(x, wrong_size, {}), std::invalid_argument);
  EXPECT_THROW(svr.fit(Matrix(0, 1), {}, {}), std::invalid_argument);
}

TEST(LinearSvr, DefaultConstructedPredictsZero) {
  const LinearSvr svr;
  EXPECT_DOUBLE_EQ(svr.predict(std::span<const double>{}), 0.0);
}

TEST(LinearSvr, SupportVectorCountAtMostN) {
  Matrix x;
  std::vector<double> y;
  make_linear_problem(60, x, y, 0.5, 6);
  LinearSvr svr;
  svr.fit(x, y, {});
  EXPECT_LE(svr.support_vector_count(), 60u);
  EXPECT_GT(svr.support_vector_count(), 0u);
}

TEST(LinearSvr, GenerousBudgetMatchesExhaustiveSolve) {
  // With the pass budget lifted, the shrinking heuristic must land on the
  // same solution as an exhaustive run with tiny tolerances.
  Matrix x;
  std::vector<double> y;
  make_linear_problem(60, x, y, 0.3, 11);
  LinearSvrConfig generous;
  generous.max_passes = 500;
  LinearSvr fast, exhaustive;
  fast.fit(x, y, generous);
  LinearSvrConfig slow;
  slow.max_passes = 5000;
  slow.tol = 1e-8;
  slow.objective_tol = 1e-12;
  exhaustive.fit(x, y, slow);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(fast.predict(x.row(i)), exhaustive.predict(x.row(i)), 0.08);
  }
}

TEST(LinearSvr, DefaultBudgetStaysNearConvergedSolution) {
  // The shipped default is a deliberate small budget (see the config doc);
  // its predictions must stay in the neighbourhood of the converged ones.
  Matrix x;
  std::vector<double> y;
  make_linear_problem(60, x, y, 0.3, 11);
  LinearSvr budgeted, exhaustive;
  budgeted.fit(x, y, {});
  LinearSvrConfig slow;
  slow.max_passes = 5000;
  slow.tol = 1e-8;
  slow.objective_tol = 1e-12;
  exhaustive.fit(x, y, slow);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_NEAR(budgeted.predict(x.row(i)), exhaustive.predict(x.row(i)), 0.5);
  }
}

TEST(LinearSvr, LowDimensionalProblemsTerminateQuickly) {
  // The regime that motivated shrinking + the objective stop: d << n,
  // non-interpolating. Must not burn the full pass budget doing nothing.
  Rng rng(12);
  Matrix x(100, 8);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = rng.normal();  // unlearnable: solver saturates the box
  }
  LinearSvrConfig config;
  config.max_passes = 60;
  LinearSvr svr;
  svr.fit(x, y, config);
  EXPECT_TRUE(std::isfinite(svr.predict(x.row(0))));
}

TEST(LinearSvr, FullyParkedPassTerminatesViaVerificationSweep) {
  // Regression: when every coordinate parked in one pass (kept == 0), the
  // shrink used to be skipped, leaving the stale active set in place — with
  // zero tolerances the solver then re-scanned parked coordinates for the
  // whole pass budget instead of falling into the verification sweep.
  Matrix x(20, 3);
  Rng rng(8);
  for (std::size_t i = 0; i < 20; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
  }
  const std::vector<double> y(20, 0.05);  // inside the ε-tube: all park at 0
  LinearSvrConfig config;
  config.epsilon = 0.2;
  config.tol = 0.0;            // max_step can never satisfy `< 0`
  config.objective_tol = 0.0;  // flat objective can never satisfy `< 0`
  config.max_passes = 50;
  LinearSvr svr;
  svr.fit(x, y, config);
  EXPECT_LT(svr.passes_used(), 10u);  // was == max_passes before the fix
  EXPECT_DOUBLE_EQ(svr.predict(x.row(0)), 0.0);
}

TEST(LinearSvr, RowSubsetViewMatchesMaterializedCopy) {
  // Zero-copy contract: fitting on a MatrixView over a row subset must give
  // exactly the model obtained from a materialized copy of those rows.
  Matrix x;
  std::vector<double> y;
  make_linear_problem(60, x, y, 0.1, 9);
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < 60; i += 2) rows.push_back(i);
  Matrix x_copy(rows.size(), x.cols());
  std::vector<double> y_sub(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = x.row(rows[i]);
    std::copy(src.begin(), src.end(), x_copy.row(i).begin());
    y_sub[i] = y[rows[i]];
  }
  LinearSvr from_view, from_copy;
  from_view.fit(MatrixView(x, rows), y_sub, {});
  from_copy.fit(x_copy, y_sub, {});
  EXPECT_TRUE(std::ranges::equal(from_view.weights(), from_copy.weights()));
  EXPECT_EQ(from_view.bias(), from_copy.bias());
}

TEST(LinearSvr, ConvergesBeforeMaxPassesOnEasyProblem) {
  Matrix x;
  std::vector<double> y;
  make_linear_problem(100, x, y, 0.01, 7);
  LinearSvrConfig config;
  config.max_passes = 1000;
  config.tol = 1e-3;
  LinearSvr svr;
  svr.fit(x, y, config);
  EXPECT_LT(svr.passes_used(), 1000u);
}

}  // namespace
}  // namespace frac
