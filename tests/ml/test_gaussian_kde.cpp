#include "ml/kde/gaussian_kde.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "util/rng.hpp"

namespace frac {
namespace {

TEST(GaussianKde, PdfIntegratesToOne) {
  Rng rng(1);
  std::vector<double> values(200);
  for (double& v : values) v = rng.normal(3.0, 2.0);
  GaussianKde kde;
  kde.fit(values);
  // Trapezoid over a wide interval.
  const double lo = -10.0, hi = 16.0;
  const int n = 2000;
  double acc = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double x = lo + (hi - lo) * i / n;
    const double w = (i == 0 || i == n) ? 0.5 : 1.0;
    acc += w * kde.pdf(x);
  }
  acc *= (hi - lo) / n;
  EXPECT_NEAR(acc, 1.0, 0.01);
}

TEST(GaussianKde, EntropyOfStandardNormalSample) {
  Rng rng(2);
  std::vector<double> values(2000);
  for (double& v : values) v = rng.normal();
  GaussianKde kde;
  kde.fit(values);
  const double exact = 0.5 * std::log(2.0 * std::numbers::pi * std::numbers::e);
  EXPECT_NEAR(kde.differential_entropy(), exact, 0.08);
}

TEST(GaussianKde, EntropyScalesWithLogSigma) {
  // H(aX) = H(X) + log a — the invariance FRaC's standardization relies on.
  Rng rng(3);
  std::vector<double> base(1500), scaled(1500);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = rng.normal();
    scaled[i] = 5.0 * base[i];
  }
  GaussianKde kde_base, kde_scaled;
  kde_base.fit(base);
  kde_scaled.fit(scaled);
  EXPECT_NEAR(kde_scaled.differential_entropy() - kde_base.differential_entropy(),
              std::log(5.0), 0.05);
}

TEST(GaussianKde, UniformSampleEntropyNearLogRange) {
  Rng rng(4);
  std::vector<double> values(3000);
  for (double& v : values) v = rng.uniform(0.0, 4.0);
  GaussianKde kde;
  kde.fit(values);
  // Differential entropy of U(0,4) is log 4 ≈ 1.386; KDE smooths a bit.
  EXPECT_NEAR(kde.differential_entropy(), std::log(4.0), 0.12);
}

TEST(GaussianKde, SkipsNaNs) {
  std::vector<double> values{1.0, 2.0, std::nan(""), 3.0};
  GaussianKde kde;
  kde.fit(values);
  EXPECT_EQ(kde.sample_count(), 3u);
}

TEST(GaussianKde, AllNaNThrows) {
  std::vector<double> values{std::nan(""), std::nan("")};
  GaussianKde kde;
  EXPECT_THROW(kde.fit(values), std::invalid_argument);
}

TEST(GaussianKde, ConstantSampleHasFiniteEntropy) {
  std::vector<double> values(50, 7.0);
  GaussianKde kde;
  kde.fit(values);
  EXPECT_GT(kde.bandwidth(), 0.0);
  EXPECT_TRUE(std::isfinite(kde.differential_entropy()));
}

TEST(GaussianKde, UseBeforeFitThrows) {
  const GaussianKde kde;
  EXPECT_THROW(kde.pdf(0.0), std::logic_error);
  EXPECT_THROW(kde.differential_entropy(), std::logic_error);
}

TEST(CategoricalEntropy, UniformIsLogK) {
  const std::vector<std::size_t> counts{10, 10, 10};
  EXPECT_NEAR(categorical_entropy(counts), std::log(3.0), 1e-12);
}

TEST(CategoricalEntropy, DegenerateIsZero) {
  EXPECT_DOUBLE_EQ(categorical_entropy(std::vector<std::size_t>{42, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(categorical_entropy(std::vector<std::size_t>{}), 0.0);
  EXPECT_DOUBLE_EQ(categorical_entropy(std::vector<std::size_t>{0, 0}), 0.0);
}

TEST(CategoricalEntropy, KnownBinaryValue) {
  // H(0.25) = -(0.25 ln 0.25 + 0.75 ln 0.75).
  const std::vector<std::size_t> counts{25, 75};
  const double expected = -(0.25 * std::log(0.25) + 0.75 * std::log(0.75));
  EXPECT_NEAR(categorical_entropy(counts), expected, 1e-12);
}

}  // namespace
}  // namespace frac
