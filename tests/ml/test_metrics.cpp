#include "ml/metrics.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(Auc, PerfectSeparation) {
  const std::vector<double> scores{1, 2, 10, 11};
  const std::vector<Label> labels{Label::kNormal, Label::kNormal, Label::kAnomaly,
                                  Label::kAnomaly};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 1.0);
}

TEST(Auc, PerfectlyWrong) {
  const std::vector<double> scores{10, 11, 1, 2};
  const std::vector<Label> labels{Label::kNormal, Label::kNormal, Label::kAnomaly,
                                  Label::kAnomaly};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.0);
}

TEST(Auc, AllTiedIsHalf) {
  const std::vector<double> scores{5, 5, 5, 5};
  const std::vector<Label> labels{Label::kNormal, Label::kAnomaly, Label::kNormal,
                                  Label::kAnomaly};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.5);
}

TEST(Auc, PartialOverlapKnownValue) {
  // anomalies {3, 1}, normals {2, 0}: pairs won = (3>2)+(3>0)+(1>0) = 3 of 4.
  const std::vector<double> scores{3, 1, 2, 0};
  const std::vector<Label> labels{Label::kAnomaly, Label::kAnomaly, Label::kNormal,
                                  Label::kNormal};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.75);
}

TEST(Auc, TieBetweenClassesGetsHalfCredit) {
  // anomaly {2}, normals {2, 0}: 0.5 + 1 of 2 pairs => 0.75.
  const std::vector<double> scores{2, 2, 0};
  const std::vector<Label> labels{Label::kAnomaly, Label::kNormal, Label::kNormal};
  EXPECT_DOUBLE_EQ(auc(scores, labels), 0.75);
}

TEST(Auc, SingleClassReturnsHalf) {
  const std::vector<double> scores{1, 2};
  const std::vector<Label> all_normal{Label::kNormal, Label::kNormal};
  EXPECT_DOUBLE_EQ(auc(scores, all_normal), 0.5);
}

TEST(Auc, TwoVectorOverloadAgrees) {
  const std::vector<double> anomalies{3, 1};
  const std::vector<double> normals{2, 0};
  EXPECT_DOUBLE_EQ(auc(anomalies, normals), 0.75);
}

TEST(Auc, InvariantToMonotoneTransform) {
  const std::vector<double> scores{0.1, 0.5, 0.3, 0.9};
  const std::vector<Label> labels{Label::kNormal, Label::kAnomaly, Label::kNormal,
                                  Label::kAnomaly};
  std::vector<double> scaled;
  for (const double s : scores) scaled.push_back(100.0 * s + 7.0);
  EXPECT_DOUBLE_EQ(auc(scores, labels), auc(scaled, labels));
}

TEST(RocCurve, StartsAtOriginEndsAtOne) {
  const std::vector<double> scores{3, 1, 2, 0};
  const std::vector<Label> labels{Label::kAnomaly, Label::kAnomaly, Label::kNormal,
                                  Label::kNormal};
  const auto curve = roc_curve(scores, labels);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(RocCurve, MonotoneNondecreasing) {
  const std::vector<double> scores{5, 4, 4, 3, 2, 1};
  const std::vector<Label> labels{Label::kAnomaly, Label::kNormal, Label::kAnomaly,
                                  Label::kNormal, Label::kAnomaly, Label::kNormal};
  const auto curve = roc_curve(scores, labels);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
  }
}

TEST(MeanSd, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const MeanSd stats = mean_sd(v);
  EXPECT_DOUBLE_EQ(stats.mean, 3.0);
  EXPECT_NEAR(stats.sd, std::sqrt(2.5), 1e-12);
}

}  // namespace
}  // namespace frac
