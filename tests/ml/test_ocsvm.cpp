#include "ml/baseline/ocsvm.hpp"

#include <gtest/gtest.h>

#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

Matrix shifted_cloud(std::size_t n, std::size_t d, double center, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : m.row(i)) v = center + rng.normal();
  }
  return m;
}

TEST(OneClassSvm, SeparatesShiftedOutliers) {
  const Matrix train = shifted_cloud(150, 3, 3.0, 1);
  OneClassSvm ocsvm;
  ocsvm.fit(train, {});
  // Outliers near the origin (opposite the training halfspace direction).
  const Matrix inliers = shifted_cloud(40, 3, 3.0, 2);
  const Matrix outliers = shifted_cloud(40, 3, -3.0, 3);
  std::vector<double> in_scores, out_scores;
  for (std::size_t i = 0; i < 40; ++i) {
    in_scores.push_back(ocsvm.score(inliers.row(i)));
    out_scores.push_back(ocsvm.score(outliers.row(i)));
  }
  EXPECT_GT(auc(out_scores, in_scores), 0.95);
}

TEST(OneClassSvm, NuControlsTrainingRejectionRoughly) {
  const Matrix train = shifted_cloud(200, 2, 2.0, 4);
  OneClassSvm loose, strict;
  loose.fit(train, {.nu = 0.5});
  strict.fit(train, {.nu = 0.05});
  int rejected_loose = 0, rejected_strict = 0;
  for (std::size_t i = 0; i < train.rows(); ++i) {
    rejected_loose += (loose.score(train.row(i)) > 0.0);
    rejected_strict += (strict.score(train.row(i)) > 0.0);
  }
  EXPECT_GE(rejected_loose, rejected_strict);
}

TEST(OneClassSvm, InvalidNuThrows) {
  const Matrix train = shifted_cloud(10, 2, 0.0, 5);
  OneClassSvm ocsvm;
  EXPECT_THROW(ocsvm.fit(train, {.nu = 0.0}), std::invalid_argument);
  EXPECT_THROW(ocsvm.fit(train, {.nu = 1.5}), std::invalid_argument);
}

TEST(OneClassSvm, EmptyTrainThrows) {
  OneClassSvm ocsvm;
  EXPECT_THROW(ocsvm.fit(Matrix(0, 2), {}), std::invalid_argument);
}

TEST(OneClassSvm, ScoreBeforeFitThrows) {
  const OneClassSvm ocsvm;
  EXPECT_THROW(ocsvm.score(std::vector<double>{1.0}), std::logic_error);
}

TEST(OneClassSvm, DeterministicGivenSeed) {
  const Matrix train = shifted_cloud(50, 2, 1.0, 6);
  OneClassSvm a, b;
  a.fit(train, {});
  b.fit(train, {});
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_EQ(a.rho(), b.rho());
}

}  // namespace
}  // namespace frac
