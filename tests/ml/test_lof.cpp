#include "ml/baseline/lof.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace frac {
namespace {

Matrix gaussian_cloud(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : m.row(i)) v = rng.normal();
  }
  return m;
}

TEST(Lof, InlierScoresNearOne) {
  const Matrix train = gaussian_cloud(200, 2, 1);
  Lof lof;
  lof.fit(train, {.k = 10});
  const std::vector<double> center{0.0, 0.0};
  EXPECT_NEAR(lof.score(center), 1.0, 0.3);
}

TEST(Lof, OutlierScoresWellAboveOne) {
  const Matrix train = gaussian_cloud(200, 2, 2);
  Lof lof;
  lof.fit(train, {.k = 10});
  const std::vector<double> far{15.0, 15.0};
  EXPECT_GT(lof.score(far), 3.0);
}

TEST(Lof, OutlierScoresHigherThanInlier) {
  const Matrix train = gaussian_cloud(100, 3, 3);
  Lof lof;
  lof.fit(train, {.k = 5});
  const std::vector<double> inlier{0.1, -0.2, 0.0};
  const std::vector<double> outlier{6.0, 6.0, 6.0};
  EXPECT_GT(lof.score(outlier), lof.score(inlier));
}

TEST(Lof, KIsClampedToTrainingSize) {
  const Matrix train = gaussian_cloud(5, 2, 4);
  Lof lof;
  lof.fit(train, {.k = 100});
  EXPECT_EQ(lof.neighborhood_size(), 4u);
  EXPECT_TRUE(std::isfinite(lof.score(std::vector<double>{0.0, 0.0})));
}

TEST(Lof, TooFewPointsThrows) {
  Lof lof;
  EXPECT_THROW(lof.fit(Matrix(1, 2), {}), std::invalid_argument);
}

TEST(Lof, ScoreBeforeFitThrows) {
  const Lof lof;
  EXPECT_THROW(lof.score(std::vector<double>{0.0}), std::logic_error);
}

TEST(Lof, DuplicateTrainingPointsDoNotCrash) {
  Matrix train(10, 2);  // all identical points
  Lof lof;
  lof.fit(train, {.k = 3});
  EXPECT_TRUE(std::isfinite(lof.score(std::vector<double>{1.0, 1.0})) ||
              lof.score(std::vector<double>{1.0, 1.0}) > 0.0);
  // A coincident query resolves to the dense-cluster convention (score 1).
  EXPECT_DOUBLE_EQ(lof.score(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(Lof, LocalDensityMatters) {
  // Two clusters of different density; a point at moderate distance from
  // the dense cluster should look more anomalous than the same offset from
  // the sparse cluster.
  Rng rng(5);
  Matrix train(100, 1);
  for (std::size_t i = 0; i < 50; ++i) train(i, 0) = 0.0 + 0.05 * rng.normal();   // dense
  for (std::size_t i = 50; i < 100; ++i) train(i, 0) = 50.0 + 2.0 * rng.normal(); // sparse
  Lof lof;
  lof.fit(train, {.k = 8});
  const double near_dense = lof.score(std::vector<double>{1.0});
  const double near_sparse = lof.score(std::vector<double>{51.0});
  EXPECT_GT(near_dense, near_sparse);
}

}  // namespace
}  // namespace frac
