// Shared gtest main: applies the FRAC_* environment configuration (threads,
// simd level, log threshold) before running tests. Library code no longer
// reads the environment itself, so the entry point has to push it — this is
// what lets CI run the same test binary under FRAC_SIMD=scalar and =avx2.
#include <gtest/gtest.h>

#include "config/runtime_config.hpp"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  frac::RuntimeConfig::resolve_env_only().apply();
  return RUN_ALL_TESTS();
}
