// The declarative CLI layer and RuntimeConfig resolution: spec-driven flag
// parsing (unknown-flag rejection, required flags, eager numeric
// validation), help generation, and flags-beat-environment precedence.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "config/cli_spec.hpp"
#include "config/runtime_config.hpp"

namespace frac {
namespace {

const CommandSpec& demo_spec() {
  static const CommandSpec kSpec{
      "demo",
      "a test command",
      "--data FILE",
      {
          {"data", FlagKind::kString, true, "FILE", "input file"},
          {"rate", FlagKind::kDouble, false, "R", "a rate"},
          {"count", FlagKind::kSize, false, "N", "a count"},
          {"verbose", FlagKind::kBool, false, "", "a switch"},
      }};
  return kSpec;
}

ParsedFlags parse(std::vector<std::string> args) {
  std::vector<char*> argv{const_cast<char*>("frac"), const_cast<char*>("demo")};
  for (std::string& a : args) argv.push_back(a.data());
  return parse_flags(demo_spec(), static_cast<int>(argv.size()), argv.data(), 2);
}

TEST(CliSpec, ParsesTypedFlags) {
  const ParsedFlags flags =
      parse({"--data", "in.csv", "--rate", "0.25", "--count", "7", "--verbose"});
  EXPECT_EQ(flags.require("data"), "in.csv");
  EXPECT_EQ(flags.get_double("rate", 0.0), 0.25);
  EXPECT_EQ(flags.get_size("count", 0), 7u);
  EXPECT_TRUE(flags.get_flag("verbose"));
  EXPECT_FALSE(flags.get_flag("quiet"));
  EXPECT_EQ(flags.get("absent"), std::nullopt);
  EXPECT_EQ(flags.get_size("absent", 42), 42u);
}

TEST(CliSpec, RejectsUnknownFlagsNamingTheCommand) {
  try {
    parse({"--data", "x", "--bogus", "1"});
    FAIL() << "unknown flag accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("frac demo"), std::string::npos) << what;
    EXPECT_NE(what.find("--bogus"), std::string::npos) << what;
  }
}

TEST(CliSpec, RejectsPositionalTokens) {
  EXPECT_THROW(parse({"stray"}), std::invalid_argument);
}

TEST(CliSpec, EnforcesRequiredFlags) {
  EXPECT_THROW(parse({"--rate", "0.5"}), std::invalid_argument);
}

TEST(CliSpec, EagerlyValidatesNumericValues) {
  EXPECT_THROW(parse({"--data", "x", "--count", "seven"}), std::invalid_argument);
  EXPECT_THROW(parse({"--data", "x", "--rate", "fast"}), std::invalid_argument);
}

TEST(CliSpec, RejectsMissingValues) {
  EXPECT_THROW(parse({"--data"}), std::invalid_argument);
}

TEST(CliSpec, HelpSkipsRequiredChecks) {
  const ParsedFlags flags = parse({"--help"});
  EXPECT_TRUE(flags.help_requested());
}

TEST(CliSpec, RuntimeFlagsAcceptedByEveryCommand) {
  const ParsedFlags flags = parse({"--data", "x", "--threads", "4", "--simd", "scalar"});
  EXPECT_EQ(flags.get_size("threads", 0), 4u);
  EXPECT_EQ(*flags.get("simd"), "scalar");
}

TEST(CliSpec, HelpTextCoversFlagsRuntimeOptionsAndExitCodes) {
  const std::string help = command_help(demo_spec());
  EXPECT_NE(help.find("usage: frac demo --data FILE"), std::string::npos) << help;
  EXPECT_NE(help.find("--rate"), std::string::npos);
  EXPECT_NE(help.find("(required)"), std::string::npos);
  EXPECT_NE(help.find("--threads"), std::string::npos);
  EXPECT_NE(help.find("exit codes:"), std::string::npos);
  EXPECT_NE(help.find("130"), std::string::npos);

  const std::string overview = overview_help(std::span<const CommandSpec>(&demo_spec(), 1));
  EXPECT_NE(overview.find("demo"), std::string::npos);
  EXPECT_NE(overview.find("a test command"), std::string::npos);
}

/// Restores one environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) previous_ = old;
    if (value != nullptr) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (previous_) ::setenv(name_.c_str(), previous_->c_str(), 1);
    else ::unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

RuntimeConfig::FlagLookup lookup(std::vector<std::pair<std::string, std::string>> pairs) {
  return [pairs = std::move(pairs)](const std::string& name) -> std::optional<std::string> {
    for (const auto& [k, v] : pairs) {
      if (k == name) return v;
    }
    return std::nullopt;
  };
}

TEST(RuntimeConfig, FlagsBeatEnvironment) {
  ScopedEnv threads("FRAC_THREADS", "2");
  ScopedEnv simd("FRAC_SIMD", "avx2");
  const RuntimeConfig config = RuntimeConfig::resolve(lookup({{"threads", "6"}, {"simd", "scalar"}}));
  EXPECT_EQ(config.threads, 6u);
  EXPECT_EQ(config.simd, "scalar");
}

TEST(RuntimeConfig, EnvironmentFillsUnflaggedKnobs) {
  ScopedEnv threads("FRAC_THREADS", "3");
  ScopedEnv trace("FRAC_TRACE", "/tmp/t.json");
  ScopedEnv metrics("FRAC_METRICS", nullptr);
  const RuntimeConfig config = RuntimeConfig::resolve(lookup({}));
  EXPECT_EQ(config.threads, 3u);
  EXPECT_EQ(config.trace_path, "/tmp/t.json");
  EXPECT_TRUE(config.metrics_path.empty());
}

TEST(RuntimeConfig, EmptyEnvironmentValuesAreUnset) {
  ScopedEnv simd("FRAC_SIMD", "");
  const RuntimeConfig config = RuntimeConfig::resolve(lookup({}));
  EXPECT_TRUE(config.simd.empty());
}

TEST(RuntimeConfig, MalformedThreadsIsAUsageError) {
  ScopedEnv threads("FRAC_THREADS", "many");
  EXPECT_THROW(RuntimeConfig::resolve(lookup({})), std::invalid_argument);
  ScopedEnv fixed("FRAC_THREADS", nullptr);
  EXPECT_THROW(RuntimeConfig::resolve(lookup({{"threads", "-1"}})), std::invalid_argument);
}

TEST(RuntimeConfig, ResolveEnvOnlyMatchesEmptyLookup) {
  ScopedEnv log("FRAC_LOG", "debug");
  EXPECT_EQ(RuntimeConfig::resolve_env_only().log_level, "debug");
}

}  // namespace
}  // namespace frac
