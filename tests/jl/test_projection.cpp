#include "jl/projection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels.hpp"

namespace frac {
namespace {

Matrix random_points(std::size_t n, std::size_t d, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (double& v : m.row(i)) v = rng.normal();
  }
  return m;
}

class ProjectionDistances : public ::testing::TestWithParam<RandomMatrixKind> {};

TEST_P(ProjectionDistances, MostPairwiseDistancesPreserved) {
  // JL property: with k = 1024 nearly all squared distances land within
  // (1 ± ~0.2); we check the 90th percentile of relative distortion.
  const std::size_t d = 500, k = 1024, n = 30;
  Rng rng(1);
  const JlProjection proj(d, k, GetParam(), rng);
  const Matrix points = random_points(n, d, 2);
  ThreadPool pool(2);
  const Matrix projected = proj.project(points, pool);

  std::vector<double> distortions;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double orig = squared_distance(points.row(i), points.row(j));
      const double proj_d = squared_distance(projected.row(i), projected.row(j));
      distortions.push_back(std::abs(proj_d / orig - 1.0));
    }
  }
  std::sort(distortions.begin(), distortions.end());
  EXPECT_LT(distortions[distortions.size() * 9 / 10], 0.25);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ProjectionDistances,
                         ::testing::Values(RandomMatrixKind::kGaussian,
                                           RandomMatrixKind::kUniform,
                                           RandomMatrixKind::kAchlioptas,
                                           RandomMatrixKind::kCountSketch));

TEST(Projection, CountSketchNeedsNoVarianceScaling) {
  // CountSketch norms are preserved without the 1/√k factor.
  Rng rng(41);
  const JlProjection proj(300, 128, RandomMatrixKind::kCountSketch, rng);
  const Matrix points = random_points(40, 300, 42);
  const Matrix projected = proj.project(points);
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    ratio_sum += squared_norm(projected.row(i)) / squared_norm(points.row(i));
  }
  EXPECT_NEAR(ratio_sum / static_cast<double>(points.rows()), 1.0, 0.15);
}

TEST(Projection, CountSketchIsCheapestToStore) {
  Rng rng(43);
  const JlProjection sketch(600, 128, RandomMatrixKind::kCountSketch, rng);
  const JlProjection achlioptas(600, 128, RandomMatrixKind::kAchlioptas, rng);
  EXPECT_LT(sketch.bytes(), achlioptas.bytes());
}

TEST(Projection, ExpectedSquaredNormPreserved) {
  const std::size_t d = 300, k = 512;
  Rng rng(3);
  const JlProjection proj(d, k, RandomMatrixKind::kGaussian, rng);
  const Matrix points = random_points(50, d, 4);
  const Matrix projected = proj.project(points);
  double ratio_sum = 0.0;
  for (std::size_t i = 0; i < points.rows(); ++i) {
    ratio_sum += squared_norm(projected.row(i)) / squared_norm(points.row(i));
  }
  EXPECT_NEAR(ratio_sum / static_cast<double>(points.rows()), 1.0, 0.1);
}

TEST(Projection, DotProductsApproximatelyPreserved) {
  // Kabán 2015: dot products survive random projection too.
  const std::size_t d = 400, k = 1024;
  Rng rng(5);
  const JlProjection proj(d, k, RandomMatrixKind::kAchlioptas, rng);
  const Matrix points = random_points(10, d, 6);
  const Matrix projected = proj.project(points);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      const double orig = dot(points.row(i), points.row(j));
      const double after = dot(projected.row(i), projected.row(j));
      // Dot products of random gaussian vectors are O(√d); tolerance scales.
      EXPECT_NEAR(after, orig, 3.0 * std::sqrt(static_cast<double>(d)));
    }
  }
}

TEST(Projection, ProjectRowMatchesProjectMatrix) {
  Rng rng(7);
  const JlProjection proj(20, 8, RandomMatrixKind::kGaussian, rng);
  const Matrix points = random_points(3, 20, 8);
  const Matrix all = proj.project(points);
  std::vector<double> row(8);
  proj.project_row(points.row(1), row);
  for (std::size_t c = 0; c < 8; ++c) EXPECT_DOUBLE_EQ(row[c], all(1, c));
}

TEST(Projection, WidthMismatchThrows) {
  Rng rng(9);
  const JlProjection proj(10, 4, RandomMatrixKind::kGaussian, rng);
  EXPECT_THROW(proj.project(Matrix(2, 11)), std::invalid_argument);
}

TEST(Projection, ZeroDimensionThrows) {
  Rng rng(10);
  EXPECT_THROW(JlProjection(0, 4, RandomMatrixKind::kGaussian, rng), std::invalid_argument);
  EXPECT_THROW(JlProjection(4, 0, RandomMatrixKind::kGaussian, rng), std::invalid_argument);
}

TEST(Projection, SparseKindReportsBytesSmallerThanDense) {
  Rng rng(11);
  const JlProjection sparse(600, 128, RandomMatrixKind::kAchlioptas, rng);
  const JlProjection dense(600, 128, RandomMatrixKind::kGaussian, rng);
  EXPECT_LT(sparse.bytes(), dense.bytes());
}

}  // namespace
}  // namespace frac
