#include "jl/dimension.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace frac {
namespace {

TEST(JlDimension, DenominatorMatchesFormula) {
  const double eps = 0.1;
  EXPECT_NEAR(jl_denominator(eps), eps * eps / 2 - eps * eps * eps / 3, 1e-15);
}

TEST(JlDimension, DenominatorRejectsBadEpsilon) {
  EXPECT_THROW(jl_denominator(0.0), std::invalid_argument);
  EXPECT_THROW(jl_denominator(1.0), std::invalid_argument);
  EXPECT_THROW(jl_denominator(-0.5), std::invalid_argument);
}

TEST(JlDimension, PointsetBoundGrowsWithNAndShrinksWithEpsilon) {
  EXPECT_GT(jl_dimension_pointset(10000, 0.1), jl_dimension_pointset(100, 0.1));
  EXPECT_GT(jl_dimension_pointset(100, 0.05), jl_dimension_pointset(100, 0.2));
}

TEST(JlDimension, PointsetKnownValue) {
  // k >= 4 ln(100) / (0.1²/2 − 0.1³/3) = 4·4.6052 / 0.0046667 ≈ 3947.3
  EXPECT_EQ(jl_dimension_pointset(100, 0.1), 3948u);
}

TEST(JlDimension, ProbabilisticIndependentOfN) {
  // The distributional form never sees n; spot-check a known value.
  // k >= ln(2/0.05) / (0.1²/2 − 0.1³/3) = 3.6889 / 0.0046667 ≈ 790.5
  EXPECT_EQ(jl_dimension_probabilistic(0.1, 0.05), 791u);
}

TEST(JlDimension, PaperParametersFor1024) {
  // The paper claims k = 1024 gives δ = 0.05 at ε = 0.057, but by the
  // paper's own formula ε = 0.057 needs k = ⌈ln(2/0.05)/(ε²/2−ε³/3)⌉ ≈ 2361;
  // the true ε achievable at k = 1024 is ≈ 0.0875 (see EXPERIMENTS.md).
  // This test pins the mathematically consistent values.
  const double eps = jl_epsilon_for_dimension(1024, 0.05);
  EXPECT_NEAR(eps, 0.0875, 0.001);
  EXPECT_LE(jl_dimension_probabilistic(eps, 0.05), 1025u);
  EXPECT_NEAR(static_cast<double>(jl_dimension_probabilistic(0.057, 0.05)), 2361.0, 2.0);
}

TEST(JlDimension, EpsilonForDimensionIsInverse) {
  for (const std::size_t k : {128u, 512u, 2048u}) {
    const double eps = jl_epsilon_for_dimension(k, 0.1);
    const std::size_t back = jl_dimension_probabilistic(eps, 0.1);
    EXPECT_NEAR(static_cast<double>(back), static_cast<double>(k), 2.0);
  }
}

TEST(JlDimension, EpsilonShrinksWithK) {
  EXPECT_LT(jl_epsilon_for_dimension(4096, 0.05), jl_epsilon_for_dimension(1024, 0.05));
}

TEST(JlDimension, InputValidation) {
  EXPECT_THROW(jl_dimension_pointset(1, 0.1), std::invalid_argument);
  EXPECT_THROW(jl_dimension_probabilistic(0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(jl_dimension_probabilistic(0.1, 1.0), std::invalid_argument);
  EXPECT_THROW(jl_epsilon_for_dimension(0, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace frac
