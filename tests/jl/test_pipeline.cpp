#include "jl/pipeline.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

Schema mixed_schema() {
  Schema s;
  s.add({"r0", FeatureKind::kReal, 0});
  s.add({"c0", FeatureKind::kCategorical, 3});
  s.add({"r1", FeatureKind::kReal, 0});
  return s;
}

Dataset mixed_dataset() {
  const Schema s = mixed_schema();
  Matrix values(4, 3);
  values(0, 0) = 1.0; values(0, 1) = 0; values(0, 2) = -1.0;
  values(1, 0) = 2.0; values(1, 1) = 1; values(1, 2) = 0.5;
  values(2, 0) = 0.0; values(2, 1) = 2; values(2, 2) = 0.0;
  values(3, 0) = -1.0; values(3, 1) = 1; values(3, 2) = 2.0;
  return Dataset(s, values,
                 {Label::kNormal, Label::kNormal, Label::kAnomaly, Label::kNormal});
}

TEST(JlPipeline, OutputIsAllRealAtRequestedDim) {
  JlPipelineConfig config;
  config.output_dim = 7;
  const JlPipeline pipeline(mixed_schema(), config);
  EXPECT_EQ(pipeline.input_width(), 5u);  // 2 reals + 3-ary one-hot
  const Dataset out = pipeline.apply(mixed_dataset());
  EXPECT_EQ(out.feature_count(), 7u);
  EXPECT_EQ(out.sample_count(), 4u);
  for (std::size_t f = 0; f < out.feature_count(); ++f) {
    EXPECT_TRUE(out.schema().is_real(f));
  }
}

TEST(JlPipeline, LabelsPassThrough) {
  const JlPipeline pipeline(mixed_schema(), {});
  const Dataset out = pipeline.apply(mixed_dataset());
  EXPECT_EQ(out.labels(), mixed_dataset().labels());
}

TEST(JlPipeline, ConsistentAcrossCalls) {
  // Train and test must be projected by the SAME matrix.
  JlPipelineConfig config;
  config.output_dim = 5;
  const JlPipeline pipeline(mixed_schema(), config);
  const Dataset d = mixed_dataset();
  const Dataset once = pipeline.apply(d);
  const Dataset twice = pipeline.apply(d);
  EXPECT_EQ(once.values(), twice.values());
}

TEST(JlPipeline, DifferentSeedsGiveDifferentProjections) {
  JlPipelineConfig a, b;
  a.seed = 1;
  b.seed = 2;
  const JlPipeline pa(mixed_schema(), a);
  const JlPipeline pb(mixed_schema(), b);
  const Dataset d = mixed_dataset();
  EXPECT_FALSE(pa.apply(d).values() == pb.apply(d).values());
}

TEST(JlPipeline, MissingValuesNeverReachTheProjection) {
  JlPipelineConfig config;
  config.output_dim = 6;
  JlPipeline pipeline(mixed_schema(), config);
  Dataset d = mixed_dataset();
  d.mutable_values()(0, 0) = kMissing;  // missing real
  d.mutable_values()(1, 1) = kMissing;  // missing categorical
  const Dataset out = pipeline.apply(d);
  for (std::size_t r = 0; r < out.sample_count(); ++r) {
    for (std::size_t c = 0; c < out.feature_count(); ++c) {
      EXPECT_FALSE(is_missing(out.value(r, c))) << r << "," << c;
    }
  }
}

TEST(JlPipeline, ImputationUsesTrainingMeans) {
  JlPipelineConfig config;
  config.output_dim = 5;
  JlPipeline pipeline(mixed_schema(), config);
  const Dataset train = mixed_dataset();
  pipeline.fit_imputation(train);
  // A row whose first (real) feature is missing should project like a row
  // carrying that feature's training mean.
  Dataset missing_row = train.select_samples({0});
  missing_row.mutable_values()(0, 0) = kMissing;
  Dataset mean_row = train.select_samples({0});
  mean_row.mutable_values()(0, 0) = (1.0 + 2.0 + 0.0 + -1.0) / 4.0;
  const Dataset a = pipeline.apply(missing_row);
  const Dataset b = pipeline.apply(mean_row);
  for (std::size_t c = 0; c < a.feature_count(); ++c) {
    EXPECT_NEAR(a.value(0, c), b.value(0, c), 1e-12);
  }
}

TEST(JlPipeline, FitImputationRejectsWrongSchema) {
  JlPipeline pipeline(mixed_schema(), {});
  const Dataset wrong(Schema::all_real(2), Matrix(1, 2), {Label::kNormal});
  EXPECT_THROW(pipeline.fit_imputation(wrong), std::invalid_argument);
}

TEST(JlPipeline, SchemaMismatchThrows) {
  const JlPipeline pipeline(mixed_schema(), {});
  const Dataset wrong(Schema::all_real(2), Matrix(1, 2), {Label::kNormal});
  EXPECT_THROW(pipeline.apply(wrong), std::invalid_argument);
}

TEST(JlPipeline, Fig2ShapeExample) {
  // Paper Fig. 2: 4 reals + {0,1,2} + {0,1,2,3} -> 11-wide 1-hot -> k=4.
  Schema s;
  for (int i = 0; i < 4; ++i) s.add({"r" + std::to_string(i), FeatureKind::kReal, 0});
  s.add({"c3", FeatureKind::kCategorical, 3});
  s.add({"c4", FeatureKind::kCategorical, 4});
  JlPipelineConfig config;
  config.output_dim = 4;
  const JlPipeline pipeline(s, config);
  EXPECT_EQ(pipeline.input_width(), 11u);
  EXPECT_EQ(pipeline.output_dim(), 4u);
  Matrix values(1, 6);
  values(0, 0) = 3.4; values(0, 1) = 0; values(0, 2) = -2;
  values(0, 3) = 0.6; values(0, 4) = 1; values(0, 5) = 2;
  const Dataset row(s, values, {Label::kNormal});
  const Dataset projected = pipeline.apply(row);
  EXPECT_EQ(projected.feature_count(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_TRUE(std::isfinite(projected.value(0, c)));
  }
}

}  // namespace
}  // namespace frac
