// DriftMonitor: the anytime-valid NS e-process (src/stream/drift.hpp).
//
// The contracts under test:
//   1. Validity: an in-distribution stream does not alarm (alpha bounds the
//      false-alarm probability over the whole run); an upward-shifted stream
//      alarms within a small lag after min_samples.
//   2. Determinism: decisions are a pure sequential function of the NS
//      sequence — bit-identical when the NS values come from 1-thread vs
//      N-thread scoring (the FRaC bit-identity contract), and across a
//      kill/resume through the snapshot round trip.
//   3. Persistence: serialize/load_file restores statistic, latch, sample
//      count, and baseline exactly.
#include "stream/drift.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

std::vector<double> normal_draws(std::size_t n, double mean, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> draws(n);
  for (double& d : draws) d = mean + rng.normal();
  return draws;
}

TEST(DriftMonitor, RejectsDegenerateInputs) {
  EXPECT_THROW(DriftMonitor({}, {}), std::invalid_argument);
  EXPECT_THROW(DriftMonitor({1.0, std::numeric_limits<double>::quiet_NaN()}, {}),
               std::invalid_argument);
  DriftConfig bad;
  bad.alpha = 0.0;
  EXPECT_THROW(DriftMonitor({1.0, 2.0}, bad), std::invalid_argument);
  bad.alpha = 1.0;
  EXPECT_THROW(DriftMonitor({1.0, 2.0}, bad), std::invalid_argument);

  DriftMonitor monitor(normal_draws(50, 0.0, 1));
  EXPECT_THROW(monitor.observe(std::numeric_limits<double>::infinity()), NumericError);
}

TEST(DriftMonitor, InDistributionStreamDoesNotAlarm) {
  DriftConfig config;
  config.alpha = 1e-3;
  DriftMonitor monitor(normal_draws(300, 0.0, 2), config);
  EXPECT_DOUBLE_EQ(monitor.threshold(), std::log(1e3));
  for (const double ns : normal_draws(600, 0.0, 3)) monitor.observe(ns);
  EXPECT_FALSE(monitor.drifted());
  EXPECT_EQ(monitor.drift_sample(), 0u);
  EXPECT_EQ(monitor.samples_seen(), 600u);
}

TEST(DriftMonitor, ShiftedStreamAlarmsShortlyAfterMinSamples) {
  DriftConfig config;
  config.alpha = 1e-3;
  config.min_samples = 16;
  DriftMonitor monitor(normal_draws(300, 0.0, 4), config);
  bool fired = false;
  std::size_t at = 0;
  const std::vector<double> shifted = normal_draws(200, 4.0, 5);
  for (std::size_t i = 0; i < shifted.size() && !fired; ++i) {
    fired = monitor.observe(shifted[i]);
    at = i + 1;
  }
  ASSERT_TRUE(fired);
  EXPECT_EQ(monitor.drift_sample(), at);
  EXPECT_GE(at, config.min_samples);
  EXPECT_LE(at, config.min_samples + 8) << "a 4-sigma shift must fire nearly immediately";
  EXPECT_GE(monitor.statistic(), monitor.threshold());

  // The latch holds and the firing sample does not move.
  monitor.observe(0.0);
  EXPECT_TRUE(monitor.drifted());
  EXPECT_EQ(monitor.drift_sample(), at);
}

TEST(DriftMonitor, ResetKeepsBaselineRebaselineSwapsIt) {
  DriftMonitor monitor(normal_draws(100, 0.0, 6));
  for (const double ns : normal_draws(80, 5.0, 7)) monitor.observe(ns);
  ASSERT_TRUE(monitor.drifted());

  monitor.reset();
  EXPECT_FALSE(monitor.drifted());
  EXPECT_EQ(monitor.samples_seen(), 0u);
  EXPECT_EQ(monitor.drift_sample(), 0u);
  EXPECT_DOUBLE_EQ(monitor.statistic(), 0.0);
  EXPECT_EQ(monitor.baseline_size(), 100u);

  // After rebaselining on the shifted distribution, the shifted stream is
  // the new normal.
  monitor.rebaseline(normal_draws(100, 5.0, 8));
  for (const double ns : normal_draws(200, 5.0, 9)) monitor.observe(ns);
  EXPECT_FALSE(monitor.drifted());
}

TEST(DriftMonitor, SnapshotRoundTripContinuesBitIdentically) {
  DriftConfig config;
  config.alpha = 1e-2;
  config.min_samples = 8;
  DriftMonitor live(normal_draws(200, 0.0, 10), config);

  // Feed half the stream, snapshot mid-flight, restore, and feed the rest to
  // both monitors: every observable must stay bit-identical.
  const std::vector<double> stream = normal_draws(120, 1.2, 11);
  for (std::size_t i = 0; i < 60; ++i) live.observe(stream[i]);

  const std::string path = ::testing::TempDir() + "drift_monitor.snap";
  live.save_file(path);
  DriftMonitor restored = DriftMonitor::load_file(path);
  std::remove(path.c_str());

  EXPECT_EQ(restored.statistic(), live.statistic());
  EXPECT_EQ(restored.samples_seen(), live.samples_seen());
  EXPECT_EQ(restored.baseline_size(), live.baseline_size());
  EXPECT_EQ(restored.threshold(), live.threshold());
  EXPECT_EQ(restored.config().alpha, config.alpha);
  EXPECT_EQ(restored.config().min_samples, config.min_samples);

  for (std::size_t i = 60; i < stream.size(); ++i) {
    EXPECT_EQ(restored.observe(stream[i]), live.observe(stream[i])) << "sample " << i;
    ASSERT_EQ(restored.statistic(), live.statistic()) << "sample " << i;
  }
  EXPECT_EQ(restored.drifted(), live.drifted());
  EXPECT_EQ(restored.drift_sample(), live.drift_sample());
}

TEST(DriftMonitor, DecisionsAreThreadCountInvariant) {
  // The NS inputs come from FRaC scoring, whose values are bit-identical for
  // any FRAC_THREADS (the standing contract); the monitor adds no float
  // reassociation of its own, so the full pipeline's drift decisions match
  // bit for bit between a 1-thread and a 4-thread server.
  ExpressionModelConfig c;
  c.features = 16;
  c.modules = 2;
  c.genes_per_module = 4;
  c.disease_modules = 1;
  c.seed = 91;
  const ExpressionModel gen(c);
  Rng rng(191);
  const Dataset train = gen.sample(30, Label::kNormal, rng);
  const Dataset calib = gen.sample(20, Label::kNormal, rng);
  const Dataset stream = gen.sample(25, Label::kAnomaly, rng);

  ThreadPool one(1);
  ThreadPool four(4);
  const FracModel model = FracModel::train(train, {}, four);

  DriftMonitor serial(model.score(calib, one));
  DriftMonitor parallel(model.score(calib, four));
  const std::vector<double> ns_serial = model.score(stream, one);
  const std::vector<double> ns_parallel = model.score(stream, four);
  ASSERT_EQ(ns_serial, ns_parallel) << "FRaC scoring must be thread-count invariant";

  for (std::size_t i = 0; i < ns_serial.size(); ++i) {
    EXPECT_EQ(serial.observe(ns_serial[i]), parallel.observe(ns_parallel[i]));
    ASSERT_EQ(serial.statistic(), parallel.statistic()) << "sample " << i;
  }
  EXPECT_EQ(serial.drifted(), parallel.drifted());
  EXPECT_EQ(serial.drift_sample(), parallel.drift_sample());
}

TEST(LoadNsBaseline, ReadsScoreCsvAndPlainLines) {
  const std::string csv_path = ::testing::TempDir() + "baseline.csv";
  {
    std::ofstream out(csv_path);
    out << "sample,ns,label\n0,-1.5,normal\n1,2.25,normal\n";
  }
  const std::vector<double> from_csv = load_ns_baseline(csv_path);
  std::remove(csv_path.c_str());
  ASSERT_EQ(from_csv.size(), 2u);
  EXPECT_DOUBLE_EQ(from_csv[0], -1.5);
  EXPECT_DOUBLE_EQ(from_csv[1], 2.25);

  const std::string plain_path = ::testing::TempDir() + "baseline.txt";
  {
    std::ofstream out(plain_path);
    out << "-3.5\n0.125\n7\n";
  }
  const std::vector<double> from_plain = load_ns_baseline(plain_path);
  std::remove(plain_path.c_str());
  ASSERT_EQ(from_plain.size(), 3u);
  EXPECT_DOUBLE_EQ(from_plain[0], -3.5);
  EXPECT_DOUBLE_EQ(from_plain[2], 7.0);

  EXPECT_THROW(load_ns_baseline(::testing::TempDir() + "no_such_baseline.csv"), IoError);
  const std::string junk_path = ::testing::TempDir() + "junk.csv";
  {
    std::ofstream out(junk_path);
    out << "header,line\nnot,numbers\n";
  }
  EXPECT_THROW(load_ns_baseline(junk_path), ParseError);
  std::remove(junk_path.c_str());
}

}  // namespace
}  // namespace frac
