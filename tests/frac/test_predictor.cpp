#include "frac/predictor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

TEST(Predictor, SvrRegressorLearnsLinearTarget) {
  Rng rng(1);
  Matrix x(100, 3);
  std::vector<double> y(100);
  for (std::size_t i = 0; i < 100; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = x(i, 0) - 2.0 * x(i, 2);
  }
  const std::vector<std::uint32_t> arities{0, 0, 0};
  PredictorConfig config;
  config.svr.c = 10.0;
  config.svr.epsilon = 0.01;
  const auto model = train_regressor(x, y, arities, config);
  const std::vector<double> probe{1.0, 0.0, 1.0};
  EXPECT_NEAR(model->predict(probe), -1.0, 0.2);
}

TEST(Predictor, SvrExpandsCategoricalInputs) {
  // Target = 1 when categorical input == 2; linear in the 1-hot encoding.
  Matrix x(90, 1);
  std::vector<double> y(90);
  for (std::size_t i = 0; i < 90; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    y[i] = (i % 3 == 2) ? 1.0 : 0.0;
  }
  const std::vector<std::uint32_t> arities{3};
  PredictorConfig config;
  config.svr.c = 10.0;
  config.svr.epsilon = 0.01;
  const auto model = train_regressor(x, y, arities, config);
  EXPECT_NEAR(model->predict(std::vector<double>{2.0}), 1.0, 0.15);
  EXPECT_NEAR(model->predict(std::vector<double>{0.0}), 0.0, 0.15);
}

TEST(Predictor, SvrImputesMissingInputsToZero) {
  Rng rng(2);
  Matrix x(50, 2);
  std::vector<double> y(50);
  for (std::size_t i = 0; i < 50; ++i) {
    x(i, 0) = rng.normal();
    x(i, 1) = rng.normal();
    y[i] = 3.0 * x(i, 0);
  }
  const std::vector<std::uint32_t> arities{0, 0};
  const auto model = train_regressor(x, y, arities, {});
  const std::vector<double> missing_row{kMissing, 0.5};
  // Missing x0 imputes to 0 -> prediction ≈ bias contribution only.
  EXPECT_TRUE(std::isfinite(model->predict(missing_row)));
  EXPECT_LT(std::abs(model->predict(missing_row)), 1.0);
}

TEST(Predictor, TreeRegressorSelectedByKind) {
  Matrix x(40, 1);
  std::vector<double> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    x(i, 0) = static_cast<double>(i);
    y[i] = i < 20 ? 0.0 : 5.0;
  }
  const std::vector<std::uint32_t> arities{0};
  PredictorConfig config;
  config.regressor = RegressorKind::kRegressionTree;
  const auto model = train_regressor(x, y, arities, config);
  EXPECT_NEAR(model->predict(std::vector<double>{5.0}), 0.0, 1e-9);
  EXPECT_NEAR(model->predict(std::vector<double>{35.0}), 5.0, 1e-9);
}

TEST(Predictor, TreeClassifierPredictsCodes) {
  Matrix x(60, 1);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    y[i] = static_cast<double>(i % 3);  // identity mapping
  }
  const std::vector<std::uint32_t> arities{3};
  const auto model = train_classifier(x, y, 3, arities, {});
  for (double code = 0; code < 3; ++code) {
    EXPECT_EQ(model->predict(std::vector<double>{code}), code);
  }
}

TEST(Predictor, SvcClassifierSelectedByKind) {
  Matrix x(60, 2);
  std::vector<double> y(60);
  Rng rng(3);
  for (std::size_t i = 0; i < 60; ++i) {
    const std::size_t k = i % 2;
    x(i, 0) = (k == 0 ? -2.0 : 2.0) + 0.2 * rng.normal();
    x(i, 1) = rng.normal();
    y[i] = static_cast<double>(k);
  }
  const std::vector<std::uint32_t> arities{0, 0};
  PredictorConfig config;
  config.classifier = ClassifierKind::kLinearSvcOneHot;
  const auto model = train_classifier(x, y, 2, arities, config);
  EXPECT_EQ(model->predict(std::vector<double>{-2.0, 0.0}), 0.0);
  EXPECT_EQ(model->predict(std::vector<double>{2.0, 0.0}), 1.0);
}

TEST(Predictor, StorageBytesScaleWithSupportAndDims) {
  Rng rng(4);
  Matrix narrow(30, 5), wide(30, 50);
  std::vector<double> y(30);
  for (std::size_t i = 0; i < 30; ++i) {
    for (double& v : narrow.row(i)) v = rng.normal();
    for (double& v : wide.row(i)) v = rng.normal();
    y[i] = rng.normal();  // noise: most samples become SVs
  }
  const std::vector<std::uint32_t> a5(5, 0), a50(50, 0);
  const auto small_model = train_regressor(narrow, y, a5, {});
  const auto large_model = train_regressor(wide, y, a50, {});
  EXPECT_GT(large_model->storage_bytes(), small_model->storage_bytes());
}

TEST(Predictor, InfluentialInputsFindTheSignalFeature) {
  Rng rng(5);
  Matrix x(80, 10);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = 5.0 * x(i, 7);  // feature 7 dominates
  }
  const std::vector<std::uint32_t> arities(10, 0);
  PredictorConfig config;
  config.svr.c = 10.0;
  const auto model = train_regressor(x, y, arities, config);
  const auto top = model->influential_inputs(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 7u);
}

TEST(Predictor, TreeInfluentialInputsAreUsedFeatures) {
  Matrix x(60, 4);
  std::vector<double> y(60);
  for (std::size_t i = 0; i < 60; ++i) {
    x(i, 2) = static_cast<double>(i % 2);
    y[i] = x(i, 2);
  }
  const std::vector<std::uint32_t> arities{0, 0, 2, 0};
  const auto model = train_classifier(x, y, 2, arities, {});
  const auto top = model->influential_inputs(5);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 2u);
}

}  // namespace
}  // namespace frac
