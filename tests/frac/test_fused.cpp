// The fused serve path's contract (frac/fused.hpp): batching every linear
// unit into one blocked gemm_nt must be *bit-identical* to the per-unit
// reference walk — for any thread count and any SIMD dispatch level — and
// the opt-in f32 weight pack must stay within a tight NS error bound of the
// f64 path while being bit-identical across its own mode/level axes.
#include "frac/fused.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "frac/frac.hpp"
#include "linalg/simd.hpp"
#include "util/errors.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate expression_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 40;
  c.modules = 4;
  c.genes_per_module = 6;
  c.noise_sd = 0.4;
  c.anomaly_mix = 3.0;
  c.disease_modules = 3;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(40, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(15, Label::kNormal, rng),
                            model.sample(15, Label::kAnomaly, rng));
  return rep;
}

/// SNP replicate scored with one-vs-rest linear SVCs, so the fused pack
/// carries multi-row classifier units (argmax path) and one-hot inputs.
Replicate snp_replicate(std::uint64_t seed = 2) {
  SnpModelConfig c;
  c.features = 30;
  c.block_size = 6;
  c.ld_strength = 0.8;
  c.fst = 0.35;
  c.populations = 2;
  c.seed = seed;
  const SnpModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(0, 50, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(0, 12, Label::kNormal, rng),
                            model.sample(1, 12, Label::kAnomaly, rng));
  return rep;
}

FracConfig linear_svc_config() {
  FracConfig config;
  config.predictor.classifier = ClassifierKind::kLinearSvcOneHot;
  config.predictor.regressor = RegressorKind::kLinearSvr;
  config.seed = 7;
  return config;
}

void expect_bitwise_equal(const std::vector<double>& a, const std::vector<double>& b,
                          const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " row " << i;  // exact, not near
  }
}

TEST(FusedScoring, FusedMatchesPerUnitBitIdenticalAcrossThreadsAndLevels) {
  // The tentpole contract: same expansion, same fixed-order dot kernel, so
  // the one-GEMM fused path and the per-unit reference walk agree on every
  // bit — crossed with thread counts and every supported dispatch level.
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, {}, pool());
  const simd::Level original = simd::active_level();
  ThreadPool one(1);
  ThreadPool four(4);
  simd::force_level(simd::Level::kScalar);
  const auto reference = model.score(rep.test, one, ScoreMode::kPerUnit);
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (!simd::cpu_supports(level)) continue;
    simd::force_level(level);
    const auto fused_one = model.score(rep.test, one, ScoreMode::kFused);
    const auto fused_four = model.score(rep.test, four, ScoreMode::kFused);
    const auto per_unit_four = model.score(rep.test, four, ScoreMode::kPerUnit);
    simd::force_level(original);
    expect_bitwise_equal(reference, fused_one, simd::level_name(level));
    expect_bitwise_equal(reference, fused_four, simd::level_name(level));
    expect_bitwise_equal(reference, per_unit_four, simd::level_name(level));
  }
}

TEST(FusedScoring, FusedMatchesPerUnitForOneVsRestClassifiers) {
  // Classifier units scatter one row per class and replicate the strict->
  // first-max argmax; categorical inputs exercise the one-hot expansion.
  const Replicate rep = snp_replicate();
  const FracModel model = FracModel::train(rep.train, linear_svc_config(), pool());
  const auto fused = model.score(rep.test, pool(), ScoreMode::kFused);
  const auto per_unit = model.score(rep.test, pool(), ScoreMode::kPerUnit);
  expect_bitwise_equal(fused, per_unit, "svc");
}

TEST(FusedScoring, PerFeatureScoresAgreeAcrossModes) {
  const Replicate rep = expression_replicate(3);
  const FracModel model = FracModel::train(rep.train, {}, pool());
  const Matrix fused = model.per_feature_scores(rep.test, pool(), ScoreMode::kFused);
  const Matrix per_unit = model.per_feature_scores(rep.test, pool(), ScoreMode::kPerUnit);
  ASSERT_EQ(fused.rows(), per_unit.rows());
  ASSERT_EQ(fused.cols(), per_unit.cols());
  for (std::size_t r = 0; r < fused.rows(); ++r) {
    for (std::size_t f = 0; f < fused.cols(); ++f) {
      if (is_missing(fused(r, f))) {
        EXPECT_TRUE(is_missing(per_unit(r, f))) << r << "," << f;
      } else {
        EXPECT_EQ(fused(r, f), per_unit(r, f)) << r << "," << f;
      }
    }
  }
}

TEST(FusedScoring, F32ScoringRequiresTheWeightPack) {
  const Replicate rep = expression_replicate(4);
  const FracModel model = FracModel::train(rep.train, {}, pool());
  ASSERT_FALSE(model.has_f32_weights());
  EXPECT_THROW(
      (void)model.score(rep.test, pool(), ScoreMode::kFused, ScorePrecision::kF32),
      std::invalid_argument);
}

TEST(FusedScoring, F32StaysWithinRelativeErrorBoundOfF64) {
  // Narrowing the weights to f32 perturbs each dot by ~1e-7 relative; the
  // error models keep everything else f64, so NS moves by at most a small
  // mixed absolute/relative tolerance — far below anything that could alter
  // an anomaly ranking at the paper's scale.
  const Replicate rep = expression_replicate(5);
  FracModel model = FracModel::train(rep.train, {}, pool());
  model.build_f32_weights();
  ASSERT_TRUE(model.has_f32_weights());
  const auto f64_scores = model.score(rep.test, pool());
  const auto f32_scores =
      model.score(rep.test, pool(), ScoreMode::kFused, ScorePrecision::kF32);
  ASSERT_EQ(f64_scores.size(), f32_scores.size());
  for (std::size_t i = 0; i < f64_scores.size(); ++i) {
    const double bound = 1e-3 * (1.0 + std::abs(f64_scores[i]));
    EXPECT_NEAR(f64_scores[i], f32_scores[i], bound) << i;
  }
}

TEST(FusedScoring, F32FusedMatchesF32PerUnitBitIdentical) {
  // The bit-identity contract holds within the f32 precision too: fused
  // gemm_nt_f32 vs the per-unit dot_f32 walk share expansion and lane order.
  const Replicate rep = expression_replicate(6);
  FracModel model = FracModel::train(rep.train, {}, pool());
  model.build_f32_weights();
  const auto fused =
      model.score(rep.test, pool(), ScoreMode::kFused, ScorePrecision::kF32);
  const auto per_unit =
      model.score(rep.test, pool(), ScoreMode::kPerUnit, ScorePrecision::kF32);
  expect_bitwise_equal(fused, per_unit, "f32");
}

TEST(FusedScoring, TreeOnlyModelsHaveNoLinearPackAndStillScore) {
  // A tree-only model fuses nothing: build_f32_weights() is a no-op, the
  // fused mode falls back to the per-unit walk, and scores are unaffected.
  const Replicate rep = snp_replicate(7);
  FracConfig config;
  config.predictor.classifier = ClassifierKind::kDecisionTree;
  config.predictor.regressor = RegressorKind::kRegressionTree;
  config.predictor.tree.max_depth = 4;
  FracModel model = FracModel::train(rep.train, config, pool());
  model.build_f32_weights();
  EXPECT_FALSE(model.has_f32_weights());
  const auto fused = model.score(rep.test, pool(), ScoreMode::kFused);
  const auto per_unit = model.score(rep.test, pool(), ScoreMode::kPerUnit);
  expect_bitwise_equal(fused, per_unit, "tree-only");
}

TEST(FusedScoring, F32PackSurvivesBinaryRoundTrip) {
  // `frac convert --f32` writes format v3; loading it back must restore the
  // pack (has_f32_weights) and reproduce both precisions bit for bit.
  const Replicate rep = expression_replicate(8);
  FracModel model = FracModel::train(rep.train, {}, pool());
  model.build_f32_weights();
  const std::string path = ::testing::TempDir() + "fused_f32_roundtrip.fracmdl";
  model.save_file(path, ModelFormat::kBinary);
  const FracModel restored = FracModel::load_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.has_f32_weights());
  expect_bitwise_equal(model.score(rep.test, pool()), restored.score(rep.test, pool()),
                       "f64 after round trip");
  expect_bitwise_equal(
      model.score(rep.test, pool(), ScoreMode::kFused, ScorePrecision::kF32),
      restored.score(rep.test, pool(), ScoreMode::kFused, ScorePrecision::kF32),
      "f32 after round trip");
}

TEST(FusedScoring, CorruptedF32SectionFailsNamingIt) {
  // Flipping a bit inside the v3 file's f32 payload (the last section written,
  // so the file's final byte is inside it) must fail the CRC check with a
  // ParseError naming "fused_f32", not load garbage weights.
  const Replicate rep = expression_replicate(10);
  FracModel model = FracModel::train(rep.train, {}, pool());
  model.build_f32_weights();
  const std::string path = ::testing::TempDir() + "fused_f32_corrupt.fracmdl";
  model.save_file(path, ModelFormat::kBinary);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekg(-1, std::ios::end);
    char last = 0;
    file.get(last);
    file.seekp(-1, std::ios::end);
    file.put(static_cast<char>(last ^ 0x01));
  }
  try {
    (void)FracModel::load_file(path);
    std::remove(path.c_str());
    FAIL() << "corrupted f32 pack loaded without error";
  } catch (const ParseError& e) {
    std::remove(path.c_str());
    EXPECT_NE(std::string(e.what()).find("fused_f32"), std::string::npos) << e.what();
  }
}

TEST(FusedLinearPackUnit, RejectsOutOfRangeCategoricalCodes) {
  // The serve path's expansion validates categorical codes (unlike the
  // training-side expander): a bad code must throw, not scatter out of its
  // block.
  const Replicate rep = snp_replicate(9);
  const FracModel model = FracModel::train(rep.train, linear_svc_config(), pool());
  Dataset bad = rep.test;
  bad.mutable_values()(0, 0) = 99.0;  // arity is 3: far outside [0, 3)
  EXPECT_THROW((void)model.score(bad, pool(), ScoreMode::kFused), NumericError);
}

}  // namespace
}  // namespace frac
