#include "frac/shard.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

/// Small expression cohort with a planted signal (mirrors test_frac.cpp).
Dataset training_cohort(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 24;
  c.modules = 3;
  c.genes_per_module = 5;
  c.noise_sd = 0.4;
  c.anomaly_mix = 3.0;
  c.disease_modules = 2;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  return model.sample(40, Label::kNormal, rng);
}

Dataset test_cohort(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 24;
  c.modules = 3;
  c.genes_per_module = 5;
  c.noise_sd = 0.4;
  c.anomaly_mix = 3.0;
  c.disease_modules = 2;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 200);
  return model.sample_cohort(10, 10, rng);
}

FracConfig small_config() {
  FracConfig config;
  config.seed = 7;
  return config;
}

void expect_bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise, not approximate: the shard guarantee is exact.
    EXPECT_EQ(a[i], b[i]) << "score " << i;
  }
}

/// Trains all N shards in-process and returns the partial-archive paths.
std::vector<std::string> train_shards(const ColumnStore& store, std::size_t count,
                                      const FracConfig& config, const std::string& tag,
                                      bool f32 = false) {
  std::vector<std::string> parts;
  for (std::size_t k = 0; k < count; ++k) {
    const std::string path = ::testing::TempDir() + tag + "." + std::to_string(k) + ".of" +
                             std::to_string(count) + ".fracmdl";
    ShardTrainOptions options;
    options.config = config;
    options.f32 = f32;
    const ShardTrainStatus status =
        train_model_shard(store, {k, count}, options, path, pool());
    EXPECT_TRUE(status.complete);
    parts.push_back(path);
  }
  return parts;
}

void remove_all(const std::vector<std::string>& paths) {
  for (const std::string& p : paths) std::remove(p.c_str());
}

TEST(ShardUnitRange, TilesExactlyForAnyCount) {
  for (std::size_t total : {0u, 1u, 7u, 24u, 100u}) {
    for (std::size_t count : {1u, 2u, 3u, 4u, 7u, 13u}) {
      std::size_t expect_lo = 0;
      for (std::size_t k = 0; k < count; ++k) {
        const auto [lo, hi] = shard_unit_range({k, count}, total);
        EXPECT_EQ(lo, expect_lo) << total << " units, shard " << k << "/" << count;
        EXPECT_LE(lo, hi);
        expect_lo = hi;
      }
      EXPECT_EQ(expect_lo, total) << total << " units across " << count;
    }
  }
}

TEST(ShardTrain, MergedScoresBitIdenticalToSingleProcess) {
  const Dataset train = training_cohort();
  const Dataset test = test_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  const FracModel reference = FracModel::train(train, config, pool());
  const std::vector<double> want = reference.score(test, pool());

  for (std::size_t count : {1u, 2u, 4u}) {
    const std::vector<std::string> parts =
        train_shards(store, count, config, "bitident" + std::to_string(count));
    ShardMergeSummary summary;
    const FracModel merged = merge_model_shards(parts, &summary);
    EXPECT_EQ(summary.shard_count, count);
    EXPECT_EQ(summary.units, reference.unit_count());
    EXPECT_EQ(merged.unit_count(), reference.unit_count());
    expect_bit_identical(merged.score(test, pool()), want);
    remove_all(parts);
  }
}

TEST(ShardTrain, OutOfCoreTrainingBitIdenticalToInCore) {
  const Dataset train = training_cohort();
  const Dataset test = test_cohort();
  const FracConfig config = small_config();

  const FracModel in_core = FracModel::train(train, config, pool());
  const FracModel out_of_core = train_out_of_core(ColumnStore::from_dataset(train), config, pool());
  expect_bit_identical(out_of_core.score(test, pool()), in_core.score(test, pool()));
  // Out-of-core peak never includes the sample-major matrix.
  EXPECT_LE(out_of_core.report().train_workspace_bytes, in_core.report().train_workspace_bytes);
}

TEST(ShardTrain, InterruptedShardResumesToIdenticalMerge) {
  const Dataset train = training_cohort();
  const Dataset test = test_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  const FracModel reference = FracModel::train(train, config, pool());
  const std::vector<double> want = reference.score(test, pool());

  const std::string part0 = ::testing::TempDir() + "resume.0.of2.fracmdl";
  const std::string part1 = ::testing::TempDir() + "resume.1.of2.fracmdl";

  // Shard 0: killed mid-train after 4 units, one checkpoint chunk at a time.
  ShardTrainOptions options;
  options.config = config;
  options.checkpoint_units = 2;
  options.stop_after_units = 4;
  const ShardTrainStatus interrupted = train_model_shard(store, {0, 2}, options, part0, pool());
  EXPECT_FALSE(interrupted.complete);
  EXPECT_EQ(interrupted.units_done, interrupted.unit_lo + 4);

  // Re-run with --resume: restores the checkpointed frontier, finishes.
  options.stop_after_units = 0;
  options.resume = true;
  const ShardTrainStatus resumed = train_model_shard(store, {0, 2}, options, part0, pool());
  EXPECT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.units_resumed, 4u);
  EXPECT_EQ(resumed.units_done, resumed.unit_hi);

  ShardTrainOptions plain;
  plain.config = config;
  const ShardTrainStatus other = train_model_shard(store, {1, 2}, plain, part1, pool());
  EXPECT_TRUE(other.complete);

  const std::vector<std::string> parts = {part0, part1};
  const FracModel merged = merge_model_shards(parts);
  expect_bit_identical(merged.score(test, pool()), want);
  remove_all(parts);
}

TEST(ShardTrain, ResumeRefusesMismatchedIdentity) {
  const Dataset train = training_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  const std::string path = ::testing::TempDir() + "identity.fracmdl";
  ShardTrainOptions options;
  options.config = config;
  options.checkpoint_units = 2;
  options.stop_after_units = 2;
  train_model_shard(store, {0, 2}, options, path, pool());

  options.stop_after_units = 0;
  options.resume = true;

  // Wrong tile.
  EXPECT_THROW(train_model_shard(store, {1, 2}, options, path, pool()), ParseError);

  // Different config (fingerprint mismatch).
  ShardTrainOptions other = options;
  other.config.seed = 99;
  EXPECT_THROW(train_model_shard(store, {0, 2}, other, path, pool()), ParseError);

  // Different dataset content (CRC mismatch).
  const ColumnStore other_store = ColumnStore::from_dataset(training_cohort(/*seed=*/5));
  EXPECT_THROW(train_model_shard(other_store, {0, 2}, options, path, pool()), ParseError);

  std::remove(path.c_str());
}

TEST(ShardMerge, RefusesIncompleteAndInconsistentPartials) {
  const Dataset train = training_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  const std::vector<std::string> parts = train_shards(store, 2, config, "refuse");

  // Incomplete partial: shard 0 of 2 stopped early.
  const std::string incomplete = ::testing::TempDir() + "refuse.incomplete.fracmdl";
  ShardTrainOptions options;
  options.config = config;
  options.checkpoint_units = 2;
  options.stop_after_units = 2;
  train_model_shard(store, {0, 2}, options, incomplete, pool());
  {
    const std::vector<std::string> bad = {incomplete, parts[1]};
    EXPECT_THROW(merge_model_shards(bad), ParseError);
  }

  // Wrong shard count: a 2-shard partial cannot merge alone.
  {
    const std::vector<std::string> bad = {parts[0]};
    EXPECT_THROW(merge_model_shards(bad), ParseError);
  }

  // Duplicate tile instead of a partition.
  {
    const std::vector<std::string> bad = {parts[0], parts[0]};
    EXPECT_THROW(merge_model_shards(bad), ParseError);
  }

  // Partials from different dataset content.
  const ColumnStore other_store = ColumnStore::from_dataset(training_cohort(/*seed=*/5));
  const std::vector<std::string> other_parts =
      train_shards(other_store, 2, config, "refuse_other");
  {
    const std::vector<std::string> bad = {parts[0], other_parts[1]};
    EXPECT_THROW(merge_model_shards(bad), ParseError);
  }

  // An ordinary (non-partial) model archive.
  const std::string full = ::testing::TempDir() + "refuse.full.fracmdl";
  FracModel::train(train, config, pool()).save_file(full);
  {
    const std::vector<std::string> bad = {full, parts[1]};
    EXPECT_THROW(merge_model_shards(bad), ParseError);
  }

  remove_all(parts);
  remove_all(other_parts);
  std::remove(incomplete.c_str());
  std::remove(full.c_str());
}

TEST(ShardMerge, CorruptPartialNamesFileAndSection) {
  const Dataset train = training_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const std::vector<std::string> parts = train_shards(store, 2, small_config(), "corrupt");
  {
    std::fstream f(parts[0], std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.get(byte);
    f.seekp(size / 2);
    f.put(static_cast<char>(byte ^ 0x40));
  }
  try {
    merge_model_shards(parts);
    FAIL() << "merged a corrupt partial";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(parts[0]), std::string::npos) << what;
    EXPECT_NE(what.find("section"), std::string::npos) << what;
  }
  remove_all(parts);
}

TEST(ShardMerge, InjectedUnitFailuresSurviveMerge) {
  const Dataset train = training_cohort();
  const Dataset test = test_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  // Fault plan keyed by global unit index: the same units fail in the
  // single-process run and in whichever shard owns them.
  ScopedFaultPlan plan("predictor_train:0.3:17");

  const FracModel reference = FracModel::train(train, config, pool());
  ASSERT_FALSE(reference.unit_failures().empty());

  const std::vector<std::string> parts = train_shards(store, 4, config, "faulty");
  ShardMergeSummary summary;
  const FracModel merged = merge_model_shards(parts, &summary);

  ASSERT_EQ(merged.unit_failures().size(), reference.unit_failures().size());
  for (std::size_t i = 0; i < merged.unit_failures().size(); ++i) {
    const UnitFailure& got = merged.unit_failures()[i];
    const UnitFailure& want = reference.unit_failures()[i];
    EXPECT_EQ(got.unit, want.unit);
    EXPECT_EQ(got.target, want.target);
    EXPECT_EQ(got.category, want.category);
    EXPECT_EQ(got.category, FailureCategory::kInjected);
  }
  EXPECT_EQ(merged.report().failures, reference.report().failures);
  EXPECT_EQ(summary.report.failures, reference.report().failures);

  // Degraded, not broken: surviving units still score bit-identically.
  expect_bit_identical(merged.score(test, pool()), reference.score(test, pool()));
  remove_all(parts);
}

TEST(ShardMerge, RegeneratesF32PackOverAllUnits) {
  const Dataset train = training_cohort();
  const Dataset test = test_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  // Mixed fleet: only shard 0 embeds the f32 pack; the merged model must
  // regenerate one covering every unit (a partial's pack covers its own
  // units only).
  const std::string part0 = ::testing::TempDir() + "f32.0.of2.fracmdl";
  const std::string part1 = ::testing::TempDir() + "f32.1.of2.fracmdl";
  ShardTrainOptions with_f32;
  with_f32.config = config;
  with_f32.f32 = true;
  ASSERT_TRUE(train_model_shard(store, {0, 2}, with_f32, part0, pool()).complete);
  ShardTrainOptions without;
  without.config = config;
  ASSERT_TRUE(train_model_shard(store, {1, 2}, without, part1, pool()).complete);

  const std::vector<std::string> parts = {part0, part1};
  const FracModel merged = merge_model_shards(parts);
  EXPECT_TRUE(merged.has_f32_weights());

  // f64 scoring is unaffected by the pack; f32 scoring runs over all units.
  const FracModel reference = FracModel::train(train, config, pool());
  expect_bit_identical(merged.score(test, pool()), reference.score(test, pool()));
  const std::vector<double> f32_scores =
      merged.score(test, pool(), ScoreMode::kFused, ScorePrecision::kF32);
  EXPECT_EQ(f32_scores.size(), static_cast<std::size_t>(test.sample_count()));
  remove_all(parts);
}

TEST(ShardMerge, ReportSumsPerShardWorkspace) {
  const Dataset train = training_cohort();
  const ColumnStore store = ColumnStore::from_dataset(train);
  const FracConfig config = small_config();

  std::vector<ShardTrainStatus> statuses;
  std::vector<std::string> parts;
  for (std::size_t k = 0; k < 3; ++k) {
    const std::string path = ::testing::TempDir() + "report." + std::to_string(k) + ".fracmdl";
    ShardTrainOptions options;
    options.config = config;
    statuses.push_back(train_model_shard(store, {k, 3}, options, path, pool()));
    parts.push_back(path);
  }

  ShardMergeSummary summary;
  const FracModel merged = merge_model_shards(parts, &summary);

  std::size_t workspace_sum = 0;
  std::size_t trained_sum = 0;
  for (const ShardTrainStatus& s : statuses) {
    workspace_sum += s.report.train_workspace_bytes;
    trained_sum += s.report.models_trained;
  }
  // Shard processes coexist: the fleet report *sums* per-shard workspaces
  // (ResourceReport::merge_shards), unlike in-process sequential max.
  EXPECT_EQ(summary.report.train_workspace_bytes, workspace_sum);
  EXPECT_EQ(summary.report.models_trained, trained_sum);
  EXPECT_EQ(merged.report().train_workspace_bytes, workspace_sum);
  remove_all(parts);
}

}  // namespace
}  // namespace frac
