#include "frac/entropy.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "data/dataset.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

TEST(FeatureEntropy, CategoricalUniform) {
  const FeatureSpec spec{"s", FeatureKind::kCategorical, 3};
  const std::vector<double> column{0, 1, 2, 0, 1, 2};
  EXPECT_NEAR(feature_entropy(column, spec), std::log(3.0), 1e-12);
}

TEST(FeatureEntropy, CategoricalSkipsMissing) {
  const FeatureSpec spec{"s", FeatureKind::kCategorical, 2};
  const std::vector<double> column{0, kMissing, 0, kMissing};
  EXPECT_DOUBLE_EQ(feature_entropy(column, spec), 0.0);
}

TEST(FeatureEntropy, CategoricalConstantIsZero) {
  const FeatureSpec spec{"s", FeatureKind::kCategorical, 3};
  const std::vector<double> column(20, 1.0);
  EXPECT_DOUBLE_EQ(feature_entropy(column, spec), 0.0);
}

// Regression: codes outside [0, arity) used to index past the counts buffer
// (negative codes: straight heap corruption; fractional ones truncated
// silently). All three shapes must now be rejected, with the feature named.
TEST(FeatureEntropy, CategoricalCodeAboveArityThrows) {
  const FeatureSpec spec{"mutation", FeatureKind::kCategorical, 3};
  const std::vector<double> column{0, 1, 3};
  try {
    feature_entropy(column, spec);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    EXPECT_NE(std::string(e.what()).find("mutation"), std::string::npos) << e.what();
  }
}

TEST(FeatureEntropy, CategoricalNegativeCodeThrows) {
  const FeatureSpec spec{"s", FeatureKind::kCategorical, 3};
  const std::vector<double> column{0, -1, 2};
  EXPECT_THROW(feature_entropy(column, spec), NumericError);
}

TEST(FeatureEntropy, CategoricalFractionalCodeThrows) {
  const FeatureSpec spec{"s", FeatureKind::kCategorical, 3};
  const std::vector<double> column{0, 1.5, 2};
  EXPECT_THROW(feature_entropy(column, spec), NumericError);
}

TEST(FeatureEntropy, ContinuousGaussianMatchesClosedForm) {
  Rng rng(1);
  std::vector<double> column(2000);
  for (double& v : column) v = rng.normal(0.0, 2.0);
  const FeatureSpec spec{"g", FeatureKind::kReal, 0};
  const double expected = 0.5 * std::log(2.0 * std::numbers::pi * std::numbers::e) +
                          std::log(2.0);
  EXPECT_NEAR(feature_entropy(column, spec), expected, 0.1);
}

TEST(FeatureEntropy, HigherSpreadGivesHigherEntropy) {
  Rng rng(2);
  std::vector<double> narrow(300), wide(300);
  for (std::size_t i = 0; i < 300; ++i) {
    narrow[i] = rng.normal(0.0, 0.5);
    wide[i] = rng.normal(0.0, 3.0);
  }
  const FeatureSpec spec{"g", FeatureKind::kReal, 0};
  EXPECT_GT(feature_entropy(wide, spec), feature_entropy(narrow, spec));
}

TEST(FeatureEntropy, ContinuousAllMissingThrows) {
  const FeatureSpec spec{"g", FeatureKind::kReal, 0};
  const std::vector<double> column{kMissing, kMissing};
  EXPECT_THROW(feature_entropy(column, spec), std::invalid_argument);
}

TEST(FeatureEntropy, GridConfigAffectsOnlyPrecision) {
  Rng rng(3);
  std::vector<double> column(500);
  for (double& v : column) v = rng.normal();
  const FeatureSpec spec{"g", FeatureKind::kReal, 0};
  const double coarse = feature_entropy(column, spec, {.kde_grid_points = 64});
  const double fine = feature_entropy(column, spec, {.kde_grid_points = 2048});
  EXPECT_NEAR(coarse, fine, 0.05);
}

}  // namespace
}  // namespace frac
