#include "frac/error_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <numbers>

#include "util/rng.hpp"

namespace frac {
namespace {

TEST(GaussianErrorModel, FitsMeanAndSd) {
  Rng rng(1);
  std::vector<double> residuals(5000);
  for (double& r : residuals) r = rng.normal(0.5, 2.0);
  GaussianErrorModel model;
  model.fit(residuals);
  EXPECT_NEAR(model.mean(), 0.5, 0.1);
  EXPECT_NEAR(model.sd(), 2.0, 0.1);
}

TEST(GaussianErrorModel, SurprisalIsNegLogDensity) {
  GaussianErrorModel model;
  model.fit(std::vector<double>{-1, 1, -1, 1});  // mean 0
  const double sd = model.sd();
  const double at_mean = model.surprisal(0.0);
  EXPECT_NEAR(at_mean, std::log(sd) + 0.5 * std::log(2 * std::numbers::pi), 1e-12);
  // One sd away adds exactly 1/2 nat.
  EXPECT_NEAR(model.surprisal(sd) - at_mean, 0.5, 1e-12);
}

TEST(GaussianErrorModel, LargerResidualIsMoreSurprising) {
  GaussianErrorModel model;
  model.fit(std::vector<double>{-0.1, 0.1, 0.0, 0.05});
  EXPECT_GT(model.surprisal(1.0), model.surprisal(0.1));
  EXPECT_GT(model.surprisal(-1.0), model.surprisal(-0.1));
}

TEST(GaussianErrorModel, SdFloorPreventsInfiniteSurprisal) {
  GaussianErrorModel model;
  model.fit(std::vector<double>(100, 0.0), /*min_sd=*/1e-2);
  EXPECT_DOUBLE_EQ(model.sd(), 1e-2);
  EXPECT_TRUE(std::isfinite(model.surprisal(5.0)));
}

TEST(GaussianErrorModel, EmptyResidualsThrow) {
  GaussianErrorModel model;
  EXPECT_THROW(model.fit({}), std::invalid_argument);
}

TEST(GaussianErrorModel, BadFloorThrows) {
  GaussianErrorModel model;
  EXPECT_THROW(model.fit(std::vector<double>{1.0}, 0.0), std::invalid_argument);
}

TEST(KdeErrorModel, TailResidualsMoreSurprisingThanTypical) {
  Rng rng(21);
  std::vector<double> residuals(300);
  for (double& r : residuals) r = rng.normal(0.0, 0.5);
  KdeErrorModel model;
  model.fit(residuals);
  EXPECT_LT(model.surprisal(0.0), model.surprisal(2.0));
  EXPECT_LT(model.surprisal(0.5), model.surprisal(5.0));
}

TEST(KdeErrorModel, CapturesNonGaussianShape) {
  // Bimodal residuals: a Gaussian model calls the trough "typical"; the KDE
  // model knows the modes are where the mass is.
  Rng rng(22);
  std::vector<double> residuals(600);
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    residuals[i] = (i % 2 == 0 ? -2.0 : 2.0) + 0.3 * rng.normal();
  }
  KdeErrorModel kde;
  kde.fit(residuals);
  GaussianErrorModel gauss;
  gauss.fit(residuals);
  // At a mode, the KDE is less surprised than at the trough...
  EXPECT_LT(kde.surprisal(2.0), kde.surprisal(0.0));
  // ...while the Gaussian has it backwards.
  EXPECT_GT(gauss.surprisal(2.0), gauss.surprisal(0.0));
}

TEST(KdeErrorModel, FloorBoundsFarTailSurprisal) {
  KdeErrorModel model;
  model.fit(std::vector<double>{-0.1, 0.0, 0.1}, /*density_floor=*/1e-6);
  const double far = model.surprisal(1e6);
  EXPECT_NEAR(far, -std::log(1e-6), 1e-9);
  EXPECT_TRUE(std::isfinite(far));
}

TEST(KdeErrorModel, Validation) {
  KdeErrorModel model;
  EXPECT_THROW(model.fit({}), std::invalid_argument);
  EXPECT_THROW(model.fit(std::vector<double>{1.0}, 0.0), std::invalid_argument);
}

TEST(KdeErrorModel, SerializationRoundTrip) {
  Rng rng(23);
  std::vector<double> residuals(80);
  for (double& r : residuals) r = rng.normal();
  KdeErrorModel original;
  original.fit(residuals);
  std::stringstream buffer;
  original.save(buffer);
  const KdeErrorModel restored = KdeErrorModel::load(buffer);
  for (const double r : {-2.0, -0.3, 0.0, 0.7, 3.0}) {
    EXPECT_DOUBLE_EQ(restored.surprisal(r), original.surprisal(r));
  }
}

TEST(KdeErrorModel, LoadRejectsCorruptFloor) {
  // fit() guarantees floor > 0; load() must enforce the same invariant so a
  // corrupt model file cannot yield surprisal(-log 0) = inf.
  std::istringstream zero_floor("kdeerr.floor 0\nkdeerr.points 2 0.5 1.5\n");
  EXPECT_THROW(KdeErrorModel::load(zero_floor), std::runtime_error);
  std::istringstream negative_floor("kdeerr.floor -1e-06\nkdeerr.points 2 0.5 1.5\n");
  EXPECT_THROW(KdeErrorModel::load(negative_floor), std::runtime_error);
  std::istringstream nan_floor("kdeerr.floor nan\nkdeerr.points 2 0.5 1.5\n");
  EXPECT_ANY_THROW(KdeErrorModel::load(nan_floor));
}

TEST(KdeErrorModel, LoadRejectsEmptyPointList) {
  std::istringstream no_points("kdeerr.floor 1e-06\nkdeerr.points 0\n");
  EXPECT_THROW(KdeErrorModel::load(no_points), std::runtime_error);
}

TEST(ConfusionErrorModel, PerfectPredictorHasLowSurprisalOnDiagonal) {
  // 30 correct predictions per class.
  std::vector<std::uint32_t> truth, pred;
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (int i = 0; i < 30; ++i) {
      truth.push_back(k);
      pred.push_back(k);
    }
  }
  ConfusionErrorModel model;
  model.fit(truth, pred, 3);
  EXPECT_LT(model.surprisal(0, 0), model.surprisal(1, 0));
  EXPECT_LT(model.surprisal(2, 2), 0.2);
  EXPECT_GT(model.surprisal(0, 2), 2.0);
}

TEST(ConfusionErrorModel, SurprisalIsConditionalOnPrediction) {
  // Predictor that always says 0, truth evenly split:
  // P(true=0 | pred=0) = P(true=1 | pred=0) = 0.5 (after smoothing).
  std::vector<std::uint32_t> truth{0, 1, 0, 1, 0, 1};
  std::vector<std::uint32_t> pred(6, 0);
  ConfusionErrorModel model;
  model.fit(truth, pred, 2);
  EXPECT_NEAR(model.surprisal(0, 0), model.surprisal(1, 0), 1e-12);
  EXPECT_NEAR(model.surprisal(0, 0), std::log(2.0), 1e-12);
}

TEST(ConfusionErrorModel, LaplaceSmoothingHandlesUnseenPredictions) {
  std::vector<std::uint32_t> truth{0, 0};
  std::vector<std::uint32_t> pred{0, 0};
  ConfusionErrorModel model;
  model.fit(truth, pred, 3);
  // Column 2 never predicted: uniform after smoothing.
  EXPECT_NEAR(model.surprisal(0, 2), std::log(3.0), 1e-12);
  EXPECT_TRUE(std::isfinite(model.surprisal(2, 2)));
}

TEST(ConfusionErrorModel, CountsExposeRawMatrix) {
  std::vector<std::uint32_t> truth{0, 1, 1};
  std::vector<std::uint32_t> pred{0, 1, 0};
  ConfusionErrorModel model;
  model.fit(truth, pred, 2);
  EXPECT_EQ(model.count(0, 0), 1u);
  EXPECT_EQ(model.count(1, 0), 1u);
  EXPECT_EQ(model.count(1, 1), 1u);
  EXPECT_EQ(model.count(0, 1), 0u);
}

TEST(ConfusionErrorModel, Validation) {
  ConfusionErrorModel model;
  const std::vector<std::uint32_t> a{0}, b{0, 1};
  EXPECT_THROW(model.fit(a, b, 2), std::invalid_argument);
  EXPECT_THROW(model.fit(a, a, 1), std::invalid_argument);
  const std::vector<std::uint32_t> big{7};
  EXPECT_THROW(model.fit(big, big, 2), std::invalid_argument);
  EXPECT_THROW(model.surprisal(0, 0), std::logic_error);  // before fit
  model.fit(a, a, 2);
  EXPECT_THROW(model.surprisal(5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace frac
