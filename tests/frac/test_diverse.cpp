#include "frac/diverse.hpp"

#include <gtest/gtest.h>

#include "data/expression_generator.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate make_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 50;
  c.modules = 5;
  c.genes_per_module = 8;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 4;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(36, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(10, Label::kNormal, rng),
                            model.sample(10, Label::kAnomaly, rng));
  return rep;
}

TEST(DiversePlan, EveryFeatureIsATarget) {
  Rng rng(1);
  const auto plan = make_diverse_plan(20, 0.5, 1, rng);
  ASSERT_EQ(plan.size(), 20u);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(plan[i].target, i);
}

TEST(DiversePlan, InputsAreSampledAtP) {
  Rng rng(2);
  const auto plan = make_diverse_plan(200, 0.5, 1, rng);
  double total_inputs = 0;
  for (const auto& unit : plan) {
    total_inputs += static_cast<double>(unit.inputs.size());
    for (const std::size_t j : unit.inputs) EXPECT_NE(j, unit.target);
  }
  EXPECT_NEAR(total_inputs / 200.0, 0.5 * 199.0, 5.0);
}

TEST(DiversePlan, NoEmptyInputSetsEvenAtTinyP) {
  Rng rng(3);
  const auto plan = make_diverse_plan(30, 1e-6, 1, rng);
  for (const auto& unit : plan) EXPECT_GE(unit.inputs.size(), 1u);
}

TEST(DiversePlan, MultiplePredictorsPerTarget) {
  Rng rng(4);
  const auto plan = make_diverse_plan(10, 0.5, 3, rng);
  EXPECT_EQ(plan.size(), 30u);
  // Predictors for the same target should (almost surely) differ.
  EXPECT_NE(plan[0].inputs, plan[1].inputs);
  EXPECT_EQ(plan[0].target, plan[1].target);
}

TEST(DiversePlan, Validation) {
  Rng rng(5);
  EXPECT_THROW(make_diverse_plan(10, 0.0, 1, rng), std::invalid_argument);
  EXPECT_THROW(make_diverse_plan(10, 1.1, 1, rng), std::invalid_argument);
  EXPECT_THROW(make_diverse_plan(10, 0.5, 0, rng), std::invalid_argument);
  EXPECT_THROW(make_diverse_plan(1, 0.5, 1, rng), std::invalid_argument);
}

TEST(DiverseFrac, PreservesDetectionAtHalfP) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng(6);
  const ScoredRun diverse = run_diverse_frac(rep, config, 0.5, 1, rng, pool());
  const double full_auc = auc(full.test_scores, rep.test.labels());
  const double diverse_auc = auc(diverse.test_scores, rep.test.labels());
  EXPECT_GT(diverse_auc, full_auc - 0.15);
}

TEST(DiverseFrac, MemoryRoughlyHalvesAtHalfP) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng(7);
  const ScoredRun diverse = run_diverse_frac(rep, config, 0.5, 1, rng, pool());
  const double model_full =
      static_cast<double>(full.resources.peak_bytes - rep.train.bytes());
  const double model_div =
      static_cast<double>(diverse.resources.peak_bytes - rep.train.bytes());
  EXPECT_NEAR(model_div / model_full, 0.5, 0.15);
}

TEST(DiverseFrac, MemberScoresCoverAllFeatures) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(8);
  const MemberScores member = run_diverse_member(rep, config, 0.3, 1, rng, pool());
  EXPECT_EQ(member.feature_ids.size(), rep.train.feature_count());
  EXPECT_EQ(member.per_feature.cols(), rep.train.feature_count());
}

TEST(DiverseFrac, MorePredictorsPerTargetCostsMore) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng1(9), rng2(9);
  const ScoredRun one = run_diverse_frac(rep, config, 0.3, 1, rng1, pool());
  const ScoredRun three = run_diverse_frac(rep, config, 0.3, 3, rng2, pool());
  EXPECT_GT(three.resources.models_retained, one.resources.models_retained);
  EXPECT_GT(three.resources.peak_bytes, one.resources.peak_bytes);
}

}  // namespace
}  // namespace frac
