#include "frac/frac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "linalg/simd.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

/// Small expression replicate with a clear planted signal.
Replicate expression_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 40;
  c.modules = 4;
  c.genes_per_module = 6;
  c.noise_sd = 0.4;
  c.anomaly_mix = 3.0;
  c.disease_modules = 3;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(40, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(15, Label::kNormal, rng),
                            model.sample(15, Label::kAnomaly, rng));
  return rep;
}

/// SNP replicate with a population shift between train and anomalies.
Replicate snp_replicate(std::uint64_t seed = 2) {
  SnpModelConfig c;
  c.features = 40;
  c.block_size = 8;
  c.ld_strength = 0.8;
  c.fst = 0.35;
  c.populations = 2;
  c.seed = seed;
  const SnpModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(0, 60, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(0, 15, Label::kNormal, rng),
                            model.sample(1, 15, Label::kAnomaly, rng));
  return rep;
}

FracConfig expression_config() {
  FracConfig config;
  config.seed = 7;
  return config;
}

FracConfig snp_config() {
  FracConfig config;
  config.predictor.classifier = ClassifierKind::kDecisionTree;
  config.predictor.regressor = RegressorKind::kRegressionTree;
  config.predictor.tree.max_depth = 5;
  config.seed = 7;
  return config;
}

TEST(FracModel, DetectsExpressionAnomalies) {
  const Replicate rep = expression_replicate();
  const ScoredRun run = run_frac(rep, expression_config(), pool());
  EXPECT_GT(auc(run.test_scores, rep.test.labels()), 0.8);
}

TEST(FracModel, DetectsPopulationShiftInSnpData) {
  const Replicate rep = snp_replicate();
  const ScoredRun run = run_frac(rep, snp_config(), pool());
  EXPECT_GT(auc(run.test_scores, rep.test.labels()), 0.85);
}

TEST(FracModel, NoSignalGivesChanceAuc) {
  // Pure-noise features, identically distributed labels: AUC ≈ 0.5.
  Rng rng(3);
  Matrix values(60, 20);
  for (std::size_t r = 0; r < 60; ++r) {
    for (double& v : values.row(r)) v = rng.normal();
  }
  std::vector<Label> labels(60, Label::kNormal);
  const Dataset cohort(Schema::all_real(20), values, labels);
  Replicate rep;
  rep.train = cohort.select_samples({0,  1,  2,  3,  4,  5,  6,  7,  8,  9,
                                     10, 11, 12, 13, 14, 15, 16, 17, 18, 19});
  std::vector<std::size_t> test_rows;
  for (std::size_t i = 20; i < 60; ++i) test_rows.push_back(i);
  rep.test = cohort.select_samples(test_rows);
  // Mark half the test rows "anomalous" even though they are iid normal.
  Matrix test_values = rep.test.values();
  std::vector<Label> test_labels(40);
  for (std::size_t i = 0; i < 40; ++i) {
    test_labels[i] = i % 2 == 0 ? Label::kNormal : Label::kAnomaly;
  }
  rep.test = Dataset(rep.test.schema(), test_values, test_labels);
  const ScoredRun run = run_frac(rep, expression_config(), pool());
  EXPECT_NEAR(auc(run.test_scores, rep.test.labels()), 0.5, 0.2);
}

TEST(FracModel, DefaultPlanIsAllVersusRest) {
  const auto plan = default_plan(4);
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[1].target, 1u);
  EXPECT_EQ(plan[1].inputs, (std::vector<std::size_t>{0, 2, 3}));
}

TEST(FracModel, PlanValidation) {
  const Replicate rep = expression_replicate();
  std::vector<FeaturePlan> bad_target{{999, {0}}};
  EXPECT_THROW(
      FracModel::train_with_plan(rep.train, bad_target, expression_config(), pool()),
      std::invalid_argument);
  std::vector<FeaturePlan> self_input{{0, {0, 1}}};
  EXPECT_THROW(
      FracModel::train_with_plan(rep.train, self_input, expression_config(), pool()),
      std::invalid_argument);
  std::vector<FeaturePlan> bad_input{{0, {999}}};
  EXPECT_THROW(FracModel::train_with_plan(rep.train, bad_input, expression_config(), pool()),
               std::invalid_argument);
}

TEST(FracModel, DeterministicAcrossRuns) {
  const Replicate rep = expression_replicate();
  const FracConfig config = expression_config();
  const FracModel a = FracModel::train(rep.train, config, pool());
  const FracModel b = FracModel::train(rep.train, config, pool());
  const auto sa = a.score(rep.test, pool());
  const auto sb = b.score(rep.test, pool());
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(FracModel, DeterministicAcrossThreadCounts) {
  const Replicate rep = expression_replicate();
  const FracConfig config = expression_config();
  ThreadPool one(1), four(4);
  const auto sa = FracModel::train(rep.train, config, one).score(rep.test, one);
  const auto sb = FracModel::train(rep.train, config, four).score(rep.test, four);
  for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_DOUBLE_EQ(sa[i], sb[i]);
}

TEST(FracModel, ScoresBitIdenticalAcrossSimdLevels) {
  // Golden determinism contract (DESIGN.md §9): the dispatched kernels use
  // one fixed accumulation order, so a full train + score must produce the
  // *same bits* under FRAC_SIMD=scalar and the native level — here crossed
  // with different thread counts for good measure. On machines without AVX2
  // both runs take the scalar path and the test passes trivially.
  const Replicate rep = expression_replicate();
  FracConfig config = expression_config();
  config.continuous_error = ContinuousErrorKind::kKde;  // exercise the KDE kernel too
  const simd::Level original = simd::active_level();
  simd::force_level(simd::Level::kScalar);
  ThreadPool one(1);
  const auto scalar_scores = FracModel::train(rep.train, config, one).score(rep.test, one);
  simd::force_level(simd::Level::kAvx2);
  ThreadPool four(4);
  const auto native_scores = FracModel::train(rep.train, config, four).score(rep.test, four);
  simd::force_level(original);
  ASSERT_EQ(scalar_scores.size(), native_scores.size());
  for (std::size_t i = 0; i < scalar_scores.size(); ++i) {
    EXPECT_EQ(scalar_scores[i], native_scores[i]) << i;  // exact, not near
  }
}

TEST(FracModel, TrainWorkspaceHasNoFoldMultiplier) {
  // Zero-copy invariant: fold models train on views, so the largest unit
  // workspace is one gathered design matrix + target column — not folds+1
  // copies of it.
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  const std::size_t n = rep.train.sample_count();
  const std::size_t f = rep.train.feature_count();
  const std::size_t one_design = n * (f - 1) * sizeof(double) + n * sizeof(double);
  EXPECT_GT(model.report().train_workspace_bytes, 0u);
  EXPECT_LE(model.report().train_workspace_bytes, one_design);
}

TEST(FracModel, MissingTargetContributesZero) {
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  Dataset test = rep.test;
  const auto base = model.score(test, pool());
  // Blank out feature 3 of sample 0: its unit contribution must vanish,
  // and per-feature scores must show NaN there.
  test.mutable_values()(0, 3) = kMissing;
  const auto masked_scores = model.per_feature_scores(test, pool());
  EXPECT_TRUE(is_missing(masked_scores(0, 3)));
  const auto after = model.score(test, pool());
  EXPECT_NE(base[0], after[0]);
  EXPECT_EQ(base[1], after[1]);  // other samples untouched
}

TEST(FracModel, PerFeatureScoresSumToTotal) {
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  const auto totals = model.score(rep.test, pool());
  const Matrix per_feature = model.per_feature_scores(rep.test, pool());
  for (std::size_t r = 0; r < rep.test.sample_count(); ++r) {
    double sum = 0.0;
    for (std::size_t f = 0; f < per_feature.cols(); ++f) {
      if (!is_missing(per_feature(r, f))) sum += per_feature(r, f);
    }
    EXPECT_NEAR(sum, totals[r], 1e-9);
  }
}

TEST(FracModel, SchemaMismatchAtScoringThrows) {
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  const Dataset wrong(Schema::all_real(3), Matrix(2, 3), std::vector<Label>(2, Label::kNormal));
  EXPECT_THROW(model.score(wrong, pool()), std::invalid_argument);
}

TEST(FracModel, TooFewSamplesThrows) {
  const Dataset tiny(Schema::all_real(3), Matrix(1, 3), {Label::kNormal});
  EXPECT_THROW(FracModel::train(tiny, expression_config(), pool()), std::invalid_argument);
}

TEST(FracModel, ResourceReportIsPopulated) {
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  const ResourceReport& report = model.report();
  EXPECT_EQ(model.unit_count(), rep.train.feature_count());
  EXPECT_EQ(report.models_retained, rep.train.feature_count());
  // 5 CV folds + 1 final per unit.
  EXPECT_EQ(report.models_trained, rep.train.feature_count() * 6);
  EXPECT_GT(report.peak_bytes, rep.train.bytes());
  EXPECT_GT(report.cpu_seconds, 0.0);
}

TEST(FracModel, ModelsTrainedCountsActualFoldModelsUnderMissingTargets) {
  // Feature 0 is defined in only 4 of 20 rows, so its unit cross-validates
  // with min(cv_folds, 4) = 4 folds (+1 retained = 5 models), while the fully
  // observed units get 5 folds (+1 = 6). The report must count what was
  // actually trained, not min(cv_folds, dataset rows) + 1 for every unit.
  Rng rng(55);
  Matrix values(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    const double base = rng.normal();
    values(r, 0) = base + 0.1 * rng.normal();
    values(r, 1) = base + 0.1 * rng.normal();
    values(r, 2) = -base + 0.1 * rng.normal();
  }
  for (std::size_t r = 4; r < 20; ++r) values(r, 0) = kMissing;
  const Dataset train(Schema::all_real(3), values, std::vector<Label>(20, Label::kNormal));
  // Explicit plans keep the sparse feature out of the other units' inputs.
  const std::vector<FeaturePlan> plan{{0, {1, 2}}, {1, {2}}, {2, {1}}};
  const FracModel model = FracModel::train_with_plan(train, plan, {}, pool());
  const ResourceReport& report = model.report();
  EXPECT_EQ(report.models_retained, 3u);
  EXPECT_EQ(report.models_trained, (4 + 1) + (5 + 1) + (5 + 1));
}

TEST(FracModel, EntropySubtractionCentersTypicalScores) {
  // For normal test samples the NS terms (−log P − H) should hover near 0:
  // well below the raw surprisal magnitude.
  const Replicate rep = expression_replicate();
  const FracModel model = FracModel::train(rep.train, expression_config(), pool());
  const auto scores = model.score(rep.test, pool());
  double normal_mean = 0.0;
  std::size_t normal_count = 0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (rep.test.label(i) == Label::kNormal) {
      normal_mean += scores[i];
      ++normal_count;
    }
  }
  normal_mean /= static_cast<double>(normal_count);
  // |mean NS per feature| small for in-distribution samples.
  EXPECT_LT(std::abs(normal_mean) / static_cast<double>(model.feature_count()), 1.0);
}

TEST(FracModel, InfluentialInputsComeFromTheUnitPlan) {
  const Replicate rep = expression_replicate();
  std::vector<FeaturePlan> plan{{0, {5, 6, 7}}};
  const FracModel model =
      FracModel::train_with_plan(rep.train, plan, expression_config(), pool());
  for (const std::size_t input : model.influential_inputs(0, 3)) {
    EXPECT_TRUE(input == 5 || input == 6 || input == 7);
  }
}

TEST(FracModel, MultiplePredictorsPerTargetSumInNs) {
  const Replicate rep = expression_replicate();
  std::vector<FeaturePlan> plan{{0, {1, 2}}, {0, {3, 4}}};
  const FracModel model =
      FracModel::train_with_plan(rep.train, plan, expression_config(), pool());
  EXPECT_EQ(model.unit_count(), 2u);
  const Matrix per_feature = model.per_feature_scores(rep.test, pool());
  const auto totals = model.score(rep.test, pool());
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(per_feature(r, 0), totals[r], 1e-9);  // both units on feature 0
  }
}

}  // namespace
}  // namespace frac
