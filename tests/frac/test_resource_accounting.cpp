#include "frac/resource_accounting.hpp"

#include <gtest/gtest.h>

namespace frac {
namespace {

TEST(ResourceReport, SequentialMergeAddsTimeMaxesPeak) {
  ResourceReport a{.cpu_seconds = 1.0, .peak_bytes = 100, .models_trained = 5,
                   .models_retained = 2, .failures = {}};
  const ResourceReport b{.cpu_seconds = 2.0, .peak_bytes = 70, .models_trained = 3,
                         .models_retained = 4, .failures = {}};
  a.merge_sequential(b);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 3.0);
  EXPECT_EQ(a.peak_bytes, 100u);
  EXPECT_EQ(a.models_trained, 8u);
  EXPECT_EQ(a.models_retained, 4u);
}

TEST(ResourceReport, ConcurrentMergeAddsEverything) {
  ResourceReport a{.cpu_seconds = 1.0, .peak_bytes = 100, .models_trained = 5,
                   .models_retained = 2, .failures = {}};
  const ResourceReport b{.cpu_seconds = 2.0, .peak_bytes = 70, .models_trained = 3,
                         .models_retained = 4, .failures = {}};
  a.merge_concurrent(b);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 3.0);
  EXPECT_EQ(a.peak_bytes, 170u);
  EXPECT_EQ(a.models_retained, 6u);
}

TEST(ResourceReport, MergeChainsCompose) {
  ResourceReport total;
  for (int i = 1; i <= 3; ++i) {
    total.merge_sequential({.cpu_seconds = 1.0, .peak_bytes = static_cast<std::size_t>(i * 10),
                            .models_trained = 1, .models_retained = 1, .failures = {}});
  }
  EXPECT_DOUBLE_EQ(total.cpu_seconds, 3.0);
  EXPECT_EQ(total.peak_bytes, 30u);
}

TEST(ResourceReport, FailureCountsAddUnderBothMerges) {
  // Peaks max or add depending on the merge, but failures always add: a
  // demoted unit anywhere in the run must stay visible in the total.
  ResourceReport a, b;
  a.failures[FailureCategory::kNumeric] = 2;
  b.failures[FailureCategory::kNumeric] = 1;
  b.failures[FailureCategory::kInjected] = 4;
  ResourceReport seq = a;
  seq.merge_sequential(b);
  EXPECT_EQ(seq.failures[FailureCategory::kNumeric], 3u);
  EXPECT_EQ(seq.failures[FailureCategory::kInjected], 4u);
  ResourceReport conc = a;
  conc.merge_concurrent(b);
  EXPECT_EQ(conc.failures, seq.failures);
  EXPECT_EQ(conc.failures.total(), 7u);
  EXPECT_EQ(conc.failures.summary(), "numeric:3 injected:4");
}

TEST(ResourceReport, ShardMergeSumsWorkspaceNotMax) {
  // Regression: `frac merge` used to fold shard reports with sequential
  // (max) semantics. Two shard *processes* each peaking at W bytes really
  // cost 2W across the fleet — a silent max under-reports by half.
  ResourceReport a{.cpu_seconds = 1.0, .peak_bytes = 100, .train_workspace_bytes = 64,
                   .models_trained = 5, .models_retained = 2, .failures = {}};
  const ResourceReport b{.cpu_seconds = 2.0, .peak_bytes = 70, .train_workspace_bytes = 48,
                         .models_trained = 3, .models_retained = 4, .failures = {}};
  ResourceReport wrong = a;
  wrong.merge_sequential(b);
  a.merge_shards(b);
  EXPECT_EQ(a.train_workspace_bytes, 112u);
  EXPECT_NE(a.train_workspace_bytes, wrong.train_workspace_bytes);
  EXPECT_EQ(a.peak_bytes, 170u);
  EXPECT_DOUBLE_EQ(a.cpu_seconds, 3.0);
  EXPECT_EQ(a.models_trained, 8u);
  EXPECT_EQ(a.models_retained, 6u);
}

TEST(ResourceReport, ShardMergeAlwaysAddsFailures) {
  ResourceReport a, b;
  a.failures[FailureCategory::kNumeric] = 2;
  b.failures[FailureCategory::kNumeric] = 1;
  b.failures[FailureCategory::kInjected] = 4;
  a.merge_shards(b);
  EXPECT_EQ(a.failures[FailureCategory::kNumeric], 3u);
  EXPECT_EQ(a.failures[FailureCategory::kInjected], 4u);
  EXPECT_EQ(a.failures.total(), 7u);
}

TEST(SvmModelBytes, LibsvmEquivalentFormula) {
  // #SV dense vectors of (dims + 1 coefficient) doubles.
  EXPECT_EQ(svm_model_bytes(10, 100), 10u * 101u * sizeof(double));
  EXPECT_EQ(svm_model_bytes(0, 100), 0u);
}

TEST(SvmModelBytes, QuadraticScalingInFracSetting) {
  // The Table II phenomenon: f models x f dims -> f² scaling.
  const std::size_t f1 = 100, f2 = 200, n = 50;
  const std::size_t mem1 = f1 * svm_model_bytes(n, f1);
  const std::size_t mem2 = f2 * svm_model_bytes(n, f2);
  EXPECT_NEAR(static_cast<double>(mem2) / static_cast<double>(mem1), 4.0, 0.1);
}

}  // namespace
}  // namespace frac
