#include "frac/filtering.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/expression_generator.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate make_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 60;
  c.modules = 5;
  c.genes_per_module = 8;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 4;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(40, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(12, Label::kNormal, rng),
                            model.sample(12, Label::kAnomaly, rng));
  return rep;
}

TEST(Filtering, RandomSelectionKeepsRequestedFraction) {
  const Replicate rep = make_replicate();
  Rng rng(1);
  const auto kept = select_filtered_features(rep.train, FilterMethod::kRandom, 0.25, rng);
  EXPECT_EQ(kept.size(), 15u);
  std::set<std::size_t> unique(kept.begin(), kept.end());
  EXPECT_EQ(unique.size(), kept.size());
  for (const std::size_t k : kept) EXPECT_LT(k, 60u);
  EXPECT_TRUE(std::is_sorted(kept.begin(), kept.end()));
}

TEST(Filtering, AtLeastOneFeatureKept) {
  const Replicate rep = make_replicate();
  Rng rng(2);
  const auto kept = select_filtered_features(rep.train, FilterMethod::kRandom, 1e-9, rng);
  EXPECT_EQ(kept.size(), 1u);
}

TEST(Filtering, InvalidFractionThrows) {
  const Replicate rep = make_replicate();
  Rng rng(3);
  EXPECT_THROW(select_filtered_features(rep.train, FilterMethod::kRandom, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(select_filtered_features(rep.train, FilterMethod::kRandom, 1.5, rng),
               std::invalid_argument);
}

TEST(Filtering, EntropySelectionKeepsHighestEntropyFeatures) {
  // Build a dataset where features 0..4 have much higher spread.
  Rng data_rng(4);
  Matrix values(50, 10);
  for (std::size_t r = 0; r < 50; ++r) {
    for (std::size_t c = 0; c < 10; ++c) {
      values(r, c) = data_rng.normal(0.0, c < 5 ? 10.0 : 0.1);
    }
  }
  const Dataset train(Schema::all_real(10), values, std::vector<Label>(50, Label::kNormal));
  Rng rng(5);
  const auto kept = select_filtered_features(train, FilterMethod::kEntropy, 0.5, rng);
  EXPECT_EQ(kept, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Filtering, FullFilterPreservesMostAccuracyAtModerateFraction) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(6);
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng2(7);
  const ScoredRun filtered =
      run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.5, rng2, pool());
  const double full_auc = auc(full.test_scores, rep.test.labels());
  const double filtered_auc = auc(filtered.test_scores, rep.test.labels());
  EXPECT_GT(filtered_auc, full_auc - 0.2);
}

TEST(Filtering, FullFilterShrinksTimeAndMemory) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng(8);
  const ScoredRun filtered =
      run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.2, rng, pool());
  EXPECT_LT(filtered.resources.peak_bytes, full.resources.peak_bytes / 4);
  EXPECT_LT(filtered.resources.models_retained, full.resources.models_retained);
}

TEST(Filtering, PartialFilterUsesAllInputsButFewerTargets) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(9);
  const ScoredRun partial =
      run_partial_filtered_frac(rep, config, FilterMethod::kRandom, 0.2, rng, pool());
  EXPECT_EQ(partial.resources.models_retained, 12u);  // 20% of 60
  EXPECT_EQ(partial.test_scores.size(), rep.test.sample_count());
}

TEST(Filtering, PartialFilterMemoryBetweenFullFilterAndFull) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng1(10), rng2(10);  // same kept features for a clean comparison
  const ScoredRun full_filtered =
      run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.2, rng1, pool());
  const ScoredRun partial =
      run_partial_filtered_frac(rep, config, FilterMethod::kRandom, 0.2, rng2, pool());
  EXPECT_GT(partial.resources.peak_bytes, full_filtered.resources.peak_bytes);
  EXPECT_LT(partial.resources.peak_bytes, full.resources.peak_bytes);
}

TEST(Filtering, MemberScoresMapBackToOriginalFeatureIds) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(11);
  const MemberScores member =
      run_full_filtered_member(rep, config, FilterMethod::kRandom, 0.3, rng, pool());
  EXPECT_EQ(member.per_feature.rows(), rep.test.sample_count());
  EXPECT_EQ(member.per_feature.cols(), member.feature_ids.size());
  EXPECT_EQ(member.feature_ids.size(), 18u);  // 30% of 60
  for (const std::size_t id : member.feature_ids) EXPECT_LT(id, 60u);
}

TEST(Filtering, DeterministicGivenSameRngState) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng1(12), rng2(12);
  const auto a = run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.3, rng1, pool());
  const auto b = run_full_filtered_frac(rep, config, FilterMethod::kRandom, 0.3, rng2, pool());
  EXPECT_EQ(a.test_scores, b.test_scores);
}

}  // namespace
}  // namespace frac
