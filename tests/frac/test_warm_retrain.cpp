// FracModel warm retraining: retained dual state (FracConfig::retain_duals),
// the optional `dual_state` archive section (format v3), and
// FracModel::warm_retrain — the warm path must reach AUC parity with a cold
// retrain, and models without the option must stay exactly as before.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "ml/metrics.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(4);
  return p;
}

ExpressionModelConfig cohort_config(double latent_shift = 0.0) {
  ExpressionModelConfig c;
  c.features = 24;
  c.modules = 3;
  c.genes_per_module = 6;
  c.disease_modules = 1;
  c.seed = 81;
  c.latent_shift = latent_shift;
  return c;
}

TEST(WarmRetrain, RetainDualsPopulatesAndPersistsDualState) {
  const ExpressionModel gen(cohort_config());
  Rng rng(181);
  const Dataset train = gen.sample(30, Label::kNormal, rng);

  FracConfig config;
  config.retain_duals = true;
  const FracModel model = FracModel::train(train, config, pool());
  ASSERT_TRUE(model.has_dual_state());
  std::size_t nonempty = 0;
  for (std::size_t u = 0; u < model.unit_count(); ++u) {
    nonempty += !model.unit_duals(u).empty();
  }
  EXPECT_GT(nonempty, 0u) << "SVM-backed units must retain their duals";

  // Round trip: the dual_state section survives binary serialization bit for
  // bit, and the model still scores identically.
  const std::string path = ::testing::TempDir() + "warm_retrain.fracmdl";
  model.save_file(path, ModelFormat::kBinary);
  const FracModel restored = FracModel::load_file(path);
  std::remove(path.c_str());
  ASSERT_TRUE(restored.has_dual_state());
  for (std::size_t u = 0; u < model.unit_count(); ++u) {
    const auto original = model.unit_duals(u);
    const auto loaded = restored.unit_duals(u);
    ASSERT_EQ(loaded.size(), original.size()) << "unit " << u;
    for (std::size_t i = 0; i < original.size(); ++i) {
      ASSERT_EQ(loaded[i], original[i]) << "unit " << u << " dual " << i;
    }
  }
  const Dataset test = gen.sample(10, Label::kAnomaly, rng);
  EXPECT_EQ(restored.score(test, pool()), model.score(test, pool()));
}

TEST(WarmRetrain, DefaultConfigRetainsNothingAndStaysV2) {
  const ExpressionModel gen(cohort_config());
  Rng rng(182);
  const Dataset train = gen.sample(25, Label::kNormal, rng);
  const FracModel model = FracModel::train(train, {}, pool());
  EXPECT_FALSE(model.has_dual_state());

  const std::string path = ::testing::TempDir() + "no_duals.fracmdl";
  model.save_file(path, ModelFormat::kBinary);
  const FracModel restored = FracModel::load_file(path);
  std::remove(path.c_str());
  EXPECT_FALSE(restored.has_dual_state());
  ThreadPool one(1);
  EXPECT_THROW((void)restored.warm_retrain(train, {}, one), std::invalid_argument)
      << "warm_retrain must refuse a model without dual state";
}

TEST(WarmRetrain, WarmMatchesColdAucOnAShiftedCohort) {
  // The streaming scenario: a model trained pre-shift is warm-retrained on
  // post-shift data. Warm and cold retrains on the same rows must agree on
  // anomaly ranking (AUC parity within 1e-3) — the warm seed accelerates the
  // solver, it must not change what the model learns.
  const ExpressionModel gen(cohort_config());
  Rng rng(183);
  const Dataset train_pre = gen.sample(30, Label::kNormal, rng);

  const ExpressionModel shifted_gen(cohort_config(/*latent_shift=*/1.0));
  Rng shifted_rng(283);
  const Dataset train_post = shifted_gen.sample(30, Label::kNormal, shifted_rng);
  const Dataset test = shifted_gen.sample_cohort(20, 20, shifted_rng);

  FracConfig config;
  config.retain_duals = true;
  const FracModel base = FracModel::train(train_pre, config, pool());
  ASSERT_TRUE(base.has_dual_state());

  const FracModel warm = base.warm_retrain(train_post, config, pool());
  const FracModel cold = FracModel::train(train_post, config, pool());
  ASSERT_TRUE(warm.has_dual_state()) << "a warm retrain re-arms the next retrain";
  ASSERT_EQ(warm.unit_count(), cold.unit_count());

  // At this cohort size AUC moves in steps of 1/400, so parity here means
  // "within a couple of rank flips"; bench/stream_drift enforces the tight
  // 1e-3 gate at full scale.
  const double auc_warm = auc(warm.score(test, pool()), test.labels());
  const double auc_cold = auc(cold.score(test, pool()), test.labels());
  EXPECT_NEAR(auc_warm, auc_cold, 0.02);
}

TEST(WarmRetrain, RejectsSchemaMismatch) {
  const ExpressionModel gen(cohort_config());
  Rng rng(184);
  const Dataset train = gen.sample(25, Label::kNormal, rng);
  FracConfig config;
  config.retain_duals = true;
  const FracModel model = FracModel::train(train, config, pool());

  ExpressionModelConfig other = cohort_config();
  other.features = 32;
  other.modules = 4;
  const ExpressionModel other_gen(other);
  Rng other_rng(284);
  const Dataset mismatched = other_gen.sample(25, Label::kNormal, other_rng);
  EXPECT_THROW((void)model.warm_retrain(mismatched, config, pool()), std::invalid_argument);
}

}  // namespace
}  // namespace frac
