#include "frac/preprojection.hpp"

#include <gtest/gtest.h>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate expression_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 80;
  c.modules = 6;
  c.genes_per_module = 10;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 5;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(40, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(12, Label::kNormal, rng),
                            model.sample(12, Label::kAnomaly, rng));
  return rep;
}

Replicate snp_replicate(std::uint64_t seed = 2) {
  SnpModelConfig c;
  c.features = 60;
  c.block_size = 10;
  c.ld_strength = 0.8;
  c.fst = 0.35;
  c.populations = 2;
  c.seed = seed;
  const SnpModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(0, 50, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(0, 12, Label::kNormal, rng),
                            model.sample(1, 12, Label::kAnomaly, rng));
  return rep;
}

TEST(JlFrac, PreservesDetectionOnExpressionData) {
  const Replicate rep = expression_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  JlPipelineConfig jl;
  jl.output_dim = 40;
  jl.seed = 5;
  const ScoredRun projected = run_jl_frac(rep, config, jl, pool());
  const double full_auc = auc(full.test_scores, rep.test.labels());
  const double jl_auc = auc(projected.test_scores, rep.test.labels());
  EXPECT_GT(jl_auc, full_auc - 0.2);
}

TEST(JlFrac, MixedSnpDataGoesThroughOneHot) {
  const Replicate rep = snp_replicate();
  FracConfig config;
  config.predictor.regressor = RegressorKind::kLinearSvr;  // projected space is real
  JlPipelineConfig jl;
  jl.output_dim = 32;
  const ScoredRun run = run_jl_frac(rep, config, jl, pool());
  EXPECT_EQ(run.test_scores.size(), rep.test.sample_count());
  // Population-shift signal survives projection with the linear model.
  EXPECT_GT(auc(run.test_scores, rep.test.labels()), 0.7);
}

TEST(JlFrac, ReducesModelCountToProjectedDim) {
  const Replicate rep = expression_replicate();
  const FracConfig config;
  JlPipelineConfig jl;
  jl.output_dim = 16;
  const ScoredRun run = run_jl_frac(rep, config, jl, pool());
  EXPECT_EQ(run.resources.models_retained, 16u);
}

TEST(JlFrac, MemoryShrinksWithProjectedDim) {
  const Replicate rep = expression_replicate();
  const FracConfig config;
  JlPipelineConfig small_jl, large_jl;
  small_jl.output_dim = 8;
  large_jl.output_dim = 64;
  const ScoredRun small_run = run_jl_frac(rep, config, small_jl, pool());
  const ScoredRun large_run = run_jl_frac(rep, config, large_jl, pool());
  EXPECT_LT(small_run.resources.peak_bytes, large_run.resources.peak_bytes);
}

TEST(JlFrac, DifferentSeedsGiveDifferentScores) {
  const Replicate rep = expression_replicate();
  const FracConfig config;
  JlPipelineConfig a, b;
  a.output_dim = b.output_dim = 24;
  a.seed = 1;
  b.seed = 2;
  const ScoredRun ra = run_jl_frac(rep, config, a, pool());
  const ScoredRun rb = run_jl_frac(rep, config, b, pool());
  EXPECT_NE(ra.test_scores, rb.test_scores);
}

TEST(JlFrac, TreeModelInProjectedSpaceRuns) {
  // The paper's SNP setup: trees in the projected space (the ablation that
  // explains Table V's weak JL rows). It must run, even if weaker.
  const Replicate rep = snp_replicate();
  FracConfig config;
  config.predictor.regressor = RegressorKind::kRegressionTree;
  config.predictor.tree.max_depth = 4;
  JlPipelineConfig jl;
  jl.output_dim = 16;
  const ScoredRun run = run_jl_frac(rep, config, jl, pool());
  EXPECT_EQ(run.test_scores.size(), rep.test.sample_count());
}

}  // namespace
}  // namespace frac
