// Round-trip tests: trained models must score identically after
// save() -> load(), for both expression (SVR) and SNP (tree) pipelines.
#include <gtest/gtest.h>

#include <algorithm>

#include <fstream>
#include <sstream>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "frac/frac.hpp"
#include "ml/svm/linear_svr.hpp"
#include "ml/tree/decision_tree.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

TEST(Serialization, LinearSvrRoundTrip) {
  Rng rng(1);
  Matrix x(40, 5);
  std::vector<double> y(40);
  for (std::size_t i = 0; i < 40; ++i) {
    for (double& v : x.row(i)) v = rng.normal();
    y[i] = x(i, 0) - x(i, 3) + 0.1 * rng.normal();
  }
  LinearSvr original;
  original.fit(x, y, {});
  std::stringstream buffer;
  original.save(buffer);
  const LinearSvr restored = LinearSvr::load(buffer);
  EXPECT_TRUE(std::ranges::equal(restored.weights(), original.weights()));
  EXPECT_EQ(restored.bias(), original.bias());
  EXPECT_EQ(restored.support_vector_count(), original.support_vector_count());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

TEST(Serialization, DecisionTreeRoundTrip) {
  Rng rng(2);
  Matrix x(80, 3);
  std::vector<double> y(80);
  for (std::size_t i = 0; i < 80; ++i) {
    x(i, 0) = static_cast<double>(i % 3);
    x(i, 1) = rng.normal();
    x(i, 2) = rng.normal();
    y[i] = (i % 3 == 1) ? 1.0 : 0.0;
  }
  const std::vector<std::uint32_t> arities{3, 0, 0};
  DecisionTree original;
  original.fit(x, y, arities, TreeTask::kClassification, 2, {});
  std::stringstream buffer;
  original.save(buffer);
  const DecisionTree restored = DecisionTree::load(buffer);
  EXPECT_EQ(restored.node_count(), original.node_count());
  EXPECT_EQ(restored.depth(), original.depth());
  EXPECT_EQ(restored.task(), original.task());
  for (std::size_t i = 0; i < 80; ++i) {
    EXPECT_EQ(restored.predict(x.row(i)), original.predict(x.row(i)));
  }
}

TEST(Serialization, FracModelExpressionRoundTrip) {
  ExpressionModelConfig c;
  c.features = 30;
  c.modules = 3;
  c.genes_per_module = 6;
  c.anomaly_mix = 2.0;
  c.disease_modules = 2;
  c.seed = 3;
  const ExpressionModel model(c);
  Rng rng(103);
  const Dataset train = model.sample(30, Label::kNormal, rng);
  const Dataset test = concat_samples(model.sample(5, Label::kNormal, rng),
                                      model.sample(5, Label::kAnomaly, rng));
  const FracModel original = FracModel::train(train, {}, pool());
  std::stringstream buffer;
  original.save(buffer);
  const FracModel restored = FracModel::load(buffer);

  EXPECT_EQ(restored.feature_count(), original.feature_count());
  EXPECT_EQ(restored.unit_count(), original.unit_count());
  const auto a = original.score(test, pool());
  const auto b = restored.score(test, pool());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Serialization, FracModelSnpRoundTrip) {
  SnpModelConfig c;
  c.features = 24;
  c.block_size = 6;
  c.fst = 0.2;
  c.seed = 4;
  const SnpModel model(c);
  Rng rng(104);
  const Dataset train = model.sample(0, 40, Label::kNormal, rng);
  const Dataset test = model.sample(1, 10, Label::kAnomaly, rng);
  FracConfig config;
  config.predictor.classifier = ClassifierKind::kDecisionTree;
  const FracModel original = FracModel::train(train, config, pool());
  std::stringstream buffer;
  original.save(buffer);
  const FracModel restored = FracModel::load(buffer);
  const auto a = original.score(test, pool());
  const auto b = restored.score(test, pool());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Serialization, PerFeatureScoresSurviveRoundTrip) {
  ExpressionModelConfig c;
  c.features = 20;
  c.modules = 2;
  c.genes_per_module = 5;
  c.disease_modules = 1;
  c.seed = 5;
  const ExpressionModel model(c);
  Rng rng(105);
  const Dataset train = model.sample(25, Label::kNormal, rng);
  const Dataset test = model.sample(4, Label::kAnomaly, rng);
  const FracModel original = FracModel::train(train, {}, pool());
  std::stringstream buffer;
  original.save(buffer);
  const FracModel restored = FracModel::load(buffer);
  const Matrix a = original.per_feature_scores(test, pool());
  const Matrix b = restored.per_feature_scores(test, pool());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t f = 0; f < a.cols(); ++f) {
      if (is_missing(a(r, f))) EXPECT_TRUE(is_missing(b(r, f)));
      else EXPECT_DOUBLE_EQ(a(r, f), b(r, f));
    }
  }
}

TEST(Serialization, FileRoundTrip) {
  ExpressionModelConfig c;
  c.features = 12;
  c.modules = 2;
  c.genes_per_module = 4;
  c.disease_modules = 1;
  c.seed = 6;
  const ExpressionModel model(c);
  Rng rng(106);
  const Dataset train = model.sample(20, Label::kNormal, rng);
  const FracModel original = FracModel::train(train, {}, pool());
  const std::string path = testing::TempDir() + "/frac_model_test.txt";
  original.save_file(path);
  const FracModel restored = FracModel::load_file(path);
  EXPECT_EQ(restored.unit_count(), original.unit_count());
}

TEST(Serialization, SpacedFeatureNamesRoundTrip) {
  Schema schema;
  schema.add({"gene A (probe 1)", FeatureKind::kReal, 0});
  schema.add({"100% methylated", FeatureKind::kReal, 0});
  schema.add({"plain", FeatureKind::kReal, 0});
  Rng rng(108);
  Matrix values(20, 3);
  for (std::size_t r = 0; r < 20; ++r) {
    for (double& v : values.row(r)) v = rng.normal();
  }
  const Dataset train(schema, values, std::vector<Label>(20, Label::kNormal));
  const FracModel original = FracModel::train(train, {}, pool());
  std::stringstream buffer;
  original.save(buffer);
  const FracModel restored = FracModel::load(buffer);
  const auto a = original.score(train, pool());
  const auto b = restored.score(train, pool());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Serialization, KdeErrorModelFracRoundTrip) {
  ExpressionModelConfig c;
  c.features = 16;
  c.modules = 2;
  c.genes_per_module = 5;
  c.disease_modules = 1;
  c.seed = 9;
  const ExpressionModel model(c);
  Rng rng(109);
  const Dataset train = model.sample(24, Label::kNormal, rng);
  const Dataset test = model.sample(5, Label::kAnomaly, rng);
  FracConfig config;
  config.continuous_error = ContinuousErrorKind::kKde;
  const FracModel original = FracModel::train(train, config, pool());
  std::stringstream buffer;
  original.save(buffer);
  const FracModel restored = FracModel::load(buffer);
  const auto a = original.score(test, pool());
  const auto b = restored.score(test, pool());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Serialization, SaveFailsLoudlyOnBadStream) {
  ExpressionModelConfig c;
  c.features = 8;
  c.modules = 2;
  c.genes_per_module = 3;
  c.disease_modules = 1;
  c.seed = 12;
  const ExpressionModel gen(c);
  Rng rng(112);
  const Dataset train = gen.sample(16, Label::kNormal, rng);
  const FracModel model = FracModel::train(train, {}, pool());
  // A stream already in a failed state must not produce a silently truncated
  // model file.
  std::ostringstream out;
  out.setstate(std::ios::badbit);
  EXPECT_THROW(model.save(out), std::runtime_error);
  // Unopenable and unwritable paths fail loudly too. /dev/full reports
  // ENOSPC on flush, exercising the write-failure branch.
  EXPECT_THROW(model.save_file("/nonexistent-dir/model.txt"), std::runtime_error);
  std::ifstream dev_full("/dev/full");
  if (dev_full.good()) {
    EXPECT_THROW(model.save_file("/dev/full"), std::runtime_error);
  }
}

TEST(Serialization, CorruptStreamFailsLoudly) {
  std::istringstream garbage("not a model\n");
  EXPECT_THROW(FracModel::load(garbage), std::runtime_error);
  std::istringstream wrong_version("frac.version 99\n");
  EXPECT_THROW(FracModel::load(wrong_version), std::runtime_error);
  EXPECT_THROW(FracModel::load_file("/nonexistent/model.txt"), std::runtime_error);
}

TEST(Serialization, TruncatedModelFailsLoudly) {
  ExpressionModelConfig c;
  c.features = 12;
  c.modules = 2;
  c.genes_per_module = 4;
  c.disease_modules = 1;
  c.seed = 7;
  const ExpressionModel model(c);
  Rng rng(107);
  const Dataset train = model.sample(20, Label::kNormal, rng);
  const FracModel original = FracModel::train(train, {}, pool());
  std::stringstream buffer;
  original.save(buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::istringstream truncated(text);
  EXPECT_THROW(FracModel::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace frac
