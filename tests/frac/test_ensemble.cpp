#include "frac/ensemble.hpp"

#include <gtest/gtest.h>

#include "data/expression_generator.hpp"
#include "ml/metrics.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

Replicate make_replicate(std::uint64_t seed = 1) {
  ExpressionModelConfig c;
  c.features = 60;
  c.modules = 6;
  c.genes_per_module = 8;
  c.noise_sd = 0.4;
  c.anomaly_mix = 2.0;
  c.disease_modules = 5;
  c.seed = seed;
  const ExpressionModel model(c);
  Rng rng(seed + 100);
  Replicate rep;
  rep.train = model.sample(40, Label::kNormal, rng);
  rep.test = concat_samples(model.sample(10, Label::kNormal, rng),
                            model.sample(10, Label::kAnomaly, rng));
  return rep;
}

MemberScores make_member(std::size_t n, const std::vector<std::size_t>& ids,
                         const std::vector<std::vector<double>>& rows) {
  MemberScores m;
  m.feature_ids = ids;
  m.per_feature = Matrix(n, ids.size());
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < ids.size(); ++c) m.per_feature(r, c) = rows[r][c];
  }
  return m;
}

TEST(CombineMedian, SingleMemberIsPlainSum) {
  const auto member = make_member(2, {0, 2}, {{1.0, 2.0}, {3.0, 4.0}});
  const auto scores = combine_median(std::vector<MemberScores>{member}, 5);
  EXPECT_DOUBLE_EQ(scores[0], 3.0);
  EXPECT_DOUBLE_EQ(scores[1], 7.0);
}

TEST(CombineMedian, MedianTakenPerFeatureAcrossMembers) {
  // Three members all scoring feature 0: median of {1, 10, 100} = 10.
  const auto a = make_member(1, {0}, {{1.0}});
  const auto b = make_member(1, {0}, {{10.0}});
  const auto c = make_member(1, {0}, {{100.0}});
  const auto scores = combine_median(std::vector<MemberScores>{a, b, c}, 3);
  EXPECT_DOUBLE_EQ(scores[0], 10.0);
}

TEST(CombineMedian, DisjointMembersSum) {
  const auto a = make_member(1, {0}, {{5.0}});
  const auto b = make_member(1, {1}, {{7.0}});
  const auto scores = combine_median(std::vector<MemberScores>{a, b}, 2);
  EXPECT_DOUBLE_EQ(scores[0], 12.0);
}

TEST(CombineMedian, NaNEntriesAreSkippedNotZeroed) {
  // Member b has no score (NaN) for feature 0: median over {4} alone.
  const auto a = make_member(1, {0}, {{4.0}});
  auto b = make_member(1, {0}, {{0.0}});
  b.per_feature(0, 0) = kMissing;
  const auto scores = combine_median(std::vector<MemberScores>{a, b}, 1);
  EXPECT_DOUBLE_EQ(scores[0], 4.0);
}

TEST(CombineMedian, Validation) {
  const auto a = make_member(1, {0}, {{1.0}});
  const auto b = make_member(2, {0}, {{1.0}, {2.0}});
  EXPECT_THROW(combine_median(std::vector<MemberScores>{a, b}, 1), std::invalid_argument);
  EXPECT_THROW(combine_median(std::vector<MemberScores>{}, 1), std::invalid_argument);
  const auto oob = make_member(1, {9}, {{1.0}});
  EXPECT_THROW(combine_median(std::vector<MemberScores>{oob}, 2), std::invalid_argument);
}

TEST(FilterEnsemble, PreservesDetection) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  const ScoredRun full = run_frac(rep, config, pool());
  Rng rng(2);
  const ScoredRun ensemble = run_random_filter_ensemble(rep, config, 0.2, 6, rng, pool());
  const double full_auc = auc(full.test_scores, rep.test.labels());
  const double ens_auc = auc(ensemble.test_scores, rep.test.labels());
  EXPECT_GT(ens_auc, full_auc - 0.15);
}

TEST(FilterEnsemble, PeakMemoryIsMemberLevelNotSum) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng1(3), rng2(3);
  const ScoredRun one = run_random_filter_ensemble(rep, config, 0.2, 1, rng1, pool());
  const ScoredRun ten = run_random_filter_ensemble(rep, config, 0.2, 10, rng2, pool());
  // Sequential members: the ten-member peak is bounded by the largest
  // single member, not ten of them.
  EXPECT_LT(ten.resources.peak_bytes, one.resources.peak_bytes * 3);
  EXPECT_GT(ten.resources.cpu_seconds, one.resources.cpu_seconds);
}

TEST(FilterEnsemble, StabilizesAcrossSeeds) {
  // The paper's motivation for ensembles: single small random filters are
  // unstable; ensembles shrink the spread. Compare AUC ranges over seeds.
  const Replicate rep = make_replicate();
  const FracConfig config;
  std::vector<double> single_aucs, ensemble_aucs;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng_single(seed * 2 + 1);
    const ScoredRun single = run_random_filter_ensemble(rep, config, 0.1, 1, rng_single, pool());
    single_aucs.push_back(auc(single.test_scores, rep.test.labels()));
    Rng rng_ens(seed * 2 + 2);
    const ScoredRun ens = run_random_filter_ensemble(rep, config, 0.1, 7, rng_ens, pool());
    ensemble_aucs.push_back(auc(ens.test_scores, rep.test.labels()));
  }
  const auto range = [](const std::vector<double>& v) {
    return *std::max_element(v.begin(), v.end()) - *std::min_element(v.begin(), v.end());
  };
  EXPECT_LE(range(ensemble_aucs), range(single_aucs) + 0.03);
}

TEST(DiverseEnsemble, PeakMemoryAccumulatesMembers) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng1(4), rng2(4);
  const ScoredRun one = run_diverse_ensemble(rep, config, 0.1, 1, rng1, pool());
  const ScoredRun five = run_diverse_ensemble(rep, config, 0.1, 5, rng2, pool());
  EXPECT_GT(five.resources.peak_bytes, one.resources.peak_bytes * 3);
}

TEST(DiverseEnsemble, ScoresHaveTestSize) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(5);
  const ScoredRun ens = run_diverse_ensemble(rep, config, 0.2, 3, rng, pool());
  EXPECT_EQ(ens.test_scores.size(), rep.test.sample_count());
}

TEST(Ensembles, ZeroMembersThrows) {
  const Replicate rep = make_replicate();
  const FracConfig config;
  Rng rng(6);
  EXPECT_THROW(run_random_filter_ensemble(rep, config, 0.2, 0, rng, pool()),
               std::invalid_argument);
  EXPECT_THROW(run_diverse_ensemble(rep, config, 0.2, 0, rng, pool()), std::invalid_argument);
}

}  // namespace
}  // namespace frac
