#include "expt/registry.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace frac {
namespace {

TEST(Registry, HasAllEightPaperCohorts) {
  const auto& cohorts = paper_cohorts();
  ASSERT_EQ(cohorts.size(), 8u);
  EXPECT_EQ(cohorts[0].name, "breast.basal");
  EXPECT_EQ(cohorts[7].name, "schizophrenia");
}

TEST(Registry, TableGridExcludesSchizophrenia) {
  const auto grid = table_grid_cohorts();
  EXPECT_EQ(grid.size(), 7u);
  for (const auto& spec : grid) EXPECT_NE(spec.name, "schizophrenia");
}

TEST(Registry, SampleCountsMatchTableOne) {
  const CohortSpec& biomarkers = cohort_by_name("biomarkers");
  EXPECT_EQ(biomarkers.normal_samples, 74u);
  EXPECT_EQ(biomarkers.anomaly_samples, 53u);
  EXPECT_EQ(biomarkers.paper_features, 19739u);
  const CohortSpec& autism = cohort_by_name("autism");
  EXPECT_EQ(autism.normal_samples, 317u);
  EXPECT_EQ(autism.anomaly_samples, 228u);
  EXPECT_EQ(autism.kind, CohortKind::kSnp);
}

TEST(Registry, UnknownCohortThrows) {
  EXPECT_THROW(cohort_by_name("nope"), std::invalid_argument);
}

TEST(Registry, MakeCohortHasExpectedShape) {
  const CohortSpec& spec = cohort_by_name("breast.basal");
  const Dataset cohort = make_cohort(spec);
  EXPECT_EQ(cohort.sample_count(), spec.normal_samples + spec.anomaly_samples);
  EXPECT_EQ(cohort.feature_count(), spec.scaled_features());
  EXPECT_EQ(cohort.anomaly_count(), spec.anomaly_samples);
}

TEST(Registry, MakeCohortRejectsConfoundedSpec) {
  EXPECT_THROW(make_cohort(cohort_by_name("schizophrenia")), std::invalid_argument);
}

TEST(Registry, ConfoundedReplicateDesign) {
  const CohortSpec& spec = cohort_by_name("schizophrenia");
  const Replicate rep = make_confounded_replicate(spec);
  EXPECT_EQ(rep.train.sample_count(), spec.normal_samples);
  EXPECT_EQ(rep.train.anomaly_count(), 0u);
  EXPECT_EQ(rep.test.sample_count(), spec.test_normal_samples + spec.anomaly_samples);
  EXPECT_EQ(rep.test.anomaly_count(), spec.anomaly_samples);
}

TEST(Registry, ReplicatesFollowPaperProtocol) {
  const CohortSpec& spec = cohort_by_name("breast.basal");
  const auto reps = make_cohort_replicates(spec, 3);
  ASSERT_EQ(reps.size(), 3u);
  for (const Replicate& rep : reps) {
    EXPECT_EQ(rep.train.anomaly_count(), 0u);
    // 2/3 of 56 normals = 37 in train; 19 normals + 19 anomalies in test.
    EXPECT_EQ(rep.train.sample_count(), 37u);
    EXPECT_EQ(rep.test.anomaly_count(), 19u);
  }
}

TEST(Registry, ConfoundedCohortYieldsSingleReplicate) {
  const auto reps = make_cohort_replicates(cohort_by_name("schizophrenia"), 5);
  EXPECT_EQ(reps.size(), 1u);
}

TEST(Registry, PaperConfigSelectsModelsByDataKind) {
  const FracConfig expr = paper_frac_config(cohort_by_name("biomarkers"));
  EXPECT_EQ(expr.predictor.regressor, RegressorKind::kLinearSvr);
  const FracConfig snp = paper_frac_config(cohort_by_name("autism"));
  EXPECT_EQ(snp.predictor.classifier, ClassifierKind::kDecisionTree);
  EXPECT_EQ(snp.predictor.regressor, RegressorKind::kRegressionTree);
}

TEST(Registry, BenchScaleRescalesFeatures) {
  const CohortSpec& spec = cohort_by_name("breast.basal");
  const std::size_t base = spec.scaled_features();
  setenv("FRAC_BENCH_SCALE", "0.5", 1);
  const std::size_t halved = spec.scaled_features();
  unsetenv("FRAC_BENCH_SCALE");
  EXPECT_NEAR(static_cast<double>(halved), static_cast<double>(base) / 2.0, 1.0);
}

TEST(Registry, ScaledCohortStaysInternallyConsistent) {
  setenv("FRAC_BENCH_SCALE", "0.05", 1);
  const Dataset tiny = make_cohort(cohort_by_name("biomarkers"));
  unsetenv("FRAC_BENCH_SCALE");
  EXPECT_GE(tiny.feature_count(), 8u);
  EXPECT_NO_THROW(tiny.validate());
}

TEST(Registry, SnpCohortsValidateAsTernary) {
  const Dataset autism = make_cohort(cohort_by_name("autism"));
  EXPECT_NO_THROW(autism.validate());
  EXPECT_TRUE(autism.schema().is_categorical(0));
  EXPECT_EQ(autism.schema()[0].arity, 3u);
}

}  // namespace
}  // namespace frac
