#include "expt/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(2);
  return p;
}

std::vector<Replicate> fake_replicates(std::size_t count) {
  // Tiny replicates: 4 train normals, 2 test samples (1 normal, 1 anomaly).
  std::vector<Replicate> reps;
  for (std::size_t r = 0; r < count; ++r) {
    Matrix train_values(4, 2);
    Matrix test_values(2, 2);
    reps.push_back({Dataset(Schema::all_real(2), train_values,
                            std::vector<Label>(4, Label::kNormal)),
                    Dataset(Schema::all_real(2), test_values,
                            {Label::kNormal, Label::kAnomaly})});
  }
  return reps;
}

/// A method whose scores are controlled per replicate (anomaly always wins),
/// with fixed resource usage for fraction math.
MethodFn fixed_method(double cpu, double bytes) {
  return [cpu, bytes](const Replicate& rep, Rng&) {
    ScoredRun run;
    run.test_scores.resize(rep.test.sample_count());
    for (std::size_t i = 0; i < run.test_scores.size(); ++i) {
      run.test_scores[i] = rep.test.label(i) == Label::kAnomaly ? 1.0 : 0.0;
    }
    run.resources.cpu_seconds = cpu;
    run.resources.peak_bytes = static_cast<std::size_t>(bytes);
    return run;
  };
}

TEST(Runner, EvaluatesEveryReplicate) {
  const auto reps = fake_replicates(4);
  const PerReplicate out = evaluate_method(reps, fixed_method(2.0, 100.0), 1, pool());
  EXPECT_EQ(out.replicate_count(), 4u);
  for (const double a : out.auc) EXPECT_DOUBLE_EQ(a, 1.0);
  for (const double t : out.cpu_seconds) EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(Runner, MethodRngsDifferAcrossReplicates) {
  const auto reps = fake_replicates(3);
  // Replicates run concurrently, so the shared accumulator needs a lock and
  // the draws arrive in no particular order.
  std::mutex mu;
  std::vector<std::uint64_t> draws;
  const MethodFn method = [&](const Replicate& rep, Rng& rng) {
    const std::uint64_t draw = rng();
    {
      const std::lock_guard<std::mutex> lock(mu);
      draws.push_back(draw);
    }
    ScoredRun run;
    run.test_scores.assign(rep.test.sample_count(), 0.0);
    return run;
  };
  evaluate_method(reps, method, 7, pool());
  ASSERT_EQ(draws.size(), 3u);
  std::sort(draws.begin(), draws.end());
  EXPECT_NE(draws[0], draws[1]);
  EXPECT_NE(draws[1], draws[2]);
}

TEST(Runner, AggregateComputesMeanSd) {
  PerReplicate results;
  results.auc = {0.8, 0.9};
  results.cpu_seconds = {1.0, 3.0};
  results.peak_bytes = {100.0, 300.0};
  const AggregateStats stats = aggregate(results);
  EXPECT_NEAR(stats.auc.mean, 0.85, 1e-12);
  EXPECT_DOUBLE_EQ(stats.mean_cpu_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stats.mean_peak_bytes, 200.0);
}

TEST(Runner, FractionOfComputesPerReplicateAucRatios) {
  PerReplicate variant, full;
  variant.auc = {0.9, 0.8};
  variant.cpu_seconds = {1.0, 1.0};
  variant.peak_bytes = {10.0, 10.0};
  full.auc = {0.9, 1.0};
  full.cpu_seconds = {10.0, 10.0};
  full.peak_bytes = {100.0, 100.0};
  const FractionStats stats = fraction_of(variant, full);
  EXPECT_NEAR(stats.auc_fraction.mean, (1.0 + 0.8) / 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.time_fraction, 0.1);
  EXPECT_DOUBLE_EQ(stats.mem_fraction, 0.1);
}

TEST(Runner, FractionOfValidation) {
  PerReplicate a, b;
  a.auc = {0.5};
  a.cpu_seconds = {1};
  a.peak_bytes = {1};
  EXPECT_THROW(fraction_of(a, b), std::invalid_argument);
  b = a;
  b.auc = {0.0};
  EXPECT_THROW(fraction_of(a, b), std::invalid_argument);
}

TEST(Runner, FractionOfBaselineUsesRawAuc) {
  PerReplicate variant;
  variant.auc = {0.6, 0.7};
  variant.cpu_seconds = {5.0, 5.0};
  variant.peak_bytes = {50.0, 50.0};
  const FractionStats stats = fraction_of_baseline(variant, 100.0, 1000.0);
  EXPECT_NEAR(stats.auc_fraction.mean, 0.65, 1e-12);  // raw, not a ratio
  EXPECT_DOUBLE_EQ(stats.time_fraction, 0.05);
  EXPECT_DOUBLE_EQ(stats.mem_fraction, 0.05);
}

TEST(Runner, FractionOfBaselineValidation) {
  PerReplicate variant;
  variant.auc = {0.5};
  variant.cpu_seconds = {1};
  variant.peak_bytes = {1};
  EXPECT_THROW(fraction_of_baseline(variant, 0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(fraction_of_baseline(variant, 10.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace frac
