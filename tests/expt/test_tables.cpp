#include "expt/tables.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace frac {
namespace {

TEST(TextTable, PrintsAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"long-name", "2"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Formatting, MeanSd) {
  EXPECT_EQ(fmt_mean_sd({0.731, 0.0561}), "0.73 (0.06)");
}

TEST(Formatting, Fraction) {
  EXPECT_EQ(fmt_fraction(0.0461), "0.046");
  EXPECT_EQ(fmt_fraction(0.0004), "0.000");
}

TEST(Formatting, TimeRanges) {
  EXPECT_EQ(fmt_time(0.0000005), "0.5 us");
  EXPECT_EQ(fmt_time(0.005), "5.0 ms");
  EXPECT_EQ(fmt_time(12.0), "12.00 s");
  EXPECT_EQ(fmt_time(600.0), "10.00 min");
  EXPECT_EQ(fmt_time(7200.0), "2.00 h");
}

TEST(Formatting, ByteRanges) {
  EXPECT_EQ(fmt_bytes(512), "512 B");
  EXPECT_EQ(fmt_bytes(2048), "2.00 KB");
  EXPECT_EQ(fmt_bytes(3.5 * 1024 * 1024), "3.50 MB");
  EXPECT_EQ(fmt_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

}  // namespace
}  // namespace frac
