// Checkpoint persistence and the fault-tolerant grid runner: cells survive
// process death (checkpoint round-trip), resume skips completed cells, and a
// kill-and-resume run's report is byte-identical to an uninterrupted one.
#include "expt/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "expt/grid.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"

namespace frac {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

GridCellResult ok_cell(double auc) {
  GridCellResult cell;
  cell.auc = auc;
  cell.cpu_seconds = 1.25;
  cell.peak_bytes = 4096;
  return cell;
}

TEST(Checkpoint, MissingFileStartsEmpty) {
  const Checkpoint checkpoint(temp_path("ck_missing.txt"));
  EXPECT_EQ(checkpoint.size(), 0u);
  EXPECT_EQ(checkpoint.find({"a", "full", 0}), nullptr);
}

TEST(Checkpoint, EmptyPathIsMemoryOnly) {
  Checkpoint checkpoint("");
  checkpoint.record({"a", "full", 0}, ok_cell(0.9));
  EXPECT_EQ(checkpoint.size(), 1u);
  ASSERT_NE(checkpoint.find({"a", "full", 0}), nullptr);
}

TEST(Checkpoint, RoundTripsCellsThroughDisk) {
  const std::string path = temp_path("ck_roundtrip.txt");
  GridCellResult failed;
  failed.ok = false;
  failed.failures[FailureCategory::kInjected] = 1;
  failed.error = "injected fault at predictor_train; with\nnewline";
  {
    Checkpoint checkpoint(path);
    checkpoint.record({"autism", "full", 0}, ok_cell(0.875));
    checkpoint.record({"autism", "jl", 3}, failed);
  }
  const Checkpoint reloaded(path);
  EXPECT_EQ(reloaded.size(), 2u);
  const GridCellResult* ok = reloaded.find({"autism", "full", 0});
  ASSERT_NE(ok, nullptr);
  EXPECT_EQ(*ok, ok_cell(0.875));  // %.17g round-trips doubles exactly
  const GridCellResult* bad = reloaded.find({"autism", "jl", 3});
  ASSERT_NE(bad, nullptr);
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->failures[FailureCategory::kInjected], 1u);
  // Delimiters and newlines in the error were sanitized, content retained.
  EXPECT_NE(bad->error.find("injected fault"), std::string::npos);
  EXPECT_EQ(bad->error.find('\n'), std::string::npos);
}

TEST(Checkpoint, RecordUpsertsExistingCell) {
  const std::string path = temp_path("ck_upsert.txt");
  Checkpoint checkpoint(path);
  checkpoint.record({"a", "full", 0}, ok_cell(0.5));
  checkpoint.record({"a", "full", 0}, ok_cell(0.75));
  EXPECT_EQ(checkpoint.size(), 1u);
  const Checkpoint reloaded(path);
  ASSERT_NE(reloaded.find({"a", "full", 0}), nullptr);
  EXPECT_DOUBLE_EQ(reloaded.find({"a", "full", 0})->auc, 0.75);
}

TEST(Checkpoint, SkipsMalformedLinesButKeepsValidOnes) {
  const std::string path = temp_path("ck_tolerant.txt");
  {
    Checkpoint checkpoint(path);
    checkpoint.record({"a", "full", 0}, ok_cell(0.5));
  }
  {
    std::ofstream out(path, std::ios::app);
    out << "garbage line\n";
    out << "a;full;notanumber;1;0.5;0;0;0;0;0;0;\n";
    out << "\n";
  }
  const Checkpoint reloaded(path);
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_NE(reloaded.find({"a", "full", 0}), nullptr);
}

TEST(Checkpoint, RejectsForeignFileWithoutHeader) {
  const std::string path = temp_path("ck_foreign.txt");
  {
    std::ofstream out(path);
    out << "this is not a checkpoint\n";
  }
  EXPECT_THROW(Checkpoint{path}, ParseError);
}

TEST(Checkpoint, InjectedWriteFaultAbortsRecordLoudly) {
  Checkpoint checkpoint(temp_path("ck_injected.txt"));
  const ScopedFaultPlan plan("serialize_write:1");
  EXPECT_THROW(checkpoint.record({"a", "full", 0}, ok_cell(0.5)), InjectedFault);
}

// --- grid runner ------------------------------------------------------------

/// Grid cells must stay test-sized: the registry scales feature counts by
/// FRAC_BENCH_SCALE, which it reads on every call.
class GridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("FRAC_BENCH_SCALE");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv("FRAC_BENCH_SCALE", "0.08", 1);
  }
  void TearDown() override {
    if (had_old_) {
      ::setenv("FRAC_BENCH_SCALE", old_.c_str(), 1);
    } else {
      ::unsetenv("FRAC_BENCH_SCALE");
    }
  }

  static ThreadPool& pool() {
    static ThreadPool p(2);
    return p;
  }

  static GridConfig small_grid() {
    GridConfig config;
    config.cohorts = {"breast.basal"};
    config.methods = {"full", "partial"};
    config.replicates = 2;
    config.seed = 17;
    return config;
  }

  static std::string report_of(const GridOutcome& outcome) {
    std::ostringstream out;
    write_grid_report(out, outcome.cells);
    return out.str();
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST_F(GridTest, RunsEveryCellInDeterministicOrder) {
  const GridOutcome outcome = run_experiment_grid(small_grid(), pool());
  EXPECT_EQ(outcome.cells.size(), 4u);
  EXPECT_EQ(outcome.cells_run, 4u);
  EXPECT_EQ(outcome.cells_skipped, 0u);
  EXPECT_EQ(outcome.cells_failed, 0u);
  EXPECT_FALSE(outcome.interrupted);
  EXPECT_EQ(outcome.cells[0].key, (GridCellKey{"breast.basal", "full", 0}));
  EXPECT_EQ(outcome.cells[3].key, (GridCellKey{"breast.basal", "partial", 1}));
  for (const GridCellRecord& cell : outcome.cells) {
    EXPECT_TRUE(cell.result.ok);
    EXPECT_GT(cell.result.auc, 0.0);
    EXPECT_LE(cell.result.auc, 1.0);
  }
}

TEST_F(GridTest, RerunsAreByteIdentical) {
  const std::string a = report_of(run_experiment_grid(small_grid(), pool()));
  const std::string b = report_of(run_experiment_grid(small_grid(), pool()));
  EXPECT_EQ(a, b);
}

TEST_F(GridTest, RejectsUnknownCohortsMethodsAndEmptyGrids) {
  GridConfig bad_cohort = small_grid();
  bad_cohort.cohorts = {"no.such.cohort"};
  EXPECT_THROW(run_experiment_grid(bad_cohort, pool()), std::invalid_argument);
  GridConfig bad_method = small_grid();
  bad_method.methods = {"warp-drive"};
  EXPECT_THROW(run_experiment_grid(bad_method, pool()), std::invalid_argument);
  GridConfig no_replicates = small_grid();
  no_replicates.replicates = 0;
  EXPECT_THROW(run_experiment_grid(no_replicates, pool()), std::invalid_argument);
}

TEST_F(GridTest, KillAndResumeReproducesUninterruptedRunByteForByte) {
  GridConfig config = small_grid();

  // The reference: one uninterrupted run.
  const std::string uninterrupted = report_of(run_experiment_grid(config, pool()));

  // The crash: cancel after two cells, checkpointing as we go.
  config.checkpoint_path = temp_path("ck_resume.txt");
  std::size_t cells_seen = 0;
  const GridOutcome partial =
      run_experiment_grid(config, pool(), [&] { return ++cells_seen > 2; });
  EXPECT_TRUE(partial.interrupted);
  EXPECT_EQ(partial.cells_run, 2u);

  // The recovery: resume must reuse both finished cells and match the
  // uninterrupted report exactly.
  config.resume = true;
  const GridOutcome resumed = run_experiment_grid(config, pool());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.cells_skipped, 2u);
  EXPECT_EQ(resumed.cells_run, 2u);
  EXPECT_EQ(report_of(resumed), uninterrupted);
}

TEST_F(GridTest, ResumeOfCompleteRunRecomputesNothing) {
  GridConfig config = small_grid();
  config.checkpoint_path = temp_path("ck_complete.txt");
  const std::string first = report_of(run_experiment_grid(config, pool()));
  config.resume = true;
  const GridOutcome again = run_experiment_grid(config, pool());
  EXPECT_EQ(again.cells_run, 0u);
  EXPECT_EQ(again.cells_skipped, 4u);
  EXPECT_EQ(report_of(again), first);
}

TEST_F(GridTest, WithoutResumeAnExistingCheckpointIsSuperseded) {
  GridConfig config = small_grid();
  config.checkpoint_path = temp_path("ck_fresh.txt");
  run_experiment_grid(config, pool());
  const GridOutcome rerun = run_experiment_grid(config, pool());  // no --resume
  EXPECT_EQ(rerun.cells_run, 4u);
  EXPECT_EQ(rerun.cells_skipped, 0u);
}

TEST_F(GridTest, InjectedUnitFaultsAreCountedNotFatal) {
  GridConfig config = small_grid();
  config.methods = {"full"};
  config.replicates = 1;
  const ScopedFaultPlan plan("predictor_train:0.3:7");
  const GridOutcome outcome = run_experiment_grid(config, pool());
  ASSERT_EQ(outcome.cells.size(), 1u);
  const GridCellResult& cell = outcome.cells[0].result;
  EXPECT_TRUE(cell.ok);
  EXPECT_GT(cell.failures[FailureCategory::kInjected], 0u);
  EXPECT_GT(cell.auc, 0.0);
}

TEST_F(GridTest, CellWhereEveryUnitFailsIsIsolatedAsFailedCell) {
  GridConfig config = small_grid();
  config.methods = {"full", "partial"};
  config.replicates = 1;
  const ScopedFaultPlan plan("predictor_train:1:7");
  const GridOutcome outcome = run_experiment_grid(config, pool());
  EXPECT_EQ(outcome.cells.size(), 2u);
  EXPECT_EQ(outcome.cells_failed, 2u);
  for (const GridCellRecord& cell : outcome.cells) {
    EXPECT_FALSE(cell.result.ok);
    EXPECT_FALSE(cell.result.error.empty());
    EXPECT_EQ(cell.result.failures.total(), 1u);
  }
}

TEST_F(GridTest, RunGridCellRejectsUnknownMethod) {
  const CohortSpec& spec = cohort_by_name("breast.basal");
  const auto replicates = make_cohort_replicates(spec, 1);
  EXPECT_THROW(run_grid_cell(spec, replicates[0], "warp-drive", 1, {}, pool()),
               std::invalid_argument);
}

}  // namespace
}  // namespace frac
