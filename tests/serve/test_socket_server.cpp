// The TCP serving tier: event-loop readiness, connection framing, and the
// SocketServer's contract — byte-identical responses to the stdin loop at
// any connection count, in-order delivery, overload rejection, connection
// caps, and graceful drain via request_stop().
#include "serve/socket_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "serve/connection.hpp"
#include "serve/event_loop.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(4);
  return p;
}

struct Fixture {
  FracModel model;
  Dataset test;
  std::string path;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    ExpressionModelConfig c;
    c.features = 20;
    c.modules = 2;
    c.genes_per_module = 5;
    c.disease_modules = 1;
    c.seed = 71;
    const ExpressionModel gen(c);
    Rng rng(171);
    const Dataset train = gen.sample(25, Label::kNormal, rng);
    Fixture built{FracModel::train(train, {}, pool()),
                  gen.sample(10, Label::kAnomaly, rng),
                  ::testing::TempDir() + "socket_fixture.fracmdl"};
    built.model.save_file(built.path, ModelFormat::kBinary);
    return built;
  }();
  return f;
}

std::vector<std::string> fixture_request_lines() {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < fixture().test.sample_count(); ++i) {
    const auto row = fixture().test.values().row(i);
    std::string line = "{\"id\":" + std::to_string(i) + ",\"values\":[";
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j != 0) line.push_back(',');
      line += format_g17(row[j]);
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

/// The stdin loop's exact output for these lines — the reference the socket
/// path must reproduce byte for byte.
std::string stdin_loop_output(const std::vector<std::string>& lines,
                              const ServeOptions& options) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ModelCache cache(2);
  std::istringstream in(input);
  std::ostringstream out;
  (void)run_serve_loop(in, out, options, cache, pool());
  return out.str();
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `count` '\n'-terminated lines (newlines included).
std::string read_lines(int fd, std::size_t count) {
  std::string buffer;
  std::size_t newlines = 0;
  char chunk[4096];
  while (newlines < count) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    for (ssize_t k = 0; k < n; ++k) {
      if (chunk[k] == '\n') ++newlines;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return buffer;
}

/// A running server + the plumbing every test needs; stops on destruction.
struct RunningServer {
  explicit RunningServer(SocketServerOptions options)
      : cache(4), server(options), thread([this] { stats = server.run(cache, pool()); }) {}
  ~RunningServer() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  ServeStats stop_and_join() {
    server.request_stop();
    thread.join();
    return stats;
  }

  ModelCache cache;
  SocketServer server;
  std::thread thread;
  ServeStats stats;
};

SocketServerOptions base_options() {
  SocketServerOptions options;
  options.port = 0;  // ephemeral
  options.serve.default_model = fixture().path;
  return options;
}

TEST(EventLoop, ReportsPipeReadiness) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop;
  loop.add(fds[0], true, false);
  EXPECT_EQ(loop.wait(0).size(), 0u) << "empty pipe reported readable";

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  const auto& ready = loop.wait(1000);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].fd, fds[0]);
  EXPECT_TRUE(ready[0].readable);

  loop.modify(fds[0], false, false);
  EXPECT_EQ(loop.wait(0).size(), 0u) << "interest cleared but still notified";

  loop.remove(fds[0]);
  EXPECT_EQ(loop.watched(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

#ifdef __linux__
TEST(EventLoop, UsesEpollOnLinux) {
  EventLoop loop;
  EXPECT_TRUE(loop.using_epoll());
}
#endif

TEST(Connection, FramesLinesAcrossPartialReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "alpha\nbra", 9), 9);
  ASSERT_TRUE(conn.read_some());
  auto first = conn.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->text, "alpha");
  EXPECT_EQ(first->seq, 0u);
  EXPECT_FALSE(conn.next_line().has_value()) << "partial line emitted early";

  ASSERT_EQ(::write(fds[1], "vo\r\n", 4), 4);
  ASSERT_TRUE(conn.read_some());
  auto second = conn.next_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->text, "bravo") << "CRLF not stripped";
  ::close(fds[1]);  // fds[0] owned by conn
}

TEST(Connection, EofMidLineEmitsTheFinalLineOnce) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "unterminated", 12), 12);
  ::close(fds[1]);
  EXPECT_TRUE(conn.read_some());   // the buffered bytes
  EXPECT_FALSE(conn.read_some());  // EOF
  auto line = conn.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "unterminated");
  EXPECT_FALSE(conn.next_line().has_value()) << "final line emitted twice";
  EXPECT_TRUE(conn.saw_eof());
}

TEST(Connection, OversizedLineIsDiscardedWithExactByteCount) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 16);
  const std::string big(100, 'x');
  ASSERT_EQ(::write(fds[1], (big + "\nok\n").c_str(), big.size() + 4),
            static_cast<ssize_t>(big.size() + 4));
  ASSERT_TRUE(conn.read_some());
  auto marker = conn.next_line();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  EXPECT_EQ(marker->bytes, big.size()) << "error must name the stdin loop's line length";
  EXPECT_TRUE(marker->text.empty());
  auto after = conn.next_line();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->text, "ok") << "connection did not recover after the oversized line";
  ::close(fds[1]);
}

TEST(Connection, OversizedLineSpanningManyReadsIsCountedInFull) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 8);
  std::size_t total = 0;
  for (int part = 0; part < 5; ++part) {
    const std::string piece(40, static_cast<char>('a' + part));
    ASSERT_TRUE(send_all(fds[1], piece));
    total += piece.size();
    ASSERT_TRUE(conn.read_some());
    EXPECT_FALSE(conn.next_line().has_value()) << "marker emitted before the newline";
  }
  ASSERT_TRUE(send_all(fds[1], "\n"));
  ASSERT_TRUE(conn.read_some());
  auto marker = conn.next_line();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  EXPECT_EQ(marker->bytes, total);
  ::close(fds[1]);
}

TEST(Connection, BlankKeepaliveLinesNeverConsumeASeq) {
  // Regression: blank lines used to be framed with a seq and skipped by the
  // server afterwards — a seq nothing ever deliver()s, wedging the reorder
  // map (and with it delivery and drain) for the rest of the connection.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_TRUE(send_all(fds[1], "\n  \t\r\nalpha\n\nbravo\n \n"));
  ASSERT_TRUE(conn.read_some());
  auto first = conn.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->text, "alpha");
  EXPECT_EQ(first->seq, 0u) << "a blank keepalive consumed a seq";
  auto second = conn.next_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->text, "bravo");
  EXPECT_EQ(second->seq, 1u);
  EXPECT_FALSE(conn.next_line().has_value());
  EXPECT_EQ(conn.undelivered(), 2u);

  conn.deliver(0, "one");
  conn.deliver(1, "two");
  EXPECT_EQ(conn.undelivered(), 0u) << "reorder map wedged by a skipped seq";
  ::close(fds[1]);
}

TEST(Connection, BlankFinalLineAtEofIsNotEmitted) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], " \t", 2), 2);
  ::close(fds[1]);
  EXPECT_TRUE(conn.read_some());   // the buffered bytes
  EXPECT_FALSE(conn.read_some());  // EOF
  EXPECT_FALSE(conn.next_line().has_value());
  EXPECT_EQ(conn.undelivered(), 0u);
}

TEST(Connection, DeliverReordersOutOfOrderResponses) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "a\nb\nc\n", 6), 6);
  ASSERT_TRUE(conn.read_some());
  while (conn.next_line().has_value()) {
  }
  EXPECT_EQ(conn.undelivered(), 3u);

  conn.deliver(2, "third");
  conn.deliver(0, "first");
  ASSERT_TRUE(conn.flush());
  char buffer[64] = {};
  EXPECT_EQ(::read(fds[1], buffer, sizeof buffer), 6);  // "first\n" only
  EXPECT_STREQ(buffer, "first\n");

  conn.deliver(1, "second");
  ASSERT_TRUE(conn.flush());
  char rest[64] = {};
  EXPECT_EQ(::read(fds[1], rest, sizeof rest), 13);  // "second\nthird\n"
  EXPECT_STREQ(rest, "second\nthird\n");
  EXPECT_EQ(conn.undelivered(), 0u);
  ::close(fds[1]);
}

TEST(SocketServer, ByteIdenticalToStdinLoopAcross32Connections) {
  const std::vector<std::string> lines = fixture_request_lines();
  SocketServerOptions options = base_options();
  const std::string expected = stdin_loop_output(lines, options.serve);
  ASSERT_FALSE(expected.empty());

  RunningServer running(options);
  constexpr int kClients = 32;
  std::vector<std::string> got(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const int fd = connect_to(running.server.port());
        if (fd < 0) return;
        std::string input;
        for (const std::string& line : lines) input += line + "\n";
        if (send_all(fd, input)) got[c] = read_lines(fd, lines.size());
        ::close(fd);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected) << "client " << c << " diverged from the stdin loop";
  }
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients) * lines.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(SocketServer, MixedRequestShapesMatchTheStdinLoop) {
  // Batches, named values, top_k, bad lines: one pipelined stream of every
  // request shape must come back byte-identical and in order.
  const auto& schema = fixture().model.schema();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  const std::vector<std::string> lines = {
      "{\"id\":\"b\",\"batch\":[[" + zeros + "],[" + zeros + "]]}",
      "{\"id\":\"n\",\"values\":{\"" + schema[0].name + "\":1.5}}",
      "not json at all",
      "{\"id\":\"k\",\"values\":[" + zeros + "],\"top_k\":3}",
      "{\"id\":9,\"values\":[1,2]}",
  };
  SocketServerOptions options = base_options();
  const std::string expected = stdin_loop_output(lines, options.serve);

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ASSERT_TRUE(send_all(fd, input));
  EXPECT_EQ(read_lines(fd, lines.size()), expected);
  ::close(fd);
}

TEST(SocketServer, OverloadRepliesOverloadedAndKeepsOrder) {
  SocketServerOptions options = base_options();
  options.max_inflight = 1;

  // One expensive request followed by a flood, written in a single send: the
  // flood reaches the loop while the big batch still occupies the queue, so
  // rejections are deterministic.
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string big_batch = "{\"id\":0,\"batch\":[[" + zeros + "]";
  for (int r = 1; r < 400; ++r) big_batch += ",[" + zeros + "]";
  big_batch += "],\"top_k\":3}";

  constexpr std::size_t kFlood = 40;
  std::string input = big_batch + "\n";
  for (std::size_t k = 0; k < kFlood; ++k) {
    input += "{\"id\":" + std::to_string(k + 1) + ",\"values\":[" + zeros + "]}\n";
  }

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, input));
  const std::string output = read_lines(fd, kFlood + 1);
  ::close(fd);

  std::istringstream lines(output);
  std::string line;
  std::size_t responses = 0;
  std::size_t overloaded = 0;
  bool first_ok = false;
  while (std::getline(lines, line)) {
    const JsonValue response = parse_json(line);
    const JsonValue* error = response.find("error");
    if (responses == 0) first_ok = error == nullptr && response.find("ns") != nullptr;
    if (error != nullptr && error->as_string() == "overloaded") ++overloaded;
    ++responses;
  }
  EXPECT_EQ(responses, kFlood + 1) << "every request must get a response";
  EXPECT_TRUE(first_ok) << "the admitted request must still succeed";
  EXPECT_GE(overloaded, 1u) << "no overload rejection under a full queue";

  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.rejected, overloaded);
}

TEST(SocketServer, GracefulStopDrainsInFlightRequests) {
  SocketServerOptions options = base_options();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string batch = "{\"id\":0,\"batch\":[[" + zeros + "]";
  for (int r = 1; r < 300; ++r) batch += ",[" + zeros + "]";
  batch += "],\"top_k\":5}\n";

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  // Stop once the request is admitted (serve.requests ticks at the start of
  // processing) so the drain, not the accept path, is what's under test:
  // the response must still be delivered before run() returns.
  Counter& admitted = metrics_counter("serve.requests");
  const std::uint64_t before = admitted.value();
  ASSERT_TRUE(send_all(fd, batch));
  while (admitted.value() == before) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  running.server.request_stop();
  const std::string output = read_lines(fd, 1);
  ::close(fd);
  const ServeStats stats = running.stop_and_join();

  ASSERT_FALSE(output.empty()) << "in-flight request dropped on shutdown";
  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("error"), nullptr) << output;
  ASSERT_NE(response.find("ns"), nullptr);
  EXPECT_EQ(response.find("ns")->as_array().size(), 300u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.samples, 300u);
}

TEST(SocketServer, BlankKeepalivesDoNotWedgeDeliveryOrDrain) {
  // End-to-end regression for the skipped-seq bug: requests behind a blank
  // line must still be answered, and the server must still drain on stop
  // (pre-fix this test hangs — first in read_lines, then in the drain).
  SocketServerOptions options = base_options();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  const std::string input = "\n{\"id\":1,\"values\":[" + zeros + "]}\n \t\r\n" +
                            "{\"id\":2,\"values\":[" + zeros + "]}\n\n";
  ASSERT_TRUE(send_all(fd, input));
  const std::string output = read_lines(fd, 2);
  ::close(fd);

  std::istringstream lines(output);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(parse_json(first).find("id")->as_number(), 1.0);
  EXPECT_EQ(parse_json(second).find("id")->as_number(), 2.0);

  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, 2u) << "blank keepalives must not be counted";
  EXPECT_EQ(stats.errors, 0u);
}

TEST(SocketServer, EofMidLineScoresTheFinalLine) {
  SocketServerOptions options = base_options();
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(fd, "{\"id\":7,\"values\":[" + zeros + "]}"));  // no '\n'
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string output = read_lines(fd, 1);
  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("id")->as_number(), 7.0);
  EXPECT_NE(response.find("ns"), nullptr) << output;
  // After the answer the server closes its side too.
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
}

TEST(SocketServer, OversizedLineGetsTheStdinLoopsError) {
  SocketServerOptions options = base_options();
  options.serve.max_request_bytes = 128;
  const std::string big(1000, 'x');

  // The stdin loop's exact message for the same line.
  const std::string expected = stdin_loop_output({big}, options.serve);

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(fd, big + "\n{\"id\":1,\"values\":[" + zeros + "]}\n"));
  const std::string output = read_lines(fd, 2);
  ::close(fd);

  std::istringstream lines(output);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(first + "\n", expected);
  EXPECT_NE(first.find("exceeds"), std::string::npos) << first;
  EXPECT_NE(parse_json(second).find("ns"), nullptr)
      << "connection unusable after oversized line: " << second;
}

TEST(SocketServer, ClosesConnectionsBeyondTheCap) {
  SocketServerOptions options = base_options();
  options.max_connections = 1;
  RunningServer running(options);

  const int first = connect_to(running.server.port());
  ASSERT_GE(first, 0);
  // Make sure the server has actually accepted the first connection before
  // the second arrives (accept order is the kernel queue order).
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(first, "{\"id\":0,\"values\":[" + zeros + "]}\n"));
  ASSERT_FALSE(read_lines(first, 1).empty());

  const int second = connect_to(running.server.port());
  ASSERT_GE(second, 0);
  char byte;
  EXPECT_EQ(::read(second, &byte, 1), 0) << "over-cap connection not closed";
  ::close(second);
  ::close(first);
}

TEST(SocketServer, StopBeforeAnyConnectionReturnsCleanly) {
  SocketServerOptions options = base_options();
  RunningServer running(options);
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, 0u);
}

}  // namespace
}  // namespace frac
