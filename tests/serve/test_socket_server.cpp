// The TCP serving tier: event-loop readiness, connection framing, and the
// SocketServer's contract — byte-identical responses to the stdin loop at
// any connection count, in-order delivery, overload rejection, connection
// caps, and graceful drain via request_stop().
#include "serve/socket_server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "serve/connection.hpp"
#include "serve/event_loop.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(4);
  return p;
}

struct Fixture {
  FracModel model;
  Dataset test;
  std::string path;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    ExpressionModelConfig c;
    c.features = 20;
    c.modules = 2;
    c.genes_per_module = 5;
    c.disease_modules = 1;
    c.seed = 71;
    const ExpressionModel gen(c);
    Rng rng(171);
    const Dataset train = gen.sample(25, Label::kNormal, rng);
    Fixture built{FracModel::train(train, {}, pool()),
                  gen.sample(10, Label::kAnomaly, rng),
                  ::testing::TempDir() + "socket_fixture.fracmdl"};
    built.model.save_file(built.path, ModelFormat::kBinary);
    return built;
  }();
  return f;
}

std::vector<std::string> fixture_request_lines() {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < fixture().test.sample_count(); ++i) {
    const auto row = fixture().test.values().row(i);
    std::string line = "{\"id\":" + std::to_string(i) + ",\"values\":[";
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j != 0) line.push_back(',');
      line += format_g17(row[j]);
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

/// The stdin loop's exact output for these lines — the reference the socket
/// path must reproduce byte for byte.
std::string stdin_loop_output(const std::vector<std::string>& lines,
                              const ServeOptions& options) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ModelCache cache(2);
  std::istringstream in(input);
  std::ostringstream out;
  (void)run_serve_loop(in, out, options, cache, pool());
  return out.str();
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `count` '\n'-terminated lines (newlines included).
std::string read_lines(int fd, std::size_t count) {
  std::string buffer;
  std::size_t newlines = 0;
  char chunk[4096];
  while (newlines < count) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n <= 0) break;
    for (ssize_t k = 0; k < n; ++k) {
      if (chunk[k] == '\n') ++newlines;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  return buffer;
}

/// A running server + the plumbing every test needs; stops on destruction.
struct RunningServer {
  explicit RunningServer(SocketServerOptions options)
      : cache(4), server(options), thread([this] { stats = server.run(cache, pool()); }) {}
  ~RunningServer() {
    if (thread.joinable()) {
      server.request_stop();
      thread.join();
    }
  }
  ServeStats stop_and_join() {
    server.request_stop();
    thread.join();
    return stats;
  }

  ModelCache cache;
  SocketServer server;
  std::thread thread;
  ServeStats stats;
};

SocketServerOptions base_options() {
  SocketServerOptions options;
  options.port = 0;  // ephemeral
  options.serve.default_model = fixture().path;
  return options;
}

TEST(EventLoop, ReportsPipeReadiness) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  EventLoop loop;
  loop.add(fds[0], true, false);
  EXPECT_EQ(loop.wait(0).size(), 0u) << "empty pipe reported readable";

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  const auto& ready = loop.wait(1000);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].fd, fds[0]);
  EXPECT_TRUE(ready[0].readable);

  loop.modify(fds[0], false, false);
  EXPECT_EQ(loop.wait(0).size(), 0u) << "interest cleared but still notified";

  loop.remove(fds[0]);
  EXPECT_EQ(loop.watched(), 0u);
  ::close(fds[0]);
  ::close(fds[1]);
}

#ifdef __linux__
TEST(EventLoop, UsesEpollOnLinuxUnlessPollIsForced) {
  // Under FRAC_FORCE_POLL=1 (the CI backend-matrix run) the same suite must
  // exercise the poll(2) fallback on a kernel that has epoll.
  EventLoop loop;
  EXPECT_EQ(loop.using_epoll(), !EventLoop::force_poll());
}
#endif

TEST(EventLoop, ForcePollDisablesEpollButStillReportsReadiness) {
  const bool saved = EventLoop::force_poll();
  EventLoop::set_force_poll(true);
  {
    EventLoop loop;
    EXPECT_FALSE(loop.using_epoll());
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    loop.add(fds[0], true, false);
    ASSERT_EQ(::write(fds[1], "x", 1), 1);
    const auto& ready = loop.wait(1000);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0].fd, fds[0]);
    EXPECT_TRUE(ready[0].readable);
    loop.remove(fds[0]);
    ::close(fds[0]);
    ::close(fds[1]);
  }
  EventLoop::set_force_poll(saved);
}

TEST(EventLoop, WaitWakesForTheNearestDeadlineAndPopsIt) {
  EventLoop loop;
  const auto start = EventLoop::Clock::now();
  loop.arm_deadline(7, start + std::chrono::milliseconds(10));
  loop.arm_deadline(8, start + std::chrono::milliseconds(15));
  loop.arm_deadline(9, start + std::chrono::hours(1));
  loop.cancel_deadline(8);
  EXPECT_EQ(loop.armed_deadlines(), 2u);

  // An "infinite" wait must return when token 7 expires — not in an hour.
  // (Bounded wait per iteration so a regression fails instead of hanging;
  // EINTR can pop the loop early with nothing expired.)
  std::vector<std::uint64_t> expired;
  while (expired.empty() && EventLoop::Clock::now() < start + std::chrono::seconds(10)) {
    (void)loop.wait(200);
    expired = loop.expired();
  }
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0], 7u) << "canceled deadline fired";
  EXPECT_EQ(loop.armed_deadlines(), 1u) << "far deadline must stay armed";
  loop.cancel_deadline(9);
  EXPECT_EQ(loop.armed_deadlines(), 0u);
}

TEST(EventLoop, ReArmingATokenReplacesItsDeadline) {
  EventLoop loop;
  const auto now = EventLoop::Clock::now();
  loop.arm_deadline(5, now + std::chrono::milliseconds(5));
  loop.arm_deadline(5, now + std::chrono::hours(1));
  EXPECT_EQ(loop.armed_deadlines(), 1u);
  (void)loop.wait(30);
  EXPECT_TRUE(loop.expired().empty()) << "replaced deadline still fired";
  loop.cancel_deadline(5);
  EXPECT_EQ(loop.armed_deadlines(), 0u);
}

TEST(EventLoop, ExpiredDeadlinesPopInTimeOrder) {
  EventLoop loop;
  const auto start = EventLoop::Clock::now();
  loop.arm_deadline(21, start + std::chrono::milliseconds(6));
  loop.arm_deadline(22, start + std::chrono::milliseconds(2));
  loop.arm_deadline(23, start + std::chrono::milliseconds(4));
  std::vector<std::uint64_t> order;
  while (order.size() < 3 && EventLoop::Clock::now() < start + std::chrono::seconds(10)) {
    (void)loop.wait(50);
    const auto& expired = loop.expired();
    order.insert(order.end(), expired.begin(), expired.end());
  }
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 22u);
  EXPECT_EQ(order[1], 23u);
  EXPECT_EQ(order[2], 21u);
}

TEST(Connection, FramesLinesAcrossPartialReads) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "alpha\nbra", 9), 9);
  ASSERT_TRUE(conn.read_some());
  auto first = conn.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->text, "alpha");
  EXPECT_EQ(first->seq, 0u);
  EXPECT_FALSE(conn.next_line().has_value()) << "partial line emitted early";

  ASSERT_EQ(::write(fds[1], "vo\r\n", 4), 4);
  ASSERT_TRUE(conn.read_some());
  auto second = conn.next_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->text, "bravo") << "CRLF not stripped";
  ::close(fds[1]);  // fds[0] owned by conn
}

TEST(Connection, EofMidLineEmitsTheFinalLineOnce) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "unterminated", 12), 12);
  ::close(fds[1]);
  EXPECT_TRUE(conn.read_some());   // the buffered bytes
  EXPECT_FALSE(conn.read_some());  // EOF
  auto line = conn.next_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->text, "unterminated");
  EXPECT_FALSE(conn.next_line().has_value()) << "final line emitted twice";
  EXPECT_TRUE(conn.saw_eof());
}

TEST(Connection, OversizedLineIsDiscardedWithExactByteCount) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 16);
  const std::string big(100, 'x');
  ASSERT_EQ(::write(fds[1], (big + "\nok\n").c_str(), big.size() + 4),
            static_cast<ssize_t>(big.size() + 4));
  ASSERT_TRUE(conn.read_some());
  auto marker = conn.next_line();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  EXPECT_EQ(marker->bytes, big.size()) << "error must name the stdin loop's line length";
  EXPECT_TRUE(marker->text.empty());
  auto after = conn.next_line();
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->text, "ok") << "connection did not recover after the oversized line";
  ::close(fds[1]);
}

TEST(Connection, OversizedLineSpanningManyReadsIsCountedInFull) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 8);
  std::size_t total = 0;
  for (int part = 0; part < 5; ++part) {
    const std::string piece(40, static_cast<char>('a' + part));
    ASSERT_TRUE(send_all(fds[1], piece));
    total += piece.size();
    ASSERT_TRUE(conn.read_some());
    EXPECT_FALSE(conn.next_line().has_value()) << "marker emitted before the newline";
  }
  ASSERT_TRUE(send_all(fds[1], "\n"));
  ASSERT_TRUE(conn.read_some());
  auto marker = conn.next_line();
  ASSERT_TRUE(marker.has_value());
  EXPECT_TRUE(marker->oversized);
  EXPECT_EQ(marker->bytes, total);
  ::close(fds[1]);
}

TEST(Connection, BlankKeepaliveLinesNeverConsumeASeq) {
  // Regression: blank lines used to be framed with a seq and skipped by the
  // server afterwards — a seq nothing ever deliver()s, wedging the reorder
  // map (and with it delivery and drain) for the rest of the connection.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_TRUE(send_all(fds[1], "\n  \t\r\nalpha\n\nbravo\n \n"));
  ASSERT_TRUE(conn.read_some());
  auto first = conn.next_line();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->text, "alpha");
  EXPECT_EQ(first->seq, 0u) << "a blank keepalive consumed a seq";
  auto second = conn.next_line();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->text, "bravo");
  EXPECT_EQ(second->seq, 1u);
  EXPECT_FALSE(conn.next_line().has_value());
  EXPECT_EQ(conn.undelivered(), 2u);

  conn.deliver(0, "one");
  conn.deliver(1, "two");
  EXPECT_EQ(conn.undelivered(), 0u) << "reorder map wedged by a skipped seq";
  ::close(fds[1]);
}

TEST(Connection, BlankFinalLineAtEofIsNotEmitted) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], " \t", 2), 2);
  ::close(fds[1]);
  EXPECT_TRUE(conn.read_some());   // the buffered bytes
  EXPECT_FALSE(conn.read_some());  // EOF
  EXPECT_FALSE(conn.next_line().has_value());
  EXPECT_EQ(conn.undelivered(), 0u);
}

TEST(Connection, DeliverReordersOutOfOrderResponses) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Connection conn(fds[0], 1, 1024);
  ASSERT_EQ(::write(fds[1], "a\nb\nc\n", 6), 6);
  ASSERT_TRUE(conn.read_some());
  while (conn.next_line().has_value()) {
  }
  EXPECT_EQ(conn.undelivered(), 3u);

  conn.deliver(2, "third");
  conn.deliver(0, "first");
  ASSERT_TRUE(conn.flush());
  char buffer[64] = {};
  EXPECT_EQ(::read(fds[1], buffer, sizeof buffer), 6);  // "first\n" only
  EXPECT_STREQ(buffer, "first\n");

  conn.deliver(1, "second");
  ASSERT_TRUE(conn.flush());
  char rest[64] = {};
  EXPECT_EQ(::read(fds[1], rest, sizeof rest), 13);  // "second\nthird\n"
  EXPECT_STREQ(rest, "second\nthird\n");
  EXPECT_EQ(conn.undelivered(), 0u);
  ::close(fds[1]);
}

TEST(SocketServer, ByteIdenticalToStdinLoopAcross32Connections) {
  const std::vector<std::string> lines = fixture_request_lines();
  SocketServerOptions options = base_options();
  const std::string expected = stdin_loop_output(lines, options.serve);
  ASSERT_FALSE(expected.empty());

  RunningServer running(options);
  constexpr int kClients = 32;
  std::vector<std::string> got(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        const int fd = connect_to(running.server.port());
        if (fd < 0) return;
        std::string input;
        for (const std::string& line : lines) input += line + "\n";
        if (send_all(fd, input)) got[c] = read_lines(fd, lines.size());
        ::close(fd);
      });
    }
    for (auto& t : clients) t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(got[c], expected) << "client " << c << " diverged from the stdin loop";
  }
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients) * lines.size());
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(SocketServer, MixedRequestShapesMatchTheStdinLoop) {
  // Batches, named values, top_k, bad lines: one pipelined stream of every
  // request shape must come back byte-identical and in order.
  const auto& schema = fixture().model.schema();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  const std::vector<std::string> lines = {
      "{\"id\":\"b\",\"batch\":[[" + zeros + "],[" + zeros + "]]}",
      "{\"id\":\"n\",\"values\":{\"" + schema[0].name + "\":1.5}}",
      "not json at all",
      "{\"id\":\"k\",\"values\":[" + zeros + "],\"top_k\":3}",
      "{\"id\":9,\"values\":[1,2]}",
  };
  SocketServerOptions options = base_options();
  const std::string expected = stdin_loop_output(lines, options.serve);

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ASSERT_TRUE(send_all(fd, input));
  EXPECT_EQ(read_lines(fd, lines.size()), expected);
  ::close(fd);
}

TEST(SocketServer, OverloadRepliesOverloadedAndKeepsOrder) {
  SocketServerOptions options = base_options();
  options.max_inflight = 1;

  // One expensive request followed by a flood, written in a single send: the
  // flood reaches the loop while the big batch still occupies the queue, so
  // rejections are deterministic.
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string big_batch = "{\"id\":0,\"batch\":[[" + zeros + "]";
  for (int r = 1; r < 400; ++r) big_batch += ",[" + zeros + "]";
  big_batch += "],\"top_k\":3}";

  constexpr std::size_t kFlood = 40;
  std::string input = big_batch + "\n";
  for (std::size_t k = 0; k < kFlood; ++k) {
    input += "{\"id\":" + std::to_string(k + 1) + ",\"values\":[" + zeros + "]}\n";
  }

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, input));
  const std::string output = read_lines(fd, kFlood + 1);
  ::close(fd);

  std::istringstream lines(output);
  std::string line;
  std::size_t responses = 0;
  std::size_t overloaded = 0;
  bool first_ok = false;
  while (std::getline(lines, line)) {
    const JsonValue response = parse_json(line);
    const JsonValue* error = response.find("error");
    if (responses == 0) first_ok = error == nullptr && response.find("ns") != nullptr;
    if (error != nullptr && error->as_string() == "overloaded") ++overloaded;
    ++responses;
  }
  EXPECT_EQ(responses, kFlood + 1) << "every request must get a response";
  EXPECT_TRUE(first_ok) << "the admitted request must still succeed";
  EXPECT_GE(overloaded, 1u) << "no overload rejection under a full queue";

  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.rejected, overloaded);
}

TEST(SocketServer, GracefulStopDrainsInFlightRequests) {
  SocketServerOptions options = base_options();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string batch = "{\"id\":0,\"batch\":[[" + zeros + "]";
  for (int r = 1; r < 300; ++r) batch += ",[" + zeros + "]";
  batch += "],\"top_k\":5}\n";

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  // Stop once the request is admitted (serve.requests ticks at the start of
  // processing) so the drain, not the accept path, is what's under test:
  // the response must still be delivered before run() returns.
  Counter& admitted = metrics_counter("serve.requests");
  const std::uint64_t before = admitted.value();
  ASSERT_TRUE(send_all(fd, batch));
  while (admitted.value() == before) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  running.server.request_stop();
  const std::string output = read_lines(fd, 1);
  ::close(fd);
  const ServeStats stats = running.stop_and_join();

  ASSERT_FALSE(output.empty()) << "in-flight request dropped on shutdown";
  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("error"), nullptr) << output;
  ASSERT_NE(response.find("ns"), nullptr);
  EXPECT_EQ(response.find("ns")->as_array().size(), 300u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.samples, 300u);
}

TEST(SocketServer, BlankKeepalivesDoNotWedgeDeliveryOrDrain) {
  // End-to-end regression for the skipped-seq bug: requests behind a blank
  // line must still be answered, and the server must still drain on stop
  // (pre-fix this test hangs — first in read_lines, then in the drain).
  SocketServerOptions options = base_options();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  const std::string input = "\n{\"id\":1,\"values\":[" + zeros + "]}\n \t\r\n" +
                            "{\"id\":2,\"values\":[" + zeros + "]}\n\n";
  ASSERT_TRUE(send_all(fd, input));
  const std::string output = read_lines(fd, 2);
  ::close(fd);

  std::istringstream lines(output);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(parse_json(first).find("id")->as_number(), 1.0);
  EXPECT_EQ(parse_json(second).find("id")->as_number(), 2.0);

  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, 2u) << "blank keepalives must not be counted";
  EXPECT_EQ(stats.errors, 0u);
}

TEST(SocketServer, EofMidLineScoresTheFinalLine) {
  SocketServerOptions options = base_options();
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(fd, "{\"id\":7,\"values\":[" + zeros + "]}"));  // no '\n'
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  const std::string output = read_lines(fd, 1);
  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("id")->as_number(), 7.0);
  EXPECT_NE(response.find("ns"), nullptr) << output;
  // After the answer the server closes its side too.
  char byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
}

TEST(SocketServer, OversizedLineGetsTheStdinLoopsError) {
  SocketServerOptions options = base_options();
  options.serve.max_request_bytes = 128;
  const std::string big(1000, 'x');

  // The stdin loop's exact message for the same line.
  const std::string expected = stdin_loop_output({big}, options.serve);

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(fd, big + "\n{\"id\":1,\"values\":[" + zeros + "]}\n"));
  const std::string output = read_lines(fd, 2);
  ::close(fd);

  std::istringstream lines(output);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  EXPECT_EQ(first + "\n", expected);
  EXPECT_NE(first.find("exceeds"), std::string::npos) << first;
  EXPECT_NE(parse_json(second).find("ns"), nullptr)
      << "connection unusable after oversized line: " << second;
}

TEST(SocketServer, ClosesConnectionsBeyondTheCap) {
  SocketServerOptions options = base_options();
  options.max_connections = 1;
  RunningServer running(options);

  const int first = connect_to(running.server.port());
  ASSERT_GE(first, 0);
  // Make sure the server has actually accepted the first connection before
  // the second arrives (accept order is the kernel queue order).
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  ASSERT_TRUE(send_all(first, "{\"id\":0,\"values\":[" + zeros + "]}\n"));
  ASSERT_FALSE(read_lines(first, 1).empty());

  const int second = connect_to(running.server.port());
  ASSERT_GE(second, 0);
  char byte;
  EXPECT_EQ(::read(second, &byte, 1), 0) << "over-cap connection not closed";
  ::close(second);
  ::close(first);
}

TEST(SocketServer, StopBeforeAnyConnectionReturnsCleanly) {
  SocketServerOptions options = base_options();
  RunningServer running(options);
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, 0u);
}

std::string zeros_row() {
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  return zeros;
}

/// Spins until `counter` advances past `before` (or 10s pass — failure).
bool wait_for_counter(Counter& counter, std::uint64_t before) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (counter.value() == before) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

TEST(SocketServer, IdleTimeoutReapsSlowlorisConnections) {
  SocketServerOptions options = base_options();
  options.idle_timeout_ms = 40;
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);

  // Drip bytes that never complete a line: progress at the byte level must
  // NOT reset the idle clock (that is the slowloris hole).
  Counter& reaped = metrics_counter("serve.reaped");
  const std::uint64_t before = reaped.value();
  for (int k = 0; k < 30 && reaped.value() == before; ++k) {
    (void)::send(fd, "{", 1, MSG_NOSIGNAL);  // ignore EPIPE once reaped
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(wait_for_counter(reaped, before)) << "slowloris connection never reaped";

  char byte;
  EXPECT_LE(::read(fd, &byte, 1), 0) << "server side still open after the reap";
  ::close(fd);
  const ServeStats stats = running.stop_and_join();
  EXPECT_GE(stats.reaped, 1u);
  EXPECT_EQ(stats.requests, 0u);
}

TEST(SocketServer, ActiveConnectionsOutliveTheIdleTimeout) {
  SocketServerOptions options = base_options();
  options.idle_timeout_ms = 60;
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);

  // Five round-trips spread over ~2.5 intervals: every framed line resets
  // the clock, so a live request/response rhythm must never be reaped.
  const std::string request = "{\"id\":1,\"values\":[" + zeros_row() + "]}\n";
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(send_all(fd, request)) << "reaped mid-conversation at round " << k;
    ASSERT_FALSE(read_lines(fd, 1).empty()) << "no answer at round " << k;
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  ::close(fd);
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.reaped, 0u);
  EXPECT_EQ(stats.requests, 5u);
}

TEST(SocketServer, BlankKeepalivesResetTheIdleClock) {
  SocketServerOptions options = base_options();
  options.idle_timeout_ms = 60;
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  // Only blank lines for ~3 intervals, then a real request: the keepalives
  // must hold the connection open even though no request was ever framed.
  for (int k = 0; k < 6; ++k) {
    ASSERT_TRUE(send_all(fd, "\n")) << "keepalive did not keep alive (round " << k << ")";
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  }
  ASSERT_TRUE(send_all(fd, "{\"id\":9,\"values\":[" + zeros_row() + "]}\n"));
  const std::string output = read_lines(fd, 1);
  ASSERT_FALSE(output.empty());
  EXPECT_NE(parse_json(output).find("ns"), nullptr) << output;
  ::close(fd);
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.reaped, 0u);
}

TEST(SocketServer, WriteStallTimeoutClosesStalledReaders) {
  SocketServerOptions options = base_options();
  options.output_high_water = 4096;  // tiny, so buffered responses trip it
  options.write_stall_timeout_ms = 60;
  options.sndbuf_bytes = 8192;  // pin the kernel buffer so the stall is visible
  RunningServer running(options);

  // A client with a tiny receive buffer that never reads: the (pinned) kernel
  // windows fill, responses back up in the server's output buffer above the
  // high-water mark, and the stall timer must close the connection.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(running.server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr), 0);

  // ~10 batch responses x ~20 KB each, far beyond rcvbuf + sndbuf + HWM.
  std::string batch = "{\"id\":0,\"batch\":[[" + zeros_row() + "]";
  for (int r = 1; r < 1000; ++r) batch += ",[" + zeros_row() + "]";
  batch += "]}\n";
  std::string input;
  for (int k = 0; k < 10; ++k) input += batch;

  Counter& timeouts = metrics_counter("serve.timeouts");
  const std::uint64_t before = timeouts.value();
  std::size_t sent = 0;
  while (sent < input.size()) {
    // Blocking send: once the server's output backs up it stops reading us,
    // this blocks, and the stall timer's close (client sees a reset) is what
    // unblocks it — a wedged stall detector would hang the test instead.
    const ssize_t n = ::send(fd, input.data() + sent, input.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  EXPECT_TRUE(wait_for_counter(timeouts, before)) << "stalled reader never closed";
  ::close(fd);
  const ServeStats stats = running.stop_and_join();
  EXPECT_GE(stats.timeouts, 1u);
}

TEST(SocketServer, RequestTimeoutAnswersDeadlineExceeded) {
  SocketServerOptions options = base_options();
  options.request_timeout_ms = 50;
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);

  // A batch big enough to keep the scorer busy for many deadline intervals.
  std::string big = "{\"id\":0,\"batch\":[[" + zeros_row() + "]";
  for (int r = 1; r < 15000; ++r) big += ",[" + zeros_row() + "]";
  big += "],\"top_k\":5}\n";
  Counter& admitted = metrics_counter("serve.requests");
  const std::uint64_t before = admitted.value();
  ASSERT_TRUE(send_all(fd, big));
  // Once serve.requests ticks the scorer has popped the big batch; the two
  // small requests below therefore sit in an empty queue behind it, and
  // their 50ms deadlines fire long before the scorer is free again. Both
  // must be answered "deadline exceeded" without ever being scored — ids
  // echoed from the queued lines, responses in request order. The big batch
  // itself also times out (mid-parse or mid-scoring).
  ASSERT_TRUE(wait_for_counter(admitted, before));
  ASSERT_TRUE(send_all(fd, "{\"id\":1,\"values\":[" + zeros_row() + "]}\n"
                           "{\"id\":2,\"values\":[" + zeros_row() + "]}\n"));
  const std::string output = read_lines(fd, 3);
  ::close(fd);

  std::istringstream lines(output);
  std::string first, second, third;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  ASSERT_TRUE(std::getline(lines, third));
  EXPECT_NE(first.find("\"error\":\"deadline exceeded\""), std::string::npos) << first;
  EXPECT_EQ(second, "{\"id\":1,\"error\":\"deadline exceeded\"}") << second;
  EXPECT_EQ(third, "{\"id\":2,\"error\":\"deadline exceeded\"}") << third;

  const ServeStats stats = running.stop_and_join();
  EXPECT_GE(stats.deadline_exceeded, 3u);
  EXPECT_GE(stats.errors, 3u);
}

TEST(SocketServer, HealthProbeBypassesAFullQueue) {
  SocketServerOptions options = base_options();
  options.max_inflight = 1;
  RunningServer running(options);

  // Occupy the only inflight slot with a slow batch on connection 1...
  const int busy = connect_to(running.server.port());
  ASSERT_GE(busy, 0);
  std::string big = "{\"id\":0,\"batch\":[[" + zeros_row() + "]";
  for (int r = 1; r < 2000; ++r) big += ",[" + zeros_row() + "]";
  big += "],\"top_k\":5}\n";
  Counter& admitted = metrics_counter("serve.requests");
  const std::uint64_t before = admitted.value();
  ASSERT_TRUE(send_all(busy, big));
  ASSERT_TRUE(wait_for_counter(admitted, before));

  // ...then probe from connection 2: the probe must be answered while the
  // queue is full (a scoring request on the same connection is rejected).
  const int probe = connect_to(running.server.port());
  ASSERT_GE(probe, 0);
  ASSERT_TRUE(send_all(probe, "{\"id\":\"p\",\"cmd\":\"health\"}\n{\"id\":2,\"values\":[" +
                                  zeros_row() + "]}\n"));
  const std::string output = read_lines(probe, 2);
  ::close(probe);
  ::close(busy);

  std::istringstream lines(output);
  std::string first, second;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));

  const JsonValue health_response = parse_json(first);
  EXPECT_EQ(health_response.find("id")->as_string(), "p");
  const JsonValue* health = health_response.find("health");
  ASSERT_NE(health, nullptr) << first;
  EXPECT_EQ(health->find("status")->as_string(), "ok");
  EXPECT_EQ(health->find("model")->as_string(), fixture().path);
  EXPECT_TRUE(health->find("model_crc32")->is_number()) << "resident model must report a CRC";
  EXPECT_TRUE(health->find("uptime_ms")->is_number());
  EXPECT_GE(health->find("inflight")->as_number(), 1.0) << "the busy batch is in flight";

  const JsonValue second_response = parse_json(second);
  const JsonValue* error = second_response.find("error");
  ASSERT_NE(error, nullptr) << second;
  EXPECT_EQ(error->as_string(), "overloaded") << "scoring request must still be rejected";

  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.health, 1u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(SocketServer, UnknownCmdGetsAnErrorWithoutTouchingTheQueue) {
  SocketServerOptions options = base_options();
  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "{\"id\":3,\"cmd\":\"flush\"}\n"));
  const std::string output = read_lines(fd, 1);
  ::close(fd);
  EXPECT_EQ(output, "{\"id\":3,\"error\":\"request: unknown \\\"cmd\\\" "
                    "(supported: \\\"drift\\\", \\\"health\\\", \\\"reload\\\", "
                    "\\\"stats\\\")\"}\n");
  const ServeStats stats = running.stop_and_join();
  EXPECT_EQ(stats.requests, 0u) << "command lines must not be queued or scored";
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.health, 0u);
}

TEST(SocketServer, ArmedDriftMonitorObservesTheBatchPath) {
  // Every sample scored through the socket scoring thread feeds the monitor
  // in batch (arrival) order; {"cmd":"drift"} — answered by the loop thread —
  // reports a consistent snapshot. Decisions must match the stdin loop's for
  // the same lines: both transports observe in arrival order.
  SocketServerOptions options = base_options();
  options.serve.drift = std::make_shared<ServeDriftMonitor>(
      DriftMonitor(fixture().model.score(fixture().test, pool())));
  const std::vector<std::string> lines = fixture_request_lines();

  ServeOptions stdin_options = base_options().serve;
  stdin_options.drift = std::make_shared<ServeDriftMonitor>(
      DriftMonitor(fixture().model.score(fixture().test, pool())));
  (void)stdin_loop_output(lines, stdin_options);
  const ServeDriftMonitor::Status reference = stdin_options.drift->status();
  ASSERT_EQ(reference.samples_seen, lines.size());

  RunningServer running(options);
  const int fd = connect_to(running.server.port());
  ASSERT_GE(fd, 0);
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ASSERT_TRUE(send_all(fd, input));
  (void)read_lines(fd, lines.size());
  ASSERT_TRUE(send_all(fd, "{\"id\":\"d\",\"cmd\":\"drift\"}\n"));
  const std::string drift_line = read_lines(fd, 1);
  ::close(fd);
  (void)running.stop_and_join();

  const JsonValue response = parse_json(drift_line);
  const JsonValue* drift = response.find("drift");
  ASSERT_NE(drift, nullptr) << drift_line;
  EXPECT_TRUE(drift->find("monitoring")->as_bool());
  EXPECT_EQ(drift->find("samples")->as_number(), static_cast<double>(lines.size()));

  const ServeDriftMonitor::Status socket_status = options.serve.drift->status();
  EXPECT_EQ(socket_status.samples_seen, reference.samples_seen);
  EXPECT_EQ(socket_status.statistic, reference.statistic)
      << "transports must accumulate bit-identically";
  EXPECT_EQ(socket_status.drifted, reference.drifted);
  EXPECT_EQ(socket_status.drift_sample, reference.drift_sample);
}

TEST(ServeLoop, HealthCommandOnStdin) {
  ServeOptions options;
  options.default_model = fixture().path;
  ModelCache cache(2);
  std::istringstream in("{\"id\":\"h\",\"cmd\":\"health\"}\n"
                        "{\"cmd\":\"bogus\"}\n"
                        "{\"id\":5,\"values\":[" + zeros_row() + "]}\n");
  std::ostringstream out;
  const ServeStats stats = run_serve_loop(in, out, options, cache, pool());

  std::istringstream lines(out.str());
  std::string first, second, third;
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  ASSERT_TRUE(std::getline(lines, third));

  const JsonValue health_response = parse_json(first);
  const JsonValue* health = health_response.find("health");
  ASSERT_NE(health, nullptr) << first;
  EXPECT_EQ(health->find("status")->as_string(), "ok");
  EXPECT_EQ(health->find("model")->as_string(), fixture().path);
  EXPECT_TRUE(health->find("model_crc32")->is_number());
  EXPECT_EQ(health->find("inflight")->as_number(), 0.0) << "the stdin loop is synchronous";
  EXPECT_EQ(health->find("requests")->as_number(), 0.0);

  const JsonValue second_response = parse_json(second);
  const JsonValue* error = second_response.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->as_string().find("unknown \"cmd\""), std::string::npos);
  EXPECT_NE(parse_json(third).find("ns"), nullptr) << "loop must continue after commands";

  EXPECT_EQ(stats.health, 1u);
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.requests, 1u) << "commands must not count as scoring requests";
}

TEST(ServeLoop, FeatureNamedCmdStillScores) {
  // A request whose *feature* is named "cmd" contains the "\"cmd\"" substring
  // but has no top-level command — it must fall through to scoring (here: an
  // unknown-feature error identical to the stdin pipeline's).
  ServeOptions options;
  options.default_model = fixture().path;
  ModelCache cache(2);
  std::istringstream in("{\"id\":1,\"values\":{\"cmd\":1.5}}\n");
  std::ostringstream out;
  const ServeStats stats = run_serve_loop(in, out, options, cache, pool());
  const JsonValue response = parse_json(out.str());
  const JsonValue* error = response.find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_NE(error->as_string().find("unknown feature"), std::string::npos) << out.str();
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.health, 0u);
}

}  // namespace
}  // namespace frac
