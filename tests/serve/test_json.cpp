// The serve loop's JSON parser: value coverage, escapes, error offsets.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "util/errors.hpp"

namespace frac {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(R"({"id": 7, "values": [1, null, -2.5], "opts": {"k": 3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("id")->as_number(), 7.0);
  const auto& values = v.find("values")->as_array();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].as_number(), 1.0);
  EXPECT_TRUE(values[1].is_null());
  EXPECT_EQ(values[2].as_number(), -2.5);
  EXPECT_EQ(v.find("opts")->find("k")->as_number(), 3.0);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");  // A, é in UTF-8
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text = R"({"a":[1,2.5,null,true],"b":"x\"y"})";
  const JsonValue v = parse_json(text);
  EXPECT_EQ(parse_json(v.dump()).dump(), v.dump());
}

TEST(Json, DumpKeepsFullDoublePrecision) {
  const double value = 0.1 + 0.2;  // not representable as a short decimal
  const JsonValue v = parse_json("0.30000000000000004");
  EXPECT_EQ(v.as_number(), value);
  EXPECT_EQ(parse_json(v.dump()).as_number(), value);
}

TEST(Json, ErrorsNameSourceAndOffset) {
  try {
    parse_json("{\"a\": }", "line 3");
    FAIL() << "malformed JSON parsed";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(Json, RejectsTrailingContent) {
  EXPECT_THROW(parse_json("1 2"), ParseError);
  EXPECT_THROW(parse_json("{} x"), ParseError);
  EXPECT_NO_THROW(parse_json("{}  "));
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "01", "+1",
                          "{\"a\":1,}", "[1,]", "nan"}) {
    EXPECT_THROW(parse_json(bad), ParseError) << "accepted: " << bad;
  }
}

}  // namespace
}  // namespace frac
