// The serve loop's JSON parser: value coverage, escapes, error offsets,
// RFC 8259 number grammar, locale immunity, and surrogate-pair decoding.
#include "serve/json.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <string>

#include "util/errors.hpp"

namespace frac {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const JsonValue v = parse_json(R"({"id": 7, "values": [1, null, -2.5], "opts": {"k": 3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("id")->as_number(), 7.0);
  const auto& values = v.find("values")->as_array();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].as_number(), 1.0);
  EXPECT_TRUE(values[1].is_null());
  EXPECT_EQ(values[2].as_number(), -2.5);
  EXPECT_EQ(v.find("opts")->find("k")->as_number(), 3.0);
  EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");  // A, é in UTF-8
}

TEST(Json, RoundTripsThroughDump) {
  const std::string text = R"({"a":[1,2.5,null,true],"b":"x\"y"})";
  const JsonValue v = parse_json(text);
  EXPECT_EQ(parse_json(v.dump()).dump(), v.dump());
}

TEST(Json, DumpKeepsFullDoublePrecision) {
  const double value = 0.1 + 0.2;  // not representable as a short decimal
  const JsonValue v = parse_json("0.30000000000000004");
  EXPECT_EQ(v.as_number(), value);
  EXPECT_EQ(parse_json(v.dump()).as_number(), value);
}

TEST(Json, ErrorsNameSourceAndOffset) {
  try {
    parse_json("{\"a\": }", "line 3");
    FAIL() << "malformed JSON parsed";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("byte"), std::string::npos) << what;
  }
}

TEST(Json, RejectsTrailingContent) {
  EXPECT_THROW(parse_json("1 2"), ParseError);
  EXPECT_THROW(parse_json("{} x"), ParseError);
  EXPECT_NO_THROW(parse_json("{}  "));
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad : {"", "{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "01", "+1",
                          "{\"a\":1,}", "[1,]", "nan"}) {
    EXPECT_THROW(parse_json(bad), ParseError) << "accepted: " << bad;
  }
}

TEST(Json, RejectsNonRfc8259Numbers) {
  // strtod accepted all of these; RFC 8259 §6 does not.
  for (const char* bad : {"1.", ".5", "-.5", "1.e5", "1e", "1e+", "1E-", "-", "--1", "+1",
                          "0x10", "1d4", "infinity", "00", "01.5"}) {
    EXPECT_THROW(parse_json(bad), ParseError) << "accepted: " << bad;
  }
}

TEST(Json, AcceptsTheFullRfc8259NumberGrammar) {
  EXPECT_EQ(parse_json("0").as_number(), 0.0);
  EXPECT_EQ(parse_json("-0").as_number(), 0.0);
  EXPECT_TRUE(std::signbit(parse_json("-0").as_number()));
  EXPECT_EQ(parse_json("0.5").as_number(), 0.5);
  EXPECT_EQ(parse_json("10").as_number(), 10.0);
  EXPECT_EQ(parse_json("1e5").as_number(), 1e5);
  EXPECT_EQ(parse_json("1E+5").as_number(), 1e5);
  EXPECT_EQ(parse_json("12.25e-3").as_number(), 12.25e-3);
  EXPECT_EQ(parse_json("0e0").as_number(), 0.0);
  EXPECT_EQ(parse_json("1.7976931348623157e308").as_number(), 1.7976931348623157e308);
  EXPECT_EQ(parse_json("5e-324").as_number(), 5e-324);  // smallest subnormal
}

TEST(Json, OutOfRangeNumbersSaturateLikeStrtod) {
  // Out-of-range magnitudes keep strtod's contract: overflow to ±HUGE_VAL,
  // underflow to ±0 — from_chars alone leaves the value unset on ERANGE.
  EXPECT_EQ(parse_json("1e999").as_number(), HUGE_VAL);
  EXPECT_EQ(parse_json("-1e999").as_number(), -HUGE_VAL);
  EXPECT_EQ(parse_json("1e-999").as_number(), 0.0);
  EXPECT_TRUE(std::signbit(parse_json("-1e-999").as_number()));
  // The exponent estimate must weigh the mantissa's leading zeros/digits.
  EXPECT_EQ(parse_json("0.0001e312").as_number(), 1e308);
  EXPECT_EQ(parse_json("1000e305").as_number(), 1e308);
  EXPECT_EQ(parse_json("0e999").as_number(), 0.0);
  EXPECT_EQ(parse_json("0.0e-999").as_number(), 0.0);
}

/// Applies a decimal-comma locale for the scope, or skips the test when the
/// container has none installed.
class CommaLocaleGuard {
 public:
  CommaLocaleGuard() {
    previous_ = std::setlocale(LC_NUMERIC, nullptr);
    for (const char* name : {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8",
                             "it_IT.UTF-8", "es_ES.UTF-8"}) {
      if (std::setlocale(LC_NUMERIC, name) != nullptr) {
        active_ = true;
        return;
      }
    }
  }
  ~CommaLocaleGuard() { std::setlocale(LC_NUMERIC, previous_.c_str()); }
  bool active() const { return active_; }

 private:
  std::string previous_;
  bool active_ = false;
};

TEST(Json, NumbersAreLocaleIndependent) {
  // A linked library calling setlocale(LC_NUMERIC, "de_DE") must not corrupt
  // the protocol: strtod/%.17g honor the locale ('.' becomes ','), the
  // from_chars/to_chars paths do not.
  const CommaLocaleGuard guard;
  if (!guard.active()) GTEST_SKIP() << "no decimal-comma locale installed";
  EXPECT_EQ(parse_json("2.5").as_number(), 2.5);
  EXPECT_EQ(parse_json("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(parse_json("2.5").dump(), "2.5");
  EXPECT_EQ(parse_json("0.30000000000000004").dump(), "0.30000000000000004");
  EXPECT_THROW(parse_json("2,5"), ParseError);
}

TEST(Json, SurrogatePairsDecodeToSupplementaryPlanes) {
  // \ud83d\ude00 is U+1F600 (😀): one code point, 4-byte UTF-8.
  EXPECT_EQ(parse_json("\"\\ud83d\\ude00\"").as_string(), "\xf0\x9f\x98\x80");
  EXPECT_EQ(parse_json("\"\\uD83D\\uDE00\"").as_string(), "\xf0\x9f\x98\x80");
  // U+10000, the first supplementary code point.
  EXPECT_EQ(parse_json("\"\\ud800\\udc00\"").as_string(), "\xf0\x90\x80\x80");
  // U+10FFFF, the last.
  EXPECT_EQ(parse_json("\"\\udbff\\udfff\"").as_string(), "\xf4\x8f\xbf\xbf");
  // Pairs embedded in surrounding text.
  EXPECT_EQ(parse_json("\"a\\ud83d\\ude00b\"").as_string(), "a\xf0\x9f\x98\x80" "b");
}

TEST(Json, LoneSurrogatesBecomeReplacementCharacters) {
  const std::string replacement = "\xef\xbf\xbd";  // U+FFFD
  EXPECT_EQ(parse_json("\"\\ud83d\"").as_string(), replacement);
  EXPECT_EQ(parse_json("\"\\udc00\"").as_string(), replacement);  // low alone
  EXPECT_EQ(parse_json("\"\\ud83dx\"").as_string(), replacement + "x");
  // High surrogate followed by a non-surrogate escape: the second escape
  // must still decode on its own.
  EXPECT_EQ(parse_json("\"\\ud83d\\u0041\"").as_string(), replacement + "A");
  // Two high surrogates: two replacements.
  EXPECT_EQ(parse_json("\"\\ud83d\\ud83d\"").as_string(), replacement + replacement);
}

TEST(Json, SurrogatePairsSurviveDumpRoundTrips) {
  const JsonValue v = parse_json("\"\\ud83d\\ude00 ok\"");
  EXPECT_EQ(parse_json(v.dump()).as_string(), v.as_string());
}

TEST(Json, DumpParseDumpIsAFixedPoint) {
  // dump(parse(dump(x))) == dump(x): the printed form must re-parse to the
  // same value and re-print identically, for every value shape at once.
  for (const char* text :
       {"0.30000000000000004", "-0", "5e-324", "1.7976931348623157e308", "42",
        "-12345678901234567", "1e-7", "[1,2.5,null,true,false]",
        R"({"a":[0.1,{"b":"x\"y"},[]],"c":-0.25})", "\"\\ud83d\\ude00\"", "[[[]]]",
        R"({"deep":{"deeper":{"n":6.02e23}}})"}) {
    const std::string once = parse_json(text).dump();
    const std::string twice = parse_json(once).dump();
    EXPECT_EQ(twice, once) << "not a fixed point for: " << text;
  }
}

}  // namespace
}  // namespace frac
