// Load-once serving: ModelBundle zero-copy loads, ScoringEngine bit-identity
// with the direct FracModel path (including 1-vs-N client threads), the LRU
// ModelCache's hit/reload/evict behavior, and the NDJSON request loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "serialize/model_bundle.hpp"
#include "serve/json.hpp"
#include "serve/model_cache.hpp"
#include "serve/scoring_engine.hpp"
#include "serve/server.hpp"
#include "util/errors.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(4);
  return p;
}

struct Fixture {
  FracModel model;
  Dataset test;
  std::string path;  // binary model file in TempDir
};

/// One trained model + test set + saved binary file, shared by the suite.
const Fixture& fixture() {
  static const Fixture f = [] {
    ExpressionModelConfig c;
    c.features = 20;
    c.modules = 2;
    c.genes_per_module = 5;
    c.disease_modules = 1;
    c.seed = 71;
    const ExpressionModel gen(c);
    Rng rng(171);
    const Dataset train = gen.sample(25, Label::kNormal, rng);
    Fixture built{FracModel::train(train, {}, pool()),
                  gen.sample(10, Label::kAnomaly, rng),
                  ::testing::TempDir() + "serve_fixture.fracmdl"};
    built.model.save_file(built.path, ModelFormat::kBinary);
    return built;
  }();
  return f;
}

Matrix test_rows(const Dataset& data) {
  Matrix rows(data.sample_count(), data.feature_count());
  for (std::size_t i = 0; i < data.sample_count(); ++i) {
    const auto src = data.values().row(i);
    std::copy(src.begin(), src.end(), rows.row(i).begin());
  }
  return rows;
}

TEST(ModelBundle, MmapLoadMatchesDirectModel) {
  const auto bundle = ModelBundle::open(fixture().path);
  EXPECT_TRUE(bundle->binary_format());
  EXPECT_TRUE(bundle->zero_copy());
  EXPECT_GT(bundle->file_bytes(), 0u);
  EXPECT_EQ(bundle->model().unit_count(), fixture().model.unit_count());
}

TEST(ModelBundle, TextModelsLoadThroughTheSameApi) {
  const std::string path = ::testing::TempDir() + "bundle_text.frac";
  fixture().model.save_file(path, ModelFormat::kText);
  const auto bundle = ModelBundle::open(path);
  std::remove(path.c_str());
  EXPECT_FALSE(bundle->binary_format());
  EXPECT_FALSE(bundle->zero_copy());
  EXPECT_EQ(bundle->model().unit_count(), fixture().model.unit_count());
}

TEST(ModelBundle, MissingAndEmptyFilesFail) {
  EXPECT_THROW(ModelBundle::open(::testing::TempDir() + "no_such_model.fracmdl"), IoError);
  const std::string empty = ::testing::TempDir() + "empty.fracmdl";
  std::ofstream(empty).flush();
  EXPECT_THROW(ModelBundle::open(empty), ParseError);
  std::remove(empty.c_str());
}

TEST(ScoringEngine, BitIdenticalToDirectScore) {
  const ScoringEngine engine(ModelBundle::open(fixture().path));
  const auto direct = fixture().model.score(fixture().test, pool());
  const auto served = engine.score(test_rows(fixture().test), pool());
  ASSERT_EQ(served.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) EXPECT_EQ(served[i], direct[i]);
}

TEST(ScoringEngine, BitIdenticalAcrossConcurrentClients) {
  const ScoringEngine engine(ModelBundle::open(fixture().path));
  const auto baseline = engine.score(test_rows(fixture().test), pool());

  constexpr int kClients = 8;
  std::vector<std::vector<double>> results(kClients);
  std::atomic<int> mismatches{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        results[c] = engine.score(test_rows(fixture().test), pool());
        if (results[c] != baseline) mismatches.fetch_add(1);
      });
    }
    for (auto& t : clients) t.join();
  }
  EXPECT_EQ(mismatches.load(), 0) << "concurrent clients saw different NS values";
}

TEST(ScoringEngine, ExplainRanksContributionsDescending) {
  const ScoringEngine engine(ModelBundle::open(fixture().path));
  const auto top = engine.explain(test_rows(fixture().test), 5, pool());
  ASSERT_EQ(top.size(), fixture().test.sample_count());
  for (const auto& sample : top) {
    ASSERT_LE(sample.size(), 5u);
    for (std::size_t i = 1; i < sample.size(); ++i) {
      EXPECT_GE(sample[i - 1].ns, sample[i].ns);
    }
    for (const NsContribution& c : sample) EXPECT_LT(c.feature, engine.feature_count());
  }
}

TEST(ScoringEngine, FeatureIndexResolvesSchemaNames) {
  const ScoringEngine engine(ModelBundle::open(fixture().path));
  const auto& schema = engine.model().schema();
  EXPECT_EQ(engine.feature_index(schema[0].name), 0u);
  EXPECT_EQ(engine.feature_index(schema[schema.size() - 1].name), schema.size() - 1);
  EXPECT_EQ(engine.feature_index("definitely-not-a-gene"), ScoringEngine::npos);
}

TEST(ScoringEngine, RejectsWrongWidthRows) {
  const ScoringEngine engine(ModelBundle::open(fixture().path));
  EXPECT_THROW(engine.score(Matrix(1, 3), pool()), std::invalid_argument);
}

TEST(ModelCache, HitsReuseTheLoadedEngine) {
  ModelCache cache(2);
  const auto a = cache.get(fixture().path);
  const auto b = cache.get(fixture().path);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ModelCache, EvictsLeastRecentlyUsed) {
  const std::string second = ::testing::TempDir() + "cache_second.fracmdl";
  const std::string third = ::testing::TempDir() + "cache_third.fracmdl";
  fixture().model.save_file(second, ModelFormat::kBinary);
  fixture().model.save_file(third, ModelFormat::kBinary);

  ModelCache cache(2);
  const auto a = cache.get(fixture().path);
  cache.get(second);
  cache.get(fixture().path);  // bump: `second` becomes the LRU entry
  cache.get(third);           // evicts `second`
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.get(fixture().path).get(), a.get()) << "hot entry was evicted";

  std::remove(second.c_str());
  std::remove(third.c_str());
}

TEST(ModelCache, IdenticalRewriteKeepsTheEngineChangedContentSwapsIt) {
  const std::string path = ::testing::TempDir() + "cache_reload.fracmdl";
  fixture().model.save_file(path, ModelFormat::kBinary);
  ModelCache cache(2);
  const auto original = cache.get(path);

  // Rewrite with identical bytes (fresh mtime): the CRC probe keeps the
  // loaded engine, so zero-copy spans held by clients stay valid.
  fixture().model.save_file(path, ModelFormat::kBinary);
  EXPECT_EQ(cache.get(path).get(), original.get());

  // Genuinely different content must swap the engine.
  ExpressionModelConfig c;
  c.features = 20;
  c.modules = 2;
  c.genes_per_module = 5;
  c.disease_modules = 1;
  c.seed = 99;
  Rng rng(199);
  const Dataset train = ExpressionModel(c).sample(22, Label::kNormal, rng);
  FracModel::train(train, {}, pool()).save_file(path, ModelFormat::kBinary);
  const auto swapped = cache.get(path);
  EXPECT_NE(swapped.get(), original.get());
  // The old engine stays usable while a client holds it (shared_ptr pin).
  EXPECT_EQ(original->model().unit_count(), fixture().model.unit_count());

  std::remove(path.c_str());
}

TEST(ModelCache, ColdStampedeLoadsOnceAndSharesTheEngine) {
  // N threads miss on the same path at once: single-flight must run exactly
  // one load, with every caller handed the same engine.
  const std::string path = ::testing::TempDir() + "cache_stampede.fracmdl";
  fixture().model.save_file(path, ModelFormat::kBinary);
  Counter& misses = metrics_counter("serve.model_cache.misses");
  const std::uint64_t misses_before = misses.value();

  ModelCache cache(4);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<std::shared_ptr<const ScoringEngine>> engines(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        ready.fetch_add(1);
        while (ready.load() < kThreads) {
        }  // barrier: all threads reach get() together
        engines[t] = cache.get(path);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(engines[t].get(), engines[0].get()) << "thread " << t << " got its own load";
  }
  EXPECT_EQ(misses.value() - misses_before, 1u)
      << "a cold-path stampede must open the bundle exactly once";
  EXPECT_EQ(cache.size(), 1u);
  std::remove(path.c_str());
}

TEST(ModelCache, FileSwappedBetweenStatAndOpenIsCachedUnderItsRealIdentity) {
  // TOCTOU: the file is replaced after the flight's stat but before the
  // open. The cache must key the entry by the *post-open* identity — so the
  // very next get() is a hit, not a spurious reload of the swapped file.
  const std::string path = ::testing::TempDir() + "cache_toctou.fracmdl";
  fixture().model.save_file(path, ModelFormat::kBinary);

  // A different model (different seed → different bytes and size).
  ExpressionModelConfig c;
  c.features = 20;
  c.modules = 2;
  c.genes_per_module = 5;
  c.disease_modules = 1;
  c.seed = 99;
  Rng rng(199);
  const FracModel other =
      FracModel::train(ExpressionModel(c).sample(22, Label::kNormal, rng), {}, pool());

  ModelCache cache(4);
  std::atomic<int> swaps{0};
  cache.set_test_hook_after_stat([&] {
    if (swaps.fetch_add(1) == 0) other.save_file(path, ModelFormat::kBinary);
  });
  const auto loaded = cache.get(path);
  cache.set_test_hook_after_stat(nullptr);

  Counter& misses = metrics_counter("serve.model_cache.misses");
  Counter& reloads = metrics_counter("serve.model_cache.reloads");
  const std::uint64_t misses_before = misses.value();
  const std::uint64_t reloads_before = reloads.value();
  const auto again = cache.get(path);
  EXPECT_EQ(again.get(), loaded.get())
      << "entry was cached under the pre-swap identity (stat/open race)";
  EXPECT_EQ(misses.value(), misses_before);
  EXPECT_EQ(reloads.value(), reloads_before);
  std::remove(path.c_str());
}

TEST(ModelCache, FailedLoadPropagatesToEveryStampedingCaller) {
  const std::string path = ::testing::TempDir() + "cache_absent.fracmdl";
  ModelCache cache(2);
  constexpr int kThreads = 4;
  std::atomic<int> ready{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      try {
        (void)cache.get(path);
      } catch (const IoError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_EQ(cache.size(), 0u);
}

ServeStats run_lines(const std::string& input, const ServeOptions& options, std::string* output) {
  ModelCache cache(2);
  std::istringstream in(input);
  std::ostringstream out;
  const ServeStats stats = run_serve_loop(in, out, options, cache, pool());
  *output = out.str();
  return stats;
}

TEST(ServeLoop, ScoresMatchDirectModelBitIdentically) {
  const auto direct = fixture().model.score(fixture().test, pool());
  std::string input;
  for (std::size_t i = 0; i < fixture().test.sample_count(); ++i) {
    std::string line = "{\"id\":" + std::to_string(i) + ",\"values\":[";
    const auto row = fixture().test.values().row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j > 0) line += ',';
      char cell[32];
      std::snprintf(cell, sizeof cell, "%.17g", row[j]);
      line += cell;
    }
    input += line + "]}\n";
  }

  std::string output;
  const ServeStats stats = run_lines(input, {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, fixture().test.sample_count());
  EXPECT_EQ(stats.samples, fixture().test.sample_count());
  EXPECT_EQ(stats.errors, 0u);

  std::istringstream lines(output);
  std::string line;
  std::size_t i = 0;
  while (std::getline(lines, line)) {
    const JsonValue response = parse_json(line);
    ASSERT_EQ(response.find("id")->as_number(), static_cast<double>(i));
    ASSERT_NE(response.find("ns"), nullptr) << line;
    EXPECT_EQ(response.find("ns")->as_number(), direct[i]) << "sample " << i;
    ++i;
  }
  EXPECT_EQ(i, direct.size());
}

TEST(ServeLoop, BatchNamedValuesAndTopK) {
  // A batch of two zero rows, a named-values request, and a top_k request.
  const auto& schema = fixture().model.schema();
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  const std::string input = "{\"id\":\"b\",\"batch\":[[" + zeros + "],[" + zeros +
                            "]]}\n{\"id\":\"n\",\"values\":{\"" + schema[0].name +
                            "\":1.5}}\n{\"id\":\"k\",\"values\":[" + zeros +
                            "],\"top_k\":3}\n";

  std::string output;
  const ServeStats stats = run_lines(input, {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.samples, 4u);
  EXPECT_EQ(stats.errors, 0u);

  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue batch = parse_json(line);
  ASSERT_TRUE(batch.find("ns")->is_array());
  ASSERT_EQ(batch.find("ns")->as_array().size(), 2u);
  EXPECT_EQ(batch.find("ns")->as_array()[0].as_number(),
            batch.find("ns")->as_array()[1].as_number());

  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue named = parse_json(line);
  EXPECT_TRUE(named.find("ns")->is_number());

  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue with_top = parse_json(line);
  ASSERT_NE(with_top.find("top"), nullptr) << line;
  const auto& top = with_top.find("top")->as_array();
  ASSERT_LE(top.size(), 3u);
  ASSERT_GE(top.size(), 1u);
  EXPECT_NE(top[0].find("feature"), nullptr);
  EXPECT_NE(top[0].find("ns"), nullptr);
}

TEST(ServeLoop, BadLinesYieldErrorResponsesAndTheLoopContinues) {
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  const std::string input = "this is not json\n"
                            "{\"id\":1,\"values\":[1,2]}\n"
                            "\n"  // blank lines are skipped
                            "{\"id\":2,\"values\":[" + zeros + "]}\n";
  std::string output;
  const ServeStats stats = run_lines(input, {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.errors, 2u);

  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(parse_json(line).find("error"), nullptr) << line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(parse_json(line).find("error"), nullptr) << line;
  EXPECT_EQ(parse_json(line).find("id")->as_number(), 1.0);
  ASSERT_TRUE(std::getline(lines, line));
  ASSERT_NE(parse_json(line).find("ns"), nullptr) << line;
  EXPECT_FALSE(std::getline(lines, line)) << "unexpected extra output: " << line;
}

TEST(ServeLoop, EofMidLineStillScoresTheFinalLine) {
  // getline yields a final unterminated line; it must be served, not lost.
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string output;
  const ServeStats stats =
      run_lines("{\"id\":3,\"values\":[" + zeros + "]}", {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.errors, 0u);
  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("id")->as_number(), 3.0);
  EXPECT_NE(response.find("ns"), nullptr) << output;
}

TEST(ServeLoop, OversizedRequestLineIsRejectedNotScored) {
  ServeOptions options{fixture().path, 0};
  options.max_request_bytes = 64;
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  const std::string long_line =
      "{\"id\":1,\"values\":[" + zeros + "],\"pad\":\"" + std::string(100, 'x') + "\"}";
  std::string output;
  const ServeStats stats =
      run_lines(long_line + "\n{\"id\":2,\"values\":[" + zeros + "]}\n", options, &output);
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.errors, 1u);

  std::istringstream lines(output);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  const JsonValue error = parse_json(line);
  ASSERT_NE(error.find("error"), nullptr) << line;
  EXPECT_NE(error.find("error")->as_string().find("exceeds"), std::string::npos);
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_NE(parse_json(line).find("ns"), nullptr) << "loop died after oversized line";
}

TEST(ServeLoop, TopKBeyondFeatureCountClampsToEveryFeature) {
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string output;
  const ServeStats stats = run_lines(
      "{\"id\":0,\"values\":[" + zeros + "],\"top_k\":1000}\n", {fixture().path, 0}, &output);
  EXPECT_EQ(stats.errors, 0u) << output;
  const JsonValue response = parse_json(output);
  ASSERT_NE(response.find("top"), nullptr) << output;
  const auto& top = response.find("top")->as_array();
  EXPECT_LE(top.size(), 20u);
  EXPECT_GE(top.size(), 1u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].find("ns")->as_number(), top[i].find("ns")->as_number());
  }
}

TEST(ServeLoop, BatchRowsMayMixArrayAndObjectForms) {
  // Row 1 positional, row 2 named: the named row with every feature present
  // must score identically to the positional one.
  const auto& schema = fixture().model.schema();
  std::string zeros = "0";
  std::string named = "\"" + schema[0].name + "\":0";
  for (int j = 1; j < 20; ++j) {
    zeros += ",0";
    named += ",\"" + schema[static_cast<std::size_t>(j)].name + "\":0";
  }
  std::string output;
  const ServeStats stats = run_lines(
      "{\"id\":0,\"batch\":[[" + zeros + "],{" + named + "}]}\n", {fixture().path, 0}, &output);
  EXPECT_EQ(stats.errors, 0u) << output;
  EXPECT_EQ(stats.samples, 2u);
  const JsonValue response = parse_json(output);
  const auto& ns = response.find("ns")->as_array();
  ASSERT_EQ(ns.size(), 2u);
  EXPECT_EQ(ns[0].as_number(), ns[1].as_number())
      << "named row diverged from the equivalent positional row";
}

TEST(ServeLoop, NullCellsAreMissingValues) {
  // A row of all nulls scores like a row of all NaN: every unit reports its
  // missing-input path, and the response is still well-formed JSON.
  std::string nulls = "null";
  for (int j = 1; j < 20; ++j) nulls += ",null";
  std::string output;
  const ServeStats stats = run_lines("{\"id\":0,\"values\":[" + nulls + "]}\n",
                                     {fixture().path, 0}, &output);
  EXPECT_EQ(stats.errors, 0u);
  const JsonValue response = parse_json(output);
  ASSERT_NE(response.find("ns"), nullptr) << output;
}

TEST(CommandTable, EnumeratesRegisteredCommandsSortedWithHelp) {
  const auto table = serve_command_table();
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table[0].name, "drift");
  EXPECT_EQ(table[1].name, "health");
  EXPECT_EQ(table[2].name, "reload");
  EXPECT_EQ(table[3].name, "stats");
  for (const CommandInfo& info : table) {
    EXPECT_FALSE(info.help.empty()) << info.name;
  }
}

TEST(ServeLoop, StatsCommandDumpsTheCompactMetricsRegistry) {
  std::string output;
  const ServeStats stats =
      run_lines("{\"id\":\"s\",\"cmd\":\"stats\"}\n", {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, 0u) << "commands are not scoring requests";
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.health, 0u) << "stats is not a health probe";

  const JsonValue response = parse_json(output);
  EXPECT_EQ(response.find("id")->as_string(), "s");
  const JsonValue* snapshot = response.find("stats");
  ASSERT_NE(snapshot, nullptr) << output;
  ASSERT_NE(snapshot->find("counters"), nullptr);
  ASSERT_NE(snapshot->find("gauges"), nullptr);
  ASSERT_NE(snapshot->find("histograms"), nullptr);
  EXPECT_TRUE(snapshot->find("counters")->find("serve.requests")->is_number());
  EXPECT_TRUE(snapshot->find("counters")->find("serve.drift.samples")->is_number())
      << "streaming counters must be pre-registered";
  EXPECT_TRUE(snapshot->find("counters")->find("stream.retrains")->is_number());
}

TEST(ServeLoop, ReloadCommandRefreshesTheDefaultModel) {
  const std::uint64_t invalidations_before =
      metrics_counter("serve.model_cache.invalidations").value();
  // A scoring request first, so the default model is resident in the cache —
  // reload on a cold cache has nothing to invalidate.
  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string output;
  const ServeStats stats = run_lines(
      "{\"id\":0,\"values\":[" + zeros +
          "]}\n"
          "{\"id\":1,\"cmd\":\"reload\"}\n"
          "{\"id\":2,\"cmd\":\"reload\",\"model\":\"/no/such/model.fracmdl\"}\n"
          "{\"id\":3,\"cmd\":\"reload\",\"model\":7}\n",
      {fixture().path, 0}, &output);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.errors, 2u) << "bad path and non-string model are errors";

  std::istringstream lines(output);
  std::string scored, first, second, third;
  ASSERT_TRUE(std::getline(lines, scored));
  ASSERT_TRUE(std::getline(lines, first));
  ASSERT_TRUE(std::getline(lines, second));
  ASSERT_TRUE(std::getline(lines, third));

  const JsonValue ok = parse_json(first);
  const JsonValue* reload = ok.find("reload");
  ASSERT_NE(reload, nullptr) << first;
  EXPECT_EQ(reload->find("model")->as_string(), fixture().path);
  EXPECT_TRUE(reload->find("model_crc32")->is_number());
  EXPECT_GE(metrics_counter("serve.model_cache.invalidations").value(),
            invalidations_before + 1)
      << "reload must go through ModelCache::invalidate";

  ASSERT_NE(parse_json(second).find("error"), nullptr) << second;
  ASSERT_NE(parse_json(third).find("error"), nullptr) << third;
}

TEST(ServeLoop, DriftCommandReportsUnarmedMonitor) {
  std::string output;
  (void)run_lines("{\"id\":\"d\",\"cmd\":\"drift\"}\n", {fixture().path, 0}, &output);
  const JsonValue response = parse_json(output);
  const JsonValue* drift = response.find("drift");
  ASSERT_NE(drift, nullptr) << output;
  ASSERT_NE(drift->find("monitoring"), nullptr);
  EXPECT_FALSE(drift->find("monitoring")->as_bool());
}

TEST(ServeLoop, ArmedDriftMonitorObservesEveryScoredSample) {
  ServeOptions options;
  options.default_model = fixture().path;
  options.drift = std::make_shared<ServeDriftMonitor>(
      DriftMonitor(fixture().model.score(fixture().test, pool())));

  std::string zeros = "0";
  for (int j = 1; j < 20; ++j) zeros += ",0";
  std::string output;
  (void)run_lines("{\"id\":1,\"values\":[" + zeros + "]}\n"
                  "{\"id\":2,\"batch\":[[" + zeros + "],[" + zeros + "]]}\n"
                  "{\"id\":\"d\",\"cmd\":\"drift\"}\n",
                  options, &output);

  std::istringstream lines(output);
  std::string line;
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(std::getline(lines, line));
  const JsonValue response = parse_json(line);
  const JsonValue* drift = response.find("drift");
  ASSERT_NE(drift, nullptr) << line;
  EXPECT_TRUE(drift->find("monitoring")->as_bool());
  EXPECT_EQ(drift->find("samples")->as_number(), 3.0)
      << "one scalar + one 2-row batch = 3 observed samples";
  EXPECT_TRUE(drift->find("statistic")->is_number());
  EXPECT_TRUE(drift->find("threshold")->is_number());
  EXPECT_EQ(options.drift->status().samples_seen, 3u);
}

}  // namespace
}  // namespace frac
