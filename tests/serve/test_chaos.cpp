// Network chaos harness for the TCP serving tier (docs/serve_protocol.md,
// "Chaos invariants").
//
// A fault-armed server (all four serve_* injection sites firing on the
// pure-hash contract of util/fault_injection.hpp) faces concurrent
// adversarial clients — slowloris drips, mid-JSON connection resets,
// stalled readers, oversize floods — alongside well-behaved clients.
// The invariants, checked from the client side plus the final ServeStats:
//
//   1. No wedge: every blocking client read either completes or ends in
//      EOF/reset. A receive *timeout* means the server stopped answering
//      and fails the test.
//   2. Byte identity survives perturbation: the response stream on any
//      connection is a prefix of the stdin loop's output for the same
//      requests (a reset truncates the stream; it never corrupts it), and
//      at least one well-behaved client sees the full output verbatim.
//   3. Protection fires: slowloris connections are reaped, stalled readers
//      are closed — neither can pin the server or its shutdown drain.
//   4. The drain terminates: request_stop() returns within the watchdog
//      budget with every accepted-and-admitted request answered or its
//      connection closed.
//
// Everything here must also hold under ThreadSanitizer — the CI chaos job
// runs exactly this suite with TSan on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <future>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "data/expression_generator.hpp"
#include "frac/frac.hpp"
#include "serve/model_cache.hpp"
#include "serve/server.hpp"
#include "serve/socket_server.hpp"
#include "util/fault_injection.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"

namespace frac {
namespace {

ThreadPool& pool() {
  static ThreadPool p(4);
  return p;
}

struct Fixture {
  FracModel model;
  Dataset test;
  std::string path;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    ExpressionModelConfig c;
    c.features = 20;
    c.modules = 2;
    c.genes_per_module = 5;
    c.disease_modules = 1;
    c.seed = 73;
    const ExpressionModel gen(c);
    Rng rng(173);
    const Dataset train = gen.sample(25, Label::kNormal, rng);
    Fixture built{FracModel::train(train, {}, pool()),
                  gen.sample(8, Label::kAnomaly, rng),
                  ::testing::TempDir() + "chaos_fixture.fracmdl"};
    built.model.save_file(built.path, ModelFormat::kBinary);
    return built;
  }();
  return f;
}

std::vector<std::string> fixture_request_lines() {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < fixture().test.sample_count(); ++i) {
    const auto row = fixture().test.values().row(i);
    std::string line = "{\"id\":" + std::to_string(i) + ",\"values\":[";
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (j != 0) line.push_back(',');
      line += format_g17(row[j]);
    }
    line += "]}";
    lines.push_back(std::move(line));
  }
  return lines;
}

std::string stdin_loop_output(const std::vector<std::string>& lines,
                              const ServeOptions& options) {
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ModelCache cache(2);
  std::istringstream in(input);
  std::ostringstream out;
  (void)run_serve_loop(in, out, options, cache, pool());
  return out.str();
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

void set_recv_timeout(int fd, int seconds) {
  struct timeval tv = {};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
}

/// Best-effort send; false when the connection died mid-send (chaos, not a
/// test failure — the reader still collects whatever was answered).
bool send_best_effort(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

enum class ReadEnd { kComplete, kClosed, kTimedOut };

/// Reads until `count` newlines, EOF/reset, or the SO_RCVTIMEO expires.
/// kTimedOut is the wedge signal: the connection is open but silent.
ReadEnd read_until(int fd, std::size_t count, std::string* out) {
  std::size_t newlines = 0;
  char chunk[4096];
  while (newlines < count) {
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n == 0) return ReadEnd::kClosed;
    if (n < 0) {
      return (errno == EAGAIN || errno == EWOULDBLOCK) ? ReadEnd::kTimedOut
                                                       : ReadEnd::kClosed;
    }
    for (ssize_t k = 0; k < n; ++k) {
      if (chunk[k] == '\n') ++newlines;
    }
    out->append(chunk, static_cast<std::size_t>(n));
  }
  return ReadEnd::kComplete;
}

/// Failures recorded by client threads, asserted on the main thread.
class FailureLog {
 public:
  void add(std::string message) {
    const std::lock_guard lock(mutex_);
    messages_.push_back(std::move(message));
  }
  std::string render() {
    const std::lock_guard lock(mutex_);
    std::string all;
    for (const std::string& m : messages_) all += m + "\n";
    return all;
  }
  bool empty() {
    const std::lock_guard lock(mutex_);
    return messages_.empty();
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> messages_;
};

bool wait_for_counter(Counter& counter, std::uint64_t before, int seconds) {
  const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (counter.value() == before) {
    if (std::chrono::steady_clock::now() > give_up) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

TEST(Chaos, ServeFaultSitesAreDeterministicPureFunctions) {
  const ScopedFaultPlan plan(
      "serve_accept:0.5:11,serve_read_short:0.5:12,serve_write_short:0.5:13,"
      "serve_conn_reset:0.5:14");
  ASSERT_TRUE(fault_plan_armed());
  const FaultSite sites[] = {FaultSite::kServeAccept, FaultSite::kServeReadShort,
                             FaultSite::kServeWriteShort, FaultSite::kServeConnReset};
  for (const FaultSite site : sites) {
    EXPECT_EQ(fault_site_from_name(fault_site_name(site)), site);
    std::size_t fired = 0;
    for (std::uint64_t key = 0; key < 1000; ++key) {
      const bool first = fault_fires(site, key);
      EXPECT_EQ(fault_fires(site, key), first) << "firing not deterministic";
      fired += first ? 1u : 0u;
    }
    // p=0.5 over 1000 keys: a correct hash cannot plausibly leave [350, 650].
    EXPECT_GT(fired, 350u) << fault_site_name(site);
    EXPECT_LT(fired, 650u) << fault_site_name(site);
  }
}

TEST(Chaos, TruncatedIoPreservesByteIdentity) {
  // Every socket read and write truncated to ONE byte — the worst legal
  // perturbation short of a reset. The response stream must still be
  // byte-identical to the stdin loop: truncation may only slow the bytes
  // down, never reorder, drop, or corrupt them.
  const std::vector<std::string> lines = fixture_request_lines();
  SocketServerOptions options;
  options.port = 0;
  options.serve.default_model = fixture().path;
  const std::string expected = stdin_loop_output(lines, options.serve);
  ASSERT_FALSE(expected.empty());

  const ScopedFaultPlan plan("serve_read_short:1:21,serve_write_short:1:22");
  ModelCache cache(4);
  SocketServer server(options);
  ServeStats stats;
  std::thread server_thread([&] { stats = server.run(cache, pool()); });

  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  set_recv_timeout(fd, 30);
  std::string input;
  for (const std::string& line : lines) input += line + "\n";
  ASSERT_TRUE(send_best_effort(fd, input));
  std::string got;
  EXPECT_EQ(read_until(fd, lines.size(), &got), ReadEnd::kComplete)
      << "one-byte I/O wedged the server";
  EXPECT_EQ(got, expected);
  ::close(fd);

  server.request_stop();
  server_thread.join();
  EXPECT_EQ(stats.requests, lines.size());
  EXPECT_EQ(stats.errors, 0u);
}

TEST(Chaos, AdversarialClientsAgainstFaultArmedServer) {
  const std::vector<std::string> lines = fixture_request_lines();
  SocketServerOptions options;
  options.port = 0;
  options.serve.default_model = fixture().path;
  options.serve.max_request_bytes = 1024;  // the flood's lines must overflow
  options.idle_timeout_ms = 100;
  options.write_stall_timeout_ms = 100;
  options.request_timeout_ms = 5000;  // generous: surviving requests score
  options.output_high_water = 16384;
  options.sndbuf_bytes = 8192;  // stalled readers must back up fast
  const std::string expected = stdin_loop_output(lines, options.serve);
  ASSERT_FALSE(expected.empty());
  std::string input;
  for (const std::string& line : lines) input += line + "\n";

  // All four serve sites armed at the acceptance floor or above, fixed
  // seeds: which connection draws which fault depends on accept order, but
  // every firing is a pure function of (site, seed, key).
  const ScopedFaultPlan plan(
      "serve_accept:0.05:101,serve_read_short:0.1:102,serve_write_short:0.1:103,"
      "serve_conn_reset:0.05:104");

  ModelCache cache(4);
  SocketServer server(options);
  ServeStats stats;
  std::thread server_thread([&] { stats = server.run(cache, pool()); });

  FailureLog failures;
  std::atomic<int> full_matches{0};
  Counter& reaped = metrics_counter("serve.reaped");
  Counter& stalled = metrics_counter("serve.timeouts");
  const std::uint64_t reaped_before = reaped.value();
  const std::uint64_t stalled_before = stalled.value();

  std::vector<std::thread> clients;

  // Well-behaved clients: pipeline the fixture requests, require a clean
  // prefix of the stdin loop's bytes every attempt, retry until one attempt
  // survives the chaos end to end.
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const int fd = connect_to(server.port());
        if (fd < 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          continue;
        }
        set_recv_timeout(fd, 10);
        (void)send_best_effort(fd, input);  // a reset mid-send is chaos, not failure
        std::string got;
        const ReadEnd end = read_until(fd, lines.size(), &got);
        ::close(fd);
        if (end == ReadEnd::kTimedOut) {
          failures.add("normal client " + std::to_string(c) +
                       ": server went silent (wedge) on attempt " + std::to_string(attempt));
          return;
        }
        if (expected.compare(0, got.size(), got) != 0) {
          failures.add("normal client " + std::to_string(c) +
                       ": response stream is not a prefix of the stdin loop's output");
          return;
        }
        if (got == expected) {
          full_matches.fetch_add(1);
          return;
        }
        // Truncated by a reset: try again on a fresh connection.
      }
    });
  }

  // Slowloris: drip bytes that never complete a line until the idle reaper
  // advances; a server that tolerates the drip forever fails below.
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (reaped.value() == reaped_before &&
             std::chrono::steady_clock::now() < give_up) {
        const int fd = connect_to(server.port());
        if (fd < 0) continue;
        for (int drip = 0; drip < 30 && reaped.value() == reaped_before; ++drip) {
          if (::send(fd, "{", 1, MSG_NOSIGNAL) <= 0) break;  // reaped or reset
          std::this_thread::sleep_for(std::chrono::milliseconds(15));
        }
        ::close(fd);
      }
    });
  }

  // Mid-JSON resets: abort (RST) halfway through a request line, repeatedly.
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      for (int k = 0; k < 10; ++k) {
        const int fd = connect_to(server.port());
        if (fd < 0) continue;
        (void)send_best_effort(fd, "{\"id\":7,\"values\":[1,2,");
        const struct linger abort_on_close = {1, 0};
        ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close, sizeof abort_on_close);
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    });
  }

  // Stalled readers: request big batches, never read, until the write-stall
  // timer has provably closed someone.
  const std::string zeros = [] {
    std::string z = "0";
    for (int j = 1; j < 20; ++j) z += ",0";
    return z;
  }();
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&] {
      std::string batch = "{\"batch\":[[" + zeros + "]";
      // ~880 bytes — under max_request_bytes. 200 responses x ~400 bytes of
      // scores is ~80 KB, far beyond sndbuf + rcvbuf + the high-water mark.
      for (int r = 1; r < 20; ++r) batch += ",[" + zeros + "]";
      batch += "]}\n";
      std::string flood;
      for (int k = 0; k < 200; ++k) flood += batch;
      const auto give_up = std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (stalled.value() == stalled_before &&
             std::chrono::steady_clock::now() < give_up) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) continue;
        const int tiny = 4096;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof tiny);
        struct sockaddr_in addr = {};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(server.port());
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof addr) != 0) {
          ::close(fd);
          continue;
        }
        // Blocking sends; the server closing us (stall timer) unblocks them.
        (void)send_best_effort(fd, flood);
        (void)wait_for_counter(stalled, stalled_before, 1);
        ::close(fd);
      }
    });
  }

  // Oversize floods: every line over max_request_bytes. Each must be
  // answered with the oversize error (or the connection reset by a fault) —
  // never silence.
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::string junk(4096, 'x');
      std::string flood;
      for (int k = 0; k < 10; ++k) flood += junk + "\n";
      const int fd = connect_to(server.port());
      if (fd < 0) return;
      set_recv_timeout(fd, 10);
      (void)send_best_effort(fd, flood);
      std::string got;
      if (read_until(fd, 10, &got) == ReadEnd::kTimedOut) {
        failures.add("flood client " + std::to_string(c) + ": server went silent (wedge)");
      }
      std::istringstream responses(got);
      std::string line;
      while (std::getline(responses, line)) {
        if (line.find("exceeds") == std::string::npos) {
          failures.add("flood client " + std::to_string(c) +
                       ": oversize line got a non-oversize answer: " + line);
        }
      }
      ::close(fd);
    });
  }

  for (std::thread& t : clients) t.join();

  EXPECT_TRUE(failures.empty()) << failures.render();
  EXPECT_GE(full_matches.load(), 1)
      << "no well-behaved client ever survived to a byte-identical full run";
  EXPECT_TRUE(wait_for_counter(reaped, reaped_before, 10))
      << "idle reaper never fired on a slowloris drip";
  EXPECT_TRUE(wait_for_counter(stalled, stalled_before, 10))
      << "write-stall timer never fired on a stalled reader";

  // The drain must terminate — open adversarial remnants, queued work, and
  // armed faults notwithstanding. A wedge here is the bug this harness
  // exists to catch, so give it a watchdog instead of hanging the suite.
  auto drained = std::async(std::launch::async, [&] {
    server.request_stop();
    server_thread.join();
  });
  ASSERT_EQ(drained.wait_for(std::chrono::seconds(60)), std::future_status::ready)
      << "graceful drain wedged under chaos";
  EXPECT_GE(stats.reaped, 1u);
  EXPECT_GE(stats.timeouts, 1u);
}

TEST(Chaos, ReloadUnderLoadServesEveryInFlightRequest) {
  // The zero-downtime rollout invariant: while well-behaved clients pipeline
  // scoring requests, a publisher thread repeatedly republishes the model
  // file (alternating two generations via the atomic temp+rename save) and
  // issues {"cmd":"reload"}. Every client response must be a complete,
  // well-formed score from one of the two generations — never an error,
  // never a dropped line, never a torn read of a half-written model.
  const std::string rollout_path = ::testing::TempDir() + "rollout.fracmdl";
  const FracModel& gen_a = fixture().model;
  const FracModel gen_b = [] {
    ExpressionModelConfig c;
    c.features = 20;
    c.modules = 2;
    c.genes_per_module = 5;
    c.disease_modules = 1;
    c.seed = 73;
    const ExpressionModel gen(c);
    Rng rng(373);  // different draw, same schema: a retrained generation
    return FracModel::train(gen.sample(25, Label::kNormal, rng), {}, pool());
  }();
  gen_a.save_file(rollout_path, ModelFormat::kBinary);

  const std::vector<std::string> lines = fixture_request_lines();
  SocketServerOptions options;
  options.port = 0;
  options.serve.default_model = rollout_path;
  const std::string expected_a = stdin_loop_output(lines, options.serve);
  gen_b.save_file(rollout_path, ModelFormat::kBinary);
  const std::string expected_b = stdin_loop_output(lines, options.serve);
  gen_a.save_file(rollout_path, ModelFormat::kBinary);
  ASSERT_NE(expected_a, expected_b) << "the two generations must be distinguishable";
  const auto split_lines = [](const std::string& text) {
    std::vector<std::string> out;
    std::istringstream in(text);
    for (std::string line; std::getline(in, line);) out.push_back(line);
    return out;
  };
  const std::vector<std::string> lines_a = split_lines(expected_a);
  const std::vector<std::string> lines_b = split_lines(expected_b);
  ASSERT_EQ(lines_a.size(), lines.size());
  ASSERT_EQ(lines_b.size(), lines.size());
  std::string input;
  for (const std::string& line : lines) input += line + "\n";

  ModelCache cache(4);
  SocketServer server(options);
  ServeStats stats;
  std::thread server_thread([&] { stats = server.run(cache, pool()); });

  FailureLog failures;
  std::atomic<bool> publishing{true};
  std::atomic<int> reloads_ok{0};

  // The publisher: alternate generations, republish atomically, reload.
  std::thread publisher([&] {
    for (int k = 0; k < 20; ++k) {
      (k % 2 == 0 ? gen_b : gen_a).save_file(rollout_path, ModelFormat::kBinary);
      const int fd = connect_to(server.port());
      if (fd < 0) {
        failures.add("publisher: connect failed");
        break;
      }
      set_recv_timeout(fd, 10);
      (void)send_best_effort(fd, "{\"id\":\"pub\",\"cmd\":\"reload\"}\n");
      std::string got;
      if (read_until(fd, 1, &got) != ReadEnd::kComplete) {
        failures.add("publisher: reload " + std::to_string(k) + " got no answer");
      } else if (got.find("\"reload\"") == std::string::npos) {
        failures.add("publisher: reload " + std::to_string(k) + " answered: " + got);
      } else {
        reloads_ok.fetch_add(1);
      }
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    publishing.store(false);
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      while (publishing.load()) {
        const int fd = connect_to(server.port());
        if (fd < 0) {
          failures.add("client " + std::to_string(c) + ": connect failed");
          return;
        }
        set_recv_timeout(fd, 10);
        if (!send_best_effort(fd, input)) {
          failures.add("client " + std::to_string(c) + ": send failed");
          ::close(fd);
          return;
        }
        std::string got;
        const ReadEnd end = read_until(fd, lines.size(), &got);
        ::close(fd);
        if (end != ReadEnd::kComplete) {
          failures.add("client " + std::to_string(c) +
                       ": incomplete response stream during rollout");
          return;
        }
        const std::vector<std::string> answers = split_lines(got);
        if (answers.size() != lines.size()) {
          failures.add("client " + std::to_string(c) + ": dropped responses");
          return;
        }
        for (std::size_t i = 0; i < answers.size(); ++i) {
          if (answers[i] != lines_a[i] && answers[i] != lines_b[i]) {
            failures.add("client " + std::to_string(c) + " line " + std::to_string(i) +
                         ": response from neither generation: " + answers[i]);
            return;
          }
        }
      }
    });
  }

  publisher.join();
  for (std::thread& t : clients) t.join();

  auto drained = std::async(std::launch::async, [&] {
    server.request_stop();
    server_thread.join();
  });
  ASSERT_EQ(drained.wait_for(std::chrono::seconds(60)), std::future_status::ready)
      << "drain wedged during rollout";

  EXPECT_TRUE(failures.empty()) << failures.render();
  EXPECT_GE(reloads_ok.load(), 1) << "no reload command ever succeeded";
  EXPECT_EQ(stats.errors, 0u) << "a rollout must never surface protocol errors";
  std::remove(rollout_path.c_str());
}

}  // namespace
}  // namespace frac
