#include "expt/grid.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <ostream>

#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/failure.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

namespace {

/// Stable 64-bit FNV-1a — NOT std::hash, whose value may differ across
/// implementations. Cell seeds must be identical across builds so a resumed
/// grid reproduces an uninterrupted one bit-for-bit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_byte(std::uint64_t h, unsigned char byte) {
  return (h ^ byte) * kFnvPrime;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) h = fnv_byte(h, static_cast<unsigned char>(v >> (8 * i)));
  return h;
}

std::uint64_t fnv_str(std::uint64_t h, const std::string& s) {
  for (const char c : s) h = fnv_byte(h, static_cast<unsigned char>(c));
  return fnv_byte(h, 0);  // terminator: ("ab","c") != ("a","bc")
}

std::uint64_t cell_seed_of(std::uint64_t grid_seed, const GridCellKey& key) {
  std::uint64_t h = kFnvOffset;
  h = fnv_u64(h, grid_seed);
  h = fnv_str(h, key.cohort);
  h = fnv_str(h, key.method);
  h = fnv_u64(h, key.replicate);
  // splitmix64 finalizer: FNV's low bits are weakly mixed.
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

std::string first_line(const std::string& text) {
  const std::size_t eol = text.find('\n');
  return eol == std::string::npos ? text : text.substr(0, eol);
}

/// Replicates for a cohort: the paper protocol, or the fixed confounded
/// split repeated (its cells still differ through their seeds).
std::vector<Replicate> grid_replicates(const CohortSpec& spec, std::size_t count) {
  if (spec.ancestry_confound) {
    std::vector<Replicate> reps;
    reps.reserve(count);
    for (std::size_t r = 0; r < count; ++r) reps.push_back(make_confounded_replicate(spec));
    return reps;
  }
  return make_cohort_replicates(spec, count);
}

}  // namespace

const std::vector<std::string>& known_grid_methods() {
  static const std::vector<std::string> kMethods = {
      "full",    "filter-ensemble",  "entropy", "partial",
      "diverse", "diverse-ensemble", "jl"};
  return kMethods;
}

GridCellResult run_grid_cell(const CohortSpec& spec, const Replicate& replicate,
                             const std::string& method, std::uint64_t cell_seed,
                             const GridMethodParams& params, ThreadPool& pool) {
  FracConfig config = paper_frac_config(spec);
  config.seed = cell_seed;
  Rng rng(cell_seed);

  ScoredRun run;
  if (method == "full") {
    run = run_frac(replicate, config, pool);
  } else if (method == "filter-ensemble") {
    run = run_random_filter_ensemble(replicate, config, params.keep_fraction, params.members,
                                     rng, pool);
  } else if (method == "entropy") {
    run = run_full_filtered_frac(replicate, config, FilterMethod::kEntropy,
                                 params.keep_fraction, rng, pool);
  } else if (method == "partial") {
    run = run_partial_filtered_frac(replicate, config, FilterMethod::kRandom,
                                    params.keep_fraction, rng, pool);
  } else if (method == "diverse") {
    run = run_diverse_frac(replicate, config, params.diverse_p, 1, rng, pool);
  } else if (method == "diverse-ensemble") {
    run = run_diverse_ensemble(replicate, config, params.diverse_p, params.members, rng, pool);
  } else if (method == "jl") {
    JlPipelineConfig jl;
    jl.output_dim = params.jl_dim;
    jl.seed = cell_seed;
    run = run_jl_frac(replicate, config, jl, pool);
  } else {
    throw std::invalid_argument("unknown grid method '" + method + "'");
  }

  GridCellResult result;
  if (replicate.test.anomaly_count() > 0 && replicate.test.normal_count() > 0) {
    result.auc = auc(run.test_scores, replicate.test.labels());
  }
  result.cpu_seconds = run.resources.cpu_seconds;
  result.peak_bytes = static_cast<double>(run.resources.peak_bytes);
  result.failures = run.resources.failures;
  return result;
}

GridOutcome run_experiment_grid(const GridConfig& config, ThreadPool& pool,
                                const GridCancelFn& cancel) {
  std::vector<std::string> cohorts = config.cohorts;
  if (cohorts.empty()) {
    for (const CohortSpec& spec : table_grid_cohorts()) cohorts.push_back(spec.name);
  }
  const std::vector<std::string>& methods =
      config.methods.empty() ? known_grid_methods() : config.methods;
  if (config.replicates == 0) throw std::invalid_argument("grid: --replicates must be > 0");
  for (const std::string& name : cohorts) cohort_by_name(name);  // validates
  for (const std::string& method : methods) {
    const auto& known = known_grid_methods();
    if (std::find(known.begin(), known.end(), method) == known.end()) {
      throw std::invalid_argument("unknown grid method '" + method + "'");
    }
  }

  // Without --resume a run starts from scratch: an existing checkpoint at
  // the same path is superseded, not merged.
  if (!config.resume && !config.checkpoint_path.empty()) {
    std::remove(config.checkpoint_path.c_str());
  }
  Checkpoint checkpoint(config.checkpoint_path);

  GridOutcome outcome;
  for (const std::string& cohort : cohorts) {
    const CohortSpec& spec = cohort_by_name(cohort);
    // Generated lazily: a fully checkpointed cohort costs no generator time.
    std::optional<std::vector<Replicate>> replicates;
    for (const std::string& method : methods) {
      for (std::size_t r = 0; r < config.replicates; ++r) {
        if (cancel && cancel()) {
          outcome.interrupted = true;
          return outcome;
        }
        const GridCellKey key{cohort, method, r};
        if (config.resume) {
          if (const GridCellResult* done = checkpoint.find(key)) {
            metrics_counter("grid.cells_skipped").add();
            outcome.cells.push_back({key, *done});
            ++outcome.cells_skipped;
            if (!done->ok) ++outcome.cells_failed;
            continue;
          }
        }
        if (!replicates) replicates = grid_replicates(spec, config.replicates);
        GridCellResult result;
        {
          const TraceSpan cell_span(
              "grid.cell",
              trace_armed()
                  ? format("{\"cohort\": \"%s\", \"method\": \"%s\", \"replicate\": %zu}",
                           json_escape(cohort).c_str(), json_escape(method).c_str(), r)
                  : std::string());
          try {
            result = run_grid_cell(spec, (*replicates)[r], method,
                                   cell_seed_of(config.seed, key), config.params, pool);
          } catch (const std::exception& e) {
            result = GridCellResult{};
            result.ok = false;
            result.failures[classify_failure(e)] += 1;
            result.error = first_line(e.what());
          }
        }
        metrics_counter("grid.cells_run").add();
        if (!result.ok) metrics_counter("grid.cells_failed").add();
        metrics_histogram("grid.cell_cpu_seconds").observe(result.cpu_seconds);
        checkpoint.record(key, result);
        outcome.cells.push_back({key, result});
        ++outcome.cells_run;
        if (!result.ok) ++outcome.cells_failed;
      }
    }
  }
  return outcome;
}

void write_grid_report(std::ostream& out, const std::vector<GridCellRecord>& cells) {
  // Deterministic columns only (no cpu_seconds, no free-text error): a
  // resumed run's report must be byte-identical to an uninterrupted one.
  out << "cohort,method,replicate,status,auc,peak_bytes";
  for (std::size_t c = 0; c < kFailureCategoryCount; ++c) {
    out << ',' << failure_category_name(static_cast<FailureCategory>(c));
  }
  out << '\n';
  for (const GridCellRecord& cell : cells) {
    out << cell.key.cohort << ',' << cell.key.method << ',' << cell.key.replicate << ','
        << (cell.result.ok ? "ok" : "failed") << ',' << format("%.17g", cell.result.auc)
        << ',' << format("%.17g", cell.result.peak_bytes);
    for (const std::size_t count : cell.result.failures.by_category) out << ',' << count;
    out << '\n';
  }
}

}  // namespace frac
