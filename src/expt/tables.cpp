#include "expt/tables.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace frac {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument(format("TextTable: row has %zu cells, header has %zu",
                                       cells.size(), headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c];
      if (c + 1 < row.size()) out << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_mean_sd(const MeanSd& value) {
  return format("%.2f (%.2f)", value.mean, value.sd);
}

std::string fmt_fraction(double value) { return format("%.3f", value); }

std::string fmt_time(double seconds) {
  if (seconds < 1e-3) return format("%.1f us", seconds * 1e6);
  if (seconds < 1.0) return format("%.1f ms", seconds * 1e3);
  if (seconds < 120.0) return format("%.2f s", seconds);
  if (seconds < 7200.0) return format("%.2f min", seconds / 60.0);
  return format("%.2f h", seconds / 3600.0);
}

std::string fmt_bytes(double bytes) {
  if (bytes < 1024.0) return format("%.0f B", bytes);
  if (bytes < 1024.0 * 1024.0) return format("%.2f KB", bytes / 1024.0);
  if (bytes < 1024.0 * 1024.0 * 1024.0) return format("%.2f MB", bytes / (1024.0 * 1024.0));
  return format("%.2f GB", bytes / (1024.0 * 1024.0 * 1024.0));
}

std::string fmt_failures(const FailureCounts& failures) {
  return failures.empty() ? "-" : failures.summary();
}

}  // namespace frac
