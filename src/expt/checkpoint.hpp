// Crash-safe experiment checkpointing.
//
// A full experiment grid — (dataset, variant, replicate) cells, each minutes
// of CPU — must survive a killed job: every completed cell is persisted
// immediately via the atomic-write helper (temp + flush + fsync + rename),
// so the checkpoint on disk is always a complete, parseable prefix of the
// run. `frac grid --resume` reloads it and skips completed cells; because
// every cell's result is a pure function of (config seed, cohort, method,
// replicate), a resumed run's report is byte-identical to an uninterrupted
// one.
//
// File format (line-oriented text, one cell per line after the header):
//   frac.checkpoint.v1
//   cohort;method;replicate;ok;auc;cpu_seconds;peak_bytes;io;numeric;resource;injected;error
// cpu_seconds is a measurement (not deterministic) and is carried for the
// operator's benefit only — the grid report deliberately excludes it.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "frac/failure.hpp"

namespace frac {

/// Identifies one experiment-grid cell.
struct GridCellKey {
  std::string cohort;
  std::string method;
  std::size_t replicate = 0;

  friend bool operator==(const GridCellKey&, const GridCellKey&) = default;
};

/// One cell's outcome. `ok == false` records a cell whose computation
/// failed outright (the grid continues; the report shows the failure).
struct GridCellResult {
  bool ok = true;
  double auc = 0.0;
  double cpu_seconds = 0.0;
  double peak_bytes = 0.0;
  FailureCounts failures;
  std::string error;  ///< first line of the failure; empty when ok

  friend bool operator==(const GridCellResult&, const GridCellResult&) = default;
};

/// Incremental, atomically persisted store of completed grid cells.
class Checkpoint {
 public:
  /// Binds to `path` and loads any existing checkpoint (tolerating a
  /// missing file; malformed lines are skipped, not fatal). An empty path
  /// disables persistence — the checkpoint is memory-only.
  explicit Checkpoint(std::string path);

  const std::string& path() const noexcept { return path_; }
  std::size_t size() const noexcept { return cells_.size(); }

  /// The stored result for a cell, or nullptr if not yet completed.
  const GridCellResult* find(const GridCellKey& key) const;

  /// Upserts a cell and flushes the whole checkpoint atomically, so a crash
  /// immediately after record() cannot lose the cell.
  void record(const GridCellKey& key, const GridCellResult& result);

  /// Rewrites the checkpoint file atomically (no-op when path is empty).
  void flush() const;

 private:
  std::string path_;
  /// Keyed by "cohort;method;replicate" for deterministic file order.
  std::map<std::string, GridCellResult> cells_;
};

}  // namespace frac
