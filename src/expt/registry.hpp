// Paper-analog cohort registry.
//
// One CohortSpec per dataset row of the paper's Table I, with sample counts
// taken from the paper and feature counts scaled down (see DESIGN.md §5) so
// the full experiment grid runs on one machine. Generator parameters are
// calibrated so full-FRaC AUC lands in each dataset's Table II band.
// FRAC_BENCH_SCALE (a positive float, default 1.0) rescales feature counts
// for quick smoke runs or heavier sweeps.
#pragma once

#include <string>
#include <vector>

#include "data/expression_generator.hpp"
#include "data/snp_generator.hpp"
#include "data/split.hpp"
#include "frac/frac.hpp"

namespace frac {

enum class CohortKind { kExpression, kSnp };

struct CohortSpec {
  std::string name;
  CohortKind kind = CohortKind::kExpression;
  std::size_t paper_features = 0;   ///< Table I value (documentation column)
  std::size_t normal_samples = 0;   ///< Table I value (used as-is)
  std::size_t anomaly_samples = 0;  ///< Table I value (used as-is)
  double paper_full_auc = 0.0;      ///< Table II calibration target (0 = n/a)

  ExpressionModelConfig expression;  ///< used when kind == kExpression
  SnpModelConfig snp;                ///< used when kind == kSnp

  /// Schizophrenia-style design: training normals from population 0, test
  /// anomalies from population 1 (ancestry confounded with disease status).
  bool ancestry_confound = false;
  std::size_t test_normal_samples = 0;  ///< only for ancestry_confound cohorts

  std::uint64_t seed = 0;

  /// Feature count after FRAC_BENCH_SCALE.
  std::size_t scaled_features() const;
};

/// All eight paper-analog cohorts, in Table I order.
const std::vector<CohortSpec>& paper_cohorts();

/// The six expression cohorts plus autism (the grid of Tables II–IV).
std::vector<CohortSpec> table_grid_cohorts();

/// Lookup by name; throws std::invalid_argument for unknown names.
const CohortSpec& cohort_by_name(const std::string& name);

/// Samples the pooled cohort (normals + anomalies, shuffled). Not valid for
/// ancestry_confound cohorts — use make_confounded_replicate.
Dataset make_cohort(const CohortSpec& spec);

/// The fixed schizophrenia-style replicate: train = population-0 normals,
/// test = held-out population-0 normals + population-1 anomalies.
Replicate make_confounded_replicate(const CohortSpec& spec);

/// Replicates per the paper's protocol (2/3 of normals in training).
std::vector<Replicate> make_cohort_replicates(const CohortSpec& spec, std::size_t count);

/// The per-cohort FracConfig the paper prescribes: linear SVR for
/// expression data, decision trees for SNP data.
FracConfig paper_frac_config(const CohortSpec& spec);

/// FRAC_BENCH_SCALE env var (default 1.0; must be > 0).
double bench_scale();

/// Replicate count honoring FRAC_BENCH_REPLICATES (default: paper's 5).
std::size_t bench_replicates();

}  // namespace frac
