#include "expt/checkpoint.hpp"

#include <fstream>
#include <ostream>

#include "util/atomic_file.hpp"
#include "util/errors.hpp"
#include "util/string_util.hpp"

namespace frac {

namespace {

constexpr const char* kHeader = "frac.checkpoint.v1";

std::string encode_key(const GridCellKey& key) {
  return format("%s;%s;%zu", key.cohort.c_str(), key.method.c_str(), key.replicate);
}

/// The error field is free text; keep it on one line and out of the
/// delimiter's way.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == ';' || c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

Checkpoint::Checkpoint(std::string path) : path_(std::move(path)) {
  if (path_.empty()) return;
  std::ifstream in(path_);
  if (!in) return;  // no checkpoint yet: start empty
  std::string line;
  if (!std::getline(in, line) || trim(line) != kHeader) {
    throw ParseError("checkpoint " + path_ + ": missing '" + kHeader + "' header");
  }
  std::size_t lineno = 1;
  while (std::getline(in, line)) {
    ++lineno;
    if (trim(line).empty()) continue;
    const std::vector<std::string> parts = split(line, ';');
    // Tolerate (skip) malformed lines rather than aborting the resume: the
    // atomic writer never produces them, but a hand-edited or foreign file
    // should not cost the operator the valid cells around the bad line.
    if (parts.size() != 12) continue;
    GridCellKey key;
    key.cohort = parts[0];
    key.method = parts[1];
    GridCellResult cell;
    try {
      key.replicate = parse_size(parts[2], "checkpoint replicate");
      cell.ok = parse_size(parts[3], "checkpoint ok") != 0;
      cell.auc = parse_double(parts[4], "checkpoint auc");
      cell.cpu_seconds = parse_double(parts[5], "checkpoint cpu");
      cell.peak_bytes = parse_double(parts[6], "checkpoint mem");
      for (std::size_t c = 0; c < kFailureCategoryCount; ++c) {
        cell.failures.by_category[c] = parse_size(parts[7 + c], "checkpoint failures");
      }
    } catch (const std::invalid_argument&) {
      continue;
    }
    cell.error = parts[11];
    cells_[encode_key(key)] = std::move(cell);
  }
}

const GridCellResult* Checkpoint::find(const GridCellKey& key) const {
  const auto it = cells_.find(encode_key(key));
  return it == cells_.end() ? nullptr : &it->second;
}

void Checkpoint::record(const GridCellKey& key, const GridCellResult& result) {
  cells_[encode_key(key)] = result;
  flush();
}

void Checkpoint::flush() const {
  if (path_.empty()) return;
  atomic_write_file(path_, [this](std::ostream& out) {
    out << kHeader << '\n';
    for (const auto& [key, cell] : cells_) {
      out << key << ';' << (cell.ok ? 1 : 0) << ';' << format("%.17g", cell.auc) << ';'
          << format("%.17g", cell.cpu_seconds) << ';' << format("%.17g", cell.peak_bytes);
      for (const std::size_t count : cell.failures.by_category) out << ';' << count;
      out << ';' << sanitize(cell.error) << '\n';
    }
    if (!out) throw IoError("checkpoint flush: stream write failed");
  });
}

}  // namespace frac
