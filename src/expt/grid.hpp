// Fault-tolerant experiment-grid runner.
//
// Runs every (cohort, method, replicate) cell of an experiment grid with
// three layers of robustness:
//   * cell isolation — a cell whose computation throws is recorded as a
//     failed cell (with its failure category) and the grid moves on;
//   * incremental checkpointing — each finished cell is persisted
//     atomically (expt/checkpoint.hpp) before the next one starts, so a
//     killed job loses at most the in-flight cell;
//   * resume — with `resume` set, cells already in the checkpoint are
//     skipped and their stored results reused.
//
// Determinism contract: a cell's scores depend only on (seed, cohort,
// method, replicate) — never on which other cells ran, the thread count, or
// whether the run was resumed — so an interrupted-and-resumed grid's report
// is byte-identical to an uninterrupted one. The report therefore carries
// only deterministic columns (AUC, analytic peak bytes, failure counts);
// measured CPU time lives in the checkpoint, not the report.
#pragma once

#include <functional>
#include <iosfwd>
#include <vector>

#include "expt/checkpoint.hpp"
#include "expt/registry.hpp"
#include "parallel/thread_pool.hpp"

namespace frac {

/// Variant hyperparameters shared by all cells (the paper's defaults).
struct GridMethodParams {
  double keep_fraction = 0.05;   ///< filtering variants
  std::size_t members = 10;      ///< ensemble variants
  double diverse_p = 0.5;        ///< diverse variants
  std::size_t jl_dim = 64;       ///< jl variant
};

struct GridConfig {
  std::vector<std::string> cohorts;  ///< registry names (empty = table grid)
  std::vector<std::string> methods;  ///< see known_grid_methods()
  std::size_t replicates = 5;
  std::uint64_t seed = 23;
  GridMethodParams params;
  std::string checkpoint_path;  ///< empty = no persistence
  bool resume = false;          ///< skip cells already checkpointed
};

/// "full", "filter-ensemble", "entropy", "partial", "diverse",
/// "diverse-ensemble", "jl" — the CLI detect methods.
const std::vector<std::string>& known_grid_methods();

struct GridCellRecord {
  GridCellKey key;
  GridCellResult result;
};

struct GridOutcome {
  /// Every cell of the grid in deterministic (cohort, method, replicate)
  /// order; on interruption, only the cells reached so far.
  std::vector<GridCellRecord> cells;
  std::size_t cells_run = 0;      ///< computed in this invocation
  std::size_t cells_skipped = 0;  ///< reused from the checkpoint
  std::size_t cells_failed = 0;   ///< recorded as failed (either source)
  bool interrupted = false;       ///< cancel fired before the grid finished
};

/// Polled between cells; return true to stop (the checkpoint already holds
/// every finished cell). Wired to SIGINT by the CLI.
using GridCancelFn = std::function<bool()>;

/// Runs the grid. Throws std::invalid_argument for unknown cohorts/methods
/// or a zero-sized grid; cell-level failures never throw.
GridOutcome run_experiment_grid(const GridConfig& config, ThreadPool& pool,
                                const GridCancelFn& cancel = {});

/// Writes the deterministic per-cell report CSV:
///   cohort,method,replicate,status,auc,peak_bytes,io,numeric,resource,injected
void write_grid_report(std::ostream& out, const std::vector<GridCellRecord>& cells);

/// Computes one cell from scratch (exposed for tests): deterministic in
/// (seed, cohort name, method, replicate).
GridCellResult run_grid_cell(const CohortSpec& spec, const Replicate& replicate,
                             const std::string& method, std::uint64_t cell_seed,
                             const GridMethodParams& params, ThreadPool& pool);

}  // namespace frac
