#include "expt/runner.hpp"

#include <stdexcept>

#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

PerReplicate evaluate_method(const std::vector<Replicate>& replicates, const MethodFn& method,
                             std::uint64_t seed, ThreadPool& pool) {
  const std::size_t count = replicates.size();
  PerReplicate out;
  out.auc.resize(count);
  out.cpu_seconds.resize(count);
  out.peak_bytes.resize(count);
  out.failures.resize(count);
  Rng master(seed);
  // Pre-split per-replicate streams (same draw order as the old serial
  // loop: results are identical for any thread count), then run the
  // replicates as one parallel batch. Per-replicate cpu_seconds stay
  // meaningful under concurrency because CpuStopwatch bills scoped work,
  // not the process-wide CPU clock.
  std::vector<Rng> rep_rngs;
  rep_rngs.reserve(count);
  for (std::size_t r = 0; r < count; ++r) rep_rngs.push_back(master.split(r));
  parallel_for(pool, 0, count, [&](std::size_t r) {
    const TraceSpan rep_span(
        "expt.replicate", trace_armed() ? format("{\"replicate\": %zu}", r) : std::string());
    const ScoredRun run = method(replicates[r], rep_rngs[r]);
    out.auc[r] = auc(run.test_scores, replicates[r].test.labels());
    out.cpu_seconds[r] = run.resources.cpu_seconds;
    out.peak_bytes[r] = static_cast<double>(run.resources.peak_bytes);
    out.failures[r] = run.resources.failures;
  });
  return out;
}

FailureCounts PerReplicate::total_failures() const {
  FailureCounts total;
  for (const FailureCounts& counts : failures) total += counts;
  return total;
}

AggregateStats aggregate(const PerReplicate& results) {
  AggregateStats stats;
  stats.auc = mean_sd(results.auc);
  stats.mean_cpu_seconds = mean(results.cpu_seconds);
  stats.mean_peak_bytes = mean(results.peak_bytes);
  stats.failures = results.total_failures();
  return stats;
}

FractionStats fraction_of(const PerReplicate& variant, const PerReplicate& full) {
  if (variant.replicate_count() != full.replicate_count() || variant.replicate_count() == 0) {
    throw std::invalid_argument("fraction_of: replicate counts differ or are zero");
  }
  std::vector<double> auc_ratio(variant.replicate_count());
  for (std::size_t r = 0; r < variant.replicate_count(); ++r) {
    if (full.auc[r] <= 0.0) throw std::invalid_argument("fraction_of: full AUC is zero");
    auc_ratio[r] = variant.auc[r] / full.auc[r];
  }
  FractionStats stats;
  stats.auc_fraction = mean_sd(auc_ratio);
  const double full_time = mean(full.cpu_seconds);
  const double full_mem = mean(full.peak_bytes);
  stats.time_fraction = full_time > 0.0 ? mean(variant.cpu_seconds) / full_time : 0.0;
  stats.mem_fraction = full_mem > 0.0 ? mean(variant.peak_bytes) / full_mem : 0.0;
  return stats;
}

FractionStats fraction_of_baseline(const PerReplicate& variant, double full_cpu_seconds,
                                   double full_peak_bytes) {
  if (full_cpu_seconds <= 0.0 || full_peak_bytes <= 0.0) {
    throw std::invalid_argument("fraction_of_baseline: baselines must be positive");
  }
  FractionStats stats;
  stats.auc_fraction = mean_sd(variant.auc);  // raw AUC (Table V style)
  stats.time_fraction = mean(variant.cpu_seconds) / full_cpu_seconds;
  stats.mem_fraction = mean(variant.peak_bytes) / full_peak_bytes;
  return stats;
}

}  // namespace frac
