// Replicate-loop experiment runner: applies an anomaly-detection method to
// every replicate, collects per-replicate AUC / CPU time / peak memory, and
// reduces them the way the paper's tables do (mean and sd across replicates;
// variant-over-full fractions computed per replicate, then averaged).
#pragma once

#include <functional>

#include "data/split.hpp"
#include "frac/frac.hpp"
#include "ml/metrics.hpp"

namespace frac {

/// A method under evaluation: scores one replicate's test set. The Rng is a
/// fresh independent stream per replicate (methods with internal randomness
/// — random filters, diverse subsets, JL seeds — draw from it).
///
/// Concurrency contract: evaluate_method runs replicates as one parallel
/// batch, so the MethodFn may be invoked concurrently from several pool
/// threads. Each invocation gets its own Replicate and Rng; any state the
/// callable shares across invocations must be synchronized by the caller.
using MethodFn = std::function<ScoredRun(const Replicate& replicate, Rng& rng)>;

/// Per-replicate measurements.
struct PerReplicate {
  std::vector<double> auc;
  std::vector<double> cpu_seconds;
  std::vector<double> peak_bytes;
  /// Per-replicate demoted-unit/member counts by category (failure
  /// isolation, frac/failure.hpp) — degradation stays visible in the tables.
  std::vector<FailureCounts> failures;

  std::size_t replicate_count() const { return auc.size(); }

  /// Failure tallies summed across replicates.
  FailureCounts total_failures() const;
};

/// Runs the method over all replicates.
PerReplicate evaluate_method(const std::vector<Replicate>& replicates, const MethodFn& method,
                             std::uint64_t seed, ThreadPool& pool);

/// Table II-style aggregate: AUC mean (sd), mean CPU time, mean peak bytes,
/// and total demoted units/members across replicates.
struct AggregateStats {
  MeanSd auc;
  double mean_cpu_seconds = 0.0;
  double mean_peak_bytes = 0.0;
  FailureCounts failures;
};
AggregateStats aggregate(const PerReplicate& results);

/// Table III/IV-style fractions of a full run: per-replicate AUC ratios
/// (mean, sd), and ratios of mean time / mean peak memory.
struct FractionStats {
  MeanSd auc_fraction;
  double time_fraction = 0.0;
  double mem_fraction = 0.0;
};
FractionStats fraction_of(const PerReplicate& variant, const PerReplicate& full);

/// Fractions against externally supplied full-run baselines (the paper's
/// Table V divides by *extrapolated* schizophrenia full-run cost).
FractionStats fraction_of_baseline(const PerReplicate& variant, double full_cpu_seconds,
                                   double full_peak_bytes);

}  // namespace frac
