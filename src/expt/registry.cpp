#include "expt/registry.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "util/string_util.hpp"

namespace frac {

double bench_scale() {
  if (const char* env = std::getenv("FRAC_BENCH_SCALE")) {
    const double s = parse_double(env, "FRAC_BENCH_SCALE");
    if (s <= 0.0) throw std::invalid_argument("FRAC_BENCH_SCALE must be positive");
    return s;
  }
  return 1.0;
}

std::size_t bench_replicates() {
  if (const char* env = std::getenv("FRAC_BENCH_REPLICATES")) {
    const std::size_t r = parse_size(env, "FRAC_BENCH_REPLICATES");
    if (r == 0) throw std::invalid_argument("FRAC_BENCH_REPLICATES must be positive");
    return r;
  }
  return 5;  // paper protocol
}

std::size_t CohortSpec::scaled_features() const {
  const std::size_t base = kind == CohortKind::kExpression ? expression.features : snp.features;
  const double scaled = static_cast<double>(base) * bench_scale();
  return std::max<std::size_t>(8, static_cast<std::size_t>(std::llround(scaled)));
}

namespace {

CohortSpec expression_cohort(std::string name, std::size_t paper_features,
                             std::size_t normals, std::size_t anomalies, double paper_auc,
                             ExpressionModelConfig config, std::uint64_t seed) {
  CohortSpec spec;
  spec.name = std::move(name);
  spec.kind = CohortKind::kExpression;
  spec.paper_features = paper_features;
  spec.normal_samples = normals;
  spec.anomaly_samples = anomalies;
  spec.paper_full_auc = paper_auc;
  spec.expression = config;
  spec.seed = seed;
  return spec;
}

std::vector<CohortSpec> build_cohorts() {
  std::vector<CohortSpec> cohorts;

  // --- Six expression cohorts (Table I sample counts; features scaled).
  // Calibration knobs: noise_sd and anomaly_mix set the per-gene signal;
  // modules x genes_per_module sets how diffuse it is. Values were fit so
  // full-FRaC AUC lands on each cohort's Table II target.
  {
    ExpressionModelConfig c;
    c.features = 320;
    c.modules = 10;
    c.genes_per_module = 8;
    c.noise_sd = 0.4;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.30;
    c.disease_modules = 6;
    c.seed = 101;
    cohorts.push_back(expression_cohort("breast.basal", 3167, 56, 19, 0.73, c, 1001));
  }
  {
    ExpressionModelConfig c;
    c.features = 800;
    c.modules = 20;
    c.genes_per_module = 10;
    c.noise_sd = 0.4;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.74;
    c.disease_modules = 14;
    c.seed = 102;
    cohorts.push_back(expression_cohort("biomarkers", 19739, 74, 53, 0.88, c, 1002));
  }
  {
    ExpressionModelConfig c;
    c.features = 800;
    c.modules = 16;
    c.genes_per_module = 10;
    c.noise_sd = 0.4;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.45;
    c.disease_modules = 10;
    c.seed = 103;
    cohorts.push_back(expression_cohort("ethnic", 19739, 95, 96, 0.71, c, 1003));
  }
  {
    ExpressionModelConfig c;
    c.features = 820;
    c.modules = 20;
    c.genes_per_module = 10;
    c.noise_sd = 0.4;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.84;
    c.disease_modules = 14;
    c.seed = 104;
    cohorts.push_back(expression_cohort("bild", 20607, 48, 7, 0.84, c, 1004));
  }
  {
    ExpressionModelConfig c;
    c.features = 780;
    c.modules = 16;
    c.genes_per_module = 10;
    c.noise_sd = 0.45;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.27;
    c.disease_modules = 10;
    c.seed = 105;
    cohorts.push_back(expression_cohort("smokers2", 19739, 40, 39, 0.66, c, 1005));
  }
  {
    ExpressionModelConfig c;
    c.features = 700;
    c.modules = 18;
    c.genes_per_module = 10;
    c.noise_sd = 0.4;
    c.anomaly_mix = 2.5;
    c.penetrance = 0.74;
    c.disease_modules = 12;
    c.entropy_informative = true;  // the regime where entropy filtering wins
    c.seed = 106;
    cohorts.push_back(expression_cohort("hematopoiesis", 13322, 97, 91, 0.88, c, 1006));
  }

  // --- autism: SNP cohort with (essentially) no signal; full-FRaC AUC ≈ 0.5.
  {
    CohortSpec spec;
    spec.name = "autism";
    spec.kind = CohortKind::kSnp;
    spec.paper_features = 7267;
    spec.normal_samples = 317;
    spec.anomaly_samples = 228;
    spec.paper_full_auc = 0.50;
    spec.snp.features = 400;
    spec.snp.block_size = 20;
    spec.snp.ld_strength = 0.7;
    spec.snp.fst = 0.05;
    spec.snp.populations = 1;
    // No detectable disease effect: the paper measures full-FRaC AUC ≈ 0.50
    // on this cohort ("FRaC has no predictive power on even the full data
    // set"), so the analog plants none.
    spec.snp.disease_snps = 0;
    spec.snp.disease_shift = 0.0;
    spec.snp.seed = 107;
    spec.seed = 1007;
    cohorts.push_back(spec);
  }

  // --- schizophrenia: ancestry-confounded design. Training normals come
  // from population 0, test anomalies from population 1; the "disease"
  // signal is population divergence, as the paper diagnoses.
  {
    CohortSpec spec;
    spec.name = "schizophrenia";
    spec.kind = CohortKind::kSnp;
    spec.paper_features = 171763;
    spec.normal_samples = 270;       // HapMap training normals
    spec.test_normal_samples = 10;   // GSE21597 normals
    spec.anomaly_samples = 54;       // GSE12714 patients
    spec.paper_full_auc = 0.0;       // never run in the paper either
    spec.snp.features = 3000;
    spec.snp.block_size = 20;
    spec.snp.ld_strength = 0.7;
    // Calibrated ancestry structure: divergence concentrated in the
    // high-heterozygosity SNPs of a large reference population (the
    // ancestry-informative-marker regime). Reproduces Table V's ordering:
    // entropy filtering ≈ 1.0 > random ensemble ≈ 0.9 > JL ≈ 0.55–0.65.
    spec.snp.fst = 0.5;
    spec.snp.fst_het_exponent = 100.0;
    spec.snp.reference_drift_scale = 0.1;
    spec.snp.populations = 2;
    spec.snp.seed = 108;
    spec.ancestry_confound = true;
    spec.seed = 1008;
    cohorts.push_back(spec);
  }
  return cohorts;
}

}  // namespace

const std::vector<CohortSpec>& paper_cohorts() {
  static const std::vector<CohortSpec> cohorts = build_cohorts();
  return cohorts;
}

std::vector<CohortSpec> table_grid_cohorts() {
  std::vector<CohortSpec> grid;
  for (const CohortSpec& spec : paper_cohorts()) {
    if (!spec.ancestry_confound) grid.push_back(spec);
  }
  return grid;
}

const CohortSpec& cohort_by_name(const std::string& name) {
  for (const CohortSpec& spec : paper_cohorts()) {
    if (spec.name == name) return spec;
  }
  throw std::invalid_argument("unknown cohort: " + name);
}

namespace {

/// Applies FRAC_BENCH_SCALE to a spec's generator feature count.
CohortSpec scaled(const CohortSpec& spec) {
  CohortSpec out = spec;
  const std::size_t f = spec.scaled_features();
  if (out.kind == CohortKind::kExpression) {
    out.expression.features = f;
    // Keep the module layout feasible under extreme down-scaling.
    while (out.expression.modules * out.expression.genes_per_module > f &&
           out.expression.genes_per_module > 2) {
      --out.expression.genes_per_module;
    }
    while (out.expression.modules * out.expression.genes_per_module > f &&
           out.expression.modules > 1) {
      --out.expression.modules;
    }
    out.expression.disease_modules =
        std::min(out.expression.disease_modules, out.expression.modules);
  } else {
    out.snp.features = f;
    if (out.snp.disease_snps > f) out.snp.disease_snps = f;
  }
  return out;
}

}  // namespace

Dataset make_cohort(const CohortSpec& raw_spec) {
  const CohortSpec spec = scaled(raw_spec);
  if (spec.ancestry_confound) {
    throw std::invalid_argument("make_cohort: use make_confounded_replicate for " + spec.name);
  }
  Rng rng(spec.seed);
  if (spec.kind == CohortKind::kExpression) {
    const ExpressionModel model(spec.expression);
    return model.sample_cohort(spec.normal_samples, spec.anomaly_samples, rng);
  }
  const SnpModel model(spec.snp);
  const Dataset normals = model.sample(0, spec.normal_samples, Label::kNormal, rng);
  const Dataset anomalies = model.sample(0, spec.anomaly_samples, Label::kAnomaly, rng);
  return concat_samples(normals, anomalies);
}

Replicate make_confounded_replicate(const CohortSpec& raw_spec) {
  const CohortSpec spec = scaled(raw_spec);
  if (!spec.ancestry_confound) {
    throw std::invalid_argument("make_confounded_replicate: " + spec.name +
                                " is not an ancestry-confounded cohort");
  }
  Rng rng(spec.seed);
  const SnpModel model(spec.snp);
  const Dataset train = model.sample(0, spec.normal_samples, Label::kNormal, rng);
  const Dataset test_normals = model.sample(0, spec.test_normal_samples, Label::kNormal, rng);
  const Dataset test_anomalies = model.sample(1, spec.anomaly_samples, Label::kAnomaly, rng);
  return Replicate{train, concat_samples(test_normals, test_anomalies)};
}

std::vector<Replicate> make_cohort_replicates(const CohortSpec& spec, std::size_t count) {
  if (spec.ancestry_confound) {
    // The paper uses a single fixed replicate for this design.
    return {make_confounded_replicate(spec)};
  }
  const Dataset cohort = make_cohort(spec);
  Rng rng(spec.seed ^ 0xabcdef12345678ULL);
  return make_replicates(cohort, count, 2.0 / 3.0, rng);
}

FracConfig paper_frac_config(const CohortSpec& spec) {
  FracConfig config;
  config.cv_folds = 5;
  config.seed = spec.seed ^ 0x5eedf00dULL;
  if (spec.kind == CohortKind::kExpression) {
    config.predictor.regressor = RegressorKind::kLinearSvr;
  } else {
    // SNP data: trees everywhere — including for the (real-valued) targets
    // that arise after JL projection, matching the paper's setup and its
    // "trees are not invariant under linear transformation" observation.
    config.predictor.classifier = ClassifierKind::kDecisionTree;
    config.predictor.regressor = RegressorKind::kRegressionTree;
    config.predictor.tree.max_depth = 6;
    config.predictor.tree.min_samples_leaf = 4;
  }
  return config;
}

}  // namespace frac
