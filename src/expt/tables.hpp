// Fixed-width text tables and number formatting for the bench binaries,
// so each bench prints rows shaped like the paper's tables.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "expt/runner.hpp"

namespace frac {

/// Column-aligned plain-text table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds one row; must match the header width.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "0.73 (0.06)"
std::string fmt_mean_sd(const MeanSd& value);

/// Fraction with three decimals: "0.046".
std::string fmt_fraction(double value);

/// Seconds as "12.3 s" / "1.2 h" as magnitude warrants.
std::string fmt_time(double seconds);

/// Bytes as "4.59 MB" / "1.2 GB" as magnitude warrants.
std::string fmt_bytes(double bytes);

/// Failure tallies as "-" (none) or "numeric:2 injected:1" — the analytic
/// tables print degradation alongside AUC/Time/Mem rather than hiding it.
std::string fmt_failures(const FailureCounts& failures);

}  // namespace frac
