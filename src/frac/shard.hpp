// Feature-sharded out-of-core FRaC training (`frac shard-train` / `frac
// merge`).
//
// FRaC's NS is a sum of independent per-unit terms, so the unit range of a
// default plan tiles across processes exactly: shard k of N trains units
// [k*U/N, (k+1)*U/N) against a columnar dataset (data/column_store.hpp) and
// persists a *partial model archive* — the ordinary model sections restricted
// to its units, plus a "shard" section recording the tile, the dataset
// content CRC, and a fingerprint of the training config. merge_model_shards
// stitches N partials into one model whose units, error models, and scores
// are bit-identical to a single-process FracModel::train at any FRAC_THREADS
// / FRAC_SIMD setting: RNG streams, fault injection, and failure records are
// keyed by *global* unit index inside FracModel::train_units_range, and the
// out-of-core column source evaluates the same standardization expression on
// the same doubles as the in-core path (see frac/train_units.hpp).
//
// Crash safety reuses the checkpoint pattern of expt/checkpoint.hpp: a shard
// trains in chunks and atomically republishes its partial archive (with the
// trained-unit frontier advanced) after each chunk, so a killed shard re-run
// with resume=true restores the finished units and continues — the final
// merged scores stay byte-identical to an uninterrupted run.
//
// Byte-level spec of the "shard" section: docs/model_format.md.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <utility>

#include "data/column_store.hpp"
#include "frac/frac.hpp"

namespace frac {

/// Which tile of the unit range a process owns: shard `index` of `count`.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// [lo, hi) of global unit indices for `spec` over `total_units`. The tiles
/// partition [0, total_units) exactly; sizes differ by at most one.
std::pair<std::size_t, std::size_t> shard_unit_range(ShardSpec spec, std::size_t total_units);

struct ShardTrainOptions {
  FracConfig config;
  /// Continue from an existing partial archive at out_path (after a crash or
  /// SIGINT). The partial must match this shard's identity — same tile, same
  /// dataset content CRC, same config fingerprint — or training refuses.
  bool resume = false;
  /// Units trained per checkpoint chunk; the partial archive is atomically
  /// republished after each chunk. 0 = auto (~1/8 of the shard).
  std::size_t checkpoint_units = 0;
  /// Embed the f32 weight pack when the shard completes (format v3).
  bool f32 = false;
  /// Polled between chunks (the CLI wires the SIGINT flag here); true stops
  /// after persisting the current frontier, leaving a resumable partial.
  std::function<bool()> interrupted;
  /// Testing hook: behave as interrupted once this many new units finished
  /// (0 = off). Gives the kill+resume tests a deterministic cut point.
  std::size_t stop_after_units = 0;
};

struct ShardTrainStatus {
  bool complete = false;      ///< frontier reached unit_hi; partial is mergeable
  std::size_t unit_lo = 0;    ///< this shard's tile
  std::size_t unit_hi = 0;
  std::size_t units_done = 0;     ///< frontier: units [unit_lo, units_done) trained
  std::size_t units_resumed = 0;  ///< units restored from the existing partial
  ResourceReport report;          ///< this shard's cumulative cost (across resumes)
};

/// Trains one shard of the default plan against `store` and persists the
/// partial archive to `out_path` (atomic republish per chunk). Returns the
/// final frontier; complete=false means an interrupt stopped the shard early
/// and a re-run with resume=true will pick it up.
ShardTrainStatus train_model_shard(const ColumnStore& store, ShardSpec spec,
                                   const ShardTrainOptions& options, const std::string& out_path,
                                   ThreadPool& pool);

struct ShardMergeSummary {
  std::size_t shard_count = 0;
  std::size_t units = 0;
  ResourceReport report;
};

/// Stitches partial shard archives back into one model. Verifies every
/// section CRC of every partial up front (corruption fails with a ParseError
/// naming the file and section, never a half-stitched model), then validates
/// that the partials are complete, trained on the same dataset content and
/// config, and tile the unit range exactly. When any partial carries the f32
/// weight pack, the merged model rebuilds a coherent pack over the full unit
/// set (a partial's pack only covers its own units, so it is never reused).
FracModel merge_model_shards(std::span<const std::string> parts,
                             ShardMergeSummary* summary = nullptr);

/// Single-process out-of-core training straight off the column store: trains
/// all units through the column source without materializing the sample-major
/// matrix. Scores are bit-identical to FracModel::train on the materialized
/// dataset; peak_bytes reflects what out-of-core training actually held (one
/// unit's workspace + retained models, not the full matrix).
FracModel train_out_of_core(const ColumnStore& store, const FracConfig& config, ThreadPool& pool);

}  // namespace frac
