#include "frac/fused.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"
#include "util/errors.hpp"
#include "util/string_util.hpp"

namespace frac {

namespace {

/// Width of feature f's block in the 1-hot expansion.
std::size_t block_width(std::uint32_t arity) { return arity == 0 ? 1 : arity; }

template <typename T>
void expand_row_impl(std::span<const double> row, const Schema& schema,
                     std::span<const std::uint32_t> arities,
                     std::span<const std::size_t> offsets, std::size_t width,
                     std::span<T> out) {
  if (row.size() != arities.size() || out.size() != width) {
    throw std::logic_error("FusedLinearPack: expansion shape mismatch");
  }
  std::fill(out.begin(), out.end(), T{0});
  for (std::size_t f = 0; f < row.size(); ++f) {
    const double v = row[f];
    if (is_missing(v)) continue;
    const std::uint32_t arity = arities[f];
    if (arity == 0) {
      out[offsets[f]] = static_cast<T>(v);
      continue;
    }
    if (v < 0.0 || v >= static_cast<double>(arity) || v != std::floor(v)) {
      throw NumericError(format("feature '%s': categorical code %g outside [0, %u)",
                                schema[f].name.c_str(), v, arity));
    }
    out[offsets[f] + static_cast<std::size_t>(v)] = T{1};
  }
}

}  // namespace

FusedLinearPack::FusedLinearPack(std::span<const std::uint32_t> arities)
    : arities_(arities.begin(), arities.end()) {
  offsets_.reserve(arities_.size());
  for (const std::uint32_t arity : arities_) {
    offsets_.push_back(width_);
    width_ += block_width(arity);
  }
}

void FusedLinearPack::add_unit(std::size_t unit_index, std::span<const std::size_t> inputs,
                               const PredictorLinearForm& form) {
  if (form.rows.size() != form.biases.size() || form.rows.empty()) {
    throw std::logic_error("FusedLinearPack: malformed linear form");
  }
  std::size_t compact_width = 0;
  for (const std::size_t f : inputs) compact_width += block_width(arities_.at(f));
  UnitRows entry;
  entry.unit = unit_index;
  entry.first_row = static_cast<std::uint32_t>(rows());
  entry.row_count = static_cast<std::uint32_t>(form.rows.size());
  entry.classifier = form.classifier;
  for (std::size_t j = 0; j < form.rows.size(); ++j) {
    const std::span<const double> compact = form.rows[j];
    if (compact.size() != compact_width) {
      throw std::logic_error("FusedLinearPack: predictor weight width mismatch");
    }
    weights_.resize(weights_.size() + width_, 0.0);
    double* dst = weights_.data() + (rows()) * width_;
    std::size_t c = 0;
    for (const std::size_t f : inputs) {
      const std::size_t block = block_width(arities_[f]);
      for (std::size_t b = 0; b < block; ++b) dst[offsets_[f] + b] = compact[c + b];
      c += block;
    }
    biases_.push_back(form.biases[j]);
  }
  units_.push_back(entry);
}

std::vector<float> FusedLinearPack::weights_f32() const {
  std::vector<float> out(weights_.size());
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out[i] = static_cast<float>(weights_[i]);
  }
  return out;
}

void FusedLinearPack::expand_row(std::span<const double> row, const Schema& schema,
                                 std::span<double> out) const {
  expand_row_impl<double>(row, schema, arities_, offsets_, width_, out);
}

void FusedLinearPack::expand_row_f32(std::span<const double> row, const Schema& schema,
                                     std::span<float> out) const {
  expand_row_impl<float>(row, schema, arities_, offsets_, width_, out);
}

}  // namespace frac
