#include "frac/ensemble.hpp"

#include <algorithm>
#include <stdexcept>

#include "frac/diverse.hpp"
#include "frac/filtering.hpp"
#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"
#include "util/stopwatch.hpp"

namespace frac {

std::vector<double> combine_median(std::span<const MemberScores> members,
                                   std::size_t feature_count) {
  if (members.empty()) throw std::invalid_argument("combine_median: no members");
  const std::size_t n = members.front().per_feature.rows();
  for (const MemberScores& m : members) {
    if (m.per_feature.rows() != n) {
      throw std::invalid_argument("combine_median: member test sizes differ");
    }
    if (m.per_feature.cols() != m.feature_ids.size()) {
      throw std::invalid_argument("combine_median: member column/id mismatch");
    }
    for (const std::size_t id : m.feature_ids) {
      if (id >= feature_count) {
        throw std::invalid_argument("combine_median: feature id out of range");
      }
    }
  }

  // Per original feature, the (member, column) pairs that scored it.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> sources(feature_count);
  for (std::size_t m = 0; m < members.size(); ++m) {
    for (std::size_t c = 0; c < members[m].feature_ids.size(); ++c) {
      sources[members[m].feature_ids[c]].emplace_back(m, c);
    }
  }

  std::vector<double> scores(n, 0.0);
  std::vector<double> feature_scores;
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t f = 0; f < feature_count; ++f) {
      feature_scores.clear();
      for (const auto& [m, c] : sources[f]) {
        const double v = members[m].per_feature(r, c);
        if (!is_missing(v)) feature_scores.push_back(v);
      }
      if (!feature_scores.empty()) total += median(feature_scores);
    }
    scores[r] = total;
  }
  return scores;
}

namespace {

/// Pre-splits one RNG stream per member, in the same draw order as the old
/// serial member loop, so ensemble scores are bit-identical for any thread
/// count (and the caller's rng ends in the same state).
std::vector<Rng> split_member_rngs(Rng& rng, std::size_t members) {
  std::vector<Rng> member_rngs;
  member_rngs.reserve(members);
  for (std::size_t m = 0; m < members; ++m) member_rngs.push_back(rng.split(m));
  return member_rngs;
}

}  // namespace

ScoredRun run_random_filter_ensemble(const Replicate& replicate, const FracConfig& config,
                                     double keep_fraction, std::size_t members, Rng& rng,
                                     ThreadPool& pool) {
  if (members == 0) throw std::invalid_argument("run_random_filter_ensemble: no members");
  // Scoped stopwatch: bills every member's work to this run no matter which
  // pool thread executes it, so cpu_seconds stays the analytic total-work
  // quantity even with members training concurrently.
  const CpuStopwatch cpu;
  std::vector<Rng> member_rngs = split_member_rngs(rng, members);
  std::vector<MemberScores> member_scores(members);
  parallel_for(pool, 0, members, [&](std::size_t m) {
    FracConfig member_config = config;
    member_config.seed = member_rngs[m].split(1000)();
    member_scores[m] = run_full_filtered_member(replicate, member_config, FilterMethod::kRandom,
                                                keep_fraction, member_rngs[m], pool);
  });
  ScoredRun run;
  // The paper's Mem% models members run one at a time with each member's
  // models freed once its per-feature scores are extracted, so modeled peaks
  // max (merge_sequential). Wall-clock scheduling — members now train
  // concurrently — is deliberately decoupled from this analytic accounting
  // (see resource_accounting.hpp).
  for (const MemberScores& member : member_scores) {
    run.resources.merge_sequential(member.resources);
  }
  run.resources.cpu_seconds = cpu.seconds();
  run.test_scores = combine_median(member_scores, replicate.train.feature_count());
  return run;
}

ScoredRun run_diverse_ensemble(const Replicate& replicate, const FracConfig& config, double p,
                               std::size_t members, Rng& rng, ThreadPool& pool) {
  if (members == 0) throw std::invalid_argument("run_diverse_ensemble: no members");
  const CpuStopwatch cpu;
  std::vector<Rng> member_rngs = split_member_rngs(rng, members);
  std::vector<MemberScores> member_scores(members);
  parallel_for(pool, 0, members, [&](std::size_t m) {
    FracConfig member_config = config;
    member_config.seed = member_rngs[m].split(1000)();
    member_scores[m] = run_diverse_member(replicate, member_config, p, 1, member_rngs[m], pool);
  });
  ScoredRun run;
  // The paper's diverse-ensemble memory reflects members held together
  // (Table IV Mem% ≈ members × p), so modeled peaks add (merge_concurrent)
  // regardless of the actual execution schedule.
  for (const MemberScores& member : member_scores) {
    run.resources.merge_concurrent(member.resources);
  }
  run.resources.cpu_seconds = cpu.seconds();
  run.test_scores = combine_median(member_scores, replicate.train.feature_count());
  return run;
}

}  // namespace frac
