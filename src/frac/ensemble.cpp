#include "frac/ensemble.hpp"

#include <algorithm>
#include <exception>
#include <functional>
#include <stdexcept>

#include "frac/diverse.hpp"
#include "frac/filtering.hpp"
#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

std::vector<double> combine_median(std::span<const MemberScores> members,
                                   std::size_t feature_count) {
  if (members.empty()) throw std::invalid_argument("combine_median: no members");
  const std::size_t n = members.front().per_feature.rows();
  for (const MemberScores& m : members) {
    if (m.per_feature.rows() != n) {
      throw std::invalid_argument("combine_median: member test sizes differ");
    }
    if (m.per_feature.cols() != m.feature_ids.size()) {
      throw std::invalid_argument("combine_median: member column/id mismatch");
    }
    for (const std::size_t id : m.feature_ids) {
      if (id >= feature_count) {
        throw std::invalid_argument("combine_median: feature id out of range");
      }
    }
  }

  // Per original feature, the (member, column) pairs that scored it.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> sources(feature_count);
  for (std::size_t m = 0; m < members.size(); ++m) {
    for (std::size_t c = 0; c < members[m].feature_ids.size(); ++c) {
      sources[members[m].feature_ids[c]].emplace_back(m, c);
    }
  }

  std::vector<double> scores(n, 0.0);
  std::vector<double> feature_scores;
  for (std::size_t r = 0; r < n; ++r) {
    double total = 0.0;
    for (std::size_t f = 0; f < feature_count; ++f) {
      feature_scores.clear();
      for (const auto& [m, c] : sources[f]) {
        const double v = members[m].per_feature(r, c);
        if (!is_missing(v)) feature_scores.push_back(v);
      }
      if (!feature_scores.empty()) total += median(feature_scores);
    }
    scores[r] = total;
  }
  return scores;
}

namespace {

/// Pre-splits one RNG stream per member, in the same draw order as the old
/// serial member loop, so ensemble scores are bit-identical for any thread
/// count (and the caller's rng ends in the same state).
std::vector<Rng> split_member_rngs(Rng& rng, std::size_t members) {
  std::vector<Rng> member_rngs;
  member_rngs.reserve(members);
  for (std::size_t m = 0; m < members; ++m) member_rngs.push_back(rng.split(m));
  return member_rngs;
}

/// The members that trained successfully, plus per-category counts for the
/// ones that did not.
struct MemberBatch {
  std::vector<MemberScores> survivors;
  FailureCounts failures;
};

/// Runs all members with per-member failure isolation: a member that throws
/// (allocation failure, injected fault escalated past unit isolation) is
/// recorded and dropped — the median combiner then works over the
/// survivors. Only when *every* member fails is the first error rethrown:
/// there is nothing left to degrade to.
MemberBatch run_isolated_members(std::size_t members, ThreadPool& pool,
                                 const std::function<MemberScores(std::size_t)>& run_member) {
  std::vector<MemberScores> scores(members);
  std::vector<std::uint8_t> ok(members, 0);
  std::vector<std::exception_ptr> errors(members);
  parallel_for(pool, 0, members, [&](std::size_t m) {
    const TraceSpan member_span(
        "frac.ensemble_member",
        trace_armed() ? format("{\"member\": %zu}", m) : std::string());
    try {
      scores[m] = run_member(m);
      ok[m] = 1;
    } catch (...) {
      errors[m] = std::current_exception();
    }
  });
  MemberBatch batch;
  batch.survivors.reserve(members);
  std::exception_ptr first_error;
  for (std::size_t m = 0; m < members; ++m) {
    if (ok[m]) {
      batch.survivors.push_back(std::move(scores[m]));
      continue;
    }
    if (first_error == nullptr) first_error = errors[m];
    try {
      std::rethrow_exception(errors[m]);
    } catch (const std::exception& e) {
      batch.failures[classify_failure(e)] += 1;
      FRAC_WARN << "ensemble member " << m << " dropped ("
                << failure_category_name(classify_failure(e)) << "): " << e.what();
    } catch (...) {
      batch.failures[FailureCategory::kNumeric] += 1;
      FRAC_WARN << "ensemble member " << m << " dropped (unknown exception)";
    }
  }
  metrics_counter("ensemble.members_trained").add(batch.survivors.size());
  metrics_counter("ensemble.members_failed").add(members - batch.survivors.size());
  if (batch.survivors.empty()) std::rethrow_exception(first_error);
  return batch;
}

}  // namespace

ScoredRun run_random_filter_ensemble(const Replicate& replicate, const FracConfig& config,
                                     double keep_fraction, std::size_t members, Rng& rng,
                                     ThreadPool& pool) {
  if (members == 0) throw std::invalid_argument("run_random_filter_ensemble: no members");
  // Scoped stopwatch: bills every member's work to this run no matter which
  // pool thread executes it, so cpu_seconds stays the analytic total-work
  // quantity even with members training concurrently.
  const CpuStopwatch cpu;
  std::vector<Rng> member_rngs = split_member_rngs(rng, members);
  const MemberBatch batch = run_isolated_members(members, pool, [&](std::size_t m) {
    FracConfig member_config = config;
    member_config.seed = member_rngs[m].split(1000)();
    return run_full_filtered_member(replicate, member_config, FilterMethod::kRandom,
                                    keep_fraction, member_rngs[m], pool);
  });
  ScoredRun run;
  // The paper's Mem% models members run one at a time with each member's
  // models freed once its per-feature scores are extracted, so modeled peaks
  // max (merge_sequential). Wall-clock scheduling — members now train
  // concurrently — is deliberately decoupled from this analytic accounting
  // (see resource_accounting.hpp).
  for (const MemberScores& member : batch.survivors) {
    run.resources.merge_sequential(member.resources);
  }
  run.resources.failures += batch.failures;
  run.resources.cpu_seconds = cpu.seconds();
  run.test_scores = combine_median(batch.survivors, replicate.train.feature_count());
  return run;
}

ScoredRun run_diverse_ensemble(const Replicate& replicate, const FracConfig& config, double p,
                               std::size_t members, Rng& rng, ThreadPool& pool) {
  if (members == 0) throw std::invalid_argument("run_diverse_ensemble: no members");
  const CpuStopwatch cpu;
  std::vector<Rng> member_rngs = split_member_rngs(rng, members);
  const MemberBatch batch = run_isolated_members(members, pool, [&](std::size_t m) {
    FracConfig member_config = config;
    member_config.seed = member_rngs[m].split(1000)();
    return run_diverse_member(replicate, member_config, p, 1, member_rngs[m], pool);
  });
  ScoredRun run;
  // The paper's diverse-ensemble memory reflects members held together
  // (Table IV Mem% ≈ members × p), so modeled peaks add (merge_concurrent)
  // regardless of the actual execution schedule.
  for (const MemberScores& member : batch.survivors) {
    run.resources.merge_concurrent(member.resources);
  }
  run.resources.failures += batch.failures;
  run.resources.cpu_seconds = cpu.seconds();
  run.test_scores = combine_median(batch.survivors, replicate.train.feature_count());
  return run;
}

}  // namespace frac
