#include "frac/filtering.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "util/stopwatch.hpp"

namespace frac {

std::vector<std::size_t> select_filtered_features(const Dataset& train, FilterMethod method,
                                                  double keep_fraction, Rng& rng,
                                                  const EntropyConfig& entropy) {
  if (keep_fraction <= 0.0 || keep_fraction > 1.0) {
    throw std::invalid_argument("select_filtered_features: keep_fraction must be in (0, 1]");
  }
  const std::size_t f = train.feature_count();
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(keep_fraction * static_cast<double>(f)));

  std::vector<std::size_t> kept;
  if (method == FilterMethod::kRandom) {
    kept = rng.sample_without_replacement(f, keep);
  } else {
    std::vector<double> entropies(f);
    // One column buffer reused across features (Matrix::col would allocate a
    // fresh vector per call, f times).
    std::vector<double> column(train.values().rows());
    for (std::size_t j = 0; j < f; ++j) {
      train.values().copy_col(j, column);
      const bool any_finite =
          std::any_of(column.begin(), column.end(), [](double v) { return !is_missing(v); });
      // An entirely missing column carries no information: rank it last.
      entropies[j] = any_finite
                         ? feature_entropy(column, train.schema()[j], entropy)
                         : -std::numeric_limits<double>::infinity();
    }
    std::vector<std::size_t> order(f);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return entropies[a] > entropies[b]; });
    kept.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep));
  }
  std::sort(kept.begin(), kept.end());
  return kept;
}

namespace {

/// Shared body of the full-filter run: reduced datasets + ordinary FRaC.
struct FullFilterOutput {
  FracModel model;
  Dataset test_reduced;
  std::vector<std::size_t> kept;
  double selection_seconds = 0.0;
};

FullFilterOutput train_full_filtered(const Replicate& replicate, const FracConfig& config,
                                     FilterMethod method, double keep_fraction, Rng& rng,
                                     ThreadPool& pool) {
  const CpuStopwatch select_cpu;
  std::vector<std::size_t> kept =
      select_filtered_features(replicate.train, method, keep_fraction, rng, config.entropy);
  const double selection_seconds = select_cpu.seconds();
  Dataset train_reduced = replicate.train.select_features(kept);
  Dataset test_reduced = replicate.test.select_features(kept);
  FracModel model = FracModel::train(train_reduced, config, pool);
  return {std::move(model), std::move(test_reduced), std::move(kept), selection_seconds};
}

}  // namespace

ScoredRun run_full_filtered_frac(const Replicate& replicate, const FracConfig& config,
                                 FilterMethod method, double keep_fraction, Rng& rng,
                                 ThreadPool& pool) {
  const CpuStopwatch cpu;
  const FullFilterOutput out =
      train_full_filtered(replicate, config, method, keep_fraction, rng, pool);
  ScoredRun run;
  run.test_scores = out.model.score(out.test_reduced, pool);
  run.resources = out.model.report();
  run.resources.cpu_seconds = cpu.seconds();
  return run;
}

MemberScores run_full_filtered_member(const Replicate& replicate, const FracConfig& config,
                                      FilterMethod method, double keep_fraction, Rng& rng,
                                      ThreadPool& pool) {
  const CpuStopwatch cpu;
  const FullFilterOutput out =
      train_full_filtered(replicate, config, method, keep_fraction, rng, pool);
  MemberScores member;
  member.per_feature = out.model.per_feature_scores(out.test_reduced, pool);
  member.feature_ids = out.kept;
  member.resources = out.model.report();
  member.resources.cpu_seconds = cpu.seconds();
  return member;
}

ScoredRun run_partial_filtered_frac(const Replicate& replicate, const FracConfig& config,
                                    FilterMethod method, double keep_fraction, Rng& rng,
                                    ThreadPool& pool) {
  const CpuStopwatch cpu;
  const std::vector<std::size_t> kept =
      select_filtered_features(replicate.train, method, keep_fraction, rng, config.entropy);
  const std::size_t f = replicate.train.feature_count();
  // Targets: kept features. Inputs: every *other* feature, filtered or not.
  std::vector<FeaturePlan> plan;
  plan.reserve(kept.size());
  for (const std::size_t target : kept) {
    FeaturePlan p;
    p.target = target;
    p.inputs.reserve(f - 1);
    for (std::size_t j = 0; j < f; ++j) {
      if (j != target) p.inputs.push_back(j);
    }
    plan.push_back(std::move(p));
  }
  const FracModel model =
      FracModel::train_with_plan(replicate.train, std::move(plan), config, pool);
  ScoredRun run;
  run.test_scores = model.score(replicate.test, pool);
  run.resources = model.report();
  run.resources.cpu_seconds = cpu.seconds();
  return run;
}

}  // namespace frac
