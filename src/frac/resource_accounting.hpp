// Resource accounting for FRaC runs, mirroring the paper's Time/Mem columns.
//
// Time is measured CPU seconds of the work done on the run's behalf (the
// paper reports CPU hours), billed via scoped accounting
// (util/cpu_accounting.hpp) so it stays correct when runs execute
// concurrently on the shared pool.
//
// Memory is *analytic*: the paper's numbers are dominated by libSVM model
// storage — each trained SVR keeps its support vectors as dense vectors, so
// a full FRaC run over f features holds ≈ f models × (#SV × f dims) doubles
// (which is how 19,739 features × ~90 samples reaches 152 GB in Table II).
// We reproduce that accounting exactly: every retained predictor reports its
// libSVM-equivalent storage (SVR: #SV × (dims+1) × 8 B; tree: nodes × node
// size), and the run's peak is models + training data. This keeps the
// variant/full *fractions* of Tables III–V faithful even though our scaled
// cohorts make absolute numbers smaller. current_rss_bytes() is available as
// a sanity check but is not what the tables report.
#pragma once

#include <cstddef>

#include "frac/failure.hpp"

namespace frac {

/// Cost of one FRaC-style run (training + scoring).
struct ResourceReport {
  double cpu_seconds = 0.0;
  /// Peak of: training data + all concurrently retained predictor models.
  std::size_t peak_bytes = 0;
  /// Largest transient training workspace any single unit held (its gathered
  /// design matrix + target column). Fold models train on MatrixViews of that
  /// matrix, so this carries no CV-fold multiplier — the zero-copy invariant
  /// bench/table2_full_frac asserts. Sequential merge takes the max (the
  /// workspace is freed between runs), concurrent merge adds.
  std::size_t train_workspace_bytes = 0;
  /// Total predictors trained (CV folds + final models).
  std::size_t models_trained = 0;
  /// Predictors retained for scoring.
  std::size_t models_retained = 0;
  /// Units (or ensemble members) demoted to recorded failures instead of
  /// aborting the run, tallied per category (frac/failure.hpp). Always adds
  /// under both merges: every failure anywhere in the run stays visible.
  FailureCounts failures;

  /// Accumulates `other` as *sequential* work: times add, peaks max.
  ///
  /// "Sequential" and "concurrent" describe the paper's *modeled* execution
  /// (random-filter ensemble members are costed one-at-a-time; diverse and
  /// CSAX members as coexisting), not the actual schedule — members may well
  /// train concurrently on the pool. The modeled peaks are analytic and
  /// deliberately decoupled from wall-clock scheduling (DESIGN.md §7).
  ResourceReport& merge_sequential(const ResourceReport& other);

  /// Accumulates `other` as *concurrent* work: times add, peaks add.
  ResourceReport& merge_concurrent(const ResourceReport& other);

  /// Accumulates `other` as a sibling *shard process* (`frac merge`).
  /// merge_sequential's max-of-workspaces invariant ("the workspace is freed
  /// between runs") only holds inside one address space; shard processes
  /// each hold their own peak with their own allocator, so a merged report
  /// must *sum* per-shard train_workspace_bytes (and peak_bytes: every shard
  /// maps the dataset and retains its units simultaneously in the fleet's
  /// worst case). Times, model counts, and failure tallies add as always.
  ResourceReport& merge_shards(const ResourceReport& other);
};

/// libSVM-equivalent bytes for a linear SVR/SVC model with `support_vectors`
/// SVs over `dims` input dimensions (dense SV storage plus one coefficient
/// per SV, as libSVM's svm_model holds).
std::size_t svm_model_bytes(std::size_t support_vectors, std::size_t dims);

}  // namespace frac
