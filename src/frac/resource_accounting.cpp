#include "frac/resource_accounting.hpp"

#include <algorithm>

namespace frac {

ResourceReport& ResourceReport::merge_sequential(const ResourceReport& other) {
  cpu_seconds += other.cpu_seconds;
  peak_bytes = std::max(peak_bytes, other.peak_bytes);
  train_workspace_bytes = std::max(train_workspace_bytes, other.train_workspace_bytes);
  models_trained += other.models_trained;
  models_retained = std::max(models_retained, other.models_retained);
  failures += other.failures;
  return *this;
}

ResourceReport& ResourceReport::merge_concurrent(const ResourceReport& other) {
  cpu_seconds += other.cpu_seconds;
  peak_bytes += other.peak_bytes;
  train_workspace_bytes += other.train_workspace_bytes;
  models_trained += other.models_trained;
  models_retained += other.models_retained;
  failures += other.failures;
  return *this;
}

ResourceReport& ResourceReport::merge_shards(const ResourceReport& other) {
  cpu_seconds += other.cpu_seconds;
  peak_bytes += other.peak_bytes;
  train_workspace_bytes += other.train_workspace_bytes;
  models_trained += other.models_trained;
  models_retained += other.models_retained;
  failures += other.failures;
  return *this;
}

std::size_t svm_model_bytes(std::size_t support_vectors, std::size_t dims) {
  return support_vectors * (dims + 1) * sizeof(double);
}

}  // namespace frac
