#include "frac/error_model.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "serialize/archive.hpp"
#include "util/serialize.hpp"

namespace frac {

void GaussianErrorModel::fit(std::span<const double> residuals, double min_sd) {
  if (residuals.empty()) throw std::invalid_argument("GaussianErrorModel::fit: no residuals");
  if (min_sd <= 0.0) throw std::invalid_argument("GaussianErrorModel::fit: min_sd must be > 0");
  mean_ = frac::mean(residuals);
  sd_ = std::max(sample_stddev(residuals), min_sd);
}

double GaussianErrorModel::surprisal(double residual) const {
  const double z = (residual - mean_) / sd_;
  return 0.5 * z * z + std::log(sd_) + 0.5 * std::log(2.0 * std::numbers::pi);
}

void ConfusionErrorModel::fit(std::span<const std::uint32_t> true_codes,
                              std::span<const std::uint32_t> predicted_codes,
                              std::uint32_t arity, double alpha) {
  if (true_codes.size() != predicted_codes.size()) {
    throw std::invalid_argument("ConfusionErrorModel::fit: size mismatch");
  }
  if (arity < 2) throw std::invalid_argument("ConfusionErrorModel::fit: arity must be >= 2");
  if (alpha <= 0.0) throw std::invalid_argument("ConfusionErrorModel::fit: alpha must be > 0");
  // Validate before mutating any state, so a failed fit leaves the model
  // in its previous (possibly unfitted) condition.
  for (std::size_t i = 0; i < true_codes.size(); ++i) {
    if (true_codes[i] >= arity || predicted_codes[i] >= arity) {
      throw std::invalid_argument("ConfusionErrorModel::fit: code out of range");
    }
  }
  arity_ = arity;
  alpha_ = alpha;
  counts_.assign(static_cast<std::size_t>(arity) * arity, 0);
  col_totals_.assign(arity, 0);
  for (std::size_t i = 0; i < true_codes.size(); ++i) {
    ++counts_[static_cast<std::size_t>(true_codes[i]) * arity + predicted_codes[i]];
    ++col_totals_[predicted_codes[i]];
  }
}

double ConfusionErrorModel::surprisal(std::uint32_t true_code,
                                      std::uint32_t predicted_code) const {
  if (arity_ == 0) throw std::logic_error("ConfusionErrorModel::surprisal before fit");
  if (true_code >= arity_ || predicted_code >= arity_) {
    throw std::invalid_argument("ConfusionErrorModel::surprisal: code out of range");
  }
  const double numerator =
      static_cast<double>(counts_[static_cast<std::size_t>(true_code) * arity_ + predicted_code]) +
      alpha_;
  const double denominator =
      static_cast<double>(col_totals_[predicted_code]) + alpha_ * static_cast<double>(arity_);
  return -std::log(numerator / denominator);
}

void GaussianErrorModel::serialize(ArchiveWriter& archive) const {
  archive.write_f64(mean_);
  archive.write_f64(sd_);
}

GaussianErrorModel GaussianErrorModel::deserialize(ArchiveReader& archive) {
  GaussianErrorModel model;
  model.mean_ = archive.read_f64();
  model.sd_ = archive.read_f64();
  if (!(model.sd_ > 0.0)) archive.fail("Gaussian error model sd must be > 0");
  return model;
}

void GaussianErrorModel::save(std::ostream& out) const {
  write_tagged(out, "gauss.mean", mean_);
  write_tagged(out, "gauss.sd", sd_);
}

GaussianErrorModel GaussianErrorModel::load(std::istream& in) {
  GaussianErrorModel model;
  model.mean_ = read_tagged_double(in, "gauss.mean");
  model.sd_ = read_tagged_double(in, "gauss.sd");
  if (model.sd_ <= 0.0) throw std::runtime_error("GaussianErrorModel::load: sd must be > 0");
  return model;
}

void KdeErrorModel::fit(std::span<const double> residuals, double density_floor) {
  if (residuals.empty()) throw std::invalid_argument("KdeErrorModel::fit: no residuals");
  if (density_floor <= 0.0) {
    throw std::invalid_argument("KdeErrorModel::fit: density_floor must be > 0");
  }
  kde_.fit(residuals);
  floor_ = density_floor;
}

double KdeErrorModel::surprisal(double residual) const {
  return -std::log(std::max(kde_.pdf(residual), floor_));
}

double KdeErrorModel::bandwidth() const noexcept { return kde_.bandwidth(); }

void KdeErrorModel::serialize(ArchiveWriter& archive) const {
  archive.write_f64(floor_);
  archive.write_f64_array(kde_.points());
}

KdeErrorModel KdeErrorModel::deserialize(ArchiveReader& archive) {
  KdeErrorModel model;
  const double floor = archive.read_f64();
  if (!(floor > 0.0)) archive.fail("KDE error model density floor must be > 0");
  model.floor_ = floor;
  // The KDE is re-fit from its stored sample (bandwidth is a pure function
  // of the points), exactly as the text loader does.
  const std::vector<double> points = archive.read_f64_vector();
  if (points.empty()) archive.fail("KDE error model has no residual points");
  model.kde_.fit(points);
  return model;
}

void KdeErrorModel::save(std::ostream& out) const {
  write_tagged(out, "kdeerr.floor", floor_);
  write_tagged(out, "kdeerr.points", kde_.points());
}

KdeErrorModel KdeErrorModel::load(std::istream& in) {
  KdeErrorModel model;
  // Enforce the same invariants as fit(): a corrupt or hand-edited model
  // file must not yield a floor of 0 (surprisal = -log(0) = inf) or NaN.
  const double floor = read_tagged_double(in, "kdeerr.floor");
  if (!(floor > 0.0)) {
    throw std::runtime_error("KdeErrorModel::load: density floor must be > 0");
  }
  model.floor_ = floor;
  const std::vector<double> points = read_tagged_doubles(in, "kdeerr.points");
  if (points.empty()) throw std::runtime_error("KdeErrorModel::load: no residual points");
  model.kde_.fit(points);
  return model;
}

void ConfusionErrorModel::serialize(ArchiveWriter& archive) const {
  archive.write_u32(arity_);
  archive.write_f64(alpha_);
  archive.write_u64_array(std::vector<std::uint64_t>(counts_.begin(), counts_.end()));
}

ConfusionErrorModel ConfusionErrorModel::deserialize(ArchiveReader& archive) {
  ConfusionErrorModel model;
  model.arity_ = archive.read_u32();
  model.alpha_ = archive.read_f64();
  if (model.arity_ < 2) archive.fail("confusion error model arity must be >= 2");
  if (!(model.alpha_ > 0.0)) archive.fail("confusion error model alpha must be > 0");
  const std::vector<std::uint64_t> counts = archive.read_u64_vector();
  if (counts.size() != static_cast<std::size_t>(model.arity_) * model.arity_) {
    archive.fail("confusion matrix size does not match arity");
  }
  model.counts_.assign(counts.begin(), counts.end());
  model.col_totals_.assign(model.arity_, 0);
  for (std::uint32_t t = 0; t < model.arity_; ++t) {
    for (std::uint32_t p = 0; p < model.arity_; ++p) {
      model.col_totals_[p] += model.counts_[static_cast<std::size_t>(t) * model.arity_ + p];
    }
  }
  return model;
}

void ConfusionErrorModel::save(std::ostream& out) const {
  write_tagged(out, "conf.arity", static_cast<std::uint64_t>(arity_));
  write_tagged(out, "conf.alpha", alpha_);
  write_tagged(out, "conf.counts",
               std::vector<std::uint64_t>(counts_.begin(), counts_.end()));
}

ConfusionErrorModel ConfusionErrorModel::load(std::istream& in) {
  ConfusionErrorModel model;
  model.arity_ = static_cast<std::uint32_t>(read_tagged_uint(in, "conf.arity"));
  model.alpha_ = read_tagged_double(in, "conf.alpha");
  const auto counts = read_tagged_uints(in, "conf.counts");
  if (counts.size() != static_cast<std::size_t>(model.arity_) * model.arity_) {
    throw std::runtime_error("ConfusionErrorModel::load: counts size mismatch");
  }
  model.counts_.assign(counts.begin(), counts.end());
  model.col_totals_.assign(model.arity_, 0);
  for (std::uint32_t t = 0; t < model.arity_; ++t) {
    for (std::uint32_t p = 0; p < model.arity_; ++p) {
      model.col_totals_[p] += model.counts_[static_cast<std::size_t>(t) * model.arity_ + p];
    }
  }
  return model;
}

std::size_t ConfusionErrorModel::count(std::uint32_t true_code,
                                       std::uint32_t predicted_code) const {
  if (true_code >= arity_ || predicted_code >= arity_) {
    throw std::invalid_argument("ConfusionErrorModel::count: code out of range");
  }
  return counts_[static_cast<std::size_t>(true_code) * arity_ + predicted_code];
}

}  // namespace frac
