// Per-feature entropy H(f_i), the normalizer in normalized surprisal.
//
// Categorical features: Shannon entropy of the training-set value
// frequencies. Continuous features: differential entropy of a Gaussian KDE
// fit to the training values (paper §II.A). Both in nats, matching the
// natural-log surprisal produced by the error models, so NS terms
// (−log P − H) cancel to ≈0 for unsurprising values.
#pragma once

#include <span>

#include "data/schema.hpp"

namespace frac {

struct EntropyConfig {
  /// Trapezoid nodes for the differential-entropy integral. 128 is within
  /// ~0.02 nat of a 2048-point grid on these sample sizes, and — since
  /// H(f_i) is a per-feature constant subtracted from every sample's
  /// surprisal — entropy precision never affects NS *rankings* (AUC),
  /// only absolute NS levels.
  std::size_t kde_grid_points = 128;
};

/// Entropy of one feature column (NaNs skipped). For categorical features,
/// values must be codes in [0, spec.arity). Throws std::invalid_argument
/// when a continuous column has no finite values.
double feature_entropy(std::span<const double> column, const FeatureSpec& spec,
                       const EntropyConfig& config = {});

}  // namespace frac
