#include "frac/diverse.hpp"

#include <stdexcept>

#include "util/stopwatch.hpp"

namespace frac {

std::vector<FeaturePlan> make_diverse_plan(std::size_t feature_count, double p,
                                           std::size_t predictors_per_target, Rng& rng) {
  if (p <= 0.0 || p > 1.0) {
    throw std::invalid_argument("make_diverse_plan: p must be in (0, 1]");
  }
  if (predictors_per_target == 0) {
    throw std::invalid_argument("make_diverse_plan: need at least one predictor per target");
  }
  if (feature_count < 2) {
    throw std::invalid_argument("make_diverse_plan: need at least 2 features");
  }
  std::vector<FeaturePlan> plan;
  plan.reserve(feature_count * predictors_per_target);
  for (std::size_t i = 0; i < feature_count; ++i) {
    for (std::size_t rep = 0; rep < predictors_per_target; ++rep) {
      FeaturePlan unit;
      unit.target = i;
      for (std::size_t j = 0; j < feature_count; ++j) {
        if (j != i && rng.bernoulli(p)) unit.inputs.push_back(j);
      }
      if (unit.inputs.empty()) {
        // Degenerate draw: keep one random input so the unit stays trainable.
        std::size_t j = rng.uniform_index(feature_count - 1);
        if (j >= i) ++j;
        unit.inputs.push_back(j);
      }
      plan.push_back(std::move(unit));
    }
  }
  return plan;
}

ScoredRun run_diverse_frac(const Replicate& replicate, const FracConfig& config, double p,
                           std::size_t predictors_per_target, Rng& rng, ThreadPool& pool) {
  const CpuStopwatch cpu;
  std::vector<FeaturePlan> plan =
      make_diverse_plan(replicate.train.feature_count(), p, predictors_per_target, rng);
  const FracModel model =
      FracModel::train_with_plan(replicate.train, std::move(plan), config, pool);
  ScoredRun run;
  run.test_scores = model.score(replicate.test, pool);
  run.resources = model.report();
  run.resources.cpu_seconds = cpu.seconds();
  return run;
}

MemberScores run_diverse_member(const Replicate& replicate, const FracConfig& config, double p,
                                std::size_t predictors_per_target, Rng& rng, ThreadPool& pool) {
  const CpuStopwatch cpu;
  std::vector<FeaturePlan> plan =
      make_diverse_plan(replicate.train.feature_count(), p, predictors_per_target, rng);
  const FracModel model =
      FracModel::train_with_plan(replicate.train, std::move(plan), config, pool);
  MemberScores member;
  member.per_feature = model.per_feature_scores(replicate.test, pool);
  member.feature_ids.resize(replicate.train.feature_count());
  for (std::size_t j = 0; j < member.feature_ids.size(); ++j) member.feature_ids[j] = j;
  member.resources = model.report();
  member.resources.cpu_seconds = cpu.seconds();
  return member;
}

}  // namespace frac
