#include "frac/entropy.hpp"

#include <cmath>
#include <vector>

#include "data/dataset.hpp"
#include "ml/kde/gaussian_kde.hpp"
#include "util/errors.hpp"
#include "util/string_util.hpp"

namespace frac {

double feature_entropy(std::span<const double> column, const FeatureSpec& spec,
                       const EntropyConfig& config) {
  if (spec.kind == FeatureKind::kCategorical) {
    std::vector<std::size_t> counts(spec.arity, 0);
    for (const double v : column) {
      if (is_missing(v)) continue;
      // An out-of-range or fractional code would previously index past the
      // counts buffer (or truncate silently); reject it so unit isolation can
      // demote the feature instead of corrupting the entropy term.
      if (v < 0.0 || v >= static_cast<double>(spec.arity) || v != std::floor(v)) {
        throw NumericError(format("feature '%s': categorical code %g outside [0, %u)",
                                  spec.name.c_str(), v, static_cast<unsigned>(spec.arity)));
      }
      ++counts[static_cast<std::size_t>(v)];
    }
    return categorical_entropy(counts);
  }
  GaussianKde kde;
  kde.fit(column);
  return kde.differential_entropy(config.kde_grid_points);
}

}  // namespace frac
