#include "frac/entropy.hpp"

#include <vector>

#include "data/dataset.hpp"
#include "ml/kde/gaussian_kde.hpp"

namespace frac {

double feature_entropy(std::span<const double> column, const FeatureSpec& spec,
                       const EntropyConfig& config) {
  if (spec.kind == FeatureKind::kCategorical) {
    std::vector<std::size_t> counts(spec.arity, 0);
    for (const double v : column) {
      if (is_missing(v)) continue;
      ++counts[static_cast<std::size_t>(v)];
    }
    return categorical_entropy(counts);
  }
  GaussianKde kde;
  kde.fit(column);
  return kde.differential_entropy(config.kde_grid_points);
}

}  // namespace frac
