// Filtering variants (paper §II.A).
//
// Full filtering at fraction p: keep p of the features (random or by
// entropy rank) and run ordinary FRaC on the kept features only — both
// targets and inputs shrink, so time and libSVM-style memory fall ≈ p².
//
// Partial filtering: build predictors only for the kept features, but train
// each on *all* other features. Time/memory fall ≈ p. The paper found this
// "consistently worse than full filtering in time, space, and AUC"; it is
// implemented to reproduce that ablation.
#pragma once

#include "data/split.hpp"
#include "frac/ensemble.hpp"
#include "frac/frac.hpp"

namespace frac {

enum class FilterMethod { kRandom, kEntropy };

/// Feature indices kept at `keep_fraction` (at least 1 feature, ascending).
/// kRandom samples uniformly; kEntropy keeps the highest-entropy features
/// (frequency entropy for categorical, KDE differential entropy for real),
/// computed on the training set only.
std::vector<std::size_t> select_filtered_features(const Dataset& train, FilterMethod method,
                                                  double keep_fraction, Rng& rng,
                                                  const EntropyConfig& entropy = {});

/// Full-filter FRaC: select features, project both sides of the replicate,
/// run ordinary FRaC on the reduced data.
ScoredRun run_full_filtered_frac(const Replicate& replicate, const FracConfig& config,
                                 FilterMethod method, double keep_fraction, Rng& rng,
                                 ThreadPool& pool);

/// Full-filter member for ensembles: per-feature scores mapped back to the
/// original feature ids.
MemberScores run_full_filtered_member(const Replicate& replicate, const FracConfig& config,
                                      FilterMethod method, double keep_fraction, Rng& rng,
                                      ThreadPool& pool);

/// Partial-filter FRaC: kept features as targets, all features as inputs.
ScoredRun run_partial_filtered_frac(const Replicate& replicate, const FracConfig& config,
                                    FilterMethod method, double keep_fraction, Rng& rng,
                                    ThreadPool& pool);

}  // namespace frac
