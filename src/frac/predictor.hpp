// Per-feature predictors: the supervised models FRaC trains for each target
// feature. "Predictors can be any supervised learning algorithm" — the
// public factory supports the paper's choices (linear ε-SVR for continuous
// targets, decision trees for categorical ones) plus the crossed variants
// used in ablations (regression trees; one-vs-rest linear SVC over 1-hot
// inputs, which the paper found inferior on SNP data).
//
// Predictors consume *raw* schema-typed input rows (selected input features
// only). SVM-backed predictors expand categorical inputs to 1-hot vectors
// internally and impute missing values to 0 (= the training mean after
// standardization); trees consume mixed values natively and route missing
// values per node.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "ml/svm/linear_svc.hpp"
#include "ml/svm/linear_svr.hpp"
#include "ml/tree/decision_tree.hpp"

namespace frac {

class ArchiveWriter;
class ArchiveReader;

enum class RegressorKind : std::uint8_t { kLinearSvr, kRegressionTree };
enum class ClassifierKind : std::uint8_t { kDecisionTree, kLinearSvcOneHot };

/// Model selection + hyperparameters for all predictor families.
struct PredictorConfig {
  RegressorKind regressor = RegressorKind::kLinearSvr;
  ClassifierKind classifier = ClassifierKind::kDecisionTree;
  LinearSvrConfig svr;
  LinearSvcConfig svc;
  DecisionTreeConfig tree;
};

/// A linear predictor's weights over its 1-hot-expanded input layout, for
/// the fused serve path (frac/fused.hpp). One row per output: a single row
/// for regression, one row per class — in the argmax order predict() walks —
/// for one-vs-rest classification. Spans borrow the predictor's storage;
/// callers copy out of them before the predictor goes away. Evaluation
/// contract: decision = dot(row, expanded inputs) + bias (f64 add after the
/// dot); classifiers take the argmax with strict >, first max winning.
struct PredictorLinearForm {
  std::vector<std::span<const double>> rows;
  std::vector<double> biases;
  bool classifier = false;
};

/// A trained model for one target feature.
class FeaturePredictor {
 public:
  virtual ~FeaturePredictor() = default;

  /// Predicts the target from one raw input row (width = training inputs).
  /// Regression: real value. Classification: a category code.
  virtual double predict(std::span<const double> inputs) const = 0;

  /// Paper-equivalent retained-model bytes (see resource_accounting.hpp).
  virtual std::size_t storage_bytes() const = 0;

  /// Input positions this model actually relies on (tree: split features;
  /// linear: positions of the largest-|w| weights) — interpretability hook
  /// for the paper's "most predictive models" analyses.
  virtual std::vector<std::uint32_t> influential_inputs(std::size_t top_k = 20) const = 0;

  /// Binary persistence into the caller's open archive section (a kind tag
  /// then the model payload); read back with deserialize_predictor().
  virtual void serialize(ArchiveWriter& archive) const = 0;

  /// Deprecated legacy tagged-text persistence; load with load_predictor().
  /// New code uses serialize()/deserialize_predictor().
  virtual void save(std::ostream& out) const = 0;

  /// Linear predictors expose their weight rows here so scoring can fuse
  /// them into one GEMM; trees return nullopt and keep the per-unit walk.
  virtual std::optional<PredictorLinearForm> linear_form() const { return std::nullopt; }

  /// The solver's dual variables from training, in training-row order (SVR:
  /// β, one per row; one-vs-rest SVC: class-major α, arity·rows entries) —
  /// the warm-start seed FracModel::warm_retrain persists and feeds back
  /// through the train_* factories' `warm` parameter. Empty for trees and for
  /// deserialized predictors (FracModel persists dual state separately).
  virtual std::span<const double> dual_state() const { return {}; }
};

/// Reads back any predictor written by FeaturePredictor::serialize.
std::unique_ptr<FeaturePredictor> deserialize_predictor(ArchiveReader& archive);

/// Reads back any predictor written by FeaturePredictor::save (legacy text).
std::unique_ptr<FeaturePredictor> load_predictor(std::istream& in);

/// Trains a regressor on rows of x against real-valued y.
/// `arities[j]` describes input column j (0 = real). Accepts a MatrixView,
/// so CV folds train on row subsets of a shared design matrix zero-copy;
/// all-real NaN-free inputs skip the 1-hot expansion copy entirely.
/// `warm` optionally seeds an SVM solver's duals from a previous model's
/// dual_state() (ignored by trees; empty = cold start, bit-identical to the
/// pre-warm-start behavior).
std::unique_ptr<FeaturePredictor> train_regressor(MatrixView x, std::span<const double> y,
                                                  std::span<const std::uint32_t> arities,
                                                  const PredictorConfig& config,
                                                  std::span<const double> warm = {});

/// Trains a classifier on rows of x against target codes in [0, arity).
/// `warm` follows OneVsRestSvc::fit's class-major layout (see train_regressor).
std::unique_ptr<FeaturePredictor> train_classifier(MatrixView x, std::span<const double> y,
                                                   std::uint32_t target_arity,
                                                   std::span<const std::uint32_t> arities,
                                                   const PredictorConfig& config,
                                                   std::span<const double> warm = {});

}  // namespace frac
