// Error models: convert a predictor's output into −log P(true value | prediction).
//
// Continuous targets: a Gaussian fit to the cross-validated residuals
// (true − predicted); surprisal is the Gaussian negative log density of the
// test residual ("error models simply fit a Gaussian to the error
// distribution"). A standard-deviation floor keeps surprisal finite when a
// feature is perfectly predictable on the tiny training sets.
//
// Categorical targets: a Laplace-smoothed confusion matrix over the
// cross-validated (true, predicted) pairs; surprisal is
// −log P(true | predicted) estimated column-wise.
// All surprisals are in nats.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "ml/kde/gaussian_kde.hpp"

namespace frac {

class ArchiveWriter;
class ArchiveReader;

/// Gaussian error model over prediction residuals.
class GaussianErrorModel {
 public:
  /// Fits mean/sd of residuals; sd is floored at `min_sd`.
  void fit(std::span<const double> residuals, double min_sd = 1e-3);

  /// −log N(residual; μ, σ).
  double surprisal(double residual) const;

  double mean() const noexcept { return mean_; }
  double sd() const noexcept { return sd_; }

  /// Binary persistence into the caller's open archive section.
  void serialize(ArchiveWriter& archive) const;
  static GaussianErrorModel deserialize(ArchiveReader& archive);

  /// Deprecated legacy tagged-text codec; kept for one release so existing
  /// callers compile. New code uses serialize()/deserialize().
  void save(std::ostream& out) const;
  static GaussianErrorModel load(std::istream& in);

 private:
  double mean_ = 0.0;
  double sd_ = 1.0;
};

/// Nonparametric error model: Gaussian KDE over the CV residuals, as the
/// original FRaC paper used. This paper argues a plain Gaussian is safer at
/// tiny n ("there is insufficient data to accurately learn a more detailed
/// model"); both are provided so that claim can be measured
/// (bench/ablation_error_models). A density floor keeps far-tail surprisal
/// finite.
class KdeErrorModel {
 public:
  /// Fits a KDE to the residuals. `density_floor` bounds surprisal at
  /// −log(floor) for residuals far outside the training support.
  void fit(std::span<const double> residuals, double density_floor = 1e-9);

  /// −log max(pdf(residual), floor).
  double surprisal(double residual) const;

  double bandwidth() const noexcept;

  /// Binary persistence into the caller's open archive section.
  void serialize(ArchiveWriter& archive) const;
  static KdeErrorModel deserialize(ArchiveReader& archive);

  /// Deprecated legacy tagged-text codec (see GaussianErrorModel).
  void save(std::ostream& out) const;
  static KdeErrorModel load(std::istream& in);

 private:
  GaussianKde kde_;
  double floor_ = 1e-9;
};

/// Confusion-matrix error model for categorical targets.
class ConfusionErrorModel {
 public:
  /// Fits from CV pairs; `true_codes[i]` and `predicted_codes[i]` in
  /// [0, arity). Laplace smoothing with `alpha` pseudo-counts per cell.
  void fit(std::span<const std::uint32_t> true_codes,
           std::span<const std::uint32_t> predicted_codes, std::uint32_t arity,
           double alpha = 1.0);

  /// −log P(true_code | predicted_code).
  double surprisal(std::uint32_t true_code, std::uint32_t predicted_code) const;

  std::uint32_t arity() const noexcept { return arity_; }

  /// Raw (unsmoothed) count of (true, predicted) pairs seen in fitting.
  std::size_t count(std::uint32_t true_code, std::uint32_t predicted_code) const;

  /// Binary persistence into the caller's open archive section.
  void serialize(ArchiveWriter& archive) const;
  static ConfusionErrorModel deserialize(ArchiveReader& archive);

  /// Deprecated legacy tagged-text codec (see GaussianErrorModel).
  void save(std::ostream& out) const;
  static ConfusionErrorModel load(std::istream& in);

 private:
  std::uint32_t arity_ = 0;
  double alpha_ = 1.0;
  std::vector<std::size_t> counts_;      // arity × arity, row = true, col = predicted
  std::vector<std::size_t> col_totals_;  // per predicted code
};

}  // namespace frac
