// Diverse FRaC (paper §II.B): every feature keeps a predictor, but each
// predictor's input set is an independent random subset — feature j ≠ i is
// an input for target i with probability p. Halving the learning problems
// (p = 1/2) roughly halves time and libSVM-style memory while letting
// "subtle patterns be detected over stronger [ones], particularly when
// features necessary to learn stronger patterns are absent".
//
// Multiple predictors per target (each on a fresh subset) realize the inner
// Σ_j of the NS formula and further diversify the masked-pattern search.
#pragma once

#include "data/split.hpp"
#include "frac/ensemble.hpp"
#include "frac/frac.hpp"

namespace frac {

/// Builds the diverse plan: `predictors_per_target` units per feature, each
/// with inputs sampled at probability `p` (at least one input is always
/// kept, so no unit degenerates).
std::vector<FeaturePlan> make_diverse_plan(std::size_t feature_count, double p,
                                           std::size_t predictors_per_target, Rng& rng);

/// Diverse FRaC run (paper settings: p = 1/2, one predictor per target).
ScoredRun run_diverse_frac(const Replicate& replicate, const FracConfig& config, double p,
                           std::size_t predictors_per_target, Rng& rng, ThreadPool& pool);

/// Diverse member for ensembles (paper: 10 members at p = 1/20).
MemberScores run_diverse_member(const Replicate& replicate, const FracConfig& config, double p,
                                std::size_t predictors_per_target, Rng& rng, ThreadPool& pool);

}  // namespace frac
