#include "frac/preprojection.hpp"

#include "util/stopwatch.hpp"

namespace frac {

ScoredRun run_jl_frac(const Replicate& replicate, const FracConfig& config,
                      const JlPipelineConfig& jl_config, ThreadPool& pool) {
  const CpuStopwatch cpu;
  JlPipeline pipeline(replicate.train.schema(), jl_config);
  pipeline.fit_imputation(replicate.train);
  const Dataset train_projected = pipeline.apply(replicate.train, pool);
  const Dataset test_projected = pipeline.apply(replicate.test, pool);
  const FracModel model = FracModel::train(train_projected, config, pool);
  ScoredRun run;
  run.test_scores = model.score(test_projected, pool);
  run.resources = model.report();
  // The projection matrix and the projected copy of the data are live
  // alongside the models.
  run.resources.peak_bytes += pipeline.bytes();
  run.resources.cpu_seconds = cpu.seconds();
  return run;
}

}  // namespace frac
