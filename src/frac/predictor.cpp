#include "frac/predictor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include <istream>
#include <ostream>
#include <stdexcept>

#include "data/dataset.hpp"  // is_missing
#include "frac/resource_accounting.hpp"
#include "serialize/archive.hpp"
#include "util/serialize.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

namespace {

/// Expands raw mixed inputs to an all-real vector for the SVM solvers:
/// real columns pass through (NaN -> 0, the standardized mean), categorical
/// columns become 1-hot blocks (NaN -> all-zero block).
class InputExpander {
 public:
  explicit InputExpander(std::span<const std::uint32_t> arities) {
    offsets_.reserve(arities.size());
    std::size_t w = 0;
    for (const std::uint32_t a : arities) {
      offsets_.push_back(w);
      w += a == 0 ? 1 : a;
    }
    width_ = w;
    arities_.assign(arities.begin(), arities.end());
  }

  std::size_t width() const noexcept { return width_; }

  void expand(std::span<const double> in, std::span<double> out) const {
    std::fill(out.begin(), out.end(), 0.0);
    for (std::size_t j = 0; j < arities_.size(); ++j) {
      const double v = in[j];
      if (is_missing(v)) continue;
      if (arities_[j] == 0) out[offsets_[j]] = v;
      else out[offsets_[j] + static_cast<std::size_t>(v)] = 1.0;
    }
  }

  Matrix expand(MatrixView in) const {
    Matrix out(in.rows(), width_);
    for (std::size_t r = 0; r < in.rows(); ++r) expand(in.row(r), out.row(r));
    return out;
  }

  /// True when expansion is the identity map (all-real inputs): the solver
  /// can train straight on the caller's view unless values need the NaN -> 0
  /// imputation that expand() performs.
  bool is_identity() const noexcept {
    return std::all_of(arities_.begin(), arities_.end(),
                       [](std::uint32_t a) { return a == 0; });
  }

  /// Maps an expanded column back to the raw input position.
  std::uint32_t source_of(std::size_t expanded_col) const {
    const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), expanded_col);
    return static_cast<std::uint32_t>(std::distance(offsets_.begin(), it) - 1);
  }

 private:
  std::vector<std::uint32_t> arities_;
  std::vector<std::size_t> offsets_;
  std::size_t width_ = 0;
};

bool has_missing_values(MatrixView x) {
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (const double v : x.row(r)) {
      if (is_missing(v)) return true;
    }
  }
  return false;
}

/// Per-thread expansion buffer. predict() is const and runs concurrently on
/// row chunks that share one predictor instance, so the scratch must not
/// live in the instance; predict never re-enters itself on a thread, so one
/// buffer per thread (grown to the widest expansion seen) is safe.
std::span<double> expansion_scratch(std::size_t width) {
  thread_local std::vector<double> buffer;
  if (buffer.size() < width) buffer.resize(width);
  return std::span<double>(buffer.data(), width);
}

/// Predictor kind tags in the binary archive encoding.
enum class PredictorTag : std::uint8_t { kTree = 0, kSvr = 1, kSvc = 2 };

/// Top-k raw input positions by |weight| over an expanded weight vector.
std::vector<std::uint32_t> top_inputs_by_weight(std::span<const double> w,
                                                const InputExpander& expander,
                                                std::size_t top_k) {
  std::vector<std::size_t> order(w.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return std::abs(w[a]) > std::abs(w[b]); });
  std::vector<std::uint32_t> out;
  for (const std::size_t col : order) {
    if (w[col] == 0.0) break;
    const std::uint32_t src = expander.source_of(col);
    if (std::find(out.begin(), out.end(), src) == out.end()) {
      out.push_back(src);
      if (out.size() == top_k) break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

class SvrPredictor final : public FeaturePredictor {
 public:
  SvrPredictor(MatrixView x, std::span<const double> y,
               std::span<const std::uint32_t> arities, const LinearSvrConfig& config,
               std::span<const double> warm = {})
      : arities_(arities.begin(), arities.end()), expander_(arities_) {
    // Zero-copy fast path: all-real NaN-free inputs need no expansion, so
    // the solver trains directly on the caller's (possibly row-subset) view.
    // Duals are per training row, so the warm seed is expansion-agnostic.
    if (expander_.is_identity() && !has_missing_values(x)) {
      model_.fit(x, y, config, warm);
    } else {
      const Matrix expanded = expander_.expand(x);
      model_.fit(expanded, y, config, warm);
    }
  }

  SvrPredictor(LinearSvr model, std::vector<std::uint32_t> arities)
      : arities_(std::move(arities)), expander_(arities_), model_(std::move(model)) {}

  double predict(std::span<const double> inputs) const override {
    const std::span<double> scratch = expansion_scratch(expander_.width());
    expander_.expand(inputs, scratch);
    return model_.predict(scratch);
  }

  std::size_t storage_bytes() const override {
    return svm_model_bytes(model_.support_vector_count(), expander_.width());
  }

  std::vector<std::uint32_t> influential_inputs(std::size_t top_k) const override {
    return top_inputs_by_weight(model_.weights(), expander_, top_k);
  }

  void serialize(ArchiveWriter& archive) const override {
    archive.write_u8(static_cast<std::uint8_t>(PredictorTag::kSvr));
    archive.write_u32_array(arities_);
    model_.serialize(archive);
  }

  void save(std::ostream& out) const override {
    write_tagged(out, "predictor", std::string("svr"));
    write_tagged(out, "arities",
                 std::vector<std::uint64_t>(arities_.begin(), arities_.end()));
    model_.save(out);
  }

  std::optional<PredictorLinearForm> linear_form() const override {
    PredictorLinearForm form;
    form.rows.push_back(model_.weights());
    form.biases.push_back(model_.bias());
    return form;
  }

  std::span<const double> dual_state() const override { return model_.duals(); }

 private:
  std::vector<std::uint32_t> arities_;
  InputExpander expander_;
  LinearSvr model_;
};

class TreePredictor final : public FeaturePredictor {
 public:
  TreePredictor(MatrixView x, std::span<const double> y,
                std::span<const std::uint32_t> arities, TreeTask task,
                std::uint32_t target_arity, const DecisionTreeConfig& config) {
    model_.fit(x, y, arities, task, target_arity, config);
  }

  explicit TreePredictor(DecisionTree model) : model_(std::move(model)) {}

  double predict(std::span<const double> inputs) const override {
    return model_.predict(inputs);
  }

  std::size_t storage_bytes() const override { return model_.bytes(); }

  std::vector<std::uint32_t> influential_inputs(std::size_t top_k) const override {
    std::vector<std::uint32_t> used = model_.used_features();
    if (used.size() > top_k) used.resize(top_k);
    return used;
  }

  void serialize(ArchiveWriter& archive) const override {
    archive.write_u8(static_cast<std::uint8_t>(PredictorTag::kTree));
    model_.serialize(archive);
  }

  void save(std::ostream& out) const override {
    write_tagged(out, "predictor", std::string("tree"));
    model_.save(out);
  }

 private:
  DecisionTree model_;
};

class SvcPredictor final : public FeaturePredictor {
 public:
  SvcPredictor(MatrixView x, std::span<const double> y, std::uint32_t target_arity,
               std::span<const std::uint32_t> arities, const LinearSvcConfig& config,
               std::span<const double> warm = {})
      : arities_(arities.begin(), arities.end()), expander_(arities_) {
    if (expander_.is_identity() && !has_missing_values(x)) {
      model_.fit(x, y, target_arity, config, warm);
    } else {
      const Matrix expanded = expander_.expand(x);
      model_.fit(expanded, y, target_arity, config, warm);
    }
  }

  SvcPredictor(OneVsRestSvc model, std::vector<std::uint32_t> arities)
      : arities_(std::move(arities)), expander_(arities_), model_(std::move(model)) {}

  double predict(std::span<const double> inputs) const override {
    const std::span<double> scratch = expansion_scratch(expander_.width());
    expander_.expand(inputs, scratch);
    return static_cast<double>(model_.predict(scratch));
  }

  std::size_t storage_bytes() const override {
    return svm_model_bytes(model_.support_vector_count(), expander_.width());
  }

  std::vector<std::uint32_t> influential_inputs(std::size_t /*top_k*/) const override {
    return {};  // per-class weights omitted; use the tree classifier for interpretation
  }

  void serialize(ArchiveWriter& archive) const override {
    archive.write_u8(static_cast<std::uint8_t>(PredictorTag::kSvc));
    archive.write_u32_array(arities_);
    model_.serialize(archive);
  }

  void save(std::ostream& out) const override {
    write_tagged(out, "predictor", std::string("svc"));
    write_tagged(out, "arities",
                 std::vector<std::uint64_t>(arities_.begin(), arities_.end()));
    model_.save(out);
  }

  std::optional<PredictorLinearForm> linear_form() const override {
    PredictorLinearForm form;
    form.classifier = true;
    for (std::uint32_t k = 0; k < model_.arity(); ++k) {
      form.rows.push_back(model_.binary(k).weights());
      form.biases.push_back(model_.binary(k).bias());
    }
    return form;
  }

  std::span<const double> dual_state() const override { return model_.duals(); }

 private:
  std::vector<std::uint32_t> arities_;
  InputExpander expander_;
  OneVsRestSvc model_;
};

}  // namespace

std::unique_ptr<FeaturePredictor> deserialize_predictor(ArchiveReader& archive) {
  const std::uint8_t tag = archive.read_u8();
  if (tag == static_cast<std::uint8_t>(PredictorTag::kTree)) {
    return std::make_unique<TreePredictor>(DecisionTree::deserialize(archive));
  }
  if (tag != static_cast<std::uint8_t>(PredictorTag::kSvr) &&
      tag != static_cast<std::uint8_t>(PredictorTag::kSvc)) {
    archive.fail(format("unknown predictor kind tag %u", tag));
  }
  std::vector<std::uint32_t> arities = archive.read_u32_vector();
  if (tag == static_cast<std::uint8_t>(PredictorTag::kSvr)) {
    return std::make_unique<SvrPredictor>(LinearSvr::deserialize(archive),
                                          std::move(arities));
  }
  return std::make_unique<SvcPredictor>(OneVsRestSvc::deserialize(archive),
                                        std::move(arities));
}

std::unique_ptr<FeaturePredictor> load_predictor(std::istream& in) {
  const std::string kind = read_tagged_string(in, "predictor");
  if (kind == "tree") {
    return std::make_unique<TreePredictor>(DecisionTree::load(in));
  }
  const auto raw = read_tagged_uints(in, "arities");
  std::vector<std::uint32_t> arities(raw.begin(), raw.end());
  if (kind == "svr") {
    return std::make_unique<SvrPredictor>(LinearSvr::load(in), std::move(arities));
  }
  if (kind == "svc") {
    return std::make_unique<SvcPredictor>(OneVsRestSvc::load(in), std::move(arities));
  }
  throw std::runtime_error("load_predictor: unknown kind '" + kind + "'");
}

std::unique_ptr<FeaturePredictor> train_regressor(MatrixView x, std::span<const double> y,
                                                  std::span<const std::uint32_t> arities,
                                                  const PredictorConfig& config,
                                                  std::span<const double> warm) {
  const TraceSpan span(
      "frac.predictor_train",
      trace_armed() ? format("{\"kind\": \"regressor\", \"rows\": %zu}", x.rows())
                    : std::string());
  if (config.regressor == RegressorKind::kLinearSvr) {
    return std::make_unique<SvrPredictor>(x, y, arities, config.svr, warm);
  }
  return std::make_unique<TreePredictor>(x, y, arities, TreeTask::kRegression, 0, config.tree);
}

std::unique_ptr<FeaturePredictor> train_classifier(MatrixView x, std::span<const double> y,
                                                   std::uint32_t target_arity,
                                                   std::span<const std::uint32_t> arities,
                                                   const PredictorConfig& config,
                                                   std::span<const double> warm) {
  const TraceSpan span(
      "frac.predictor_train",
      trace_armed() ? format("{\"kind\": \"classifier\", \"rows\": %zu}", x.rows())
                    : std::string());
  if (config.classifier == ClassifierKind::kDecisionTree) {
    return std::make_unique<TreePredictor>(x, y, arities, TreeTask::kClassification,
                                           target_arity, config.tree);
  }
  return std::make_unique<SvcPredictor>(x, y, target_arity, arities, config.svc, warm);
}

}  // namespace frac
