// FRaC: Feature Regression and Classification anomaly detection
// (Noto, Brodley, Slonim 2010/2012), the algorithm all of this library's
// scalable variants reduce.
//
// Training (per target feature i, paper §I.A.1):
//   1. k-fold cross-validation over the (all-normal) training set: train a
//      predictor for feature i from the plan's input features on each fold
//      complement, predict the holdout fold;
//   2. fit an error model to the CV (truth, prediction) pairs — Gaussian
//      residual model for real targets, confusion matrix for categorical;
//   3. train the retained predictor on the full training set;
//   4. estimate the feature's training entropy H(f_i).
//
// Scoring: normalized surprisal
//   NS(x) = Σ_units [ −log P(x_t | predictor(x_inputs)) − H(f_t) ],
// with undefined (missing) targets contributing 0. Higher NS = more
// anomalous. Real features are standardized with training statistics; NS is
// invariant to that affine change (both surprisal and differential entropy
// shift by log σ), but it makes the SVR hyperparameters scale-free.
//
// Variants plug in through the *plan*: ordinary FRaC uses every other
// feature as inputs for every target; filtering/diverse variants restrict
// targets and/or inputs (see filtering.hpp, diverse.hpp, preprojection.hpp).
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>

#include "data/dataset.hpp"
#include "data/scaler.hpp"
#include "data/split.hpp"
#include "frac/entropy.hpp"
#include "frac/error_model.hpp"
#include "frac/failure.hpp"
#include "frac/fused.hpp"
#include "frac/predictor.hpp"
#include "frac/resource_accounting.hpp"
#include "parallel/thread_pool.hpp"

namespace frac {

class ArchiveWriter;
class ArchiveReader;
struct ShardOps;

namespace detail {
class UnitColumnSource;
struct UnitTrainOutcome;
}  // namespace detail

/// Error model for continuous targets: the Gaussian this paper prescribes,
/// or the nonparametric KDE of the original FRaC paper.
enum class ContinuousErrorKind : std::uint8_t { kGaussian, kKde };

/// On-disk model encodings. kBinary is the versioned archive
/// (serialize/archive.hpp, docs/model_format.md) that mmap-backed serving
/// loads without parsing; kText is the legacy tagged-text format, kept
/// writable for diffability and one release of backward compatibility.
enum class ModelFormat : std::uint8_t { kBinary, kText };

struct FracConfig {
  std::size_t cv_folds = 5;        ///< error-model cross-validation folds
  PredictorConfig predictor;       ///< model family + hyperparameters
  ContinuousErrorKind continuous_error = ContinuousErrorKind::kGaussian;
  double min_error_sd = 1e-2;      ///< Gaussian error-model σ floor (standardized units)
  double confusion_alpha = 1.0;    ///< Laplace smoothing of confusion matrices
  EntropyConfig entropy;           ///< KDE grid for continuous entropy
  bool standardize = true;         ///< standardize real features on train stats
  std::uint64_t seed = 23;         ///< CV fold assignment / per-unit streams
  /// Keep each retained SVM solver's dual variables on the model, enabling
  /// warm_retrain() and the optional dual_state archive section (format v3).
  /// Off by default: archives stay v2 and bit-identical to prior releases.
  bool retain_duals = false;
  /// warm_retrain() keep-or-refit margin, in nats of mean excess surprisal:
  /// a unit whose window residuals run hotter than its error model's own
  /// calibrated expectation by more than this is refit from scratch
  /// (dual-seeded); anything closer keeps its predictor and only
  /// recalibrates. Mean-surprisal sampling noise is ~sqrt(0.5/window_rows)
  /// nats for a Gaussian unit, so the default is ~3 sigma at 30 rows.
  double warm_keep_margin = 0.25;
};

/// How linear units are evaluated at scoring time. Both modes share the
/// full-width scattered-weight evaluation (see frac/fused.hpp), so their
/// NS outputs are bit-identical; kFused batches it into one blocked GEMM
/// and is the default everywhere. kPerUnit exists as the reference walk the
/// bit-identity tests and the serve_latency speedup gate compare against.
enum class ScoreMode : std::uint8_t { kFused, kPerUnit };

/// Weight precision for linear-unit evaluation. kF32 requires a model with
/// an embedded f32 weight pack (`frac convert --f32`, format v3): the dot
/// runs in f32, is widened to f64, and everything downstream (bias add,
/// error models, entropies) stays f64. Tree units are unaffected.
enum class ScorePrecision : std::uint8_t { kF64, kF32 };

/// One (target, inputs) learning problem. A plan is a list of these; the
/// paper's Fig. 1 variants are all expressible as plans.
struct FeaturePlan {
  std::size_t target = 0;
  std::vector<std::size_t> inputs;
};

/// Ordinary FRaC's plan: each feature predicted from all others.
std::vector<FeaturePlan> default_plan(std::size_t feature_count);

/// A trained FRaC model: per-unit predictors + error models + entropies.
class FracModel {
 public:
  /// Ordinary FRaC on all features.
  static FracModel train(const Dataset& train, const FracConfig& config, ThreadPool& pool);

  /// FRaC restricted to an explicit plan (targets may repeat: the NS double
  /// sum Σ_i Σ_j runs over multiple predictors per feature).
  static FracModel train_with_plan(const Dataset& train, std::vector<FeaturePlan> plan,
                                   const FracConfig& config, ThreadPool& pool);

  /// Selectively retrains this model's plan on a refreshed cohort
  /// (streaming drift recovery: the cohort shifted, the regression
  /// structure mostly didn't). Each unit is first auditioned on the new
  /// window — the retained predictor never trained on those rows, so its
  /// residuals there are unbiased. Units whose mean surprisal stays within
  /// config.warm_keep_margin of the error model's calibrated expectation
  /// keep their predictor and only recalibrate (error model + entropy refit
  /// on the window); units that run hotter — plus demoted, KDE, and
  /// error-kind-mismatched units — are fully refit through the standard
  /// per-unit training loop, dual-seeded from this model's retained alphas.
  /// The window is standardized with *this* model's scaler (kept predictors
  /// live in that frame), which the result inherits. The result is a fully
  /// independent model; pass config.retain_duals to keep it
  /// warm-retrainable in turn. Requires has_dual_state() and a dataset with
  /// the training schema.
  FracModel warm_retrain(const Dataset& train, const FracConfig& config, ThreadPool& pool) const;

  /// True when the model carries per-unit solver duals — trained with
  /// FracConfig::retain_duals or restored from a dual_state archive section —
  /// i.e. warm_retrain() is available.
  bool has_dual_state() const noexcept;

  /// Unit `unit`'s retained solver duals (SVR: one β per training row;
  /// one-vs-rest SVC: class-major α). Empty for trees, demoted units, and
  /// models without dual state.
  std::span<const double> unit_duals(std::size_t unit) const {
    return unit < unit_duals_.size() ? std::span<const double>(unit_duals_[unit])
                                     : std::span<const double>{};
  }

  /// NS score per test sample (higher = more anomalous). The test schema
  /// must equal the training schema. Defaults run the fused f64 path;
  /// mode/precision are bench/serve knobs (see ScoreMode/ScorePrecision).
  std::vector<double> score(const Dataset& test, ThreadPool& pool,
                            ScoreMode mode = ScoreMode::kFused,
                            ScorePrecision precision = ScorePrecision::kF64) const;

  /// Per-feature NS contributions: n_test × feature_count. Features with no
  /// predictor hold NaN ("no score", distinct from a zero contribution) —
  /// the ensemble median combiner skips them.
  Matrix per_feature_scores(const Dataset& test, ThreadPool& pool,
                            ScoreMode mode = ScoreMode::kFused,
                            ScorePrecision precision = ScorePrecision::kF64) const;

  /// True when the model carries the optional f32 weight pack (format v3),
  /// i.e. f32 scoring is available.
  bool has_f32_weights() const noexcept {
    return !f32_view_.empty() || !f32_owned_.empty();
  }

  /// Builds and embeds the f32 weight pack so save_file(kBinary) writes the
  /// format-v3 section and f32 scoring works in this process. No-op when
  /// the model already carries one.
  void build_f32_weights();

  std::size_t feature_count() const noexcept { return schema_.size(); }
  std::size_t unit_count() const noexcept { return units_.size(); }
  const Schema& schema() const noexcept { return schema_; }
  const FeaturePlan& unit_plan(std::size_t unit) const { return units_.at(unit).plan; }

  /// Training-set entropy of a unit's target feature (nats).
  double unit_entropy(std::size_t unit) const { return units_.at(unit).entropy; }

  /// Interpretability: the unit's most influential input features, as
  /// indices into the training schema.
  std::vector<std::size_t> influential_inputs(std::size_t unit, std::size_t top_k = 20) const;

  /// Training cost (CPU seconds, paper-equivalent peak bytes, model counts,
  /// per-category failure counts). Binary archives persist the report and the
  /// failure records, so both survive a save/load round trip; models restored
  /// from legacy text carry an empty report (the text format predates it).
  const ResourceReport& report() const noexcept { return report_; }

  /// Units demoted to recorded failures during training (failure isolation):
  /// a unit whose predictor or error model threw, or produced non-finite
  /// output, trains no predictor and contributes nothing to NS — the run
  /// degrades instead of aborting. report().failures holds the per-category
  /// tallies; this is the per-unit audit trail.
  const std::vector<UnitFailure>& unit_failures() const noexcept { return failures_; }

  /// Binary persistence: writes the model's archive sections (schema, scaler,
  /// units with predictors/error models/entropies, resource report, failure
  /// records) into `archive`; deserialize() reads them back. When the reader
  /// is borrowed() (ModelBundle), predictor weight vectors stay zero-copy
  /// views into the archive bytes.
  void serialize(ArchiveWriter& archive) const;
  static FracModel deserialize(ArchiveReader& archive);

  /// Persists the model to `path` atomically, in the requested format
  /// (binary archive by default).
  void save_file(const std::string& path, ModelFormat format = ModelFormat::kBinary) const;

  /// Deprecated legacy tagged-text persistence. New code uses
  /// save_file()/serialize().
  void save(std::ostream& out) const;

  /// Restores a model from either format: the archive magic selects the
  /// binary path (malformed archives throw ParseError naming the bad
  /// section), anything else falls back to the legacy text parser (which
  /// throws std::runtime_error on malformed input).
  static FracModel load(std::istream& in);
  static FracModel load_file(const std::string& path);

 private:
  /// The sharded trainer (frac/shard.cpp): assembles partial models from
  /// unit ranges and stitches them back together, so it builds Units and
  /// reports directly.
  friend struct ShardOps;

  struct Unit {
    FeaturePlan plan;
    std::unique_ptr<FeaturePredictor> predictor;  // null if the unit was untrainable
    bool categorical = false;
    ContinuousErrorKind error_kind = ContinuousErrorKind::kGaussian;
    GaussianErrorModel gaussian;
    KdeErrorModel kde_error;
    ConfusionErrorModel confusion;
    double entropy = 0.0;
  };

  /// The error-model tail shared by every scoring path: −log P(truth |
  /// predicted) − H, the categorical truth guard included; nullopt when the
  /// surprisal is non-finite (the unit abstains).
  std::optional<double> surprisal_of(const Unit& unit, double truth, double predicted) const;

  /// Core scoring loop shared by score()/per_feature_scores(): evaluates
  /// every unit on every row (fused GEMM or per-unit reference for linear
  /// units, predictor walk for trees) and calls emit(row, unit, ns) for
  /// each defined contribution, in unit order within a row.
  template <typename Emit>
  void score_units(const Matrix& values, ThreadPool& pool, ScoreMode mode,
                   ScorePrecision precision, const Emit& emit) const;

  /// The lazily-built fused pack (first fused score builds it; call_once
  /// guards concurrent serve scoring). Lazy so ModelBundle::open stays a
  /// near-O(1) mmap — the serve_latency load gate depends on that.
  const FusedLinearPack& fused_pack() const;

  /// The f32 pack: mmap view when the archive was borrowed, owned otherwise.
  std::span<const float> f32_weights() const noexcept {
    return f32_view_.empty() ? std::span<const float>(f32_owned_) : f32_view_;
  }

  /// Standardizes a test dataset copy with the training scaler.
  Matrix standardized_values(const Dataset& data) const;

  /// Legacy tagged-text parser behind load()'s format sniff.
  static FracModel load_text(std::istream& in);

  /// train_with_plan/warm_retrain shared core. `warm_duals`, when non-null,
  /// holds plan-aligned dual state from a previous model, fed through the
  /// predictor factories to warm-start the SVM solvers.
  static FracModel train_impl(const Dataset& train, std::vector<FeaturePlan> plan,
                              const FracConfig& config, ThreadPool& pool,
                              const std::vector<std::vector<double>>* warm_duals);

  /// The per-unit training loop shared by train_with_plan and the sharded
  /// trainer: trains plan.size() units whose *global* indices start at
  /// unit_lo, writing Unit slots model.units_[unit_lo - slot_base ...].
  /// RNG streams, fault injection, failure records, and trace spans are all
  /// keyed by global unit index, so any tiling of [0, U) into ranges
  /// produces bit-identical units (the shard bit-identity guarantee).
  /// Consumes `plan` (elements are moved into the units).
  /// `warm_duals`, when non-null, is plan-aligned (entry i seeds plan[i]'s
  /// solvers); the sharded trainer never passes it.
  static void train_units_range(FracModel& model, const detail::UnitColumnSource& source,
                                std::vector<FeaturePlan>& plan, std::size_t unit_lo,
                                std::size_t slot_base, const FracConfig& config,
                                ThreadPool& pool, detail::UnitTrainOutcome& outcome,
                                const std::vector<std::vector<double>>* warm_duals = nullptr);

  Schema schema_;
  std::vector<std::uint32_t> arities_;  // per feature; 0 = real
  StandardScaler scaler_;
  FracConfig config_;
  std::vector<Unit> units_;
  // Per-unit retained solver duals (FracConfig::retain_duals): the
  // warm_retrain() seed, persisted as the optional dual_state section.
  std::vector<std::vector<double>> unit_duals_;
  ResourceReport report_;
  std::vector<UnitFailure> failures_;
  std::span<const float> f32_view_;   // borrowed f32 pack (mmap'd archives)
  std::vector<float> f32_owned_;      // owned f32 pack (build/owning load)
  std::shared_ptr<FusedCell> fused_ = std::make_shared<FusedCell>();
};

/// Convenience: train on the replicate's training set, score its test set,
/// measure total CPU time. What the experiment harness and benches consume.
struct ScoredRun {
  std::vector<double> test_scores;
  ResourceReport resources;
};
ScoredRun run_frac(const Replicate& replicate, const FracConfig& config, ThreadPool& pool);

}  // namespace frac
