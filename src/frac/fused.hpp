// The fused linear-scoring pack: every linear unit's weight rows (LinearSvr,
// BinaryLinearSvc one-vs-rest rows) scattered into one contiguous row-major
// matrix over the model's *full* 1-hot-expanded feature width, plus the
// unit → row index. Batch scoring then runs one blocked gemm_nt over the
// pack instead of per-unit expand + dot walks; tree units keep the per-unit
// walk.
//
// Bit-identity: a scattered full-width row dotted against the full-width
// expansion of a sample produces exactly the bits of the per-unit reference
// evaluation, because both modes share the same expansion and the same
// fixed-order dot kernel (zero-weight positions are exact FMA no-ops but
// still occupy accumulator lanes — which is precisely why the reference
// path must use the scattered form too, not the predictor's compacted one).
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "data/schema.hpp"
#include "frac/predictor.hpp"

namespace frac {

class FusedLinearPack {
 public:
  /// One linear unit's slice of the pack. Entries are appended in unit
  /// order, so linear_units() ascends by `unit`.
  struct UnitRows {
    std::size_t unit = 0;          ///< index into the model's unit list
    std::uint32_t first_row = 0;   ///< first pack row
    std::uint32_t row_count = 0;   ///< 1 for regression, arity for one-vs-rest
    bool classifier = false;       ///< argmax over rows (strict >, first max)
  };

  FusedLinearPack() = default;
  /// `arities[f]` describes feature f (0 = real), exactly the model's
  /// per-feature arity vector; fixes the full expanded width.
  explicit FusedLinearPack(std::span<const std::uint32_t> arities);

  /// Appends one linear unit: scatters each compacted weight row of `form`
  /// (laid out over the 1-hot expansion of `inputs`, in input order) into a
  /// new full-width pack row. Weight-length mismatches throw logic_error.
  void add_unit(std::size_t unit_index, std::span<const std::size_t> inputs,
                const PredictorLinearForm& form);

  bool empty() const noexcept { return units_.empty(); }
  std::size_t width() const noexcept { return width_; }
  std::size_t rows() const noexcept { return biases_.size(); }
  const std::vector<UnitRows>& linear_units() const noexcept { return units_; }
  /// rows() × width() row-major scattered weights.
  std::span<const double> weights() const noexcept { return weights_; }
  std::span<const double> weight_row(std::size_t r) const {
    return std::span<const double>(weights_).subspan(r * width_, width_);
  }
  double bias(std::size_t r) const { return biases_[r]; }

  /// The pack's weights narrowed to f32 (for `frac convert --f32`).
  std::vector<float> weights_f32() const;

  /// Full-width 1-hot expansion of one raw (standardized) sample row:
  /// missing → all-zero block, real → value, categorical code v → 1.0 at
  /// offset + v. Unlike the training-side expander this validates
  /// categorical codes, throwing NumericError naming the feature — a bad
  /// code would otherwise scatter out of its block.
  void expand_row(std::span<const double> row, const Schema& schema,
                  std::span<double> out) const;
  /// f32 twin (values narrowed with static_cast<float>).
  void expand_row_f32(std::span<const double> row, const Schema& schema,
                      std::span<float> out) const;

 private:
  std::vector<std::uint32_t> arities_;
  std::vector<std::size_t> offsets_;  // per-feature offset into the expansion
  std::size_t width_ = 0;
  std::vector<UnitRows> units_;
  std::vector<double> weights_;
  std::vector<double> biases_;
};

/// Once-guarded cell for the lazily-built pack. FracModel holds it behind a
/// shared_ptr so the model stays movable (std::once_flag is not) and a
/// const model can build the pack on first fused score, concurrently safe.
struct FusedCell {
  std::once_flag once;
  FusedLinearPack pack;
};

}  // namespace frac
