#include "frac/frac.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>
#include <numeric>
#include <stdexcept>

#include <fstream>
#include <iterator>
#include <sstream>

#include "frac/train_units.hpp"
#include "linalg/kernels.hpp"
#include "ml/cross_validation.hpp"
#include "parallel/parallel_for.hpp"
#include "serialize/archive.hpp"
#include "util/atomic_file.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/serialize.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

namespace {

/// Runs a callable at scope exit; survives the unit task's early returns.
template <typename Fn>
struct ScopeExit {
  Fn fn;
  ~ScopeExit() { fn(); }
};
template <typename Fn>
ScopeExit(Fn) -> ScopeExit<Fn>;

}  // namespace

namespace detail {

void MatrixUnitSource::target_column(std::size_t target, std::vector<std::size_t>& valid,
                                     std::vector<double>& target_col) const {
  const std::size_t n = values_.rows();
  valid.clear();
  valid.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    if (!is_missing(values_(r, target))) valid.push_back(r);
  }
  target_col.resize(valid.size());
  for (std::size_t i = 0; i < valid.size(); ++i) target_col[i] = values_(valid[i], target);
}

void MatrixUnitSource::gather(std::span<const std::size_t> valid,
                              std::span<const std::size_t> inputs, Matrix& x) const {
  for (std::size_t i = 0; i < valid.size(); ++i) {
    const auto src = values_.row(valid[i]);
    const auto dst = x.row(i);
    for (std::size_t k = 0; k < inputs.size(); ++k) dst[k] = src[inputs[k]];
  }
}

}  // namespace detail

std::vector<FeaturePlan> default_plan(std::size_t feature_count) {
  std::vector<FeaturePlan> plan;
  plan.reserve(feature_count);
  for (std::size_t i = 0; i < feature_count; ++i) {
    FeaturePlan p;
    p.target = i;
    p.inputs.reserve(feature_count - 1);
    for (std::size_t j = 0; j < feature_count; ++j) {
      if (j != i) p.inputs.push_back(j);
    }
    plan.push_back(std::move(p));
  }
  return plan;
}

FracModel FracModel::train(const Dataset& train, const FracConfig& config, ThreadPool& pool) {
  return train_with_plan(train, default_plan(train.feature_count()), config, pool);
}

FracModel FracModel::train_with_plan(const Dataset& train, std::vector<FeaturePlan> plan,
                                     const FracConfig& config, ThreadPool& pool) {
  return train_impl(train, std::move(plan), config, pool, /*warm_duals=*/nullptr);
}

namespace {

/// Clones a trained predictor via an in-memory archive round trip: the
/// predictor hierarchy has no virtual clone, and the serialize codec is
/// already the canonical full-state copy.
std::unique_ptr<FeaturePredictor> clone_predictor(const FeaturePredictor& predictor) {
  ArchiveWriter writer;
  writer.begin_section("clone");
  predictor.serialize(writer);
  writer.end_section();
  const std::string image = writer.bytes();
  ArchiveReader reader(std::as_bytes(std::span<const char>(image.data(), image.size())),
                       "predictor clone", /*borrowed=*/false);
  reader.open_section("clone");
  return deserialize_predictor(reader);
}

}  // namespace

FracModel FracModel::warm_retrain(const Dataset& train, const FracConfig& config,
                                  ThreadPool& pool) const {
  if (!(train.schema() == schema_)) {
    throw std::invalid_argument(
        "FracModel::warm_retrain: dataset schema does not match the trained model");
  }
  if (!has_dual_state()) {
    throw std::invalid_argument(
        "FracModel::warm_retrain: model carries no dual state (train with "
        "FracConfig::retain_duals, or load an archive with a dual_state section)");
  }
  if (train.sample_count() < 2) {
    throw std::invalid_argument("FracModel::warm_retrain: need at least 2 window samples");
  }

  const CpuStopwatch cpu;
  const TraceSpan retrain_span(
      "frac.warm_retrain",
      trace_armed() ? format("{\"units\": %zu, \"samples\": %zu}", units_.size(),
                             train.sample_count())
                    : std::string());
  FracModel model;
  model.schema_ = schema_;
  model.config_ = config;
  model.arities_ = arities_;
  // The kept predictors were trained in this model's standardization frame,
  // so the window must be expressed there too — the warm model inherits the
  // old scaler rather than fitting one on the window, and refit units train
  // in the same frame so the result is internally consistent (and in turn
  // warm-retrainable without a frame change).
  model.scaler_ = scaler_;
  Matrix values = train.values();
  model.scaler_.transform(values);

  const std::size_t unit_count = units_.size();
  model.units_.resize(unit_count);
  // Pre-size the dual slots so the width-one train_units_range calls below
  // never resize concurrently.
  if (config.retain_duals) model.unit_duals_.resize(unit_count);
  const detail::MatrixUnitSource source(values);

  // Audition every unit on the window. The retained predictor never trained
  // on these rows, so its residuals there are unbiased — a unit whose mean
  // surprisal stays within warm_keep_margin of its error model's own
  // calibrated expectation kept its regression structure through the drift:
  // clone it and recalibrate the error model + entropy on the window, no
  // solver pass needed. Everything else falls through to a full dual-seeded
  // refit. All decisions are per-unit arithmetic in fixed order, so the
  // keep/refit split is identical for any thread count.
  std::vector<std::uint8_t> refit(unit_count, 1);
  parallel_for(pool, 0, unit_count, [&](std::size_t u) {
    const Unit& prev = units_[u];
    Unit& next = model.units_[u];
    if (prev.predictor == nullptr) return;  // skipped/demoted: try a fresh fit
    // KDE expectations have no closed form, and an error-kind change must
    // re-derive CV residuals — both refit.
    if (!prev.categorical && (prev.error_kind == ContinuousErrorKind::kKde ||
                              config.continuous_error != prev.error_kind)) {
      return;
    }
    try {
      std::vector<std::size_t> valid;
      std::vector<double> target_col;
      source.target_column(prev.plan.target, valid, target_col);
      // Too thin a window to judge (or to retrain): let the standard loop's
      // own guards decide what this unit becomes.
      if (valid.size() < 4) return;
      Matrix x(valid.size(), prev.plan.inputs.size());
      source.gather(valid, prev.plan.inputs, x);

      double expected = 0.0;
      double mean_surprisal = 0.0;
      std::vector<double> residuals;
      std::vector<std::uint32_t> true_codes, pred_codes;
      if (prev.categorical) {
        const double arity = static_cast<double>(arities_[prev.plan.target]);
        std::size_t total = 0;
        double weighted = 0.0;
        for (std::uint32_t t = 0; t < prev.confusion.arity(); ++t) {
          for (std::uint32_t p = 0; p < prev.confusion.arity(); ++p) {
            const std::size_t n = prev.confusion.count(t, p);
            total += n;
            weighted += static_cast<double>(n) * prev.confusion.surprisal(t, p);
          }
        }
        if (total == 0) return;  // no fitted cells to expect against
        expected = weighted / static_cast<double>(total);
        for (std::size_t i = 0; i < valid.size(); ++i) {
          const double truth = target_col[i];
          if (truth < 0.0 || truth >= arity || truth != std::floor(truth)) return;
          const double predicted = prev.predictor->predict(x.row(i));
          if (predicted < 0.0 || predicted >= arity || predicted != std::floor(predicted)) {
            return;
          }
          true_codes.push_back(static_cast<std::uint32_t>(truth));
          pred_codes.push_back(static_cast<std::uint32_t>(predicted));
          mean_surprisal += prev.confusion.surprisal(true_codes.back(), pred_codes.back());
        }
      } else {
        // E[-log N(r; mu, sd)] over r ~ N(mu, sd): log(sd sqrt(2 pi)) + 1/2.
        expected = std::log(prev.gaussian.sd() * std::sqrt(2.0 * std::numbers::pi)) + 0.5;
        residuals.resize(valid.size());
        for (std::size_t i = 0; i < valid.size(); ++i) {
          const double predicted = prev.predictor->predict(x.row(i));
          if (!std::isfinite(predicted)) return;
          residuals[i] = target_col[i] - predicted;
          mean_surprisal += prev.gaussian.surprisal(residuals[i]);
        }
      }
      mean_surprisal /= static_cast<double>(valid.size());
      if (!std::isfinite(mean_surprisal) ||
          mean_surprisal - expected > config.warm_keep_margin) {
        return;
      }

      // Keep: same predictor, error model + entropy recalibrated on the
      // window (no CV needed — see the unbiasedness argument above).
      next.plan = prev.plan;
      next.categorical = prev.categorical;
      next.error_kind = prev.error_kind;
      if (prev.categorical) {
        next.confusion.fit(true_codes, pred_codes, arities_[prev.plan.target],
                           config.confusion_alpha);
      } else {
        next.gaussian.fit(residuals, config.min_error_sd);
      }
      const double entropy =
          feature_entropy(target_col, schema_[prev.plan.target], config.entropy);
      next.entropy = std::isfinite(entropy) ? entropy : prev.entropy;
      next.predictor = clone_predictor(*prev.predictor);
      if (config.retain_duals) model.unit_duals_[u] = unit_duals_[u];
      refit[u] = 0;
    } catch (const std::exception&) {
      // Audition failures are not verdicts; the standard loop (with its own
      // failure isolation) decides what the unit becomes.
      next.predictor = nullptr;
      refit[u] = 1;
    }
  });

  std::vector<std::size_t> refit_units;
  for (std::size_t u = 0; u < unit_count; ++u) {
    if (refit[u]) refit_units.push_back(u);
  }
  // Each refit unit re-enters the standard training loop as a width-one
  // range. Per-unit RNG streams are salted by *global* unit index, so a
  // refit unit trains exactly as a full retrain of that unit would (in the
  // inherited frame), for any thread count and any keep/refit split.
  std::vector<detail::UnitTrainOutcome> outcomes(refit_units.size());
  parallel_for(pool, 0, refit_units.size(), [&](std::size_t i) {
    const std::size_t u = refit_units[i];
    std::vector<FeaturePlan> one{units_[u].plan};
    const std::vector<std::vector<double>> warm{unit_duals_[u]};
    train_units_range(model, source, one, /*unit_lo=*/u, /*slot_base=*/0, config, pool,
                      outcomes[i], &warm);
  });

  detail::UnitTrainOutcome outcome;
  for (detail::UnitTrainOutcome& one : outcomes) {
    outcome.models_trained += one.models_trained;
    outcome.max_unit_workspace = std::max(outcome.max_unit_workspace, one.max_unit_workspace);
    for (UnitFailure& failure : one.failures) outcome.failures.push_back(std::move(failure));
    outcome.unit_seconds.insert(outcome.unit_seconds.end(), one.unit_seconds.begin(),
                                one.unit_seconds.end());
  }

  model.report_.cpu_seconds = cpu.seconds();
  model.report_.models_trained = outcome.models_trained;
  model.report_.train_workspace_bytes = outcome.max_unit_workspace;
  for (UnitFailure& failure : outcome.failures) {
    model.report_.failures[failure.category] += 1;
    model.failures_.push_back(std::move(failure));
  }
  std::size_t retained_bytes = 0;
  for (const Unit& unit : model.units_) {
    if (unit.predictor == nullptr) continue;
    retained_bytes += unit.predictor->storage_bytes();
    ++model.report_.models_retained;
  }
  if (!model.failures_.empty()) {
    FRAC_WARN << "FracModel::warm_retrain: " << model.failures_.size() << " of "
              << model.units_.size() << " refit units demoted ("
              << model.report_.failures.summary() << "); NS sums over the survivors";
  }
  if (model.report_.models_retained == 0 && !model.failures_.empty()) {
    throw NumericError(format("FracModel::warm_retrain: all %zu units failed (%s)",
                              model.units_.size(), model.report_.failures.summary().c_str()));
  }
  model.report_.peak_bytes = train.bytes() + retained_bytes;

  // Kept units were audited, not trained: frac.units_trained /
  // frac.models_trained count only the refit side, the warm counters carry
  // the keep/refit split.
  const std::size_t kept = unit_count - refit_units.size();
  const std::size_t refit_retained =
      model.report_.models_retained > kept ? model.report_.models_retained - kept : 0;
  metrics_counter("frac.warm.units_kept").add(kept);
  metrics_counter("frac.warm.units_refit").add(refit_units.size());
  metrics_counter("frac.units_trained").add(refit_retained);
  metrics_counter("frac.models_trained").add(model.report_.models_trained);
  metrics_counter("frac.cv_folds")
      .add(outcome.models_trained > refit_retained ? outcome.models_trained - refit_retained
                                                   : 0);
  for (const UnitFailure& failure : model.failures_) {
    metrics_counter(std::string("frac.units_failed.") +
                    failure_category_name(failure.category))
        .add();
  }
  metrics_gauge("frac.train_workspace_bytes")
      .set_max(static_cast<double>(model.report_.train_workspace_bytes));
  metrics_gauge("frac.peak_bytes").set_max(static_cast<double>(model.report_.peak_bytes));
  {
    Histogram& unit_hist = metrics_histogram("frac.unit_train_seconds");
    for (const double s : outcome.unit_seconds) unit_hist.observe(s);
  }
  FRAC_DEBUG << "warm_retrain: kept " << kept << "/" << unit_count << " units, refit "
             << refit_units.size();
  return model;
}

bool FracModel::has_dual_state() const noexcept {
  if (unit_duals_.size() != units_.size()) return false;
  return std::any_of(unit_duals_.begin(), unit_duals_.end(),
                     [](const std::vector<double>& d) { return !d.empty(); });
}

FracModel FracModel::train_impl(const Dataset& train, std::vector<FeaturePlan> plan,
                                const FracConfig& config, ThreadPool& pool,
                                const std::vector<std::vector<double>>* warm_duals) {
  if (train.sample_count() < 2) {
    throw std::invalid_argument("FracModel::train: need at least 2 training samples");
  }
  for (const FeaturePlan& p : plan) {
    if (p.target >= train.feature_count()) {
      throw std::invalid_argument("FracModel::train: plan target out of range");
    }
    for (const std::size_t j : p.inputs) {
      if (j >= train.feature_count()) {
        throw std::invalid_argument("FracModel::train: plan input out of range");
      }
      if (j == p.target) {
        throw std::invalid_argument("FracModel::train: plan may not use the target as input");
      }
    }
  }

  const CpuStopwatch cpu;
  const TraceSpan train_span(
      "frac.train", trace_armed() ? format("{\"units\": %zu, \"samples\": %zu}", plan.size(),
                                           train.sample_count())
                                  : std::string());
  FracModel model;
  model.schema_ = train.schema();
  model.config_ = config;
  model.arities_.resize(model.schema_.size());
  for (std::size_t f = 0; f < model.schema_.size(); ++f) {
    model.arities_[f] = model.schema_.is_categorical(f) ? model.schema_[f].arity : 0;
  }

  // Standardize real columns on training statistics.
  Matrix values = train.values();
  model.scaler_.fit(values);
  for (std::size_t f = 0; f < model.schema_.size(); ++f) {
    if (model.arities_[f] != 0) model.scaler_.reset_column(f);
  }
  if (!config.standardize) {
    for (std::size_t f = 0; f < model.schema_.size(); ++f) model.scaler_.reset_column(f);
  }
  model.scaler_.transform(values);

  model.units_.resize(plan.size());
  detail::UnitTrainOutcome outcome;
  const detail::MatrixUnitSource source(values);
  train_units_range(model, source, plan, /*unit_lo=*/0, /*slot_base=*/0, config, pool, outcome,
                    warm_duals);

  // Resource accounting: data + retained models. models_trained counts the
  // predictors the unit actually trained — min(cv_folds, defined rows) fold
  // models, minus folds skipped as empty, plus the retained one — not the
  // dataset-wide sample count, which overcounts for features with missing
  // values.
  model.report_.cpu_seconds = cpu.seconds();
  model.report_.models_trained = outcome.models_trained;
  model.report_.train_workspace_bytes = outcome.max_unit_workspace;
  for (UnitFailure& failure : outcome.failures) {
    model.report_.failures[failure.category] += 1;
    model.failures_.push_back(std::move(failure));
  }
  std::size_t retained_bytes = 0;
  for (const Unit& unit : model.units_) {
    if (unit.predictor == nullptr) continue;
    retained_bytes += unit.predictor->storage_bytes();
    ++model.report_.models_retained;
  }
  if (!model.failures_.empty()) {
    FRAC_WARN << "FracModel::train: " << model.failures_.size() << " of " << model.units_.size()
              << " units demoted (" << model.report_.failures.summary()
              << "); NS sums over the survivors";
  }
  // Zero survivors with recorded failures is not degradation, it is a dead
  // model (its NS would be identically 0) — fail the run loudly. Zero
  // retained units *without* failures (every target skipped for undefined
  // entropy) keeps the legacy degrade-to-zero behavior.
  if (model.report_.models_retained == 0 && !model.failures_.empty()) {
    throw NumericError(format("FracModel::train: all %zu units failed (%s)",
                              model.units_.size(), model.report_.failures.summary().c_str()));
  }
  model.report_.peak_bytes = train.bytes() + retained_bytes;

  // Metrics: coarse per-model updates (never inside the unit loop's hot path).
  metrics_counter("frac.units_trained").add(model.report_.models_retained);
  metrics_counter("frac.models_trained").add(model.report_.models_trained);
  metrics_counter("frac.cv_folds")
      .add(model.report_.models_trained - model.report_.models_retained);
  for (const UnitFailure& failure : model.failures_) {
    metrics_counter(std::string("frac.units_failed.") +
                    failure_category_name(failure.category))
        .add();
  }
  metrics_gauge("frac.train_workspace_bytes")
      .set_max(static_cast<double>(model.report_.train_workspace_bytes));
  metrics_gauge("frac.peak_bytes").set_max(static_cast<double>(model.report_.peak_bytes));
  {
    Histogram& unit_hist = metrics_histogram("frac.unit_train_seconds");
    for (const double s : outcome.unit_seconds) unit_hist.observe(s);
  }
  return model;
}

void FracModel::train_units_range(FracModel& model, const detail::UnitColumnSource& source,
                                  std::vector<FeaturePlan>& plan, std::size_t unit_lo,
                                  std::size_t slot_base, const FracConfig& config,
                                  ThreadPool& pool, detail::UnitTrainOutcome& outcome,
                                  const std::vector<std::vector<double>>* warm_duals) {
  const std::size_t count = plan.size();
  // Dual-state slots are per unit, so the tasks fill them race-free; the
  // sharded trainer calls in repeatedly with the same model, hence resize.
  if (config.retain_duals && model.unit_duals_.size() != model.units_.size()) {
    model.unit_duals_.resize(model.units_.size());
  }
  // Pre-split RNG streams, salted by *global* unit index, so results are
  // identical for any thread count and any sharding of the unit range.
  // split() advances the master stream, so spin it from unit 0 even when
  // this call starts mid-range — bit-identity across tilings depends on the
  // master being in the same state when each unit's stream is drawn.
  Rng master(config.seed);
  std::vector<Rng> unit_rngs;
  unit_rngs.reserve(count);
  for (std::size_t u = 0; u < unit_lo + count; ++u) {
    Rng child = master.split(u);
    if (u >= unit_lo) unit_rngs.push_back(child);
  }

  // Predictors actually trained per unit (CV fold models + the retained
  // one), filled by the unit tasks and summed after the loop.
  std::vector<std::size_t> unit_models_trained(count, 0);
  // Failure isolation: a unit whose training throws (degenerate predictor,
  // allocation failure, injected fault) or detects non-finite output is
  // demoted to a recorded UnitFailure instead of aborting the whole model —
  // NS then sums over the surviving units. Slots are per-unit, so recording
  // is race-free; compacted after the loop in unit order (deterministic for
  // any thread count).
  std::vector<UnitFailure> unit_failures(count);
  std::vector<std::uint8_t> unit_failed(count, 0);
  // Transient training workspace per unit (gathered design matrix + target
  // column + the source's gather staging); the caller's figure is the max,
  // since workspaces are freed when the unit finishes.
  std::vector<std::size_t> unit_workspace(count, 0);

  // Per-unit wall seconds, recorded per slot (race-free); the in-core caller
  // folds them into the frac.unit_train_seconds histogram in unit order.
  outcome.unit_seconds.assign(count, 0.0);

  parallel_for(pool, 0, count, [&](std::size_t i) {
    const std::size_t u = unit_lo + i;  // global unit index
    Unit& unit = model.units_[u - slot_base];
    unit.plan = std::move(plan[i]);
    const std::size_t target = unit.plan.target;
    unit.categorical = model.arities_[target] != 0;
    // One span per logical unit — never per thread — so the span count per
    // name is identical for any FRAC_THREADS value.
    const TraceSpan unit_span(
        "frac.unit_train",
        trace_armed() ? format("{\"unit\": %zu, \"target\": %zu}", u, target) : std::string());
    const WallStopwatch unit_wall;
    const ScopeExit record_seconds{[&] { outcome.unit_seconds[i] = unit_wall.seconds(); }};
    try {
      // Valid rows (target defined) + the standardized target column.
      std::vector<std::size_t> valid;
      std::vector<double> target_col;
      source.target_column(target, valid, target_col);
      if (valid.empty()) {
        FRAC_DEBUG << "unit " << u << ": target " << target << " entirely missing; skipped";
        return;
      }
      FeatureSpec spec = model.schema_[target];
      unit.entropy = feature_entropy(target_col, spec, config.entropy);
      if (!std::isfinite(unit.entropy)) {
        throw NumericError(format("unit %zu: non-finite training entropy", u));
      }

      if (valid.size() < 4 || unit.plan.inputs.empty()) {
        // Too few defined values to cross-validate, or nothing to learn from.
        return;
      }

      // Gather the unit's design matrix once (rows = valid, cols = inputs).
      const std::size_t d = unit.plan.inputs.size();
      Matrix x(valid.size(), d);
      source.gather(valid, unit.plan.inputs, x);
      std::vector<std::uint32_t> input_arities(d);
      for (std::size_t k = 0; k < d; ++k) input_arities[k] = model.arities_[unit.plan.inputs[k]];
      // Transient training workspace: the gathered design matrix plus the
      // target column. Fold models train on views of x (below), so no fold
      // multiplier enters here.
      unit_workspace[i] = x.rows() * x.cols() * sizeof(double)
                          + target_col.size() * sizeof(double)
                          + source.gather_overhead_bytes();

      // Per-unit predictor hyperparameters get decorrelated seeds.
      PredictorConfig pred_config = config.predictor;
      Rng& rng = unit_rngs[i];
      pred_config.svr.seed = rng.split(1)();
      pred_config.svc.seed = rng.split(2)();
      pred_config.tree.seed = rng.split(3)();

      // Injection point: covers all of the unit's predictor training (the
      // CV fold models and the retained one fail as a block — the unit is
      // the isolation boundary). Keyed by global unit index: stable for any
      // thread count or sharding, so tests can predict exactly which units
      // fail.
      maybe_inject(FaultSite::kPredictorTrain, u);

      // Warm retraining: the previous model's duals for this unit (plan-
      // aligned). They index the *previous* cohort's valid rows; the solvers
      // map them onto the refreshed cohort positionally (truncate/zero-pad),
      // which is exact for append-only windows and harmless otherwise. Warm
      // seeds consume no RNG draws, so a null/empty seed leaves the cold
      // path bit-identical.
      std::span<const double> unit_warm;
      if (warm_duals != nullptr && i < warm_duals->size()) unit_warm = (*warm_duals)[i];

      // Cross-validated (truth, prediction) pairs for the error model.
      // Categorical targets use stratified folds so rare categories appear
      // in (almost) every training fold.
      const std::size_t folds = std::min(config.cv_folds, valid.size());
      Rng fold_rng = rng.split(4);
      const auto fold_sets = unit.categorical
                                 ? stratified_kfold_indices(target_col, folds, fold_rng)
                                 : kfold_indices(valid.size(), folds, fold_rng);
      // Fold models are independent given the (already drawn) fold assignment,
      // so they train as a nested batch on the same pool. Per-fold outputs are
      // concatenated in fold order afterwards, keeping the error-model inputs
      // byte-identical to a serial run for any thread count.
      const std::size_t fold_count = fold_sets.size();
      std::vector<std::vector<double>> fold_residuals(fold_count);
      std::vector<std::vector<std::uint32_t>> fold_true(fold_count), fold_pred(fold_count);
      std::vector<std::uint8_t> fold_trained(fold_count, 0);
      parallel_for(pool, 0, fold_count, [&](std::size_t k) {
        const TraceSpan fold_span(
            "frac.cv_fold",
            trace_armed() ? format("{\"unit\": %zu, \"fold\": %zu}", u, k) : std::string());
        const auto& fold = fold_sets[k];
        const auto train_rows = fold_complement(valid.size(), fold);
        if (train_rows.empty() || fold.empty()) return;  // empty fold: no model
        // Zero-copy fold training: the fold model sees a row-subset *view* of
        // the unit's design matrix; only the (small) target column is
        // gathered. Peak training workspace per unit is therefore one design
        // matrix, not folds+1 of them.
        const MatrixView x_fold(x, train_rows);
        std::vector<double> y_fold(train_rows.size());
        for (std::size_t j = 0; j < train_rows.size(); ++j) {
          y_fold[j] = target_col[train_rows[j]];
        }
        // Row-map the warm seed onto the fold's training subset: fold entry j
        // seeds from the previous duals' entry for design-matrix row
        // train_rows[j], per class-major block for classifiers. Rows past the
        // previous cohort start cold (0).
        std::vector<double> warm_fold;
        if (!unit_warm.empty()) {
          const std::size_t blocks = unit.categorical ? model.arities_[target] : 1;
          const std::size_t stride = unit_warm.size() / blocks;
          warm_fold.assign(blocks * train_rows.size(), 0.0);
          for (std::size_t bkt = 0; bkt < blocks; ++bkt) {
            for (std::size_t j = 0; j < train_rows.size(); ++j) {
              if (train_rows[j] < stride) {
                warm_fold[bkt * train_rows.size() + j] = unit_warm[bkt * stride + train_rows[j]];
              }
            }
          }
        }
        const std::unique_ptr<FeaturePredictor> cv_model =
            unit.categorical
                ? train_classifier(x_fold, y_fold, model.arities_[target], input_arities,
                                   pred_config, warm_fold)
                : train_regressor(x_fold, y_fold, input_arities, pred_config, warm_fold);
        for (const std::size_t j : fold) {
          const double predicted = cv_model->predict(x.row(j));
          if (unit.categorical) {
            fold_true[k].push_back(static_cast<std::uint32_t>(target_col[j]));
            fold_pred[k].push_back(static_cast<std::uint32_t>(predicted));
          } else {
            if (!std::isfinite(predicted)) {
              throw NumericError(
                  format("unit %zu: CV predictor produced non-finite output", u));
            }
            fold_residuals[k].push_back(target_col[j] - predicted);
          }
        }
        fold_trained[k] = 1;
      });
      std::size_t fold_models = 0;
      std::vector<double> residuals;
      std::vector<std::uint32_t> cv_true, cv_pred;
      for (std::size_t k = 0; k < fold_count; ++k) {
        if (!fold_trained[k]) continue;
        ++fold_models;
        residuals.insert(residuals.end(), fold_residuals[k].begin(), fold_residuals[k].end());
        cv_true.insert(cv_true.end(), fold_true[k].begin(), fold_true[k].end());
        cv_pred.insert(cv_pred.end(), fold_pred[k].begin(), fold_pred[k].end());
      }

      maybe_inject(FaultSite::kErrorModelFit, u);
      {
        const TraceSpan fit_span(
            "frac.error_model_fit",
            trace_armed() ? format("{\"unit\": %zu}", u) : std::string());
        if (unit.categorical) {
          if (cv_true.empty()) return;
          unit.confusion.fit(cv_true, cv_pred, model.arities_[target], config.confusion_alpha);
        } else {
          if (residuals.empty()) return;
          unit.error_kind = config.continuous_error;
          if (unit.error_kind == ContinuousErrorKind::kKde) unit.kde_error.fit(residuals);
          else unit.gaussian.fit(residuals, config.min_error_sd);
        }
      }

      // Retained predictor: trained on every valid row.
      unit.predictor =
          unit.categorical
              ? train_classifier(x, target_col, model.arities_[target], input_arities,
                                 pred_config, unit_warm)
              : train_regressor(x, target_col, input_arities, pred_config, unit_warm);
      unit_models_trained[i] = fold_models + 1;
      if (config.retain_duals) {
        const std::span<const double> duals = unit.predictor->dual_state();
        model.unit_duals_[u - slot_base].assign(duals.begin(), duals.end());
      }
    } catch (const std::exception& e) {
      // Demote: no predictor means the unit contributes nothing to NS. A
      // half-trained error model is unreachable without the predictor.
      unit.predictor = nullptr;
      if (u - slot_base < model.unit_duals_.size()) model.unit_duals_[u - slot_base].clear();
      unit_models_trained[i] = 0;
      unit_failures[i] = UnitFailure{u, target, classify_failure(e), e.what()};
      unit_failed[i] = 1;
      FRAC_DEBUG << "unit " << u << " (target " << target << ") demoted to "
                 << failure_category_name(unit_failures[i].category)
                 << " failure: " << e.what();
    }
  });

  // Compacted in unit order: deterministic for any thread count.
  for (std::size_t i = 0; i < count; ++i) {
    outcome.models_trained += unit_models_trained[i];
    outcome.max_unit_workspace = std::max(outcome.max_unit_workspace, unit_workspace[i]);
    if (unit_failed[i]) outcome.failures.push_back(std::move(unit_failures[i]));
  }
}

Matrix FracModel::standardized_values(const Dataset& data) const {
  if (!(data.schema() == schema_)) {
    throw std::invalid_argument("FracModel: dataset schema does not match the trained model");
  }
  Matrix values = data.values();
  scaler_.transform(values);
  return values;
}

std::optional<double> FracModel::surprisal_of(const Unit& unit, double truth,
                                              double predicted) const {
  double surprisal;
  if (unit.categorical) {
    // Validate before the uint32 cast: a negative code is UB in the cast and
    // a fractional one truncates silently — both corrupt NS without a trace.
    const double arity = static_cast<double>(arities_[unit.plan.target]);
    if (truth < 0.0 || truth >= arity || truth != std::floor(truth)) {
      throw NumericError(format("feature '%s': test categorical code %g outside [0, %g)",
                                schema_[unit.plan.target].name.c_str(), truth, arity));
    }
    surprisal = unit.confusion.surprisal(static_cast<std::uint32_t>(truth),
                                         static_cast<std::uint32_t>(predicted));
  } else if (unit.error_kind == ContinuousErrorKind::kKde) {
    surprisal = unit.kde_error.surprisal(truth - predicted);
  } else {
    surprisal = unit.gaussian.surprisal(truth - predicted);
  }
  // Non-finite contributions (a predictor blowing up on test inputs far
  // outside the training support) are skipped like missing targets: NS
  // stays finite and sums over the well-defined units.
  if (!std::isfinite(surprisal)) return std::nullopt;
  return surprisal - unit.entropy;
}

const FusedLinearPack& FracModel::fused_pack() const {
  FusedCell& cell = *fused_;
  std::call_once(cell.once, [&] {
    FusedLinearPack pack(arities_);
    for (std::size_t u = 0; u < units_.size(); ++u) {
      const Unit& unit = units_[u];
      if (unit.predictor == nullptr) continue;
      if (const auto form = unit.predictor->linear_form()) {
        pack.add_unit(u, unit.plan.inputs, *form);
      }
    }
    cell.pack = std::move(pack);
  });
  return cell.pack;
}

template <typename Emit>
void FracModel::score_units(const Matrix& values, ThreadPool& pool, ScoreMode mode,
                            ScorePrecision precision, const Emit& emit) const {
  const bool f32 = precision == ScorePrecision::kF32;
  if (f32 && !has_f32_weights()) {
    throw std::invalid_argument(
        "FracModel: f32 scoring requires a model with an f32 weight pack "
        "(run `frac convert --f32`)");
  }
  const FusedLinearPack& pack = fused_pack();
  const std::span<const float> w32 = f32_weights();
  const bool fused = mode == ScoreMode::kFused && !pack.empty();
  const std::size_t width = pack.width();
  const std::size_t pack_rows = pack.rows();
  std::size_t max_inputs = 0;
  for (const Unit& unit : units_) max_inputs = std::max(max_inputs, unit.plan.inputs.size());
  // Rows scored per gemm_nt call. Every output element is an independent
  // full dot, so the batch boundaries (and therefore chunking/threading)
  // never change bits — kRowBatch only sets the expansion-buffer footprint.
  constexpr std::size_t kRowBatch = 32;
  parallel_for_chunks(pool, 0, values.rows(), [&](std::size_t lo, std::size_t hi) {
    std::vector<double> scratch(max_inputs);
    std::vector<double> xblock, pblock, xrow;
    std::vector<float> xblock32, pblock32, xrow32;
    if (fused) {
      if (f32) {
        xblock32.resize(kRowBatch * width);
        pblock32.resize(kRowBatch * pack_rows);
      } else {
        xblock.resize(kRowBatch * width);
        pblock.resize(kRowBatch * pack_rows);
      }
    } else if (!pack.empty()) {
      f32 ? xrow32.resize(width) : xrow.resize(width);
    }
    for (std::size_t b0 = lo; b0 < hi; b0 += kRowBatch) {
      const std::size_t bn = std::min(hi, b0 + kRowBatch) - b0;
      if (fused) {
        // One blocked GEMM for the whole row batch: expand each row to the
        // full 1-hot width once, then P[i][row] = X_i · W_row.
        if (f32) {
          for (std::size_t i = 0; i < bn; ++i) {
            pack.expand_row_f32(values.row(b0 + i), schema_,
                                std::span<float>(xblock32).subspan(i * width, width));
          }
          gemm_nt_f32(xblock32.data(), w32.data(), pblock32.data(), bn, width, pack_rows);
        } else {
          for (std::size_t i = 0; i < bn; ++i) {
            pack.expand_row(values.row(b0 + i), schema_,
                            std::span<double>(xblock).subspan(i * width, width));
          }
          gemm_nt(xblock.data(), pack.weights().data(), pblock.data(), bn, width, pack_rows);
        }
      }
      for (std::size_t i = 0; i < bn; ++i) {
        const std::size_t r = b0 + i;
        const auto row = values.row(r);
        auto lin = pack.linear_units().begin();
        const auto lin_end = pack.linear_units().end();
        for (std::size_t u = 0; u < units_.size(); ++u) {
          const Unit& unit = units_[u];
          if (unit.predictor == nullptr) continue;
          while (lin != lin_end && lin->unit < u) ++lin;
          const bool is_linear = lin != lin_end && lin->unit == u;
          const double truth = row[unit.plan.target];
          if (is_missing(truth)) continue;
          double predicted;
          if (is_linear) {
            if (!fused) {
              // Reference walk: the per-unit gemv baseline. Same expansion
              // and same dot kernel as the fused path, so same bits.
              if (f32) pack.expand_row_f32(row, schema_, xrow32);
              else pack.expand_row(row, schema_, xrow);
            }
            const auto decision = [&](std::size_t pr) {
              double d;
              if (fused) {
                d = f32 ? static_cast<double>(pblock32[i * pack_rows + pr])
                        : pblock[i * pack_rows + pr];
              } else if (f32) {
                d = static_cast<double>(
                    dot_f32(xrow32, w32.subspan(pr * width, width)));
              } else {
                d = dot(xrow, pack.weight_row(pr));
              }
              return d + pack.bias(pr);
            };
            if (lin->classifier) {
              // Replicates OneVsRestSvc::predict: strict >, first max wins.
              std::uint32_t best = 0;
              double best_score = -std::numeric_limits<double>::infinity();
              for (std::uint32_t k = 0; k < lin->row_count; ++k) {
                const double s = decision(lin->first_row + k);
                if (s > best_score) {
                  best_score = s;
                  best = k;
                }
              }
              predicted = static_cast<double>(best);
            } else {
              predicted = decision(lin->first_row);
            }
          } else {
            const std::size_t d = unit.plan.inputs.size();
            for (std::size_t k = 0; k < d; ++k) scratch[k] = row[unit.plan.inputs[k]];
            predicted = unit.predictor->predict(std::span<double>(scratch).first(d));
          }
          if (const auto s = surprisal_of(unit, truth, predicted)) emit(r, u, *s);
        }
      }
    }
  });
}

std::vector<double> FracModel::score(const Dataset& test, ThreadPool& pool, ScoreMode mode,
                                     ScorePrecision precision) const {
  const TraceSpan score_span(
      "frac.score",
      trace_armed() ? format("{\"rows\": %zu}", test.sample_count()) : std::string());
  metrics_counter("frac.rows_scored").add(test.sample_count());
  const Matrix values = standardized_values(test);
  std::vector<double> scores(test.sample_count(), 0.0);
  score_units(values, pool, mode, precision,
              [&](std::size_t r, std::size_t /*unit*/, double s) { scores[r] += s; });
  return scores;
}

Matrix FracModel::per_feature_scores(const Dataset& test, ThreadPool& pool, ScoreMode mode,
                                     ScorePrecision precision) const {
  const TraceSpan score_span(
      "frac.per_feature_scores",
      trace_armed() ? format("{\"rows\": %zu}", test.sample_count()) : std::string());
  metrics_counter("frac.rows_scored").add(test.sample_count());
  const Matrix values = standardized_values(test);
  Matrix scores(test.sample_count(), feature_count(), kMissing);
  score_units(values, pool, mode, precision, [&](std::size_t r, std::size_t u, double s) {
    // Multiple predictors per target sum (the Σ_j in the NS formula).
    const auto out = scores.row(r);
    const std::size_t target = units_[u].plan.target;
    out[target] = is_missing(out[target]) ? s : out[target] + s;
  });
  return scores;
}

void FracModel::build_f32_weights() {
  if (has_f32_weights()) return;
  f32_owned_ = fused_pack().weights_f32();
}

std::vector<std::size_t> FracModel::influential_inputs(std::size_t unit_index,
                                                       std::size_t top_k) const {
  const Unit& unit = units_.at(unit_index);
  if (unit.predictor == nullptr) return {};
  std::vector<std::size_t> out;
  for (const std::uint32_t pos : unit.predictor->influential_inputs(top_k)) {
    out.push_back(unit.plan.inputs[pos]);
  }
  return out;
}

void FracModel::serialize(ArchiveWriter& archive) const {
  // "model": layout version + the counts every other section is sized by.
  archive.begin_section("model");
  archive.write_u32(1);  // model layout version within the archive container
  archive.write_u64(schema_.size());
  archive.write_u64(units_.size());
  archive.write_u64(failures_.size());
  archive.end_section();

  archive.begin_section("schema");
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const FeatureSpec& spec = schema_[f];
    archive.write_string(spec.name);
    archive.write_u32(spec.kind == FeatureKind::kReal ? 0u : spec.arity);
  }
  archive.end_section();

  archive.begin_section("scaler");
  archive.write_f64_array(scaler_.means());
  archive.write_f64_array(scaler_.scales());
  archive.end_section();

  archive.begin_section("units");
  for (const Unit& unit : units_) {
    archive.write_u64(unit.plan.target);
    archive.write_u64_array(
        std::vector<std::uint64_t>(unit.plan.inputs.begin(), unit.plan.inputs.end()));
    archive.write_f64(unit.entropy);
    archive.write_u8(unit.categorical ? 1 : 0);
    archive.write_u8(unit.predictor != nullptr ? 1 : 0);
    if (unit.predictor == nullptr) continue;
    archive.write_u8(unit.error_kind == ContinuousErrorKind::kKde ? 1 : 0);
    if (unit.categorical) unit.confusion.serialize(archive);
    else if (unit.error_kind == ContinuousErrorKind::kKde) unit.kde_error.serialize(archive);
    else unit.gaussian.serialize(archive);
    unit.predictor->serialize(archive);
  }
  archive.end_section();

  // Training cost + per-unit failure audit trail: not representable in the
  // legacy text format, which is why text-restored models report empty.
  archive.begin_section("report");
  archive.write_f64(report_.cpu_seconds);
  archive.write_u64(report_.peak_bytes);
  archive.write_u64(report_.train_workspace_bytes);
  archive.write_u64(report_.models_trained);
  archive.write_u64(report_.models_retained);
  archive.end_section();

  archive.begin_section("failures");
  for (const UnitFailure& failure : failures_) {
    archive.write_u64(failure.unit);
    archive.write_u64(failure.target);
    archive.write_u8(static_cast<std::uint8_t>(failure.category));
    archive.write_string(failure.detail);
  }
  archive.end_section();

  // Optional per-unit dual state (format v3, FracConfig::retain_duals): the
  // retained solvers' dual variables, one array per unit (empty for tree,
  // skipped, and demoted units) — warm_retrain()'s seed. Models without it
  // keep stamping v2, so default archives stay readable by the previous
  // release.
  if (has_dual_state()) {
    archive.begin_section("dual_state");
    archive.write_u64(units_.size());
    for (const std::vector<double>& duals : unit_duals_) archive.write_f64_array(duals);
    archive.end_section();
    archive.set_format_version(3);
  }

  // Optional f32 weight pack (format v3, `frac convert --f32`): the fused
  // pack's scattered rows narrowed to f32, stored 8-aligned so mmap'd loads
  // serve straight from the file. Models without one keep stamping v2, so
  // default archives stay readable by the previous release.
  if (has_f32_weights()) {
    const FusedLinearPack& pack = fused_pack();
    archive.begin_section("fused_f32");
    archive.write_u64(pack.rows());
    archive.write_u64(pack.width());
    archive.write_f32_array(f32_weights());
    archive.end_section();
    archive.set_format_version(3);
  }
}

FracModel FracModel::deserialize(ArchiveReader& archive) {
  FracModel model;
  archive.open_section("model");
  const std::uint32_t layout = archive.read_u32();
  if (layout != 1) {
    archive.fail(format("unsupported model layout version %u", layout));
  }
  const std::uint64_t features = archive.read_u64();
  const std::uint64_t units = archive.read_u64();
  const std::uint64_t failure_count = archive.read_u64();
  archive.expect_section_end();

  archive.open_section("schema");
  std::vector<FeatureSpec> specs;
  specs.reserve(features);
  model.arities_.reserve(features);
  for (std::uint64_t f = 0; f < features; ++f) {
    FeatureSpec spec;
    spec.name = archive.read_string();
    const std::uint32_t arity = archive.read_u32();
    if (arity == 1) archive.fail(format("feature '%s': arity 1 is degenerate", spec.name.c_str()));
    spec.kind = arity == 0 ? FeatureKind::kReal : FeatureKind::kCategorical;
    spec.arity = arity;
    model.arities_.push_back(arity);
    specs.push_back(std::move(spec));
  }
  archive.expect_section_end();
  model.schema_ = Schema(std::move(specs));

  archive.open_section("scaler");
  const std::vector<double> means = archive.read_f64_vector();
  const std::vector<double> scales = archive.read_f64_vector();
  archive.expect_section_end();
  if (means.size() != features || scales.size() != features) {
    archive.fail(format("scaler width %zu/%zu != %llu features", means.size(), scales.size(),
                        static_cast<unsigned long long>(features)));
  }
  model.scaler_.restore(means, scales);

  archive.open_section("units");
  model.units_.resize(units);
  for (std::uint64_t u = 0; u < units; ++u) {
    Unit& unit = model.units_[u];
    unit.plan.target = archive.read_u64();
    if (unit.plan.target >= features) {
      archive.fail(format("unit %llu: target out of range", static_cast<unsigned long long>(u)));
    }
    const std::vector<std::uint64_t> inputs = archive.read_u64_vector();
    unit.plan.inputs.assign(inputs.begin(), inputs.end());
    for (const std::size_t j : unit.plan.inputs) {
      if (j >= features) {
        archive.fail(format("unit %llu: input out of range", static_cast<unsigned long long>(u)));
      }
    }
    unit.entropy = archive.read_f64();
    unit.categorical = archive.read_u8() != 0;
    const bool trained = archive.read_u8() != 0;
    if (!trained) continue;
    unit.error_kind = archive.read_u8() != 0 ? ContinuousErrorKind::kKde
                                             : ContinuousErrorKind::kGaussian;
    if (unit.categorical) unit.confusion = ConfusionErrorModel::deserialize(archive);
    else if (unit.error_kind == ContinuousErrorKind::kKde)
      unit.kde_error = KdeErrorModel::deserialize(archive);
    else unit.gaussian = GaussianErrorModel::deserialize(archive);
    unit.predictor = deserialize_predictor(archive);
  }
  archive.expect_section_end();

  archive.open_section("report");
  model.report_.cpu_seconds = archive.read_f64();
  model.report_.peak_bytes = archive.read_u64();
  model.report_.train_workspace_bytes = archive.read_u64();
  model.report_.models_trained = archive.read_u64();
  model.report_.models_retained = archive.read_u64();
  archive.expect_section_end();

  archive.open_section("failures");
  model.failures_.reserve(failure_count);
  for (std::uint64_t i = 0; i < failure_count; ++i) {
    UnitFailure failure;
    failure.unit = archive.read_u64();
    failure.target = archive.read_u64();
    const std::uint8_t category = archive.read_u8();
    if (category >= kFailureCategoryCount) {
      archive.fail(format("failure record %llu: unknown category %u",
                          static_cast<unsigned long long>(i), category));
    }
    failure.category = static_cast<FailureCategory>(category);
    failure.detail = archive.read_string();
    // The per-category tallies are derived, not stored: recomputing them from
    // the audit records keeps report().failures consistent with
    // unit_failures() by construction.
    model.report_.failures[failure.category] += 1;
    model.failures_.push_back(std::move(failure));
  }
  archive.expect_section_end();

  // Optional format-v3 f32 weight pack. Shape-checked against the restored
  // units (without building the f64 pack — load must stay near-O(1)): the
  // width is fixed by the arities, the row count by the linear forms.
  if (archive.has_section("fused_f32")) {
    archive.open_section("fused_f32");
    const std::uint64_t rows = archive.read_u64();
    const std::uint64_t width = archive.read_u64();
    const std::span<const float> pack = archive.read_f32_span();
    archive.expect_section_end();
    std::uint64_t expect_width = 0;
    for (const std::uint32_t arity : model.arities_) expect_width += arity == 0 ? 1 : arity;
    std::uint64_t expect_rows = 0;
    for (const Unit& unit : model.units_) {
      if (unit.predictor == nullptr) continue;
      if (const auto form = unit.predictor->linear_form()) expect_rows += form->rows.size();
    }
    if (width != expect_width || rows != expect_rows ||
        pack.size() != static_cast<std::size_t>(rows) * width) {
      archive.fail(format("f32 pack shape %llux%llu (%zu values) does not match the "
                          "model's %llux%llu linear units",
                          static_cast<unsigned long long>(rows),
                          static_cast<unsigned long long>(width), pack.size(),
                          static_cast<unsigned long long>(expect_rows),
                          static_cast<unsigned long long>(expect_width)));
    }
    if (archive.borrowed()) model.f32_view_ = pack;
    else model.f32_owned_.assign(pack.begin(), pack.end());
  }

  // Optional format-v3 dual-state section: per-unit solver duals for
  // warm_retrain(). Always copied out (never borrowed): retraining outlives
  // any mmap the archive came from.
  if (archive.has_section("dual_state")) {
    archive.open_section("dual_state");
    const std::uint64_t dual_units = archive.read_u64();
    if (dual_units != units) {
      archive.fail(format("dual_state covers %llu units, model has %llu",
                          static_cast<unsigned long long>(dual_units),
                          static_cast<unsigned long long>(units)));
    }
    model.unit_duals_.resize(units);
    for (std::uint64_t u = 0; u < units; ++u) {
      model.unit_duals_[u] = archive.read_f64_vector();
    }
    archive.expect_section_end();
  }
  return model;
}

void FracModel::save(std::ostream& out) const {
  write_tagged(out, "frac.version", std::uint64_t{1});
  // Schema.
  write_tagged(out, "frac.features", static_cast<std::uint64_t>(schema_.size()));
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const FeatureSpec& spec = schema_[f];
    write_tagged(out, "feature.name", spec.name);
    write_tagged(out, "feature.arity",
                 std::uint64_t{spec.kind == FeatureKind::kReal ? 0u : spec.arity});
  }
  // Scaler.
  write_tagged(out, "frac.scaler_means", scaler_.means());
  write_tagged(out, "frac.scaler_scales", scaler_.scales());
  // Units.
  write_tagged(out, "frac.units", static_cast<std::uint64_t>(units_.size()));
  for (const Unit& unit : units_) {
    write_tagged(out, "unit.target", static_cast<std::uint64_t>(unit.plan.target));
    write_tagged(out, "unit.inputs",
                 std::vector<std::uint64_t>(unit.plan.inputs.begin(), unit.plan.inputs.end()));
    write_tagged(out, "unit.entropy", unit.entropy);
    write_tagged(out, "unit.categorical", std::uint64_t{unit.categorical ? 1u : 0u});
    write_tagged(out, "unit.trained", std::uint64_t{unit.predictor != nullptr ? 1u : 0u});
    if (unit.predictor == nullptr) continue;
    write_tagged(out, "unit.errkind",
                 std::uint64_t{unit.error_kind == ContinuousErrorKind::kKde ? 1u : 0u});
    if (unit.categorical) unit.confusion.save(out);
    else if (unit.error_kind == ContinuousErrorKind::kKde) unit.kde_error.save(out);
    else unit.gaussian.save(out);
    unit.predictor->save(out);
  }
  // Fail loudly rather than leave a silently truncated model behind.
  if (!out) throw IoError("FracModel::save: stream write failed");
}

void FracModel::save_file(const std::string& path, ModelFormat format) const {
  // Atomic temp+rename publish: a crash mid-save leaves the old model (or
  // nothing), never a truncated one. Shares the helper — and its
  // serialize_write injection point — with save_dataset_csv and the
  // experiment checkpoint.
  if (format == ModelFormat::kBinary) {
    ArchiveWriter archive;
    serialize(archive);
    archive.write_file(path);
    return;
  }
  atomic_write_file(path, [this](std::ostream& out) { save(out); });
}

FracModel FracModel::load(std::istream& in) {
  // Slurp and sniff: the archive magic selects the binary reader, anything
  // else goes to the legacy text parser. Models are single-digit MB at the
  // paper's scales, so buffering the stream is cheap and makes the format
  // dispatch trivial.
  const std::string buffer{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (ArchiveReader::looks_like_archive(buffer)) {
    ArchiveReader archive(std::as_bytes(std::span<const char>(buffer)), "<stream>",
                          /*borrowed=*/false);
    return deserialize(archive);
  }
  std::istringstream text(buffer);
  return load_text(text);
}

FracModel FracModel::load_text(std::istream& in) {
  const std::uint64_t version = read_tagged_uint(in, "frac.version");
  if (version != 1) {
    throw std::runtime_error(format("FracModel::load: unsupported version %llu",
                                    static_cast<unsigned long long>(version)));
  }
  FracModel model;
  const std::uint64_t features = read_tagged_uint(in, "frac.features");
  std::vector<FeatureSpec> specs;
  specs.reserve(features);
  model.arities_.reserve(features);
  for (std::uint64_t f = 0; f < features; ++f) {
    FeatureSpec spec;
    spec.name = read_tagged_string(in, "feature.name");
    const std::uint64_t arity = read_tagged_uint(in, "feature.arity");
    spec.kind = arity == 0 ? FeatureKind::kReal : FeatureKind::kCategorical;
    spec.arity = static_cast<std::uint32_t>(arity);
    model.arities_.push_back(static_cast<std::uint32_t>(arity));
    specs.push_back(std::move(spec));
  }
  model.schema_ = Schema(std::move(specs));

  const std::vector<double> means = read_tagged_doubles(in, "frac.scaler_means");
  const std::vector<double> scales = read_tagged_doubles(in, "frac.scaler_scales");
  if (means.size() != features || scales.size() != features) {
    throw std::runtime_error("FracModel::load: scaler width mismatch");
  }
  model.scaler_.restore(means, scales);

  const std::uint64_t units = read_tagged_uint(in, "frac.units");
  model.units_.resize(units);
  for (std::uint64_t u = 0; u < units; ++u) {
    Unit& unit = model.units_[u];
    unit.plan.target = read_tagged_uint(in, "unit.target");
    if (unit.plan.target >= features) {
      throw std::runtime_error("FracModel::load: unit target out of range");
    }
    const auto inputs = read_tagged_uints(in, "unit.inputs");
    unit.plan.inputs.assign(inputs.begin(), inputs.end());
    for (const std::size_t j : unit.plan.inputs) {
      if (j >= features) throw std::runtime_error("FracModel::load: unit input out of range");
    }
    unit.entropy = read_tagged_double(in, "unit.entropy");
    unit.categorical = read_tagged_uint(in, "unit.categorical") != 0;
    const bool trained = read_tagged_uint(in, "unit.trained") != 0;
    if (!trained) continue;
    unit.error_kind = read_tagged_uint(in, "unit.errkind") != 0 ? ContinuousErrorKind::kKde
                                                                : ContinuousErrorKind::kGaussian;
    if (unit.categorical) unit.confusion = ConfusionErrorModel::load(in);
    else if (unit.error_kind == ContinuousErrorKind::kKde) unit.kde_error = KdeErrorModel::load(in);
    else unit.gaussian = GaussianErrorModel::load(in);
    unit.predictor = load_predictor(in);
  }
  return model;
}

FracModel FracModel::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("FracModel::load_file: cannot open " + path);
  const std::string buffer{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (in.bad()) throw IoError("FracModel::load_file: read failed for " + path);
  if (ArchiveReader::looks_like_archive(buffer)) {
    ArchiveReader archive(std::as_bytes(std::span<const char>(buffer)), path,
                          /*borrowed=*/false);
    return deserialize(archive);
  }
  std::istringstream text(buffer);
  return load_text(text);
}

ScoredRun run_frac(const Replicate& replicate, const FracConfig& config, ThreadPool& pool) {
  const CpuStopwatch cpu;
  const FracModel model = FracModel::train(replicate.train, config, pool);
  ScoredRun run;
  run.test_scores = model.score(replicate.test, pool);
  run.resources = model.report();
  run.resources.cpu_seconds = cpu.seconds();
  return run;
}

}  // namespace frac
