#include "frac/failure.hpp"

#include <ios>
#include <new>
#include <stdexcept>
#include <system_error>

#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace frac {

const char* failure_category_name(FailureCategory category) noexcept {
  switch (category) {
    case FailureCategory::kIo: return "io";
    case FailureCategory::kNumeric: return "numeric";
    case FailureCategory::kResource: return "resource";
    case FailureCategory::kInjected: return "injected";
  }
  return "unknown";
}

FailureCategory classify_failure(const std::exception& error) noexcept {
  if (dynamic_cast<const InjectedFault*>(&error)) return FailureCategory::kInjected;
  if (dynamic_cast<const std::bad_alloc*>(&error) ||
      dynamic_cast<const std::length_error*>(&error)) {
    return FailureCategory::kResource;
  }
  if (dynamic_cast<const IoError*>(&error) ||
      dynamic_cast<const std::ios_base::failure*>(&error) ||
      dynamic_cast<const std::system_error*>(&error)) {
    return FailureCategory::kIo;
  }
  return FailureCategory::kNumeric;
}

std::size_t FailureCounts::total() const noexcept {
  std::size_t sum = 0;
  for (const std::size_t count : by_category) sum += count;
  return sum;
}

FailureCounts& FailureCounts::operator+=(const FailureCounts& other) noexcept {
  for (std::size_t c = 0; c < kFailureCategoryCount; ++c) by_category[c] += other.by_category[c];
  return *this;
}

std::string FailureCounts::summary() const {
  if (empty()) return "none";
  std::string out;
  for (std::size_t c = 0; c < kFailureCategoryCount; ++c) {
    if (by_category[c] == 0) continue;
    if (!out.empty()) out += ' ';
    out += format("%s:%zu", failure_category_name(static_cast<FailureCategory>(c)),
                  by_category[c]);
  }
  return out;
}

}  // namespace frac
