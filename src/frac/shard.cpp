#include "frac/shard.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "frac/train_units.hpp"
#include "serialize/archive.hpp"
#include "util/errors.hpp"
#include "util/logging.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

/// The sharded trainer's access into FracModel (a friend, see frac.hpp): it
/// assembles partial models from unit ranges and stitches them back together,
/// so it builds Units, reports, and failure lists directly.
struct ShardOps {
  using Unit = FracModel::Unit;

  static Schema& schema(FracModel& m) { return m.schema_; }
  static std::vector<std::uint32_t>& arities(FracModel& m) { return m.arities_; }
  static StandardScaler& scaler(FracModel& m) { return m.scaler_; }
  static FracConfig& config(FracModel& m) { return m.config_; }
  static std::vector<Unit>& units(FracModel& m) { return m.units_; }
  static ResourceReport& report(FracModel& m) { return m.report_; }
  static std::vector<UnitFailure>& failures(FracModel& m) { return m.failures_; }

  /// Drops any f32 pack and fused-pack cell the model carries. A partial's
  /// pack only covers its own units, so after stitching it is stale by
  /// construction; the merged model rebuilds both lazily from the full unit
  /// set.
  static void reset_derived(FracModel& m) {
    m.f32_view_ = {};
    m.f32_owned_.clear();
    m.fused_ = std::make_shared<FusedCell>();
  }

  static void train_range(FracModel& model, const detail::UnitColumnSource& source,
                          std::vector<FeaturePlan>& plan, std::size_t unit_lo,
                          std::size_t slot_base, const FracConfig& config, ThreadPool& pool,
                          detail::UnitTrainOutcome& outcome) {
    FracModel::train_units_range(model, source, plan, unit_lo, slot_base, config, pool, outcome);
  }
};

namespace {

/// Column source over the columnar store: standardizes per cell during
/// gather with the same (v - mean) / scale expression the in-core path
/// pre-applies (see train_units.hpp for the bit-identity argument).
class StoreUnitSource final : public detail::UnitColumnSource {
 public:
  StoreUnitSource(const ColumnStore& store, const StandardScaler& scaler)
      : store_(store), scaler_(scaler) {}

  std::size_t rows() const override { return store_.sample_count(); }

  void target_column(std::size_t target, std::vector<std::size_t>& valid,
                     std::vector<double>& target_col) const override {
    const std::span<const double> col = store_.column(target);
    const double mean = scaler_.means()[target];
    const double scale = scaler_.scales()[target];
    valid.clear();
    valid.reserve(col.size());
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (!is_missing(col[r])) valid.push_back(r);
    }
    target_col.resize(valid.size());
    for (std::size_t i = 0; i < valid.size(); ++i) {
      target_col[i] = (col[valid[i]] - mean) / scale;
    }
  }

  void gather(std::span<const std::size_t> valid, std::span<const std::size_t> inputs,
              Matrix& x) const override {
    // Column-major fill: one pass per input column over its zero-copy span.
    for (std::size_t k = 0; k < inputs.size(); ++k) {
      const std::span<const double> col = store_.column(inputs[k]);
      const double mean = scaler_.means()[inputs[k]];
      const double scale = scaler_.scales()[inputs[k]];
      for (std::size_t i = 0; i < valid.size(); ++i) {
        const double v = col[valid[i]];
        x(i, k) = is_missing(v) ? v : (v - mean) / scale;
      }
    }
  }

 private:
  const ColumnStore& store_;
  const StandardScaler& scaler_;
};

/// StandardScaler::fit replicated over column spans. fit() keeps one
/// accumulator per column and visits rows in order, so per column the
/// floating-point addition order is row order — exactly this loop — and the
/// resulting means/scales are bit-identical to fitting the materialized
/// matrix. The categorical / no-standardize resets mirror train_with_plan.
StandardScaler fit_store_scaler(const ColumnStore& store, const FracConfig& config) {
  const std::size_t cols = store.feature_count();
  std::vector<double> means(cols, 0.0);
  std::vector<double> scales(cols, 1.0);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::span<const double> col = store.column(c);
    double sum = 0.0;
    double sum_sq = 0.0;
    std::size_t count = 0;
    for (const double v : col) {
      if (is_missing(v)) continue;
      sum += v;
      sum_sq += v * v;
      ++count;
    }
    if (count == 0) continue;
    const double n = static_cast<double>(count);
    means[c] = sum / n;
    const double var = std::max(0.0, sum_sq / n - means[c] * means[c]);
    const double sd = std::sqrt(var);
    scales[c] = sd > 1e-12 ? sd : 1.0;
  }
  StandardScaler scaler;
  scaler.restore(std::move(means), std::move(scales));
  const Schema& schema = store.schema();
  for (std::size_t f = 0; f < schema.size(); ++f) {
    if (schema.is_categorical(f)) scaler.reset_column(f);
  }
  if (!config.standardize) {
    for (std::size_t f = 0; f < schema.size(); ++f) scaler.reset_column(f);
  }
  return scaler;
}

/// CRC32 over a canonical little-endian image of every training-relevant
/// FracConfig field (hyperparameters included). Partials record it so merge
/// and resume can refuse mixing models trained under different configs —
/// the units would not be bit-compatible.
std::uint32_t config_fingerprint(const FracConfig& c) {
  std::string buf;
  const auto put_u64 = [&buf](std::uint64_t v) {
    buf.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  const auto put_f64 = [&](double d) { put_u64(std::bit_cast<std::uint64_t>(d)); };
  put_u64(1);  // fingerprint layout version
  put_u64(c.cv_folds);
  put_u64(static_cast<std::uint64_t>(c.continuous_error));
  put_f64(c.min_error_sd);
  put_f64(c.confusion_alpha);
  put_u64(c.entropy.kde_grid_points);
  put_u64(c.standardize ? 1 : 0);
  put_u64(c.seed);
  const PredictorConfig& p = c.predictor;
  put_u64(static_cast<std::uint64_t>(p.regressor));
  put_u64(static_cast<std::uint64_t>(p.classifier));
  put_f64(p.svr.c);
  put_f64(p.svr.epsilon);
  put_u64(p.svr.max_passes);
  put_f64(p.svr.tol);
  put_f64(p.svr.objective_tol);
  put_u64(p.svr.fit_bias ? 1 : 0);
  put_u64(p.svr.seed);
  put_f64(p.svc.c);
  put_u64(p.svc.max_passes);
  put_f64(p.svc.tol);
  put_f64(p.svc.objective_tol);
  put_u64(p.svc.fit_bias ? 1 : 0);
  put_u64(p.svc.seed);
  put_u64(p.tree.max_depth);
  put_u64(p.tree.min_samples_leaf);
  put_u64(p.tree.min_samples_split);
  put_f64(p.tree.min_impurity_decrease);
  put_u64(static_cast<std::uint64_t>(p.tree.criterion));
  put_u64(p.tree.max_features);
  put_u64(p.tree.seed);
  return crc32(std::as_bytes(std::span<const char>(buf.data(), buf.size())));
}

constexpr std::uint32_t kShardSectionLayout = 1;

/// The "shard" section a partial archive carries on top of the ordinary
/// model sections (docs/model_format.md).
struct ShardMeta {
  std::uint64_t index = 0;        ///< shard k ...
  std::uint64_t count = 1;        ///< ... of N
  std::uint64_t lo = 0;           ///< tile [lo, hi) of global unit indices
  std::uint64_t hi = 0;
  std::uint64_t done = 0;         ///< frontier: units [lo, done) are trained
  std::uint64_t total_units = 0;  ///< unit count of the full default plan
  std::uint64_t samples = 0;      ///< training sample count
  std::uint32_t dataset_crc = 0;  ///< ColumnStore::content_crc of the data
  std::uint32_t config_crc = 0;   ///< config_fingerprint of the FracConfig
};

void write_shard_section(ArchiveWriter& archive, const ShardMeta& meta) {
  archive.begin_section("shard");
  archive.write_u32(kShardSectionLayout);
  archive.write_u64(meta.index);
  archive.write_u64(meta.count);
  archive.write_u64(meta.lo);
  archive.write_u64(meta.hi);
  archive.write_u64(meta.done);
  archive.write_u64(meta.total_units);
  archive.write_u64(meta.samples);
  archive.write_u32(meta.dataset_crc);
  archive.write_u32(meta.config_crc);
  archive.end_section();
}

ShardMeta read_shard_section(ArchiveReader& archive) {
  archive.open_section("shard");
  const std::uint32_t layout = archive.read_u32();
  if (layout != kShardSectionLayout) {
    archive.fail(format("unsupported shard layout version %u", layout));
  }
  ShardMeta meta;
  meta.index = archive.read_u64();
  meta.count = archive.read_u64();
  meta.lo = archive.read_u64();
  meta.hi = archive.read_u64();
  meta.done = archive.read_u64();
  meta.total_units = archive.read_u64();
  meta.samples = archive.read_u64();
  meta.dataset_crc = archive.read_u32();
  meta.config_crc = archive.read_u32();
  archive.expect_section_end();
  if (meta.count == 0 || meta.index >= meta.count) {
    archive.fail(format("shard index %llu of %llu out of range",
                        static_cast<unsigned long long>(meta.index),
                        static_cast<unsigned long long>(meta.count)));
  }
  if (meta.lo > meta.hi || meta.hi > meta.total_units || meta.done < meta.lo ||
      meta.done > meta.hi) {
    archive.fail(format("inconsistent unit range [%llu, %llu), frontier %llu, total %llu",
                        static_cast<unsigned long long>(meta.lo),
                        static_cast<unsigned long long>(meta.hi),
                        static_cast<unsigned long long>(meta.done),
                        static_cast<unsigned long long>(meta.total_units)));
  }
  return meta;
}

/// Atomically (re)publishes a shard's partial archive: the model's ordinary
/// sections plus the "shard" tile record. write_file is temp+fsync+rename,
/// so a crash mid-checkpoint leaves the previous frontier, never a torn file.
void persist_partial(const std::string& path, const FracModel& model, const ShardMeta& meta) {
  ArchiveWriter archive;
  model.serialize(archive);
  write_shard_section(archive, meta);
  archive.write_file(path);
}

struct PartialModel {
  std::string path;
  FracModel model;
  ShardMeta meta;
  bool has_f32 = false;
};

/// Loads a partial shard archive, verifying the CRC32 of *every* section up
/// front — a corrupt or truncated partial fails here with a ParseError
/// naming the file and section, before any stitching starts.
PartialModel load_partial(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open shard archive " + path);
  const std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ArchiveReader reader(std::as_bytes(std::span<const char>(bytes.data(), bytes.size())), path,
                       /*borrowed=*/false);
  if (!reader.has_section("shard")) {
    throw ParseError("model archive " + path +
                     ": not a partial shard archive (no 'shard' section)");
  }
  for (const std::string& name : reader.section_names()) reader.open_section(name);
  PartialModel part;
  part.path = path;
  part.meta = read_shard_section(reader);
  part.has_f32 = reader.has_section("fused_f32");
  part.model = FracModel::deserialize(reader);
  return part;
}

/// The tile [lo, hi) of the default plan (FracModel::train's plan for the
/// same feature count, restricted to these targets). Built per chunk so a
/// shard never materializes the full O(features^2) plan.
std::vector<FeaturePlan> plan_for_range(std::size_t lo, std::size_t hi,
                                        std::size_t total_units) {
  std::vector<FeaturePlan> plan;
  plan.reserve(hi - lo);
  for (std::size_t t = lo; t < hi; ++t) {
    FeaturePlan p;
    p.target = t;
    p.inputs.reserve(total_units - 1);
    for (std::size_t j = 0; j < total_units; ++j) {
      if (j != t) p.inputs.push_back(j);
    }
    plan.push_back(std::move(p));
  }
  return plan;
}

/// Sets the model frame every trained unit hangs off: schema, arities, the
/// store-fit scaler, and the config. Mirrors train_with_plan's setup.
void init_model_frame(FracModel& model, const ColumnStore& store, StandardScaler scaler,
                      const FracConfig& config) {
  ShardOps::schema(model) = store.schema();
  ShardOps::config(model) = config;
  auto& arities = ShardOps::arities(model);
  const Schema& schema = ShardOps::schema(model);
  arities.resize(schema.size());
  for (std::size_t f = 0; f < schema.size(); ++f) {
    arities[f] = schema.is_categorical(f) ? schema[f].arity : 0;
  }
  ShardOps::scaler(model) = std::move(scaler);
}

/// Folds one chunk's training outcome into the shard's cumulative report and
/// failure list, and feeds the same per-model metrics train_with_plan emits.
void fold_outcome(FracModel& model, detail::UnitTrainOutcome& outcome) {
  ResourceReport& report = ShardOps::report(model);
  report.models_trained += outcome.models_trained;
  report.train_workspace_bytes =
      std::max(report.train_workspace_bytes, outcome.max_unit_workspace);
  for (UnitFailure& failure : outcome.failures) {
    report.failures[failure.category] += 1;
    metrics_counter(std::string("frac.units_failed.") + failure_category_name(failure.category))
        .add();
    ShardOps::failures(model).push_back(std::move(failure));
  }
  metrics_counter("frac.models_trained").add(outcome.models_trained);
  {
    Histogram& unit_hist = metrics_histogram("frac.unit_train_seconds");
    for (const double s : outcome.unit_seconds) unit_hist.observe(s);
  }
}

/// Recomputes the derived retained-model figures (they cannot be accumulated
/// across resumes without double counting): models_retained and the
/// out-of-core peak — one unit's workspace plus the retained models, the
/// figure the full-matrix path's `train.bytes() + retained` deliberately
/// exceeds.
void refresh_retained(FracModel& model) {
  ResourceReport& report = ShardOps::report(model);
  report.models_retained = 0;
  std::size_t retained_bytes = 0;
  for (const ShardOps::Unit& unit : ShardOps::units(model)) {
    if (unit.predictor == nullptr) continue;
    retained_bytes += unit.predictor->storage_bytes();
    ++report.models_retained;
  }
  report.peak_bytes = report.train_workspace_bytes + retained_bytes;
  metrics_counter("frac.units_trained").add(report.models_retained);
  metrics_gauge("frac.train_workspace_bytes")
      .set_max(static_cast<double>(report.train_workspace_bytes));
  metrics_gauge("frac.peak_bytes").set_max(static_cast<double>(report.peak_bytes));
}

}  // namespace

std::pair<std::size_t, std::size_t> shard_unit_range(ShardSpec spec, std::size_t total_units) {
  if (spec.count == 0 || spec.index >= spec.count) {
    throw std::invalid_argument("shard_unit_range: want shard k/N with 0 <= k < N");
  }
  return {spec.index * total_units / spec.count, (spec.index + 1) * total_units / spec.count};
}

ShardTrainStatus train_model_shard(const ColumnStore& store, ShardSpec spec,
                                   const ShardTrainOptions& options, const std::string& out_path,
                                   ThreadPool& pool) {
  if (store.sample_count() < 2) {
    throw std::invalid_argument("train_model_shard: need at least 2 training samples");
  }
  const std::size_t total_units = store.feature_count();
  const auto [lo, hi] = shard_unit_range(spec, total_units);

  const CpuStopwatch cpu;
  const TraceSpan span(
      "frac.shard_train",
      trace_armed() ? format("{\"shard\": \"%zu/%zu\", \"units\": [%zu, %zu)}", spec.index,
                             spec.count, lo, hi)
                    : std::string());

  ShardMeta identity;
  identity.index = spec.index;
  identity.count = spec.count;
  identity.lo = lo;
  identity.hi = hi;
  identity.total_units = total_units;
  identity.samples = store.sample_count();
  identity.dataset_crc = store.content_crc();
  identity.config_crc = config_fingerprint(options.config);

  StandardScaler scaler = fit_store_scaler(store, options.config);

  ShardTrainStatus status;
  status.unit_lo = lo;
  status.unit_hi = hi;

  FracModel model;
  std::size_t done = lo;
  double cpu_baseline = 0.0;
  bool restored = false;
  if (options.resume && std::ifstream(out_path, std::ios::binary).good()) {
    PartialModel prior = load_partial(out_path);
    const ShardMeta& m = prior.meta;
    if (m.index != identity.index || m.count != identity.count || m.lo != identity.lo ||
        m.hi != identity.hi || m.total_units != identity.total_units ||
        m.samples != identity.samples) {
      throw ParseError(format("shard archive %s: tile %llu/%llu units [%llu, %llu) does not "
                              "match requested shard %zu/%zu units [%zu, %zu)",
                              out_path.c_str(), static_cast<unsigned long long>(m.index),
                              static_cast<unsigned long long>(m.count),
                              static_cast<unsigned long long>(m.lo),
                              static_cast<unsigned long long>(m.hi), spec.index, spec.count, lo,
                              hi));
    }
    if (m.dataset_crc != identity.dataset_crc) {
      throw ParseError("shard archive " + out_path +
                       ": trained on different dataset content (CRC mismatch); refusing to "
                       "resume");
    }
    if (m.config_crc != identity.config_crc) {
      throw ParseError("shard archive " + out_path +
                       ": trained under a different config (fingerprint mismatch); refusing to "
                       "resume");
    }
    model = std::move(prior.model);
    // The archive does not carry the config; reinstate it (the fingerprint
    // above proved it equal) and sanity-check the data-derived frame.
    ShardOps::config(model) = options.config;
    if (model.schema() != store.schema() ||
        ShardOps::scaler(model).means() != scaler.means() ||
        ShardOps::scaler(model).scales() != scaler.scales()) {
      throw ParseError("shard archive " + out_path +
                       ": schema or scaler disagrees with the dataset; refusing to resume");
    }
    done = m.done;
    status.units_resumed = done - lo;
    cpu_baseline = ShardOps::report(model).cpu_seconds;
    restored = true;
  }
  if (!restored) {
    init_model_frame(model, store, std::move(scaler), options.config);
    ShardOps::units(model).resize(hi - lo);
  }

  const std::size_t shard_units = hi - lo;
  std::size_t chunk = options.checkpoint_units;
  if (chunk == 0) chunk = std::max<std::size_t>(1, (shard_units + 7) / 8);

  const StoreUnitSource source(store, ShardOps::scaler(model));
  std::size_t fresh_units = 0;
  bool persisted = false;
  const auto interrupted = [&options]() {
    return options.interrupted && options.interrupted();
  };
  while (done < hi && !interrupted()) {
    const std::size_t end = std::min(hi, done + chunk);
    std::vector<FeaturePlan> plan = plan_for_range(done, end, total_units);
    detail::UnitTrainOutcome outcome;
    ShardOps::train_range(model, source, plan, /*unit_lo=*/done, /*slot_base=*/lo,
                          options.config, pool, outcome);
    fold_outcome(model, outcome);
    fresh_units += end - done;
    done = end;
    refresh_retained(model);
    ShardOps::report(model).cpu_seconds = cpu_baseline + cpu.seconds();
    if (done == hi && options.f32) model.build_f32_weights();
    ShardMeta meta = identity;
    meta.done = done;
    persist_partial(out_path, model, meta);
    persisted = true;
    if (options.stop_after_units != 0 && fresh_units >= options.stop_after_units) break;
  }
  if (!persisted) {
    // Empty shard, immediate interrupt, or resume of an already-complete
    // partial: republish so the file always reflects this invocation (and
    // picks up a newly requested f32 pack).
    if (done == hi && options.f32 && !model.has_f32_weights()) model.build_f32_weights();
    ShardOps::report(model).cpu_seconds = cpu_baseline + cpu.seconds();
    ShardMeta meta = identity;
    meta.done = done;
    persist_partial(out_path, model, meta);
  }

  if (!ShardOps::failures(model).empty()) {
    FRAC_WARN << "train_model_shard: " << ShardOps::failures(model).size() << " of "
              << (done - lo) << " trained units demoted ("
              << ShardOps::report(model).failures.summary() << "); merge sums the survivors";
  }

  status.complete = done == hi;
  status.units_done = done;
  status.report = ShardOps::report(model);
  return status;
}

FracModel merge_model_shards(std::span<const std::string> parts, ShardMergeSummary* summary) {
  if (parts.empty()) {
    throw std::invalid_argument("merge_model_shards: no partial archives given");
  }
  std::vector<PartialModel> loaded;
  loaded.reserve(parts.size());
  for (const std::string& path : parts) loaded.push_back(load_partial(path));
  std::sort(loaded.begin(), loaded.end(),
            [](const PartialModel& a, const PartialModel& b) { return a.meta.lo < b.meta.lo; });

  const ShardMeta first = loaded.front().meta;
  for (const PartialModel& part : loaded) {
    const ShardMeta& m = part.meta;
    if (m.done < m.hi) {
      throw ParseError(format("shard archive %s: incomplete (trained %llu of %llu units); "
                              "re-run that shard with --resume before merging",
                              part.path.c_str(),
                              static_cast<unsigned long long>(m.done - m.lo),
                              static_cast<unsigned long long>(m.hi - m.lo)));
    }
    if (m.count != parts.size()) {
      throw ParseError(format("shard archive %s: trained as shard %llu/%llu but %zu partials "
                              "were given",
                              part.path.c_str(), static_cast<unsigned long long>(m.index),
                              static_cast<unsigned long long>(m.count), parts.size()));
    }
    if (m.total_units != first.total_units || m.samples != first.samples) {
      throw ParseError(format("shard archive %s: dataset shape %llu units x %llu samples "
                              "disagrees with %s (%llu x %llu)",
                              part.path.c_str(),
                              static_cast<unsigned long long>(m.total_units),
                              static_cast<unsigned long long>(m.samples),
                              loaded.front().path.c_str(),
                              static_cast<unsigned long long>(first.total_units),
                              static_cast<unsigned long long>(first.samples)));
    }
    if (m.dataset_crc != first.dataset_crc) {
      throw ParseError("shard archive " + part.path +
                       ": trained on different dataset content than " + loaded.front().path +
                       " (CRC mismatch)");
    }
    if (m.config_crc != first.config_crc) {
      throw ParseError("shard archive " + part.path +
                       ": trained under a different config than " + loaded.front().path +
                       " (fingerprint mismatch)");
    }
  }
  std::size_t expect_lo = 0;
  for (const PartialModel& part : loaded) {
    if (part.meta.lo != expect_lo) {
      throw ParseError(format("shard archives do not tile the unit range: expected a shard "
                              "starting at unit %zu, %s covers [%llu, %llu)",
                              expect_lo, part.path.c_str(),
                              static_cast<unsigned long long>(part.meta.lo),
                              static_cast<unsigned long long>(part.meta.hi)));
    }
    expect_lo = part.meta.hi;
  }
  if (expect_lo != first.total_units) {
    throw ParseError(format("shard archives cover units [0, %zu) of %llu; a shard is missing",
                            expect_lo, static_cast<unsigned long long>(first.total_units)));
  }

  const bool want_f32 =
      std::any_of(loaded.begin(), loaded.end(), [](const PartialModel& p) { return p.has_f32; });

  FracModel merged = std::move(loaded.front().model);
  ResourceReport total;
  total.merge_shards(ShardOps::report(merged));
  for (std::size_t i = 1; i < loaded.size(); ++i) {
    FracModel& part = loaded[i].model;
    if (part.schema() != merged.schema()) {
      throw ParseError("shard archive " + loaded[i].path + ": schema disagrees with " +
                       loaded.front().path);
    }
    if (ShardOps::scaler(part).means() != ShardOps::scaler(merged).means() ||
        ShardOps::scaler(part).scales() != ShardOps::scaler(merged).scales()) {
      throw ParseError("shard archive " + loaded[i].path + ": scaler disagrees with " +
                       loaded.front().path);
    }
    auto& dst = ShardOps::units(merged);
    auto& src = ShardOps::units(part);
    dst.insert(dst.end(), std::make_move_iterator(src.begin()),
               std::make_move_iterator(src.end()));
    // Failure records carry global unit indices; appending in tile order
    // keeps them in unit order, same as a single-process run.
    auto& dst_failures = ShardOps::failures(merged);
    auto& src_failures = ShardOps::failures(part);
    dst_failures.insert(dst_failures.end(), std::make_move_iterator(src_failures.begin()),
                        std::make_move_iterator(src_failures.end()));
    total.merge_shards(ShardOps::report(part));
  }
  ShardOps::report(merged) = total;
  ShardOps::reset_derived(merged);

  if (total.models_retained == 0 && !ShardOps::failures(merged).empty()) {
    throw NumericError(format("merge_model_shards: all %zu units failed (%s)",
                              ShardOps::units(merged).size(), total.failures.summary().c_str()));
  }
  // A partial's f32 pack covers only its own units; regenerate a coherent
  // pack for the merged bundle whenever any shard carried one.
  if (want_f32) merged.build_f32_weights();

  if (summary != nullptr) {
    summary->shard_count = loaded.size();
    summary->units = ShardOps::units(merged).size();
    summary->report = total;
  }
  return merged;
}

FracModel train_out_of_core(const ColumnStore& store, const FracConfig& config,
                            ThreadPool& pool) {
  if (store.sample_count() < 2) {
    throw std::invalid_argument("FracModel::train: need at least 2 training samples");
  }
  const CpuStopwatch cpu;
  const TraceSpan span("frac.train",
                       trace_armed() ? format("{\"units\": %zu, \"samples\": %zu}",
                                              store.feature_count(), store.sample_count())
                                     : std::string());
  const std::size_t total_units = store.feature_count();
  FracModel model;
  init_model_frame(model, store, fit_store_scaler(store, config), config);
  ShardOps::units(model).resize(total_units);

  const StoreUnitSource source(store, ShardOps::scaler(model));
  std::vector<FeaturePlan> plan = plan_for_range(0, total_units, total_units);
  detail::UnitTrainOutcome outcome;
  ShardOps::train_range(model, source, plan, /*unit_lo=*/0, /*slot_base=*/0, config, pool,
                        outcome);
  fold_outcome(model, outcome);
  refresh_retained(model);
  ResourceReport& report = ShardOps::report(model);
  report.cpu_seconds = cpu.seconds();
  metrics_counter("frac.cv_folds").add(report.models_trained - report.models_retained);

  if (!ShardOps::failures(model).empty()) {
    FRAC_WARN << "FracModel::train: " << ShardOps::failures(model).size() << " of "
              << ShardOps::units(model).size() << " units demoted ("
              << report.failures.summary() << "); NS sums over the survivors";
  }
  if (report.models_retained == 0 && !ShardOps::failures(model).empty()) {
    throw NumericError(format("FracModel::train: all %zu units failed (%s)",
                              ShardOps::units(model).size(),
                              report.failures.summary().c_str()));
  }
  return model;
}

}  // namespace frac
