// Structured failure taxonomy for degraded FRaC runs.
//
// A production-scale grid (thousands of features × variants × replicates)
// must survive a degenerate predictor, a full disk, or an injected fault in
// one unit without aborting hours of work. When a unit (or an ensemble
// member, or a grid cell) fails, the failure is demoted to a record in one
// of four categories and the run continues over the survivors:
//
//   io       — file/stream failures (IoError, std::ios_base::failure)
//   numeric  — non-finite values or degenerate computations (NumericError,
//              domain/range errors, and the fallback for unclassified
//              exceptions: in this codebase those are thrown by numeric
//              validation paths)
//   resource — allocation/limit exhaustion (std::bad_alloc, length_error)
//   injected — faults fired by util/fault_injection.hpp
//
// Counts per category ride in ResourceReport, so every aggregation path the
// analytic tables use (ensemble merges, replicate runners) carries them and
// degradation is visible, never silent.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <string>

namespace frac {

enum class FailureCategory : std::uint8_t { kIo = 0, kNumeric, kResource, kInjected };
inline constexpr std::size_t kFailureCategoryCount = 4;

/// "io", "numeric", "resource", "injected".
const char* failure_category_name(FailureCategory category) noexcept;

/// Maps an exception to its category (see the taxonomy above).
FailureCategory classify_failure(const std::exception& error) noexcept;

/// Per-category failure tallies; value-semantic and mergeable so they ride
/// along every ResourceReport aggregation.
struct FailureCounts {
  std::array<std::size_t, kFailureCategoryCount> by_category{};

  std::size_t& operator[](FailureCategory category) {
    return by_category[static_cast<std::size_t>(category)];
  }
  std::size_t operator[](FailureCategory category) const {
    return by_category[static_cast<std::size_t>(category)];
  }

  std::size_t total() const noexcept;
  bool empty() const noexcept { return total() == 0; }

  FailureCounts& operator+=(const FailureCounts& other) noexcept;
  friend bool operator==(const FailureCounts&, const FailureCounts&) = default;

  /// "none" or e.g. "numeric:2 injected:1" — what the tables print.
  std::string summary() const;
};

/// One demoted training unit (frac/frac.hpp): which unit failed, why, and
/// with what message — the run report's audit trail.
struct UnitFailure {
  std::size_t unit = 0;    ///< index into the model's plan
  std::size_t target = 0;  ///< the unit's target feature
  FailureCategory category = FailureCategory::kNumeric;
  std::string detail;      ///< exception what()
};

}  // namespace frac
