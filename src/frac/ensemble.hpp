// FRaC ensembles (paper §II.C): "one simply sums all the normalized
// surprisal scores over all the members of the ensemble. If multiple members
// of the ensemble have a score for one feature, one can simply combine them
// by taking the median score for that feature."
//
// A member therefore reports *per-feature* NS contributions in the original
// feature space (NaN where the member built no predictor); the combiner
// takes the per-feature median over members that scored it, then sums over
// features.
//
// Failure isolation: a member whose training throws outright is recorded in
// the run's per-category failure counts and dropped — the median runs over
// the surviving members. The run aborts only if every member fails.
#pragma once

#include <span>

#include "data/split.hpp"
#include "frac/frac.hpp"

namespace frac {

/// One ensemble member's scores, mapped back to the original feature space.
struct MemberScores {
  /// n_test × |feature_ids|: per-feature NS contributions (NaN = no score).
  Matrix per_feature;
  /// Original-dataset feature index of each column of per_feature.
  std::vector<std::size_t> feature_ids;
  ResourceReport resources;
};

/// Median-combines member scores into one NS per test sample.
/// `feature_count` is the original feature-space width.
std::vector<double> combine_median(std::span<const MemberScores> members,
                                   std::size_t feature_count);

/// Ensemble of `members` random full-filter FRaC runs at `keep_fraction`
/// (paper: 10 members at 0.05). Members run sequentially and are freed after
/// scoring, so peak memory is one member's peak — the regime in which the
/// paper's Table III reports ensemble Mem% at the single-member level.
ScoredRun run_random_filter_ensemble(const Replicate& replicate, const FracConfig& config,
                                     double keep_fraction, std::size_t members, Rng& rng,
                                     ThreadPool& pool);

/// Ensemble of `members` diverse FRaC runs at inclusion probability `p`
/// (paper: 10 members at 1/20). Members are held concurrently (the paper's
/// Table IV reports diverse-ensemble memory at ~the sum of members).
ScoredRun run_diverse_ensemble(const Replicate& replicate, const FracConfig& config, double p,
                               std::size_t members, Rng& rng, ThreadPool& pool);

}  // namespace frac
