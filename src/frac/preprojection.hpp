// JL preprojection FRaC (paper §II.D, Fig. 2): 1-hot encode categoricals,
// concatenate with real features, apply a Johnson–Lindenstrauss random
// projection to k dimensions, then run ordinary FRaC in the projected
// (all-real) space. Every projected feature is a linear combination of
// original features, so "it is unlikely that any projected feature is
// unlearnable" — the unlearnable-feature noise that degrades plain FRaC is
// mitigated, and time/memory scale with k instead of the input width.
#pragma once

#include "data/split.hpp"
#include "frac/frac.hpp"
#include "jl/pipeline.hpp"

namespace frac {

/// JL-projected FRaC run. `config.predictor.regressor` selects the model in
/// the projected space (SVR is the paper's choice for expression data; the
/// tree ablation reproduces the "trees are not invariant under linear
/// transformation" discussion for SNP data).
ScoredRun run_jl_frac(const Replicate& replicate, const FracConfig& config,
                      const JlPipelineConfig& jl_config, ThreadPool& pool);

}  // namespace frac
