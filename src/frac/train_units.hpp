// Internal: the column-access seam of FracModel's per-unit training loop.
//
// FracModel::train_units_range (frac.cpp) trains a contiguous range of plan
// units against a UnitColumnSource instead of a concrete Matrix. Two sources
// exist: the in-core standardized matrix (train_with_plan), and the
// out-of-core ColumnStore view the feature-sharded trainer uses
// (frac/shard.cpp) — the latter never materializes the sample-major matrix,
// so a shard's peak footprint is one unit's design matrix, not the dataset.
//
// Everything a source hands out is *standardized*: the in-core source
// pre-transforms the whole matrix, the column source applies the scaler per
// cell during gather. Both evaluate the same (v - mean) / scale expression
// on the same doubles, and gathering is pure copying, so the trained units
// are bit-identical between sources (the sharded bit-identity tests pin
// this).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "frac/failure.hpp"
#include "linalg/matrix.hpp"

namespace frac::detail {

/// Column access used by the unit-training loop.
class UnitColumnSource {
 public:
  virtual ~UnitColumnSource() = default;

  /// Number of samples.
  virtual std::size_t rows() const = 0;

  /// Fills `valid` with the rows where `target` is defined (ascending) and
  /// `target_col` with the standardized target values at those rows.
  virtual void target_column(std::size_t target, std::vector<std::size_t>& valid,
                             std::vector<double>& target_col) const = 0;

  /// Gathers the standardized design matrix into `x` (pre-sized
  /// valid.size() x inputs.size()): x(i, k) = value(valid[i], inputs[k]).
  virtual void gather(std::span<const std::size_t> valid,
                      std::span<const std::size_t> inputs, Matrix& x) const = 0;

  /// Extra transient bytes one unit's gather needs beyond the design matrix
  /// and target column (staging buffers; 0 for the in-core source). Folded
  /// into the unit's train_workspace_bytes figure.
  virtual std::size_t gather_overhead_bytes() const { return 0; }
};

/// In-core source: a matrix already standardized by the caller.
class MatrixUnitSource final : public UnitColumnSource {
 public:
  explicit MatrixUnitSource(const Matrix& values) : values_(values) {}

  std::size_t rows() const override { return values_.rows(); }
  void target_column(std::size_t target, std::vector<std::size_t>& valid,
                     std::vector<double>& target_col) const override;
  void gather(std::span<const std::size_t> valid, std::span<const std::size_t> inputs,
              Matrix& x) const override;

 private:
  const Matrix& values_;
};

/// What a range of unit training produced; the caller (full train or one
/// shard) folds this into its ResourceReport.
struct UnitTrainOutcome {
  std::size_t models_trained = 0;      ///< CV fold models + retained, summed
  std::size_t max_unit_workspace = 0;  ///< max per-unit transient bytes
  std::vector<UnitFailure> failures;   ///< demoted units (global indices, unit order)
  std::vector<double> unit_seconds;    ///< per-unit wall seconds, unit order
};

}  // namespace frac::detail
