// Batch-scoped thread pool used by parallel_for.
//
// FRaC trains one predictor per feature with no cross-feature dependencies,
// so the dominant parallel pattern in this library is a balanced parallel
// loop over features — and, above that, over CV folds, ensemble members, and
// experiment replicates, all issued onto the same shared pool. Each
// parallel_for batch is its own TaskGroup with its own completion counter
// and its own first-exception slot, so:
//
//  * two batches running concurrently on one pool complete independently —
//    neither stalls on the other's tasks, and each caller sees only its own
//    batch's exception (per C++ Core Guidelines, errors escape via
//    exceptions, never swallowed — and never delivered to a stranger);
//  * wait() is *work-helping*: the waiting thread executes queued tasks of
//    its own batch instead of sleeping, so a batch issued from inside a pool
//    task always makes progress even when every worker is busy — nested
//    parallelism is deadlock-free without oversubscribing threads.
//
// The queue is a mutex+condvar deque — adequate because tasks here are
// coarse-grained (milliseconds each, one per loop chunk), so queue
// contention is negligible and a work-stealing deque would buy nothing.
//
// Tasks adopt the submitting thread's CPU-accounting scopes
// (util/cpu_accounting.hpp), so CpuStopwatch measurements include work
// executed on pool threads on the measurer's behalf.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/cpu_accounting.hpp"

namespace frac {

class ThreadPool;

/// One batch of tasks on a pool: its own completion counter and error slot.
/// Owned by the thread that issues the batch; reusable after wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) noexcept;

  /// Blocks until every task of this group finished (helping to run them);
  /// an unretrieved exception is discarded. Prefer calling wait() first.
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues one task. Only the owning thread may call run()/wait().
  void run(std::function<void()> task);

  /// Blocks until every task of *this* group has finished. The waiting
  /// thread helps: it drains queued tasks of its own group instead of
  /// sleeping, which makes nested parallelism (a group issued from inside a
  /// pool task) deadlock-free. If any task of this group threw, the first
  /// captured exception is rethrown here; other groups' errors are never
  /// seen. The group is reusable afterwards.
  void wait();

 private:
  friend class ThreadPool;

  struct Task {
    std::function<void()> fn;
    CpuContext cpu_context;  ///< submitter's CPU scopes, adopted by the executor
  };

  /// Helps/sleeps until pending_ == 0. Caller holds the pool mutex.
  void drain(std::unique_lock<std::mutex>& lock);

  ThreadPool& pool_;
  std::deque<Task> tasks_;          ///< queued, not yet started (pool mutex)
  std::size_t pending_ = 0;         ///< queued + running (pool mutex)
  std::exception_ptr first_error_;  ///< first task exception (pool mutex)
};

/// Fixed-size worker pool executing TaskGroup batches.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task on the pool's default group. Batches that need
  /// isolation (independent completion / error delivery) use their own
  /// TaskGroup instead, as parallel_for does.
  void submit(std::function<void()> task);

  /// Waits for the default group (work-helping; see TaskGroup::wait).
  void wait();

  /// Process-wide default pool, constructed on first use with the size set
  /// by set_default_thread_count() (else hardware concurrency). The CLI's
  /// RuntimeConfig resolves --threads / FRAC_THREADS and applies it here at
  /// startup; library code never reads the environment.
  static ThreadPool& global();

  /// Sets the size global() will use. Takes effect only before global()'s
  /// first use (the pool is constructed exactly once); 0 = hardware
  /// concurrency.
  static void set_default_thread_count(std::size_t threads);

 private:
  friend class TaskGroup;

  void worker_loop();

  /// Runs one task outside the lock, records its error, and signals its
  /// group. Shared by workers and helping waiters.
  void execute(TaskGroup& group, TaskGroup::Task task);

  std::vector<std::thread> workers_;
  std::deque<TaskGroup*> ready_;  ///< one entry per queued task, FIFO
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable group_done_;  ///< some group's pending_ hit zero
  bool shutting_down_ = false;
  std::unique_ptr<TaskGroup> default_group_;  ///< backs submit()/wait()
};

}  // namespace frac
