// Static thread pool used by parallel_for.
//
// FRaC trains one predictor per feature with no cross-feature dependencies,
// so the dominant parallel pattern in this library is a balanced parallel
// loop over features (and over ensemble members / replicates). The pool is a
// simple mutex+condvar task queue — adequate because tasks here are
// coarse-grained (milliseconds each, one per loop chunk), so queue contention
// is negligible and a work-stealing deque would buy nothing.
//
// The pool propagates the first exception thrown by any task in a batch to
// the caller of wait() (per C++ Core Guidelines, errors escape via
// exceptions, never swallowed).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace frac {

/// Fixed-size worker pool with batch-wait semantics.
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work, then joins workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Enqueues a task. Tasks may not themselves call submit()/wait() on the
  /// same pool (no nested parallelism; parallel_for flattens loops instead).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here and the rest are dropped.
  void wait();

  /// Process-wide default pool, sized by FRAC_THREADS env var when set,
  /// else hardware concurrency. Constructed on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable batch_done_;
  std::size_t in_flight_ = 0;  // queued + running
  std::exception_ptr first_error_;
  bool shutting_down_ = false;
};

}  // namespace frac
