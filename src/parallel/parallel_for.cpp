#include "parallel/parallel_for.hpp"

namespace frac {

void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.thread_count();
  if (workers <= 1 || n == 1) {
    body(begin, end);
    return;
  }
  // ~4 chunks per worker balances load without excessive queue traffic.
  const std::size_t target_chunks = std::min(n, workers * 4);
  const std::size_t chunk = (n + target_chunks - 1) / target_chunks;
  // A batch-scoped group: this loop completes (and fails) independently of
  // any other batch in flight on the pool, and the wait below helps run the
  // loop's own chunks, so calling this from inside a pool task is safe.
  TaskGroup group(pool);
  for (std::size_t lo = begin; lo < end; lo += chunk) {
    const std::size_t hi = std::min(lo + chunk, end);
    group.run([&body, lo, hi] { body(lo, hi); });
  }
  group.wait();
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, begin, end, [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(ThreadPool::global(), begin, end, body);
}

}  // namespace frac
