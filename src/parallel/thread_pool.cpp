#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/metrics.hpp"

namespace frac {

// ---------------------------------------------------------------------------
// TaskGroup
//
// Invariant (under the pool mutex): every queued task sits in its group's
// tasks_ deque and has exactly one matching `ready_` entry in the pool;
// whoever dequeues a task (worker or helping waiter) removes both together,
// so a popped ready_ entry always finds a non-empty group queue.
// ---------------------------------------------------------------------------

TaskGroup::TaskGroup(ThreadPool& pool) noexcept : pool_(pool) {}

TaskGroup::~TaskGroup() {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  drain(lock);  // destructor: completion without rethrow
}

void TaskGroup::run(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(pool_.mu_);
    tasks_.push_back(Task{std::move(task), capture_cpu_context()});
    ++pending_;
    pool_.ready_.push_back(this);
  }
  pool_.work_available_.notify_one();
}

void TaskGroup::drain(std::unique_lock<std::mutex>& lock) {
  while (pending_ > 0) {
    if (!tasks_.empty()) {
      // Help: run one of our own queued tasks on this thread.
      Task task = std::move(tasks_.front());
      tasks_.pop_front();
      const auto entry = std::find(pool_.ready_.begin(), pool_.ready_.end(), this);
      pool_.ready_.erase(entry);
      lock.unlock();
      pool_.execute(*this, std::move(task));
      lock.lock();
    } else {
      // All remaining tasks are running on workers; sleep until one of them
      // completes the batch. Workers never park here, so the tasks we are
      // waiting on always have threads making progress.
      pool_.group_done_.wait(lock);
    }
  }
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(pool_.mu_);
  drain(lock);
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  default_group_ = std::make_unique<TaskGroup>(*this);
  // High-water mark across all pools (the global pool plus any test-local
  // ones), recorded for the run manifest.
  metrics_gauge("pool.threads").set_max(static_cast<double>(threads));
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) { default_group_->run(std::move(task)); }

void ThreadPool::wait() { default_group_->wait(); }

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_available_.wait(lock, [this] { return shutting_down_ || !ready_.empty(); });
    if (ready_.empty()) return;  // shutting down and drained
    TaskGroup* group = ready_.front();
    ready_.pop_front();
    TaskGroup::Task task = std::move(group->tasks_.front());
    group->tasks_.pop_front();
    lock.unlock();
    execute(*group, std::move(task));
    lock.lock();
  }
}

void ThreadPool::execute(TaskGroup& group, TaskGroup::Task task) {
  {
    // Run (and destroy) the task under the submitter's CPU scopes, and
    // flush this thread's CPU into them, before the group can be signalled
    // complete — a waiter reading a CpuStopwatch right after wait() must see
    // the full attribution, and the task's captures must already be
    // released.
    TaskGroup::Task local = std::move(task);
    const CpuContextGuard cpu_scope(std::move(local.cpu_context));
    try {
      local.fn();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!group.first_error_) group.first_error_ = std::current_exception();
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    --group.pending_;
    if (group.pending_ == 0) group_done_.notify_all();
  }
}

namespace {
/// Size requested for the global pool before its first use; 0 = hardware
/// concurrency. Written by set_default_thread_count (RuntimeConfig::apply at
/// CLI startup), read once when global() constructs.
std::atomic<std::size_t> g_default_thread_count{0};
}  // namespace

void ThreadPool::set_default_thread_count(std::size_t threads) {
  g_default_thread_count.store(threads, std::memory_order_relaxed);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(g_default_thread_count.load(std::memory_order_relaxed));
  return pool;
}

}  // namespace frac
