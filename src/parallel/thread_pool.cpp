#include "parallel/thread_pool.hpp"

#include <cstdlib>

#include "util/string_util.hpp"

namespace frac {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--in_flight_ == 0) batch_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("FRAC_THREADS")) {
      const std::size_t n = parse_size(env, "FRAC_THREADS");
      if (n > 0) return n;
    }
    return std::size_t{0};
  }());
  return pool;
}

}  // namespace frac
