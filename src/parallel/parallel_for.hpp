// Chunked parallel loop over an index range.
//
// parallel_for(begin, end, body) partitions [begin, end) into contiguous
// chunks (≈4 per worker for load balance against uneven per-feature model
// costs) and runs body(i) for each index. The body must be safe to run
// concurrently for distinct indices; writes must target disjoint locations
// (the FRaC scorer writes per-feature slots of pre-sized vectors).
//
// Each call is its own batch (TaskGroup): loops running concurrently on the
// shared pool complete independently, each caller sees only its own loop's
// exception, and the body may itself call parallel_for on the same pool —
// the nested wait helps execute its own chunks, so nesting cannot deadlock
// (ensemble members fan out over units, units over CV folds).
//
// Determinism: results must not depend on execution order. FRaC's NS is a
// per-feature sum accumulated after the loop, and per-feature RNG streams are
// derived by feature index (Rng::split), so output is identical for any
// thread count.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>

#include "parallel/thread_pool.hpp"

namespace frac {

/// Runs body(i) for every i in [begin, end) on `pool`. Blocks until done.
/// Exceptions from the body propagate (first one wins).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Same, on the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunk-level variant: body receives [chunk_begin, chunk_end) so callers can
/// hoist per-chunk scratch allocations out of the inner loop.
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         const std::function<void(std::size_t, std::size_t)>& body);

}  // namespace frac
