// frac — command-line front end for the library.
//
// Subcommands (run `frac <command> --help` for flags; the spec tables in
// command_specs() below are the single source of truth):
//   list-cohorts   list the paper-analog synthetic cohorts
//   generate       write a synthetic cohort as a dataset CSV
//   train          train (full or diverse) FRaC and persist the model
//   shard-train    train one feature shard out-of-core into a partial archive
//   merge          stitch partial shard archives into one model
//   score          score a test CSV with a saved model (+AUC, --explain)
//   explain        per-feature NS breakdown for one test sample
//   detect         one-shot train+score with any variant
//   grid           the (cohort, method, replicate) experiment grid
//   convert        convert a model file between formats, or a dataset CSV to
//                  the columnar container (--dataset)
//   serve          NDJSON scoring loop over a load-once engine (stdin→stdout)
//   stream         sequential scoring with online NS drift detection and
//                  optional warm retrain + atomic republish on drift
//
// Every command also accepts the shared runtime flags (--threads, --simd,
// --log, --faults, --trace, --metrics, --manifest); each falls back to its
// FRAC_* environment variable. Exit codes: see kExitCodeContract
// (config/cli_spec.cpp) — 0 ok, 1 usage, 2 internal, 3 I/O, 4 parse,
// 5 numeric, 130 interrupted.
#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <utility>
#include <string>
#include <vector>

#include "config/cli_spec.hpp"
#include "config/runtime_config.hpp"
#include "data/column_store.hpp"
#include "data/io.hpp"
#include "frac/shard.hpp"
#include "expt/grid.hpp"
#include "expt/registry.hpp"
#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"
#include "serve/server.hpp"
#include "serve/socket_server.hpp"
#include "stream/drift.hpp"
#include "util/atomic_file.hpp"
#include "util/errors.hpp"
#include "util/manifest.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace {

using namespace frac;

/// The run's manifest, enriched by the active subcommand (seeds, grid shape,
/// outcome counts) and written at exit when --manifest or FRAC_MANIFEST
/// names a path.
RunManifest* g_manifest = nullptr;

const std::vector<CommandSpec>& command_specs() {
  static const std::vector<CommandSpec> kSpecs = {
      {"list-cohorts", "list the paper-analog synthetic cohorts", "", {}},
      {"generate",
       "write a synthetic cohort as a dataset CSV",
       "--cohort NAME --out FILE.csv",
       {
           {"cohort", FlagKind::kString, true, "NAME", "cohort name (see list-cohorts)"},
           {"out", FlagKind::kString, true, "FILE", "output CSV path"},
           {"latent-shift", FlagKind::kDouble, false, "S",
            "additive mean shift on the expression model's module latents "
            "(drift injection for streaming tests; expression cohorts only)"},
           {"seed", FlagKind::kSize, false, "N",
            "override the cohort's sampling seed (fresh draws from the same "
            "generative model)"},
       }},
      {"train",
       "train (full or diverse) FRaC on an all-normal training set",
       "--data TRAIN.csv|TRAIN.fraccol --model OUT.fracmdl [--format binary|text]",
       {
           {"data", FlagKind::kString, true, "FILE",
            "training dataset: CSV, or a columnar container (`frac convert "
            "--dataset`) trained out-of-core"},
           {"model", FlagKind::kString, true, "FILE", "output model path"},
           {"format", FlagKind::kString, false, "FMT",
            "model encoding: binary (default) or text (legacy)"},
           {"diverse", FlagKind::kDouble, false, "P",
            "diverse-FRaC input-sampling probability (default 0: full FRaC)"},
           {"seed", FlagKind::kSize, false, "S", "training seed (default 23)"},
           {"retain-duals", FlagKind::kBool, false, "",
            "persist the solvers' dual variables in the archive (format v3) "
            "so `frac stream --retrain` can warm-start refits"},
       }},
      {"shard-train",
       "train feature shard K of N out-of-core into a partial model archive",
       "--data TRAIN.fraccol --out PART.fracmdl --shard K/N [--resume]",
       {
           {"data", FlagKind::kString, true, "FILE",
            "training dataset: columnar container (preferred) or CSV"},
           {"out", FlagKind::kString, true, "FILE", "partial model archive path"},
           {"shard", FlagKind::kString, true, "K/N",
            "this process trains unit tile K of N (0 <= K < N)"},
           {"seed", FlagKind::kSize, false, "S", "training seed (default 23)"},
           {"resume", FlagKind::kBool, false, "",
            "continue from the partial at --out after a crash or Ctrl-C"},
           {"f32", FlagKind::kBool, false, "",
            "embed the f32 weight pack when the shard completes"},
           {"checkpoint-units", FlagKind::kSize, false, "N",
            "units per atomic checkpoint republish (default: ~1/8 of the shard)"},
           {"stop-after", FlagKind::kSize, false, "N",
            "testing hook: stop as if interrupted after N new units"},
       }},
      {"merge",
       "stitch complete partial shard archives into one model",
       "--parts A.fracmdl,B.fracmdl,... --out MODEL.fracmdl [--f32]",
       {
           {"parts", FlagKind::kString, true, "A,B,...",
            "comma-separated partial archives (every shard of one run)"},
           {"out", FlagKind::kString, true, "FILE", "merged model path"},
           {"f32", FlagKind::kBool, false, "",
            "embed the f32 weight pack even when no shard carried one"},
       }},
      {"score",
       "score a test CSV with a saved model; prints AUC when labeled",
       "--model M.fracmdl --data TEST.csv [--out SCORES.csv] [--explain K]",
       {
           {"model", FlagKind::kString, true, "FILE", "saved model (either format)"},
           {"data", FlagKind::kString, true, "FILE", "test dataset CSV"},
           {"out", FlagKind::kString, false, "FILE", "write sample,ns,label CSV"},
           {"explain", FlagKind::kSize, false, "K",
            "print each sample's top-K per-feature NS contributions"},
       }},
      {"explain",
       "why is sample I anomalous? NS breakdown and influential predictors",
       "--model M.fracmdl --data TEST.csv --sample I [--top K]",
       {
           {"model", FlagKind::kString, true, "FILE", "saved model (either format)"},
           {"data", FlagKind::kString, true, "FILE", "test dataset CSV"},
           {"sample", FlagKind::kSize, false, "I", "test sample index (default 0)"},
           {"top", FlagKind::kSize, false, "K", "features to show (default 10)"},
       }},
      {"detect",
       "one-shot train+score with any variant",
       "--train TRAIN.csv --test TEST.csv --method METHOD [options]",
       {
           {"train", FlagKind::kString, true, "FILE", "training dataset CSV"},
           {"test", FlagKind::kString, true, "FILE", "test dataset CSV"},
           {"method", FlagKind::kString, true, "METHOD",
            "full | filter-ensemble | entropy | partial | diverse | "
            "diverse-ensemble | jl"},
           {"keep", FlagKind::kDouble, false, "P", "filter keep fraction (default 0.05)"},
           {"members", FlagKind::kSize, false, "N", "ensemble members (default 10)"},
           {"p", FlagKind::kDouble, false, "P", "diverse sampling probability (default 0.5)"},
           {"dim", FlagKind::kSize, false, "K", "JL output dimension (default 64)"},
           {"seed", FlagKind::kSize, false, "S", "run seed (default 23)"},
           {"out", FlagKind::kString, false, "FILE", "write sample,ns,label CSV"},
       }},
      {"grid",
       "run the (cohort, method, replicate) experiment grid with isolation",
       "[--cohorts A,B --methods M1,M2 --replicates N] [--checkpoint FILE [--resume]]",
       {
           {"cohorts", FlagKind::kString, false, "A,B", "cohort subset (default: all)"},
           {"methods", FlagKind::kString, false, "M1,M2", "method subset (default: all)"},
           {"replicates", FlagKind::kSize, false, "N", "replicates per cell"},
           {"seed", FlagKind::kSize, false, "S", "grid seed (default 23)"},
           {"keep", FlagKind::kDouble, false, "P", "filter keep fraction"},
           {"members", FlagKind::kSize, false, "N", "ensemble members"},
           {"p", FlagKind::kDouble, false, "P", "diverse sampling probability"},
           {"dim", FlagKind::kSize, false, "K", "JL output dimension"},
           {"checkpoint", FlagKind::kString, false, "FILE", "persist finished cells here"},
           {"resume", FlagKind::kBool, false, "", "skip cells the checkpoint holds"},
           {"out", FlagKind::kString, false, "FILE", "write the report CSV here"},
       }},
      {"convert",
       "convert a saved model between formats, or a dataset CSV to the "
       "columnar container",
       "--in OLD.frac --out NEW.fracmdl [--to binary|text] [--f32] | "
       "--in DATA.csv --out DATA.fraccol --dataset",
       {
           {"in", FlagKind::kString, true, "FILE",
            "source model (either format), or a dataset CSV with --dataset"},
           {"out", FlagKind::kString, true, "FILE", "destination path"},
           {"to", FlagKind::kString, false, "FMT",
            "target encoding: binary (default) or text"},
           {"f32", FlagKind::kBool, false, "",
            "embed the f32 linear-weight pack (format v3; enables "
            "`frac serve --precision f32`)"},
           {"dataset", FlagKind::kBool, false, "",
            "stream a dataset CSV into the columnar container the out-of-core "
            "trainer reads (`frac train` / `frac shard-train`)"},
       }},
      {"serve",
       "NDJSON scoring loop: one JSON request per stdin line, one response "
       "per stdout line — or over TCP with --listen",
       "--model M.fracmdl [--top-k K] [--cache N] [--listen ADDR:PORT]",
       {
           {"model", FlagKind::kString, true, "FILE",
            "default model (requests may override with \"model\")"},
           {"top-k", FlagKind::kSize, false, "K",
            "include top-K NS contributions per sample (default 0: scores only)"},
           {"cache", FlagKind::kSize, false, "N",
            "max models kept resident across requests (default 4)"},
           {"listen", FlagKind::kString, false, "ADDR:PORT",
            "serve the same protocol over TCP (port 0 = kernel-assigned; "
            "the bound address is printed on stderr)"},
           {"max-connections", FlagKind::kSize, false, "N",
            "concurrent connection cap for --listen (default 256)"},
           {"max-inflight", FlagKind::kSize, false, "N",
            "queued+scoring request cap for --listen; beyond it requests "
            "get {\"error\":\"overloaded\"} (default 1024)"},
           {"idle-timeout-ms", FlagKind::kSize, false, "T",
            "reap a --listen connection that frames no complete line for "
            "T ms (default 0: never)"},
           {"write-stall-timeout-ms", FlagKind::kSize, false, "T",
            "close a --listen client that stays above the output high-water "
            "mark for T ms without draining (default 0: never)"},
           {"request-timeout-ms", FlagKind::kSize, false, "T",
            "answer a request still queued or scoring after T ms with "
            "{\"error\":\"deadline exceeded\"} (default 0: never)"},
           {"precision", FlagKind::kString, false, "P",
            "linear-unit weight precision: f64 (default) or f32 (requires a "
            "model converted with `frac convert --f32`)"},
           {"drift-baseline", FlagKind::kString, false, "FILE",
            "arm an NS drift monitor with this reference sample (`frac score "
            "--out` CSV or one NS per line); status via {\"cmd\":\"drift\"}"},
           {"drift-alpha", FlagKind::kDouble, false, "A",
            "drift monitor anytime false-alarm bound (default 1e-3)"},
           {"drift-min-samples", FlagKind::kSize, false, "N",
            "samples the drift monitor must see before it may fire (default 32)"},
       }},
      {"stream",
       "score a stream CSV in row order with online NS drift detection and "
       "optional warm retrain + atomic republish on drift",
       "--model M.fracmdl --data STREAM.csv --baseline NS.csv [--retrain] "
       "[--out OUT.csv]",
       {
           {"model", FlagKind::kString, true, "FILE",
            "model to score with (warm refits start from its dual state; "
            "train with --retain-duals)"},
           {"data", FlagKind::kString, true, "FILE",
            "stream dataset, scored in row (arrival) order"},
           {"baseline", FlagKind::kString, false, "FILE",
            "reference NS sample (`frac score --out` CSV or one NS per "
            "line). Score a HELD-OUT calibration set — NS on the model's own "
            "training rows is biased low and false-alarms. Required unless "
            "--state resumes a snapshot"},
           {"out", FlagKind::kString, false, "FILE",
            "write sample,ns,statistic,drifted,generation CSV"},
           {"alpha", FlagKind::kDouble, false, "A",
            "anytime false-alarm bound (default 1e-3)"},
           {"min-samples", FlagKind::kSize, false, "N",
            "samples before the alarm may fire (default 32)"},
           {"window", FlagKind::kSize, false, "W",
            "trailing rows used to retrain and rebaseline (default 256)"},
           {"chunk", FlagKind::kSize, false, "N",
            "rows scored per batch (default 256; throughput only — drift "
            "decisions are per-sample and chunk-size independent)"},
           {"retrain", FlagKind::kBool, false, "",
            "on drift: warm-retrain on the trailing window, republish the "
            "model atomically, rebaseline, continue"},
           {"publish", FlagKind::kString, false, "FILE",
            "republish path for retrained models (default: --model; a serve "
            "cache watching that path hot-swaps on its next stat)"},
           {"seed", FlagKind::kSize, false, "S", "retrain seed (default 23)"},
           {"state", FlagKind::kString, false, "FILE",
            "monitor snapshot: resumed from when present, saved on exit "
            "(kill/resume continues the stream bit-identically)"},
       }},
  };
  return kSpecs;
}

void write_scores(const std::string& path, const std::vector<double>& scores,
                  const Dataset& test) {
  atomic_write_file(path, [&](std::ostream& out) {
    out << "sample,ns,label\n";
    for (std::size_t i = 0; i < scores.size(); ++i) {
      out << i << ',' << format("%.17g", scores[i]) << ','
          << (test.label(i) == Label::kAnomaly ? "anomaly" : "normal") << '\n';
    }
    if (!out) throw IoError("score CSV " + path + ": stream write failed");
  });
}

void print_auc_if_labeled(const std::vector<double>& scores, const Dataset& test) {
  if (test.anomaly_count() > 0 && test.normal_count() > 0) {
    std::cout << "AUC: " << format("%.4f", auc(scores, test.labels())) << "\n";
  } else {
    std::cout << "(single-class test set: no AUC)\n";
  }
}

ModelFormat parse_model_format(const std::string& name, const char* flag) {
  if (name.empty() || name == "binary") return ModelFormat::kBinary;
  if (name == "text") return ModelFormat::kText;
  throw std::invalid_argument(std::string(flag) + " must be 'binary' or 'text', got '" +
                              name + "'");
}

int cmd_list_cohorts() {
  for (const CohortSpec& spec : paper_cohorts()) {
    std::cout << spec.name << "  ("
              << (spec.kind == CohortKind::kExpression ? "expression" : "SNP") << ", "
              << spec.scaled_features() << " features, " << spec.normal_samples << " normal + "
              << spec.anomaly_samples << " anomaly)\n";
  }
  return 0;
}

int cmd_generate(const ParsedFlags& args) {
  const std::string name = args.require("cohort");
  const std::string out = args.require("out");
  CohortSpec spec = cohort_by_name(name);
  const double latent_shift = args.get_double("latent-shift", 0.0);
  if (latent_shift != 0.0) {
    if (spec.kind != CohortKind::kExpression) {
      throw std::invalid_argument("--latent-shift applies to expression cohorts only");
    }
    spec.expression.latent_shift = latent_shift;
  }
  if (const auto seed = args.get("seed")) {
    spec.seed = args.get_size("seed", spec.seed);
  }
  if (spec.ancestry_confound) {
    const Replicate rep = make_confounded_replicate(spec);
    save_dataset_csv(out + ".train.csv", rep.train);
    save_dataset_csv(out + ".test.csv", rep.test);
    std::cout << "wrote " << out << ".train.csv and " << out << ".test.csv\n";
  } else {
    save_dataset_csv(out, make_cohort(spec));
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int cmd_train(const ParsedFlags& args) {
  const std::string data_path = args.require("data");
  const std::string model_path = args.require("model");
  const ModelFormat model_format = parse_model_format(args.get("format").value_or(""), "--format");
  const double diverse_p = args.get_double("diverse", 0.0);
  const std::size_t seed = args.get_size("seed", 23);
  if (g_manifest != nullptr) g_manifest->set("train.seed", static_cast<std::uint64_t>(seed));

  FracConfig config;
  config.seed = seed;
  config.retain_duals = args.get_flag("retain-duals");
  ThreadPool& pool = ThreadPool::global();

  if (looks_like_archive_file(data_path)) {
    // Columnar container: train out-of-core through zero-copy column views —
    // the sample-major matrix is never materialized.
    if (diverse_p > 0.0) {
      throw std::invalid_argument(
          "--diverse requires a CSV training set (columnar input trains the "
          "full plan out-of-core)");
    }
    const ColumnStore store = ColumnStore::open(data_path);
    std::size_t anomalies = 0;
    for (const Label label : store.labels()) anomalies += label == Label::kAnomaly;
    if (anomalies != 0) {
      std::cerr << "warning: training set contains " << anomalies
                << " anomaly-labeled samples; FRaC assumes (mostly) normal training data\n";
    }
    const FracModel model = train_out_of_core(store, config, pool);
    model.save_file(model_path, model_format);
    const ResourceReport& report = model.report();
    std::cout << "trained " << model.unit_count() << " units on " << store.sample_count()
              << " samples out-of-core; saved to " << model_path << "\n";
    // The out-of-core RSS gate line CI greps: training's transient footprint
    // vs. what materializing the full matrix would have added.
    std::cout << "out-of-core RSS gate: train workspace " << report.train_workspace_bytes
              << " bytes, peak " << report.peak_bytes << " bytes, full-matrix "
              << store.bytes() << " bytes\n";
    return 0;
  }

  const Dataset train = load_dataset_csv(data_path);
  if (train.anomaly_count() != 0) {
    std::cerr << "warning: training set contains " << train.anomaly_count()
              << " anomaly-labeled samples; FRaC assumes (mostly) normal training data\n";
  }
  FracModel model = [&] {
    if (diverse_p > 0.0) {
      Rng rng(seed);
      return FracModel::train_with_plan(
          train, make_diverse_plan(train.feature_count(), diverse_p, 1, rng), config, pool);
    }
    return FracModel::train(train, config, pool);
  }();
  model.save_file(model_path, model_format);
  std::cout << "trained " << model.unit_count() << " units on " << train.sample_count()
            << " samples; saved to " << model_path << "\n";
  return 0;
}

int cmd_score(const ParsedFlags& args) {
  const std::string model_path = args.require("model");
  const std::string data_path = args.require("data");
  const std::size_t explain_k = args.get_size("explain", 0);
  const auto out = args.get("out");

  const FracModel model = FracModel::load_file(model_path);
  const Dataset test = load_dataset_any(data_path);
  ThreadPool& pool = ThreadPool::global();
  const std::vector<double> scores = model.score(test, pool);
  if (out) write_scores(*out, scores, test);
  print_auc_if_labeled(scores, test);
  if (explain_k > 0) {
    // Per-sample NS decomposition: the top-k features by contribution, one
    // line per test sample.
    const Matrix per_feature = model.per_feature_scores(test, pool);
    const Schema& schema = test.schema();
    std::cout << "top " << explain_k << " NS contributions per sample:\n";
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t r = 0; r < per_feature.rows(); ++r) {
      ranked.clear();
      for (std::size_t f = 0; f < per_feature.cols(); ++f) {
        const double v = per_feature(r, f);
        if (!is_missing(v)) ranked.emplace_back(v, f);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::cout << "sample " << r << " NS=" << format("%.3f", scores[r]) << ":";
      for (std::size_t i = 0; i < std::min(explain_k, ranked.size()); ++i) {
        std::cout << ' ' << schema[ranked[i].second].name << '='
                  << format("%+.3f", ranked[i].first);
      }
      std::cout << '\n';
    }
  }
  return 0;
}

int cmd_explain(const ParsedFlags& args) {
  const std::string model_path = args.require("model");
  const std::string data_path = args.require("data");
  const std::size_t sample = args.get_size("sample", 0);
  const std::size_t top = args.get_size("top", 10);

  const FracModel model = FracModel::load_file(model_path);
  const Dataset test = load_dataset_any(data_path);
  if (sample >= test.sample_count()) {
    throw std::invalid_argument(format("sample %zu out of %zu", sample, test.sample_count()));
  }
  ThreadPool& pool = ThreadPool::global();
  const Dataset one = test.select_samples({sample});
  const Matrix per_feature = model.per_feature_scores(one, pool);

  double total = 0.0;
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t f = 0; f < per_feature.cols(); ++f) {
    const double v = per_feature(0, f);
    if (is_missing(v)) continue;
    total += v;
    ranked.emplace_back(v, f);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << "sample " << sample << "  label="
            << (test.label(sample) == Label::kAnomaly ? "anomaly" : "normal")
            << "  NS=" << format("%.3f", total) << "\n\n";
  std::cout << "top " << std::min(top, ranked.size()) << " contributing features:\n";
  // Map feature index -> first unit with that target (for influential inputs).
  std::map<std::size_t, std::size_t> unit_of;
  for (std::size_t u = 0; u < model.unit_count(); ++u) {
    unit_of.try_emplace(model.unit_plan(u).target, u);
  }
  const Schema& schema = test.schema();  // model.score already verified the match
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    const auto [score, f] = ranked[i];
    std::cout << "  " << schema[f].name << "  NS=" << format("%+.3f", score);
    const auto it = unit_of.find(f);
    if (it != unit_of.end()) {
      const auto inputs = model.influential_inputs(it->second, 3);
      if (!inputs.empty()) {
        std::cout << "  predicted from:";
        for (const std::size_t j : inputs) std::cout << ' ' << schema[j].name;
      }
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_detect(const ParsedFlags& args) {
  const std::string train_path = args.require("train");
  const std::string test_path = args.require("test");
  const std::string method = args.require("method");
  const double keep = args.get_double("keep", 0.05);
  const std::size_t members = args.get_size("members", 10);
  const double p = args.get_double("p", 0.5);
  const std::size_t dim = args.get_size("dim", 64);
  const std::size_t seed = args.get_size("seed", 23);
  const auto out = args.get("out");
  if (g_manifest != nullptr) {
    g_manifest->set("detect.method", method);
    g_manifest->set("detect.seed", static_cast<std::uint64_t>(seed));
  }

  Replicate rep{load_dataset_any(train_path), load_dataset_any(test_path)};
  FracConfig config;
  config.seed = seed;
  // Trees for categorical-majority data, SVR otherwise (the paper's choice).
  std::size_t categorical = 0;
  for (std::size_t f = 0; f < rep.train.feature_count(); ++f) {
    categorical += rep.train.schema().is_categorical(f);
  }
  if (2 * categorical > rep.train.feature_count()) {
    config.predictor.classifier = ClassifierKind::kDecisionTree;
    config.predictor.regressor = RegressorKind::kRegressionTree;
    config.predictor.tree.max_depth = 6;
  }

  ThreadPool& pool = ThreadPool::global();
  Rng rng(seed);
  ScoredRun run;
  if (method == "full") run = run_frac(rep, config, pool);
  else if (method == "filter-ensemble")
    run = run_random_filter_ensemble(rep, config, keep, members, rng, pool);
  else if (method == "entropy")
    run = run_full_filtered_frac(rep, config, FilterMethod::kEntropy, keep, rng, pool);
  else if (method == "partial")
    run = run_partial_filtered_frac(rep, config, FilterMethod::kRandom, keep, rng, pool);
  else if (method == "diverse") run = run_diverse_frac(rep, config, p, 1, rng, pool);
  else if (method == "diverse-ensemble")
    run = run_diverse_ensemble(rep, config, p, members, rng, pool);
  else if (method == "jl") {
    JlPipelineConfig jl;
    jl.output_dim = dim;
    jl.seed = seed;
    run = run_jl_frac(rep, config, jl, pool);
  } else {
    throw std::invalid_argument("unknown method '" + method + "'");
  }

  if (out) write_scores(*out, run.test_scores, rep.test);
  print_auc_if_labeled(run.test_scores, rep.test);
  std::cout << "cpu: " << format("%.2f", run.resources.cpu_seconds)
            << "s  model-mem: " << run.resources.peak_bytes << " bytes  models: "
            << run.resources.models_retained << "\n";
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;
// Atomic: read from the signal handler while the serve path stores/clears it
// (lock-free atomic loads are async-signal-safe; a plain pointer is not).
std::atomic<SocketServer*> g_socket_server{nullptr};

void handle_sigint(int) {
  g_interrupted = 1;
  // request_stop is async-signal-safe (atomic store + self-pipe write); the
  // server drains in-flight requests and returns from run().
  SocketServer* const server = g_socket_server.load(std::memory_order_relaxed);
  if (server != nullptr) server->request_stop();
}

/// Stop cleanly between grid cells on Ctrl-C: every finished cell is already
/// checkpointed, so `frac grid --resume` picks up exactly where this left off.
/// `frac serve --listen` also routes SIGTERM here for a graceful drain.
void install_sigint_handler(bool also_sigterm = false) {
  struct sigaction action {};
  action.sa_handler = handle_sigint;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  if (also_sigterm) sigaction(SIGTERM, &action, nullptr);
}

int cmd_grid(const ParsedFlags& args) {
  GridConfig config;
  if (const auto v = args.get("cohorts")) config.cohorts = split(*v, ',');
  if (const auto v = args.get("methods")) config.methods = split(*v, ',');
  config.replicates = args.get_size("replicates", config.replicates);
  config.seed = args.get_size("seed", 23);
  config.params.keep_fraction = args.get_double("keep", config.params.keep_fraction);
  config.params.members = args.get_size("members", config.params.members);
  config.params.diverse_p = args.get_double("p", config.params.diverse_p);
  config.params.jl_dim = args.get_size("dim", config.params.jl_dim);
  if (const auto v = args.get("checkpoint")) config.checkpoint_path = *v;
  config.resume = args.get_flag("resume");
  const auto out = args.get("out");
  if (config.resume && config.checkpoint_path.empty()) {
    throw std::invalid_argument("--resume requires --checkpoint");
  }

  if (g_manifest != nullptr) {
    g_manifest->set("grid.seed", static_cast<std::uint64_t>(config.seed));
    g_manifest->set("grid.replicates", static_cast<std::uint64_t>(config.replicates));
    std::string cohorts_csv, methods_csv;
    for (const std::string& c : config.cohorts) {
      cohorts_csv += (cohorts_csv.empty() ? "" : ",") + c;
    }
    for (const std::string& m : config.methods) {
      methods_csv += (methods_csv.empty() ? "" : ",") + m;
    }
    g_manifest->set("grid.cohorts", cohorts_csv.empty() ? "(all)" : cohorts_csv);
    g_manifest->set("grid.methods", methods_csv.empty() ? "(all)" : methods_csv);
  }

  install_sigint_handler();
  ThreadPool& pool = ThreadPool::global();
  const GridOutcome outcome =
      run_experiment_grid(config, pool, [] { return g_interrupted != 0; });
  if (g_manifest != nullptr) {
    // Failure counts are a pure function of (config, seed): deterministic.
    // How many cells ran vs. resumed from a checkpoint is not.
    g_manifest->set("grid.cells_total", static_cast<std::uint64_t>(outcome.cells.size()));
    g_manifest->set("grid.cells_failed", static_cast<std::uint64_t>(outcome.cells_failed));
    g_manifest->set_measured("grid.cells_run", static_cast<std::uint64_t>(outcome.cells_run));
    g_manifest->set_measured("grid.cells_skipped",
                             static_cast<std::uint64_t>(outcome.cells_skipped));
  }

  if (out) {
    atomic_write_file(*out, [&](std::ostream& report) {
      write_grid_report(report, outcome.cells);
      if (!report) throw IoError("grid report " + *out + ": stream write failed");
    });
  } else if (!outcome.interrupted) {
    write_grid_report(std::cout, outcome.cells);
  }

  std::cerr << "grid: " << outcome.cells_run << " cells run, " << outcome.cells_skipped
            << " resumed from checkpoint, " << outcome.cells_failed << " failed\n";
  if (outcome.interrupted) {
    std::cerr << "interrupted: finished cells are checkpointed; rerun with --resume\n";
    return 130;
  }
  return 0;
}

int cmd_convert(const ParsedFlags& args) {
  const std::string in_path = args.require("in");
  const std::string out_path = args.require("out");
  if (args.get_flag("dataset")) {
    if (args.get_flag("f32") || args.get("to")) {
      throw std::invalid_argument(
          "--dataset converts a dataset CSV to the columnar container; "
          "--to/--f32 do not apply");
    }
    const ColumnStoreConvertStats stats = convert_csv_to_column_store(in_path, out_path);
    const std::size_t bound = column_store_transient_bound(stats.samples, stats.column_bytes);
    std::cout << "converted " << in_path << " -> " << out_path << " (columnar, "
              << stats.samples << " samples x " << stats.features << " features, "
              << stats.column_bytes << " column bytes)\n";
    // The streaming-convert RSS gate line CI greps: the converter's analytic
    // transient peak vs. the structural bound (strictly below doubling the
    // column payload, which a parse-then-copy converter would pay).
    std::cout << "convert RSS gate: transient peak " << stats.transient_peak_bytes
              << " bytes <= bound " << bound << " bytes (full payload twice: "
              << 2 * stats.column_bytes << ")\n";
    if (g_manifest != nullptr) {
      g_manifest->set_measured("convert.samples", static_cast<std::uint64_t>(stats.samples));
      g_manifest->set_measured("convert.features", static_cast<std::uint64_t>(stats.features));
    }
    return 0;
  }
  const ModelFormat to = parse_model_format(args.get("to").value_or(""), "--to");
  const bool f32 = args.get_flag("f32");
  if (f32 && to == ModelFormat::kText) {
    throw std::invalid_argument("--f32 requires the binary format (--to binary)");
  }

  FracModel model = FracModel::load_file(in_path);
  if (f32) {
    model.build_f32_weights();
    if (!model.has_f32_weights()) {
      std::cerr << "warning: model has no linear units; --f32 adds nothing "
                   "(writing plain format v2)\n";
    }
  }
  model.save_file(out_path, to);
  std::cout << "converted " << in_path << " -> " << out_path << " ("
            << (to == ModelFormat::kBinary ? "binary" : "text") << ", " << model.unit_count()
            << " units" << (model.has_f32_weights() ? ", f32 pack" : "") << ")\n";
  return 0;
}

/// "K/N" for --shard.
ShardSpec parse_shard_spec(const std::string& text) {
  const auto bad = [&text]() -> std::invalid_argument {
    return std::invalid_argument("--shard expects K/N with 0 <= K < N, got '" + text + "'");
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos) throw bad();
  ShardSpec spec;
  try {
    std::size_t used = 0;
    spec.index = std::stoull(text.substr(0, slash), &used);
    if (used != slash) throw bad();
    const std::string count_text = text.substr(slash + 1);
    spec.count = std::stoull(count_text, &used);
    if (used != count_text.size()) throw bad();
  } catch (const std::invalid_argument&) {
    throw bad();
  } catch (const std::out_of_range&) {
    throw bad();
  }
  if (spec.count == 0 || spec.index >= spec.count) throw bad();
  return spec;
}

/// Opens the training data as a column store: columnar archives directly
/// (zero-copy mmap), CSVs through an in-memory store. Either route yields the
/// same content CRC for the same data, so shards may mix input forms.
ColumnStore open_column_store(const std::string& data_path) {
  if (looks_like_archive_file(data_path)) return ColumnStore::open(data_path);
  return ColumnStore::from_dataset(load_dataset_csv(data_path));
}

int cmd_shard_train(const ParsedFlags& args) {
  const std::string data_path = args.require("data");
  const std::string out_path = args.require("out");
  const ShardSpec spec = parse_shard_spec(args.require("shard"));
  ShardTrainOptions options;
  options.config.seed = args.get_size("seed", 23);
  options.resume = args.get_flag("resume");
  options.f32 = args.get_flag("f32");
  options.checkpoint_units = args.get_size("checkpoint-units", 0);
  options.stop_after_units = args.get_size("stop-after", 0);
  if (g_manifest != nullptr) {
    g_manifest->set("shard.index", static_cast<std::uint64_t>(spec.index));
    g_manifest->set("shard.count", static_cast<std::uint64_t>(spec.count));
    g_manifest->set("shard.seed", static_cast<std::uint64_t>(options.config.seed));
  }

  const ColumnStore store = open_column_store(data_path);
  install_sigint_handler(/*also_sigterm=*/true);
  options.interrupted = [] { return g_interrupted != 0; };
  ThreadPool& pool = ThreadPool::global();
  const ShardTrainStatus status = train_model_shard(store, spec, options, out_path, pool);

  std::cout << "shard " << spec.index << "/" << spec.count << ": units [" << status.unit_lo
            << ", " << status.unit_hi << "), " << (status.units_done - status.unit_lo)
            << " trained";
  if (status.units_resumed != 0) std::cout << " (" << status.units_resumed << " resumed)";
  std::cout << "; partial saved to " << out_path << "\n";
  std::cout << "out-of-core RSS gate: train workspace " << status.report.train_workspace_bytes
            << " bytes, peak " << status.report.peak_bytes << " bytes, full-matrix "
            << store.bytes() << " bytes\n";
  if (g_manifest != nullptr) {
    g_manifest->set_measured("shard.units_done",
                             static_cast<std::uint64_t>(status.units_done - status.unit_lo));
    g_manifest->set_measured("shard.units_resumed",
                             static_cast<std::uint64_t>(status.units_resumed));
  }
  if (!status.complete) {
    std::cerr << "interrupted: frontier checkpointed at unit " << status.units_done
              << "; rerun with --resume to finish this shard\n";
    return 130;
  }
  return 0;
}

int cmd_merge(const ParsedFlags& args) {
  const std::vector<std::string> parts = split(args.require("parts"), ',');
  const std::string out_path = args.require("out");

  ShardMergeSummary summary;
  FracModel model = merge_model_shards(parts, &summary);
  if (args.get_flag("f32")) model.build_f32_weights();
  model.save_file(out_path);
  std::cout << "merged " << summary.shard_count << " shards -> " << out_path << " ("
            << summary.units << " units, " << summary.report.models_retained << " retained"
            << (model.has_f32_weights() ? ", f32 pack" : "") << ")\n";
  if (g_manifest != nullptr) {
    g_manifest->set("merge.shards", static_cast<std::uint64_t>(summary.shard_count));
    g_manifest->set_measured("merge.units", static_cast<std::uint64_t>(summary.units));
  }
  return 0;
}

/// "ADDR:PORT" for --listen. An empty ADDR means every interface; the port
/// may be 0 for a kernel-assigned one (printed on stderr once bound).
std::pair<std::string, std::uint16_t> parse_listen_address(const std::string& value) {
  const std::size_t colon = value.rfind(':');
  if (colon == std::string::npos) {
    throw std::invalid_argument("--listen expects ADDR:PORT, got '" + value + "'");
  }
  std::string addr = value.substr(0, colon);
  if (addr.empty()) addr = "0.0.0.0";
  const std::string port_text = value.substr(colon + 1);
  unsigned long port = 0;
  try {
    std::size_t used = 0;
    port = std::stoul(port_text, &used);
    if (used != port_text.size()) throw std::invalid_argument(port_text);
  } catch (const std::exception&) {
    throw std::invalid_argument("--listen: invalid port '" + port_text + "'");
  }
  if (port > 65535) throw std::invalid_argument("--listen: port " + port_text + " > 65535");
  return {addr, static_cast<std::uint16_t>(port)};
}

int cmd_serve(const ParsedFlags& args) {
  ServeOptions options;
  options.default_model = args.require("model");
  options.top_k = args.get_size("top-k", 0);
  const std::string precision = args.get("precision").value_or("f64");
  if (precision == "f32") {
    options.precision = ScorePrecision::kF32;
  } else if (precision != "f64") {
    throw std::invalid_argument("--precision must be 'f64' or 'f32', got '" + precision + "'");
  }
  const std::size_t cache_capacity = args.get_size("cache", 4);
  if (const auto drift_baseline = args.get("drift-baseline")) {
    DriftConfig drift_config;
    drift_config.alpha = args.get_double("drift-alpha", drift_config.alpha);
    drift_config.min_samples = args.get_size("drift-min-samples", drift_config.min_samples);
    options.drift = std::make_shared<ServeDriftMonitor>(
        DriftMonitor(load_ns_baseline(*drift_baseline), drift_config));
  } else if (args.get("drift-alpha") || args.get("drift-min-samples")) {
    throw std::invalid_argument(
        "--drift-alpha/--drift-min-samples require --drift-baseline");
  }

  ModelCache cache(cache_capacity);
  // Fail fast: a broken default model should exit with the load error before
  // the loop starts consuming requests.
  const std::shared_ptr<const ScoringEngine> engine = cache.get(options.default_model);
  if (options.precision == ScorePrecision::kF32 && !engine->model().has_f32_weights()) {
    throw std::invalid_argument("--precision f32: model " + options.default_model +
                                " has no f32 weight pack (run `frac convert --f32`)");
  }
  std::cerr << "serving " << options.default_model << " (" << engine->feature_count()
            << " features, " << engine->model().unit_count() << " units, "
            << (engine->bundle().zero_copy() ? "mmap zero-copy" : "heap-backed")
            << (options.precision == ScorePrecision::kF32 ? ", f32 weights" : "") << ")\n";

  ThreadPool& pool = ThreadPool::global();
  ServeStats stats;
  const auto listen = args.get("listen");
  if (listen) {
    SocketServerOptions socket_options;
    std::tie(socket_options.listen_addr, socket_options.port) = parse_listen_address(*listen);
    socket_options.max_connections = args.get_size("max-connections", 256);
    socket_options.max_inflight = args.get_size("max-inflight", 1024);
    socket_options.idle_timeout_ms =
        static_cast<std::uint32_t>(args.get_size("idle-timeout-ms", 0));
    socket_options.write_stall_timeout_ms =
        static_cast<std::uint32_t>(args.get_size("write-stall-timeout-ms", 0));
    socket_options.request_timeout_ms =
        static_cast<std::uint32_t>(args.get_size("request-timeout-ms", 0));
    socket_options.serve = options;

    SocketServer server(socket_options);
    std::cerr << "serve: listening on " << socket_options.listen_addr << ":" << server.port()
              << "\n"
              << std::flush;
    g_socket_server.store(&server, std::memory_order_relaxed);
    install_sigint_handler(/*also_sigterm=*/true);
    stats = server.run(cache, pool);
    g_socket_server.store(nullptr, std::memory_order_relaxed);
    std::cerr << "serve: drained\n";
  } else {
    stats = run_serve_loop(std::cin, std::cout, options, cache, pool);
  }
  std::cerr << "serve: " << stats.requests << " requests, " << stats.samples << " samples, "
            << stats.errors << " errors";
  if (listen) {
    std::cerr << ", " << stats.rejected << " rejected, " << stats.reaped << " reaped, "
              << stats.timeouts << " stalled, " << stats.deadline_exceeded
              << " past deadline";
  }
  std::cerr << "\n";
  if (g_manifest != nullptr) {
    g_manifest->set("serve.model", options.default_model);
    g_manifest->set_measured("serve.requests", stats.requests);
    g_manifest->set_measured("serve.samples", stats.samples);
    g_manifest->set_measured("serve.errors", stats.errors);
    g_manifest->set_measured("serve.health", stats.health);
    if (listen) {
      g_manifest->set("serve.listen", *listen);
      g_manifest->set_measured("serve.rejected", stats.rejected);
      g_manifest->set_measured("serve.reaped", stats.reaped);
      g_manifest->set_measured("serve.timeouts", stats.timeouts);
      g_manifest->set_measured("serve.deadline_exceeded", stats.deadline_exceeded);
    }
  }
  return 0;
}

/// `frac stream`: the zero-downtime streaming loop. Rows are scored in
/// arrival order against the current model generation, every NS feeds the
/// drift monitor sequentially (decisions are chunk-size independent), and —
/// with --retrain — a detection triggers a warm refit on the trailing window,
/// an atomic republish, and a rebaseline before the stream continues. A
/// serve-tier cache watching the publish path hot-swaps on its next stat (or
/// immediately via {"cmd":"reload"}).
int cmd_stream(const ParsedFlags& args) {
  const std::string model_path = args.require("model");
  const std::string data_path = args.require("data");
  const auto out = args.get("out");
  const auto state_path = args.get("state");
  DriftConfig drift_config;
  drift_config.alpha = args.get_double("alpha", drift_config.alpha);
  drift_config.min_samples = args.get_size("min-samples", drift_config.min_samples);
  const std::size_t window = args.get_size("window", 256);
  const std::size_t chunk_rows = args.get_size("chunk", 256);
  const bool retrain = args.get_flag("retrain");
  const std::string publish = args.get("publish").value_or(model_path);
  const std::size_t seed = args.get_size("seed", 23);
  if (window < 2) throw std::invalid_argument("--window must be at least 2");
  if (chunk_rows == 0) throw std::invalid_argument("--chunk must be positive");

  FracModel model = FracModel::load_file(model_path);
  const Dataset stream = load_dataset_any(data_path);
  const bool resume = state_path && std::ifstream(*state_path).good();
  DriftMonitor monitor = [&] {
    if (resume) return DriftMonitor::load_file(*state_path);
    const auto baseline = args.get("baseline");
    if (!baseline) {
      throw std::invalid_argument(
          "--baseline is required (no --state snapshot to resume from)");
    }
    return DriftMonitor(load_ns_baseline(*baseline), drift_config);
  }();
  if (retrain && !model.has_dual_state()) {
    std::cerr << "warning: model carries no dual state (train with "
                 "--retain-duals); drift triggers cold refits\n";
  }

  static Counter& samples_metric = metrics_counter("stream.samples");
  static Counter& drifts_metric = metrics_counter("stream.drifts");
  static Counter& retrains_metric = metrics_counter("stream.retrains");
  static Histogram& retrain_seconds = metrics_histogram("stream.retrain_seconds");

  ThreadPool& pool = ThreadPool::global();
  struct StreamRow {
    double ns;
    double statistic;
    bool drifted;
    std::size_t generation;
  };
  std::vector<StreamRow> rows;
  rows.reserve(stream.sample_count());
  std::size_t generation = 0, drifts = 0, retrains = 0;

  std::size_t pos = 0;
  while (pos < stream.sample_count()) {
    const std::size_t end = std::min(pos + chunk_rows, stream.sample_count());
    std::vector<std::size_t> indices;
    indices.reserve(end - pos);
    for (std::size_t i = pos; i < end; ++i) indices.push_back(i);
    const std::vector<double> ns = model.score(stream.select_samples(indices), pool);
    bool fired = false;
    for (const double value : ns) {
      const bool was_drifted = monitor.drifted();
      monitor.observe(value);
      if (!was_drifted && monitor.drifted()) {
        fired = true;
        ++drifts;
        drifts_metric.add();
        std::cerr << "stream: drift at sample " << rows.size()
                  << " (S=" << format("%.3f", monitor.statistic())
                  << " >= " << format("%.3f", monitor.threshold()) << ")\n";
      }
      rows.push_back({value, monitor.statistic(), monitor.drifted(), generation});
    }
    samples_metric.add(ns.size());
    pos = end;

    if (fired && retrain) {
      // Refit on the older rows of the trailing window and rearm the monitor
      // on the newest third, scored held-out by the refreshed model. The
      // split matters: FRaC's NS on rows a model trained on is biased low
      // (the retained predictors have seen them), so an in-sample rebaseline
      // makes every subsequent held-out sample look surprising and the
      // monitor re-fires forever.
      const std::size_t lo = pos > window ? pos - window : 0;
      const std::size_t n = pos - lo;
      const std::size_t calib = std::clamp<std::size_t>(n / 3, 1, n - 1);
      std::vector<std::size_t> recent_idx, calib_idx;
      recent_idx.reserve(n - calib);
      calib_idx.reserve(calib);
      for (std::size_t i = lo; i < pos - calib; ++i) recent_idx.push_back(i);
      for (std::size_t i = pos - calib; i < pos; ++i) calib_idx.push_back(i);
      const Dataset recent = stream.select_samples(recent_idx);
      FracConfig config;
      config.seed = seed;
      config.retain_duals = true;
      const WallStopwatch refit_watch;
      FracModel next = [&] {
        if (model.has_dual_state()) return model.warm_retrain(recent, config, pool);
        // Cold fallback preserving the model's plan (full retrain, same units).
        std::vector<FeaturePlan> plan;
        plan.reserve(model.unit_count());
        for (std::size_t u = 0; u < model.unit_count(); ++u) {
          plan.push_back(model.unit_plan(u));
        }
        return FracModel::train_with_plan(recent, std::move(plan), config, pool);
      }();
      retrain_seconds.observe(refit_watch.seconds());
      ++retrains;
      retrains_metric.add();
      next.save_file(publish);
      monitor.rebaseline(next.score(stream.select_samples(calib_idx), pool));
      model = std::move(next);
      ++generation;
      std::cerr << "stream: retrained on " << recent_idx.size() << " rows in "
                << format("%.2f", refit_watch.seconds()) << "s ("
                << (model.has_dual_state() ? "warm" : "cold") << "); published generation "
                << generation << " to " << publish << "\n";
    }
  }

  if (out) {
    atomic_write_file(*out, [&](std::ostream& csv) {
      csv << "sample,ns,statistic,drifted,generation\n";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        csv << i << ',' << format("%.17g", rows[i].ns) << ','
            << format("%.17g", rows[i].statistic) << ',' << (rows[i].drifted ? 1 : 0) << ','
            << rows[i].generation << '\n';
      }
      if (!csv) throw IoError("stream CSV " + *out + ": stream write failed");
    });
  }
  if (state_path) monitor.save_file(*state_path);

  std::cerr << "stream: " << rows.size() << " samples, " << drifts << " drifts, " << retrains
            << " retrains (final generation " << generation << ")\n";
  if (g_manifest != nullptr) {
    g_manifest->set("stream.model", model_path);
    g_manifest->set_measured("stream.samples", static_cast<std::uint64_t>(rows.size()));
    g_manifest->set_measured("stream.drifts", static_cast<std::uint64_t>(drifts));
    g_manifest->set_measured("stream.retrains", static_cast<std::uint64_t>(retrains));
  }
  return 0;
}

const CommandSpec* find_command(const std::string& name) {
  for (const CommandSpec& spec : command_specs()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << overview_help(command_specs());
    return 1;
  }
  const std::string command = argv[1];
  if (command == "--help" || command == "-h" || command == "help") {
    std::cout << overview_help(command_specs());
    return 0;
  }
  const CommandSpec* spec = find_command(command);
  if (spec == nullptr) {
    std::cerr << "frac: unknown command '" << command << "'\n\n"
              << overview_help(command_specs());
    return 1;
  }

  RunManifest manifest("frac " + command);
  {
    std::string argv_line = command;
    for (int i = 2; i < argc; ++i) argv_line += std::string(" ") + argv[i];
    manifest.set("argv", argv_line);
  }
  g_manifest = &manifest;
  // Env-only fallback keeps observability working even when flag parsing
  // fails; successful parses re-resolve with flags taking precedence.
  RuntimeConfig config;
  try {
    config = RuntimeConfig::resolve_env_only();
  } catch (const std::invalid_argument& e) {
    std::cerr << "usage error: " << e.what() << "\n";
    return 1;
  }

  const WallStopwatch wall;
  int rc;
  {
    const CpuStopwatch cpu;
    rc = [&]() -> int {
      try {
        const ParsedFlags args = parse_flags(*spec, argc, argv, 2);
        if (args.help_requested()) {
          std::cout << command_help(*spec);
          return 0;
        }
        config = RuntimeConfig::resolve(
            [&](const std::string& name) { return args.get(name); });
        config.apply();
        if (command == "list-cohorts") return cmd_list_cohorts();
        if (command == "generate") return cmd_generate(args);
        if (command == "train") return cmd_train(args);
        if (command == "shard-train") return cmd_shard_train(args);
        if (command == "merge") return cmd_merge(args);
        if (command == "score") return cmd_score(args);
        if (command == "explain") return cmd_explain(args);
        if (command == "detect") return cmd_detect(args);
        if (command == "grid") return cmd_grid(args);
        if (command == "convert") return cmd_convert(args);
        if (command == "stream") return cmd_stream(args);
        return cmd_serve(args);
      } catch (const ParseError& e) {
        std::cerr << "parse error: " << e.what() << "\n";
        return 4;
      } catch (const std::invalid_argument& e) {
        std::cerr << "usage error: " << e.what() << "\n";
        return 1;
      } catch (const IoError& e) {
        std::cerr << "io error: " << e.what() << "\n";
        return 3;
      } catch (const std::ios_base::failure& e) {
        std::cerr << "io error: " << e.what() << "\n";
        return 3;
      } catch (const NumericError& e) {
        std::cerr << "numeric error: " << e.what() << "\n";
        return 5;
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }();
    manifest.add_phase(command, wall.seconds(), cpu.seconds());
  }

  // Observability tail: flush the trace (the atexit backstop would too, but
  // flushing before the manifest/metrics writes keeps the artifacts
  // consistent with each other), dump metrics, publish the manifest. None of
  // these may change the command's exit code.
  try {
    flush_trace();
    if (!config.metrics_path.empty()) {
      atomic_write_file(config.metrics_path, [](std::ostream& out) { metrics_dump(out); });
    }
    if (!config.manifest_path.empty()) {
      manifest.set_measured("exit_code", static_cast<std::uint64_t>(rc));
      manifest.capture_metrics();
      manifest.write_file(config.manifest_path);
    }
  } catch (const std::exception& e) {
    std::cerr << "warning: failed to write observability output: " << e.what() << "\n";
  }
  g_manifest = nullptr;
  return rc;
}
