// frac — command-line front end for the library.
//
// Subcommands:
//   frac list-cohorts
//       List the paper-analog synthetic cohorts.
//   frac generate --cohort NAME --out FILE.csv
//       Write a synthetic cohort as a dataset CSV.
//   frac train --data TRAIN.csv --model OUT.frac [--diverse P]
//       Train (full or diverse) FRaC on an all-normal training CSV and
//       persist the model.
//   frac score --model M.frac --data TEST.csv [--out SCORES.csv] [--explain K]
//       Score a test CSV with a saved model; prints AUC when the CSV has
//       both labels. --explain K additionally prints each test sample's
//       top-K per-feature NS contributions.
//   frac explain --model M.frac --data TEST.csv --sample I [--top K]
//       Why is sample I anomalous? Prints its NS and the top-K features by
//       NS contribution, with each feature's most influential predictors.
//   frac detect --train TRAIN.csv --test TEST.csv --method METHOD [options]
//       One-shot train+score with any variant:
//         full | filter-ensemble | entropy | partial | diverse |
//         diverse-ensemble | jl
//       Options: --keep P (filters, default 0.05), --members N (ensembles,
//       default 10), --p P (diverse, default 0.5), --dim K (jl, default 64),
//       --seed S, --out SCORES.csv
//   frac grid [--cohorts A,B --methods M1,M2 --replicates N --seed S]
//             [--checkpoint FILE [--resume]] [--out REPORT.csv]
//       Run the (cohort, method, replicate) experiment grid with per-cell
//       failure isolation. Every finished cell is persisted atomically to
//       --checkpoint; --resume skips cells the checkpoint already holds, and
//       the resumed report is byte-identical to an uninterrupted run's.
//       SIGINT stops cleanly between cells (exit 130).
//
// Observability (any subcommand):
//   --manifest FILE or FRAC_MANIFEST=FILE  write a JSON run manifest
//   FRAC_METRICS=FILE                      dump the metrics registry at exit
//   FRAC_TRACE=FILE                        collect a chrome://tracing JSON
//
// Exit codes: 0 success, 1 usage error, 2 internal failure, 3 I/O failure,
// 4 parse failure, 5 numeric failure, 130 interrupted.
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "data/io.hpp"
#include "expt/grid.hpp"
#include "expt/registry.hpp"
#include "frac/diverse.hpp"
#include "frac/ensemble.hpp"
#include "frac/filtering.hpp"
#include "frac/preprojection.hpp"
#include "ml/metrics.hpp"
#include "util/atomic_file.hpp"
#include "util/errors.hpp"
#include "util/manifest.hpp"
#include "util/metrics.hpp"
#include "util/stopwatch.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace {

using namespace frac;

/// The run's manifest, enriched by the active subcommand (seeds, grid shape,
/// outcome counts) and written at exit when --manifest or FRAC_MANIFEST
/// names a path.
RunManifest* g_manifest = nullptr;

/// --flag value option list; flags without '--' are rejected. Flags named in
/// `boolean` take no value ("--resume" style switches).
class Args {
 public:
  Args(int argc, char** argv, int first, const std::set<std::string>& boolean = {}) {
    for (int i = first; i < argc; ++i) {
      const std::string flag = argv[i];
      if (!starts_with(flag, "--")) {
        throw std::invalid_argument("expected --flag, got '" + flag + "'");
      }
      const std::string key = flag.substr(2);
      if (boolean.contains(key)) {
        values_[key] = "true";
        continue;
      }
      if (i + 1 >= argc) throw std::invalid_argument("missing value for " + flag);
      values_[key] = argv[++i];
    }
  }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    used_.insert(key);
    return it->second;
  }

  bool get_flag(const std::string& key) const { return get(key).has_value(); }

  std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required --" + key);
    return *v;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? parse_double(*v, "--" + key) : fallback;
  }

  std::size_t get_size(const std::string& key, std::size_t fallback) const {
    const auto v = get(key);
    return v ? parse_size(*v, "--" + key) : fallback;
  }

  void reject_unused() const {
    for (const auto& [key, value] : values_) {
      if (!used_.contains(key)) throw std::invalid_argument("unknown option --" + key);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

void write_scores(const std::string& path, const std::vector<double>& scores,
                  const Dataset& test) {
  atomic_write_file(path, [&](std::ostream& out) {
    out << "sample,ns,label\n";
    for (std::size_t i = 0; i < scores.size(); ++i) {
      out << i << ',' << format("%.17g", scores[i]) << ','
          << (test.label(i) == Label::kAnomaly ? "anomaly" : "normal") << '\n';
    }
    if (!out) throw IoError("score CSV " + path + ": stream write failed");
  });
}

void print_auc_if_labeled(const std::vector<double>& scores, const Dataset& test) {
  if (test.anomaly_count() > 0 && test.normal_count() > 0) {
    std::cout << "AUC: " << format("%.4f", auc(scores, test.labels())) << "\n";
  } else {
    std::cout << "(single-class test set: no AUC)\n";
  }
}

int cmd_list_cohorts() {
  for (const CohortSpec& spec : paper_cohorts()) {
    std::cout << spec.name << "  ("
              << (spec.kind == CohortKind::kExpression ? "expression" : "SNP") << ", "
              << spec.scaled_features() << " features, " << spec.normal_samples << " normal + "
              << spec.anomaly_samples << " anomaly)\n";
  }
  return 0;
}

int cmd_generate(const Args& args) {
  const std::string name = args.require("cohort");
  const std::string out = args.require("out");
  args.reject_unused();
  const CohortSpec& spec = cohort_by_name(name);
  if (spec.ancestry_confound) {
    const Replicate rep = make_confounded_replicate(spec);
    save_dataset_csv(out + ".train.csv", rep.train);
    save_dataset_csv(out + ".test.csv", rep.test);
    std::cout << "wrote " << out << ".train.csv and " << out << ".test.csv\n";
  } else {
    save_dataset_csv(out, make_cohort(spec));
    std::cout << "wrote " << out << "\n";
  }
  return 0;
}

int cmd_train(const Args& args) {
  const std::string data_path = args.require("data");
  const std::string model_path = args.require("model");
  const double diverse_p = args.get_double("diverse", 0.0);
  const std::size_t seed = args.get_size("seed", 23);
  args.reject_unused();
  if (g_manifest != nullptr) g_manifest->set("train.seed", static_cast<std::uint64_t>(seed));

  const Dataset train = load_dataset_csv(data_path);
  if (train.anomaly_count() != 0) {
    std::cerr << "warning: training set contains " << train.anomaly_count()
              << " anomaly-labeled samples; FRaC assumes (mostly) normal training data\n";
  }
  FracConfig config;
  config.seed = seed;
  ThreadPool& pool = ThreadPool::global();  // sized by FRAC_THREADS
  FracModel model = [&] {
    if (diverse_p > 0.0) {
      Rng rng(seed);
      return FracModel::train_with_plan(
          train, make_diverse_plan(train.feature_count(), diverse_p, 1, rng), config, pool);
    }
    return FracModel::train(train, config, pool);
  }();
  model.save_file(model_path);
  std::cout << "trained " << model.unit_count() << " units on " << train.sample_count()
            << " samples; saved to " << model_path << "\n";
  return 0;
}

int cmd_score(const Args& args) {
  const std::string model_path = args.require("model");
  const std::string data_path = args.require("data");
  const std::size_t explain_k = args.get_size("explain", 0);
  const auto out = args.get("out");
  args.reject_unused();

  const FracModel model = FracModel::load_file(model_path);
  const Dataset test = load_dataset_csv(data_path);
  ThreadPool& pool = ThreadPool::global();  // sized by FRAC_THREADS
  const std::vector<double> scores = model.score(test, pool);
  if (out) write_scores(*out, scores, test);
  print_auc_if_labeled(scores, test);
  if (explain_k > 0) {
    // Per-sample NS decomposition: the top-k features by contribution, one
    // line per test sample.
    const Matrix per_feature = model.per_feature_scores(test, pool);
    const Schema& schema = test.schema();
    std::cout << "top " << explain_k << " NS contributions per sample:\n";
    std::vector<std::pair<double, std::size_t>> ranked;
    for (std::size_t r = 0; r < per_feature.rows(); ++r) {
      ranked.clear();
      for (std::size_t f = 0; f < per_feature.cols(); ++f) {
        const double v = per_feature(r, f);
        if (!is_missing(v)) ranked.emplace_back(v, f);
      }
      std::sort(ranked.rbegin(), ranked.rend());
      std::cout << "sample " << r << " NS=" << format("%.3f", scores[r]) << ":";
      for (std::size_t i = 0; i < std::min(explain_k, ranked.size()); ++i) {
        std::cout << ' ' << schema[ranked[i].second].name << '='
                  << format("%+.3f", ranked[i].first);
      }
      std::cout << '\n';
    }
  }
  return 0;
}

int cmd_explain(const Args& args) {
  const std::string model_path = args.require("model");
  const std::string data_path = args.require("data");
  const std::size_t sample = args.get_size("sample", 0);
  const std::size_t top = args.get_size("top", 10);
  args.reject_unused();

  const FracModel model = FracModel::load_file(model_path);
  const Dataset test = load_dataset_csv(data_path);
  if (sample >= test.sample_count()) {
    throw std::invalid_argument(format("sample %zu out of %zu", sample, test.sample_count()));
  }
  ThreadPool& pool = ThreadPool::global();  // sized by FRAC_THREADS
  const Dataset one = test.select_samples({sample});
  const Matrix per_feature = model.per_feature_scores(one, pool);

  double total = 0.0;
  std::vector<std::pair<double, std::size_t>> ranked;
  for (std::size_t f = 0; f < per_feature.cols(); ++f) {
    const double v = per_feature(0, f);
    if (is_missing(v)) continue;
    total += v;
    ranked.emplace_back(v, f);
  }
  std::sort(ranked.rbegin(), ranked.rend());

  std::cout << "sample " << sample << "  label="
            << (test.label(sample) == Label::kAnomaly ? "anomaly" : "normal")
            << "  NS=" << format("%.3f", total) << "\n\n";
  std::cout << "top " << std::min(top, ranked.size()) << " contributing features:\n";
  // Map feature index -> first unit with that target (for influential inputs).
  std::map<std::size_t, std::size_t> unit_of;
  for (std::size_t u = 0; u < model.unit_count(); ++u) {
    unit_of.try_emplace(model.unit_plan(u).target, u);
  }
  const Schema& schema = test.schema();  // model.score already verified the match
  for (std::size_t i = 0; i < std::min(top, ranked.size()); ++i) {
    const auto [score, f] = ranked[i];
    std::cout << "  " << schema[f].name << "  NS=" << format("%+.3f", score);
    const auto it = unit_of.find(f);
    if (it != unit_of.end()) {
      const auto inputs = model.influential_inputs(it->second, 3);
      if (!inputs.empty()) {
        std::cout << "  predicted from:";
        for (const std::size_t j : inputs) std::cout << ' ' << schema[j].name;
      }
    }
    std::cout << "\n";
  }
  return 0;
}

int cmd_detect(const Args& args) {
  const std::string train_path = args.require("train");
  const std::string test_path = args.require("test");
  const std::string method = args.require("method");
  const double keep = args.get_double("keep", 0.05);
  const std::size_t members = args.get_size("members", 10);
  const double p = args.get_double("p", 0.5);
  const std::size_t dim = args.get_size("dim", 64);
  const std::size_t seed = args.get_size("seed", 23);
  const auto out = args.get("out");
  args.reject_unused();
  if (g_manifest != nullptr) {
    g_manifest->set("detect.method", method);
    g_manifest->set("detect.seed", static_cast<std::uint64_t>(seed));
  }

  Replicate rep{load_dataset_csv(train_path), load_dataset_csv(test_path)};
  FracConfig config;
  config.seed = seed;
  // Trees for categorical-majority data, SVR otherwise (the paper's choice).
  std::size_t categorical = 0;
  for (std::size_t f = 0; f < rep.train.feature_count(); ++f) {
    categorical += rep.train.schema().is_categorical(f);
  }
  if (2 * categorical > rep.train.feature_count()) {
    config.predictor.classifier = ClassifierKind::kDecisionTree;
    config.predictor.regressor = RegressorKind::kRegressionTree;
    config.predictor.tree.max_depth = 6;
  }

  ThreadPool& pool = ThreadPool::global();  // sized by FRAC_THREADS
  Rng rng(seed);
  ScoredRun run;
  if (method == "full") run = run_frac(rep, config, pool);
  else if (method == "filter-ensemble")
    run = run_random_filter_ensemble(rep, config, keep, members, rng, pool);
  else if (method == "entropy")
    run = run_full_filtered_frac(rep, config, FilterMethod::kEntropy, keep, rng, pool);
  else if (method == "partial")
    run = run_partial_filtered_frac(rep, config, FilterMethod::kRandom, keep, rng, pool);
  else if (method == "diverse") run = run_diverse_frac(rep, config, p, 1, rng, pool);
  else if (method == "diverse-ensemble")
    run = run_diverse_ensemble(rep, config, p, members, rng, pool);
  else if (method == "jl") {
    JlPipelineConfig jl;
    jl.output_dim = dim;
    jl.seed = seed;
    run = run_jl_frac(rep, config, jl, pool);
  } else {
    throw std::invalid_argument("unknown method '" + method + "'");
  }

  if (out) write_scores(*out, run.test_scores, rep.test);
  print_auc_if_labeled(run.test_scores, rep.test);
  std::cout << "cpu: " << format("%.2f", run.resources.cpu_seconds)
            << "s  model-mem: " << run.resources.peak_bytes << " bytes  models: "
            << run.resources.models_retained << "\n";
  return 0;
}

volatile std::sig_atomic_t g_interrupted = 0;

void handle_sigint(int) { g_interrupted = 1; }

/// Stop cleanly between grid cells on Ctrl-C: every finished cell is already
/// checkpointed, so `frac grid --resume` picks up exactly where this left off.
void install_sigint_handler() {
  struct sigaction action {};
  action.sa_handler = handle_sigint;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
}

int cmd_grid(const Args& args) {
  GridConfig config;
  if (const auto v = args.get("cohorts")) config.cohorts = split(*v, ',');
  if (const auto v = args.get("methods")) config.methods = split(*v, ',');
  config.replicates = args.get_size("replicates", config.replicates);
  config.seed = args.get_size("seed", 23);
  config.params.keep_fraction = args.get_double("keep", config.params.keep_fraction);
  config.params.members = args.get_size("members", config.params.members);
  config.params.diverse_p = args.get_double("p", config.params.diverse_p);
  config.params.jl_dim = args.get_size("dim", config.params.jl_dim);
  if (const auto v = args.get("checkpoint")) config.checkpoint_path = *v;
  config.resume = args.get_flag("resume");
  const auto out = args.get("out");
  args.reject_unused();
  if (config.resume && config.checkpoint_path.empty()) {
    throw std::invalid_argument("--resume requires --checkpoint");
  }

  if (g_manifest != nullptr) {
    g_manifest->set("grid.seed", static_cast<std::uint64_t>(config.seed));
    g_manifest->set("grid.replicates", static_cast<std::uint64_t>(config.replicates));
    std::string cohorts_csv, methods_csv;
    for (const std::string& c : config.cohorts) {
      cohorts_csv += (cohorts_csv.empty() ? "" : ",") + c;
    }
    for (const std::string& m : config.methods) {
      methods_csv += (methods_csv.empty() ? "" : ",") + m;
    }
    g_manifest->set("grid.cohorts", cohorts_csv.empty() ? "(all)" : cohorts_csv);
    g_manifest->set("grid.methods", methods_csv.empty() ? "(all)" : methods_csv);
  }

  install_sigint_handler();
  ThreadPool& pool = ThreadPool::global();  // sized by FRAC_THREADS
  const GridOutcome outcome =
      run_experiment_grid(config, pool, [] { return g_interrupted != 0; });
  if (g_manifest != nullptr) {
    // Failure counts are a pure function of (config, seed): deterministic.
    // How many cells ran vs. resumed from a checkpoint is not.
    g_manifest->set("grid.cells_total", static_cast<std::uint64_t>(outcome.cells.size()));
    g_manifest->set("grid.cells_failed", static_cast<std::uint64_t>(outcome.cells_failed));
    g_manifest->set_measured("grid.cells_run", static_cast<std::uint64_t>(outcome.cells_run));
    g_manifest->set_measured("grid.cells_skipped",
                             static_cast<std::uint64_t>(outcome.cells_skipped));
  }

  if (out) {
    atomic_write_file(*out, [&](std::ostream& report) {
      write_grid_report(report, outcome.cells);
      if (!report) throw IoError("grid report " + *out + ": stream write failed");
    });
  } else if (!outcome.interrupted) {
    write_grid_report(std::cout, outcome.cells);
  }

  std::cerr << "grid: " << outcome.cells_run << " cells run, " << outcome.cells_skipped
            << " resumed from checkpoint, " << outcome.cells_failed << " failed\n";
  if (outcome.interrupted) {
    std::cerr << "interrupted: finished cells are checkpointed; rerun with --resume\n";
    return 130;
  }
  return 0;
}

int usage() {
  std::cerr << "usage: frac <list-cohorts|generate|train|score|detect|grid> [--options]\n"
               "see the header of src/tools/frac_cli.cpp or README.md for details\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  RunManifest manifest("frac " + command);
  {
    std::string argv_line = command;
    for (int i = 2; i < argc; ++i) argv_line += std::string(" ") + argv[i];
    manifest.set("argv", argv_line);
  }
  g_manifest = &manifest;
  std::optional<std::string> manifest_path;
  if (const char* env = std::getenv("FRAC_MANIFEST")) manifest_path = env;

  const WallStopwatch wall;
  int rc;
  {
    const CpuStopwatch cpu;
    rc = [&]() -> int {
      try {
        const Args args(argc, argv, 2, command == "grid" ? std::set<std::string>{"resume"}
                                                         : std::set<std::string>{});
        // --manifest works on every subcommand (FRAC_MANIFEST is the env
        // equivalent); consume it before the command rejects unused flags.
        if (const auto v = args.get("manifest")) manifest_path = *v;
        if (command == "list-cohorts") return cmd_list_cohorts();
        if (command == "generate") return cmd_generate(args);
        if (command == "train") return cmd_train(args);
        if (command == "score") return cmd_score(args);
        if (command == "explain") return cmd_explain(args);
        if (command == "detect") return cmd_detect(args);
        if (command == "grid") return cmd_grid(args);
        return usage();
      } catch (const ParseError& e) {
        std::cerr << "parse error: " << e.what() << "\n";
        return 4;
      } catch (const std::invalid_argument& e) {
        std::cerr << "usage error: " << e.what() << "\n";
        return 1;
      } catch (const IoError& e) {
        std::cerr << "io error: " << e.what() << "\n";
        return 3;
      } catch (const std::ios_base::failure& e) {
        std::cerr << "io error: " << e.what() << "\n";
        return 3;
      } catch (const NumericError& e) {
        std::cerr << "numeric error: " << e.what() << "\n";
        return 5;
      } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }
    }();
    manifest.add_phase(command, wall.seconds(), cpu.seconds());
  }

  // Observability tail: flush the trace (the atexit backstop would too, but
  // flushing before the manifest/metrics writes keeps the artifacts
  // consistent with each other), dump metrics, publish the manifest. None of
  // these may change the command's exit code.
  try {
    flush_trace();
    if (const char* metrics_path = std::getenv("FRAC_METRICS")) {
      atomic_write_file(metrics_path, [](std::ostream& out) { metrics_dump(out); });
    }
    if (manifest_path) {
      manifest.set_measured("exit_code", static_cast<std::uint64_t>(rc));
      manifest.capture_metrics();
      manifest.write_file(*manifest_path);
    }
  } catch (const std::exception& e) {
    std::cerr << "warning: failed to write observability output: " << e.what() << "\n";
  }
  g_manifest = nullptr;
  return rc;
}
