// Process-wide runtime configuration, resolved once at startup.
//
// Library code never reads the environment: every runtime knob (threads,
// SIMD level, logging, fault plan, observability paths) is resolved here —
// command-line flag first, FRAC_* environment variable second — and pushed
// into the subsystems by apply(). That keeps precedence in one place,
// makes `frac --threads 4` and `FRAC_THREADS=4 frac` provably identical,
// and leaves src/frac, src/ml, src/linalg, and src/parallel free of getenv.
#pragma once

#include <functional>
#include <optional>
#include <string>

namespace frac {

struct RuntimeConfig {
  std::size_t threads = 0;    ///< worker threads; 0 = hardware concurrency
  std::string simd;           ///< "scalar" | "avx2"; "" = detected
  std::string log_level;      ///< debug|info|warn|error|off; "" = default
  std::string fault_spec;     ///< FRAC_FAULTS syntax; "" = disarmed
  std::string trace_path;     ///< chrome://tracing output; "" = off
  std::string metrics_path;   ///< metrics registry dump; "" = off
  std::string manifest_path;  ///< run manifest; "" = off
  bool force_poll = false;    ///< poll(2) event-loop backend even with epoll

  /// Flag accessor: returns the value of "--<name>" when given, nullopt
  /// otherwise (ParsedFlags::get wrapped in a lambda, or {} for env-only).
  using FlagLookup = std::function<std::optional<std::string>(const std::string&)>;

  /// Resolves every knob, flag-then-environment. Throws
  /// std::invalid_argument on a malformed --threads / FRAC_THREADS value
  /// (usage error, exit 1); the softer knobs (simd, log level) defer
  /// validation to apply(), which warns and falls back instead.
  static RuntimeConfig resolve(const FlagLookup& flags);

  /// resolve() with no flags: environment only (benches, tests).
  static RuntimeConfig resolve_env_only();

  /// Pushes the resolved config into the subsystems: global pool size,
  /// kernel dispatch level, log threshold, fault plan, trace arming. Call
  /// once, before the first use of ThreadPool::global(). The observability
  /// paths are consumed by the caller at exit (they are outputs, not
  /// subsystem state).
  void apply() const;
};

}  // namespace frac
