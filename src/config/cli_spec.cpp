#include "config/cli_spec.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace frac {

const char* const kExitCodeContract =
    "exit codes:\n"
    "  0    success\n"
    "  1    usage or configuration error (unknown flag, bad value)\n"
    "  2    internal failure\n"
    "  3    I/O failure (missing file, full disk)\n"
    "  4    parse failure (malformed CSV, model, archive, or request)\n"
    "  5    numeric failure (non-finite or degenerate computation)\n"
    "  130  interrupted (SIGINT; finished grid cells stay checkpointed)\n";

std::span<const FlagSpec> runtime_flags() {
  static const std::vector<FlagSpec> kFlags = {
      {"help", FlagKind::kBool, false, "", "print this help and exit"},
      {"threads", FlagKind::kSize, false, "N",
       "worker threads (default: FRAC_THREADS, else hardware concurrency)"},
      {"simd", FlagKind::kString, false, "LEVEL",
       "kernel dispatch: scalar|avx2 (default: FRAC_SIMD, else detected)"},
      {"log", FlagKind::kString, false, "LEVEL",
       "log threshold: debug|info|warn|error|off (default: FRAC_LOG)"},
      {"faults", FlagKind::kString, false, "SPEC",
       "fault-injection plan, e.g. predictor_train:0.1:42 (default: FRAC_FAULTS)"},
      {"trace", FlagKind::kString, false, "FILE",
       "collect a chrome://tracing JSON (default: FRAC_TRACE)"},
      {"metrics", FlagKind::kString, false, "FILE",
       "dump the metrics registry at exit (default: FRAC_METRICS)"},
      {"manifest", FlagKind::kString, false, "FILE",
       "write a JSON run manifest at exit (default: FRAC_MANIFEST)"},
      {"force-poll", FlagKind::kBool, false, "",
       "use the poll(2) event-loop backend even where epoll is available "
       "(default: FRAC_FORCE_POLL)"},
  };
  return kFlags;
}

namespace {

const FlagSpec* find_flag(const CommandSpec& spec, const std::string& name) {
  for (const FlagSpec& flag : spec.flags) {
    if (flag.name == name) return &flag;
  }
  for (const FlagSpec& flag : runtime_flags()) {
    if (flag.name == name) return &flag;
  }
  return nullptr;
}

void append_flag_lines(std::string& out, std::span<const FlagSpec> flags) {
  for (const FlagSpec& flag : flags) {
    std::string head = "  --" + flag.name;
    if (!flag.value_name.empty()) head += " " + flag.value_name;
    out += head;
    if (head.size() < 24) out += std::string(24 - head.size(), ' ');
    else out += "\n" + std::string(24, ' ');
    out += flag.help;
    if (flag.required) out += " (required)";
    out += "\n";
  }
}

}  // namespace

std::optional<std::string> ParsedFlags::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ParsedFlags::require(const std::string& name) const {
  const auto v = get(name);
  if (!v) throw std::invalid_argument("missing required --" + name);
  return *v;
}

bool ParsedFlags::get_flag(const std::string& name) const { return get(name).has_value(); }

double ParsedFlags::get_double(const std::string& name, double fallback) const {
  const auto v = get(name);
  return v ? parse_double(*v, "--" + name) : fallback;
}

std::size_t ParsedFlags::get_size(const std::string& name, std::size_t fallback) const {
  const auto v = get(name);
  return v ? parse_size(*v, "--" + name) : fallback;
}

ParsedFlags parse_flags(const CommandSpec& spec, int argc, char** argv, int first) {
  ParsedFlags parsed;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (!starts_with(token, "--")) {
      throw std::invalid_argument("frac " + spec.name + ": expected --flag, got '" + token +
                                  "' (see frac " + spec.name + " --help)");
    }
    const std::string name = token.substr(2);
    const FlagSpec* flag = find_flag(spec, name);
    if (flag == nullptr) {
      throw std::invalid_argument("frac " + spec.name + ": unknown option --" + name +
                                  " (see frac " + spec.name + " --help)");
    }
    if (flag->kind == FlagKind::kBool) {
      parsed.values_[name] = "true";
      if (name == "help") parsed.help_ = true;
      continue;
    }
    if (i + 1 >= argc) {
      throw std::invalid_argument("frac " + spec.name + ": missing value for --" + name);
    }
    const std::string value = argv[++i];
    // Eager validation: a numeric typo fails at parse time, before any work.
    if (flag->kind == FlagKind::kSize) parse_size(value, "--" + name);
    if (flag->kind == FlagKind::kDouble) parse_double(value, "--" + name);
    parsed.values_[name] = value;
  }
  if (!parsed.help_) {
    for (const FlagSpec& flag : spec.flags) {
      if (flag.required && !parsed.values_.contains(flag.name)) {
        throw std::invalid_argument("frac " + spec.name + ": missing required --" + flag.name +
                                    " (see frac " + spec.name + " --help)");
      }
    }
  }
  return parsed;
}

std::string command_help(const CommandSpec& spec) {
  std::string out = "usage: frac " + spec.name;
  if (!spec.usage_tail.empty()) out += " " + spec.usage_tail;
  out += "\n\n" + spec.summary + "\n";
  if (!spec.flags.empty()) {
    out += "\noptions:\n";
    append_flag_lines(out, spec.flags);
  }
  out += "\nruntime options (every command; flag beats environment variable):\n";
  append_flag_lines(out, runtime_flags());
  out += "\n";
  out += kExitCodeContract;
  return out;
}

std::string overview_help(std::span<const CommandSpec> commands) {
  std::string out = "usage: frac <command> [--options]\n\ncommands:\n";
  for (const CommandSpec& spec : commands) {
    std::string head = "  " + spec.name;
    if (head.size() < 16) out += head + std::string(16 - head.size(), ' ');
    else out += head + " ";
    out += spec.summary + "\n";
  }
  out += "\nrun 'frac <command> --help' for that command's options.\n\n";
  out += kExitCodeContract;
  return out;
}

}  // namespace frac
