#include "config/runtime_config.hpp"

#include <cstdlib>

#include "linalg/simd.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/event_loop.hpp"
#include "util/fault_injection.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

namespace {

/// Flag value if given, else the (non-empty) environment value, else "".
std::string pick(const RuntimeConfig::FlagLookup& flags, const std::string& flag_name,
                 const char* env_name) {
  if (flags) {
    if (const auto v = flags(flag_name)) return *v;
  }
  if (const char* env = std::getenv(env_name); env != nullptr && *env != '\0') {
    return env;
  }
  return "";
}

bool parse_log_level(const std::string& name, LogLevel* out) {
  if (name == "debug") *out = LogLevel::kDebug;
  else if (name == "info") *out = LogLevel::kInfo;
  else if (name == "warn") *out = LogLevel::kWarn;
  else if (name == "error") *out = LogLevel::kError;
  else if (name == "off") *out = LogLevel::kOff;
  else return false;
  return true;
}

}  // namespace

RuntimeConfig RuntimeConfig::resolve(const FlagLookup& flags) {
  RuntimeConfig config;
  const std::string threads = pick(flags, "threads", "FRAC_THREADS");
  if (!threads.empty()) {
    // Strict: a mistyped thread count silently running single-threaded (or
    // unbounded) would corrupt every timing result. Throws invalid_argument.
    config.threads = parse_size(threads, "--threads / FRAC_THREADS");
  }
  config.simd = pick(flags, "simd", "FRAC_SIMD");
  config.log_level = pick(flags, "log", "FRAC_LOG");
  config.fault_spec = pick(flags, "faults", "FRAC_FAULTS");
  config.trace_path = pick(flags, "trace", "FRAC_TRACE");
  config.metrics_path = pick(flags, "metrics", "FRAC_METRICS");
  config.manifest_path = pick(flags, "manifest", "FRAC_MANIFEST");
  const std::string force_poll = pick(flags, "force-poll", "FRAC_FORCE_POLL");
  config.force_poll = !force_poll.empty() && force_poll != "0" && force_poll != "false";
  return config;
}

RuntimeConfig RuntimeConfig::resolve_env_only() { return resolve(FlagLookup{}); }

void RuntimeConfig::apply() const {
  ThreadPool::set_default_thread_count(threads);
  simd::request_level(simd);
  EventLoop::set_force_poll(force_poll);
  if (!log_level.empty()) {
    LogLevel level = LogLevel::kWarn;
    if (parse_log_level(log_level, &level)) {
      set_log_level(level);
    } else {
      FRAC_WARN << "unrecognized log level '" << log_level
                << "' (expected debug|info|warn|error|off); keeping the current level";
    }
  }
  // The fault/trace subsystems self-initialize from FRAC_FAULTS / FRAC_TRACE
  // on first use (CI drives test *binaries* through those env vars); only
  // push a differing resolution so a flag override wins without disturbing
  // an identical env-derived state.
  if (fault_spec != fault_plan_spec()) set_fault_plan(fault_spec);
  if (!trace_path.empty() && trace_path != frac::trace_path()) start_trace(trace_path);
}

}  // namespace frac
