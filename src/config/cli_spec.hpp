// Declarative CLI argument specs: one table per subcommand drives parsing,
// validation, and --help generation, replacing the per-subcommand hand-rolled
// flag handling that drifted apart (inconsistent unknown-flag behavior,
// help text maintained by hand in three places).
//
// A CommandSpec lists the flags a subcommand accepts; parse_flags() rejects
// anything else by name ("frac train: unknown option --foo"), checks required
// flags, and eagerly validates numeric values so a typo fails before any
// work starts. Every command also accepts the shared runtime flags
// (runtime_flags(): --threads, --simd, --trace, ... — the RuntimeConfig
// surface) without listing them per command.
//
// Exit-code contract (the single authoritative statement; README and the CLI
// header reference it): 0 success, 1 usage/config error, 2 internal failure,
// 3 I/O failure, 4 parse failure (malformed CSV/model/archive/request),
// 5 numeric failure, 130 interrupted (SIGINT).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <vector>

namespace frac {

/// One line per exit code, for --help output and docs.
extern const char* const kExitCodeContract;

enum class FlagKind : std::uint8_t {
  kString = 0,
  kSize,    ///< non-negative integer (parse_size)
  kDouble,  ///< floating point (parse_double)
  kBool,    ///< switch: takes no value
};

struct FlagSpec {
  std::string name;        ///< without the leading "--"
  FlagKind kind = FlagKind::kString;
  bool required = false;
  std::string value_name;  ///< e.g. "FILE", "N" (empty for kBool)
  std::string help;        ///< one-line description (mention defaults here)
};

struct CommandSpec {
  std::string name;
  std::string summary;     ///< one-line description for the overview
  std::string usage_tail;  ///< e.g. "--data TRAIN.csv --model OUT.frac"
  std::vector<FlagSpec> flags;
};

/// The shared flags every subcommand accepts (the RuntimeConfig knobs plus
/// --help); parse_flags() merges them with the command's own.
std::span<const FlagSpec> runtime_flags();

/// Parsed flag values for one invocation, typed lookups included.
class ParsedFlags {
 public:
  std::optional<std::string> get(const std::string& name) const;
  std::string require(const std::string& name) const;
  bool get_flag(const std::string& name) const;
  double get_double(const std::string& name, double fallback) const;
  std::size_t get_size(const std::string& name, std::size_t fallback) const;

  bool help_requested() const noexcept { return help_; }

 private:
  friend ParsedFlags parse_flags(const CommandSpec&, int, char**, int);

  std::map<std::string, std::string> values_;
  bool help_ = false;
};

/// Parses argv[first..) against `spec` + runtime_flags(). Throws
/// std::invalid_argument (usage error, exit 1) on unknown flags, missing
/// values, missing required flags, or malformed numeric values. When --help
/// is present, required-flag checks are skipped and help_requested() is set.
ParsedFlags parse_flags(const CommandSpec& spec, int argc, char** argv, int first);

/// Full --help text for one command (usage, flags, shared runtime flags,
/// exit codes).
std::string command_help(const CommandSpec& spec);

/// The top-level usage text over all commands.
std::string overview_help(std::span<const CommandSpec> commands);

}  // namespace frac
