// Shared accumulation contract for the per-level kernel implementations.
//
// Every reduction kernel (dot, squared_norm, squared_distance, and gemv/
// matmul on top of them) accumulates into 16 independent fused-multiply-add
// accumulators — four 4-lane vectors in the AVX2 path, a plain double[16] in
// the scalar path — fed in element order, with the tail (< 16 elements)
// folded into accumulators 0..tail-1 and a fixed binary-tree reduction at
// the end:
//
//   acc[j] += acc[j+8]  (j < 8)
//   acc[j] += acc[j+4]  (j < 4)
//   acc[0] += acc[2];  acc[1] += acc[3];  result = acc[0] + acc[1]
//
// Because each per-element update is a correctly-rounded FMA (std::fma in
// the scalar path, vfmadd in the AVX2 path) and the adds happen in the same
// order, the two paths are bit-identical for every input — the determinism
// contract DESIGN.md §9 documents. Do not "optimize" the scalar path into
// `acc += x*y` (separately-rounded multiply) or reorder the tree.
#pragma once

#include <cmath>
#include <cstddef>

#include "linalg/simd.hpp"

namespace frac::simd {

/// Per-level tables, defined in kernels_scalar.cpp / kernels_avx2.cpp and
/// re-declared locally by simd.cpp. avx2_kernel_table() returns null when
/// the binary was built without AVX2 support (non-x86 target or unsupported
/// compiler flags).
const KernelTable* scalar_kernel_table();
const KernelTable* avx2_kernel_table();

}  // namespace frac::simd

// The helpers below are `static` (one copy per kernel TU), not `inline`: the
// AVX2 TU is compiled with -mavx2 -mfma, and if the linker deduplicated an
// inline helper it could wire the VEX-encoded copy into the scalar fallback,
// which must run on machines without AVX. Include this header ONLY from the
// per-level kernel TUs (each uses every helper, so no unused-function
// warnings).
namespace frac::simd::detail {

/// Accumulators per reduction: 4 unrolled 256-bit vectors x 4 double lanes.
inline constexpr std::size_t kAccumulators = 16;

/// Fixed-order reduction of the 16 lane accumulators (see file comment).
static double reduce_accumulators(const double acc[kAccumulators]) noexcept {
  double a0 = acc[0] + acc[8];
  double a1 = acc[1] + acc[9];
  double a2 = acc[2] + acc[10];
  double a3 = acc[3] + acc[11];
  const double a4 = acc[4] + acc[12];
  const double a5 = acc[5] + acc[13];
  const double a6 = acc[6] + acc[14];
  const double a7 = acc[7] + acc[15];
  a0 += a4;
  a1 += a5;
  a2 += a6;
  a3 += a7;
  a0 += a2;
  a1 += a3;
  return a0 + a1;
}

/// Folds the scalar tail [i, n) of a dot-style reduction into acc[0..].
static void dot_tail(const double* x, const double* y, std::size_t i, std::size_t n,
                     double acc[kAccumulators]) noexcept {
  for (std::size_t j = 0; i < n; ++i, ++j) acc[j] = std::fma(x[i], y[i], acc[j]);
}

/// Folds the scalar tail of a squared-distance reduction into acc[0..].
static void distance_tail(const double* x, const double* y, std::size_t i, std::size_t n,
                          double acc[kAccumulators]) noexcept {
  for (std::size_t j = 0; i < n; ++i, ++j) {
    const double d = x[i] - y[i];
    acc[j] = std::fma(d, d, acc[j]);
  }
}

/// Cache-block sizes for matmul: KC k-panel rows x NC column strip keeps the
/// working set (one B panel + one C strip) inside L1/L2. Shared by both
/// levels — the (i, j) accumulation order over k is part of the determinism
/// contract, and identical blocking guarantees it.
inline constexpr std::size_t kMatmulKc = 64;
inline constexpr std::size_t kMatmulNc = 512;

}  // namespace frac::simd::detail
