// Shared accumulation contract for the per-level kernel implementations.
//
// Every reduction kernel (dot, squared_norm, squared_distance, and gemv/
// matmul on top of them) accumulates into 16 independent fused-multiply-add
// accumulators — four 4-lane vectors in the AVX2 path, a plain double[16] in
// the scalar path — fed in element order, with the tail (< 16 elements)
// folded into accumulators 0..tail-1 and a fixed binary-tree reduction at
// the end:
//
//   acc[j] += acc[j+8]  (j < 8)
//   acc[j] += acc[j+4]  (j < 4)
//   acc[0] += acc[2];  acc[1] += acc[3];  result = acc[0] + acc[1]
//
// Because each per-element update is a correctly-rounded FMA (std::fma in
// the scalar path, vfmadd in the AVX2 path) and the adds happen in the same
// order, the two paths are bit-identical for every input — the determinism
// contract DESIGN.md §9 documents. Do not "optimize" the scalar path into
// `acc += x*y` (separately-rounded multiply) or reorder the tree.
#pragma once

#include <cmath>
#include <cstddef>

#include "linalg/simd.hpp"

namespace frac::simd {

/// Per-level tables, defined in kernels_scalar.cpp / kernels_avx2.cpp /
/// kernels_avx512.cpp and re-declared locally by simd.cpp. The vector-level
/// tables return null when the binary was built without that level's
/// support (non-x86 target or unsupported compiler flags).
const KernelTable* scalar_kernel_table();
const KernelTable* avx2_kernel_table();
const KernelTable* avx512_kernel_table();

}  // namespace frac::simd

// The helpers below are `static` (one copy per kernel TU), not `inline`: the
// AVX2 TU is compiled with -mavx2 -mfma, and if the linker deduplicated an
// inline helper it could wire the VEX-encoded copy into the scalar fallback,
// which must run on machines without AVX. Include this header ONLY from the
// per-level kernel TUs (each uses every helper, so no unused-function
// warnings).
namespace frac::simd::detail {

/// Accumulators per reduction: 4 unrolled 256-bit vectors x 4 double lanes.
inline constexpr std::size_t kAccumulators = 16;

/// Fixed-order reduction of the 16 lane accumulators (see file comment).
static double reduce_accumulators(const double acc[kAccumulators]) noexcept {
  double a0 = acc[0] + acc[8];
  double a1 = acc[1] + acc[9];
  double a2 = acc[2] + acc[10];
  double a3 = acc[3] + acc[11];
  const double a4 = acc[4] + acc[12];
  const double a5 = acc[5] + acc[13];
  const double a6 = acc[6] + acc[14];
  const double a7 = acc[7] + acc[15];
  a0 += a4;
  a1 += a5;
  a2 += a6;
  a3 += a7;
  a0 += a2;
  a1 += a3;
  return a0 + a1;
}

/// Folds the scalar tail [i, n) of a dot-style reduction into acc[0..].
static void dot_tail(const double* x, const double* y, std::size_t i, std::size_t n,
                     double acc[kAccumulators]) noexcept {
  for (std::size_t j = 0; i < n; ++i, ++j) acc[j] = std::fma(x[i], y[i], acc[j]);
}

/// Folds the scalar tail of a squared-distance reduction into acc[0..].
static void distance_tail(const double* x, const double* y, std::size_t i, std::size_t n,
                          double acc[kAccumulators]) noexcept {
  for (std::size_t j = 0; i < n; ++i, ++j) {
    const double d = x[i] - y[i];
    acc[j] = std::fma(d, d, acc[j]);
  }
}

/// Cache-block sizes for matmul: KC k-panel rows x NC column strip keeps the
/// working set (one B panel + one C strip) inside L1/L2. Shared by both
/// levels — the (i, j) accumulation order over k is part of the determinism
/// contract, and identical blocking guarantees it.
inline constexpr std::size_t kMatmulKc = 64;
inline constexpr std::size_t kMatmulNc = 512;

/// f32 twin of reduce_accumulators: identical tree, float adds.
static float reduce_accumulators_f32(const float acc[kAccumulators]) noexcept {
  float a0 = acc[0] + acc[8];
  float a1 = acc[1] + acc[9];
  float a2 = acc[2] + acc[10];
  float a3 = acc[3] + acc[11];
  const float a4 = acc[4] + acc[12];
  const float a5 = acc[5] + acc[13];
  const float a6 = acc[6] + acc[14];
  const float a7 = acc[7] + acc[15];
  a0 += a4;
  a1 += a5;
  a2 += a6;
  a3 += a7;
  a0 += a2;
  a1 += a3;
  return a0 + a1;
}

/// f32 twin of dot_tail (std::fmaf keeps every update correctly rounded).
static void dot_tail_f32(const float* x, const float* y, std::size_t i, std::size_t n,
                         float acc[kAccumulators]) noexcept {
  for (std::size_t j = 0; i < n; ++i, ++j) acc[j] = std::fmaf(x[i], y[i], acc[j]);
}

/// Row-block height for gemm_nt. Within a block of X rows the unit loop runs
/// outermost, so each W row is streamed from memory once per block instead of
/// once per X row — the cache win — while every output element is still one
/// full dot in the standard accumulator order, so the blocking is invisible
/// in the bits.
inline constexpr std::size_t kGemmNtRowBlock = 16;

/// Shared gemm_nt skeleton: P[r][u] = dot(X_r, W_u) with the level's own dot
/// function plugged in, blocked kGemmNtRowBlock rows at a time. A static
/// template (internal linkage) for the same reason as the helpers above.
template <typename T, typename DotFn>
static void gemm_nt_blocked(const T* x, const T* w, T* p, std::size_t rows,
                            std::size_t width, std::size_t units, DotFn dot_fn) noexcept {
  for (std::size_t r0 = 0; r0 < rows; r0 += kGemmNtRowBlock) {
    const std::size_t r_end = r0 + kGemmNtRowBlock < rows ? r0 + kGemmNtRowBlock : rows;
    for (std::size_t u = 0; u < units; ++u) {
      const T* w_row = w + u * width;
      for (std::size_t r = r0; r < r_end; ++r) {
        p[r * units + u] = dot_fn(x + r * width, w_row, width);
      }
    }
  }
}

}  // namespace frac::simd::detail
