#include "linalg/random_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace frac {

Matrix make_random_matrix(std::size_t rows, std::size_t cols, RandomMatrixKind kind, Rng& rng) {
  Matrix m(rows, cols);
  const double sqrt3 = std::sqrt(3.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const auto row = m.row(r);
    switch (kind) {
      case RandomMatrixKind::kGaussian:
        for (double& v : row) v = rng.normal();
        break;
      case RandomMatrixKind::kUniform:
        // Uniform(-1,1) has variance 1/3; scale by sqrt(3) for unit variance.
        for (double& v : row) v = sqrt3 * rng.uniform(-1.0, 1.0);
        break;
      case RandomMatrixKind::kAchlioptas:
        for (double& v : row) {
          const double u = rng.uniform();
          v = u < (1.0 / 6.0) ? sqrt3 : (u < (2.0 / 6.0) ? -sqrt3 : 0.0);
        }
        break;
      case RandomMatrixKind::kCountSketch:
        // Column-sparse: handled below (rows are filled column-by-column).
        break;
    }
  }
  if (kind == RandomMatrixKind::kCountSketch) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(rng.uniform_index(rows), c) = rng.bernoulli(0.5) ? 1.0 : -1.0;
    }
  }
  return m;
}

void SparseSignMatrix::multiply(std::span<const double> x, std::span<double> y) const noexcept {
  assert(x.size() == cols);
  assert(y.size() == rows);
  for (std::size_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (const auto& [c, v] : row_entries[r]) acc += static_cast<double>(v) * x[c];
    y[r] = acc;
  }
}

std::size_t SparseSignMatrix::bytes() const noexcept {
  std::size_t total = sizeof(*this);
  for (const auto& row : row_entries) {
    total += row.capacity() * sizeof(std::pair<std::uint32_t, float>);
  }
  return total;
}

SparseSignMatrix make_count_sketch_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  SparseSignMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_entries.resize(rows);
  for (std::size_t c = 0; c < cols; ++c) {
    const std::size_t r = rng.uniform_index(rows);
    m.row_entries[r].emplace_back(static_cast<std::uint32_t>(c),
                                  rng.bernoulli(0.5) ? 1.0f : -1.0f);
  }
  // multiply() does not require column order, but keep rows sorted for
  // deterministic layout and cache-friendly access.
  for (auto& row : m.row_entries) {
    std::sort(row.begin(), row.end());
    row.shrink_to_fit();
  }
  return m;
}

SparseSignMatrix make_sparse_sign_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  SparseSignMatrix m;
  m.rows = rows;
  m.cols = cols;
  m.row_entries.resize(rows);
  const float sqrt3 = static_cast<float>(std::sqrt(3.0));
  for (std::size_t r = 0; r < rows; ++r) {
    auto& entries = m.row_entries[r];
    entries.reserve(cols / 3 + 8);
    for (std::size_t c = 0; c < cols; ++c) {
      const double u = rng.uniform();
      if (u < (1.0 / 6.0)) {
        entries.emplace_back(static_cast<std::uint32_t>(c), sqrt3);
      } else if (u < (2.0 / 6.0)) {
        entries.emplace_back(static_cast<std::uint32_t>(c), -sqrt3);
      }
    }
    entries.shrink_to_fit();
  }
  return m;
}

}  // namespace frac
