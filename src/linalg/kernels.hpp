// Level-1/level-2 vector kernels used by the SVM solvers and JL projection.
// All take std::span so callers can pass Matrix rows or plain vectors.
//
// dot/axpy/scale/squared_norm/squared_distance/gemv (and Matrix matmul)
// dispatch at runtime to the best instruction-set level (linalg/simd.hpp;
// override with FRAC_SIMD=scalar|avx2|avx512). Every level follows the same
// fixed lane-block accumulation order, so results are bit-identical across
// levels and machines — see DESIGN.md §9 for the contract.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace frac {

/// x · y. Sizes must match.
double dot(std::span<const double> x, std::span<const double> y) noexcept;

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// x *= alpha.
void scale(double alpha, std::span<double> x) noexcept;

/// Squared Euclidean norm.
double squared_norm(std::span<const double> x) noexcept;

/// Euclidean norm.
double norm(std::span<const double> x) noexcept;

/// Squared Euclidean distance between x and y.
double squared_distance(std::span<const double> x, std::span<const double> y) noexcept;

/// y = A x  (A: m×n, x: n, y: m).
void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) noexcept;

/// P[r][u] = X_r · W_u with X rows×width and W units×width, both row-major
/// (the right operand transposed relative to matmul). Every output element
/// is one full dot in the standard accumulator order, so the result is
/// independent of the internal blocking and bit-identical to dot() on the
/// same rows. The fused serve path's batch-scoring kernel.
void gemm_nt(const double* x, const double* w, double* p, std::size_t rows,
             std::size_t width, std::size_t units) noexcept;

/// f32 x · y in the same 16-accumulator element order (fmaf per element);
/// bit-identical across dispatch levels. Sizes must match.
float dot_f32(std::span<const float> x, std::span<const float> y) noexcept;

/// f32 twin of gemm_nt — the `--precision f32` serve path.
void gemm_nt_f32(const float* x, const float* w, float* p, std::size_t rows,
                 std::size_t width, std::size_t units) noexcept;

/// Σ_i exp(-0.5 · ((x − points[i]) · inv_h)²) — the Gaussian KDE inner loop,
/// accumulated in the kernel layer's fixed lane-block order (one shared
/// implementation for all dispatch levels; exp stays scalar libm).
double gaussian_kernel_sum(std::span<const double> points, double x, double inv_h) noexcept;

/// Arithmetic mean; 0 for empty input.
double mean(std::span<const double> x) noexcept;

/// Sample variance (divides by n-1); 0 when fewer than two values.
double sample_variance(std::span<const double> x) noexcept;

/// Sample standard deviation.
double sample_stddev(std::span<const double> x) noexcept;

/// Median (copies and partially sorts). 0 for empty input; the mean of the
/// two central order statistics for even n.
double median(std::span<const double> x);

/// Standard normal quantile Φ⁻¹(p) for p in (0, 1) (Acklam's rational
/// approximation, |relative error| < 1.2e-9). Used by the SNP generator's
/// Gaussian-copula LD model.
double normal_quantile(double p);

}  // namespace frac
