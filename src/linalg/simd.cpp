#include "linalg/simd.hpp"

#include <atomic>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace frac::simd {

// Defined in kernels_scalar.cpp / kernels_avx2.cpp / kernels_avx512.cpp.
// Declared here rather than via kernels_impl.hpp, which must only be
// included by the kernel TUs.
const KernelTable* scalar_kernel_table();
const KernelTable* avx2_kernel_table();
const KernelTable* avx512_kernel_table();

namespace {

/// Best level the CPU can execute. Checked top-down so a new level slots in
/// by adding one clause.
Level detect_level() {
#if defined(__x86_64__) || defined(_M_X64)
  if (avx512_kernel_table() != nullptr && __builtin_cpu_supports("avx512f")) {
    return Level::kAvx512;
  }
  if (avx2_kernel_table() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

/// Mirrors the dispatch decision into the metrics registry (0 = scalar,
/// 1 = avx2, 2 = avx512) so run manifests record which kernels produced the
/// numbers.
void publish_level_metric(Level level) {
  metrics_gauge("simd.level").set(static_cast<double>(level));
}

Level initial_level_published() {
  const Level level = detect_level();
  publish_level_metric(level);
  return level;
}

/// The active table plus its level, published once and swapped only by
/// force_level(). The kernels in kernels.cpp load the table with a relaxed
/// atomic read — tables are immutable and any published table is valid, so
/// no ordering is needed. The level rides in its own atomic: with three
/// levels a pointer-compare against one table no longer identifies it.
struct ActiveState {
  explicit ActiveState(Level initial)
      : table(kernel_table(initial)), level(static_cast<int>(initial)) {}
  std::atomic<const KernelTable*> table;
  std::atomic<int> level;
};

ActiveState& active_state() {
  static ActiveState state(initial_level_published());
  return state;
}

}  // namespace

bool cpu_supports(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return avx2_kernel_table() != nullptr && __builtin_cpu_supports("avx2") &&
             __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Level::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return avx512_kernel_table() != nullptr && __builtin_cpu_supports("avx512f");
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* kernel_table(Level level) {
  switch (level) {
    case Level::kScalar:
      return scalar_kernel_table();
    case Level::kAvx2:
      return avx2_kernel_table();
    case Level::kAvx512:
      return avx512_kernel_table();
  }
  return nullptr;
}

Level active_level() {
  return static_cast<Level>(active_state().level.load(std::memory_order_relaxed));
}

Level force_level(Level level) {
  if (!cpu_supports(level)) return active_level();
  ActiveState& state = active_state();
  state.table.store(kernel_table(level), std::memory_order_relaxed);
  state.level.store(static_cast<int>(level), std::memory_order_relaxed);
  publish_level_metric(level);
  return level;
}

Level request_level(const std::string& name) {
  const Level current = active_level();
  if (name.empty()) return current;
  Level wanted;
  if (name == "scalar") {
    wanted = Level::kScalar;
  } else if (name == "avx2") {
    wanted = Level::kAvx2;
  } else if (name == "avx512") {
    wanted = Level::kAvx512;
  } else {
    FRAC_WARN << "unrecognized simd level '" << name
              << "' (expected scalar|avx2|avx512); using " << level_name(current)
              << " kernels";
    return current;
  }
  if (cpu_supports(wanted)) return force_level(wanted);
  const Level fallback = detect_level();
  FRAC_WARN << "simd level '" << name << "' requested but this CPU/build lacks it; using "
            << level_name(fallback) << " kernels";
  return force_level(fallback);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

/// Internal accessor for kernels.cpp (declared there; kept out of simd.hpp so
/// ordinary callers go through the span API).
const KernelTable* active_kernel_table() {
  return active_state().table.load(std::memory_order_relaxed);
}

}  // namespace frac::simd
