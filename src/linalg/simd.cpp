#include "linalg/simd.hpp"

#include <atomic>

#include "util/logging.hpp"
#include "util/metrics.hpp"

namespace frac::simd {

// Defined in kernels_scalar.cpp / kernels_avx2.cpp. Declared here rather
// than via kernels_impl.hpp, which must only be included by the kernel TUs.
const KernelTable* scalar_kernel_table();
const KernelTable* avx2_kernel_table();

namespace {

/// Best level the CPU can execute.
Level detect_level() {
#if defined(__x86_64__) || defined(_M_X64)
  if (avx2_kernel_table() != nullptr && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma")) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

/// Mirrors the dispatch decision into the metrics registry (0 = scalar,
/// 1 = avx2) so run manifests record which kernels produced the numbers.
void publish_level_metric(Level level) {
  metrics_gauge("simd.level").set(level == Level::kScalar ? 0.0 : 1.0);
}

Level initial_level_published() {
  const Level level = detect_level();
  publish_level_metric(level);
  return level;
}

/// The active table, published once and swapped only by force_level(). The
/// kernels in kernels.cpp load it with a relaxed atomic read — tables are
/// immutable and any published table is valid, so no ordering is needed.
std::atomic<const KernelTable*>& active_table_slot() {
  static std::atomic<const KernelTable*> slot{kernel_table(initial_level_published())};
  return slot;
}

}  // namespace

bool cpu_supports(Level level) {
  return level == Level::kScalar || detect_level() == Level::kAvx2;
}

const KernelTable* kernel_table(Level level) {
  return level == Level::kScalar ? scalar_kernel_table() : avx2_kernel_table();
}

Level active_level() {
  return active_table_slot().load(std::memory_order_relaxed) == scalar_kernel_table()
             ? Level::kScalar
             : Level::kAvx2;
}

Level force_level(Level level) {
  if (!cpu_supports(level)) return active_level();
  active_table_slot().store(kernel_table(level), std::memory_order_relaxed);
  publish_level_metric(level);
  return level;
}

Level request_level(const std::string& name) {
  const Level detected = active_level();
  if (name.empty()) return detected;
  if (name == "scalar") return force_level(Level::kScalar);
  if (name == "avx2") {
    if (cpu_supports(Level::kAvx2)) return force_level(Level::kAvx2);
    FRAC_WARN << "simd level 'avx2' requested but this CPU/build lacks AVX2+FMA; "
                 "using scalar kernels";
    return force_level(Level::kScalar);
  }
  FRAC_WARN << "unrecognized simd level '" << name << "' (expected scalar|avx2); using "
            << level_name(detected) << " kernels";
  return detected;
}

const char* level_name(Level level) {
  return level == Level::kScalar ? "scalar" : "avx2";
}

/// Internal accessor for kernels.cpp (declared there; kept out of simd.hpp so
/// ordinary callers go through the span API).
const KernelTable* active_kernel_table() {
  return active_table_slot().load(std::memory_order_relaxed);
}

}  // namespace frac::simd
