// Random matrix fills for Johnson–Lindenstrauss projections.
//
// Four families:
//  * Gaussian         — entries N(0, 1)
//  * Uniform          — entries Uniform(-1, 1) scaled to unit variance
//  * Achlioptas       — entries sqrt(3)·{+1 w.p. 1/6, 0 w.p. 2/3, −1 w.p. 1/6}
//                       (Achlioptas 2003, "database-friendly" projections)
//  * CountSketch      — exactly one ±1 per input column (feature hashing /
//                       sparse JL; Charikar et al. 2002). Addresses the
//                       paper's future-work note on "preprocessing
//                       techniques tailored to preserve the structure of
//                       discrete data": a 1-hot indicator maps to a single
//                       signed coordinate instead of being smeared across
//                       every output dimension, and projection costs O(d)
//                       instead of O(k·d).
// The first three have per-entry variance 1, so projecting with (1/√k)·R
// preserves expected squared norms; CountSketch is norm-preserving with no
// scaling (each column has unit norm by construction).
#pragma once

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace frac {

enum class RandomMatrixKind { kGaussian, kUniform, kAchlioptas, kCountSketch };

/// Fills a k×d matrix with iid unit-variance entries from `kind`.
Matrix make_random_matrix(std::size_t rows, std::size_t cols, RandomMatrixKind kind, Rng& rng);

/// Sparse row-compressed form of an Achlioptas matrix: only the ±sqrt(3)
/// entries are stored, which makes projection ~3× cheaper. rows/cols give
/// the logical dense shape.
struct SparseSignMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Per row: (column, value) pairs for nonzero entries, column-sorted.
  std::vector<std::vector<std::pair<std::uint32_t, float>>> row_entries;

  /// y = M x for one vector.
  void multiply(std::span<const double> x, std::span<double> y) const noexcept;

  /// Logical heap footprint in bytes.
  std::size_t bytes() const noexcept;
};

/// Samples a sparse Achlioptas matrix directly in compressed form.
SparseSignMatrix make_sparse_sign_matrix(std::size_t rows, std::size_t cols, Rng& rng);

/// Samples a CountSketch matrix: per column, one uniformly chosen row gets
/// a ±1 entry. Stored in the same row-compressed form.
SparseSignMatrix make_count_sketch_matrix(std::size_t rows, std::size_t cols, Rng& rng);

}  // namespace frac
