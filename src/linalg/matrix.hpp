// Dense row-major matrix of doubles.
//
// Row-major because every hot loop in this library walks a sample's feature
// vector contiguously: SVR coordinate descent touches one sample row at a
// time, JL projection streams sample rows through the projection matrix, and
// tree splitters gather one column at a time (the only strided access, and
// it is O(n) per split evaluation, not the dominant cost).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace frac {

/// Owning dense matrix, row-major, zero-initialized.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Adopts an existing row-major buffer (data.size() must be rows*cols).
  /// Streaming importers build rows in place and hand the buffer over
  /// instead of paying a second matrix-sized copy.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double>&& data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Strided, non-owning view of one column (see ColView below). Prefer this
  /// (or copy_col with a reused buffer) over col() in loops: col() allocates
  /// a fresh vector on every call.
  class ColView;
  ColView col_view(std::size_t c) const noexcept;

  /// Gathers column c into out (out.size() must equal rows()); no allocation.
  void copy_col(std::size_t c, std::span<double> out) const noexcept;

  /// Copies column c out (strided gather, allocates).
  std::vector<double> col(std::size_t c) const;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Approximate heap footprint, used by the resource accounting layer.
  std::size_t bytes() const noexcept { return data_.size() * sizeof(double); }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Non-owning strided view of one matrix column.
class Matrix::ColView {
 public:
  ColView(const double* base, std::size_t stride, std::size_t size) noexcept
      : base_(base), stride_(stride), size_(size) {}

  std::size_t size() const noexcept { return size_; }
  double operator[](std::size_t r) const noexcept {
    assert(r < size_);
    return base_[r * stride_];
  }

 private:
  const double* base_;
  std::size_t stride_;
  std::size_t size_;
};

inline Matrix::ColView Matrix::col_view(std::size_t c) const noexcept {
  assert(c < cols_);
  return ColView(data_.data() + c, cols_, rows_);
}

/// Non-owning view of a matrix restricted to a row subset: the matrix plus a
/// span of row indices (nullptr span = all rows, in order). Implicitly
/// constructible from Matrix, so every trainer that takes a MatrixView also
/// accepts a plain Matrix. The view borrows both the matrix and the index
/// span — the caller keeps them alive for the view's lifetime.
///
/// This is what lets CV fold models train on the unit's gathered design
/// matrix directly instead of materializing a per-fold copy (frac.cpp).
class MatrixView {
 public:
  MatrixView() = default;

  // NOLINTNEXTLINE(google-explicit-constructor): deliberate Matrix adapter.
  MatrixView(const Matrix& m) noexcept : m_(&m), count_(m.rows()) {}

  MatrixView(const Matrix& m, std::span<const std::size_t> rows) noexcept
      : m_(&m), rows_(rows.data()), count_(rows.size()) {
#ifndef NDEBUG
    for (std::size_t i = 0; i < count_; ++i) assert(rows_[i] < m.rows());
#endif
  }

  std::size_t rows() const noexcept { return count_; }
  std::size_t cols() const noexcept { return m_ == nullptr ? 0 : m_->cols(); }

  /// Underlying matrix row index for view row i.
  std::size_t row_index(std::size_t i) const noexcept {
    assert(i < count_);
    return rows_ == nullptr ? i : rows_[i];
  }

  /// Contiguous view of view-row i (a row of the underlying matrix).
  std::span<const double> row(std::size_t i) const noexcept { return m_->row(row_index(i)); }

  double operator()(std::size_t r, std::size_t c) const noexcept {
    return (*m_)(row_index(r), c);
  }

 private:
  const Matrix* m_ = nullptr;
  const std::size_t* rows_ = nullptr;  // nullptr = identity (all rows)
  std::size_t count_ = 0;
};

/// C = A * B (cache-blocked, SIMD-dispatched; bit-identical across levels).
Matrix matmul(const Matrix& a, const Matrix& b);

/// Returns A transposed.
Matrix transpose(const Matrix& a);

}  // namespace frac
