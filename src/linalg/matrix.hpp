// Dense row-major matrix of doubles.
//
// Row-major because every hot loop in this library walks a sample's feature
// vector contiguously: SVR coordinate descent touches one sample row at a
// time, JL projection streams sample rows through the projection matrix, and
// tree splitters gather one column at a time (the only strided access, and
// it is O(n) per split evaluation, not the dominant cost).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace frac {

/// Owning dense matrix, row-major, zero-initialized.
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Contiguous view of row r.
  std::span<double> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Copies column c out (strided gather).
  std::vector<double> col(std::size_t c) const;

  double* data() noexcept { return data_.data(); }
  const double* data() const noexcept { return data_.data(); }

  /// Approximate heap footprint, used by the resource accounting layer.
  std::size_t bytes() const noexcept { return data_.size() * sizeof(double); }

  bool operator==(const Matrix& other) const = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B (naive triple loop with row-major-friendly ordering).
/// Only used in tests and small pipelines; hot paths use gemv/dot kernels.
Matrix matmul(const Matrix& a, const Matrix& b);

/// Returns A transposed.
Matrix transpose(const Matrix& a);

}  // namespace frac
