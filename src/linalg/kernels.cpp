#include "linalg/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "linalg/simd.hpp"

namespace frac {

namespace simd {
// Defined in simd.cpp; the relaxed-atomic load of the active dispatch table.
const KernelTable* active_kernel_table();
}  // namespace simd

double dot(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  return simd::active_kernel_table()->dot(x.data(), y.data(), x.size());
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == y.size());
  simd::active_kernel_table()->axpy(alpha, x.data(), y.data(), x.size());
}

void scale(double alpha, std::span<double> x) noexcept {
  simd::active_kernel_table()->scale(alpha, x.data(), x.size());
}

double squared_norm(std::span<const double> x) noexcept {
  return simd::active_kernel_table()->squared_norm(x.data(), x.size());
}

double norm(std::span<const double> x) noexcept { return std::sqrt(squared_norm(x)); }

double squared_distance(std::span<const double> x, std::span<const double> y) noexcept {
  assert(x.size() == y.size());
  return simd::active_kernel_table()->squared_distance(x.data(), y.data(), x.size());
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) noexcept {
  assert(x.size() == a.cols());
  assert(y.size() == a.rows());
  simd::active_kernel_table()->gemv(a.data(), a.rows(), a.cols(), x.data(), y.data());
}

void gemm_nt(const double* x, const double* w, double* p, std::size_t rows,
             std::size_t width, std::size_t units) noexcept {
  simd::active_kernel_table()->gemm_nt(x, w, p, rows, width, units);
}

float dot_f32(std::span<const float> x, std::span<const float> y) noexcept {
  assert(x.size() == y.size());
  return simd::active_kernel_table()->dot_f32(x.data(), y.data(), x.size());
}

void gemm_nt_f32(const float* x, const float* w, float* p, std::size_t rows,
                 std::size_t width, std::size_t units) noexcept {
  simd::active_kernel_table()->gemm_nt_f32(x, w, p, rows, width, units);
}

double gaussian_kernel_sum(std::span<const double> points, double x, double inv_h) noexcept {
  // One shared implementation for every dispatch level: exp() dominates the
  // cost and stays scalar libm, but the accumulation follows the kernel
  // layer's fixed lane-block order so a future vectorized-exp path can slot
  // in without changing results.
  constexpr std::size_t kLanes = 16;
  double acc[kLanes] = {};
  const double* p = points.data();
  const std::size_t n = points.size();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t j = 0; j < kLanes; ++j) {
      const double z = (x - p[i + j]) * inv_h;
      acc[j] += std::exp(-0.5 * z * z);
    }
  }
  for (std::size_t j = 0; i < n; ++i, ++j) {
    const double z = (x - p[i]) * inv_h;
    acc[j] += std::exp(-0.5 * z * z);
  }
  double a0 = acc[0] + acc[8], a1 = acc[1] + acc[9], a2 = acc[2] + acc[10],
         a3 = acc[3] + acc[11];
  a0 += acc[4] + acc[12];
  a1 += acc[5] + acc[13];
  a2 += acc[6] + acc[14];
  a3 += acc[7] + acc[15];
  return (a0 + a2) + (a1 + a3);
}

double mean(std::span<const double> x) noexcept {
  if (x.empty()) return 0.0;
  double acc = 0.0;
  for (const double v : x) acc += v;
  return acc / static_cast<double>(x.size());
}

double sample_variance(std::span<const double> x) noexcept {
  if (x.size() < 2) return 0.0;
  const double m = mean(x);
  double acc = 0.0;
  for (const double v : x) {
    const double d = v - m;
    acc += d * d;
  }
  return acc / static_cast<double>(x.size() - 1);
}

double sample_stddev(std::span<const double> x) noexcept {
  return std::sqrt(sample_variance(x));
}

double median(std::span<const double> x) {
  if (x.empty()) return 0.0;
  std::vector<double> copy(x.begin(), x.end());
  const std::size_t mid = copy.size() / 2;
  std::nth_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid), copy.end());
  const double hi = copy[mid];
  if (copy.size() % 2 == 1) return hi;
  const double lo = *std::max_element(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double normal_quantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm: rational approximations on three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

}  // namespace frac
