// AVX-512F kernels. This translation unit is the only one compiled with
// -mavx512f (see src/CMakeLists.txt); it is reached only after the
// dispatcher has confirmed cpuid support, so no other TU may call into it
// directly.
//
// Determinism: each f64 reduction keeps two 8-lane vfmadd accumulators fed
// in element order — lane j of vector v holds accumulator 8v+j, exactly the
// double[16] the scalar reference maintains — then stores them and reuses
// the scalar tail/reduction helpers, so the final double is bit-identical
// to the scalar and AVX2 paths (kernels_impl.hpp). The f32 dot uses a
// single 16-lane vector, again matching the scalar float[16] layout.
//
// Every kernel executes _mm256_zeroupper() after its last wide op, for the
// same reason as the AVX2 TU: VZEROUPPER clears the upper YMM *and* ZMM
// state, and returning with dirty uppers puts subsequent non-VEX scalar FP
// in the transition-penalty regime. GCC's automatic pass misses kernels
// that tail-call the shared reduce helpers, so the contract is explicit.
#include "linalg/kernels_impl.hpp"
#include "linalg/simd.hpp"

#if defined(FRAC_HAVE_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

namespace frac::simd {

namespace {

using detail::kAccumulators;

double dot_avx512(const double* x, const double* y, std::size_t n) {
  __m512d v0 = _mm512_setzero_pd();
  __m512d v1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    v0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i), v0);
    v1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 8), _mm512_loadu_pd(y + i + 8), v1);
  }
  alignas(64) double acc[kAccumulators];
  _mm512_store_pd(acc + 0, v0);
  _mm512_store_pd(acc + 8, v1);
  _mm256_zeroupper();
  detail::dot_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void axpy_avx512(double alpha, const double* x, double* y, std::size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vy = _mm512_fmadd_pd(va, _mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    _mm512_storeu_pd(y + i, vy);
  }
  _mm256_zeroupper();
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_avx512(double alpha, double* x, std::size_t n) {
  const __m512d va = _mm512_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(va, _mm512_loadu_pd(x + i)));
  }
  _mm256_zeroupper();
  for (; i < n; ++i) x[i] *= alpha;
}

double squared_norm_avx512(const double* x, std::size_t n) { return dot_avx512(x, x, n); }

double squared_distance_avx512(const double* x, const double* y, std::size_t n) {
  __m512d v0 = _mm512_setzero_pd();
  __m512d v1 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    const __m512d d0 = _mm512_sub_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i));
    const __m512d d1 = _mm512_sub_pd(_mm512_loadu_pd(x + i + 8), _mm512_loadu_pd(y + i + 8));
    v0 = _mm512_fmadd_pd(d0, d0, v0);
    v1 = _mm512_fmadd_pd(d1, d1, v1);
  }
  alignas(64) double acc[kAccumulators];
  _mm512_store_pd(acc + 0, v0);
  _mm512_store_pd(acc + 8, v1);
  _mm256_zeroupper();
  detail::distance_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void gemv_avx512(const double* a, std::size_t m, std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i) y[i] = dot_avx512(a + i * n, x, n);
}

void matmul_avx512(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += detail::kMatmulKc) {
    const std::size_t k_end = std::min(k, kk + detail::kMatmulKc);
    for (std::size_t jj = 0; jj < n; jj += detail::kMatmulNc) {
      const std::size_t j_end = std::min(n, jj + detail::kMatmulNc);
      for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * n;
        for (std::size_t p = kk; p < k_end; ++p) {
          const __m512d va = _mm512_set1_pd(a[i * k + p]);
          const double* brow = b + p * n;
          std::size_t j = jj;
          for (; j + 8 <= j_end; j += 8) {
            const __m512d vc =
                _mm512_fmadd_pd(va, _mm512_loadu_pd(brow + j), _mm512_loadu_pd(crow + j));
            _mm512_storeu_pd(crow + j, vc);
          }
          for (; j < j_end; ++j) crow[j] = std::fma(a[i * k + p], brow[j], crow[j]);
        }
      }
    }
  }
  _mm256_zeroupper();
}

void gemm_nt_avx512(const double* x, const double* w, double* p, std::size_t rows,
                    std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_avx512);
}

float dot_f32_avx512(const float* x, const float* y, std::size_t n) {
  // One 16-lane vector holds all 16 f32 accumulators, lane j fed element
  // i + j — the same element -> accumulator map as the scalar float[16].
  __m512 v0 = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    v0 = _mm512_fmadd_ps(_mm512_loadu_ps(x + i), _mm512_loadu_ps(y + i), v0);
  }
  alignas(64) float acc[kAccumulators];
  _mm512_store_ps(acc, v0);
  _mm256_zeroupper();
  detail::dot_tail_f32(x, y, i, n, acc);
  return detail::reduce_accumulators_f32(acc);
}

void gemm_nt_f32_avx512(const float* x, const float* w, float* p, std::size_t rows,
                        std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_f32_avx512);
}

}  // namespace

const KernelTable* avx512_kernel_table() {
  static const KernelTable table{dot_avx512,           axpy_avx512, scale_avx512,
                                 squared_norm_avx512,  squared_distance_avx512,
                                 gemv_avx512,          matmul_avx512,
                                 gemm_nt_avx512,       dot_f32_avx512,
                                 gemm_nt_f32_avx512};
  return &table;
}

}  // namespace frac::simd

#else  // !FRAC_HAVE_AVX512

namespace frac::simd {

const KernelTable* avx512_kernel_table() { return nullptr; }

}  // namespace frac::simd

#endif
