// Runtime SIMD dispatch for the level-1/level-2 kernels.
//
// One implementation table per instruction-set level; the active table is
// chosen once at startup from cpuid (overridable via request_level(), which
// the CLI's RuntimeConfig drives from --simd / FRAC_SIMD)
// and every public kernel in kernels.hpp routes through it. All levels use
// the same fixed 4x-unrolled lane-block accumulation order (see
// kernels_impl.hpp), so kernel results — and therefore NS scores — are
// bit-identical across levels, machines, and thread counts.
#pragma once

#include <cstddef>
#include <string>

namespace frac::simd {

enum class Level : int {
  kScalar = 0,  ///< portable reference (std::fma-based, matches FMA hardware)
  kAvx2 = 1,    ///< AVX2 + FMA (x86-64)
  kAvx512 = 2,  ///< AVX-512F (x86-64), same accumulator order as the others
};

/// Raw-pointer kernel table for one instruction-set level. Exposed so the
/// equivalence tests and micro-benches can pin a level explicitly; ordinary
/// callers use the span API in kernels.hpp, which routes through the active
/// table.
struct KernelTable {
  double (*dot)(const double* x, const double* y, std::size_t n);
  void (*axpy)(double alpha, const double* x, double* y, std::size_t n);
  void (*scale)(double alpha, double* x, std::size_t n);
  double (*squared_norm)(const double* x, std::size_t n);
  double (*squared_distance)(const double* x, const double* y, std::size_t n);
  /// y = A x with A m-by-n row-major.
  void (*gemv)(const double* a, std::size_t m, std::size_t n, const double* x, double* y);
  /// C += A B, row-major, A m-by-k, B k-by-n; C must be pre-initialized.
  void (*matmul)(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                 std::size_t n);
  /// P[r][u] = X_r · W_u with X rows-by-width and W units-by-width, both
  /// row-major ("NT": the right operand is transposed relative to matmul).
  /// Every output element is one full dot in the standard 16-accumulator
  /// element order, so the result is independent of the internal row/unit
  /// blocking and bit-identical across levels. The fused serve path's kernel.
  void (*gemm_nt)(const double* x, const double* w, double* p, std::size_t rows,
                  std::size_t width, std::size_t units);
  /// f32 dot: 16 f32 accumulators fed in element order (fmaf per element),
  /// same fixed tree reduction as the f64 contract — bit-identical across
  /// levels, though of course not to the f64 kernels.
  float (*dot_f32)(const float* x, const float* y, std::size_t n);
  /// f32 twin of gemm_nt (the `--precision f32` serve path).
  void (*gemm_nt_f32)(const float* x, const float* w, float* p, std::size_t rows,
                      std::size_t width, std::size_t units);
};

/// True when the CPU can execute `level` (kScalar is always supported).
bool cpu_supports(Level level);

/// The level the kernels are currently routed through. Resolved on first
/// use as the best supported level; request_level()/force_level() override.
Level active_level();

/// Forces the active level (tests/benches). Returns the level actually in
/// effect: requesting an unsupported level is a no-op.
Level force_level(Level level);

/// Named override ("scalar" | "avx2" | "avx512"), the RuntimeConfig entry point for
/// --simd / FRAC_SIMD resolved at CLI startup. An unsupported or
/// unrecognized name logs a warning and keeps a working level — a bad knob
/// must not abort (or silently slow down) a run. Empty = keep the current
/// level. Returns the level in effect.
Level request_level(const std::string& name);

/// Implementation table for `level`; null if the binary was built without it.
const KernelTable* kernel_table(Level level);

const char* level_name(Level level);

}  // namespace frac::simd
