#include "linalg/matrix.hpp"

namespace frac {

std::vector<double> Matrix::col(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  // i-k-j ordering keeps the inner loop contiguous in both B and C.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      const auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

}  // namespace frac
