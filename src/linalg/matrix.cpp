#include "linalg/matrix.hpp"

#include "linalg/simd.hpp"

namespace frac {

namespace simd {
const KernelTable* active_kernel_table();  // simd.cpp
}  // namespace simd

std::vector<double> Matrix::col(std::size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  copy_col(c, out);
  return out;
}

void Matrix::copy_col(std::size_t c, std::span<double> out) const noexcept {
  assert(c < cols_);
  assert(out.size() == rows_);
  const ColView view = col_view(c);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = view[r];
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());  // zero-initialized; the kernel accumulates
  simd::active_kernel_table()->matmul(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                                      b.cols());
  return c;
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      t(j, i) = a(i, j);
    }
  }
  return t;
}

}  // namespace frac
