// AVX2 + FMA kernels. This translation unit is the only one compiled with
// -mavx2 -mfma (see src/CMakeLists.txt); it is reached only after the
// dispatcher has confirmed cpuid support, so no other TU may call into it
// directly.
//
// Determinism: each reduction keeps four 4-lane vfmadd accumulators fed in
// element order — lane j of vector v holds accumulator 4v+j, exactly the
// double[16] the scalar reference maintains — then stores them and reuses
// the scalar tail/reduction helpers, so the final double is bit-identical
// to the scalar path (kernels_impl.hpp).
//
// Every kernel executes _mm256_zeroupper() after its last 256-bit op: the
// callers are ordinary non-VEX code, and returning with dirty upper-YMM
// state puts the core in the AVX/SSE transition-penalty regime (observed as
// a ~50x slowdown of subsequent scalar FP). GCC's automatic vzeroupper pass
// misses the kernels that tail-call the shared reduce helper, so the
// contract is enforced explicitly rather than left to the compiler.
#include "linalg/kernels_impl.hpp"
#include "linalg/simd.hpp"

#if defined(FRAC_HAVE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

namespace frac::simd {

namespace {

using detail::kAccumulators;

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd();
  __m256d v3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    v0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), v0);
    v1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4), v1);
    v2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8), _mm256_loadu_pd(y + i + 8), v2);
    v3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12), _mm256_loadu_pd(y + i + 12), v3);
  }
  alignas(32) double acc[kAccumulators];
  _mm256_store_pd(acc + 0, v0);
  _mm256_store_pd(acc + 4, v1);
  _mm256_store_pd(acc + 8, v2);
  _mm256_store_pd(acc + 12, v3);
  _mm256_zeroupper();
  detail::dot_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void axpy_avx2(double alpha, const double* x, double* y, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    _mm256_storeu_pd(y + i, vy);
  }
  _mm256_zeroupper();
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_avx2(double alpha, double* x, std::size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
  }
  _mm256_zeroupper();
  for (; i < n; ++i) x[i] *= alpha;
}

double squared_norm_avx2(const double* x, std::size_t n) { return dot_avx2(x, x, n); }

double squared_distance_avx2(const double* x, const double* y, std::size_t n) {
  __m256d v0 = _mm256_setzero_pd();
  __m256d v1 = _mm256_setzero_pd();
  __m256d v2 = _mm256_setzero_pd();
  __m256d v3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    const __m256d d0 = _mm256_sub_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i));
    const __m256d d1 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4));
    const __m256d d2 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 8), _mm256_loadu_pd(y + i + 8));
    const __m256d d3 = _mm256_sub_pd(_mm256_loadu_pd(x + i + 12), _mm256_loadu_pd(y + i + 12));
    v0 = _mm256_fmadd_pd(d0, d0, v0);
    v1 = _mm256_fmadd_pd(d1, d1, v1);
    v2 = _mm256_fmadd_pd(d2, d2, v2);
    v3 = _mm256_fmadd_pd(d3, d3, v3);
  }
  alignas(32) double acc[kAccumulators];
  _mm256_store_pd(acc + 0, v0);
  _mm256_store_pd(acc + 4, v1);
  _mm256_store_pd(acc + 8, v2);
  _mm256_store_pd(acc + 12, v3);
  _mm256_zeroupper();
  detail::distance_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void gemv_avx2(const double* a, std::size_t m, std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i) y[i] = dot_avx2(a + i * n, x, n);
}

void matmul_avx2(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                 std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += detail::kMatmulKc) {
    const std::size_t k_end = std::min(k, kk + detail::kMatmulKc);
    for (std::size_t jj = 0; jj < n; jj += detail::kMatmulNc) {
      const std::size_t j_end = std::min(n, jj + detail::kMatmulNc);
      for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * n;
        for (std::size_t p = kk; p < k_end; ++p) {
          const __m256d va = _mm256_set1_pd(a[i * k + p]);
          const double* brow = b + p * n;
          std::size_t j = jj;
          for (; j + 4 <= j_end; j += 4) {
            const __m256d vc =
                _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j), _mm256_loadu_pd(crow + j));
            _mm256_storeu_pd(crow + j, vc);
          }
          for (; j < j_end; ++j) crow[j] = std::fma(a[i * k + p], brow[j], crow[j]);
        }
      }
    }
  }
  _mm256_zeroupper();
}

void gemm_nt_avx2(const double* x, const double* w, double* p, std::size_t rows,
                  std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_avx2);
}

float dot_f32_avx2(const float* x, const float* y, std::size_t n) {
  // Two 8-lane vectors: v0 holds f32 accumulators 0..7 (fed elements
  // i..i+7), v1 holds 8..15 — the same element -> accumulator map as the
  // scalar float[16].
  __m256 v0 = _mm256_setzero_ps();
  __m256 v1 = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    v0 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i), _mm256_loadu_ps(y + i), v0);
    v1 = _mm256_fmadd_ps(_mm256_loadu_ps(x + i + 8), _mm256_loadu_ps(y + i + 8), v1);
  }
  alignas(32) float acc[kAccumulators];
  _mm256_store_ps(acc + 0, v0);
  _mm256_store_ps(acc + 8, v1);
  _mm256_zeroupper();
  detail::dot_tail_f32(x, y, i, n, acc);
  return detail::reduce_accumulators_f32(acc);
}

void gemm_nt_f32_avx2(const float* x, const float* w, float* p, std::size_t rows,
                      std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_f32_avx2);
}

}  // namespace

const KernelTable* avx2_kernel_table() {
  static const KernelTable table{dot_avx2,           axpy_avx2, scale_avx2,
                                 squared_norm_avx2,  squared_distance_avx2,
                                 gemv_avx2,          matmul_avx2,
                                 gemm_nt_avx2,       dot_f32_avx2,
                                 gemm_nt_f32_avx2};
  return &table;
}

}  // namespace frac::simd

#else  // !FRAC_HAVE_AVX2

namespace frac::simd {

const KernelTable* avx2_kernel_table() { return nullptr; }

}  // namespace frac::simd

#endif
