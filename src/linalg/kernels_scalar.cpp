// Portable reference kernels. Every operation follows the lane-block
// accumulation contract in kernels_impl.hpp; multiplies-and-adds go through
// std::fma so results bit-match the FMA hardware paths (glibc routes fma()
// to the correctly-rounded hardware instruction where available).
#include <algorithm>
#include <cstddef>

#include "linalg/kernels_impl.hpp"
#include "linalg/simd.hpp"

namespace frac::simd {

namespace {

using detail::kAccumulators;

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double acc[kAccumulators] = {};
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    for (std::size_t j = 0; j < kAccumulators; ++j) {
      acc[j] = std::fma(x[i + j], y[i + j], acc[j]);
    }
  }
  detail::dot_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void axpy_scalar(double alpha, const double* x, double* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

void scale_scalar(double alpha, double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double squared_norm_scalar(const double* x, std::size_t n) { return dot_scalar(x, x, n); }

double squared_distance_scalar(const double* x, const double* y, std::size_t n) {
  double acc[kAccumulators] = {};
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    for (std::size_t j = 0; j < kAccumulators; ++j) {
      const double d = x[i + j] - y[i + j];
      acc[j] = std::fma(d, d, acc[j]);
    }
  }
  detail::distance_tail(x, y, i, n, acc);
  return detail::reduce_accumulators(acc);
}

void gemv_scalar(const double* a, std::size_t m, std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i) y[i] = dot_scalar(a + i * n, x, n);
}

void matmul_scalar(const double* a, const double* b, double* c, std::size_t m, std::size_t k,
                   std::size_t n) {
  for (std::size_t kk = 0; kk < k; kk += detail::kMatmulKc) {
    const std::size_t k_end = std::min(k, kk + detail::kMatmulKc);
    for (std::size_t jj = 0; jj < n; jj += detail::kMatmulNc) {
      const std::size_t j_end = std::min(n, jj + detail::kMatmulNc);
      for (std::size_t i = 0; i < m; ++i) {
        double* crow = c + i * n;
        for (std::size_t p = kk; p < k_end; ++p) {
          const double aip = a[i * k + p];
          const double* brow = b + p * n;
          for (std::size_t j = jj; j < j_end; ++j) {
            crow[j] = std::fma(aip, brow[j], crow[j]);
          }
        }
      }
    }
  }
}

void gemm_nt_scalar(const double* x, const double* w, double* p, std::size_t rows,
                    std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_scalar);
}

float dot_f32_scalar(const float* x, const float* y, std::size_t n) {
  float acc[kAccumulators] = {};
  std::size_t i = 0;
  for (; i + kAccumulators <= n; i += kAccumulators) {
    for (std::size_t j = 0; j < kAccumulators; ++j) {
      acc[j] = std::fmaf(x[i + j], y[i + j], acc[j]);
    }
  }
  detail::dot_tail_f32(x, y, i, n, acc);
  return detail::reduce_accumulators_f32(acc);
}

void gemm_nt_f32_scalar(const float* x, const float* w, float* p, std::size_t rows,
                        std::size_t width, std::size_t units) {
  detail::gemm_nt_blocked(x, w, p, rows, width, units, dot_f32_scalar);
}

}  // namespace

const KernelTable* scalar_kernel_table() {
  static const KernelTable table{dot_scalar,           axpy_scalar, scale_scalar,
                                 squared_norm_scalar,  squared_distance_scalar,
                                 gemv_scalar,          matmul_scalar,
                                 gemm_nt_scalar,       dot_f32_scalar,
                                 gemm_nt_f32_scalar};
  return &table;
}

}  // namespace frac::simd
