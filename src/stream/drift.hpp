// Online drift detection over FRaC normalized surprisal (NS).
//
// A trained FRaC model defines "normal" through its training-time NS
// distribution. The monitor holds that distribution as a sorted baseline
// and folds each incoming sample's NS into an anytime-valid e-process
// (Hyndman-style rank test, Vovk's p-to-e calibrator):
//
//   rank p-value  p_t = (1 + #{baseline >= ns_t}) / (B + 1)
//   e-value       e(p) = 1 / (2 sqrt(p))        (valid calibrator: E[e] <= 1)
//   CUSUM         S_t  = max(0, S_{t-1} + log e(p_t))
//
// Under the no-drift null each e_t has mean <= 1, so by Ville's inequality
// P(sup_t S_t >= log(1/alpha)) <= alpha — the alarm threshold log(1/alpha)
// gives an anytime-valid false-alarm bound with no multiple-testing
// correction, however long the stream runs. Upward NS drift (the cohort
// becoming more surprising to the model) drives p small and S up.
//
// Determinism: observe() is a pure sequential function of the NS sequence —
// no clocks, no RNG, fixed-order accumulation — so decisions are
// bit-identical for any FRAC_THREADS value and across kill/resume through
// the snapshot round trip (serialize/deserialize).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace frac {

class ArchiveWriter;
class ArchiveReader;

struct DriftConfig {
  /// Anytime false-alarm probability: the monitor fires spuriously on an
  /// undrifted stream with probability at most alpha, over the whole run.
  double alpha = 1e-3;
  /// Samples that must be seen before the alarm may fire (guards against
  /// a handful of early outliers tripping a fresh monitor).
  std::size_t min_samples = 32;
};

/// Sequential NS drift monitor. Feed every scored sample, in arrival order,
/// through observe(); the monitor latches drifted() once the e-process
/// crosses its threshold.
class DriftMonitor {
 public:
  /// `baseline` is the reference NS sample (the training cohort scored by
  /// the model being monitored); it is sorted internally. Throws
  /// std::invalid_argument on an empty or non-finite baseline or
  /// alpha outside (0, 1).
  DriftMonitor(std::vector<double> baseline, const DriftConfig& config = {});

  /// Folds one sample's NS into the e-process; returns drifted(). Throws
  /// NumericError on a non-finite ns.
  bool observe(double ns);

  /// Current CUSUM statistic S_t (nats of accumulated evidence).
  double statistic() const noexcept { return statistic_; }
  /// Alarm threshold log(1/alpha).
  double threshold() const noexcept { return threshold_; }
  /// True once the alarm has fired; latched until reset()/rebaseline().
  bool drifted() const noexcept { return drifted_; }
  /// Samples observed since construction/reset.
  std::size_t samples_seen() const noexcept { return samples_seen_; }
  /// 1-based index of the sample that fired the alarm; 0 = not fired.
  std::size_t drift_sample() const noexcept { return drift_sample_; }
  std::size_t baseline_size() const noexcept { return baseline_.size(); }
  const DriftConfig& config() const noexcept { return config_; }

  /// Clears the e-process (statistic, sample count, latch) but keeps the
  /// baseline: restart monitoring against the same reference.
  void reset() noexcept;

  /// Swaps in a new reference distribution (a refreshed model's NS over a
  /// recent window) and reset()s — the post-retrain rearm.
  void rebaseline(std::vector<double> baseline);

  /// Snapshot persistence: one "drift_monitor" archive section holding the
  /// config, the e-process state, and the sorted baseline. A deserialized
  /// monitor continues the stream bit-identically to one that never stopped.
  void serialize(ArchiveWriter& archive) const;
  static DriftMonitor deserialize(ArchiveReader& archive);

  /// Atomic single-section archive file (temp+fsync+rename).
  void save_file(const std::string& path) const;
  static DriftMonitor load_file(const std::string& path);

 private:
  DriftMonitor() = default;

  DriftConfig config_;
  std::vector<double> baseline_;  // ascending
  double threshold_ = 0.0;
  double statistic_ = 0.0;
  std::size_t samples_seen_ = 0;
  std::size_t drift_sample_ = 0;
  bool drifted_ = false;
};

/// Reads a reference NS sample from `path`: either `frac score` CSV output
/// ("sample,ns,label" header, NS in the second field) or one NS value per
/// line. Throws IoError/ParseError on unreadable or valueless input.
std::vector<double> load_ns_baseline(const std::string& path);

}  // namespace frac
