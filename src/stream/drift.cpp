#include "stream/drift.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iterator>
#include <span>
#include <stdexcept>

#include "serialize/archive.hpp"
#include "util/errors.hpp"

namespace frac {

DriftMonitor::DriftMonitor(std::vector<double> baseline, const DriftConfig& config)
    : config_(config), baseline_(std::move(baseline)) {
  if (baseline_.empty()) {
    throw std::invalid_argument("DriftMonitor: empty baseline");
  }
  for (const double ns : baseline_) {
    if (!std::isfinite(ns)) throw std::invalid_argument("DriftMonitor: non-finite baseline NS");
  }
  if (!(config_.alpha > 0.0) || !(config_.alpha < 1.0)) {
    throw std::invalid_argument("DriftMonitor: alpha must be in (0, 1)");
  }
  std::sort(baseline_.begin(), baseline_.end());
  threshold_ = std::log(1.0 / config_.alpha);
}

bool DriftMonitor::observe(double ns) {
  if (!std::isfinite(ns)) {
    throw NumericError("DriftMonitor::observe: non-finite NS");
  }
  ++samples_seen_;
  // #{baseline >= ns} on the ascending baseline; with ns drawn from the
  // baseline distribution, p is a (discrete, conservative) uniform p-value.
  const std::size_t count_ge = static_cast<std::size_t>(
      baseline_.end() - std::lower_bound(baseline_.begin(), baseline_.end(), ns));
  const double p = (1.0 + static_cast<double>(count_ge)) /
                   (static_cast<double>(baseline_.size()) + 1.0);
  // log e(p) for the calibrator e(p) = 1/(2*sqrt(p)).
  const double log_e = -std::log(2.0) - 0.5 * std::log(p);
  statistic_ = std::max(0.0, statistic_ + log_e);
  if (!drifted_ && samples_seen_ >= config_.min_samples && statistic_ >= threshold_) {
    drifted_ = true;
    drift_sample_ = samples_seen_;
  }
  return drifted_;
}

void DriftMonitor::reset() noexcept {
  statistic_ = 0.0;
  samples_seen_ = 0;
  drift_sample_ = 0;
  drifted_ = false;
}

void DriftMonitor::rebaseline(std::vector<double> baseline) {
  DriftMonitor fresh(std::move(baseline), config_);
  *this = std::move(fresh);
}

void DriftMonitor::serialize(ArchiveWriter& archive) const {
  archive.begin_section("drift_monitor");
  archive.write_u32(1);  // monitor layout version within the section
  archive.write_f64(config_.alpha);
  archive.write_u64(config_.min_samples);
  archive.write_f64(statistic_);
  archive.write_u64(samples_seen_);
  archive.write_u64(drift_sample_);
  archive.write_u8(drifted_ ? 1 : 0);
  archive.write_f64_array(baseline_);
  archive.end_section();
}

DriftMonitor DriftMonitor::deserialize(ArchiveReader& archive) {
  archive.open_section("drift_monitor");
  const std::uint32_t layout = archive.read_u32();
  if (layout != 1) {
    archive.fail("unsupported drift_monitor layout version " + std::to_string(layout));
  }
  DriftMonitor monitor;
  monitor.config_.alpha = archive.read_f64();
  monitor.config_.min_samples = archive.read_u64();
  monitor.statistic_ = archive.read_f64();
  monitor.samples_seen_ = archive.read_u64();
  monitor.drift_sample_ = archive.read_u64();
  monitor.drifted_ = archive.read_u8() != 0;
  monitor.baseline_ = archive.read_f64_vector();
  archive.expect_section_end();
  if (monitor.baseline_.empty()) archive.fail("empty drift baseline");
  if (!(monitor.config_.alpha > 0.0) || !(monitor.config_.alpha < 1.0)) {
    archive.fail("alpha outside (0, 1)");
  }
  if (!std::is_sorted(monitor.baseline_.begin(), monitor.baseline_.end())) {
    archive.fail("drift baseline not sorted");
  }
  monitor.threshold_ = std::log(1.0 / monitor.config_.alpha);
  return monitor;
}

void DriftMonitor::save_file(const std::string& path) const {
  ArchiveWriter archive;
  serialize(archive);
  archive.write_file(path);
}

DriftMonitor DriftMonitor::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("DriftMonitor::load_file: cannot open " + path);
  const std::string buffer{std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>()};
  if (in.bad()) throw IoError("DriftMonitor::load_file: read failed for " + path);
  ArchiveReader archive(std::as_bytes(std::span<const char>(buffer)), path,
                        /*borrowed=*/false);
  return deserialize(archive);
}

std::vector<double> load_ns_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("load_ns_baseline: cannot open " + path);
  std::vector<double> ns;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    // `frac score` CSV rows are "sample,ns,label"; take the second field.
    // A comma-free line is a bare NS value.
    std::string_view field = line;
    if (const std::size_t comma = line.find(','); comma != std::string::npos) {
      const std::size_t next = line.find(',', comma + 1);
      field = std::string_view(line).substr(
          comma + 1, next == std::string::npos ? std::string::npos : next - comma - 1);
    }
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
    if (ec != std::errc{} || ptr != field.data() + field.size()) {
      if (line_no == 1) continue;  // CSV header row
      throw ParseError("load_ns_baseline: " + path + ":" + std::to_string(line_no) +
                       ": not an NS value: '" + std::string(field) + "'");
    }
    ns.push_back(value);
  }
  if (in.bad()) throw IoError("load_ns_baseline: read failed for " + path);
  if (ns.empty()) throw ParseError("load_ns_baseline: " + path + ": no NS values");
  return ns;
}

}  // namespace frac
