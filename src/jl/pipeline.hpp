// The paper's Fig. 2 preprocessing pipeline as one object:
//   mixed dataset → 1-hot expand categoricals → concatenate with reals
//                 → JL-project to k dims → all-real dataset.
//
// The pipeline is fit once (the projection matrix and the 1-hot layout are
// fixed) and then applied consistently to train and test cohorts, so both
// live in the same projected space.
#pragma once

#include <memory>

#include "data/dataset.hpp"
#include "data/onehot.hpp"
#include "jl/projection.hpp"

namespace frac {

struct JlPipelineConfig {
  std::size_t output_dim = 1024;  ///< paper default
  RandomMatrixKind kind = RandomMatrixKind::kAchlioptas;
  std::uint64_t seed = 19;
};

class JlPipeline {
 public:
  /// Fixes the 1-hot layout from `schema` and samples the projection.
  JlPipeline(const Schema& schema, const JlPipelineConfig& config);

  /// Learns per-column means of the 1-hot representation from `train` for
  /// missing-value imputation. Without this, missing real features impute
  /// to 0 (missing categoricals are already an all-zero block) — a NaN must
  /// never reach the projection, where it would poison the whole row.
  void fit_imputation(const Dataset& train);

  /// Projects a dataset (labels pass through). Schema of the result is
  /// `output_dim` real features named "jl<i>".
  Dataset apply(const Dataset& data, ThreadPool& pool) const;
  Dataset apply(const Dataset& data) const;

  std::size_t input_width() const noexcept { return encoder_.output_width(); }
  std::size_t output_dim() const noexcept { return projection_->output_dim(); }
  const OneHotEncoder& encoder() const noexcept { return encoder_; }
  const JlProjection& projection() const noexcept { return *projection_; }

  /// Projection-matrix footprint (for resource accounting).
  std::size_t bytes() const noexcept { return projection_->bytes(); }

 private:
  OneHotEncoder encoder_;
  std::unique_ptr<JlProjection> projection_;
  std::vector<double> imputation_means_;  // 1-hot width; defaults to zeros
};

}  // namespace frac
