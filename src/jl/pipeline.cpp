#include "jl/pipeline.hpp"

#include <stdexcept>

#include "parallel/parallel_for.hpp"
#include "util/metrics.hpp"
#include "util/string_util.hpp"
#include "util/trace.hpp"

namespace frac {

JlPipeline::JlPipeline(const Schema& schema, const JlPipelineConfig& config)
    : encoder_(schema), imputation_means_(encoder_.output_width(), 0.0) {
  Rng rng(config.seed);
  projection_ = std::make_unique<JlProjection>(encoder_.output_width(), config.output_dim,
                                               config.kind, rng);
}

void JlPipeline::fit_imputation(const Dataset& train) {
  if (train.schema().one_hot_width() != encoder_.output_width()) {
    throw std::invalid_argument("JlPipeline::fit_imputation: schema mismatch");
  }
  imputation_means_.assign(encoder_.output_width(), 0.0);
  std::vector<std::size_t> counts(encoder_.output_width(), 0);
  std::vector<double> encoded(encoder_.output_width());
  for (std::size_t r = 0; r < train.sample_count(); ++r) {
    encoder_.encode_row(train.values().row(r), encoded);
    for (std::size_t c = 0; c < encoded.size(); ++c) {
      if (is_missing(encoded[c])) continue;
      imputation_means_[c] += encoded[c];
      ++counts[c];
    }
  }
  for (std::size_t c = 0; c < imputation_means_.size(); ++c) {
    if (counts[c] > 0) imputation_means_[c] /= static_cast<double>(counts[c]);
  }
}

Dataset JlPipeline::apply(const Dataset& data, ThreadPool& pool) const {
  if (data.schema().one_hot_width() != encoder_.output_width()) {
    throw std::invalid_argument("JlPipeline::apply: dataset schema does not match pipeline");
  }
  const std::size_t n = data.sample_count();
  const TraceSpan span(
      "jl.project",
      trace_armed() ? format("{\"rows\": %zu, \"input_dim\": %zu, \"output_dim\": %zu}", n,
                             encoder_.output_width(), projection_->output_dim())
                    : std::string());
  metrics_counter("jl.rows_projected").add(n);
  Matrix out(n, projection_->output_dim());
  parallel_for(pool, 0, n, [&](std::size_t r) {
    std::vector<double> encoded(encoder_.output_width());
    encoder_.encode_row(data.values().row(r), encoded);
    for (std::size_t c = 0; c < encoded.size(); ++c) {
      if (is_missing(encoded[c])) encoded[c] = imputation_means_[c];
    }
    projection_->project_row(encoded, out.row(r));
  });
  Schema schema = Schema::all_real(projection_->output_dim(), "jl");
  return Dataset(std::move(schema), std::move(out), data.labels());
}

Dataset JlPipeline::apply(const Dataset& data) const {
  return apply(data, ThreadPool::global());
}

}  // namespace frac
