#include "jl/dimension.hpp"

#include <cmath>
#include <stdexcept>

namespace frac {

double jl_denominator(double epsilon) {
  if (epsilon <= 0.0 || epsilon >= 1.0) {
    throw std::invalid_argument("jl: epsilon must be in (0, 1)");
  }
  return epsilon * epsilon / 2.0 - epsilon * epsilon * epsilon / 3.0;
}

std::size_t jl_dimension_pointset(std::size_t n, double epsilon) {
  if (n < 2) throw std::invalid_argument("jl: need at least 2 points");
  const double k = 4.0 * std::log(static_cast<double>(n)) / jl_denominator(epsilon);
  return static_cast<std::size_t>(std::ceil(k));
}

std::size_t jl_dimension_probabilistic(double epsilon, double delta) {
  if (delta <= 0.0 || delta >= 1.0) throw std::invalid_argument("jl: delta must be in (0, 1)");
  const double k = std::log(2.0 / delta) / jl_denominator(epsilon);
  return static_cast<std::size_t>(std::ceil(k));
}

double jl_epsilon_for_dimension(std::size_t k, double delta) {
  if (k == 0) throw std::invalid_argument("jl: k must be positive");
  if (delta <= 0.0 || delta >= 1.0) throw std::invalid_argument("jl: delta must be in (0, 1)");
  // jl_dimension_probabilistic is strictly decreasing in ε on (0,1);
  // bisect for the smallest ε whose required dimension is ≤ k.
  double lo = 1e-6;
  double hi = 1.0 - 1e-6;
  const double target = static_cast<double>(k);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double required = std::log(2.0 / delta) / jl_denominator(mid);
    if (required > target) lo = mid;
    else hi = mid;
  }
  return hi;
}

}  // namespace frac
