// Johnson–Lindenstrauss dimension bounds (paper §I.A.2).
//
// Two formulations:
//  * point-set form: all pairwise squared distances among n points are
//    preserved within (1±ε) when k ≥ 4·ln(n) / (ε²/2 − ε³/3);
//  * distributional form: any fixed pair is preserved with probability 1−δ
//    when k ≥ ln(2/δ) / (ε²/2 − ε³/3), independent of n.
// The paper runs k = 1024, which it notes gives the probabilistic guarantee
// at δ = 0.05, ε = 0.057.
#pragma once

#include <cstddef>

namespace frac {

/// ε²/2 − ε³/3, the denominator of both bounds. Requires 0 < ε < 1.
double jl_denominator(double epsilon);

/// Minimum k for the point-set (union-bound) form. Requires n ≥ 2.
std::size_t jl_dimension_pointset(std::size_t n, double epsilon);

/// Minimum k for the distributional (per-pair) form. Requires 0 < δ < 1.
std::size_t jl_dimension_probabilistic(double epsilon, double delta);

/// Inverse of the probabilistic bound: the ε achieved at a given k and δ
/// (solved by bisection). Used to report the guarantee a chosen k carries,
/// as the paper does for k = 1024.
double jl_epsilon_for_dimension(std::size_t k, double delta);

}  // namespace frac
