// Johnson–Lindenstrauss random projection: y = (1/√k) R x, with R a k×d
// unit-variance random matrix (Gaussian, Uniform(−1,1)-scaled, or sparse
// Achlioptas signs). The Achlioptas family stores only its ±√3 entries,
// giving a ~3× cheaper, "database-friendly" projection (Achlioptas 2003).
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/random_matrix.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace frac {

class JlProjection {
 public:
  /// Samples R for projecting d-dim input to k dims.
  JlProjection(std::size_t input_dim, std::size_t output_dim, RandomMatrixKind kind, Rng& rng);

  std::size_t input_dim() const noexcept { return input_dim_; }
  std::size_t output_dim() const noexcept { return output_dim_; }
  RandomMatrixKind kind() const noexcept { return kind_; }

  /// Projects one row; out.size() must equal output_dim().
  void project_row(std::span<const double> in, std::span<double> out) const;

  /// Projects every row of `in` (n×d) into a new n×k matrix, in parallel.
  Matrix project(const Matrix& in, ThreadPool& pool) const;
  Matrix project(const Matrix& in) const;

  /// Heap footprint of the stored projection matrix.
  std::size_t bytes() const noexcept;

 private:
  std::size_t input_dim_;
  std::size_t output_dim_;
  RandomMatrixKind kind_;
  double scale_;      // 1/√k
  Matrix dense_;      // used for Gaussian/Uniform
  SparseSignMatrix sparse_;  // used for Achlioptas
};

}  // namespace frac
