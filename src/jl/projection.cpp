#include "jl/projection.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "parallel/parallel_for.hpp"

namespace frac {

JlProjection::JlProjection(std::size_t input_dim, std::size_t output_dim, RandomMatrixKind kind,
                           Rng& rng)
    : input_dim_(input_dim),
      output_dim_(output_dim),
      kind_(kind),
      // CountSketch columns are already unit-norm; the dense families need
      // the 1/√k variance correction.
      scale_(kind == RandomMatrixKind::kCountSketch
                 ? 1.0
                 : 1.0 / std::sqrt(static_cast<double>(output_dim))) {
  if (input_dim == 0 || output_dim == 0) {
    throw std::invalid_argument("JlProjection: dimensions must be positive");
  }
  if (kind == RandomMatrixKind::kAchlioptas) {
    sparse_ = make_sparse_sign_matrix(output_dim, input_dim, rng);
  } else if (kind == RandomMatrixKind::kCountSketch) {
    sparse_ = make_count_sketch_matrix(output_dim, input_dim, rng);
  } else {
    dense_ = make_random_matrix(output_dim, input_dim, kind, rng);
  }
}

void JlProjection::project_row(std::span<const double> in, std::span<double> out) const {
  assert(in.size() == input_dim_);
  assert(out.size() == output_dim_);
  if (kind_ == RandomMatrixKind::kAchlioptas || kind_ == RandomMatrixKind::kCountSketch) {
    sparse_.multiply(in, out);
  } else {
    gemv(dense_, in, out);
  }
  scale(scale_, out);
}

Matrix JlProjection::project(const Matrix& in, ThreadPool& pool) const {
  if (in.cols() != input_dim_) {
    throw std::invalid_argument("JlProjection::project: input width mismatch");
  }
  Matrix out(in.rows(), output_dim_);
  parallel_for(pool, 0, in.rows(),
               [&](std::size_t r) { project_row(in.row(r), out.row(r)); });
  return out;
}

Matrix JlProjection::project(const Matrix& in) const {
  return project(in, ThreadPool::global());
}

std::size_t JlProjection::bytes() const noexcept {
  const bool sparse_kind = kind_ == RandomMatrixKind::kAchlioptas ||
                           kind_ == RandomMatrixKind::kCountSketch;
  return sparse_kind ? sparse_.bytes() : dense_.bytes();
}

}  // namespace frac
