#include "data/split.hpp"

#include <algorithm>
#include <stdexcept>

namespace frac {

Replicate make_replicate(const Dataset& data, double train_fraction, Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction >= 1.0) {
    throw std::invalid_argument("train_fraction must be in (0, 1)");
  }
  std::vector<std::size_t> normals = data.normal_indices();
  if (normals.size() < 2) {
    throw std::invalid_argument("need at least 2 normal samples to split");
  }
  rng.shuffle(normals);
  std::size_t train_n =
      static_cast<std::size_t>(train_fraction * static_cast<double>(normals.size()));
  train_n = std::clamp<std::size_t>(train_n, 1, normals.size() - 1);

  std::vector<std::size_t> train_rows(normals.begin(),
                                      normals.begin() + static_cast<std::ptrdiff_t>(train_n));
  std::vector<std::size_t> test_rows(normals.begin() + static_cast<std::ptrdiff_t>(train_n),
                                     normals.end());
  const std::vector<std::size_t> anomalies = data.anomaly_indices();
  test_rows.insert(test_rows.end(), anomalies.begin(), anomalies.end());

  // Deterministic order within each side keeps downstream runs reproducible.
  std::sort(train_rows.begin(), train_rows.end());
  std::sort(test_rows.begin(), test_rows.end());
  return {data.select_samples(train_rows), data.select_samples(test_rows)};
}

std::vector<Replicate> make_replicates(const Dataset& data, std::size_t count,
                                       double train_fraction, Rng& rng) {
  std::vector<Replicate> reps;
  reps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng child = rng.split(i);
    reps.push_back(make_replicate(data, train_fraction, child));
  }
  return reps;
}

Replicate make_fixed_replicate(const Dataset& data, const std::vector<std::size_t>& train_rows,
                               const std::vector<std::size_t>& test_rows) {
  Replicate rep{data.select_samples(train_rows), data.select_samples(test_rows)};
  if (rep.train.anomaly_count() != 0) {
    throw std::invalid_argument("training rows must all be normal samples");
  }
  return rep;
}

}  // namespace frac
