// Columnar on-disk dataset container ("column store").
//
// Reuses the sectioned model-archive format (serialize/archive.hpp): one
// "dataset" header section, a "schema" section, a "labels" section, and one
// "col.<i>" section per feature holding that column's f64 values. Every
// payload is CRC32-checked and 8-byte aligned, so an mmap-backed open hands
// zero-copy `std::span<const double>` column views to training — a sharded
// trainer (frac/shard.hpp) touches only the columns its units need and never
// materializes the full sample-major Matrix.
//
// Byte-level spec: docs/model_format.md ("Columnar dataset container").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace frac {

/// What a streaming CSV → columnar conversion did and what it cost.
struct ColumnStoreConvertStats {
  std::size_t samples = 0;
  std::size_t features = 0;
  /// Payload size of the column data alone: samples * features * 8.
  std::size_t column_bytes = 0;
  /// Analytic peak of the converter's own buffers (column vectors + archive
  /// payloads + record scratch). The streaming design bounds this at roughly
  /// column_bytes + one column; see column_store_transient_bound().
  std::size_t transient_peak_bytes = 0;
};

/// The structural bound convert_csv_to_column_store() must stay under: the
/// column payload itself (reserved exactly — the converter counts records
/// first, so vector growth never overshoots), plus one column of overlap
/// while handing columns to the archive writer, plus fixed slack for label
/// and record scratch. Strictly below the 2x column_bytes a "parse
/// everything, then copy into the writer" converter would pay. (The second
/// one_column term folds in the label vector and its section payload.)
inline std::size_t column_store_transient_bound(std::size_t samples, std::size_t column_bytes) {
  const std::size_t one_column = samples * sizeof(double);
  return column_bytes + 2 * one_column + (1u << 16);
}

/// Read-only view of a columnar dataset archive. Columns are zero-copy spans
/// into the backing bytes (mmap for file opens when the kernel allows it,
/// otherwise an owned buffer). Move-only: the instance owns the mapping.
class ColumnStore {
 public:
  ColumnStore(const ColumnStore&) = delete;
  ColumnStore& operator=(const ColumnStore&) = delete;
  ColumnStore(ColumnStore&& other) noexcept;
  ColumnStore& operator=(ColumnStore&& other) noexcept;
  ~ColumnStore();

  /// Opens a columnar dataset file. Every section's CRC32 is verified up
  /// front, so a corrupt or truncated file fails here with a ParseError
  /// naming the file and section, never mid-training. Throws IoError when
  /// the file cannot be opened.
  static ColumnStore open(const std::string& path);

  /// Builds an in-memory store from a row-major dataset (tests and the
  /// out-of-core-vs-in-core bench gate; no file is written).
  static ColumnStore from_dataset(const Dataset& data);

  std::size_t sample_count() const noexcept { return samples_; }
  std::size_t feature_count() const noexcept { return columns_.size(); }
  const Schema& schema() const noexcept { return schema_; }
  const std::vector<Label>& labels() const noexcept { return labels_; }

  /// Zero-copy view of feature column `f`, valid for the store's lifetime.
  std::span<const double> column(std::size_t f) const { return columns_.at(f); }

  /// CRC32 of the archive header + section table. Because per-section CRCs
  /// live in the table, this identifies the full content; shard archives
  /// record it so `frac merge` can refuse partials trained on different data.
  std::uint32_t content_crc() const noexcept { return content_crc_; }

  /// Column payload footprint (what a full Matrix of the data would occupy).
  std::size_t bytes() const noexcept {
    return samples_ * columns_.size() * sizeof(double);
  }

  const std::string& source() const noexcept { return source_; }

  /// Materializes the row-major Dataset (validates invariants). This is the
  /// compatibility path for consumers that need the whole matrix; sharded
  /// training deliberately avoids it.
  Dataset to_dataset() const;

 private:
  ColumnStore() = default;
  void parse(std::span<const std::byte> bytes);
  void release() noexcept;

  std::string source_;
  void* map_base_ = nullptr;
  std::size_t map_length_ = 0;
  std::vector<char> owned_;  // fallback / in-memory backing (stable across moves)
  std::size_t samples_ = 0;
  Schema schema_;
  std::vector<Label> labels_;
  std::vector<std::span<const double>> columns_;
  std::uint32_t content_crc_ = 0;
};

/// Writes `data` as a columnar dataset archive (atomic temp+fsync+rename).
void write_column_store(const std::string& path, const Dataset& data);

/// Streams a dataset CSV (data/io.hpp format) into a columnar archive at
/// `out_path` without ever holding a cell-string table or a second copy of
/// the numeric payload: records flow through CsvRecordReader into per-column
/// vectors, and columns are released to the archive writer one at a time.
/// Throws the same row/column-identifying errors as read_dataset_csv.
ColumnStoreConvertStats convert_csv_to_column_store(const std::string& csv_path,
                                                    const std::string& out_path);

/// True when the file starts with the binary archive magic (a columnar
/// dataset or any frac archive) — the sniff `frac` CLI data flags use to
/// route between CSV and columnar loads. Throws IoError if unreadable.
bool looks_like_archive_file(const std::string& path);

/// Loads a dataset from either format: columnar archives go through
/// ColumnStore::open().to_dataset(), anything else through load_dataset_csv.
Dataset load_dataset_any(const std::string& path);

}  // namespace frac
