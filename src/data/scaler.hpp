// Per-column standardization (zero mean, unit variance), fit on training
// data only. The SVR solver assumes roughly standardized inputs for its
// fixed regularization parameter to be meaningful across datasets, exactly
// as libSVM usage recommends scaling.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace frac {

/// Fitted mean/scale per column. Columns with (near-)zero variance get
/// scale 1 so constants pass through unchanged instead of exploding.
class StandardScaler {
 public:
  /// Fits on the rows of `train`; NaNs are ignored per-column.
  void fit(const Matrix& train);

  std::size_t width() const noexcept { return means_.size(); }

  /// In-place transform of a matrix with matching width.
  void transform(Matrix& m) const;

  /// In-place transform of one row.
  void transform_row(std::span<double> row) const;

  const std::vector<double>& means() const noexcept { return means_; }
  const std::vector<double>& scales() const noexcept { return scales_; }

  /// Makes column c an identity (mean 0, scale 1). FRaC uses this to leave
  /// categorical code columns untouched while standardizing real ones.
  void reset_column(std::size_t c);

  /// Restores fitted state directly (deserialization). Sizes must match and
  /// every scale must be positive.
  void restore(std::vector<double> means, std::vector<double> scales);

 private:
  std::vector<double> means_;
  std::vector<double> scales_;
};

}  // namespace frac
