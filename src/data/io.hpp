// Dataset CSV import/export.
//
// Format (one file per dataset):
//   header:  <name>:real, <name>:cat:<arity>, ..., label
//   rows:    numeric cells ('?' = missing), final cell normal|anomaly
// Categorical cells are integer codes in [0, arity).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace frac {

/// Parses a dataset from a stream. Throws std::runtime_error /
/// std::invalid_argument with a row/column-identifying message on bad input.
Dataset read_dataset_csv(std::istream& in);

/// Loads a dataset file.
Dataset load_dataset_csv(const std::string& path);

/// Writes a dataset to a stream in the format above.
void write_dataset_csv(std::ostream& out, const Dataset& data);

/// Saves a dataset file.
void save_dataset_csv(const std::string& path, const Dataset& data);

}  // namespace frac
