// Dataset CSV import/export.
//
// Format (one file per dataset):
//   header:  <name>:real, <name>:cat:<arity>, ..., label
//   rows:    numeric cells ('?' = missing), final cell normal|anomaly
// Categorical cells are integer codes in [0, arity).
#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace frac {

/// Parses a dataset from a stream. Throws std::runtime_error /
/// std::invalid_argument with a row/column-identifying message on bad input.
/// Streams records through util/csv.hpp's CsvRecordReader: the peak
/// transient footprint is the numeric value buffer plus one CSV record,
/// never a whole-file table of cell strings.
Dataset read_dataset_csv(std::istream& in);

/// Parses one dataset-CSV header cell ("name:real" or "name:cat:K").
/// Shared by read_dataset_csv and the columnar-dataset converter
/// (data/column_store.hpp) so both formats admit exactly the same inputs.
FeatureSpec parse_dataset_header_cell(const std::string& cell, std::size_t col);

/// Parses and validates one dataset-CSV value cell at (1-based data row,
/// 0-based column); '?' yields kMissing. Throws ParseError naming the
/// location on non-finite values and out-of-range categorical codes.
double parse_dataset_value_cell(const std::string& cell, std::size_t row, std::size_t col,
                                const Schema& schema);

/// Parses the trailing label cell ("normal"/"anomaly") of data row `row`.
Label parse_dataset_label_cell(const std::string& cell, std::size_t row);

/// Loads a dataset file.
Dataset load_dataset_csv(const std::string& path);

/// Writes a dataset to a stream in the format above.
void write_dataset_csv(std::ostream& out, const Dataset& data);

/// Saves a dataset file.
void save_dataset_csv(const std::string& path, const Dataset& data);

}  // namespace frac
