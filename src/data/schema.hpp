// Feature schema for mixed real/categorical datasets.
//
// FRaC is defined over data that is "real, categorical, or mixed"; the schema
// records, per column, which it is. Categorical values are stored as codes
// 0..arity-1 inside the dataset's double matrix (SNP genotypes are the ternary
// {0,1,2} case from the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace frac {

enum class FeatureKind : std::uint8_t { kReal, kCategorical };

/// One column's description.
struct FeatureSpec {
  std::string name;
  FeatureKind kind = FeatureKind::kReal;
  /// Number of categories for kCategorical; ignored (0) for kReal.
  std::uint32_t arity = 0;

  bool operator==(const FeatureSpec&) const = default;
};

/// Ordered collection of feature specs.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FeatureSpec> features) : features_(std::move(features)) {}

  /// Convenience: f real-valued features named prefix0..prefix{f-1}.
  static Schema all_real(std::size_t count, const std::string& prefix = "x");

  /// Convenience: f categorical features of equal arity.
  static Schema all_categorical(std::size_t count, std::uint32_t arity,
                                const std::string& prefix = "snp");

  std::size_t size() const noexcept { return features_.size(); }
  const FeatureSpec& operator[](std::size_t i) const { return features_.at(i); }
  const std::vector<FeatureSpec>& features() const noexcept { return features_; }

  void add(FeatureSpec spec) { features_.push_back(std::move(spec)); }

  bool is_real(std::size_t i) const { return (*this)[i].kind == FeatureKind::kReal; }
  bool is_categorical(std::size_t i) const {
    return (*this)[i].kind == FeatureKind::kCategorical;
  }

  /// New schema keeping only `indices`, in the given order.
  Schema select(const std::vector<std::size_t>& indices) const;

  /// Sum of arities over categorical features plus count of real features:
  /// the width of the 1-hot expanded representation (paper Fig. 2).
  std::size_t one_hot_width() const;

  bool operator==(const Schema&) const = default;

 private:
  std::vector<FeatureSpec> features_;
};

}  // namespace frac
