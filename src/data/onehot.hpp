// 1-hot expansion of mixed datasets (paper Fig. 2, step 1–2).
//
// Each categorical feature of arity k becomes k indicator columns; real
// features pass through. The encoder records, for every output column, which
// input feature (and category) it came from — the paper notes that after JL
// projection one can still "identify input features that are present in many
// of the highly predictive projected features", which requires this mapping.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace frac {

/// Provenance of one encoded column.
struct OneHotColumn {
  std::size_t source_feature = 0;  // index into the input schema
  /// Category index for indicator columns; unused (0) for real columns.
  std::uint32_t category = 0;
  bool is_indicator = false;
};

/// Stateless given a schema; encodes rows or whole datasets.
class OneHotEncoder {
 public:
  explicit OneHotEncoder(const Schema& schema);

  std::size_t output_width() const noexcept { return columns_.size(); }
  const std::vector<OneHotColumn>& columns() const noexcept { return columns_; }

  /// Encodes one row into `out` (size must equal output_width()). Missing
  /// categorical values encode as all-zero indicators; missing reals as NaN.
  void encode_row(std::span<const double> in, std::span<double> out) const;

  /// Encodes the full value matrix.
  Matrix encode(const Dataset& data) const;

 private:
  const Schema schema_;
  std::vector<OneHotColumn> columns_;
  /// Start of each input feature's output block.
  std::vector<std::size_t> block_start_;
};

}  // namespace frac
