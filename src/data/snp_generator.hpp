// Synthetic SNP genotype cohorts (substitute for GSE6754 / the HapMap-based
// schizophrenia compilation).
//
// Genotypes are ternary {0,1,2} = copies of the minor allele. The model has
// the three properties the paper's SNP experiments exercise:
//
//  * Population structure — per-SNP allele frequencies follow the
//    Balding–Nichols model: ancestral frequency p ~ Uniform(freq range),
//    population-specific frequency ~ Beta(p(1-F)/F, (1-p)(1-F)/F) with
//    Fst = F. The schizophrenia-analog experiment draws its training normals
//    from population 0 and its "patients" from population 1, reproducing the
//    paper's ancestry-confound finding (entropy filtering AUC ≈ 1).
//
//  * Linkage disequilibrium — a Gaussian-copula haplotype model: each
//    haplotype draws one latent z per LD block, each site adds independent
//    noise (latent_j = √ρ·z + √(1−ρ)·ε_j with ρ = ld_strength), and the
//    allele is 1 iff latent_j < Φ⁻¹(p_j). Marginals stay *exactly*
//    Bernoulli(p_j) — LD never distorts allele frequencies — while
//    within-block correlation is what gives FRaC's per-SNP decision trees
//    something to predict.
//
//  * Optional disease effects — a set of causal SNPs whose allele frequency
//    is shifted in anomalous samples by shifting the copula threshold (LD
//    structure is preserved); the autism analog sets the effect to 0 so
//    full-FRaC AUC ≈ 0.5, matching the paper.
//
// Only common variants are generated (the paper notes rare variants are
// useless for anomaly detection: a rare variant always looks anomalous).
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace frac {

struct SnpModelConfig {
  std::size_t features = 600;
  std::size_t block_size = 20;     ///< SNPs per LD block (last block may be short)
  double ld_strength = 0.7;        ///< copula latent correlation ρ within a block
  double fst = 0.1;                ///< Balding–Nichols divergence between populations
  /// Couples per-SNP divergence to ancestral heterozygosity:
  /// F_j = fst · h_j^exponent with h_j = 4·p_j·(1−p_j). 0 (default) gives
  /// uniform Fst; larger exponents concentrate population divergence in the
  /// high-heterozygosity SNPs — the ancestry-informative-marker structure
  /// that makes entropy filtering shine on the schizophrenia cohort
  /// (paper Table V: entropy AUC 1.0 > random-ensemble 0.86).
  double fst_het_exponent = 0.0;
  /// Scales population 0's drift from the ancestral frequencies (population
  /// 1..k keep the full fst). < 1 models a large reference population (the
  /// HapMap-style training normals) versus a drifted/bottlenecked cohort:
  /// high-entropy SNPs in the reference then coincide with the
  /// ancestry-divergent ones, which is what lets the paper's entropy filter
  /// find ancestry markers on the schizophrenia data.
  double reference_drift_scale = 1.0;
  std::size_t populations = 2;
  double freq_min = 0.1;           ///< ancestral allele-frequency range
  double freq_max = 0.9;           ///<   (common variants only)
  std::size_t disease_snps = 0;    ///< causal SNPs (the first k feature indices)
  double disease_shift = 0.0;      ///< allele-frequency shift in anomalies
  std::uint64_t seed = 1;

  void validate() const;
};

/// Fixed SNP generative model: allele frequencies are sampled once at
/// construction, so separately sampled cohorts share the same genome
/// structure (as the paper's train/test cohorts do).
class SnpModel {
 public:
  explicit SnpModel(const SnpModelConfig& config);

  const SnpModelConfig& config() const noexcept { return config_; }

  /// Samples `count` genotype rows from `population` with the given label.
  /// Disease shifts apply only to kAnomaly rows.
  Dataset sample(std::size_t population, std::size_t count, Label label, Rng& rng) const;

  /// Population-`pop` allele frequency of SNP j (exposed for tests).
  double allele_frequency(std::size_t pop, std::size_t snp) const;

 private:
  SnpModelConfig config_;
  std::size_t block_count_ = 0;
  /// freq_[pop * features + snp]
  std::vector<double> freq_;
  /// Copula thresholds Φ⁻¹(freq), same indexing; anomaly-side thresholds
  /// embed the disease shift for the causal SNPs.
  std::vector<double> threshold_;
  std::vector<double> anomaly_threshold_;
};

}  // namespace frac
