#include "data/column_store.hpp"

#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include "data/io.hpp"
#include "serialize/archive.hpp"
#include "util/csv.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace frac {

namespace {

constexpr std::uint32_t kColumnStoreLayoutVersion = 1;

/// Closes a file descriptor at scope exit.
struct FdGuard {
  int fd = -1;
  ~FdGuard() {
    if (fd >= 0) ::close(fd);
  }
};

std::vector<char> read_all(int fd, const std::string& path) {
  std::vector<char> buffer;
  char chunk[1 << 16];
  for (;;) {
    const ::ssize_t got = ::read(fd, chunk, sizeof chunk);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw IoError("ColumnStore::open: read failed for " + path + ": " + std::strerror(errno));
    }
    if (got == 0) return buffer;
    buffer.insert(buffer.end(), chunk, chunk + got);
  }
}

std::string column_section_name(std::size_t f) { return "col." + std::to_string(f); }

void write_header_sections(ArchiveWriter& writer, const Schema& schema,
                           std::span<const Label> labels) {
  writer.begin_section("dataset");
  writer.write_u32(kColumnStoreLayoutVersion);
  writer.write_u64(labels.size());
  writer.write_u64(schema.size());
  writer.end_section();

  // Same per-feature encoding as the model's schema section: name string,
  // then arity (0 = real-valued).
  writer.begin_section("schema");
  for (const FeatureSpec& spec : schema.features()) {
    writer.write_string(spec.name);
    writer.write_u32(spec.kind == FeatureKind::kCategorical ? spec.arity : 0);
  }
  writer.end_section();

  writer.begin_section("labels");
  writer.write_u64(labels.size());
  for (const Label label : labels) writer.write_u8(static_cast<std::uint8_t>(label));
  writer.end_section();
}

/// Parses the dataset-CSV header record into a Schema (same validation and
/// messages as read_dataset_csv — both formats admit exactly the same files).
Schema parse_csv_header(CsvRecordReader& reader) {
  std::vector<std::string> header;
  if (!reader.next(header)) throw std::runtime_error("dataset CSV is empty");
  if (header.empty() || header.back() != "label") {
    throw std::invalid_argument("dataset CSV header must end with 'label'");
  }
  std::vector<FeatureSpec> specs;
  specs.reserve(header.size() - 1);
  for (std::size_t c = 0; c + 1 < header.size(); ++c) {
    specs.push_back(parse_dataset_header_cell(header[c], c));
  }
  return Schema{std::move(specs)};
}

}  // namespace

ColumnStore::ColumnStore(ColumnStore&& other) noexcept
    : source_(std::move(other.source_)),
      map_base_(std::exchange(other.map_base_, nullptr)),
      map_length_(std::exchange(other.map_length_, 0)),
      owned_(std::move(other.owned_)),
      samples_(other.samples_),
      schema_(std::move(other.schema_)),
      labels_(std::move(other.labels_)),
      columns_(std::move(other.columns_)),
      content_crc_(other.content_crc_) {}

ColumnStore& ColumnStore::operator=(ColumnStore&& other) noexcept {
  if (this != &other) {
    release();
    source_ = std::move(other.source_);
    map_base_ = std::exchange(other.map_base_, nullptr);
    map_length_ = std::exchange(other.map_length_, 0);
    owned_ = std::move(other.owned_);
    samples_ = other.samples_;
    schema_ = std::move(other.schema_);
    labels_ = std::move(other.labels_);
    columns_ = std::move(other.columns_);
    content_crc_ = other.content_crc_;
  }
  return *this;
}

ColumnStore::~ColumnStore() { release(); }

void ColumnStore::release() noexcept {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_length_);
    map_base_ = nullptr;
    map_length_ = 0;
  }
}

void ColumnStore::parse(std::span<const std::byte> bytes) {
  // borrowed = true: column spans point into bytes this store owns (mapping
  // or heap buffer) and stay valid for its lifetime.
  ArchiveReader reader(bytes, source_, /*borrowed=*/true);
  content_crc_ = crc32(bytes.first(reader.toc_extent()));

  reader.open_section("dataset");
  const std::uint32_t layout = reader.read_u32();
  if (layout != kColumnStoreLayoutVersion) {
    reader.fail(format("unsupported column-store layout %u (this build reads %u)", layout,
                       kColumnStoreLayoutVersion));
  }
  samples_ = reader.read_u64();
  const std::uint64_t features = reader.read_u64();
  reader.expect_section_end();

  reader.open_section("schema");
  std::vector<FeatureSpec> specs;
  specs.reserve(features);
  for (std::uint64_t f = 0; f < features; ++f) {
    FeatureSpec spec;
    spec.name = reader.read_string();
    spec.arity = reader.read_u32();
    if (spec.arity == 1) reader.fail(format("feature %llu: categorical arity 1 is invalid",
                                            static_cast<unsigned long long>(f)));
    spec.kind = spec.arity == 0 ? FeatureKind::kReal : FeatureKind::kCategorical;
    specs.push_back(std::move(spec));
  }
  reader.expect_section_end();
  schema_ = Schema{std::move(specs)};

  reader.open_section("labels");
  const std::uint64_t label_count = reader.read_u64();
  if (label_count != samples_) {
    reader.fail(format("label count %llu != sample count %llu",
                       static_cast<unsigned long long>(label_count),
                       static_cast<unsigned long long>(samples_)));
  }
  labels_.clear();
  labels_.reserve(label_count);
  for (std::uint64_t i = 0; i < label_count; ++i) {
    const std::uint8_t code = reader.read_u8();
    if (code > 1) {
      reader.fail(format("bad label code %u at sample %llu", code,
                         static_cast<unsigned long long>(i)));
    }
    labels_.push_back(static_cast<Label>(code));
  }
  reader.expect_section_end();

  // Open every column eagerly: each open_section verifies the payload CRC,
  // so corruption anywhere in the file surfaces here, not mid-training.
  columns_.clear();
  columns_.reserve(features);
  for (std::uint64_t f = 0; f < features; ++f) {
    reader.open_section(column_section_name(f));
    const std::span<const double> col = reader.read_f64_span();
    if (col.size() != samples_) {
      reader.fail(format("column length %zu != sample count %zu", col.size(), samples_));
    }
    reader.expect_section_end();
    columns_.push_back(col);
  }
}

ColumnStore ColumnStore::open(const std::string& path) {
  FdGuard fd{::open(path.c_str(), O_RDONLY | O_CLOEXEC)};
  if (fd.fd < 0) {
    throw IoError("ColumnStore::open: cannot open " + path + ": " + std::strerror(errno));
  }
  struct ::stat st = {};
  if (::fstat(fd.fd, &st) != 0) {
    throw IoError("ColumnStore::open: cannot stat " + path + ": " + std::strerror(errno));
  }
  if (S_ISREG(st.st_mode) && st.st_size == 0) {
    throw ParseError("model archive " + path + ": empty file");
  }

  ColumnStore store;
  store.source_ = path;

  std::span<const std::byte> bytes;
  if (S_ISREG(st.st_mode)) {
    const std::size_t size = static_cast<std::size_t>(st.st_size);
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd.fd, 0);
    if (base != MAP_FAILED) {
      store.map_base_ = base;
      store.map_length_ = size;
      bytes = {static_cast<const std::byte*>(base), size};
    }
  }
  if (bytes.empty()) {
    // Pipes, /proc files, or an mmap refusal: fall back to an owned buffer.
    store.owned_ = read_all(fd.fd, path);
    bytes = std::as_bytes(std::span<const char>(store.owned_));
  }

  store.parse(bytes);
  return store;
}

ColumnStore ColumnStore::from_dataset(const Dataset& data) {
  ArchiveWriter writer;
  write_header_sections(writer, data.schema(), data.labels());
  std::vector<double> scratch(data.sample_count());
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    data.values().copy_col(f, scratch);
    writer.begin_section(column_section_name(f));
    writer.write_f64_array(scratch);
    writer.end_section();
  }
  const std::string image = writer.bytes();

  ColumnStore store;
  store.source_ = "<memory>";
  store.owned_.assign(image.begin(), image.end());
  store.parse(std::as_bytes(std::span<const char>(store.owned_)));
  return store;
}

Dataset ColumnStore::to_dataset() const {
  const std::size_t features = columns_.size();
  std::vector<double> values(samples_ * features);
  for (std::size_t c = 0; c < features; ++c) {
    const std::span<const double> col = columns_[c];
    for (std::size_t r = 0; r < samples_; ++r) values[r * features + c] = col[r];
  }
  Dataset data(schema_, Matrix(samples_, features, std::move(values)), labels_);
  data.validate();
  return data;
}

void write_column_store(const std::string& path, const Dataset& data) {
  ArchiveWriter writer;
  write_header_sections(writer, data.schema(), data.labels());
  std::vector<double> scratch(data.sample_count());
  for (std::size_t f = 0; f < data.feature_count(); ++f) {
    data.values().copy_col(f, scratch);
    writer.begin_section(column_section_name(f));
    writer.write_f64_array(scratch);
    writer.end_section();
  }
  writer.write_file(path);
}

ColumnStoreConvertStats convert_csv_to_column_store(const std::string& csv_path,
                                                    const std::string& out_path) {
  maybe_inject(FaultSite::kDatasetLoad, fault_key(csv_path));

  // Pass 1: parse the header and count records, so pass 2 can reserve every
  // column vector exactly. A single streaming pass cannot know the sample
  // count up front, and geometric vector growth would overshoot the column
  // payload by up to 2x — the very doubling this path exists to avoid.
  Schema schema;
  std::size_t samples = 0;
  {
    std::ifstream in(csv_path);
    if (!in) throw IoError("cannot open dataset file: " + csv_path);
    CsvRecordReader reader(in);
    schema = parse_csv_header(reader);
    std::vector<std::string> row;
    while (reader.next(row)) ++samples;
  }
  const std::size_t features = schema.size();

  ColumnStoreConvertStats stats;
  stats.samples = samples;
  stats.features = features;
  stats.column_bytes = samples * features * sizeof(double);
  const std::size_t one_column = samples * sizeof(double);
  // Columns + the one-column handoff overlap below, plus labels and their
  // section payload. Kept analytic (capacities are reserved exactly) so the
  // tests can gate it against column_store_transient_bound().
  stats.transient_peak_bytes =
      stats.column_bytes + one_column + samples * (sizeof(Label) + 1) + (1u << 10);

  std::vector<std::vector<double>> cols(features);
  for (std::vector<double>& col : cols) col.reserve(samples);
  std::vector<Label> labels;
  labels.reserve(samples);

  // Pass 2: stream values into the per-column vectors.
  {
    std::ifstream in(csv_path);
    if (!in) throw IoError("cannot open dataset file: " + csv_path);
    CsvRecordReader reader(in);
    (void)parse_csv_header(reader);
    std::vector<std::string> row;
    std::size_t r = 0;
    while (reader.next(row)) {
      if (row.size() != features + 1) {
        throw std::invalid_argument(format("dataset CSV row %zu has %zu cells, expected %zu",
                                           r + 1, row.size(), features + 1));
      }
      for (std::size_t c = 0; c < features; ++c) {
        cols[c].push_back(parse_dataset_value_cell(row[c], r + 1, c, schema));
      }
      labels.push_back(parse_dataset_label_cell(row.back(), r + 1));
      ++r;
    }
    if (r != samples) throw IoError("dataset CSV changed between passes: " + csv_path);
  }

  ArchiveWriter writer;
  write_header_sections(writer, schema, labels);
  // Hand columns to the writer one at a time, freeing each source as its
  // payload copy lands: the source/payload overlap never exceeds one column.
  for (std::size_t c = 0; c < features; ++c) {
    writer.begin_section(column_section_name(c));
    writer.write_f64_array(cols[c]);
    writer.end_section();
    std::vector<double>().swap(cols[c]);
  }
  // write_file streams header + sections piecewise (no second image).
  writer.write_file(out_path);
  return stats;
}

bool looks_like_archive_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open dataset file: " + path);
  char prefix[8] = {};
  in.read(prefix, sizeof prefix);
  if (in.gcount() < static_cast<std::streamsize>(sizeof prefix)) return false;
  return ArchiveReader::looks_like_archive(std::string_view(prefix, sizeof prefix));
}

Dataset load_dataset_any(const std::string& path) {
  if (looks_like_archive_file(path)) {
    maybe_inject(FaultSite::kDatasetLoad, fault_key(path));
    return ColumnStore::open(path).to_dataset();
  }
  return load_dataset_csv(path);
}

}  // namespace frac
