#include "data/onehot.hpp"

#include <cassert>
#include <cmath>

namespace frac {

OneHotEncoder::OneHotEncoder(const Schema& schema) : schema_(schema) {
  block_start_.reserve(schema.size());
  for (std::size_t f = 0; f < schema.size(); ++f) {
    block_start_.push_back(columns_.size());
    const FeatureSpec& spec = schema[f];
    if (spec.kind == FeatureKind::kReal) {
      columns_.push_back({f, 0, false});
    } else {
      for (std::uint32_t k = 0; k < spec.arity; ++k) {
        columns_.push_back({f, k, true});
      }
    }
  }
}

void OneHotEncoder::encode_row(std::span<const double> in, std::span<double> out) const {
  assert(in.size() == schema_.size());
  assert(out.size() == columns_.size());
  for (std::size_t f = 0; f < schema_.size(); ++f) {
    const std::size_t start = block_start_[f];
    const FeatureSpec& spec = schema_[f];
    const double v = in[f];
    if (spec.kind == FeatureKind::kReal) {
      out[start] = v;
      continue;
    }
    for (std::uint32_t k = 0; k < spec.arity; ++k) out[start + k] = 0.0;
    if (!is_missing(v)) {
      const auto code = static_cast<std::uint32_t>(v);
      assert(code < spec.arity);
      out[start + code] = 1.0;
    }
  }
}

Matrix OneHotEncoder::encode(const Dataset& data) const {
  Matrix out(data.sample_count(), output_width());
  for (std::size_t r = 0; r < data.sample_count(); ++r) {
    encode_row(data.values().row(r), out.row(r));
  }
  return out;
}

}  // namespace frac
