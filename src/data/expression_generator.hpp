// Synthetic gene-expression cohorts (substitute for the CSAX compendium).
//
// Latent-module factor model capturing the properties the paper's analysis
// depends on:
//   * a minority of "relevant" genes organized in co-regulated modules
//     (gene g in module m: x_g = loading_g * z_m + noise), plus a majority of
//     irrelevant pure-noise genes — the high-dimension/low-signal regime;
//   * anomalies activate an additional *disease program*: a per-sample
//     latent w ~ N(0,1) loads (with fixed signature loadings) onto the genes
//     of the disease modules, on top of their normal regulation. The normal
//     predictors cannot explain the program (its direction is orthogonal to
//     the normal co-regulation structure), so those genes' residuals — and
//     their surprisal — inflate. This is the paper's motivating violation
//     ("it may be that gene A is promoted by gene B … if this relationship
//     is violated in abnormal specimens") realized in a way that perturbs
//     the *joint* structure without shrinking a sample's projection onto
//     the normal population span (which would bias overfit predictors);
//   * the "diffuse signal" property (many moderately informative genes) that
//     the paper credits for random filtering's success.
//
// Anomaly detection difficulty is controlled by: fraction of relevant genes,
// per-gene noise, anomaly mixing coefficient, and number of disease modules;
// the experiment registry calibrates these per cohort to land each dataset's
// full-FRaC AUC in its Table II band.
#pragma once

#include <cstdint>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace frac {

struct ExpressionModelConfig {
  std::size_t features = 400;         ///< total genes (relevant + irrelevant)
  std::size_t modules = 8;            ///< number of co-regulation modules
  std::size_t genes_per_module = 12;  ///< relevant genes per module
  double loading_min = 0.5;           ///< |loading| lower bound
  double loading_max = 1.0;           ///< |loading| upper bound
  double noise_sd = 0.6;              ///< per-gene independent noise
  /// Disease-program amplitude a ≥ 0: a *penetrant* anomalous sample's gene
  /// g in a disease module gets + a·signature_g·w added, with the program
  /// latent w = ±|N(1, program_spread)| (random sign per sample). 0 = off.
  double anomaly_mix = 0.8;
  /// Spread of the program latent around its unit magnitude.
  double program_spread = 0.3;
  /// Fraction of anomalous samples that actually express the program.
  /// Non-penetrant anomalies are *identical in distribution to normals* —
  /// no method can detect them — so the cohort's best achievable AUC is
  /// (1 + penetrance)/2. This realizes the FRaC/CSAX papers' observation
  /// that detection difficulty is an inherent property of the data set:
  /// every reasonable method plateaus at the same ceiling.
  double penetrance = 1.0;
  std::size_t disease_modules = 4;    ///< modules dysregulated in anomalies (first k)
  /// When false (default), each irrelevant gene's marginal sd is drawn from
  /// the same range as the relevant genes', so a variance/entropy ranking
  /// carries no signal (the common case in Table III, where entropy
  /// filtering is erratic). When true, relevant genes have visibly higher
  /// marginal variance — the hematopoiesis-like regime where entropy
  /// filtering shines.
  bool entropy_informative = false;
  /// Additive mean shift applied to every module latent z_m — the covariate
  /// *drift* knob for streaming tests. A shifted cohort keeps the
  /// within-module regression structure (slopes unchanged) while moving the
  /// population, so a drift monitor sees rising NS and warm retraining
  /// re-converges quickly. 0 (default) leaves sampling bit-identical to the
  /// unshifted generator.
  double latent_shift = 0.0;
  std::uint64_t seed = 1;             ///< fixes loadings/module assignment

  /// Throws std::invalid_argument if the module layout does not fit.
  void validate() const;
};

/// A fixed generative model; sampling is deterministic given an Rng.
class ExpressionModel {
 public:
  explicit ExpressionModel(const ExpressionModelConfig& config);

  const ExpressionModelConfig& config() const noexcept { return config_; }

  /// Samples `count` rows with the given label. Anomalies differ only by
  /// the activated disease program on the disease-module genes. When
  /// `program_out` is non-null it receives each sample's program latent
  /// (0 for normals and non-penetrant anomalies) — ground truth for tests
  /// and diagnostics.
  Dataset sample(std::size_t count, Label label, Rng& rng,
                 std::vector<double>* program_out = nullptr) const;

  /// Convenience: `normals` normal + `anomalies` anomalous rows, shuffled
  /// deterministically by `rng`.
  Dataset sample_cohort(std::size_t normals, std::size_t anomalies, Rng& rng) const;

  /// Module index of a gene, or SIZE_MAX for irrelevant genes.
  std::size_t module_of(std::size_t gene) const;

  /// True if this gene carries the disease program in anomalous samples.
  bool dysregulated(std::size_t gene) const;

 private:
  ExpressionModelConfig config_;
  std::vector<double> loadings_;       // per gene; 0 for irrelevant genes
  std::vector<double> noise_sd_;       // per gene independent-noise sd
  std::vector<std::size_t> module_of_; // per gene; SIZE_MAX for irrelevant
  std::vector<double> signature_;      // per gene; disease-program loading (0 = none)
};

}  // namespace frac
