#include "data/expression_generator.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/string_util.hpp"

namespace frac {

void ExpressionModelConfig::validate() const {
  if (modules * genes_per_module > features) {
    throw std::invalid_argument(format(
        "expression model: %zu modules x %zu genes exceed %zu features", modules,
        genes_per_module, features));
  }
  if (disease_modules > modules) {
    throw std::invalid_argument("expression model: disease_modules > modules");
  }
  if (anomaly_mix < 0.0) {
    throw std::invalid_argument("expression model: anomaly_mix must be >= 0");
  }
  if (program_spread < 0.0) {
    throw std::invalid_argument("expression model: program_spread must be >= 0");
  }
  if (penetrance < 0.0 || penetrance > 1.0) {
    throw std::invalid_argument("expression model: penetrance must be in [0, 1]");
  }
  if (loading_min <= 0.0 || loading_max < loading_min) {
    throw std::invalid_argument("expression model: bad loading range");
  }
  if (noise_sd < 0.0) throw std::invalid_argument("expression model: negative noise_sd");
  if (!std::isfinite(latent_shift)) {
    throw std::invalid_argument("expression model: non-finite latent_shift");
  }
}

ExpressionModel::ExpressionModel(const ExpressionModelConfig& config) : config_(config) {
  config_.validate();
  Rng rng(config_.seed);
  loadings_.assign(config_.features, 0.0);
  noise_sd_.assign(config_.features, config_.noise_sd);
  module_of_.assign(config_.features, std::numeric_limits<std::size_t>::max());
  signature_.assign(config_.features, 0.0);
  // Relevant genes occupy the front block; FRaC never sees feature order as
  // signal (all variants shuffle or subset features explicitly).
  std::size_t gene = 0;
  for (std::size_t m = 0; m < config_.modules; ++m) {
    for (std::size_t g = 0; g < config_.genes_per_module; ++g, ++gene) {
      const double magnitude = rng.uniform(config_.loading_min, config_.loading_max);
      loadings_[gene] = rng.bernoulli(0.5) ? magnitude : -magnitude;
      module_of_[gene] = m;
      // The disease program loads on every disease-module gene with its own
      // fixed signed loading — a direction orthogonal (in expectation) to
      // the normal co-regulation patterns.
      if (m < config_.disease_modules) {
        const double sig = rng.uniform(config_.loading_min, config_.loading_max);
        signature_[gene] = rng.bernoulli(0.5) ? sig : -sig;
      }
    }
  }
  // Irrelevant genes: in the default regime, match the relevant genes'
  // marginal sd range so variance/entropy ranking is uninformative; in the
  // entropy-informative regime, keep them at the (lower) noise floor.
  const double n2 = config_.noise_sd * config_.noise_sd;
  const double sd_lo = std::sqrt(config_.loading_min * config_.loading_min + n2);
  const double sd_hi = std::sqrt(config_.loading_max * config_.loading_max + n2);
  for (; gene < config_.features; ++gene) {
    noise_sd_[gene] =
        config_.entropy_informative ? config_.noise_sd : rng.uniform(sd_lo, sd_hi);
  }
}

std::size_t ExpressionModel::module_of(std::size_t gene) const { return module_of_.at(gene); }

bool ExpressionModel::dysregulated(std::size_t gene) const {
  return signature_.at(gene) != 0.0;
}

Dataset ExpressionModel::sample(std::size_t count, Label label, Rng& rng,
                                std::vector<double>* program_out) const {
  const std::size_t f = config_.features;
  Matrix values(count, f);
  const double a = config_.anomaly_mix;
  if (program_out != nullptr) program_out->assign(count, 0.0);
  std::vector<double> z(config_.modules);
  for (std::size_t r = 0; r < count; ++r) {
    for (double& zm : z) zm = rng.normal();
    // Guarded so latent_shift == 0.0 stays bit-identical (never perturbs a
    // -0.0 draw); the RNG sequence is unchanged either way.
    if (config_.latent_shift != 0.0) {
      for (double& zm : z) zm += config_.latent_shift;
    }
    // The disease program activates only in *penetrant* anomalous samples:
    // latent magnitude ≈ 1 (so detectability is set by the amplitude a, not
    // by per-sample luck), random sign.
    double w = 0.0;
    if (label == Label::kAnomaly) {
      // Consume the same three draws regardless of penetrance, so tuning
      // the penetrance knob flips individual carriers monotonically
      // instead of re-rolling every downstream sample.
      const double u = rng.uniform();
      const double magnitude = std::abs(rng.normal(1.0, config_.program_spread));
      const bool negative = rng.bernoulli(0.5);
      if (u < config_.penetrance) w = negative ? -magnitude : magnitude;
    }
    if (program_out != nullptr) (*program_out)[r] = w;
    const auto row = values.row(r);
    for (std::size_t g = 0; g < f; ++g) {
      const std::size_t m = module_of_[g];
      const double latent = m != std::numeric_limits<std::size_t>::max() ? z[m] : 0.0;
      row[g] = loadings_[g] * latent + a * signature_[g] * w + noise_sd_[g] * rng.normal();
    }
  }
  Schema schema = Schema::all_real(f, "gene");
  return Dataset(std::move(schema), std::move(values), std::vector<Label>(count, label));
}

Dataset ExpressionModel::sample_cohort(std::size_t normals, std::size_t anomalies,
                                       Rng& rng) const {
  const Dataset normal_part = sample(normals, Label::kNormal, rng);
  const Dataset anomaly_part = sample(anomalies, Label::kAnomaly, rng);
  Dataset all = concat_samples(normal_part, anomaly_part);
  std::vector<std::size_t> order(all.sample_count());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  return all.select_samples(order);
}

}  // namespace frac
