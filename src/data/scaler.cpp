#include "data/scaler.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "data/dataset.hpp"

namespace frac {

void StandardScaler::fit(const Matrix& train) {
  const std::size_t cols = train.cols();
  means_.assign(cols, 0.0);
  scales_.assign(cols, 1.0);
  std::vector<double> sum(cols, 0.0);
  std::vector<double> sum_sq(cols, 0.0);
  std::vector<std::size_t> count(cols, 0);
  for (std::size_t r = 0; r < train.rows(); ++r) {
    const auto row = train.row(r);
    for (std::size_t c = 0; c < cols; ++c) {
      const double v = row[c];
      if (is_missing(v)) continue;
      sum[c] += v;
      sum_sq[c] += v * v;
      ++count[c];
    }
  }
  for (std::size_t c = 0; c < cols; ++c) {
    if (count[c] == 0) continue;
    const double n = static_cast<double>(count[c]);
    means_[c] = sum[c] / n;
    const double var = std::max(0.0, sum_sq[c] / n - means_[c] * means_[c]);
    const double sd = std::sqrt(var);
    scales_[c] = sd > 1e-12 ? sd : 1.0;
  }
}

void StandardScaler::restore(std::vector<double> means, std::vector<double> scales) {
  if (means.size() != scales.size()) {
    throw std::invalid_argument("StandardScaler::restore: size mismatch");
  }
  for (const double s : scales) {
    if (s <= 0.0) throw std::invalid_argument("StandardScaler::restore: nonpositive scale");
  }
  means_ = std::move(means);
  scales_ = std::move(scales);
}

void StandardScaler::reset_column(std::size_t c) {
  means_.at(c) = 0.0;
  scales_.at(c) = 1.0;
}

void StandardScaler::transform(Matrix& m) const {
  assert(m.cols() == width());
  for (std::size_t r = 0; r < m.rows(); ++r) transform_row(m.row(r));
}

void StandardScaler::transform_row(std::span<double> row) const {
  assert(row.size() == width());
  for (std::size_t c = 0; c < row.size(); ++c) {
    if (is_missing(row[c])) continue;
    row[c] = (row[c] - means_[c]) / scales_[c];
  }
}

}  // namespace frac
