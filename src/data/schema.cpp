#include "data/schema.hpp"

#include <stdexcept>

namespace frac {

Schema Schema::all_real(std::size_t count, const std::string& prefix) {
  std::vector<FeatureSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back({prefix + std::to_string(i), FeatureKind::kReal, 0});
  }
  return Schema(std::move(specs));
}

Schema Schema::all_categorical(std::size_t count, std::uint32_t arity, const std::string& prefix) {
  if (arity < 2) throw std::invalid_argument("categorical arity must be >= 2");
  std::vector<FeatureSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    specs.push_back({prefix + std::to_string(i), FeatureKind::kCategorical, arity});
  }
  return Schema(std::move(specs));
}

Schema Schema::select(const std::vector<std::size_t>& indices) const {
  std::vector<FeatureSpec> specs;
  specs.reserve(indices.size());
  for (const std::size_t i : indices) specs.push_back((*this)[i]);
  return Schema(std::move(specs));
}

std::size_t Schema::one_hot_width() const {
  std::size_t width = 0;
  for (const auto& spec : features_) {
    width += spec.kind == FeatureKind::kReal ? 1 : spec.arity;
  }
  return width;
}

}  // namespace frac
