// Labeled mixed-type dataset: a samples × features value matrix plus a
// schema and per-sample normal/anomaly labels.
//
// Values are doubles; categorical cells hold integral codes in [0, arity).
// Missing values are NaN — the NS definition in the paper scores undefined
// features as zero, and the FRaC scorer honors that.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "data/schema.hpp"
#include "linalg/matrix.hpp"

namespace frac {

enum class Label : std::uint8_t { kNormal = 0, kAnomaly = 1 };

/// Sentinel for missing values.
inline constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

/// True if a cell value denotes "missing".
inline bool is_missing(double v) noexcept { return std::isnan(v); }

/// Owning dataset. Invariants (checked by validate()):
///  * values.rows() == labels.size()
///  * values.cols() == schema.size()
///  * categorical cells are integers in [0, arity) or NaN
class Dataset {
 public:
  Dataset() = default;
  Dataset(Schema schema, Matrix values, std::vector<Label> labels);

  const Schema& schema() const noexcept { return schema_; }
  const Matrix& values() const noexcept { return values_; }
  Matrix& mutable_values() noexcept { return values_; }
  const std::vector<Label>& labels() const noexcept { return labels_; }

  std::size_t sample_count() const noexcept { return values_.rows(); }
  std::size_t feature_count() const noexcept { return values_.cols(); }

  double value(std::size_t sample, std::size_t feature) const {
    return values_(sample, feature);
  }
  Label label(std::size_t sample) const { return labels_.at(sample); }

  std::size_t normal_count() const;
  std::size_t anomaly_count() const;

  /// Indices of all normal / anomalous samples, in order.
  std::vector<std::size_t> normal_indices() const;
  std::vector<std::size_t> anomaly_indices() const;

  /// New dataset with the given sample rows (order preserved as given).
  Dataset select_samples(const std::vector<std::size_t>& rows) const;

  /// New dataset with the given feature columns (schema follows).
  Dataset select_features(const std::vector<std::size_t>& cols) const;

  /// Throws std::invalid_argument describing the first violated invariant.
  void validate() const;

  /// Heap footprint of the value matrix (for resource accounting).
  std::size_t bytes() const noexcept { return values_.bytes(); }

 private:
  Schema schema_;
  Matrix values_;
  std::vector<Label> labels_;
};

/// Concatenates two datasets with identical schemas (rows of a, then b).
Dataset concat_samples(const Dataset& a, const Dataset& b);

}  // namespace frac
