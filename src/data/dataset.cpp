#include "data/dataset.hpp"

#include <stdexcept>

#include "util/string_util.hpp"

namespace frac {

Dataset::Dataset(Schema schema, Matrix values, std::vector<Label> labels)
    : schema_(std::move(schema)), values_(std::move(values)), labels_(std::move(labels)) {
  if (values_.rows() != labels_.size()) {
    throw std::invalid_argument(format("dataset: %zu rows but %zu labels", values_.rows(),
                                       labels_.size()));
  }
  if (values_.cols() != schema_.size()) {
    throw std::invalid_argument(format("dataset: %zu columns but schema has %zu features",
                                       values_.cols(), schema_.size()));
  }
}

std::size_t Dataset::normal_count() const {
  std::size_t n = 0;
  for (const Label l : labels_) n += (l == Label::kNormal);
  return n;
}

std::size_t Dataset::anomaly_count() const { return labels_.size() - normal_count(); }

std::vector<std::size_t> Dataset::normal_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == Label::kNormal) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::anomaly_indices() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == Label::kAnomaly) out.push_back(i);
  }
  return out;
}

Dataset Dataset::select_samples(const std::vector<std::size_t>& rows) const {
  Matrix values(rows.size(), values_.cols());
  std::vector<Label> labels(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const std::size_t r = rows[i];
    if (r >= values_.rows()) {
      throw std::out_of_range(format("select_samples: row %zu out of %zu", r, values_.rows()));
    }
    const auto src = values_.row(r);
    const auto dst = values.row(i);
    std::copy(src.begin(), src.end(), dst.begin());
    labels[i] = labels_[r];
  }
  return Dataset(schema_, std::move(values), std::move(labels));
}

Dataset Dataset::select_features(const std::vector<std::size_t>& cols) const {
  for (const std::size_t c : cols) {
    if (c >= values_.cols()) {
      throw std::out_of_range(format("select_features: col %zu out of %zu", c, values_.cols()));
    }
  }
  Matrix values(values_.rows(), cols.size());
  for (std::size_t r = 0; r < values_.rows(); ++r) {
    const auto src = values_.row(r);
    const auto dst = values.row(r);
    for (std::size_t j = 0; j < cols.size(); ++j) dst[j] = src[cols[j]];
  }
  return Dataset(schema_.select(cols), std::move(values), labels_);
}

void Dataset::validate() const {
  for (std::size_t c = 0; c < schema_.size(); ++c) {
    if (!schema_.is_categorical(c)) continue;
    const double arity = schema_[c].arity;
    for (std::size_t r = 0; r < values_.rows(); ++r) {
      const double v = values_(r, c);
      if (is_missing(v)) continue;
      if (v < 0.0 || v >= arity || v != std::floor(v)) {
        throw std::invalid_argument(
            format("dataset: cell (%zu, %zu) = %g is not a code in [0, %u)", r, c, v,
                   schema_[c].arity));
      }
    }
  }
}

Dataset concat_samples(const Dataset& a, const Dataset& b) {
  if (!(a.schema() == b.schema())) {
    throw std::invalid_argument("concat_samples: schemas differ");
  }
  Matrix values(a.sample_count() + b.sample_count(), a.feature_count());
  std::vector<Label> labels;
  labels.reserve(values.rows());
  for (std::size_t r = 0; r < a.sample_count(); ++r) {
    const auto src = a.values().row(r);
    std::copy(src.begin(), src.end(), values.row(r).begin());
    labels.push_back(a.label(r));
  }
  for (std::size_t r = 0; r < b.sample_count(); ++r) {
    const auto src = b.values().row(r);
    std::copy(src.begin(), src.end(), values.row(a.sample_count() + r).begin());
    labels.push_back(b.label(r));
  }
  return Dataset(a.schema(), std::move(values), std::move(labels));
}

}  // namespace frac
