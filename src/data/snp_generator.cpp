#include "data/snp_generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/kernels.hpp"
#include "util/string_util.hpp"

namespace frac {

void SnpModelConfig::validate() const {
  if (features == 0) throw std::invalid_argument("snp model: zero features");
  if (block_size == 0) throw std::invalid_argument("snp model: zero block_size");
  if (ld_strength < 0.0 || ld_strength > 1.0) {
    throw std::invalid_argument("snp model: ld_strength must be in [0,1]");
  }
  if (fst <= 0.0 || fst >= 1.0) throw std::invalid_argument("snp model: fst must be in (0,1)");
  if (fst_het_exponent < 0.0) {
    throw std::invalid_argument("snp model: fst_het_exponent must be >= 0");
  }
  if (reference_drift_scale <= 0.0 || reference_drift_scale > 1.0) {
    throw std::invalid_argument("snp model: reference_drift_scale must be in (0, 1]");
  }
  if (populations == 0) throw std::invalid_argument("snp model: zero populations");
  if (freq_min <= 0.0 || freq_max >= 1.0 || freq_min > freq_max) {
    throw std::invalid_argument("snp model: bad frequency range");
  }
  if (disease_snps > features) throw std::invalid_argument("snp model: too many disease snps");
  if (disease_shift < -1.0 || disease_shift > 1.0) {
    throw std::invalid_argument("snp model: disease_shift must be in [-1,1]");
  }
}

SnpModel::SnpModel(const SnpModelConfig& config) : config_(config) {
  config_.validate();
  block_count_ = (config_.features + config_.block_size - 1) / config_.block_size;
  Rng rng(config_.seed);
  const std::size_t f = config_.features;
  freq_.resize(config_.populations * f);
  threshold_.resize(config_.populations * f);
  anomaly_threshold_.resize(config_.populations * f);

  // Balding–Nichols: shared ancestral frequency, per-population drift.
  for (std::size_t j = 0; j < f; ++j) {
    const double ancestral = rng.uniform(config_.freq_min, config_.freq_max);
    // Optionally concentrate divergence in high-heterozygosity SNPs.
    const double het = 4.0 * ancestral * (1.0 - ancestral);
    const double fst_j = std::max(
        1e-4, config_.fst * (config_.fst_het_exponent == 0.0
                                 ? 1.0
                                 : std::pow(het, config_.fst_het_exponent)));
    for (std::size_t pop = 0; pop < config_.populations; ++pop) {
      const double pop_fst =
          std::max(1e-4, pop == 0 ? fst_j * config_.reference_drift_scale : fst_j);
      const double f_ratio = (1.0 - pop_fst) / pop_fst;
      double p = rng.beta(ancestral * f_ratio, (1.0 - ancestral) * f_ratio);
      // Keep variants common in every population (rare variants excluded by
      // design, per the paper).
      p = std::clamp(p, 0.02, 0.98);
      freq_[pop * f + j] = p;
      threshold_[pop * f + j] = normal_quantile(p);
      const bool causal = j < config_.disease_snps;
      const double p_anom =
          causal ? std::clamp(p + config_.disease_shift, 0.02, 0.98) : p;
      anomaly_threshold_[pop * f + j] = normal_quantile(p_anom);
    }
  }
}

double SnpModel::allele_frequency(std::size_t pop, std::size_t snp) const {
  if (pop >= config_.populations || snp >= config_.features) {
    throw std::out_of_range("allele_frequency: bad population or snp index");
  }
  return freq_[pop * config_.features + snp];
}

Dataset SnpModel::sample(std::size_t population, std::size_t count, Label label,
                         Rng& rng) const {
  if (population >= config_.populations) {
    throw std::out_of_range(format("snp model: population %zu of %zu", population,
                                   config_.populations));
  }
  const std::size_t f = config_.features;
  const double* threshold = (label == Label::kAnomaly ? anomaly_threshold_ : threshold_).data() +
                            population * f;
  const double rho = config_.ld_strength;
  const double shared_scale = std::sqrt(rho);
  const double noise_scale = std::sqrt(1.0 - rho);
  Matrix values(count, f);
  for (std::size_t r = 0; r < count; ++r) {
    const auto row = values.row(r);
    // Two haplotypes per sample; one shared copula latent per block per
    // haplotype, independent per-site noise. Allele_j = 1 iff the latent
    // falls below Φ⁻¹(p_j), so the marginal is exactly Bernoulli(p_j).
    for (std::size_t b = 0; b < block_count_; ++b) {
      const std::size_t lo = b * config_.block_size;
      const std::size_t hi = std::min(lo + config_.block_size, f);
      for (int h = 0; h < 2; ++h) {
        const double z = rng.normal();
        for (std::size_t j = lo; j < hi; ++j) {
          const double latent = shared_scale * z + noise_scale * rng.normal();
          const double allele = latent < threshold[j] ? 1.0 : 0.0;
          if (h == 0) row[j] = allele;
          else row[j] += allele;
        }
      }
    }
  }
  Schema schema = Schema::all_categorical(f, 3, "snp");
  return Dataset(std::move(schema), std::move(values), std::vector<Label>(count, label));
}

}  // namespace frac
