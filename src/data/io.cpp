#include "data/io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace frac {

namespace {

FeatureSpec parse_header_cell(const std::string& cell, std::size_t col) {
  const std::vector<std::string> parts = split(cell, ':');
  if (parts.size() == 2 && parts[1] == "real") {
    return {parts[0], FeatureKind::kReal, 0};
  }
  if (parts.size() == 3 && parts[1] == "cat") {
    const std::size_t arity = parse_size(parts[2], "header arity");
    if (arity < 2) throw std::invalid_argument("arity must be >= 2 in header column " +
                                               std::to_string(col));
    return {parts[0], FeatureKind::kCategorical, static_cast<std::uint32_t>(arity)};
  }
  throw std::invalid_argument("bad header cell '" + cell + "' at column " + std::to_string(col) +
                              " (want name:real or name:cat:K)");
}

}  // namespace

Dataset read_dataset_csv(std::istream& in) {
  const CsvTable table = read_csv(in);
  if (table.rows.empty()) throw std::runtime_error("dataset CSV is empty");

  const auto& header = table.rows.front();
  if (header.empty() || header.back() != "label") {
    throw std::invalid_argument("dataset CSV header must end with 'label'");
  }
  std::vector<FeatureSpec> specs;
  specs.reserve(header.size() - 1);
  for (std::size_t c = 0; c + 1 < header.size(); ++c) {
    specs.push_back(parse_header_cell(header[c], c));
  }
  Schema schema{std::move(specs)};

  const std::size_t n = table.rows.size() - 1;
  Matrix values(n, schema.size());
  std::vector<Label> labels(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& row = table.rows[r + 1];
    if (row.size() != schema.size() + 1) {
      throw std::invalid_argument(format("dataset CSV row %zu has %zu cells, expected %zu", r + 1,
                                         row.size(), schema.size() + 1));
    }
    for (std::size_t c = 0; c < schema.size(); ++c) {
      const std::string_view cell = trim(row[c]);
      if (cell == "?") {
        values(r, c) = kMissing;
        continue;
      }
      const double v = parse_double(cell, format("row %zu col %zu", r + 1, c));
      // parse_double happily admits "inf"/"nan" text; neither is a value —
      // NaN would silently masquerade as the missing sentinel, and Inf
      // would poison every downstream sum. Reject with the location.
      if (!std::isfinite(v)) {
        throw ParseError(format("dataset CSV row %zu col %zu: non-finite value '%s'", r + 1, c,
                                std::string(cell).c_str()));
      }
      if (schema.is_categorical(c)) {
        const double arity = static_cast<double>(schema[c].arity);
        if (v != std::floor(v) || v < 0.0 || v >= arity) {
          throw ParseError(
              format("dataset CSV row %zu col %zu: categorical code '%s' is not an integer "
                     "in [0, %u)",
                     r + 1, c, std::string(cell).c_str(), schema[c].arity));
        }
      }
      values(r, c) = v;
    }
    const std::string_view label = trim(row.back());
    if (label == "normal") labels[r] = Label::kNormal;
    else if (label == "anomaly") labels[r] = Label::kAnomaly;
    else throw std::invalid_argument(format("dataset CSV row %zu: bad label '%s'", r + 1,
                                            std::string(label).c_str()));
  }
  Dataset data(std::move(schema), std::move(values), std::move(labels));
  data.validate();
  return data;
}

Dataset load_dataset_csv(const std::string& path) {
  maybe_inject(FaultSite::kDatasetLoad, fault_key(path));
  std::ifstream in(path);
  if (!in) throw IoError("cannot open dataset file: " + path);
  return read_dataset_csv(in);
}

void write_dataset_csv(std::ostream& out, const Dataset& data) {
  const Schema& schema = data.schema();
  for (std::size_t c = 0; c < schema.size(); ++c) {
    const FeatureSpec& spec = schema[c];
    out << csv_escape(spec.name);
    out << (spec.kind == FeatureKind::kReal ? ":real" : format(":cat:%u", spec.arity));
    out << ',';
  }
  out << "label\n";
  for (std::size_t r = 0; r < data.sample_count(); ++r) {
    for (std::size_t c = 0; c < schema.size(); ++c) {
      const double v = data.value(r, c);
      if (is_missing(v)) out << '?';
      else if (schema.is_categorical(c)) out << static_cast<long long>(v);
      else out << format("%.17g", v);
      out << ',';
    }
    out << (data.label(r) == Label::kNormal ? "normal" : "anomaly") << '\n';
  }
}

void save_dataset_csv(const std::string& path, const Dataset& data) {
  // Atomic checked write: disk-full fails loudly (the stream is verified
  // after writing) and a crash cannot leave a truncated CSV behind.
  atomic_write_file(path, [&data](std::ostream& out) {
    write_dataset_csv(out, data);
    if (!out) throw IoError("save_dataset_csv: stream write failed");
  });
}

}  // namespace frac
