#include "data/io.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/atomic_file.hpp"
#include "util/csv.hpp"
#include "util/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/string_util.hpp"

namespace frac {

FeatureSpec parse_dataset_header_cell(const std::string& cell, std::size_t col) {
  const std::vector<std::string> parts = split(cell, ':');
  if (parts.size() == 2 && parts[1] == "real") {
    return {parts[0], FeatureKind::kReal, 0};
  }
  if (parts.size() == 3 && parts[1] == "cat") {
    const std::size_t arity = parse_size(parts[2], "header arity");
    if (arity < 2) throw std::invalid_argument("arity must be >= 2 in header column " +
                                               std::to_string(col));
    return {parts[0], FeatureKind::kCategorical, static_cast<std::uint32_t>(arity)};
  }
  throw std::invalid_argument("bad header cell '" + cell + "' at column " + std::to_string(col) +
                              " (want name:real or name:cat:K)");
}

double parse_dataset_value_cell(const std::string& raw, std::size_t row, std::size_t col,
                                const Schema& schema) {
  const std::string_view cell = trim(raw);
  if (cell == "?") return kMissing;
  const double v = parse_double(cell, format("row %zu col %zu", row, col));
  // parse_double happily admits "inf"/"nan" text; neither is a value —
  // NaN would silently masquerade as the missing sentinel, and Inf
  // would poison every downstream sum. Reject with the location.
  if (!std::isfinite(v)) {
    throw ParseError(format("dataset CSV row %zu col %zu: non-finite value '%s'", row, col,
                            std::string(cell).c_str()));
  }
  if (schema.is_categorical(col)) {
    const double arity = static_cast<double>(schema[col].arity);
    if (v != std::floor(v) || v < 0.0 || v >= arity) {
      throw ParseError(
          format("dataset CSV row %zu col %zu: categorical code '%s' is not an integer "
                 "in [0, %u)",
                 row, col, std::string(cell).c_str(), schema[col].arity));
    }
  }
  return v;
}

Label parse_dataset_label_cell(const std::string& raw, std::size_t row) {
  const std::string_view label = trim(raw);
  if (label == "normal") return Label::kNormal;
  if (label == "anomaly") return Label::kAnomaly;
  throw std::invalid_argument(format("dataset CSV row %zu: bad label '%s'", row,
                                     std::string(label).c_str()));
}

Dataset read_dataset_csv(std::istream& in) {
  CsvRecordReader reader(in);
  std::vector<std::string> header;
  if (!reader.next(header)) throw std::runtime_error("dataset CSV is empty");
  if (header.empty() || header.back() != "label") {
    throw std::invalid_argument("dataset CSV header must end with 'label'");
  }
  std::vector<FeatureSpec> specs;
  specs.reserve(header.size() - 1);
  for (std::size_t c = 0; c + 1 < header.size(); ++c) {
    specs.push_back(parse_dataset_header_cell(header[c], c));
  }
  Schema schema{std::move(specs)};
  const std::size_t width = schema.size();

  // Stream rows straight into the row-major value buffer; the only whole-file
  // allocations are the numbers themselves and the labels, not a string cell
  // per value.
  std::vector<double> values;
  std::vector<Label> labels;
  std::vector<std::string> row;
  std::size_t r = 0;
  while (reader.next(row)) {
    if (row.size() != schema.size() + 1) {
      throw std::invalid_argument(format("dataset CSV row %zu has %zu cells, expected %zu", r + 1,
                                         row.size(), schema.size() + 1));
    }
    for (std::size_t c = 0; c < schema.size(); ++c) {
      values.push_back(parse_dataset_value_cell(row[c], r + 1, c, schema));
    }
    labels.push_back(parse_dataset_label_cell(row.back(), r + 1));
    ++r;
  }
  Dataset data(std::move(schema), Matrix(r, width, std::move(values)), std::move(labels));
  data.validate();
  return data;
}

Dataset load_dataset_csv(const std::string& path) {
  maybe_inject(FaultSite::kDatasetLoad, fault_key(path));
  std::ifstream in(path);
  if (!in) throw IoError("cannot open dataset file: " + path);
  return read_dataset_csv(in);
}

void write_dataset_csv(std::ostream& out, const Dataset& data) {
  const Schema& schema = data.schema();
  for (std::size_t c = 0; c < schema.size(); ++c) {
    const FeatureSpec& spec = schema[c];
    out << csv_escape(spec.name);
    out << (spec.kind == FeatureKind::kReal ? ":real" : format(":cat:%u", spec.arity));
    out << ',';
  }
  out << "label\n";
  for (std::size_t r = 0; r < data.sample_count(); ++r) {
    for (std::size_t c = 0; c < schema.size(); ++c) {
      const double v = data.value(r, c);
      if (is_missing(v)) out << '?';
      else if (schema.is_categorical(c)) out << static_cast<long long>(v);
      else out << format("%.17g", v);
      out << ',';
    }
    out << (data.label(r) == Label::kNormal ? "normal" : "anomaly") << '\n';
  }
}

void save_dataset_csv(const std::string& path, const Dataset& data) {
  // Atomic checked write: disk-full fails loudly (the stream is verified
  // after writing) and a crash cannot leave a truncated CSV behind.
  atomic_write_file(path, [&data](std::ostream& out) {
    write_dataset_csv(out, data);
    if (!out) throw IoError("save_dataset_csv: stream write failed");
  });
}

}  // namespace frac
