// Replicate construction, following the paper's experimental design:
// "Each replicate consists of a training set containing a randomly selected
//  two-thirds of the normal samples. The test set consists of the remaining
//  normal samples as well as all non-normal samples."
#pragma once

#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace frac {

/// One train/test replicate. Train contains only normal samples.
struct Replicate {
  Dataset train;
  Dataset test;
};

/// Builds one replicate with `train_fraction` of the normals in training.
Replicate make_replicate(const Dataset& data, double train_fraction, Rng& rng);

/// Builds `count` independent replicates (paper default: 5 at 2/3).
std::vector<Replicate> make_replicates(const Dataset& data, std::size_t count,
                                       double train_fraction, Rng& rng);

/// Fixed split by explicit sample indices (used for the schizophrenia-style
/// design where train and test cohorts come from different sources).
Replicate make_fixed_replicate(const Dataset& data, const std::vector<std::size_t>& train_rows,
                               const std::vector<std::size_t>& test_rows);

}  // namespace frac
