#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

namespace frac {

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return text.substr(b, e - b);
}

double parse_double(std::string_view text, std::string_view context) {
  const std::string_view t = trim(text);
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw std::invalid_argument("cannot parse double '" + std::string(text) + "' in " +
                                std::string(context));
  }
  return value;
}

std::size_t parse_size(std::string_view text, std::string_view context) {
  const std::string_view t = trim(text);
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc{} || ptr != t.data() + t.size()) {
    throw std::invalid_argument("cannot parse integer '" + std::string(text) + "' in " +
                                std::string(context));
  }
  return value;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string format_g17(double value) {
  // %.17g round-trips every finite double; to_chars(general, 17) is specified
  // to produce exactly printf's "C"-locale bytes for the same conversion.
  char buffer[32];
  const auto [ptr, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value, std::chars_format::general, 17);
  if (ec != std::errc{}) throw std::invalid_argument("format_g17: value does not fit");
  return std::string(buffer, ptr);
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace frac
