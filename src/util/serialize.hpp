// Minimal tagged text serialization helpers.
//
// Model files are line-oriented UTF-8: each field is written as
// "<tag> <values...>\n" and read back with tag verification, so format
// drift fails loudly instead of silently misparsing. Doubles round-trip
// exactly via %.17g.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace frac {

/// Writes "tag v\n".
void write_tagged(std::ostream& out, const std::string& tag, double value);
void write_tagged(std::ostream& out, const std::string& tag, std::uint64_t value);
void write_tagged(std::ostream& out, const std::string& tag, const std::string& value);

/// Writes "tag n v1 v2 ... vn\n".
void write_tagged(std::ostream& out, const std::string& tag, const std::vector<double>& values);
void write_tagged(std::ostream& out, const std::string& tag,
                  const std::vector<std::uint64_t>& values);

/// Reads one line and verifies its tag; throws std::runtime_error naming
/// both tags on mismatch.
double read_tagged_double(std::istream& in, const std::string& tag);
std::uint64_t read_tagged_uint(std::istream& in, const std::string& tag);
std::string read_tagged_string(std::istream& in, const std::string& tag);
std::vector<double> read_tagged_doubles(std::istream& in, const std::string& tag);
std::vector<std::uint64_t> read_tagged_uints(std::istream& in, const std::string& tag);

}  // namespace frac
